module mobiletraffic

go 1.22
