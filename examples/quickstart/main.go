// Quickstart: fit session-level traffic models on the bundled
// measurement simulation, inspect the released parameter tuple of one
// service, and generate a minute of synthetic traffic.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"mobiletraffic"
)

func main() {
	// Fit the complete model set (arrival models per BS load decile,
	// volume mixture + duration power law per service) on a small
	// simulated measurement campaign. With access to real session
	// observations you would call mobiletraffic.FitFromObservations
	// instead.
	set, err := mobiletraffic.FitFromSimulation(mobiletraffic.SimulationConfig{
		NumBS: 20, Days: 3, Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fitted %d service models and %d arrival classes\n\n",
		len(set.Services), len(set.Arrivals))

	// The released parameter tuple of §5.4:
	// [mu_s, sigma_s, {k_n, mu_n, sigma_n}_n, alpha_s, beta_s].
	netflix, err := set.ByName("Netflix")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Netflix session-level model:")
	fmt.Printf("  volume main trend: mu=%.2f sigma=%.2f (log10 bytes)\n",
		netflix.Volume.MainMu, netflix.Volume.MainSigma)
	for i, p := range netflix.Volume.Peaks {
		fmt.Printf("  volume peak %d:     k=%.3f mu=%.2f sigma=%.2f\n", i+1, p.K, p.Mu, p.Sigma)
	}
	fmt.Printf("  duration power law: v(d) = %.3g * d^%.2f  (R2 %.2f)\n",
		netflix.Duration.Alpha, netflix.Duration.Beta, netflix.Duration.R2)
	fmt.Printf("  volume model EMD vs measurement: %.2g\n\n", netflix.VolumeEMD)

	// Generate one busy-hour minute of traffic at a top-decile BS.
	gen, err := mobiletraffic.NewGenerator(set, 7)
	if err != nil {
		log.Fatal(err)
	}
	sessions, err := gen.Minute(9, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("one peak minute at a top-decile BS: %d sessions\n", len(sessions))
	for i, s := range sessions {
		if i == 8 {
			fmt.Printf("  ... and %d more\n", len(sessions)-8)
			break
		}
		fmt.Printf("  %-14s %10.0f B over %8.1f s (%.1f kB/s)\n",
			s.Service, s.Volume, s.Duration, s.Throughput/1000)
	}
}
