// Tracegen: export a day-long synthetic session trace for an external
// simulator (e.g. ns-3-style workloads): one line per session with
// establishment time, service, volume, duration and mean throughput,
// generated from the fitted session-level models.
//
// Run with: go run ./examples/tracegen > day_trace.csv
package main

import (
	"bufio"
	"fmt"
	"log"
	"os"

	"mobiletraffic"
	"mobiletraffic/internal/netsim"
)

func main() {
	set, err := mobiletraffic.FitFromSimulation(mobiletraffic.SimulationConfig{
		NumBS: 16, Days: 2, Seed: 21,
	})
	if err != nil {
		log.Fatal(err)
	}
	gen, err := mobiletraffic.NewGenerator(set, 21)
	if err != nil {
		log.Fatal(err)
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	fmt.Fprintln(w, "time_s,service,bytes,duration_s,throughput_Bps")

	const class = 7 // a busy but not extreme BS load decile
	var sessions, bytes float64
	perService := map[string]int{}
	for minute := 0; minute < 24*60; minute++ {
		batch, err := gen.Minute(class, netsim.IsDaytime(minute))
		if err != nil {
			log.Fatal(err)
		}
		for i, s := range batch {
			t := float64(minute)*60 + 60*float64(i)/float64(len(batch)+1)
			fmt.Fprintf(w, "%.1f,%q,%.0f,%.2f,%.1f\n", t, s.Service, s.Volume, s.Duration, s.Throughput)
			sessions++
			bytes += s.Volume
			perService[s.Service]++
		}
	}
	fmt.Fprintf(os.Stderr, "generated %.0f sessions, %.2f GB total across %d services\n",
		sessions, bytes/1e9, len(perService))
	fmt.Fprintf(os.Stderr, "heaviest service by session count: %s\n", argmax(perService))
}

func argmax(m map[string]int) string {
	best, bestN := "", -1
	for k, v := range m {
		if v > bestN {
			best, bestN = k, v
		}
	}
	return best
}
