// Slicing: reproduce the §6.1 network-slicing capacity allocation study
// — per-service SLAs dimensioned from the session-level models versus
// the category-level literature benchmarks bm_a and bm_b.
//
// Run with: go run ./examples/slicing
package main

import (
	"fmt"
	"log"

	"mobiletraffic/internal/experiments"
)

func main() {
	fmt.Println("simulating the measurement campaign and fitting models...")
	env, err := experiments.NewEnv(experiments.Config{NumBS: 20, Days: 7, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("running the capacity allocation study (Table 2)...")
	table2, err := experiments.ExpTable2(env, experiments.SlicingConfig{
		Antennas: 6, Days: 3, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(table2.Table().Render())

	fig12, err := experiments.ExpFig12(env, experiments.SlicingConfig{
		Antennas: 1, Days: 2, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}
	var maxPeak float64
	for _, v := range fig12.HourlyPeakDemand {
		if v > maxPeak {
			maxPeak = v
		}
	}
	fmt.Printf("Facebook slice at one BS (Fig. 12): capacity %.3g B/min, max demand peak %.3g B/min, SLA satisfaction %.1f%%\n",
		fig12.Capacity, maxPeak, fig12.Satisfied*100)
	fmt.Println("\nExpected shape (paper): only the session-level models satisfy the 95% SLA;")
	fmt.Println("the allocated capacity stays below the demand peaks instead of chasing bursts.")
}
