// Fitcustom: fit session-level models on your own session observations
// via mobiletraffic.FitFromObservations — the path an operator with
// real gateway/RAN probe data would take instead of the bundled
// simulator.
//
// The example synthesizes a small "operator log" of two services with
// known behaviour, fits the models, and shows the recovered parameters
// next to the planted ones.
//
// Run with: go run ./examples/fitcustom
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"mobiletraffic"
)

func main() {
	// A stand-in for parsed operator logs: "video" sessions around
	// 10 MB with super-linear beta = 1.4, "chat" sessions around 100 kB
	// with sub-linear beta = 0.4.
	rng := rand.New(rand.NewSource(2024))
	var obs []mobiletraffic.SessionObservation
	plant := func(name string, n int, mu, sigma, alpha, beta float64) {
		for i := 0; i < n; i++ {
			vol := math.Pow(10, mu+sigma*rng.NormFloat64())
			dur := math.Max(1, math.Pow(vol/alpha, 1/beta)*math.Pow(10, 0.12*rng.NormFloat64()))
			obs = append(obs, mobiletraffic.SessionObservation{
				Service: name,
				BS:      i % 8,
				Day:     i % 3,
				Minute:  rng.Intn(24 * 60),
				Volume:  vol, Duration: dur,
			})
		}
	}
	plant("video", 6000, 7.0, 0.6, 4000, 1.4)
	plant("chat", 9000, 5.0, 0.5, 1500, 0.4)

	set, err := mobiletraffic.FitFromObservations(obs, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fitted %d services from %d observations\n\n", len(set.Services), len(obs))
	for _, name := range []string{"video", "chat"} {
		m, err := set.ByName(name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s:\n", name)
		fmt.Printf("  session share      %.2f\n", m.SessionShare)
		fmt.Printf("  volume trend       mu=%.2f sigma=%.2f (log10 bytes)\n", m.Volume.MainMu, m.Volume.MainSigma)
		fmt.Printf("  duration power law beta=%.2f (R2 %.2f)\n", m.Duration.Beta, m.Duration.R2)
		fmt.Printf("  volume model EMD   %.3g\n\n", m.VolumeEMD)
	}
	fmt.Println("planted ground truth: video mu=7.0 beta=1.4, chat mu=5.0 beta=0.4")

	// The fitted set drives the same generator as the released models.
	gen, err := mobiletraffic.NewGenerator(set, 1)
	if err != nil {
		log.Fatal(err)
	}
	s, err := gen.Session("video")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sample generated video session: %.1f MB over %.0f s\n", s.Volume/1e6, s.Duration)
}
