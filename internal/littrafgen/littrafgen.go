// Package littrafgen implements the literature traffic models the paper
// compares against in §6 ([42] Tsompanidis et al., [31] Navarro-Ortiz
// et al.): mobile traffic described at the level of three broad service
// categories — Interactive Web (IW), Casual Streaming (CS) and Movie
// Streaming (MS) — with independent per-category session size and
// duration distributions and no per-service structure.
//
// These category-level models are the benchmarks bm_a/bm_b of §6.1 and
// bm_a/bm_b/bm_c of §6.2; their lack of session-level per-service
// statistics is exactly what the paper shows to produce unreliable
// performance evaluations.
package littrafgen

import (
	"fmt"
	"math"
	"math/rand"

	"mobiletraffic/internal/core"
	"mobiletraffic/internal/mathx"
	"mobiletraffic/internal/services"
)

// Category is one of the three literature service categories.
type Category int

// Literature service categories.
const (
	IW Category = iota // Interactive Web
	CS                 // Casual Streaming
	MS                 // Movie Streaming
	numCategories
)

// String implements fmt.Stringer.
func (c Category) String() string {
	switch c {
	case IW:
		return "IW"
	case CS:
		return "CS"
	case MS:
		return "MS"
	default:
		return fmt.Sprintf("Category(%d)", int(c))
	}
}

// NumCategories is the number of literature categories.
const NumCategories = int(numCategories)

// CategoryModel is the literature description of one category: base-10
// log-normal session volume and session duration, drawn independently
// (the models provide "throughput and session size/duration" per
// category with no duration-volume coupling).
type CategoryModel struct {
	Name string
	// Volume: log10-bytes location/width.
	VolMu, VolSigma float64
	// Duration: log10-seconds location/width.
	DurMu, DurSigma float64
}

// Models returns the three category models with representative
// parameters from the surveyed literature: short light interactive-web
// sessions, mid-sized casual streams, and long heavy movie streams.
func Models() [NumCategories]CategoryModel {
	return [NumCategories]CategoryModel{
		IW: {Name: "IW", VolMu: 5.7, VolSigma: 0.4, DurMu: 1.5, DurSigma: 0.3},
		CS: {Name: "CS", VolMu: 7.3, VolSigma: 0.4, DurMu: 2.4, DurSigma: 0.3},
		MS: {Name: "MS", VolMu: 8.6, VolSigma: 0.35, DurMu: 3.2, DurSigma: 0.25},
	}
}

// Session is one category-level synthetic session.
type Session struct {
	Category   Category
	Volume     float64 // bytes
	Duration   float64 // seconds
	Throughput float64 // bytes/second
}

// Sample draws a session from the category model: volume and duration
// independently log-normal, throughput their ratio.
func (m *CategoryModel) Sample(rng *rand.Rand) Session {
	vol := math.Pow(10, m.VolMu+m.VolSigma*rng.NormFloat64())
	dur := math.Pow(10, m.DurMu+m.DurSigma*rng.NormFloat64())
	if dur < 1 {
		dur = 1
	}
	cat := IW
	switch m.Name {
	case "CS":
		cat = CS
	case "MS":
		cat = MS
	}
	return Session{Category: cat, Volume: vol, Duration: dur, Throughput: vol / dur}
}

// MeanVolume returns the analytic mean session volume in bytes.
func (m *CategoryModel) MeanVolume() float64 {
	s := m.VolSigma * math.Ln10
	return math.Pow(10, m.VolMu) * math.Exp(s*s/2)
}

// MeanThroughput returns the analytic mean of volume/duration under the
// independence assumption: E[V] * E[1/D].
func (m *CategoryModel) MeanThroughput() float64 {
	s := m.DurSigma * math.Ln10
	invD := math.Pow(10, -m.DurMu) * math.Exp(s*s/2)
	return m.MeanVolume() * invD
}

// CategoryOf maps a catalog service to its literature category: video
// streaming services to MS, audio/casual streaming to CS, everything
// else to IW — the 28-to-3 mapping of §6.2.2.
func CategoryOf(p services.Profile) Category {
	if p.Class != services.Streaming {
		return IW
	}
	// Movie/video streaming: the heavyweight super-linear services.
	switch p.Name {
	case "Netflix", "Twitch", "FB Live", "Youtube":
		return MS
	}
	return CS
}

// BMAShares returns the category session shares of benchmark bm_a in
// §6.1: the three categories with shares derived from aggregating the
// corresponding Table 1 values (IW 49.30%, CS 48.46%, MS 2.24%).
func BMAShares() [NumCategories]float64 {
	return [NumCategories]float64{IW: 0.4930, CS: 0.4846, MS: 0.0224}
}

// BMBShares returns the category session shares of benchmark bm_b in
// §6.1, taken from the literature (IW 50%, CS 42.11%, MS 7.89%).
func BMBShares() [NumCategories]float64 {
	return [NumCategories]float64{IW: 0.50, CS: 0.4211, MS: 0.0789}
}

// PickCategory draws a category according to the share vector.
func PickCategory(shares [NumCategories]float64, rng *rand.Rand) Category {
	u := rng.Float64() * (shares[IW] + shares[CS] + shares[MS])
	if u < shares[IW] {
		return IW
	}
	if u < shares[IW]+shares[CS] {
		return CS
	}
	return MS
}

// Generator draws category-level sessions with the configured shares —
// the complete benchmark workload generator. It follows the versioned
// generation engines of internal/core: GenV1 replays the historical
// math/rand draws, GenV2 (the default) samples both log-normals in the
// natural-log domain on a PCG stream with precomputed constants.
type Generator struct {
	Shares [NumCategories]float64
	Models [NumCategories]CategoryModel
	// VolumeScale rescales sampled volumes (and hence throughputs);
	// bm_b and bm_c of §6.2 use it to normalize the generated traffic
	// against the measurement totals. Index by category; zero values
	// mean no scaling.
	VolumeScale [NumCategories]float64
	Engine      core.Engine
	rng         *rand.Rand
	pcg         mathx.PCG
	// seed is the master seed, kept for deriving substreams.
	seed uint64
	// Per-category log-normal constants folded into natural log so a
	// v2 draw is one Gaussian variate and one math.Exp per marginal.
	volMuLn, volSigLn [NumCategories]float64
	durMuLn, durSigLn [NumCategories]float64
}

// NewGenerator builds a benchmark generator with the given shares on
// the default engine.
func NewGenerator(shares [NumCategories]float64, seed int64) *Generator {
	return NewGeneratorEngine(shares, seed, core.GenV2)
}

// NewGeneratorEngine builds a benchmark generator on an explicit
// generation engine (the zero value selects the default).
func NewGeneratorEngine(shares [NumCategories]float64, seed int64, engine core.Engine) *Generator {
	if engine == "" {
		engine = core.GenV2
	}
	g := &Generator{Shares: shares, Models: Models(), Engine: engine, seed: uint64(seed)}
	if engine == core.GenV1 {
		g.rng = rand.New(rand.NewSource(seed))
		return g
	}
	g.pcg.SeedStream(uint64(seed), 0x117, 3)
	for c := 0; c < NumCategories; c++ {
		g.volMuLn[c] = g.Models[c].VolMu * math.Ln10
		g.volSigLn[c] = g.Models[c].VolSigma * math.Ln10
		g.durMuLn[c] = g.Models[c].DurMu * math.Ln10
		g.durSigLn[c] = g.Models[c].DurSigma * math.Ln10
	}
	return g
}

// benchmarkDomain salts the benchmark generator's substream family so
// its (a, b) cells can never coincide with the core generation plane's
// campaign or client substreams, nor with the measurement sampler's
// unsalted netsim substreams, under a shared master seed (see DESIGN.md
// "Generation engine streams").
const benchmarkDomain uint64 = 0xBE4C_6D67_656E03BD

// Substream returns an independent benchmark generator on the (a, b)
// cell of this generator's stream family — same shares, models, scales
// and engine, its own PCG seeded SeedStream(master^benchmarkDomain, a,
// b). Cells are pure functions of (master seed, a, b), so parallel
// benchmark generation keyed by (BS, day) is deterministic under any
// schedule. Substreams are a v2 feature; v1 generators return an error.
func (g *Generator) Substream(a, b uint64) (*Generator, error) {
	if g.Engine != core.GenV2 {
		return nil, fmt.Errorf("littrafgen: substreams need engine v2 (v1 preserves the historical single stream)")
	}
	sub := &Generator{
		Shares:      g.Shares,
		Models:      g.Models,
		VolumeScale: g.VolumeScale,
		Engine:      g.Engine,
		seed:        g.seed,
		volMuLn:     g.volMuLn,
		volSigLn:    g.volSigLn,
		durMuLn:     g.durMuLn,
		durSigLn:    g.durSigLn,
	}
	sub.pcg.SeedStream(g.seed^benchmarkDomain, a, b)
	return sub, nil
}

// Sample draws one session.
func (g *Generator) Sample() Session {
	if g.Engine == core.GenV1 {
		cat := PickCategory(g.Shares, g.rng)
		s := g.Models[cat].Sample(g.rng)
		if sc := g.VolumeScale[cat]; sc > 0 && sc != 1 {
			s.Volume *= sc
			s.Throughput *= sc
		}
		return s
	}
	// v2 fast path: cumulative compare over the three shares (an alias
	// table buys nothing at n = 3), then both log-normal marginals in
	// the natural-log domain.
	u := g.pcg.Float64() * (g.Shares[IW] + g.Shares[CS] + g.Shares[MS])
	cat := MS
	if u < g.Shares[IW] {
		cat = IW
	} else if u < g.Shares[IW]+g.Shares[CS] {
		cat = CS
	}
	return g.SampleCategory(cat)
}

// SampleCategory draws one session of a forced category on the
// generator's own stream — the §6.2.3 shared-attribution form of
// Sample, where the category is fixed by a shared arrival realization
// instead of the generator's share pick.
func (g *Generator) SampleCategory(cat Category) Session {
	if g.Engine == core.GenV1 {
		s := g.Models[cat].Sample(g.rng)
		if sc := g.VolumeScale[cat]; sc > 0 && sc != 1 {
			s.Volume *= sc
			s.Throughput *= sc
		}
		return s
	}
	vol := math.Exp(g.volMuLn[cat] + g.volSigLn[cat]*g.pcg.NormFloat64())
	x := g.durMuLn[cat] + g.durSigLn[cat]*g.pcg.NormFloat64()
	dur := 1.0
	if x > 0 {
		dur = math.Exp(x)
	}
	if sc := g.VolumeScale[cat]; sc > 0 && sc != 1 {
		vol *= sc
	}
	return Session{Category: cat, Volume: vol, Duration: dur, Throughput: vol / dur}
}

// NormalizeTotal configures per-category volume scaling so the
// generator's expected total traffic matches wantMean (bytes per
// session on average across categories) — the bm_b normalization of
// §6.2.2. It returns the common scale factor applied.
func (g *Generator) NormalizeTotal(wantMeanVolume float64) float64 {
	var mean float64
	total := g.Shares[IW] + g.Shares[CS] + g.Shares[MS]
	for c := 0; c < NumCategories; c++ {
		mean += g.Shares[c] / total * g.Models[c].MeanVolume()
	}
	if mean <= 0 || wantMeanVolume <= 0 {
		return 1
	}
	scale := wantMeanVolume / mean
	for c := 0; c < NumCategories; c++ {
		g.VolumeScale[c] = scale
	}
	return scale
}

// NormalizePerCategory configures volume scaling per category so each
// category's mean session volume matches the measured value — the bm_c
// normalization of §6.2.2 (infeasible without session-level
// measurements, included as the strongest benchmark).
func (g *Generator) NormalizePerCategory(wantMean [NumCategories]float64) [NumCategories]float64 {
	var scales [NumCategories]float64
	for c := 0; c < NumCategories; c++ {
		m := g.Models[c].MeanVolume()
		if m > 0 && wantMean[c] > 0 {
			scales[c] = wantMean[c] / m
		} else {
			scales[c] = 1
		}
		g.VolumeScale[c] = scales[c]
	}
	return scales
}
