package littrafgen

import (
	"math"
	"math/rand"
	"testing"

	"mobiletraffic/internal/core"
	"mobiletraffic/internal/mathx"
	"mobiletraffic/internal/services"
)

func TestCategoryString(t *testing.T) {
	if IW.String() != "IW" || CS.String() != "CS" || MS.String() != "MS" {
		t.Error("category strings")
	}
	if Category(9).String() != "Category(9)" {
		t.Error("unknown category string")
	}
}

func TestModelsOrdering(t *testing.T) {
	m := Models()
	// Movie streaming carries more volume and lasts longer than casual
	// streaming, which exceeds interactive web.
	if !(m[MS].MeanVolume() > m[CS].MeanVolume() && m[CS].MeanVolume() > m[IW].MeanVolume()) {
		t.Error("category volume ordering violated")
	}
	if !(m[MS].DurMu > m[CS].DurMu && m[CS].DurMu > m[IW].DurMu) {
		t.Error("category duration ordering violated")
	}
}

func TestSampleMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := Models()[CS]
	var logs []float64
	for i := 0; i < 50000; i++ {
		s := m.Sample(rng)
		if s.Volume <= 0 || s.Duration < 1 || s.Throughput <= 0 {
			t.Fatalf("invalid session %+v", s)
		}
		if s.Category != CS {
			t.Fatalf("category = %v", s.Category)
		}
		logs = append(logs, math.Log10(s.Volume))
	}
	if got := mathx.Mean(logs); math.Abs(got-7.3) > 0.02 {
		t.Errorf("log-volume mean = %v", got)
	}
}

func TestMeanVolumeAnalytic(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := Models()[IW]
	var sum float64
	const n = 300000
	for i := 0; i < n; i++ {
		sum += m.Sample(rng).Volume
	}
	got := sum / n
	want := m.MeanVolume()
	if math.Abs(got-want)/want > 0.03 {
		t.Errorf("empirical mean volume %v vs analytic %v", got, want)
	}
}

func TestCategoryOfMapping(t *testing.T) {
	cases := map[string]Category{
		"Netflix":  MS,
		"Twitch":   MS,
		"FB Live":  MS,
		"Youtube":  MS,
		"Deezer":   CS,
		"Spotify":  CS,
		"Facebook": IW,
		"Amazon":   IW,
		"Waze":     IW,
	}
	for name, want := range cases {
		p, err := services.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if got := CategoryOf(p); got != want {
			t.Errorf("CategoryOf(%s) = %v, want %v", name, got, want)
		}
	}
}

func TestBenchmarkShares(t *testing.T) {
	a, b := BMAShares(), BMBShares()
	if math.Abs(a[IW]+a[CS]+a[MS]-1) > 1e-9 {
		t.Errorf("bm_a shares sum to %v", a[IW]+a[CS]+a[MS])
	}
	if math.Abs(b[IW]+b[CS]+b[MS]-1) > 1e-9 {
		t.Errorf("bm_b shares sum to %v", b[IW]+b[CS]+b[MS])
	}
	// Paper values.
	if a[IW] != 0.4930 || a[CS] != 0.4846 || a[MS] != 0.0224 {
		t.Errorf("bm_a shares = %v", a)
	}
	if b[MS] != 0.0789 {
		t.Errorf("bm_b MS share = %v", b[MS])
	}
}

func TestPickCategoryDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	shares := BMAShares()
	var counts [NumCategories]int
	const n = 100000
	for i := 0; i < n; i++ {
		counts[PickCategory(shares, rng)]++
	}
	for c := 0; c < NumCategories; c++ {
		got := float64(counts[c]) / n
		if math.Abs(got-shares[c]) > 0.01 {
			t.Errorf("category %v share = %v, want %v", Category(c), got, shares[c])
		}
	}
}

func TestGeneratorNormalizeTotal(t *testing.T) {
	g := NewGenerator(BMAShares(), 4)
	want := 2e6
	scale := g.NormalizeTotal(want)
	if scale <= 0 {
		t.Fatalf("scale = %v", scale)
	}
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += g.Sample().Volume
	}
	got := sum / n
	if math.Abs(got-want)/want > 0.05 {
		t.Errorf("normalized mean volume = %v, want %v", got, want)
	}
	// Degenerate target leaves scaling untouched.
	g2 := NewGenerator(BMAShares(), 5)
	if s := g2.NormalizeTotal(0); s != 1 {
		t.Errorf("zero-target scale = %v", s)
	}
}

func TestGeneratorNormalizePerCategory(t *testing.T) {
	g := NewGenerator([NumCategories]float64{IW: 1}, 6) // IW only
	want := [NumCategories]float64{IW: 5e5, CS: 1e7, MS: 2e8}
	scales := g.NormalizePerCategory(want)
	for c := 0; c < NumCategories; c++ {
		if scales[c] <= 0 {
			t.Errorf("scale[%d] = %v", c, scales[c])
		}
	}
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += g.Sample().Volume
	}
	got := sum / n
	if math.Abs(got-want[IW])/want[IW] > 0.05 {
		t.Errorf("per-category normalized mean = %v, want %v", got, want[IW])
	}
}

// TestSubstreamDeterministic pins the benchmark substream contract:
// cells are pure functions of (master seed, a, b) — creation order and
// sibling draws never change a cell — scales carry over, the parent
// stream is untouched, and v1 generators are rejected.
func TestSubstreamDeterministic(t *testing.T) {
	g := NewGenerator(BMAShares(), 321)
	g.NormalizeTotal(5e6)

	s1, err := g.Substream(2, 9)
	if err != nil {
		t.Fatal(err)
	}
	ref := make([]Session, 8)
	for i := range ref {
		ref[i] = s1.Sample()
	}

	// Re-derive after interleaving draws on a sibling cell.
	sib, err := g.Substream(5, 5)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := g.Substream(2, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref {
		sib.Sample()
		if got := s2.Sample(); got != ref[i] {
			t.Fatalf("substream (2,9) draw %d changed under interleaving: %+v vs %+v", i, got, ref[i])
		}
	}
	if s2.VolumeScale != g.VolumeScale {
		t.Error("substream did not inherit volume scales")
	}

	// Parent stream unaffected by substream derivation.
	fresh := NewGenerator(BMAShares(), 321)
	fresh.NormalizeTotal(5e6)
	if a, b := g.Sample(), fresh.Sample(); a != b {
		t.Errorf("parent stream perturbed by substream derivation: %+v vs %+v", a, b)
	}

	v1 := NewGeneratorEngine(BMAShares(), 321, core.GenV1)
	if _, err := v1.Substream(0, 0); err == nil {
		t.Error("Substream on a v1 generator did not error")
	}
}
