package dist

import (
	"fmt"
	"math"

	"mobiletraffic/internal/mathx"
)

// FitNormal returns the maximum-likelihood Normal for the samples
// (sample mean, population standard deviation).
func FitNormal(xs []float64) (Normal, error) {
	if len(xs) == 0 {
		return Normal{}, fmt.Errorf("dist: FitNormal: %w", mathx.ErrEmpty)
	}
	return Normal{Mu: mathx.Mean(xs), Sigma: math.Sqrt(mathx.PopVariance(xs))}, nil
}

// FitLogNormal10 returns the maximum-likelihood base-10 log-normal for
// strictly positive samples.
func FitLogNormal10(xs []float64) (LogNormal10, error) {
	if len(xs) == 0 {
		return LogNormal10{}, fmt.Errorf("dist: FitLogNormal10: %w", mathx.ErrEmpty)
	}
	logs := make([]float64, 0, len(xs))
	for _, x := range xs {
		if x <= 0 {
			return LogNormal10{}, fmt.Errorf("dist: FitLogNormal10: non-positive sample %v", x)
		}
		logs = append(logs, math.Log10(x))
	}
	n, err := FitNormal(logs)
	if err != nil {
		return LogNormal10{}, err
	}
	return LogNormal10{Mu: n.Mu, Sigma: n.Sigma}, nil
}

// FitPareto returns the maximum-likelihood Pareto for the samples:
// scale = min(x), shape = n / sum(ln(x_i/scale)).
func FitPareto(xs []float64) (Pareto, error) {
	if len(xs) == 0 {
		return Pareto{}, fmt.Errorf("dist: FitPareto: %w", mathx.ErrEmpty)
	}
	scale, _ := mathx.MinMax(xs)
	if scale <= 0 {
		return Pareto{}, fmt.Errorf("dist: FitPareto: non-positive minimum %v", scale)
	}
	var s float64
	for _, x := range xs {
		s += math.Log(x / scale)
	}
	if s <= 0 {
		// All samples equal the minimum: degenerate, return a steep tail.
		return Pareto{Shape: math.Inf(1), Scale: scale}, nil
	}
	return Pareto{Shape: float64(len(xs)) / s, Scale: scale}, nil
}

// FitParetoFixedShape returns the Pareto with the given shape whose
// scale maximizes the likelihood under the constraint (scale = min x).
// The paper fixes shape b = 1.765 for off-peak arrivals and varies only
// the scale across antennas (§5.1).
func FitParetoFixedShape(xs []float64, shape float64) (Pareto, error) {
	if len(xs) == 0 {
		return Pareto{}, fmt.Errorf("dist: FitParetoFixedShape: %w", mathx.ErrEmpty)
	}
	if shape <= 0 {
		return Pareto{}, fmt.Errorf("dist: FitParetoFixedShape: non-positive shape %v", shape)
	}
	scale, _ := mathx.MinMax(xs)
	if scale <= 0 {
		scale = 1e-9
	}
	return Pareto{Shape: shape, Scale: scale}, nil
}

// FitExponential returns the maximum-likelihood Exponential (rate =
// 1/mean) for non-negative samples.
func FitExponential(xs []float64) (Exponential, error) {
	if len(xs) == 0 {
		return Exponential{}, fmt.Errorf("dist: FitExponential: %w", mathx.ErrEmpty)
	}
	m := mathx.Mean(xs)
	if m <= 0 {
		return Exponential{}, fmt.Errorf("dist: FitExponential: non-positive mean %v", m)
	}
	return Exponential{Rate: 1 / m}, nil
}
