package dist

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mobiletraffic/internal/mathx"
)

// allDists returns a representative instance of every analytic
// distribution for generic invariant checks.
func allDists() map[string]Dist {
	return map[string]Dist{
		"normal":      Normal{Mu: 2, Sigma: 1.5},
		"lognormal10": LogNormal10{Mu: 6.5, Sigma: 0.8},
		"pareto":      Pareto{Shape: 2.5, Scale: 1.2},
		"exponential": Exponential{Rate: 0.7},
		"uniform":     Uniform{Lo: -1, Hi: 3},
		"weibull":     Weibull{K: 1.8, Lambda: 4},
	}
}

// CDF must be monotone non-decreasing from ~0 to ~1.
func TestCDFMonotone(t *testing.T) {
	for name, d := range allDists() {
		t.Run(name, func(t *testing.T) {
			lo := d.Quantile(0.001)
			hi := d.Quantile(0.999)
			prev := -1e-12
			for _, x := range mathx.LinSpace(lo, hi, 200) {
				c := d.CDF(x)
				if c < prev-1e-12 {
					t.Fatalf("CDF decreasing at x=%v: %v < %v", x, c, prev)
				}
				if c < 0 || c > 1 {
					t.Fatalf("CDF out of [0,1] at x=%v: %v", x, c)
				}
				prev = c
			}
		})
	}
}

// Quantile must invert the CDF.
func TestQuantileInvertsCDF(t *testing.T) {
	for name, d := range allDists() {
		t.Run(name, func(t *testing.T) {
			for _, p := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
				x := d.Quantile(p)
				if got := d.CDF(x); math.Abs(got-p) > 1e-6 {
					t.Errorf("CDF(Quantile(%v)) = %v", p, got)
				}
			}
		})
	}
}

// PDF must integrate to ~1 over the bulk of the support.
func TestPDFIntegratesToOne(t *testing.T) {
	for name, d := range allDists() {
		t.Run(name, func(t *testing.T) {
			lo := d.Quantile(1e-6)
			hi := d.Quantile(1 - 1e-6)
			if math.IsInf(hi, 1) {
				hi = d.Quantile(1 - 1e-4)
			}
			var integral float64
			if lo > 0 && hi/lo > 1e3 {
				// Heavy dynamic range (log-normal): substitute
				// u = log10(x), dx = x ln10 du for a well-conditioned
				// trapezoid integral.
				us := mathx.LinSpace(math.Log10(lo), math.Log10(hi), 20001)
				ys := make([]float64, len(us))
				for i, u := range us {
					x := math.Pow(10, u)
					ys[i] = d.PDF(x) * x * math.Ln10
				}
				integral = mathx.Trapezoid(us, ys)
			} else {
				xs := mathx.LinSpace(lo, hi, 20001)
				ys := make([]float64, len(xs))
				for i, x := range xs {
					ys[i] = d.PDF(x)
				}
				integral = mathx.Trapezoid(xs, ys)
			}
			if math.Abs(integral-1) > 2e-3 {
				t.Errorf("PDF integral = %v, want ~1", integral)
			}
		})
	}
}

// Sample moments must approach analytic moments. Each distribution gets
// its own deterministic stream (map iteration order must not influence
// the draws) and a tolerance matched to its tail weight: the sample
// standard deviation of a wide log-normal converges very slowly.
func TestSampleMomentsMatchAnalytic(t *testing.T) {
	const n = 200000
	seed := int64(0)
	for name, d := range allDists() {
		seed++
		tolStd := 0.08
		if name == "lognormal10" {
			tolStd = 0.35 // heavy-tailed: Var[s^2] is enormous
		}
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(len(name))*1000 + 42))
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = d.Sample(rng)
			}
			wantMean, wantVar := d.Mean(), d.Var()
			if math.IsInf(wantMean, 1) || math.IsInf(wantVar, 1) {
				t.Skip("infinite moments")
			}
			gotMean := mathx.Mean(xs)
			gotStd := mathx.Std(xs)
			wantStd := math.Sqrt(wantVar)
			meanTol := 0.05 * math.Max(1, wantStd)
			if name == "lognormal10" {
				meanTol = 0.1 * wantMean
			}
			if math.Abs(gotMean-wantMean) > meanTol {
				t.Errorf("sample mean = %v, want %v", gotMean, wantMean)
			}
			if math.Abs(gotStd-wantStd) > tolStd*math.Max(1, wantStd) {
				t.Errorf("sample std = %v, want %v", gotStd, wantStd)
			}
		})
	}
}

func TestNormalKnownValues(t *testing.T) {
	n := Normal{Mu: 0, Sigma: 1}
	if got := n.PDF(0); math.Abs(got-1/math.Sqrt(2*math.Pi)) > 1e-12 {
		t.Errorf("standard normal PDF(0) = %v", got)
	}
	if got := n.CDF(0); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("standard normal CDF(0) = %v", got)
	}
	if got := n.Quantile(0.975); math.Abs(got-1.959964) > 1e-4 {
		t.Errorf("standard normal Quantile(0.975) = %v, want 1.959964", got)
	}
	if !math.IsInf(n.Quantile(0), -1) || !math.IsInf(n.Quantile(1), 1) {
		t.Error("boundary quantiles must be infinite")
	}
}

func TestNormalDegenerateSigma(t *testing.T) {
	n := Normal{Mu: 3, Sigma: 0}
	if n.PDF(3) != 0 {
		t.Error("degenerate PDF should be 0")
	}
	if n.CDF(2.9) != 0 || n.CDF(3.1) != 1 {
		t.Error("degenerate CDF should step at Mu")
	}
}

func TestLogNormal10Consistency(t *testing.T) {
	l := LogNormal10{Mu: 6, Sigma: 0.5}
	// Median is 10^Mu.
	if got := l.Quantile(0.5); math.Abs(got-1e6)/1e6 > 1e-6 {
		t.Errorf("median = %v, want 1e6", got)
	}
	// PDFLog10 is the paper's Eq. (3): Gaussian over log10 x.
	if got := l.PDFLog10(6); math.Abs(got-Normal{Mu: 6, Sigma: 0.5}.PDF(6)) > 1e-15 {
		t.Errorf("PDFLog10 mismatch: %v", got)
	}
	// PDF over x includes the Jacobian.
	x := 2e6
	want := l.PDFLog10(math.Log10(x)) / (x * math.Ln10)
	if got := l.PDF(x); math.Abs(got-want) > 1e-18 {
		t.Errorf("PDF Jacobian mismatch: %v vs %v", got, want)
	}
	if l.PDF(-1) != 0 || l.CDF(-1) != 0 {
		t.Error("negative support must be zero")
	}
}

func TestParetoKnownValues(t *testing.T) {
	p := Pareto{Shape: 1.765, Scale: 2}
	if p.PDF(1.5) != 0 {
		t.Error("PDF below scale must be 0")
	}
	if got := p.CDF(2); got != 0 {
		t.Errorf("CDF at scale = %v, want 0", got)
	}
	if got := p.CDF(4); math.Abs(got-(1-math.Pow(0.5, 1.765))) > 1e-12 {
		t.Errorf("CDF(4) = %v", got)
	}
	if !math.IsInf(Pareto{Shape: 0.9, Scale: 1}.Mean(), 1) {
		t.Error("mean must be infinite for shape <= 1")
	}
	if !math.IsInf(Pareto{Shape: 1.765, Scale: 1}.Var(), 1) {
		t.Error("variance must be infinite for shape <= 2")
	}
}

func TestMixtureBasics(t *testing.T) {
	m, err := NewMixture(
		[]Dist{Normal{Mu: 0, Sigma: 1}, Normal{Mu: 10, Sigma: 1}},
		[]float64{1, 3},
	)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Mean(); math.Abs(got-7.5) > 1e-9 {
		t.Errorf("mixture mean = %v, want 7.5", got)
	}
	if got := m.CDF(5); math.Abs(got-0.25) > 1e-6 {
		t.Errorf("mixture CDF(5) = %v, want 0.25", got)
	}
	// Quantile inverts CDF.
	for _, p := range []float64{0.1, 0.25, 0.5, 0.9} {
		x := m.Quantile(p)
		if got := m.CDF(x); math.Abs(got-p) > 1e-4 {
			t.Errorf("mixture CDF(Quantile(%v)) = %v", p, got)
		}
	}
	// Sampling respects weights: ~75% of draws near the second mode.
	rng := rand.New(rand.NewSource(1))
	hi := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if m.Sample(rng) > 5 {
			hi++
		}
	}
	if frac := float64(hi) / n; math.Abs(frac-0.75) > 0.02 {
		t.Errorf("fraction from second component = %v, want ~0.75", frac)
	}
}

func TestMixtureValidation(t *testing.T) {
	if _, err := NewMixture(nil, nil); err == nil {
		t.Error("empty mixture must error")
	}
	if _, err := NewMixture([]Dist{Normal{}}, []float64{1, 2}); err == nil {
		t.Error("length mismatch must error")
	}
	if _, err := NewMixture([]Dist{Normal{}}, []float64{-1}); err == nil {
		t.Error("negative weight must error")
	}
	if _, err := NewMixture([]Dist{Normal{}}, []float64{0}); err == nil {
		t.Error("zero total weight must error")
	}
}

// Property: Pareto quantile is monotone in p and respects the scale floor.
func TestParetoQuantileProperty(t *testing.T) {
	f := func(rawShape, rawScale, rawP float64) bool {
		shape := 0.5 + math.Mod(math.Abs(rawShape), 3)
		scale := 0.1 + math.Mod(math.Abs(rawScale), 10)
		p := math.Mod(math.Abs(rawP), 1)
		d := Pareto{Shape: shape, Scale: scale}
		q := d.Quantile(p)
		return q >= scale && (p == 0 || d.CDF(q) >= p-1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
