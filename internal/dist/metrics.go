package dist

import (
	"fmt"
	"math"
)

// EMD returns the first Wasserstein (earth mover) distance between two
// histograms defined on the same bin grid: the integral of the absolute
// CDF difference over the domain. It is zero for identical PDFs and
// grows with the minimum cost of displacing probability mass from one
// distribution into the other, matching the paper's use in §4.3-4.4 and
// §5.4. Both inputs are normalized internally before comparison.
func EMD(a, b *Hist) (float64, error) {
	if !SameGrid(a, b) {
		return 0, ErrGridMismatch
	}
	ta, tb := a.Total(), b.Total()
	if ta <= 0 || tb <= 0 {
		return 0, fmt.Errorf("dist: EMD needs positive mass, got %v and %v", ta, tb)
	}
	var cdfA, cdfB, d float64
	for i := range a.P {
		cdfA += a.P[i] / ta
		cdfB += b.P[i] / tb
		d += math.Abs(cdfA-cdfB) * (a.Edges[i+1] - a.Edges[i])
	}
	return d, nil
}

// EMDSamplesSorted computes the 1-Wasserstein distance between two
// equal-length sorted sample sets: the mean absolute difference of
// order statistics.
func EMDSamplesSorted(a, b []float64) (float64, error) {
	if len(a) != len(b) || len(a) == 0 {
		return 0, fmt.Errorf("dist: EMDSamplesSorted needs equal non-empty lengths, got %d/%d",
			len(a), len(b))
	}
	var s float64
	for i := range a {
		s += math.Abs(a[i] - b[i])
	}
	return s / float64(len(a)), nil
}

// SED returns the squared Euclidean distance between two value vectors,
// the metric the paper applies to duration-volume pair vectors v_s(d)
// (§4.4). Vectors must have equal length.
func SED(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("dist: SED needs equal lengths, got %d/%d", len(a), len(b))
	}
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s, nil
}

// KSStatistic returns the Kolmogorov-Smirnov statistic (max absolute
// CDF difference) between two histograms on the same grid; a secondary
// goodness-of-fit check alongside EMD.
func KSStatistic(a, b *Hist) (float64, error) {
	if !SameGrid(a, b) {
		return 0, ErrGridMismatch
	}
	ta, tb := a.Total(), b.Total()
	if ta <= 0 || tb <= 0 {
		return 0, fmt.Errorf("dist: KS needs positive mass, got %v and %v", ta, tb)
	}
	var cdfA, cdfB, best float64
	for i := range a.P {
		cdfA += a.P[i] / ta
		cdfB += b.P[i] / tb
		if d := math.Abs(cdfA - cdfB); d > best {
			best = d
		}
	}
	return best, nil
}

// TotalVariation returns half the L1 distance between the normalized
// mass vectors of two histograms on the same grid.
func TotalVariation(a, b *Hist) (float64, error) {
	if !SameGrid(a, b) {
		return 0, ErrGridMismatch
	}
	ta, tb := a.Total(), b.Total()
	if ta <= 0 || tb <= 0 {
		return 0, fmt.Errorf("dist: TV needs positive mass, got %v and %v", ta, tb)
	}
	var s float64
	for i := range a.P {
		s += math.Abs(a.P[i]/ta - b.P[i]/tb)
	}
	return s / 2, nil
}
