package dist

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"mobiletraffic/internal/mathx"
)

// Hist is a binned empirical probability distribution: Edges holds the
// len(P)+1 ascending bin boundaries and P the probability mass per bin.
//
// Hist is the in-memory form of the paper's per-(service, BS, day)
// traffic volume PDFs F_s^{c,t}(x) (§3.2). For traffic volumes the
// domain is u = log10(bytes), so Gaussian-shaped masses correspond to
// the base-10 log-normal components of Eq. (3).
type Hist struct {
	Edges []float64
	P     []float64
}

// ErrGridMismatch is returned by operations requiring identical bin grids.
var ErrGridMismatch = errors.New("dist: histogram bin grids differ")

// NewHist creates an empty histogram over the given ascending edges.
func NewHist(edges []float64) (*Hist, error) {
	if len(edges) < 2 {
		return nil, fmt.Errorf("dist: need at least 2 edges, got %d", len(edges))
	}
	for i := 1; i < len(edges); i++ {
		if edges[i] <= edges[i-1] {
			return nil, fmt.Errorf("dist: edges not strictly ascending at %d", i)
		}
	}
	e := make([]float64, len(edges))
	copy(e, edges)
	return &Hist{Edges: e, P: make([]float64, len(edges)-1)}, nil
}

// UniformEdges returns n+1 evenly spaced edges covering [lo, hi].
func UniformEdges(lo, hi float64, n int) []float64 {
	return mathx.LinSpace(lo, hi, n+1)
}

// Bins returns the number of bins.
func (h *Hist) Bins() int { return len(h.P) }

// Centers returns the bin midpoints.
func (h *Hist) Centers() []float64 {
	out := make([]float64, h.Bins())
	for i := range out {
		out[i] = (h.Edges[i] + h.Edges[i+1]) / 2
	}
	return out
}

// Widths returns the bin widths.
func (h *Hist) Widths() []float64 {
	out := make([]float64, h.Bins())
	for i := range out {
		out[i] = h.Edges[i+1] - h.Edges[i]
	}
	return out
}

// BinIndex returns the bin containing x, clamping values outside the
// range to the first or last bin. The right-most edge belongs to the
// last bin.
func (h *Hist) BinIndex(x float64) int {
	n := h.Bins()
	if x <= h.Edges[0] {
		return 0
	}
	if x >= h.Edges[n] {
		return n - 1
	}
	// Find i with Edges[i] <= x < Edges[i+1].
	i := sort.SearchFloat64s(h.Edges, x)
	if i > 0 && h.Edges[i] > x {
		i--
	}
	if i >= n {
		i = n - 1
	}
	return i
}

// Add accumulates weight w of probability mass at position x.
func (h *Hist) Add(x, w float64) { h.P[h.BinIndex(x)] += w }

// AddSamples accumulates unit mass for every sample.
func (h *Hist) AddSamples(xs []float64) {
	for _, x := range xs {
		h.Add(x, 1)
	}
}

// Total returns the sum of all bin masses.
func (h *Hist) Total() float64 { return mathx.Sum(h.P) }

// Normalize scales the masses to sum to one. Normalizing an empty
// histogram is an error.
func (h *Hist) Normalize() error {
	t := h.Total()
	if t <= 0 {
		return errors.New("dist: cannot normalize histogram with zero total mass")
	}
	for i := range h.P {
		h.P[i] /= t
	}
	return nil
}

// Clone returns a deep copy.
func (h *Hist) Clone() *Hist {
	e := make([]float64, len(h.Edges))
	copy(e, h.Edges)
	p := make([]float64, len(h.P))
	copy(p, h.P)
	return &Hist{Edges: e, P: p}
}

// Mean returns the probability-weighted mean of the bin centers.
func (h *Hist) Mean() float64 {
	t := h.Total()
	if t <= 0 {
		return math.NaN()
	}
	var s float64
	for i, c := range h.Centers() {
		s += c * h.P[i]
	}
	return s / t
}

// Var returns the probability-weighted variance around Mean.
func (h *Hist) Var() float64 {
	t := h.Total()
	if t <= 0 {
		return math.NaN()
	}
	m := h.Mean()
	var s float64
	for i, c := range h.Centers() {
		d := c - m
		s += d * d * h.P[i]
	}
	return s / t
}

// Std returns the probability-weighted standard deviation.
func (h *Hist) Std() float64 { return math.Sqrt(h.Var()) }

// Mode returns the center of the bin with the largest mass.
func (h *Hist) Mode() float64 {
	return h.Centers()[mathx.ArgMax(h.P)]
}

// Density returns the probability density per bin (mass / width).
func (h *Hist) Density() []float64 {
	w := h.Widths()
	out := make([]float64, h.Bins())
	for i, p := range h.P {
		out[i] = p / w[i]
	}
	return out
}

// CDF returns P(X <= x) under the histogram, interpolating linearly
// within the containing bin.
func (h *Hist) CDF(x float64) float64 {
	t := h.Total()
	if t <= 0 {
		return math.NaN()
	}
	if x <= h.Edges[0] {
		return 0
	}
	n := h.Bins()
	if x >= h.Edges[n] {
		return 1
	}
	var acc float64
	for i := 0; i < n; i++ {
		if x >= h.Edges[i+1] {
			acc += h.P[i]
			continue
		}
		frac := (x - h.Edges[i]) / (h.Edges[i+1] - h.Edges[i])
		acc += h.P[i] * frac
		break
	}
	return acc / t
}

// Quantile returns the p-th quantile (0 <= p <= 1) with linear
// interpolation inside the containing bin.
func (h *Hist) Quantile(p float64) float64 {
	t := h.Total()
	if t <= 0 || p < 0 || p > 1 {
		return math.NaN()
	}
	target := p * t
	var acc float64
	for i, m := range h.P {
		if acc+m >= target {
			if m == 0 {
				return h.Edges[i]
			}
			frac := (target - acc) / m
			return h.Edges[i] + frac*(h.Edges[i+1]-h.Edges[i])
		}
		acc += m
	}
	return h.Edges[len(h.Edges)-1]
}

// Sample draws a variate: a bin chosen proportionally to mass, then a
// uniform position within the bin.
func (h *Hist) Sample(rng *rand.Rand) float64 {
	t := h.Total()
	u := rng.Float64() * t
	var acc float64
	for i, m := range h.P {
		acc += m
		if u < acc {
			return h.Edges[i] + rng.Float64()*(h.Edges[i+1]-h.Edges[i])
		}
	}
	n := h.Bins()
	return h.Edges[n-1] + rng.Float64()*(h.Edges[n]-h.Edges[n-1])
}

// Rebin redistributes the histogram's mass onto a new edge grid,
// splitting each source bin's mass proportionally to its overlap with
// each destination bin. Mass falling outside the new grid is clamped
// into the boundary bins so the total is conserved.
func (h *Hist) Rebin(edges []float64) (*Hist, error) {
	out, err := NewHist(edges)
	if err != nil {
		return nil, err
	}
	nd := out.Bins()
	for i, m := range h.P {
		if m == 0 {
			continue
		}
		lo, hi := h.Edges[i], h.Edges[i+1]
		w := hi - lo
		// Clamp fully-outside bins into the boundary.
		if hi <= edges[0] {
			out.P[0] += m
			continue
		}
		if lo >= edges[nd] {
			out.P[nd-1] += m
			continue
		}
		for j := 0; j < nd; j++ {
			a := math.Max(lo, out.Edges[j])
			b := math.Min(hi, out.Edges[j+1])
			if b > a {
				out.P[j] += m * (b - a) / w
			}
		}
		// Overlap that spills past the new grid's ends.
		if lo < edges[0] {
			out.P[0] += m * (math.Min(hi, edges[0]) - lo) / w
		}
		if hi > edges[nd] {
			out.P[nd-1] += m * (hi - math.Max(lo, edges[nd])) / w
		}
	}
	return out, nil
}

// ShiftToZeroMean returns the histogram re-expressed on the given
// canonical edge grid after subtracting its mean from the domain. This
// is normalization step (i) of the paper's quantitative service
// comparison (§4.3): it removes the sheer traffic volume of each
// service so EMD compares shapes.
func (h *Hist) ShiftToZeroMean(canonicalEdges []float64) (*Hist, error) {
	m := h.Mean()
	if math.IsNaN(m) {
		return nil, errors.New("dist: cannot center histogram with zero mass")
	}
	shifted := h.Clone()
	for i := range shifted.Edges {
		shifted.Edges[i] -= m
	}
	return shifted.Rebin(canonicalEdges)
}

// SameGrid reports whether two histograms share an identical bin grid.
func SameGrid(a, b *Hist) bool {
	if len(a.Edges) != len(b.Edges) {
		return false
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			return false
		}
	}
	return true
}

// MixHists returns the weighted average of histograms sharing one bin
// grid: paper Eq. (2), the finite-dimensional general mixture model used
// to merge per-BS, per-day PDFs into aggregate PDFs. Weights are
// typically the session counts w_s^{c,t}. Histograms must be normalized
// by the caller if a probability result is desired with non-normalized
// inputs; with normalized inputs the result is normalized.
func MixHists(hists []*Hist, weights []float64) (*Hist, error) {
	if len(hists) == 0 || len(hists) != len(weights) {
		return nil, fmt.Errorf("dist: MixHists needs matching non-empty inputs, got %d/%d",
			len(hists), len(weights))
	}
	var tw float64
	for _, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("dist: negative mixture weight %v", w)
		}
		tw += w
	}
	if tw <= 0 {
		return nil, errors.New("dist: MixHists weights sum to zero")
	}
	out := hists[0].Clone()
	for i := range out.P {
		out.P[i] = 0
	}
	for k, h := range hists {
		if !SameGrid(out, h) {
			return nil, ErrGridMismatch
		}
		w := weights[k] / tw
		for i, p := range h.P {
			out.P[i] += w * p
		}
	}
	return out, nil
}

// FillFromDist populates the histogram masses from an analytic
// distribution by differencing its CDF at the bin edges, then
// normalizes. Useful to compare fitted models against measurements on
// the measurement grid.
func (h *Hist) FillFromDist(d Dist) error {
	for i := range h.P {
		h.P[i] = d.CDF(h.Edges[i+1]) - d.CDF(h.Edges[i])
		if h.P[i] < 0 {
			h.P[i] = 0
		}
	}
	return h.Normalize()
}
