package dist

import (
	"fmt"
	"math"
)

// Chi-square tests over binned counts, the categorical complement of
// KSTwoSample: the sampler-stream equivalence suite uses them to check
// that the v1 and v2 synthesis engines realize the same per-service
// share, arrival-count and truncation marginals (DESIGN.md "Sampler
// streams and determinism").

// Chi2GoF computes Pearson's goodness-of-fit statistic of observed
// counts against expected category probabilities, with the p-value of
// the null hypothesis that the observations were drawn from them.
// probs need not be normalized. Categories with zero expected mass
// must have zero observations.
func Chi2GoF(obs, probs []float64) (stat float64, df int, pvalue float64, err error) {
	if len(obs) == 0 || len(obs) != len(probs) {
		return 0, 0, 0, fmt.Errorf("dist: chi2 needs matching non-empty counts/probs, got %d/%d", len(obs), len(probs))
	}
	var n, w float64
	for i := range obs {
		if obs[i] < 0 || probs[i] < 0 {
			return 0, 0, 0, fmt.Errorf("dist: negative count or probability at %d", i)
		}
		n += obs[i]
		w += probs[i]
	}
	if n <= 0 || w <= 0 {
		return 0, 0, 0, fmt.Errorf("dist: chi2 needs positive totals")
	}
	df = -1
	for i := range obs {
		e := n * probs[i] / w
		if e == 0 {
			if obs[i] != 0 {
				return 0, 0, 0, fmt.Errorf("dist: observations in zero-probability category %d", i)
			}
			continue
		}
		d := obs[i] - e
		stat += d * d / e
		df++
	}
	if df < 1 {
		return 0, 0, 0, fmt.Errorf("dist: chi2 needs at least two non-degenerate categories")
	}
	return stat, df, chi2Survival(stat, df), nil
}

// Chi2Homogeneity computes the two-sample chi-square statistic over
// matched category counts (Press et al.'s chstwo, valid for unequal
// sample totals) with the p-value of the null hypothesis that both
// count vectors come from one categorical distribution. Categories
// empty in both samples are skipped.
func Chi2Homogeneity(a, b []float64) (stat float64, df int, pvalue float64, err error) {
	if len(a) == 0 || len(a) != len(b) {
		return 0, 0, 0, fmt.Errorf("dist: chi2 needs matching non-empty count vectors, got %d/%d", len(a), len(b))
	}
	var na, nb float64
	for i := range a {
		if a[i] < 0 || b[i] < 0 {
			return 0, 0, 0, fmt.Errorf("dist: negative count at %d", i)
		}
		na += a[i]
		nb += b[i]
	}
	if na <= 0 || nb <= 0 {
		return 0, 0, 0, fmt.Errorf("dist: chi2 needs positive totals")
	}
	ra, rb := math.Sqrt(nb/na), math.Sqrt(na/nb)
	df = -1
	for i := range a {
		tot := a[i] + b[i]
		if tot == 0 {
			continue
		}
		t := ra*a[i] - rb*b[i]
		stat += t * t / tot
		df++
	}
	if df < 1 {
		return 0, 0, 0, fmt.Errorf("dist: chi2 needs at least two non-empty categories")
	}
	return stat, df, chi2Survival(stat, df), nil
}

// chi2Survival evaluates P(X > stat) for X ~ chi-square with df
// degrees of freedom: the upper regularized incomplete gamma
// Q(df/2, stat/2).
func chi2Survival(stat float64, df int) float64 {
	if stat <= 0 {
		return 1
	}
	return gammaQ(float64(df)/2, stat/2)
}

// gammaQ is the upper regularized incomplete gamma function Q(a, x),
// via the series expansion for x < a+1 and the Lentz continued
// fraction otherwise (Numerical Recipes gser/gcf).
func gammaQ(a, x float64) float64 {
	if x < 0 || a <= 0 {
		return math.NaN()
	}
	if x == 0 {
		return 1
	}
	lg, _ := math.Lgamma(a)
	if x < a+1 {
		// P(a, x) by series, return 1 - P.
		ap := a
		sum := 1 / a
		del := sum
		for i := 0; i < 500; i++ {
			ap++
			del *= x / ap
			sum += del
			if math.Abs(del) < math.Abs(sum)*1e-15 {
				break
			}
		}
		return 1 - sum*math.Exp(-x+a*math.Log(x)-lg)
	}
	// Q(a, x) by continued fraction.
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i < 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-15 {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}
