package dist

import (
	"fmt"
	"math"
	"math/rand"
)

// Exponential is the exponential distribution with the given Rate
// (lambda). It models the negative exponential decay of per-service
// session shares across the service ranking (paper §4.1, Fig. 4) and
// inter-arrival gaps in Poisson arrival processes.
type Exponential struct {
	Rate float64
}

// PDF implements Dist.
func (e Exponential) PDF(x float64) float64 {
	if x < 0 || e.Rate <= 0 {
		return 0
	}
	return e.Rate * math.Exp(-e.Rate*x)
}

// CDF implements Dist.
func (e Exponential) CDF(x float64) float64 {
	if x < 0 {
		return 0
	}
	return 1 - math.Exp(-e.Rate*x)
}

// Quantile implements Dist.
func (e Exponential) Quantile(p float64) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return math.Inf(1)
	}
	return -math.Log(1-p) / e.Rate
}

// Sample implements Dist.
func (e Exponential) Sample(rng *rand.Rand) float64 {
	return rng.ExpFloat64() / e.Rate
}

// Mean implements Dist.
func (e Exponential) Mean() float64 { return 1 / e.Rate }

// Var implements Dist.
func (e Exponential) Var() float64 { return 1 / (e.Rate * e.Rate) }

// String returns a compact description.
func (e Exponential) String() string { return fmt.Sprintf("Exponential(rate=%.4g)", e.Rate) }

// Uniform is the continuous uniform distribution on [Lo, Hi).
type Uniform struct {
	Lo, Hi float64
}

// PDF implements Dist.
func (u Uniform) PDF(x float64) float64 {
	if x < u.Lo || x >= u.Hi || u.Hi <= u.Lo {
		return 0
	}
	return 1 / (u.Hi - u.Lo)
}

// CDF implements Dist.
func (u Uniform) CDF(x float64) float64 {
	switch {
	case x < u.Lo:
		return 0
	case x >= u.Hi:
		return 1
	default:
		return (x - u.Lo) / (u.Hi - u.Lo)
	}
}

// Quantile implements Dist.
func (u Uniform) Quantile(p float64) float64 { return u.Lo + p*(u.Hi-u.Lo) }

// Sample implements Dist.
func (u Uniform) Sample(rng *rand.Rand) float64 { return u.Lo + rng.Float64()*(u.Hi-u.Lo) }

// Mean implements Dist.
func (u Uniform) Mean() float64 { return (u.Lo + u.Hi) / 2 }

// Var implements Dist.
func (u Uniform) Var() float64 { d := u.Hi - u.Lo; return d * d / 12 }

// String returns a compact description.
func (u Uniform) String() string { return fmt.Sprintf("Uniform[%.4g, %.4g)", u.Lo, u.Hi) }

// Weibull is the Weibull distribution with shape K and scale Lambda.
// It serves as an alternative session-duration family in the
// model-selection ablation of §5.3.
type Weibull struct {
	K      float64 // shape
	Lambda float64 // scale
}

// PDF implements Dist.
func (w Weibull) PDF(x float64) float64 {
	if x < 0 || w.K <= 0 || w.Lambda <= 0 {
		return 0
	}
	z := x / w.Lambda
	return w.K / w.Lambda * math.Pow(z, w.K-1) * math.Exp(-math.Pow(z, w.K))
}

// CDF implements Dist.
func (w Weibull) CDF(x float64) float64 {
	if x < 0 {
		return 0
	}
	return 1 - math.Exp(-math.Pow(x/w.Lambda, w.K))
}

// Quantile implements Dist.
func (w Weibull) Quantile(p float64) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return math.Inf(1)
	}
	return w.Lambda * math.Pow(-math.Log(1-p), 1/w.K)
}

// Sample implements Dist.
func (w Weibull) Sample(rng *rand.Rand) float64 { return w.Quantile(rng.Float64()) }

// Mean implements Dist.
func (w Weibull) Mean() float64 { return w.Lambda * math.Gamma(1+1/w.K) }

// Var implements Dist.
func (w Weibull) Var() float64 {
	g1 := math.Gamma(1 + 1/w.K)
	g2 := math.Gamma(1 + 2/w.K)
	return w.Lambda * w.Lambda * (g2 - g1*g1)
}

// String returns a compact description.
func (w Weibull) String() string { return fmt.Sprintf("Weibull(k=%.4g, lambda=%.4g)", w.K, w.Lambda) }

// Mixture is a finite weighted mixture of component distributions.
// Weights need not be normalized; they are treated proportionally.
type Mixture struct {
	Components []Dist
	Weights    []float64
}

// NewMixture builds a mixture, validating that the component and weight
// counts match and weights are non-negative with a positive sum.
func NewMixture(components []Dist, weights []float64) (*Mixture, error) {
	if len(components) != len(weights) || len(components) == 0 {
		return nil, fmt.Errorf("dist: mixture needs matching non-empty components/weights, got %d/%d",
			len(components), len(weights))
	}
	var sum float64
	for _, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("dist: negative mixture weight %v", w)
		}
		sum += w
	}
	if sum <= 0 {
		return nil, fmt.Errorf("dist: mixture weights sum to %v", sum)
	}
	return &Mixture{Components: components, Weights: weights}, nil
}

func (m *Mixture) totalWeight() float64 {
	var s float64
	for _, w := range m.Weights {
		s += w
	}
	return s
}

// PDF implements Dist.
func (m *Mixture) PDF(x float64) float64 {
	tw := m.totalWeight()
	var s float64
	for i, c := range m.Components {
		s += m.Weights[i] / tw * c.PDF(x)
	}
	return s
}

// CDF implements Dist.
func (m *Mixture) CDF(x float64) float64 {
	tw := m.totalWeight()
	var s float64
	for i, c := range m.Components {
		s += m.Weights[i] / tw * c.CDF(x)
	}
	return s
}

// Quantile implements Dist by bisection on the mixture CDF.
func (m *Mixture) Quantile(p float64) float64 {
	if p <= 0 {
		p = 1e-12
	}
	if p >= 1 {
		p = 1 - 1e-12
	}
	// Bracket using component quantiles.
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, c := range m.Components {
		if q := c.Quantile(1e-9); q < lo {
			lo = q
		}
		if q := c.Quantile(1 - 1e-9); q > hi && !math.IsInf(q, 1) {
			hi = q
		}
	}
	if math.IsInf(hi, 1) || hi <= lo {
		hi = lo + 1e12
	}
	for iter := 0; iter < 200; iter++ {
		mid := (lo + hi) / 2
		if m.CDF(mid) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// Sample implements Dist: choose a component by weight, then sample it.
func (m *Mixture) Sample(rng *rand.Rand) float64 {
	u := rng.Float64() * m.totalWeight()
	var acc float64
	for i, w := range m.Weights {
		acc += w
		if u < acc {
			return m.Components[i].Sample(rng)
		}
	}
	return m.Components[len(m.Components)-1].Sample(rng)
}

// Mean implements Dist.
func (m *Mixture) Mean() float64 {
	tw := m.totalWeight()
	var s float64
	for i, c := range m.Components {
		s += m.Weights[i] / tw * c.Mean()
	}
	return s
}

// Var implements Dist via E[X^2] - E[X]^2 over components.
func (m *Mixture) Var() float64 {
	tw := m.totalWeight()
	var ex, ex2 float64
	for i, c := range m.Components {
		w := m.Weights[i] / tw
		cm := c.Mean()
		ex += w * cm
		ex2 += w * (c.Var() + cm*cm)
	}
	return ex2 - ex*ex
}
