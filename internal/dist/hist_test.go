package dist

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mobiletraffic/internal/mathx"
)

func mustHist(t *testing.T, edges []float64) *Hist {
	t.Helper()
	h, err := NewHist(edges)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestNewHistValidation(t *testing.T) {
	if _, err := NewHist([]float64{1}); err == nil {
		t.Error("single edge must error")
	}
	if _, err := NewHist([]float64{1, 1}); err == nil {
		t.Error("non-ascending edges must error")
	}
	if _, err := NewHist([]float64{2, 1}); err == nil {
		t.Error("descending edges must error")
	}
	h, err := NewHist([]float64{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if h.Bins() != 2 {
		t.Errorf("Bins = %d, want 2", h.Bins())
	}
}

func TestHistAddAndBinIndex(t *testing.T) {
	h := mustHist(t, []float64{0, 1, 2, 3})
	cases := []struct {
		x    float64
		want int
	}{
		{-5, 0}, {0, 0}, {0.5, 0}, {1, 1}, {1.99, 1}, {2.5, 2}, {3, 2}, {99, 2},
	}
	for _, tc := range cases {
		if got := h.BinIndex(tc.x); got != tc.want {
			t.Errorf("BinIndex(%v) = %d, want %d", tc.x, got, tc.want)
		}
	}
	h.Add(0.5, 2)
	h.Add(2.5, 1)
	if h.P[0] != 2 || h.P[2] != 1 {
		t.Errorf("P = %v", h.P)
	}
	if h.Total() != 3 {
		t.Errorf("Total = %v", h.Total())
	}
}

func TestHistNormalize(t *testing.T) {
	h := mustHist(t, []float64{0, 1, 2})
	if err := h.Normalize(); err == nil {
		t.Error("normalizing empty histogram must error")
	}
	h.Add(0.5, 3)
	h.Add(1.5, 1)
	if err := h.Normalize(); err != nil {
		t.Fatal(err)
	}
	if !mathx.AlmostEqual(h.P[0], 0.75, 1e-12) || !mathx.AlmostEqual(h.P[1], 0.25, 1e-12) {
		t.Errorf("P = %v", h.P)
	}
}

func TestHistMoments(t *testing.T) {
	h := mustHist(t, []float64{0, 1, 2})
	h.P = []float64{0.5, 0.5} // centers 0.5 and 1.5
	if got := h.Mean(); !mathx.AlmostEqual(got, 1, 1e-12) {
		t.Errorf("Mean = %v", got)
	}
	if got := h.Var(); !mathx.AlmostEqual(got, 0.25, 1e-12) {
		t.Errorf("Var = %v", got)
	}
	if got := h.Std(); !mathx.AlmostEqual(got, 0.5, 1e-12) {
		t.Errorf("Std = %v", got)
	}
}

func TestHistCDFQuantileRoundTrip(t *testing.T) {
	h := mustHist(t, mathx.LinSpace(0, 10, 41))
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		h.Add(rng.Float64()*10, 1)
	}
	if err := h.Normalize(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []float64{0.05, 0.25, 0.5, 0.75, 0.95} {
		x := h.Quantile(p)
		if got := h.CDF(x); math.Abs(got-p) > 1e-9 {
			t.Errorf("CDF(Quantile(%v)) = %v", p, got)
		}
	}
	if got := h.CDF(-1); got != 0 {
		t.Errorf("CDF below support = %v", got)
	}
	if got := h.CDF(11); got != 1 {
		t.Errorf("CDF above support = %v", got)
	}
}

func TestHistSampleDistribution(t *testing.T) {
	h := mustHist(t, []float64{0, 1, 2})
	h.P = []float64{0.2, 0.8}
	rng := rand.New(rand.NewSource(9))
	var second int
	const n = 50000
	for i := 0; i < n; i++ {
		x := h.Sample(rng)
		if x < 0 || x > 2 {
			t.Fatalf("sample %v outside support", x)
		}
		if x >= 1 {
			second++
		}
	}
	if frac := float64(second) / n; math.Abs(frac-0.8) > 0.01 {
		t.Errorf("second-bin fraction = %v, want ~0.8", frac)
	}
}

func TestHistMode(t *testing.T) {
	h := mustHist(t, []float64{0, 1, 2, 3})
	h.P = []float64{0.2, 0.7, 0.1}
	if got := h.Mode(); got != 1.5 {
		t.Errorf("Mode = %v, want 1.5", got)
	}
}

func TestHistRebinConservesMass(t *testing.T) {
	h := mustHist(t, mathx.LinSpace(0, 10, 21))
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 1000; i++ {
		h.Add(rng.Float64()*10, 1)
	}
	r, err := h.Rebin(mathx.LinSpace(-2, 12, 29))
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.AlmostEqual(r.Total(), h.Total(), 1e-9) {
		t.Errorf("rebinned total = %v, want %v", r.Total(), h.Total())
	}
	// Rebin to a narrower grid clamps mass at the boundary but conserves it.
	narrow, err := h.Rebin(mathx.LinSpace(2, 8, 13))
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.AlmostEqual(narrow.Total(), h.Total(), 1e-9) {
		t.Errorf("clamped rebin total = %v, want %v", narrow.Total(), h.Total())
	}
	// Mean must be (approximately) preserved for a covering grid.
	if math.Abs(r.Mean()-h.Mean()) > 0.3 {
		t.Errorf("rebinned mean = %v, want ~%v", r.Mean(), h.Mean())
	}
}

func TestShiftToZeroMean(t *testing.T) {
	h := mustHist(t, mathx.LinSpace(4, 8, 41))
	n := Normal{Mu: 6.2, Sigma: 0.4}
	if err := h.FillFromDist(n); err != nil {
		t.Fatal(err)
	}
	canonical := mathx.LinSpace(-4, 4, 161)
	c, err := h.ShiftToZeroMean(canonical)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c.Mean()) > 0.05 {
		t.Errorf("centered mean = %v, want ~0", c.Mean())
	}
	if !mathx.AlmostEqual(c.Total(), h.Total(), 1e-9) {
		t.Errorf("centered total = %v, want %v", c.Total(), h.Total())
	}
}

func TestMixHists(t *testing.T) {
	edges := mathx.LinSpace(0, 1, 11)
	a := mustHist(t, edges)
	b := mustHist(t, edges)
	a.P[0] = 1
	b.P[9] = 1
	m, err := MixHists([]*Hist{a, b}, []float64{3, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.AlmostEqual(m.P[0], 0.75, 1e-12) || !mathx.AlmostEqual(m.P[9], 0.25, 1e-12) {
		t.Errorf("mixed P = %v", m.P)
	}
	// Grid mismatch must error.
	c := mustHist(t, mathx.LinSpace(0, 2, 11))
	c.P[0] = 1
	if _, err := MixHists([]*Hist{a, c}, []float64{1, 1}); err == nil {
		t.Error("grid mismatch must error")
	}
	if _, err := MixHists(nil, nil); err == nil {
		t.Error("empty input must error")
	}
	if _, err := MixHists([]*Hist{a}, []float64{0}); err == nil {
		t.Error("zero weights must error")
	}
	if _, err := MixHists([]*Hist{a}, []float64{-1}); err == nil {
		t.Error("negative weights must error")
	}
}

func TestFillFromDist(t *testing.T) {
	h := mustHist(t, mathx.LinSpace(-5, 5, 101))
	if err := h.FillFromDist(Normal{Mu: 0, Sigma: 1}); err != nil {
		t.Fatal(err)
	}
	if !mathx.AlmostEqual(h.Total(), 1, 1e-9) {
		t.Errorf("total = %v", h.Total())
	}
	if math.Abs(h.Mean()) > 0.01 {
		t.Errorf("mean = %v", h.Mean())
	}
	if math.Abs(h.Std()-1) > 0.02 {
		t.Errorf("std = %v", h.Std())
	}
}

// Property: histogram built from samples reproduces sample mean within
// a bin width.
func TestHistMeanProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h, _ := NewHist(mathx.LinSpace(-10, 10, 201))
		xs := make([]float64, 500)
		for i := range xs {
			xs[i] = mathx.Clamp(rng.NormFloat64()*2, -9.9, 9.9)
			h.Add(xs[i], 1)
		}
		return math.Abs(h.Mean()-mathx.Mean(xs)) < 0.1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
