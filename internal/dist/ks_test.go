package dist

import (
	"math/rand"
	"testing"
)

func TestKSTwoSampleSameDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 3000
	a := make([]float64, n)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64()
	}
	d, p, err := KSTwoSample(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d > 0.05 {
		t.Errorf("same-distribution KS d = %v", d)
	}
	if p < 0.01 {
		t.Errorf("same-distribution p-value = %v, want not rejected", p)
	}
}

func TestKSTwoSampleDifferentDistributions(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 3000
	a := make([]float64, n)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64() + 0.5 // shifted
	}
	d, p, err := KSTwoSample(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d < 0.1 {
		t.Errorf("shifted-distribution KS d = %v, want large", d)
	}
	if p > 1e-6 {
		t.Errorf("shifted-distribution p-value = %v, want rejected", p)
	}
}

func TestKSTwoSampleIdenticalSamples(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	d, p, err := KSTwoSample(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Errorf("identical-sample d = %v", d)
	}
	if p < 0.99 {
		t.Errorf("identical-sample p = %v", p)
	}
}

func TestKSTwoSampleValidation(t *testing.T) {
	if _, _, err := KSTwoSample(nil, []float64{1}); err == nil {
		t.Error("empty sample must error")
	}
}

func TestKSTwoSampleUnequalSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := make([]float64, 200)
	b := make([]float64, 5000)
	for i := range a {
		a[i] = rng.ExpFloat64()
	}
	for i := range b {
		b[i] = rng.ExpFloat64()
	}
	d, p, err := KSTwoSample(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d > 0.12 || p < 0.01 {
		t.Errorf("unequal-size same-dist: d=%v p=%v", d, p)
	}
}
