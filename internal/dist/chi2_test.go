package dist

import (
	"math"
	"math/rand"
	"testing"
)

// TestGammaQKnownValues checks the incomplete-gamma backend against
// closed-form chi-square survival values: for df=2, P(X>x) = exp(-x/2);
// for df=1, P(X>x) = erfc(sqrt(x/2)).
func TestGammaQKnownValues(t *testing.T) {
	for _, x := range []float64{0.1, 1, 2, 5, 10, 30} {
		want := math.Exp(-x / 2)
		if got := chi2Survival(x, 2); math.Abs(got-want) > 1e-12*want+1e-15 {
			t.Errorf("chi2Survival(%v, 2) = %v, want %v", x, got, want)
		}
		want1 := math.Erfc(math.Sqrt(x / 2))
		if got := chi2Survival(x, 1); math.Abs(got-want1) > 1e-12*want1+1e-14 {
			t.Errorf("chi2Survival(%v, 1) = %v, want %v", x, got, want1)
		}
	}
	// Median of chi-square with large df approaches df(1-2/(9df))^3.
	for _, df := range []int{10, 50, 200} {
		med := float64(df) * math.Pow(1-2.0/(9*float64(df)), 3)
		if p := chi2Survival(med, df); math.Abs(p-0.5) > 0.01 {
			t.Errorf("chi2Survival at df=%d median: %v, want ~0.5", df, p)
		}
	}
	if p := chi2Survival(0, 5); p != 1 {
		t.Errorf("chi2Survival(0) = %v, want 1", p)
	}
}

func TestChi2GoFValidation(t *testing.T) {
	cases := []struct {
		name       string
		obs, probs []float64
	}{
		{"empty", nil, nil},
		{"mismatch", []float64{1, 2}, []float64{0.5}},
		{"negative-count", []float64{-1, 2}, []float64{0.5, 0.5}},
		{"zero-prob-with-obs", []float64{1, 2}, []float64{0, 1}},
		{"one-category", []float64{5, 0}, []float64{1, 0}},
	}
	for _, tc := range cases {
		if _, _, _, err := Chi2GoF(tc.obs, tc.probs); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestChi2HomogeneityValidation(t *testing.T) {
	cases := []struct {
		name string
		a, b []float64
	}{
		{"empty", nil, nil},
		{"mismatch", []float64{1, 2}, []float64{1}},
		{"negative", []float64{1, -2}, []float64{1, 2}},
		{"zero-total", []float64{0, 0}, []float64{1, 2}},
		{"one-category", []float64{5, 0}, []float64{3, 0}},
	}
	for _, tc := range cases {
		if _, _, _, err := Chi2Homogeneity(tc.a, tc.b); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

// TestChi2GoFCalibration draws categorical samples from known
// probabilities and checks the test accepts matching draws and rejects
// shifted ones.
func TestChi2GoFCalibration(t *testing.T) {
	probs := []float64{0.5, 0.3, 0.15, 0.05}
	rng := rand.New(rand.NewSource(5))
	draw := func(p []float64, n int) []float64 {
		counts := make([]float64, len(p))
		for i := 0; i < n; i++ {
			u := rng.Float64()
			for j, w := range p {
				if u < w {
					counts[j]++
					break
				}
				u -= w
			}
		}
		return counts
	}
	obs := draw(probs, 50000)
	if _, df, p, err := Chi2GoF(obs, probs); err != nil || df != 3 || p < 1e-3 {
		t.Errorf("matching sample rejected: df=%d p=%v err=%v", df, p, err)
	}
	shifted := []float64{0.45, 0.35, 0.15, 0.05}
	obs = draw(shifted, 50000)
	if _, _, p, err := Chi2GoF(obs, probs); err != nil || p > 1e-6 {
		t.Errorf("shifted sample accepted: p=%v err=%v", p, err)
	}
	// Unnormalized weights give the same verdict.
	obs = draw(probs, 50000)
	w := []float64{50, 30, 15, 5}
	if _, _, p, err := Chi2GoF(obs, w); err != nil || p < 1e-3 {
		t.Errorf("unnormalized weights rejected matching sample: p=%v err=%v", p, err)
	}
}

// TestChi2HomogeneityCalibration checks the two-sample form with
// unequal totals: same-distribution pairs pass, different ones fail,
// and categories empty in both samples are ignored.
func TestChi2HomogeneityCalibration(t *testing.T) {
	probs := []float64{0.4, 0.3, 0.2, 0.1, 0}
	rng := rand.New(rand.NewSource(9))
	draw := func(p []float64, n int) []float64 {
		counts := make([]float64, len(p))
		for i := 0; i < n; i++ {
			u := rng.Float64()
			for j, w := range p {
				if u < w {
					counts[j]++
					break
				}
				u -= w
			}
		}
		return counts
	}
	a := draw(probs, 80000)
	b := draw(probs, 20000) // quarter-size sample
	stat, df, p, err := Chi2Homogeneity(a, b)
	if err != nil || df != 3 || p < 1e-3 {
		t.Errorf("same-distribution pair rejected: chi2=%v df=%d p=%v err=%v", stat, df, p, err)
	}
	c := draw([]float64{0.3, 0.4, 0.2, 0.1, 0}, 20000)
	if _, _, p, err := Chi2Homogeneity(a, c); err != nil || p > 1e-6 {
		t.Errorf("different-distribution pair accepted: p=%v err=%v", p, err)
	}
}
