// Package dist provides the probability machinery used throughout the
// session-level traffic pipeline: analytic distributions (normal,
// base-10 log-normal, Pareto, exponential, Weibull, uniform) with
// sampling and fitting, binned empirical PDFs (Hist), the weighted
// mixture averaging of paper Eq. (1)-(2), and the earth mover (EMD) and
// squared Euclidean (SED) distances of paper §4.3-4.4.
//
// Per the paper's convention, per-session traffic volume PDFs live on a
// base-10 logarithmic abscissa: a Hist over u = log10(bytes) whose shape
// is Gaussian corresponds to the paper's LogN(x; mu, sigma^2) of Eq. (3).
package dist

import (
	"fmt"
	"math"
	"math/rand"
)

// Dist is a one-dimensional continuous probability distribution.
type Dist interface {
	// PDF returns the probability density at x.
	PDF(x float64) float64
	// CDF returns P(X <= x).
	CDF(x float64) float64
	// Quantile returns the smallest x with CDF(x) >= p, for p in (0, 1).
	Quantile(p float64) float64
	// Sample draws one variate using rng.
	Sample(rng *rand.Rand) float64
	// Mean returns the distribution mean (may be +Inf).
	Mean() float64
	// Var returns the distribution variance (may be +Inf).
	Var() float64
}

// Normal is the Gaussian distribution with mean Mu and standard
// deviation Sigma. It models the daytime mode of the per-minute session
// arrival process (paper §5.1).
type Normal struct {
	Mu    float64
	Sigma float64
}

// PDF implements Dist.
func (n Normal) PDF(x float64) float64 {
	if n.Sigma <= 0 {
		return 0
	}
	z := (x - n.Mu) / n.Sigma
	return math.Exp(-z*z/2) / (n.Sigma * math.Sqrt(2*math.Pi))
}

// CDF implements Dist.
func (n Normal) CDF(x float64) float64 {
	if n.Sigma <= 0 {
		if x < n.Mu {
			return 0
		}
		return 1
	}
	return 0.5 * math.Erfc(-(x-n.Mu)/(n.Sigma*math.Sqrt2))
}

// Quantile implements Dist using the Acklam rational approximation of
// the inverse normal CDF, refined with one Halley step; the result is
// accurate to about 1e-9 over (0, 1).
func (n Normal) Quantile(p float64) float64 {
	return n.Mu + n.Sigma*stdNormalQuantile(p)
}

// Sample implements Dist.
func (n Normal) Sample(rng *rand.Rand) float64 {
	return n.Mu + n.Sigma*rng.NormFloat64()
}

// Mean implements Dist.
func (n Normal) Mean() float64 { return n.Mu }

// Var implements Dist.
func (n Normal) Var() float64 { return n.Sigma * n.Sigma }

// String returns a compact description.
func (n Normal) String() string { return fmt.Sprintf("Normal(mu=%.4g, sigma=%.4g)", n.Mu, n.Sigma) }

// stdNormalQuantile returns the quantile of the standard normal
// distribution via Peter Acklam's algorithm plus one Halley refinement.
func stdNormalQuantile(p float64) float64 {
	if math.IsNaN(p) || p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	const (
		a1 = -3.969683028665376e+01
		a2 = 2.209460984245205e+02
		a3 = -2.759285104469687e+02
		a4 = 1.383577518672690e+02
		a5 = -3.066479806614716e+01
		a6 = 2.506628277459239e+00

		b1 = -5.447609879822406e+01
		b2 = 1.615858368580409e+02
		b3 = -1.556989798598866e+02
		b4 = 6.680131188771972e+01
		b5 = -1.328068155288572e+01

		c1 = -7.784894002430293e-03
		c2 = -3.223964580411365e-01
		c3 = -2.400758277161838e+00
		c4 = -2.549732539343734e+00
		c5 = 4.374664141464968e+00
		c6 = 2.938163982698783e+00

		d1 = 7.784695709041462e-03
		d2 = 3.224671290700398e-01
		d3 = 2.445134137142996e+00
		d4 = 3.754408661907416e+00

		pLow  = 0.02425
		pHigh = 1 - pLow
	)
	var x float64
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c1*q+c2)*q+c3)*q+c4)*q+c5)*q + c6) /
			((((d1*q+d2)*q+d3)*q+d4)*q + 1)
	case p <= pHigh:
		q := p - 0.5
		r := q * q
		x = (((((a1*r+a2)*r+a3)*r+a4)*r+a5)*r + a6) * q /
			(((((b1*r+b2)*r+b3)*r+b4)*r+b5)*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c1*q+c2)*q+c3)*q+c4)*q+c5)*q + c6) /
			((((d1*q+d2)*q+d3)*q+d4)*q + 1)
	}
	// One Halley step against the exact CDF.
	e := 0.5*math.Erfc(-x/math.Sqrt2) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x = x - u/(1+x*u/2)
	return x
}

// LogNormal10 is the base-10 log-normal of paper Eq. (3): log10(X) is
// Normal(Mu, Sigma). Mu and Sigma are expressed in decades (log10
// units). It models the main trend of per-session traffic volume PDFs.
type LogNormal10 struct {
	Mu    float64 // mean of log10(X)
	Sigma float64 // std of log10(X)
}

const ln10 = math.Ln10

// PDF implements Dist; the density is over x itself (it includes the
// 1/(x ln 10) Jacobian). Use PDFLog10 for the density over log10(x),
// which is the form plotted in the paper.
func (l LogNormal10) PDF(x float64) float64 {
	if x <= 0 || l.Sigma <= 0 {
		return 0
	}
	return l.PDFLog10(math.Log10(x)) / (x * ln10)
}

// PDFLog10 returns the density over u = log10(x): a Gaussian with mean
// Mu and deviation Sigma, exactly Eq. (3) of the paper.
func (l LogNormal10) PDFLog10(u float64) float64 {
	return Normal{Mu: l.Mu, Sigma: l.Sigma}.PDF(u)
}

// CDF implements Dist.
func (l LogNormal10) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return Normal{Mu: l.Mu, Sigma: l.Sigma}.CDF(math.Log10(x))
}

// Quantile implements Dist.
func (l LogNormal10) Quantile(p float64) float64 {
	return math.Pow(10, Normal{Mu: l.Mu, Sigma: l.Sigma}.Quantile(p))
}

// Sample implements Dist.
func (l LogNormal10) Sample(rng *rand.Rand) float64 {
	return math.Pow(10, l.Mu+l.Sigma*rng.NormFloat64())
}

// Mean implements Dist: E[X] = 10^Mu * exp((Sigma*ln10)^2 / 2).
func (l LogNormal10) Mean() float64 {
	s := l.Sigma * ln10
	return math.Pow(10, l.Mu) * math.Exp(s*s/2)
}

// Var implements Dist.
func (l LogNormal10) Var() float64 {
	s := l.Sigma * ln10
	m := l.Mean()
	return (math.Exp(s*s) - 1) * m * m
}

// String returns a compact description.
func (l LogNormal10) String() string {
	return fmt.Sprintf("LogNormal10(mu=%.4g, sigma=%.4g)", l.Mu, l.Sigma)
}

// Pareto is the Pareto distribution with density
// b*s^b / x^(b+1) for x >= s, matching the off-peak arrival model of
// paper §5.1 (shape b fixed to 1.765 there).
type Pareto struct {
	Shape float64 // b
	Scale float64 // s, the minimum value
}

// PDF implements Dist.
func (p Pareto) PDF(x float64) float64 {
	if x < p.Scale || p.Shape <= 0 || p.Scale <= 0 {
		return 0
	}
	return p.Shape * math.Pow(p.Scale, p.Shape) / math.Pow(x, p.Shape+1)
}

// CDF implements Dist.
func (p Pareto) CDF(x float64) float64 {
	if x < p.Scale {
		return 0
	}
	return 1 - math.Pow(p.Scale/x, p.Shape)
}

// Quantile implements Dist.
func (p Pareto) Quantile(q float64) float64 {
	if q <= 0 {
		return p.Scale
	}
	if q >= 1 {
		return math.Inf(1)
	}
	return p.Scale * math.Pow(1-q, -1/p.Shape)
}

// Sample implements Dist by inverse-CDF sampling.
func (p Pareto) Sample(rng *rand.Rand) float64 {
	return p.Quantile(rng.Float64())
}

// Mean implements Dist; it is +Inf for Shape <= 1.
func (p Pareto) Mean() float64 {
	if p.Shape <= 1 {
		return math.Inf(1)
	}
	return p.Shape * p.Scale / (p.Shape - 1)
}

// Var implements Dist; it is +Inf for Shape <= 2.
func (p Pareto) Var() float64 {
	if p.Shape <= 2 {
		return math.Inf(1)
	}
	b := p.Shape
	return p.Scale * p.Scale * b / ((b - 1) * (b - 1) * (b - 2))
}

// String returns a compact description.
func (p Pareto) String() string {
	return fmt.Sprintf("Pareto(shape=%.4g, scale=%.4g)", p.Shape, p.Scale)
}
