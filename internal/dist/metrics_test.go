package dist

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mobiletraffic/internal/mathx"
)

func gaussHist(t *testing.T, mu, sigma float64) *Hist {
	t.Helper()
	h := mustHist(t, mathx.LinSpace(-10, 10, 401))
	if err := h.FillFromDist(Normal{Mu: mu, Sigma: sigma}); err != nil {
		t.Fatal(err)
	}
	return h
}

func TestEMDIdentity(t *testing.T) {
	h := gaussHist(t, 0, 1)
	d, err := EMD(h, h)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Errorf("EMD(h, h) = %v, want 0", d)
	}
}

func TestEMDShiftEqualsDistance(t *testing.T) {
	// EMD between two identical shapes shifted by delta is exactly delta.
	a := gaussHist(t, 0, 1)
	b := gaussHist(t, 2, 1)
	d, err := EMD(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-2) > 0.02 {
		t.Errorf("EMD = %v, want ~2", d)
	}
}

func TestEMDSymmetryAndTriangle(t *testing.T) {
	a := gaussHist(t, -1, 0.8)
	b := gaussHist(t, 1, 1.2)
	c := gaussHist(t, 3, 0.5)
	dab, _ := EMD(a, b)
	dba, _ := EMD(b, a)
	dbc, _ := EMD(b, c)
	dac, _ := EMD(a, c)
	if math.Abs(dab-dba) > 1e-12 {
		t.Errorf("EMD not symmetric: %v vs %v", dab, dba)
	}
	if dac > dab+dbc+1e-9 {
		t.Errorf("triangle inequality violated: %v > %v + %v", dac, dab, dbc)
	}
}

func TestEMDErrors(t *testing.T) {
	a := gaussHist(t, 0, 1)
	b := mustHist(t, mathx.LinSpace(-5, 5, 401))
	if _, err := EMD(a, b); err == nil {
		t.Error("grid mismatch must error")
	}
	empty := mustHist(t, mathx.LinSpace(-10, 10, 401))
	if _, err := EMD(a, empty); err == nil {
		t.Error("zero-mass input must error")
	}
}

func TestEMDNormalizationInvariant(t *testing.T) {
	// EMD must not depend on total mass, only on shape.
	a := gaussHist(t, 0, 1)
	b := gaussHist(t, 1, 1)
	scaled := b.Clone()
	for i := range scaled.P {
		scaled.P[i] *= 7
	}
	d1, _ := EMD(a, b)
	d2, _ := EMD(a, scaled)
	if math.Abs(d1-d2) > 1e-9 {
		t.Errorf("EMD changed under scaling: %v vs %v", d1, d2)
	}
}

func TestEMDSamplesSorted(t *testing.T) {
	a := []float64{0, 1, 2}
	b := []float64{1, 2, 3}
	d, err := EMDSamplesSorted(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d != 1 {
		t.Errorf("EMDSamplesSorted = %v, want 1", d)
	}
	if _, err := EMDSamplesSorted(a, a[:2]); err == nil {
		t.Error("length mismatch must error")
	}
}

func TestSED(t *testing.T) {
	d, err := SED([]float64{1, 2, 3}, []float64{1, 2, 3})
	if err != nil || d != 0 {
		t.Errorf("SED identical = %v, %v", d, err)
	}
	d, err = SED([]float64{0, 0}, []float64{3, 4})
	if err != nil || d != 25 {
		t.Errorf("SED = %v, want 25", d)
	}
	if _, err := SED([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch must error")
	}
}

func TestKSAndTV(t *testing.T) {
	a := gaussHist(t, 0, 1)
	b := gaussHist(t, 0, 1)
	ks, err := KSStatistic(a, b)
	if err != nil || ks != 0 {
		t.Errorf("KS identical = %v, %v", ks, err)
	}
	tv, err := TotalVariation(a, b)
	if err != nil || tv != 0 {
		t.Errorf("TV identical = %v, %v", tv, err)
	}
	c := gaussHist(t, 3, 1)
	ks, _ = KSStatistic(a, c)
	tv, _ = TotalVariation(a, c)
	if ks <= 0.5 || tv <= 0.5 {
		t.Errorf("well-separated Gaussians: KS=%v TV=%v, want > 0.5", ks, tv)
	}
	if ks > 1 || tv > 1 {
		t.Errorf("KS=%v TV=%v exceed 1", ks, tv)
	}
}

// Property: EMD is non-negative and zero only for (numerically)
// identical normalized histograms.
func TestEMDMetricProperty(t *testing.T) {
	edges := mathx.LinSpace(0, 1, 21)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, _ := NewHist(edges)
		b, _ := NewHist(edges)
		for i := range a.P {
			a.P[i] = rng.Float64()
			b.P[i] = rng.Float64()
		}
		d, err := EMD(a, b)
		if err != nil || d < 0 {
			return false
		}
		self, err := EMD(a, a)
		return err == nil && self == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMLEFits(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const n = 100000

	t.Run("normal", func(t *testing.T) {
		truth := Normal{Mu: 3, Sigma: 2}
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = truth.Sample(rng)
		}
		got, err := FitNormal(xs)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got.Mu-3) > 0.05 || math.Abs(got.Sigma-2) > 0.05 {
			t.Errorf("FitNormal = %+v", got)
		}
	})

	t.Run("lognormal10", func(t *testing.T) {
		truth := LogNormal10{Mu: 6.5, Sigma: 0.8}
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = truth.Sample(rng)
		}
		got, err := FitLogNormal10(xs)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got.Mu-6.5) > 0.02 || math.Abs(got.Sigma-0.8) > 0.02 {
			t.Errorf("FitLogNormal10 = %+v", got)
		}
		if _, err := FitLogNormal10([]float64{1, -1}); err == nil {
			t.Error("non-positive sample must error")
		}
	})

	t.Run("pareto", func(t *testing.T) {
		truth := Pareto{Shape: 1.765, Scale: 2}
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = truth.Sample(rng)
		}
		got, err := FitPareto(xs)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got.Shape-1.765) > 0.05 || math.Abs(got.Scale-2) > 0.01 {
			t.Errorf("FitPareto = %+v", got)
		}
		fixed, err := FitParetoFixedShape(xs, 1.765)
		if err != nil {
			t.Fatal(err)
		}
		if fixed.Shape != 1.765 {
			t.Errorf("fixed shape = %v", fixed.Shape)
		}
	})

	t.Run("exponential", func(t *testing.T) {
		truth := Exponential{Rate: 0.25}
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = truth.Sample(rng)
		}
		got, err := FitExponential(xs)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got.Rate-0.25) > 0.01 {
			t.Errorf("FitExponential = %+v", got)
		}
	})

	t.Run("empty inputs", func(t *testing.T) {
		if _, err := FitNormal(nil); err == nil {
			t.Error("FitNormal(nil) must error")
		}
		if _, err := FitPareto(nil); err == nil {
			t.Error("FitPareto(nil) must error")
		}
		if _, err := FitExponential(nil); err == nil {
			t.Error("FitExponential(nil) must error")
		}
		if _, err := FitLogNormal10(nil); err == nil {
			t.Error("FitLogNormal10(nil) must error")
		}
	})
}
