package dist

import (
	"fmt"
	"math"
	"sort"
)

// KSTwoSample computes the two-sample Kolmogorov-Smirnov statistic
// between sample sets a and b — the supremum distance between their
// empirical CDFs — together with the asymptotic p-value of the null
// hypothesis that both sets come from the same distribution. It is used
// to verify that model-generated sessions are statistically
// indistinguishable from measured ones (§5.4's generator fidelity).
func KSTwoSample(a, b []float64) (d, pvalue float64, err error) {
	if len(a) == 0 || len(b) == 0 {
		return 0, 0, fmt.Errorf("dist: KS needs non-empty samples, got %d/%d", len(a), len(b))
	}
	as := append([]float64(nil), a...)
	bs := append([]float64(nil), b...)
	sort.Float64s(as)
	sort.Float64s(bs)
	na, nb := len(as), len(bs)
	var i, j int
	for i < na && j < nb {
		x := math.Min(as[i], bs[j])
		for i < na && as[i] <= x {
			i++
		}
		for j < nb && bs[j] <= x {
			j++
		}
		fa := float64(i) / float64(na)
		fb := float64(j) / float64(nb)
		if diff := math.Abs(fa - fb); diff > d {
			d = diff
		}
	}
	en := math.Sqrt(float64(na) * float64(nb) / float64(na+nb))
	pvalue = ksSurvival((en + 0.12 + 0.11/en) * d)
	return d, pvalue, nil
}

// ksSurvival evaluates the Kolmogorov distribution's survival function
// Q(lambda) = 2 sum_{k>=1} (-1)^{k-1} exp(-2 k^2 lambda^2).
func ksSurvival(lambda float64) float64 {
	if lambda <= 0 {
		return 1
	}
	var sum float64
	sign := 1.0
	l2 := -2 * lambda * lambda
	for k := 1; k <= 100; k++ {
		term := sign * math.Exp(l2*float64(k)*float64(k))
		sum += term
		if math.Abs(term) < 1e-12 {
			break
		}
		sign = -sign
	}
	p := 2 * sum
	return mathClamp(p, 0, 1)
}

func mathClamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
