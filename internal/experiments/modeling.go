package experiments

import (
	"fmt"
	"math"

	"mobiletraffic/internal/core"
	"mobiletraffic/internal/dist"
	"mobiletraffic/internal/fit"
	"mobiletraffic/internal/mathx"
	"mobiletraffic/internal/probe"
	"mobiletraffic/internal/services"
)

// --- Fig. 9: the three-step mixture decomposition --------------------

// Fig9Result walks the §5.2 decomposition for one service (the paper
// uses Netflix): the fitted main trend, the residual peaks, and the
// quality of the composed mixture.
type Fig9Result struct {
	Service       string
	MainMu        float64
	MainSigma     float64
	Peaks         []core.VolumeComponent
	FinalEMD      float64
	MainOnlyEMD   float64 // EMD of the main trend alone (step 1)
	SeededMainMu  float64
	SeededPeakMus []float64
}

// ExpFig9 decomposes the named service's measured volume PDF (defaults
// to Netflix when name is empty).
func ExpFig9(env *Env, name string) (*Fig9Result, error) {
	if name == "" {
		name = "Netflix"
	}
	svc, err := env.serviceIndex(name)
	if err != nil {
		return nil, err
	}
	h, _, err := env.AggregateVolume(svc)
	if err != nil {
		return nil, err
	}
	model, err := core.FitVolumeModel(h, nil)
	if err != nil {
		return nil, err
	}
	finalEMD, err := model.EMD(h)
	if err != nil {
		return nil, err
	}
	mainOnly := &core.VolumeModel{MainMu: model.MainMu, MainSigma: model.MainSigma}
	mainEMD, err := mainOnly.EMD(h)
	if err != nil {
		return nil, err
	}
	truth := env.Catalog[svc]
	out := &Fig9Result{
		Service:      name,
		MainMu:       model.MainMu,
		MainSigma:    model.MainSigma,
		Peaks:        model.Peaks,
		FinalEMD:     finalEMD,
		MainOnlyEMD:  mainEMD,
		SeededMainMu: truth.MainMu,
	}
	for _, p := range truth.Peaks {
		out.SeededPeakMus = append(out.SeededPeakMus, p.Mu)
	}
	return out, nil
}

// Table renders the Fig. 9 result.
func (r *Fig9Result) Table() *Table {
	t := &Table{
		Title:  fmt.Sprintf("Fig. 9 — log-normal mixture decomposition (%s)", r.Service),
		Header: []string{"component", "k", "mu (log10 B)", "sigma"},
	}
	t.AddRow("main", 1.0, r.MainMu, r.MainSigma)
	for i, p := range r.Peaks {
		t.AddRow(fmt.Sprintf("peak %d", i+1), p.K, p.Mu, p.Sigma)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("EMD: main trend only %.4g -> full mixture %.4g", r.MainOnlyEMD, r.FinalEMD),
		fmt.Sprintf("seeded ground truth: main mu %.2f, peak mus %v", r.SeededMainMu, r.SeededPeakMus))
	return t
}

// --- Fig. 10: power-law exponents ------------------------------------

// Fig10Row is one service's fitted duration-volume power law.
type Fig10Row struct {
	Name       string
	Beta       float64
	R2         float64
	SeededBeta float64
	Class      services.Class
}

// Fig10Result reproduces Fig. 10: the fitted power-law exponents beta
// with their R² per service.
type Fig10Result struct {
	Rows []Fig10Row
}

// ExpFig10 reports the fitted exponents for every modeled service.
func ExpFig10(env *Env) (*Fig10Result, error) {
	out := &Fig10Result{}
	for _, m := range env.Models.Services {
		svc, err := env.serviceIndex(m.Name)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, Fig10Row{
			Name:       m.Name,
			Beta:       m.Duration.Beta,
			R2:         m.Duration.R2,
			SeededBeta: env.Catalog[svc].Beta,
			Class:      env.Catalog[svc].Class,
		})
	}
	if len(out.Rows) == 0 {
		return nil, fmt.Errorf("experiments: no modeled services for Fig. 10")
	}
	return out, nil
}

// Table renders the Fig. 10 result.
func (r *Fig10Result) Table() *Table {
	t := &Table{
		Title:  "Fig. 10 — power-law exponents of v_s(d)",
		Header: []string{"service", "class", "beta", "R2", "seeded beta"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Name, row.Class.String(), row.Beta, row.R2, row.SeededBeta)
	}
	t.Notes = append(t.Notes,
		"expected shape: video streaming services super-linear (beta > 1), interactive services sub-linear; exponents span ~0.1-1.8")
	return t
}

// --- Fig. 11 & §5.4: model quality -----------------------------------

// QualityRow is one service's model-vs-measurement quality.
type QualityRow struct {
	Name       string
	VolumeEMD  float64
	DurationR2 float64
	PeakCount  int
}

// QualityResult reproduces the §5.4 quality assessment (and quantifies
// Fig. 11's visual comparison): volume-model EMD and duration-fit R²
// for every modeled service.
type QualityResult struct {
	Rows []QualityRow
	// MedianInterServiceEMD contextualizes the model EMDs: the paper
	// reports model errors an order of magnitude below inter-service
	// distances.
	MedianInterServiceEMD float64
}

// ExpQuality assembles the §5.4 quality metrics.
func ExpQuality(env *Env) (*QualityResult, error) {
	out := &QualityResult{}
	for _, m := range env.Models.Services {
		out.Rows = append(out.Rows, QualityRow{
			Name:       m.Name,
			VolumeEMD:  m.VolumeEMD,
			DurationR2: m.Duration.R2,
			PeakCount:  len(m.Volume.Peaks),
		})
	}
	emds, _, err := interServiceDistances(env, nil)
	if err == nil && len(emds) > 0 {
		out.MedianInterServiceEMD = mathx.Median(emds)
	}
	return out, nil
}

// Table renders the quality result.
func (r *QualityResult) Table() *Table {
	t := &Table{
		Title:  "Fig. 11 / §5.4 — model quality per service",
		Header: []string{"service", "volume EMD", "duration R2", "peaks"},
	}
	var emds, r2s []float64
	for _, row := range r.Rows {
		t.AddRow(row.Name, row.VolumeEMD, row.DurationR2, row.PeakCount)
		emds = append(emds, row.VolumeEMD)
		r2s = append(r2s, row.DurationR2)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("median model EMD %.4g vs median inter-service EMD %.4g (paper: model error one order of magnitude below)",
			mathx.Median(emds), r.MedianInterServiceEMD),
		fmt.Sprintf("duration R2: median %.2f (paper: typically 0.7-0.9, occasionally ~0.5)", mathx.Median(r2s)))
	return t
}

// --- Ablations --------------------------------------------------------

// AblationRow compares one configuration of a design choice.
type AblationRow struct {
	Config string
	Value  float64 // primary metric (meaning depends on the ablation)
	Extra  float64 // secondary metric
}

// AblationResult is a generic design-choice comparison.
type AblationResult struct {
	Name   string
	Metric string
	Extra  string
	Rows   []AblationRow
}

// Table renders an ablation.
func (r *AblationResult) Table() *Table {
	t := &Table{
		Title:  "Ablation — " + r.Name,
		Header: []string{"config", r.Metric, r.Extra},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Config, row.Value, row.Extra)
	}
	return t
}

// ExpAblationPeakCap compares the N <= 3 residual-component cap of
// §5.2 against uncapped fitting: mean EMD and mean component count.
func ExpAblationPeakCap(env *Env) (*AblationResult, error) {
	out := &AblationResult{Name: "residual peak cap (§5.2, N<=3)", Metric: "mean volume EMD", Extra: "mean components"}
	for _, cfg := range []struct {
		name string
		opts *core.VolumeFitOptions
	}{
		{"cap=1", &core.VolumeFitOptions{MaxPeaks: 1}},
		{"cap=3 (paper)", nil},
		{"uncapped", &core.VolumeFitOptions{MaxPeaks: -1}},
	} {
		var emds, comps []float64
		for svc := range env.Catalog {
			h, w, err := env.AggregateVolume(svc)
			if err != nil || w < 200 {
				continue
			}
			m, err := core.FitVolumeModel(h, cfg.opts)
			if err != nil {
				continue
			}
			emd, err := m.EMD(h)
			if err != nil {
				continue
			}
			emds = append(emds, emd)
			comps = append(comps, float64(len(m.Peaks)))
		}
		if len(emds) == 0 {
			return nil, fmt.Errorf("experiments: peak-cap ablation fitted nothing for %s", cfg.name)
		}
		out.Rows = append(out.Rows, AblationRow{Config: cfg.name, Value: mathx.Mean(emds), Extra: mathx.Mean(comps)})
	}
	return out, nil
}

// ExpAblationSmoothing compares the Savitzky-Golay derivative of §5.2
// against a raw finite difference in peak detection.
func ExpAblationSmoothing(env *Env) (*AblationResult, error) {
	out := &AblationResult{Name: "residual derivative smoothing (§5.2)", Metric: "mean volume EMD", Extra: "mean components"}
	for _, cfg := range []struct {
		name string
		fd   bool
	}{
		{"savitzky-golay (paper)", false},
		{"finite difference", true},
	} {
		var emds, comps []float64
		for svc := range env.Catalog {
			h, w, err := env.AggregateVolume(svc)
			if err != nil || w < 200 {
				continue
			}
			m, err := core.FitVolumeModel(h, &core.VolumeFitOptions{UseFiniteDiff: cfg.fd})
			if err != nil {
				continue
			}
			emd, err := m.EMD(h)
			if err != nil {
				continue
			}
			emds = append(emds, emd)
			comps = append(comps, float64(len(m.Peaks)))
		}
		if len(emds) == 0 {
			return nil, fmt.Errorf("experiments: smoothing ablation fitted nothing for %s", cfg.name)
		}
		out.Rows = append(out.Rows, AblationRow{Config: cfg.name, Value: mathx.Mean(emds), Extra: mathx.Mean(comps)})
	}
	return out, nil
}

// ExpAblationDurationFamily compares the §5.3 model-family selection:
// power law vs polynomial vs exponential fits of v_s(d), scored by
// log-domain R² averaged over services.
func ExpAblationDurationFamily(env *Env) (*AblationResult, error) {
	durations := env.Coll.DurationCenters()
	type familyFit func(xs, ys []float64) ([]float64, error) // returns predictions
	families := []struct {
		name string
		fit  familyFit
	}{
		{"power law (paper)", func(xs, ys []float64) ([]float64, error) {
			// §5.3 fits the power law on multiplicative (log-domain)
			// error, as volumes span several decades.
			m, err := core.FitDurationModel(xs, ys, nil)
			if err != nil {
				return nil, err
			}
			out := make([]float64, len(xs))
			for i, x := range xs {
				out[i] = m.MeanVolume(x)
			}
			return out, nil
		}},
		{"quadratic polynomial", func(xs, ys []float64) ([]float64, error) {
			coeffs, err := fit.PolyFit(xs, ys, 2)
			if err != nil {
				return nil, err
			}
			out := make([]float64, len(xs))
			for i, x := range xs {
				out[i] = fit.PolyEval(coeffs, x)
			}
			return out, nil
		}},
		{"exponential", func(xs, ys []float64) ([]float64, error) {
			c, err := fit.FitExpCurve(xs, ys)
			if err != nil {
				return nil, err
			}
			out := make([]float64, len(xs))
			for i, x := range xs {
				out[i] = c.Eval(x)
			}
			return out, nil
		}},
	}
	out := &AblationResult{Name: "duration-volume model family (§5.3)", Metric: "mean log-domain R2", Extra: "services fitted"}
	for _, fam := range families {
		var r2s []float64
		for svc := range env.Catalog {
			values, counts, err := env.AggregatePairs(svc)
			if err != nil {
				continue
			}
			var xs, ys []float64
			for i := range values {
				if math.IsNaN(values[i]) || values[i] <= 0 || counts[i] < 5 {
					continue
				}
				xs = append(xs, durations[i])
				ys = append(ys, values[i])
			}
			if len(xs) < 5 {
				continue
			}
			pred, err := fam.fit(xs, ys)
			if err != nil {
				continue
			}
			// Score in the log domain so services of different scale
			// contribute comparably; guard against non-positive
			// predictions from the polynomial family.
			var ly, lp []float64
			ok := true
			for i := range pred {
				if pred[i] <= 0 {
					ok = false
					break
				}
				ly = append(ly, math.Log(ys[i]))
				lp = append(lp, math.Log(pred[i]))
			}
			if !ok {
				r2s = append(r2s, 0)
				continue
			}
			r2s = append(r2s, fit.RSquared(ly, lp))
		}
		if len(r2s) == 0 {
			continue
		}
		out.Rows = append(out.Rows, AblationRow{Config: fam.name, Value: mathx.Mean(r2s), Extra: float64(len(r2s))})
	}
	if len(out.Rows) == 0 {
		return nil, fmt.Errorf("experiments: duration-family ablation produced no fits")
	}
	return out, nil
}

// ExpAblationArrivalFit compares the bi-modal Gaussian+Pareto arrival
// model of §5.1 against a single Gaussian over all minutes, scored by
// the earth-mover distance between the modeled and the empirical
// minute-count distribution on the busiest decile.
func ExpAblationArrivalFit(env *Env) (*AblationResult, error) {
	filter := probe.BSIn(env.Topo.ByDecile(9))
	all := env.Coll.MinuteCountSamples(filter, nil)
	peak := env.Coll.MinuteCountSamples(filter, func(m int) bool { return m >= 8*60 && m < 22*60 })
	off := env.Coll.MinuteCountSamples(filter, func(m int) bool { return m < 7*60 || m >= 23*60 })
	if len(all) == 0 || len(peak) == 0 || len(off) == 0 {
		return nil, fmt.Errorf("experiments: arrival ablation has no samples")
	}
	_, maxAll := mathx.MinMax(all)
	edges := mathx.LinSpace(-0.5, maxAll+0.5, 81)
	empirical, err := dist.NewHist(edges)
	if err != nil {
		return nil, err
	}
	empirical.AddSamples(all)
	if err := empirical.Normalize(); err != nil {
		return nil, err
	}

	// Bi-modal model: day-fraction mixture of the two fitted modes.
	am, err := core.FitArrivalModel(peak, off)
	if err != nil {
		return nil, err
	}
	dayFrac := float64(len(peak)) / float64(len(peak)+len(off))
	bimodal, err := dist.NewHist(edges)
	if err != nil {
		return nil, err
	}
	gauss := dist.Normal{Mu: am.PeakMu, Sigma: am.PeakSigma}
	pareto := dist.Pareto{Shape: am.OffShape, Scale: am.OffScale}
	for i := range bimodal.P {
		lo, hi := bimodal.Edges[i], bimodal.Edges[i+1]
		bimodal.P[i] = dayFrac*(gauss.CDF(hi)-gauss.CDF(lo)) +
			(1-dayFrac)*(pareto.CDF(hi)-pareto.CDF(lo))
	}
	if err := bimodal.Normalize(); err != nil {
		return nil, err
	}

	// Single-Gaussian baseline over all minutes.
	n, err := dist.FitNormal(all)
	if err != nil {
		return nil, err
	}
	single, err := dist.NewHist(edges)
	if err != nil {
		return nil, err
	}
	if err := single.FillFromDist(n); err != nil {
		return nil, err
	}

	biEMD, err := dist.EMD(empirical, bimodal)
	if err != nil {
		return nil, err
	}
	singleEMD, err := dist.EMD(empirical, single)
	if err != nil {
		return nil, err
	}
	return &AblationResult{
		Name:   "arrival model family (§5.1)",
		Metric: "EMD vs empirical minute counts",
		Extra:  "-",
		Rows: []AblationRow{
			{Config: "gaussian+pareto bi-modal (paper)", Value: biEMD},
			{Config: "single gaussian", Value: singleEMD},
		},
	}, nil
}
