package experiments

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"time"

	"mobiletraffic/internal/campaign"
	"mobiletraffic/internal/core"
	"mobiletraffic/internal/faults"
	"mobiletraffic/internal/netsim"
	"mobiletraffic/internal/obs"
	"mobiletraffic/internal/probe"
)

// CampaignOptions configures the fault-tolerant sharded collection
// path (internal/campaign) of a measurement campaign.
type CampaignOptions struct {
	// Shards partitions the BS range (default: one per CPU).
	Shards int
	// Workers bounds concurrent shard attempts (default: one per CPU).
	Workers int
	// CheckpointDir enables durable per-shard checkpoints + manifest.
	CheckpointDir string
	// Resume loads completed shard checkpoints instead of recomputing.
	Resume bool
	// ShardTimeout aborts and retries an attempt that runs longer.
	ShardTimeout time.Duration
	// MaxRetries is the per-shard retry budget (default 2).
	MaxRetries int
	// StallAfter flags a shard as stalled when its heartbeat (one per
	// completed BS) goes quiet for this long; 0 disables.
	StallAfter time.Duration
	// Faults optionally injects data-plane faults into every shard's
	// measurement stream (same semantics as the in-process collector).
	Faults *faults.Injector
	// Process optionally injects process-level faults — crash, hang,
	// slow worker — into the shard workers themselves.
	Process *faults.ProcessFaults
}

// campaignTag folds everything that determines shard contents into the
// manifest's config-hash tag: the same checkpoint directory must never
// be resumed under a different workload.
func campaignTag(c Config, numServices int) string {
	return fmt.Sprintf("bs=%d days=%d seed=%d move=%g sampler=%s services=%d volgrid=%d durgrid=%d",
		c.NumBS, c.Days, c.Seed, c.MoveProb, c.Sampler, numServices,
		len(probe.DefaultVolumeEdges), len(probe.DefaultDurationEdges))
}

// CollectSharded runs the measurement campaign through the supervised
// sharded runner: the BS range splits into contiguous shards, each
// shard simulates its base stations into a pre-sized partial collector
// (bit-identical to the in-process collector's per-BS work, via
// collectBS), and the supervisor handles checkpointing, retry and
// graceful degradation. The merged collector is bit-identical to a
// serial or in-process-parallel collection for any shard count — each
// BS's cells are computed by exactly one shard from its own
// deterministic random streams, and the final fold runs in ascending
// shard order.
func CollectSharded(ctx context.Context, sim *netsim.Simulator, c Config, opts CampaignOptions) (*probe.Collector, *campaign.Report, error) {
	numBS := len(sim.Topo.BSs)
	fn := campaign.ShardFunc(func(ctx context.Context, sh campaign.Shard, attempt int) (*probe.Collector, error) {
		// Process-level faults gate the attempt before any shard work, so
		// a crashed or hung attempt never emits a partial collector.
		if err := opts.Process.Attempt(ctx, sh.Index, attempt); err != nil {
			return nil, err
		}
		coll, err := probe.NewCollectorSized(len(sim.Services), numBS, c.Days)
		if err != nil {
			return nil, err
		}
		sc := newCollectScratch(sim, opts.Faults != nil)
		for bs := sh.StartBS; bs < sh.EndBS; bs++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if err := collectBS(sim, coll, sc, opts.Faults, bs, c.Days); err != nil {
				return nil, err
			}
			// One heartbeat per completed BS feeds the supervisor's
			// stall detector and the /statusz heartbeat-age column.
			campaign.Heartbeat(ctx)
		}
		return coll, nil
	})
	tag := campaignTag(c, len(sim.Services))
	if opts.Faults != nil {
		fc := opts.Faults.Config()
		tag += fmt.Sprintf(" faults=%+v", fc)
	}
	return campaign.Run(ctx, campaign.Config{
		NumBS:         numBS,
		Shards:        opts.Shards,
		Workers:       opts.Workers,
		CheckpointDir: opts.CheckpointDir,
		Resume:        opts.Resume,
		ShardTimeout:  opts.ShardTimeout,
		MaxRetries:    opts.MaxRetries,
		StallAfter:    opts.StallAfter,
		Seed:          c.Seed,
		ConfigTag:     tag,
	}, fn)
}

// NewEnvSharded is NewEnv over the fault-tolerant sharded collection
// path. The fitted models are bit-identical to NewEnv's for any shard
// count when every shard completes; a degraded campaign (shards failed
// after retries) still fits the surviving measurements and reports the
// gap. On interruption (ctx canceled) it returns the campaign report
// and an error wrapping campaign.ErrInterrupted — completed shards are
// already checkpointed for a -resume run.
func NewEnvSharded(ctx context.Context, cfg Config, opts CampaignOptions) (*Env, *campaign.Report, error) {
	c := cfg.withDefaults()
	simSpan := obs.StartSpan("simulate")
	topo, err := netsim.NewTopology(netsim.TopologyConfig{NumBS: c.NumBS, Seed: c.Seed})
	if err != nil {
		simSpan.End()
		return nil, nil, fmt.Errorf("experiments: topology: %w", err)
	}
	sim, err := netsim.NewSimulator(topo, netsim.SimConfig{
		Days:     c.Days,
		Seed:     c.Seed,
		MoveProb: c.MoveProb,
		Sampler:  c.Sampler,
	})
	simSpan.End()
	if err != nil {
		return nil, nil, fmt.Errorf("experiments: simulator: %w", err)
	}
	coll, report, err := CollectSharded(ctx, sim, c, opts)
	if err != nil {
		return nil, report, fmt.Errorf("experiments: sharded collect: %w", err)
	}
	models, err := core.FitServiceModels(coll, sim.Services, nil)
	if err != nil {
		return nil, report, fmt.Errorf("experiments: fit models: %w", err)
	}
	arrivals, err := core.FitArrivalsByDecile(coll, topo)
	if err != nil {
		return nil, report, fmt.Errorf("experiments: fit arrivals: %w", err)
	}
	models.Arrivals = arrivals
	return &Env{
		Config:   c,
		Topo:     topo,
		Sim:      sim,
		Coll:     coll,
		Models:   models,
		Arrivals: arrivals,
		Catalog:  sim.Services,
	}, report, nil
}

// --- Extension: kill/resume determinism under process faults ---------

// The kill/resume experiment: ROADMAP item 2 requires that a
// nationwide campaign survives worker loss with bit-identical output.
// For each shard count, the campaign is run three ways against the
// uninterrupted reference fit: (a) a worker crash on the first
// attempt, recovered by supervised retry; (b) a simulated process kill
// — every shard past a cut point fails permanently, completed shards
// checkpoint, and a second run resumes from the manifest; (c) a shard
// that exhausts its retry budget, which must degrade the campaign
// (complete report, surviving-shard fit) rather than fail it. The
// released ModelSet JSON of (a) and (b) must be byte-identical to the
// reference.

// KillResumeConfig sizes the kill/resume sweep.
type KillResumeConfig struct {
	// ShardCounts are the campaign widths exercised (default 1, 4, 7).
	ShardCounts []int
	// MaxRetries is the supervisor retry budget (default 2).
	MaxRetries int
}

func (c KillResumeConfig) withDefaults() KillResumeConfig {
	if len(c.ShardCounts) == 0 {
		c.ShardCounts = []int{1, 4, 7}
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 2
	}
	return c
}

// KillResumeRow is one shard count's outcomes.
type KillResumeRow struct {
	Shards int
	// Crash-retry phase: a worker panic on the first attempt.
	CrashRetries   int
	CrashIdentical bool
	// Kill/resume phase: shards >= Shards/2 die permanently, the rerun
	// resumes from checkpoints.
	KilledShards    int
	ResumedShards   int
	ResumeIdentical bool
	// Degraded phase: one shard exhausts its retry budget.
	DegradedFailed int
	DegradedLostBS int
	DegradedFitted int // services still fitted from the surviving shards
}

// KillResumeResult is the experiment output.
type KillResumeResult struct {
	Rows     []KillResumeRow
	Baseline int // services in the reference fit
}

// ExpKillResume runs the kill/resume determinism sweep against env's
// uninterrupted reference models.
func ExpKillResume(env *Env, cfg KillResumeConfig) (*KillResumeResult, error) {
	c := cfg.withDefaults()
	ctx := context.Background()
	refJSON, err := env.Models.ToJSON()
	if err != nil {
		return nil, fmt.Errorf("experiments: reference models: %w", err)
	}
	out := &KillResumeResult{Baseline: len(env.Models.Services)}
	for _, shards := range c.ShardCounts {
		row := KillResumeRow{Shards: shards}

		// (a) Crash on first attempt of shard 0: the supervisor's panic
		// capture + retry must recover bit-identically, no checkpoints
		// involved.
		crash, err := faults.NewProcess(faults.ProcessConfig{CrashShard: 0, CrashAttempts: 1})
		if err != nil {
			return nil, err
		}
		envA, repA, err := NewEnvSharded(ctx, env.Config, CampaignOptions{
			Shards: shards, MaxRetries: c.MaxRetries, Process: crash,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: crash-retry campaign (%d shards): %w", shards, err)
		}
		row.CrashRetries = repA.Retries
		jsonA, err := envA.Models.ToJSON()
		if err != nil {
			return nil, err
		}
		row.CrashIdentical = bytes.Equal(refJSON, jsonA)

		// (b) Simulated kill mid-campaign: shards >= cut fail
		// permanently in run 1 (completed shards checkpoint), run 2
		// resumes and recomputes exactly the missing ones.
		dir, err := os.MkdirTemp("", "mobiletraffic-killresume-*")
		if err != nil {
			return nil, fmt.Errorf("experiments: checkpoint dir: %w", err)
		}
		// Shards >= cut fail permanently. Shard 0 is untargetable by
		// design (faults.ProcessConfig), so the 1-shard case
		// degenerates to a pure checkpoint-then-resume round trip.
		cut := shards/2 + 1
		kill, err := faults.NewProcess(faults.ProcessConfig{FailFromShard: cut})
		if err != nil {
			os.RemoveAll(dir)
			return nil, err
		}
		_, repB, err := NewEnvSharded(ctx, env.Config, CampaignOptions{
			Shards: shards, MaxRetries: 0, CheckpointDir: dir, Process: kill,
		})
		// Multi-shard widths degrade but complete; err stays nil.
		if err != nil && shards > 1 {
			os.RemoveAll(dir)
			return nil, fmt.Errorf("experiments: killed campaign (%d shards): %w", shards, err)
		}
		if repB != nil {
			row.KilledShards = repB.Failed
		}
		envB, repB2, err := NewEnvSharded(ctx, env.Config, CampaignOptions{
			Shards: shards, MaxRetries: c.MaxRetries, CheckpointDir: dir, Resume: true,
		})
		if err != nil {
			os.RemoveAll(dir)
			return nil, fmt.Errorf("experiments: resumed campaign (%d shards): %w", shards, err)
		}
		row.ResumedShards = repB2.Resumed
		jsonB, err := envB.Models.ToJSON()
		if err != nil {
			os.RemoveAll(dir)
			return nil, err
		}
		row.ResumeIdentical = bytes.Equal(refJSON, jsonB)
		os.RemoveAll(dir)

		// (c) Retry exhaustion degrades, never fails: the last shard
		// dies on every attempt; the campaign must still produce a
		// (gapped) fit and a faithful report.
		if shards > 1 {
			exhaust, err := faults.NewProcess(faults.ProcessConfig{FailFromShard: shards - 1})
			if err != nil {
				return nil, err
			}
			envC, repC, err := NewEnvSharded(ctx, env.Config, CampaignOptions{
				Shards: shards, MaxRetries: 1, Process: exhaust,
			})
			if err != nil {
				return nil, fmt.Errorf("experiments: degraded campaign (%d shards): %w", shards, err)
			}
			row.DegradedFailed = repC.Failed
			row.DegradedLostBS = repC.LostBS
			row.DegradedFitted = len(envC.Models.Services)
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Table renders the kill/resume sweep.
func (r *KillResumeResult) Table() *Table {
	t := &Table{
		Title: "Extension — kill/resume: sharded campaign fault tolerance and determinism",
		Header: []string{"shards", "crash retries", "crash identical", "killed", "resumed",
			"resume identical", "failed", "lost BSs", "fitted (degraded)"},
	}
	yes := func(b bool) string {
		if b {
			return "yes"
		}
		return "NO"
	}
	for _, row := range r.Rows {
		t.AddRow(row.Shards, row.CrashRetries, yes(row.CrashIdentical),
			row.KilledShards, row.ResumedShards, yes(row.ResumeIdentical),
			row.DegradedFailed, row.DegradedLostBS, row.DegradedFitted)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("reference fit models %d services; 'identical' compares released ModelSet JSON byte-for-byte", r.Baseline),
		"crash = worker panic recovered by supervised retry; kill = permanent shard loss checkpointed then resumed; degraded = retry budget exhausted, campaign completes with a reported gap")
	return t
}
