package experiments

import (
	"sync"

	"mobiletraffic/internal/dist"
	"mobiletraffic/internal/probe"
)

// aggCache memoizes the collector aggregations the experiment drivers
// re-request for the same service across experiments: ExpVolumeModels,
// ExpModelAging and ExpCharacterize each walk the full catalog over the
// same immutable Env.Coll, so every aggregation after the first is a
// cache hit. Entries hold the canonical result; accessors hand out
// copies, so callers may mutate what they receive (several drivers
// Normalize the histograms in place).
type aggCache struct {
	mu      sync.Mutex
	vol     map[int]*volEntry
	pairs   map[int]*pairEntry
	share   *shareEntry
	traffic *shareEntry
}

type volEntry struct {
	hist   *dist.Hist
	weight float64
	err    error
}

type pairEntry struct {
	values, counts []float64
	err            error
}

type shareEntry struct {
	shares, cv []float64
	err        error
}

// AggregateVolume is Env.Coll.AggregateVolume(probe.ForService(svc)),
// memoized per service. The returned histogram is a fresh clone on
// every call.
func (e *Env) AggregateVolume(svc int) (*dist.Hist, float64, error) {
	e.cache.mu.Lock()
	defer e.cache.mu.Unlock()
	ent, ok := e.cache.vol[svc]
	if !ok {
		hist, weight, err := e.Coll.AggregateVolume(probe.ForService(svc))
		ent = &volEntry{hist: hist, weight: weight, err: err}
		if e.cache.vol == nil {
			e.cache.vol = map[int]*volEntry{}
		}
		e.cache.vol[svc] = ent
	}
	if ent.err != nil {
		return nil, 0, ent.err
	}
	return ent.hist.Clone(), ent.weight, nil
}

// AggregatePairs is Env.Coll.AggregatePairs(probe.ForService(svc)),
// memoized per service. The returned slices are fresh copies on every
// call.
func (e *Env) AggregatePairs(svc int) (values, counts []float64, err error) {
	e.cache.mu.Lock()
	defer e.cache.mu.Unlock()
	ent, ok := e.cache.pairs[svc]
	if !ok {
		v, c, err := e.Coll.AggregatePairs(probe.ForService(svc))
		ent = &pairEntry{values: v, counts: c, err: err}
		if e.cache.pairs == nil {
			e.cache.pairs = map[int]*pairEntry{}
		}
		e.cache.pairs[svc] = ent
	}
	if ent.err != nil {
		return nil, nil, ent.err
	}
	return append([]float64(nil), ent.values...), append([]float64(nil), ent.counts...), nil
}

// SessionShare is Env.Coll.SessionShare(nil) — the nationwide Table 1
// session-share column and its per-cell CV — memoized. The returned
// slices are fresh copies on every call.
func (e *Env) SessionShare() (share, cv []float64, err error) {
	e.cache.mu.Lock()
	defer e.cache.mu.Unlock()
	if e.cache.share == nil {
		shares, cv, err := e.Coll.SessionShare(nil)
		e.cache.share = &shareEntry{shares: shares, cv: cv, err: err}
	}
	ent := e.cache.share
	if ent.err != nil {
		return nil, nil, ent.err
	}
	return append([]float64(nil), ent.shares...), append([]float64(nil), ent.cv...), nil
}

// TrafficShare is Env.Coll.TrafficShare(nil) — the nationwide Table 1
// traffic-share column and its per-cell CV — memoized. The returned
// slices are fresh copies on every call.
func (e *Env) TrafficShare() (share, cv []float64, err error) {
	e.cache.mu.Lock()
	defer e.cache.mu.Unlock()
	if e.cache.traffic == nil {
		shares, cv, err := e.Coll.TrafficShare(nil)
		e.cache.traffic = &shareEntry{shares: shares, cv: cv, err: err}
	}
	ent := e.cache.traffic
	if ent.err != nil {
		return nil, nil, ent.err
	}
	return append([]float64(nil), ent.shares...), append([]float64(nil), ent.cv...), nil
}
