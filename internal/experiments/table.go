package experiments

import (
	"fmt"
	"strings"
)

// Table is a renderable experiment result: a titled grid of cells.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	// Notes carries free-form commentary (expected paper shape, caveats).
	Notes []string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = formatFloat(v)
		case int:
			row[i] = fmt.Sprintf("%d", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatFloat(v float64) string {
	av := v
	if av < 0 {
		av = -av
	}
	switch {
	case av == 0:
		return "0"
	case av >= 1e6 || av < 1e-3:
		return fmt.Sprintf("%.3e", v)
	case av >= 100:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.4g", v)
	}
}

// CSV renders the table as comma-separated values with a header row;
// notes become trailing comment lines.
func (t *Table) CSV() string {
	var b strings.Builder
	esc := func(c string) string {
		if strings.ContainsAny(c, ",\"\n") {
			return `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
		}
		return c
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(esc(c))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "# %s\n", n)
	}
	return b.String()
}

// Render prints the table with aligned columns.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}
