package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"mobiletraffic/internal/core"
	"mobiletraffic/internal/netsim"
	"mobiletraffic/internal/probe"
	"mobiletraffic/internal/services"
)

// DriftResult is the model-aging extension: the paper notes its models
// "will require updates over the years to consider changes in
// popularity and new services that emerge" (§7). This experiment
// simulates a later measurement campaign whose service catalog has
// drifted — popularity shifts, behavioural changes, one service gone
// and one new — refits the models, and shows that CompareModelSets
// flags exactly the planted drift while ExpStability-style same-period
// comparisons stay near zero.
type DriftResult struct {
	Comparison *core.SetComparison
	// Planted drift magnitudes for context.
	ShiftedService string
	PlantedMuShift float64
	RemovedService string
	AddedService   string
	BaselineMedian float64 // median |d beta| between same-catalog refits
}

// ExpDrift simulates the drifted campaign and compares fitted model
// sets.
func ExpDrift(env *Env) (*DriftResult, error) {
	// Build the drifted catalog: clone, shift one heavy service's
	// volume trend, swap popularity between two services, drop one,
	// add a new one.
	catalog := append([]services.Profile(nil), env.Catalog...)
	rng := rand.New(rand.NewSource(env.Config.Seed ^ 0xd21f7))

	const shifted = "Netflix"
	const removed = "Yahoo"
	const added = "NewShorts"
	var plantedShift float64
	out := catalog[:0:0]
	for _, p := range catalog {
		switch p.Name {
		case shifted:
			plantedShift = 0.5
			p.MainMu += plantedShift // sessions grew ~3x heavier
			p.Beta = math.Min(p.Beta+0.1, 1.8)
		case removed:
			continue
		case "Pokemon GO":
			p.SessionSharePct *= 3 // popularity rebound
		}
		out = append(out, p)
	}
	out = append(out, services.Profile{
		Name:            added,
		SessionSharePct: 2.5,
		TrafficSharePct: 4.0,
		Class:           services.Streaming,
		MainMu:          6.9, MainSigma: 1.0,
		Beta: 1.25, TypDuration: 300, DurationNoise: 0.15,
	})
	_ = rng

	// Simulate the drifted campaign on the same topology size.
	topo, err := netsim.NewTopology(netsim.TopologyConfig{
		NumBS: env.Config.NumBS, Seed: env.Config.Seed + 1,
	})
	if err != nil {
		return nil, err
	}
	sim, err := netsim.NewSimulatorWithCatalog(topo, netsim.SimConfig{
		Days: env.Config.Days, Seed: env.Config.Seed + 1, MoveProb: env.Config.MoveProb,
	}, out)
	if err != nil {
		return nil, err
	}
	coll, err := probe.NewCollector(len(sim.Services))
	if err != nil {
		return nil, err
	}
	var obsErr error
	if err := sim.GenerateAll(func(s netsim.Session) {
		if obsErr == nil {
			obsErr = coll.Observe(s)
		}
	}); err != nil {
		return nil, err
	}
	if obsErr != nil {
		return nil, obsErr
	}
	drifted, err := core.FitServiceModels(coll, sim.Services, nil)
	if err != nil {
		return nil, err
	}
	cmp, err := core.CompareModelSets(env.Models, drifted)
	if err != nil {
		return nil, err
	}

	// Baseline for context: same-campaign half/half comparison.
	stability, err := ExpStability(env)
	if err != nil {
		return nil, err
	}
	return &DriftResult{
		Comparison:     cmp,
		ShiftedService: shifted,
		PlantedMuShift: plantedShift,
		RemovedService: removed,
		AddedService:   added,
		BaselineMedian: stability.Comparison.MedianDeltaBeta,
	}, nil
}

// Table renders the drift result.
func (r *DriftResult) Table() *Table {
	t := &Table{
		Title:  "Extension — model aging across campaigns (§7: models require updates)",
		Header: []string{"service", "|d mu|", "|d beta|", "alpha ratio", "|d share|"},
	}
	for i, d := range r.Comparison.Deltas {
		if i >= 10 { // top drifters only
			break
		}
		t.AddRow(d.Name, d.DeltaMu, d.DeltaBeta, d.AlphaRatio, d.ShareDelta)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("planted: %s volume trend +%.1f decades; %s removed; %s launched",
			r.ShiftedService, r.PlantedMuShift, r.RemovedService, r.AddedService),
		fmt.Sprintf("services only in the old set: %v; only in the new set: %v",
			r.Comparison.OnlyInA, r.Comparison.OnlyInB),
		fmt.Sprintf("median |d beta| across campaigns %.3g vs %.3g within one campaign",
			r.Comparison.MedianDeltaBeta, r.BaselineMedian))
	return t
}
