package experiments

import (
	"strings"
	"testing"
)

func TestExpDiurnal(t *testing.T) {
	env := sharedEnv(t)
	r, err := ExpDiurnal(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.HourlyAll) != 24 || len(r.HourlyFirst) != 24 || len(r.HourlyLast) != 24 {
		t.Fatal("profile shape")
	}
	// Circadian shape: afternoon rates well above pre-dawn rates.
	if r.HourlyAll[14] < 3*r.HourlyAll[3] {
		t.Errorf("2pm rate %v not well above 3am rate %v", r.HourlyAll[14], r.HourlyAll[3])
	}
	if r.DayNightAll < 3 {
		t.Errorf("day/night ratio = %v", r.DayNightAll)
	}
	// The decile structure survives aggregation: busiest decile far
	// above the lightest at any hour.
	for h := 0; h < 24; h++ {
		if r.HourlyLast[h] < r.HourlyFirst[h] {
			t.Errorf("hour %d: decile 10 (%v) below decile 1 (%v)",
				h, r.HourlyLast[h], r.HourlyFirst[h])
		}
	}
	if !strings.Contains(r.Table().Render(), "circadian") {
		t.Error("table render")
	}
}

// Robustness: the pipeline copes with extreme configurations.
func TestEnvRobustness(t *testing.T) {
	t.Run("single day", func(t *testing.T) {
		env, err := NewEnv(Config{NumBS: 12, Days: 1, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ExpFig3(env); err != nil {
			t.Errorf("fig3 on 1 day: %v", err)
		}
		if _, err := ExpTable1(env); err != nil {
			t.Errorf("table1 on 1 day: %v", err)
		}
		// Weekend-dependent splits degrade gracefully (no weekend days
		// in a 1-day campaign): Fig. 5 reports zero EMD rather than
		// failing.
		if _, err := ExpFig5(env); err != nil {
			t.Errorf("fig5 on 1 day: %v", err)
		}
	})

	t.Run("extreme mobility", func(t *testing.T) {
		env, err := NewEnv(Config{NumBS: 12, Days: 1, Seed: 6, MoveProb: 0.9})
		if err != nil {
			t.Fatal(err)
		}
		// Fitting still succeeds and the heavy services stay modeled.
		if len(env.Models.Services) < 10 {
			t.Errorf("only %d services modeled at 90%% transients", len(env.Models.Services))
		}
		if _, err := ExpFig10(env); err != nil {
			t.Errorf("fig10 at 90%% transients: %v", err)
		}
	})

	t.Run("minimum topology", func(t *testing.T) {
		env, err := NewEnv(Config{NumBS: 10, Days: 1, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ExpDiurnal(env); err != nil {
			t.Errorf("diurnal on 10 BSs: %v", err)
		}
	})
}
