package experiments

import (
	"strings"
	"testing"
)

func TestExpAppLayer(t *testing.T) {
	env := sharedEnv(t)
	r, err := ExpAppLayer(env, 0) // default gap
	if err != nil {
		t.Fatal(err)
	}
	if r.IdleGap != 30 {
		t.Errorf("default idle gap = %v", r.IdleGap)
	}
	if r.Flows == 0 || len(r.Rows) < 2 {
		t.Fatalf("result shape: %+v", r)
	}
	for _, row := range r.Rows {
		if row.AppSessions <= 0 || row.MeanFlows < 1 || row.MeanParallel < 1 {
			t.Errorf("invalid class row %+v", row)
		}
		// App sessions merge flows, so the mean is bounded by the
		// per-UE flow counts of a 4-hour horizon.
		if row.MeanFlows > 1000 {
			t.Errorf("implausible flows/session: %+v", row)
		}
	}
	if !strings.Contains(r.Table().Render(), "app sessions") {
		t.Error("table render")
	}
}

func TestExpStabilityDayInvariance(t *testing.T) {
	env := sharedEnv(t)
	r, err := ExpStability(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Comparison.Deltas) < 15 {
		t.Fatalf("compared %d services", len(r.Comparison.Deltas))
	}
	// §4.4: day ranges of the same campaign must produce nearly
	// identical released parameters.
	if r.Comparison.MedianDeltaMu > 0.05 {
		t.Errorf("median |d mu| = %v, want ~0", r.Comparison.MedianDeltaMu)
	}
	if r.Comparison.MedianDeltaBeta > 0.05 {
		t.Errorf("median |d beta| = %v, want ~0", r.Comparison.MedianDeltaBeta)
	}
	if !strings.Contains(r.Table().Render(), "temporal stability") {
		t.Error("table render")
	}
}

func TestExpStabilityNeedsDays(t *testing.T) {
	env := sharedEnv(t)
	saved := env.Config.Days
	env.Config.Days = 1
	if _, err := ExpStability(env); err == nil {
		t.Error("single-day stability must error")
	}
	env.Config.Days = saved
}
