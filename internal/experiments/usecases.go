package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"mobiletraffic/internal/core"
	"mobiletraffic/internal/littrafgen"
	"mobiletraffic/internal/mathx"
	"mobiletraffic/internal/netsim"
	"mobiletraffic/internal/probe"
	"mobiletraffic/internal/slicing"
	"mobiletraffic/internal/vran"
)

// --- §6.1: capacity allocation for network slicing --------------------

// SlicingConfig sizes the §6.1 experiment. Defaults mirror the paper at
// reduced scale: 10 antennas, one week.
type SlicingConfig struct {
	Antennas int // default 10
	Days     int // default 7
	Seed     int64
	// Engine selects the generation engine for the model and category
	// reference traces; empty selects the default (core.GenV2).
	Engine core.Engine
	// Workers bounds the per-antenna worker pool (<= 0 uses every CPU).
	// Results are bit-identical for every worker count: each antenna's
	// streams are keyed by the antenna, not by execution order.
	Workers int
}

func (c SlicingConfig) withDefaults() SlicingConfig {
	if c.Antennas <= 0 {
		c.Antennas = 10
	}
	if c.Days <= 0 {
		c.Days = 7
	}
	if c.Engine == "" {
		c.Engine = core.GenV2
	}
	return c
}

// StrategyResult is one allocation strategy's Table 2 row.
type StrategyResult struct {
	Name          string
	MeanSatisfied float64 // fraction of peak minutes fully served
	StdSatisfied  float64
	SLAMet        int // slices meeting the 95% bar
	Slices        int
}

// Table2Result reproduces Table 2: SLA satisfaction per allocation
// strategy, averaged over antennas and services.
type Table2Result struct {
	Strategies []StrategyResult
}

// Fig12Result reproduces Fig. 12: the demand and allocated capacity
// timeline of one service's slice at one BS.
type Fig12Result struct {
	Service string
	// HourlyPeakDemand[h] is the maximum per-minute demand (bytes/min)
	// in hour h; Capacity is the model-allocated per-minute capacity.
	HourlyPeakDemand []float64
	HourlyMeanDemand []float64
	Capacity         float64
	Satisfied        float64
}

// busiestAntennas returns up to n topology indices sorted by descending
// BS load class (ties by index).
func busiestAntennas(env *Env, n int) []int {
	idx := make([]int, len(env.Topo.BSs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return env.Topo.BSs[idx[a]].Decile > env.Topo.BSs[idx[b]].Decile
	})
	if n > len(idx) {
		n = len(idx)
	}
	return idx[:n]
}

// modeledIndices maps catalog service indices to model-set indices,
// keeping only modeled services.
func modeledIndices(env *Env) (catalogIdx []int, modelIdx []int) {
	for mi := range env.Models.Services {
		for ci, p := range env.Catalog {
			if p.Name == env.Models.Services[mi].Name {
				catalogIdx = append(catalogIdx, ci)
				modelIdx = append(modelIdx, mi)
				break
			}
		}
	}
	return catalogIdx, modelIdx
}

// buildRealDemand replays the simulator's sessions for one BS into a
// per-service demand trace.
func buildRealDemand(env *Env, bsIdx, days, numServices int) (*slicing.DemandTrace, error) {
	trace, err := slicing.NewDemandTrace(numServices, days*24*60)
	if err != nil {
		return nil, err
	}
	for day := 0; day < days; day++ {
		err := env.Sim.GenerateDay(bsIdx, day, func(s netsim.Session) {
			_ = trace.AddSession(slicing.SessionSpec{
				Service:  s.Service,
				Start:    float64(day)*86400 + s.Start,
				Duration: s.Duration,
				Volume:   s.Volume,
			})
		})
		if err != nil {
			return nil, err
		}
	}
	return trace, nil
}

// antennaArrivals fits the bi-modal arrival model from the antenna's
// own measured minute counts — the "average antenna load" knowledge of
// §6.1.
func antennaArrivals(env *Env, bsIdx int) (*core.ArrivalModel, error) {
	filter := probe.BSIn([]int{bsIdx})
	peak := env.Coll.MinuteCountSamples(filter, netsim.IsPeakMinute)
	off := env.Coll.MinuteCountSamples(filter, netsim.IsOffPeakMinute)
	return core.FitArrivalModel(peak, off)
}

// dayWeightTable precomputes the 1440 per-minute-of-day phase weights
// so demand builders index a table instead of re-evaluating the
// transition curve every minute.
func dayWeightTable() []float64 {
	w := make([]float64, 24*60)
	for m := range w {
		w[m] = netsim.DayWeight(m)
	}
	return w
}

// buildModelDemand generates a reference trace from the fitted models
// with the antenna's own fitted arrival process. Engine GenV1 replays
// the historical math/rand streams draw for draw on the serial path;
// GenV2 runs on the parallel campaign plane — day cells keyed by
// (key, day) generate concurrently on up to workers goroutines and
// fold into the trace in day order, so the trace depends only on
// (seed, key), never on the schedule. The fold consumes each cell as
// it completes and recycles its storage, so the builder's transient
// footprint is O(workers) day blocks, not the whole campaign.
func buildModelDemand(env *Env, arr *core.ArrivalModel, days, numServices int, catalogIdx, modelIdx []int, seed int64, engine core.Engine, key uint64, workers int) (*slicing.DemandTrace, error) {
	trace, err := slicing.NewDemandTrace(numServices, days*24*60)
	if err != nil {
		return nil, err
	}
	gen, err := core.NewGeneratorEngine(env.Models, seed, engine)
	if err != nil {
		return nil, err
	}
	// model index -> catalog index (-1 for unmodeled)
	toCatalogIdx := make([]int, len(env.Models.Services))
	for i := range toCatalogIdx {
		toCatalogIdx[i] = -1
	}
	for k, mi := range modelIdx {
		toCatalogIdx[mi] = catalogIdx[k]
	}
	if gen.Engine != core.GenV1 {
		err := gen.GenerateCampaignFold(core.CampaignSpec{
			Arrivals: []*core.ArrivalModel{arr},
			Keys:     []uint64{key},
			Days:     days,
			Workers:  workers,
		}, func(blk *core.DayBlock) error {
			origin := float64(blk.Day) * 86400
			for i := 0; i < blk.Sessions(); i++ {
				ci := toCatalogIdx[blk.Svc[i]]
				if ci < 0 {
					continue
				}
				_ = trace.AddSession(slicing.SessionSpec{
					Service:  ci,
					Start:    origin + blk.Start[i],
					Duration: blk.Duration[i],
					Volume:   blk.Volume[i],
				})
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		return trace, nil
	}
	rng := rand.New(rand.NewSource(seed ^ 0x51c1))
	dayW := dayWeightTable()
	specs := make([]slicing.SessionSpec, 0, 64)
	for m := 0; m < days*24*60; m++ {
		// Transition-aware phase choice: shoulder minutes mix day and
		// night modes exactly as the measured arrival process does.
		peak := rng.Float64() < dayW[m%(24*60)]
		n := arr.SampleCount(peak, rng)
		specs = specs[:0]
		for k := 0; k < n; k++ {
			idx := gen.PickServiceIndex()
			s, err := gen.SessionFor(idx)
			if err != nil {
				return nil, err
			}
			ci := toCatalogIdx[idx]
			if ci < 0 {
				continue
			}
			specs = append(specs, slicing.SessionSpec{
				Service:  ci,
				Start:    float64(m)*60 + rng.Float64()*60,
				Duration: s.Duration,
				Volume:   s.Volume,
			})
		}
		_ = trace.AddSessions(specs)
	}
	return trace, nil
}

// catPhaseDomain salts the experiments-local phase/count/start PCG of
// the parallel category-demand builder, keeping it disjoint from the
// benchmark generator's own substream family under the same seed.
const catPhaseDomain uint64 = 0xEC5E_CA7E_70A5E4D1

// demandTile is one day of demand rasterized into a local minute grid:
// rows indexed by category, columns by minute from the tile's day
// origin. A row extends past the 1440-minute day boundary when a
// session spills into later days. Folding tiles instead of session
// specs is what makes the category builder zero-materialization: a
// day's working set is the ~34 KB grid, not its ~70k session records.
type demandTile struct {
	rows [littrafgen.NumCategories][]float64
}

// reset clears the tile to a zeroed 1440-minute day, keeping any
// spill capacity a previous day grew.
func (t *demandTile) reset() {
	for c := range t.rows {
		row := t.rows[c]
		if row == nil {
			t.rows[c] = make([]float64, 24*60)
			continue
		}
		row = row[:cap(row)]
		for i := range row {
			row[i] = 0
		}
		t.rows[c] = row[:24*60]
	}
}

// add rasterizes one session with slicing.AddSession's uniform spread:
// volume at rate bytes/second over the minutes the session overlaps.
// start is seconds from the tile origin; maxCols caps the spread at the
// trace horizon exactly as AddSession clamps to its Minutes.
func (t *demandTile) add(cat int, start, dur, vol float64, maxCols int) {
	if dur <= 0 || vol <= 0 {
		return
	}
	rate := vol / dur
	end := start + dur
	row := t.rows[cat]
	for m := int(start / 60); m < maxCols; m++ {
		lo := math.Max(start, float64(m)*60)
		hi := math.Min(end, float64(m+1)*60)
		if hi <= lo {
			break
		}
		for m >= len(row) {
			row = append(row, 0)
		}
		row[m] += rate * (hi - lo)
	}
	t.rows[cat] = row
}

// merge folds the tile into the trace at day d. Tiles merge strictly
// in day order, so every trace column accumulates its contributions in
// a schedule-independent order.
func (t *demandTile) merge(trace *slicing.DemandTrace, d int) {
	base := d * 24 * 60
	for c := range t.rows {
		dst := trace.Demand[c]
		for i, v := range t.rows[c] {
			if v != 0 {
				dst[base+i] += v
			}
		}
	}
}

// buildCategoryDemand generates a 3-row category trace from the
// literature models with the same arrival process. GenV1 replays the
// historical serial streams; GenV2 decomposes into per-day cells —
// sessions from littrafgen substreams keyed (key, day), phase/count/
// start draws from a salted sibling PCG of the same keying — rasterized
// concurrently into recycled per-day demand tiles and folded into the
// trace in day order, so the trace depends only on (seed, key) and the
// transient footprint is O(workers) minute grids, not the horizon's
// session records.
func buildCategoryDemand(arr *core.ArrivalModel, days int, shares [littrafgen.NumCategories]float64, seed int64, engine core.Engine, key uint64, workers int) (*slicing.DemandTrace, error) {
	trace, err := slicing.NewDemandTrace(littrafgen.NumCategories, days*24*60)
	if err != nil {
		return nil, err
	}
	gen := littrafgen.NewGeneratorEngine(shares, seed, engine)
	if gen.Engine != core.GenV1 {
		var firstErr error
		var errMu sync.Mutex
		dayW := dayWeightTable()
		foldErr := core.FoldTasks(days, workers, func(_, d int, tile *demandTile) {
			tile.reset()
			sub, err := gen.Substream(key, uint64(d))
			if err != nil {
				errMu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				errMu.Unlock()
				return
			}
			var pcg mathx.PCG
			pcg.SeedStream(uint64(seed)^catPhaseDomain, key, uint64(d))
			maxCols := (days - d) * 24 * 60
			for m := 0; m < 24*60; m++ {
				peak := pcg.Float64() < dayW[m]
				n := arr.SampleCountFast(peak, &pcg)
				for k := 0; k < n; k++ {
					s := sub.Sample()
					tile.add(int(s.Category), float64(m)*60+pcg.Float64()*60, s.Duration, s.Volume, maxCols)
				}
			}
		}, func(d int, tile *demandTile) error {
			tile.merge(trace, d)
			return nil
		})
		if foldErr != nil {
			return nil, foldErr
		}
		if firstErr != nil {
			return nil, firstErr
		}
		return trace, nil
	}
	rng := rand.New(rand.NewSource(seed ^ 0xca7e))
	dayW := dayWeightTable()
	specs := make([]slicing.SessionSpec, 0, 64)
	for m := 0; m < days*24*60; m++ {
		peak := rng.Float64() < dayW[m%(24*60)]
		n := arr.SampleCount(peak, rng)
		specs = specs[:0]
		for k := 0; k < n; k++ {
			s := gen.Sample()
			specs = append(specs, slicing.SessionSpec{
				Service:  int(s.Category),
				Start:    float64(m)*60 + rng.Float64()*60,
				Duration: s.Duration,
				Volume:   s.Volume,
			})
		}
		_ = trace.AddSessions(specs)
	}
	return trace, nil
}

// ExpTable2 runs the §6.1 slicing study for the three strategies.
func ExpTable2(env *Env, cfg SlicingConfig) (*Table2Result, error) {
	c := cfg.withDefaults()
	catalogIdx, modelIdx := modeledIndices(env)
	if len(catalogIdx) == 0 {
		return nil, fmt.Errorf("experiments: no modeled services for slicing")
	}
	numServices := len(env.Catalog)
	peak := slicing.PeakMinutes()

	// Category membership of every catalog service.
	membership := make([]int, numServices)
	for ci, p := range env.Catalog {
		membership[ci] = int(littrafgen.CategoryOf(p))
	}

	strategies := []string{"session-level models", "bm_a", "bm_b"}
	perStrategy := make(map[string][]slicing.SLAResult)

	// Dimension slices at the busiest antennas, as an operator selling
	// per-service slices would; lightly loaded cells see single-session
	// demand spikes that no percentile rule can track.
	study := busiestAntennas(env, c.Antennas)
	// Generate a longer reference trace than the evaluation horizon so
	// the 95th-percentile allocation is stable — with a model, synthetic
	// data is free.
	refDays := c.Days
	if refDays < 4 {
		refDays = 4
	}
	// Antennas are independent studies — per-antenna seeds and stream
	// keys, read-only env — so they fan out on the shared worker pool
	// into per-index slots and fold in antenna order below, keeping the
	// result bit-identical for every worker count (both engines: the v1
	// streams are per-antenna math/rand sources, the v2 streams are
	// keyed substream families).
	perAntenna := make([]map[string][]slicing.SLAResult, len(study))
	antErrs := make([]error, len(study))
	core.RunTasks(len(study), c.Workers, func(ai int) {
		a := study[ai]
		real, err := buildRealDemand(env, a, c.Days, numServices)
		if err != nil {
			antErrs[ai] = err
			return
		}
		arr, err := antennaArrivals(env, a)
		if err != nil {
			antErrs[ai] = err
			return
		}
		// Strategy 1: session-level model allocation.
		modelRef, err := buildModelDemand(env, arr, refDays, numServices, catalogIdx, modelIdx, c.Seed+int64(a), c.Engine, uint64(a), 1)
		if err != nil {
			antErrs[ai] = err
			return
		}
		allocModel, err := slicing.AllocatePercentile(modelRef, 0.95, peak)
		if err != nil {
			antErrs[ai] = err
			return
		}
		// Strategies 2-3: category benchmarks.
		allocs := map[string]slicing.Allocation{"session-level models": allocModel}
		for _, bm := range []struct {
			name   string
			shares [littrafgen.NumCategories]float64
		}{
			{"bm_a", littrafgen.BMAShares()},
			{"bm_b", littrafgen.BMBShares()},
		} {
			catRef, err := buildCategoryDemand(arr, refDays, bm.shares, c.Seed+int64(a)*7+31, c.Engine, uint64(a), 1)
			if err != nil {
				antErrs[ai] = err
				return
			}
			alloc, err := slicing.AllocateCategoryUniform(catRef, membership, 0.95, peak)
			if err != nil {
				antErrs[ai] = err
				return
			}
			allocs[bm.name] = alloc
		}
		mine := make(map[string][]slicing.SLAResult, len(allocs))
		for name, alloc := range allocs {
			res, err := slicing.Evaluate(real, alloc, peak)
			if err != nil {
				antErrs[ai] = err
				return
			}
			// Keep only modeled services (the 28 SPs analogue).
			for _, ci := range catalogIdx {
				mine[name] = append(mine[name], res[ci])
			}
		}
		perAntenna[ai] = mine
	})
	for ai, err := range antErrs {
		if err != nil {
			return nil, fmt.Errorf("experiments: antenna %d: %w", study[ai], err)
		}
	}
	for _, mine := range perAntenna {
		for name, rs := range mine {
			perStrategy[name] = append(perStrategy[name], rs...)
		}
	}
	out := &Table2Result{}
	for _, name := range strategies {
		s := slicing.Summarize(perStrategy[name], 0.95)
		out.Strategies = append(out.Strategies, StrategyResult{
			Name:          name,
			MeanSatisfied: s.MeanSatisfied,
			StdSatisfied:  s.StdSatisfied,
			SLAMet:        s.SLAMetCount,
			Slices:        s.SliceCount,
		})
	}
	return out, nil
}

// Table renders Table 2.
func (r *Table2Result) Table() *Table {
	t := &Table{
		Title:  "Table 2 — capacity allocation for network slicing (§6.1)",
		Header: []string{"model", "time with no dropped traffic %", "std %", "slices meeting 95% SLA", "slices"},
	}
	for _, s := range r.Strategies {
		t.AddRow(s.Name, s.MeanSatisfied*100, s.StdSatisfied*100, s.SLAMet, s.Slices)
	}
	t.Notes = append(t.Notes,
		"paper shape: session-level models ~95% (meets SLA), bm_a ~90%, bm_b ~87%")
	return t
}

// ExpFig12 produces the Facebook slice timeline at one BS.
func ExpFig12(env *Env, cfg SlicingConfig) (*Fig12Result, error) {
	c := cfg.withDefaults()
	svc, err := env.serviceIndex("Facebook")
	if err != nil {
		return nil, err
	}
	catalogIdx, modelIdx := modeledIndices(env)
	antenna := busiestAntennas(env, 1)[0]
	real, err := buildRealDemand(env, antenna, c.Days, len(env.Catalog))
	if err != nil {
		return nil, err
	}
	arr, err := antennaArrivals(env, antenna)
	if err != nil {
		return nil, err
	}
	refDays := c.Days
	if refDays < 4 {
		refDays = 4
	}
	ref, err := buildModelDemand(env, arr, refDays, len(env.Catalog), catalogIdx, modelIdx, c.Seed+99, c.Engine, uint64(antenna), c.Workers)
	if err != nil {
		return nil, err
	}
	peak := slicing.PeakMinutes()
	alloc, err := slicing.AllocatePercentile(ref, 0.95, peak)
	if err != nil {
		return nil, err
	}
	res, err := slicing.Evaluate(real, alloc, peak)
	if err != nil {
		return nil, err
	}
	hours := c.Days * 24
	out := &Fig12Result{
		Service:          "Facebook",
		Capacity:         alloc[svc],
		Satisfied:        res[svc].Satisfied,
		HourlyPeakDemand: make([]float64, hours),
		HourlyMeanDemand: make([]float64, hours),
	}
	for h := 0; h < hours; h++ {
		var peakV, sum float64
		for m := h * 60; m < (h+1)*60; m++ {
			v := real.Demand[svc][m]
			if v > peakV {
				peakV = v
			}
			sum += v
		}
		out.HourlyPeakDemand[h] = peakV
		out.HourlyMeanDemand[h] = sum / 60
	}
	return out, nil
}

// Table renders the Fig. 12 result.
func (r *Fig12Result) Table() *Table {
	t := &Table{
		Title:  "Fig. 12 — Facebook slice demand vs allocated capacity at one BS",
		Header: []string{"hour", "peak demand (B/min)", "mean demand (B/min)"},
	}
	for h := range r.HourlyPeakDemand {
		t.AddRow(h, r.HourlyPeakDemand[h], r.HourlyMeanDemand[h])
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("allocated capacity: %s B/min; SLA satisfaction %.1f%%", formatFloat(r.Capacity), r.Satisfied*100),
		"paper shape: the allocated capacity sits far below the demand peaks yet satisfies the SLA")
	return t
}

// --- §6.2: energy consumption in CU-DU -------------------------------

// VRANConfig sizes the §6.2 experiment. The paper uses 1 CS x 20 ES x
// 20 RU over several emulated days; defaults are scaled down.
type VRANConfig struct {
	// ESs is the number of far edge sites / DUs (default 16). Keep the
	// per-DU aggregate below the server capacity so the bin-packing
	// regime (rather than saturation clamping) drives the comparison.
	ESs      int
	RUsPerES int // radio units per ES (default 5)
	Hours    int // emulated hours starting 08:00 (default 4)
	Seed     int64
	// Engine selects the generation engine for the strategy session
	// factories; empty selects the default (core.GenV2).
	Engine core.Engine
	// Workers bounds the strategy-series worker pool (<= 0 uses every
	// CPU); each strategy owns its generators and seed, so the result
	// is bit-identical for every worker count.
	Workers int
}

func (c VRANConfig) withDefaults() VRANConfig {
	if c.ESs <= 0 {
		c.ESs = 16
	}
	if c.RUsPerES <= 0 {
		c.RUsPerES = 5
	}
	if c.Hours <= 0 {
		c.Hours = 4
	}
	if c.Engine == "" {
		c.Engine = core.GenV2
	}
	return c
}

// VRANStrategy is one traffic generator's Fig. 13b row.
type VRANStrategy struct {
	Name       string
	ActiveAPE  vran.APESummary
	PowerAPE   vran.APESummary
	MeanActive float64
	MeanPowerW float64
}

// Fig13Result reproduces Fig. 13b/c: APE of active servers and power
// for the session-level model and the literature benchmarks, plus a
// downsampled power time series.
type Fig13Result struct {
	Strategies []VRANStrategy
	// PowerSeries holds per-minute mean power for "measurement",
	// "model" and "bm_c" (Fig. 13c).
	PowerSeries    map[string][]float64
	RealMeanPower  float64
	RealMeanActive float64
}

// sharedArrival is one (RU, minute) slot of the shared arrival
// realization: how many sessions arrive and which catalog service each
// belongs to.
type sharedArrival struct {
	services []int
}

// ExpFig13 runs the §6.2 vRAN energy study.
func ExpFig13(env *Env, cfg VRANConfig) (*Fig13Result, error) {
	c := cfg.withDefaults()
	catalogIdx, modelIdx := modeledIndices(env)
	if len(catalogIdx) == 0 {
		return nil, fmt.Errorf("experiments: no modeled services for vRAN")
	}
	// Shared per-service probabilities restricted to modeled services.
	probs := make([]float64, len(catalogIdx))
	var total float64
	for k, ci := range catalogIdx {
		probs[k] = env.Catalog[ci].SessionSharePct
		total += probs[k]
	}
	for k := range probs {
		probs[k] /= total
	}

	rus := c.ESs * c.RUsPerES
	minutes := c.Hours * 60
	slots := c.Hours * 3600
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x77aa))

	// RU load classes cycle through all deciles, mirroring the real
	// network's load mix; this keeps DU aggregates within the packing
	// regime instead of saturating every server.
	ruDecile := make([]int, rus)
	for r := range ruDecile {
		ruDecile[r] = r % 10
	}

	// Shared arrival realization: same counts and service labels for
	// every traffic generator (§6.2.3).
	shared := make([][]sharedArrival, rus)
	for r := 0; r < rus; r++ {
		shared[r] = make([]sharedArrival, minutes)
		arr := env.Arrivals[ruDecile[r]]
		for m := 0; m < minutes; m++ {
			minuteOfDay := (8*60 + m) % (24 * 60)
			n := arr.SampleCount(rng.Float64() < netsim.DayWeight(minuteOfDay), rng)
			sa := sharedArrival{services: make([]int, n)}
			for k := 0; k < n; k++ {
				sa.services[k] = pickIdx(probs, rng)
			}
			shared[r][m] = sa
		}
	}

	ps := vran.DefaultPS()
	duOf := func(ru int) int { return ru / c.RUsPerES }

	// Build the measurement-driven series and record per-session real
	// volumes for the bm_b / bm_c normalizations.
	realSeries, err := vran.NewThroughputSeries(c.ESs, slots)
	if err != nil {
		return nil, err
	}
	realRng := rand.New(rand.NewSource(cfg.Seed + 1))
	var realVolSum, realVolCount float64
	var catVolSum [littrafgen.NumCategories]float64
	var catVolCount [littrafgen.NumCategories]float64
	moveProb := env.Sim.Config.MoveProb
	meanDwell := env.Sim.Config.MeanDwell
	for r := 0; r < rus; r++ {
		for m := 0; m < minutes; m++ {
			for _, k := range shared[r][m].services {
				ci := catalogIdx[k]
				prof := env.Catalog[ci]
				vol := prof.SampleVolume(realRng)
				dur := prof.SampleDuration(vol, realRng)
				// The measured population includes transient sessions
				// truncated by UE mobility (§4.2): replicate that
				// truncation so the "measurement" workload matches the
				// population the models were fitted on.
				if moveProb > 0 && realRng.Float64() < moveProb {
					dwell := realRng.ExpFloat64() * meanDwell
					if dwell < 1 {
						dwell = 1
					}
					if dwell < dur {
						vol *= dwell / dur
						dur = dwell
					}
				}
				start := float64(m)*60 + realRng.Float64()*60
				if err := realSeries.AddSession(duOf(r), start, dur, vol); err != nil {
					return nil, err
				}
				realVolSum += vol
				realVolCount++
				cat := littrafgen.CategoryOf(prof)
				catVolSum[cat] += vol
				catVolCount[cat]++
			}
		}
	}
	realRun, err := vran.Run(ps, realSeries)
	if err != nil {
		return nil, err
	}

	out := &Fig13Result{
		PowerSeries:    map[string][]float64{"measurement": downsampleMean(realRun.PowerW, 60)},
		RealMeanPower:  realRun.MeanPower(),
		RealMeanActive: realRun.MeanActive(),
	}

	// Session factories per strategy. On GenV1 every factory draws from
	// the per-strategy math/rand stream exactly as the historical code
	// did; on GenV2 each generator owns its fast PCG stream and the
	// session-level factory draws by model index (no name round-trips).
	type factory func(k int, rng *rand.Rand) (vol, dur float64)
	modelFor := make([]*core.ServiceModel, len(catalogIdx))
	for i, mi := range modelIdx {
		modelFor[i] = &env.Models.Services[mi]
	}
	bmA := littrafgen.NewGeneratorEngine(littrafgen.BMAShares(), cfg.Seed+5, c.Engine)
	bmB := littrafgen.NewGeneratorEngine(littrafgen.BMBShares(), cfg.Seed+6, c.Engine)
	if realVolCount > 0 {
		bmB.NormalizeTotal(realVolSum / realVolCount)
	}
	// bm_c keeps the measured (bm_a) shares: its strength is the
	// per-category normalization, not the share vector.
	bmC := littrafgen.NewGeneratorEngine(littrafgen.BMAShares(), cfg.Seed+7, c.Engine)
	var catMeans [littrafgen.NumCategories]float64
	for cat := 0; cat < littrafgen.NumCategories; cat++ {
		if catVolCount[cat] > 0 {
			catMeans[cat] = catVolSum[cat] / catVolCount[cat]
		}
	}
	bmC.NormalizePerCategory(catMeans)

	litFactory := func(gen *littrafgen.Generator) factory {
		if c.Engine == core.GenV1 {
			models := gen.Models
			return func(k int, rng *rand.Rand) (float64, float64) {
				cat := littrafgen.CategoryOf(env.Catalog[catalogIdx[k]])
				s := models[cat].Sample(rng)
				vol := s.Volume
				if sc := gen.VolumeScale[cat]; sc > 0 && sc != 1 {
					vol *= sc
				}
				return vol, s.Duration
			}
		}
		return func(k int, _ *rand.Rand) (float64, float64) {
			s := gen.SampleCategory(littrafgen.CategoryOf(env.Catalog[catalogIdx[k]]))
			return s.Volume, s.Duration
		}
	}
	modelFactory := func(k int, rng *rand.Rand) (float64, float64) {
		s := modelFor[k].Generate(rng)
		return s.Volume, s.Duration
	}
	if c.Engine != core.GenV1 {
		genModel, err := core.NewGeneratorEngine(env.Models, cfg.Seed+100, c.Engine)
		if err != nil {
			return nil, err
		}
		modelFactory = func(k int, _ *rand.Rand) (float64, float64) {
			s, err := genModel.SessionFor(modelIdx[k])
			if err != nil {
				return 0, 0
			}
			return s.Volume, s.Duration
		}
	}
	strategies := []struct {
		name string
		f    factory
	}{
		{"session-level models", modelFactory},
		{"bm_a", litFactory(bmA)},
		{"bm_b", litFactory(bmB)},
		{"bm_c", litFactory(bmC)},
	}

	// The four strategy series are independent — each owns its factory's
	// generators and its own per-strategy seeded rand source, and reads
	// only the shared arrival realization — so they build and evaluate
	// concurrently into per-strategy slots, appended in strategy order
	// below: bit-identical to the serial loop for every worker count.
	stratResults := make([]VRANStrategy, len(strategies))
	stratPower := make([][]float64, len(strategies))
	stratErrs := make([]error, len(strategies))
	core.RunTasks(len(strategies), c.Workers, func(si int) {
		strat := strategies[si]
		series, err := vran.NewThroughputSeries(c.ESs, slots)
		if err != nil {
			stratErrs[si] = err
			return
		}
		srng := rand.New(rand.NewSource(cfg.Seed + 100 + int64(si)))
		for r := 0; r < rus; r++ {
			for m := 0; m < minutes; m++ {
				for _, k := range shared[r][m].services {
					vol, dur := strat.f(k, srng)
					start := float64(m)*60 + srng.Float64()*60
					if err := series.AddSession(duOf(r), start, dur, vol); err != nil {
						stratErrs[si] = err
						return
					}
				}
			}
		}
		run, err := vran.Run(ps, series)
		if err != nil {
			stratErrs[si] = err
			return
		}
		activeAPE, err := vran.APESeries(run.ActivePS, realRun.ActivePS)
		if err != nil {
			stratErrs[si] = err
			return
		}
		powerAPE, err := vran.APESeries(run.PowerW, realRun.PowerW)
		if err != nil {
			stratErrs[si] = err
			return
		}
		stratResults[si] = VRANStrategy{
			Name:       strat.name,
			ActiveAPE:  vran.SummarizeAPE(activeAPE),
			PowerAPE:   vran.SummarizeAPE(powerAPE),
			MeanActive: run.MeanActive(),
			MeanPowerW: run.MeanPower(),
		}
		if strat.name == "session-level models" || strat.name == "bm_c" {
			stratPower[si] = downsampleMean(run.PowerW, 60)
		}
	})
	for si, err := range stratErrs {
		if err != nil {
			return nil, fmt.Errorf("experiments: strategy %s: %w", strategies[si].name, err)
		}
	}
	for si, strat := range strategies {
		out.Strategies = append(out.Strategies, stratResults[si])
		if strat.name == "session-level models" {
			out.PowerSeries["model"] = stratPower[si]
		}
		if strat.name == "bm_c" {
			out.PowerSeries["bm_c"] = stratPower[si]
		}
	}
	return out, nil
}

func pickIdx(probs []float64, rng *rand.Rand) int {
	u := rng.Float64()
	var acc float64
	for i, p := range probs {
		acc += p
		if u < acc {
			return i
		}
	}
	return len(probs) - 1
}

func downsampleMean(xs []float64, window int) []float64 {
	if window <= 1 {
		return xs
	}
	n := len(xs) / window
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = mathx.Mean(xs[i*window : (i+1)*window])
	}
	return out
}

// Table renders Fig. 13b.
func (r *Fig13Result) Table() *Table {
	t := &Table{
		Title:  "Fig. 13b — vRAN orchestration error per traffic model (§6.2)",
		Header: []string{"model", "active-PS APE median %", "q1", "q3", "power APE median %", "q1", "q3", "mean active", "mean power W"},
	}
	for _, s := range r.Strategies {
		t.AddRow(s.Name, s.ActiveAPE.Median, s.ActiveAPE.Q1, s.ActiveAPE.Q3,
			s.PowerAPE.Median, s.PowerAPE.Q1, s.PowerAPE.Q3, s.MeanActive, s.MeanPowerW)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("measurement reference: mean active PSs %.2f, mean power %.1f W", r.RealMeanActive, r.RealMeanPower),
		"paper shape: session-level model median APE well below 5%; benchmarks 100-1000%")
	return t
}

// Fig13cTable renders the power time series of Fig. 13c.
func (r *Fig13Result) Fig13cTable() *Table {
	t := &Table{
		Title:  "Fig. 13c — power consumption over time (per-minute means, W)",
		Header: []string{"minute", "measurement", "model", "bm_c"},
	}
	meas := r.PowerSeries["measurement"]
	model := r.PowerSeries["model"]
	bmc := r.PowerSeries["bm_c"]
	n := len(meas)
	if len(model) < n {
		n = len(model)
	}
	if len(bmc) < n {
		n = len(bmc)
	}
	step := 1
	if n > 60 {
		step = n / 60 // keep the table readable
	}
	for i := 0; i < n; i += step {
		t.AddRow(i, meas[i], model[i], bmc[i])
	}
	t.Notes = append(t.Notes, "paper shape: the model tracks the measurement trace closely; bm_c drifts far off")
	return t
}
