package experiments

import (
	"fmt"
	"math"
	"sort"

	"mobiletraffic/internal/cluster"
	"mobiletraffic/internal/core"
	"mobiletraffic/internal/dist"
	"mobiletraffic/internal/fit"
	"mobiletraffic/internal/mathx"
	"mobiletraffic/internal/netsim"
	"mobiletraffic/internal/probe"
	"mobiletraffic/internal/services"
)

// --- Fig. 3: session arrival PDFs per BS load decile -----------------

// Fig3Decile is the fitted bi-modal arrival model of one load decile.
type Fig3Decile struct {
	Decile            int
	Model             *core.ArrivalModel
	EmpiricalPeakMean float64
	EmpiricalOffMean  float64
}

// Fig3Result reproduces Fig. 3: arrival-rate fits for every decile plus
// the cross-decile regularities of §5.1.
type Fig3Result struct {
	Deciles []Fig3Decile
	// MuGrowth and ScaleGrowth are the exponential per-decile growth
	// factors of the Gaussian mean and Pareto scale ("similar rate").
	MuGrowth, ScaleGrowth float64
}

// ExpFig3 fits the bi-modal arrival model per BS load decile.
func ExpFig3(env *Env) (*Fig3Result, error) {
	out := &Fig3Result{}
	var mus, scales []float64
	for d := 0; d < 10; d++ {
		filter := probe.BSIn(env.Topo.ByDecile(d))
		peak := env.Coll.MinuteCountSamples(filter, netsim.IsPeakMinute)
		off := env.Coll.MinuteCountSamples(filter, netsim.IsOffPeakMinute)
		out.Deciles = append(out.Deciles, Fig3Decile{
			Decile:            d,
			Model:             env.Arrivals[d],
			EmpiricalPeakMean: mathx.Mean(peak),
			EmpiricalOffMean:  mathx.Mean(off),
		})
		mus = append(mus, env.Arrivals[d].PeakMu)
		scales = append(scales, math.Max(env.Arrivals[d].OffScale, 1e-6))
	}
	var err error
	if out.MuGrowth, err = core.ArrivalGrowthRate(mus); err != nil {
		return nil, err
	}
	if out.ScaleGrowth, err = core.ArrivalGrowthRate(scales); err != nil {
		return nil, err
	}
	return out, nil
}

// Table renders the Fig. 3 result.
func (r *Fig3Result) Table() *Table {
	t := &Table{
		Title:  "Fig. 3 — bi-modal session arrivals per BS load decile",
		Header: []string{"decile", "peak mu", "peak sigma", "sigma/mu", "pareto scale", "emp day mean", "emp night mean"},
	}
	for _, d := range r.Deciles {
		t.AddRow(d.Decile+1, d.Model.PeakMu, d.Model.PeakSigma, d.Model.SigmaRatio(),
			d.Model.OffScale, d.EmpiricalPeakMean, d.EmpiricalOffMean)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("per-decile growth: mu x%.3f, pareto scale x%.3f (paper: similar exponential rates)", r.MuGrowth, r.ScaleGrowth),
		"expected shape: sigma/mu ~ 0.1 in every decile; Pareto shape fixed at 1.765")
	return t
}

// --- Fig. 4: service ranking by session share ------------------------

// Fig4Result reproduces Fig. 4: services ranked by session fraction
// follow a negative exponential (paper R² = 0.97) while traffic shares
// scatter.
type Fig4Result struct {
	Names        []string
	SessionFrac  []float64
	TrafficFrac  []float64
	ExpA, ExpB   float64
	R2           float64
	Top20Percent float64 // share of sessions from the top 20 services
}

// ExpFig4 ranks the services and fits the exponential law.
func ExpFig4(env *Env) (*Fig4Result, error) {
	share, _, err := env.SessionShare()
	if err != nil {
		return nil, err
	}
	traffic, _, err := env.TrafficShare()
	if err != nil {
		return nil, err
	}
	type entry struct {
		name     string
		sessions float64
		traffic  float64
	}
	entries := make([]entry, len(share))
	for i := range share {
		entries[i] = entry{env.Catalog[i].Name, share[i], traffic[i]}
	}
	sort.SliceStable(entries, func(i, j int) bool { return entries[i].sessions > entries[j].sessions })
	out := &Fig4Result{}
	var ranks []float64
	for i, e := range entries {
		out.Names = append(out.Names, e.name)
		out.SessionFrac = append(out.SessionFrac, e.sessions)
		out.TrafficFrac = append(out.TrafficFrac, e.traffic)
		ranks = append(ranks, float64(i))
		if i < 20 {
			out.Top20Percent += e.sessions
		}
	}
	curve, err := fit.FitExpCurve(ranks, out.SessionFrac)
	if err != nil {
		return nil, err
	}
	out.ExpA, out.ExpB, out.R2 = curve.A, curve.B, curve.R2
	return out, nil
}

// Table renders the Fig. 4 result.
func (r *Fig4Result) Table() *Table {
	t := &Table{
		Title:  "Fig. 4 — services ranked by fraction of sessions",
		Header: []string{"rank", "service", "session frac", "traffic frac"},
	}
	for i := range r.Names {
		t.AddRow(i+1, r.Names[i], r.SessionFrac[i], r.TrafficFrac[i])
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("negative exponential fit: %.4g * exp(%.4g * rank), R2 = %.3f (paper: R2 = 0.97)", r.ExpA, r.ExpB, r.R2),
		fmt.Sprintf("top-20 services carry %.1f%% of sessions (paper: over 78%%)", r.Top20Percent*100))
	return t
}

// --- Fig. 5 / Fig. 7: per-service PDFs and duration-volume pairs -----

// ServicePDFSummary condenses one service's session-level statistics:
// the Fig. 5/7 panels reduced to comparable numbers.
type ServicePDFSummary struct {
	Name string
	// Volume PDF statistics in the log10-bytes domain.
	Mode, Mean, Std float64
	// WorkdayWeekendEMD is the distance between the workday and weekend
	// volume PDFs (expected tiny, §4.4).
	WorkdayWeekendEMD float64
	// PairBeta is the power-law exponent of the duration-volume pairs.
	PairBeta float64
}

// Fig5Result reproduces Fig. 5 (and Fig. 7 with its two services): the
// archetypal per-service session statistics.
type Fig5Result struct {
	Services []ServicePDFSummary
}

// ExpFig5 summarizes the six Fig. 5 services.
func ExpFig5(env *Env) (*Fig5Result, error) {
	return servicePDFs(env, []string{"Netflix", "Twitch", "Deezer", "Amazon", "Pokemon GO", "Waze"})
}

// ExpFig7 summarizes the Facebook Live / Facebook contrast of Fig. 7.
func ExpFig7(env *Env) (*Fig5Result, error) {
	return servicePDFs(env, []string{"FB Live", "Facebook"})
}

func servicePDFs(env *Env, names []string) (*Fig5Result, error) {
	out := &Fig5Result{}
	durations := env.Coll.DurationCenters()
	for _, name := range names {
		svc, err := env.serviceIndex(name)
		if err != nil {
			return nil, err
		}
		all, _, err := env.AggregateVolume(svc)
		if err != nil {
			return nil, err
		}
		s := ServicePDFSummary{
			Name: name,
			Mode: all.Mode(),
			Mean: all.Mean(),
			Std:  all.Std(),
		}
		// Workday/weekend comparison when both day types exist.
		wd, _, errWd := env.Coll.AggregateVolume(probe.And(probe.ForService(svc), probe.Weekdays()))
		we, _, errWe := env.Coll.AggregateVolume(probe.And(probe.ForService(svc), probe.Weekends()))
		if errWd == nil && errWe == nil {
			if emd, err := dist.EMD(wd, we); err == nil {
				s.WorkdayWeekendEMD = emd
			}
		}
		values, counts, err := env.AggregatePairs(svc)
		if err != nil {
			return nil, err
		}
		dm, err := core.FitDurationModel(durations, values, counts)
		if err == nil {
			s.PairBeta = dm.Beta
		}
		out.Services = append(out.Services, s)
	}
	return out, nil
}

// Table renders per-service PDF summaries.
func (r *Fig5Result) Table() *Table {
	t := &Table{
		Title:  "Fig. 5/7 — per-service volume PDFs and duration-volume pairs",
		Header: []string{"service", "mode (log10 B)", "mean (log10 B)", "std", "workday/weekend EMD", "pair beta"},
	}
	for _, s := range r.Services {
		t.AddRow(s.Name, s.Mode, s.Mean, s.Std, s.WorkdayWeekendEMD, s.PairBeta)
	}
	t.Notes = append(t.Notes,
		"expected shape: streaming services mode >= ~1 MB with super-linear beta; interactive services light with sub-linear beta",
		"workday/weekend EMD must be far below inter-service distances (Fig. 8)")
	return t
}

// --- Fig. 6: service similarity clustering ---------------------------

// Fig6Result reproduces Fig. 6: the EMD similarity matrix over
// zero-mean-normalized volume PDFs, the hierarchical clustering and the
// silhouette profile.
type Fig6Result struct {
	Names []string
	// Dist is the row-major pairwise EMD matrix.
	Dist []float64
	// LabelsK3 is the cluster assignment at the paper's k = 3.
	LabelsK3 []int
	// Silhouette[k-2] is the score at k clusters, k = 2..maxK.
	Silhouette []float64
	// StreamingPairAgreement is the fraction of same-class service
	// pairs (ground truth streaming vs non-streaming) that the k=3
	// clustering puts in the same cluster, and of cross-class pairs it
	// separates — the streaming/lightweight dichotomy check.
	StreamingPairAgreement float64
}

// canonicalCenteredEdges is the shared grid for zero-mean PDFs.
var canonicalCenteredEdges = mathx.LinSpace(-5, 5, 401)

// normalizedServicePDFs returns zero-mean volume PDFs for every modeled
// service with enough sessions, plus their names, weights and ground
// truth classes.
func normalizedServicePDFs(env *Env, filter probe.KeyFilter) (names []string, pdfs []*dist.Hist, weights []float64, classes []services.Class, err error) {
	for svc, prof := range env.Catalog {
		f := probe.ForService(svc)
		if filter != nil {
			f = probe.And(f, filter)
		}
		h, w, aerr := env.Coll.AggregateVolume(f)
		if aerr != nil || w < 200 {
			continue
		}
		c, cerr := h.ShiftToZeroMean(canonicalCenteredEdges)
		if cerr != nil {
			continue
		}
		names = append(names, prof.Name)
		pdfs = append(pdfs, c)
		weights = append(weights, w)
		classes = append(classes, prof.Class)
	}
	if len(pdfs) < 4 {
		return nil, nil, nil, nil, fmt.Errorf("experiments: only %d services have enough sessions to cluster", len(pdfs))
	}
	return names, pdfs, weights, classes, nil
}

// ExpFig6 clusters the normalized per-service PDFs.
func ExpFig6(env *Env) (*Fig6Result, error) {
	names, pdfs, weights, classes, err := normalizedServicePDFs(env, nil)
	if err != nil {
		return nil, err
	}
	n := len(pdfs)
	dm := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d, err := dist.EMD(pdfs[i], pdfs[j])
			if err != nil {
				return nil, err
			}
			dm[i*n+j] = d
			dm[j*n+i] = d
		}
	}
	dend, err := cluster.Agglomerate(pdfs, weights,
		func(a, b *dist.Hist) (float64, error) { return dist.EMD(a, b) },
		func(a, b *dist.Hist, wa, wb float64) (*dist.Hist, error) {
			return dist.MixHists([]*dist.Hist{a, b}, []float64{wa, wb})
		})
	if err != nil {
		return nil, err
	}
	labels, err := dend.CutK(3)
	if err != nil {
		return nil, err
	}
	maxK := 10
	if maxK > n {
		maxK = n
	}
	prof, err := cluster.SilhouetteProfile(dend, dm, maxK)
	if err != nil {
		return nil, err
	}
	// Pair agreement against the streaming / non-streaming dichotomy.
	var agree, total float64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			sameClass := (classes[i] == services.Streaming) == (classes[j] == services.Streaming)
			sameCluster := labels[i] == labels[j]
			if classes[i] == services.Outlier || classes[j] == services.Outlier {
				continue
			}
			total++
			if sameClass == sameCluster {
				agree++
			}
		}
	}
	out := &Fig6Result{Names: names, Dist: dm, LabelsK3: labels, Silhouette: prof}
	if total > 0 {
		out.StreamingPairAgreement = agree / total
	}
	return out, nil
}

// Table renders the Fig. 6 result.
func (r *Fig6Result) Table() *Table {
	t := &Table{
		Title:  "Fig. 6 — service clustering on normalized volume PDFs",
		Header: []string{"service", "cluster@k=3"},
	}
	for i, n := range r.Names {
		t.AddRow(n, r.LabelsK3[i])
	}
	sil := make([]string, len(r.Silhouette))
	for i, s := range r.Silhouette {
		sil[i] = fmt.Sprintf("k=%d:%.3f", i+2, s)
	}
	t.Notes = append(t.Notes,
		"silhouette profile: "+joinStrings(sil, " "),
		fmt.Sprintf("streaming/lightweight pair agreement at k=3: %.2f (paper: two major behaviours + outliers)", r.StreamingPairAgreement))
	return t
}

func joinStrings(ss []string, sep string) string {
	out := ""
	for i, s := range ss {
		if i > 0 {
			out += sep
		}
		out += s
	}
	return out
}

// --- Fig. 8: invariance across days, space and technology ------------

// BoxStats summarizes a distance distribution as boxplot statistics.
type BoxStats struct {
	Tag                     string
	P5, Q1, Median, Q3, P95 float64
	N                       int
}

func boxOf(tag string, vals []float64) BoxStats {
	if len(vals) == 0 {
		return BoxStats{Tag: tag}
	}
	qs := mathx.Percentiles(vals, []float64{0.05, 0.25, 0.5, 0.75, 0.95})
	return BoxStats{Tag: tag, P5: qs[0], Q1: qs[1], Median: qs[2], Q3: qs[3], P95: qs[4], N: len(vals)}
}

// Fig8Result reproduces Fig. 8: EMD (volume PDFs) and SED
// (duration-volume pairs) distributions across comparison dimensions.
// The paper's shape: 'Apps' distances dwarf all within-service
// dimensions (Days, Regions, Cities, RATs).
type Fig8Result struct {
	EMD []BoxStats
	SED []BoxStats
}

// pairSED computes the log-domain squared distance between two pair
// vectors over bins populated in both, normalized per bin.
func pairSED(a, b []float64) (float64, bool) {
	var la, lb []float64
	for i := range a {
		if math.IsNaN(a[i]) || math.IsNaN(b[i]) || a[i] <= 0 || b[i] <= 0 {
			continue
		}
		la = append(la, math.Log10(a[i]))
		lb = append(lb, math.Log10(b[i]))
	}
	if len(la) < 5 {
		return 0, false
	}
	s, err := dist.SED(la, lb)
	if err != nil {
		return 0, false
	}
	return s / float64(len(la)), true
}

// ExpFig8 computes the per-dimension distance distributions.
func ExpFig8(env *Env) (*Fig8Result, error) {
	out := &Fig8Result{}

	// Dimension splits: each produces a list of (name, filter) groups
	// compared pairwise within a service.
	dims := []struct {
		tag    string
		groups []probe.KeyFilter
	}{
		{"Days", []probe.KeyFilter{probe.Weekdays(), probe.Weekends()}},
		{"Regions", regionFilters(env)},
		{"Cities", cityFilters(env)},
		{"RATs", ratFilters(env)},
	}

	// Apps: pairwise distances between different services (normalized
	// PDFs for EMD; raw pair vectors for SED).
	appsEMD, appsSED, err := interServiceDistances(env, nil)
	if err != nil {
		return nil, err
	}
	out.EMD = append(out.EMD, boxOf("Apps", appsEMD))
	out.SED = append(out.SED, boxOf("Apps", appsSED))

	for _, dim := range dims {
		var emds, seds []float64
		for svc := range env.Catalog {
			var hists []*dist.Hist
			var pairs [][]float64
			for _, g := range dim.groups {
				f := probe.And(probe.ForService(svc), g)
				h, w, err := env.Coll.AggregateVolume(f)
				if err != nil || w < 200 {
					continue
				}
				v, _, err := env.Coll.AggregatePairs(f)
				if err != nil {
					continue
				}
				hists = append(hists, h)
				pairs = append(pairs, v)
			}
			for i := 0; i < len(hists); i++ {
				for j := i + 1; j < len(hists); j++ {
					if d, err := dist.EMD(hists[i], hists[j]); err == nil {
						emds = append(emds, d)
					}
					if s, ok := pairSED(pairs[i], pairs[j]); ok {
						seds = append(seds, s)
					}
				}
			}
		}
		out.EMD = append(out.EMD, boxOf(dim.tag, emds))
		out.SED = append(out.SED, boxOf(dim.tag, seds))
	}

	// Apps broken down per RAT ("Apps (4G)", "Apps (5G)").
	for _, rat := range []netsim.RAT{netsim.RAT4G, netsim.RAT5G} {
		filter := probe.BSIn(env.Topo.ByRAT(rat))
		emds, seds, err := interServiceDistances(env, filter)
		if err != nil {
			continue
		}
		tag := fmt.Sprintf("Apps (%s)", rat)
		out.EMD = append(out.EMD, boxOf(tag, emds))
		out.SED = append(out.SED, boxOf(tag, seds))
	}
	return out, nil
}

func interServiceDistances(env *Env, filter probe.KeyFilter) (emds, seds []float64, err error) {
	_, pdfs, _, _, err := normalizedServicePDFs(env, filter)
	if err != nil {
		return nil, nil, err
	}
	var pairVecs [][]float64
	for svc := range env.Catalog {
		f := probe.ForService(svc)
		if filter != nil {
			f = probe.And(f, filter)
		}
		v, _, err := env.Coll.AggregatePairs(f)
		if err != nil {
			continue
		}
		pairVecs = append(pairVecs, v)
	}
	for i := 0; i < len(pdfs); i++ {
		for j := i + 1; j < len(pdfs); j++ {
			if d, derr := dist.EMD(pdfs[i], pdfs[j]); derr == nil {
				emds = append(emds, d)
			}
		}
	}
	for i := 0; i < len(pairVecs); i++ {
		for j := i + 1; j < len(pairVecs); j++ {
			if s, ok := pairSED(pairVecs[i], pairVecs[j]); ok {
				seds = append(seds, s)
			}
		}
	}
	return emds, seds, nil
}

func regionFilters(env *Env) []probe.KeyFilter {
	var out []probe.KeyFilter
	for _, r := range []netsim.Region{netsim.Urban, netsim.SemiUrban, netsim.Rural} {
		out = append(out, probe.BSIn(env.Topo.ByRegion(r)))
	}
	return out
}

func cityFilters(env *Env) []probe.KeyFilter {
	var out []probe.KeyFilter
	for c := 0; c < 5; c++ {
		idx := env.Topo.ByCity(c)
		if len(idx) > 0 {
			out = append(out, probe.BSIn(idx))
		}
	}
	return out
}

func ratFilters(env *Env) []probe.KeyFilter {
	return []probe.KeyFilter{
		probe.BSIn(env.Topo.ByRAT(netsim.RAT4G)),
		probe.BSIn(env.Topo.ByRAT(netsim.RAT5G)),
	}
}

// Table renders the Fig. 8 result.
func (r *Fig8Result) Table() *Table {
	t := &Table{
		Title:  "Fig. 8 — session-level invariance across days, space and technology",
		Header: []string{"metric", "dimension", "p5", "q1", "median", "q3", "p95", "n"},
	}
	for _, b := range r.EMD {
		t.AddRow("EMD", b.Tag, b.P5, b.Q1, b.Median, b.Q3, b.P95, b.N)
	}
	for _, b := range r.SED {
		t.AddRow("SED", b.Tag, b.P5, b.Q1, b.Median, b.Q3, b.P95, b.N)
	}
	t.Notes = append(t.Notes,
		"expected shape: 'Apps' medians an order of magnitude above Days/Regions/Cities/RATs medians")
	return t
}

// --- Table 1: session and traffic shares -----------------------------

// Table1Row is one service's measured shares and CVs.
type Table1Row struct {
	Name             string
	SessionPct       float64
	SessionCV        float64
	TrafficPct       float64
	TrafficCV        float64
	SeededSessionPct float64
	SeededTrafficPct float64
}

// Table1Result reproduces Table 1 from the simulated measurements and
// reports the seeded ground truth next to it.
type Table1Result struct {
	Rows []Table1Row
}

// ExpTable1 measures the shares.
func ExpTable1(env *Env) (*Table1Result, error) {
	share, shareCV, err := env.SessionShare()
	if err != nil {
		return nil, err
	}
	traffic, trafficCV, err := env.TrafficShare()
	if err != nil {
		return nil, err
	}
	var seededTotal float64
	for _, p := range env.Catalog {
		seededTotal += p.SessionSharePct
	}
	out := &Table1Result{}
	for i, p := range env.Catalog {
		out.Rows = append(out.Rows, Table1Row{
			Name:             p.Name,
			SessionPct:       share[i] * 100,
			SessionCV:        shareCV[i],
			TrafficPct:       traffic[i] * 100,
			TrafficCV:        trafficCV[i],
			SeededSessionPct: p.SessionSharePct / seededTotal * 100,
			SeededTrafficPct: p.TrafficSharePct,
		})
	}
	return out, nil
}

// Table renders Table 1.
func (r *Table1Result) Table() *Table {
	t := &Table{
		Title:  "Table 1 — per-service session and traffic shares",
		Header: []string{"service", "sessions %", "CV", "traffic %", "CV", "seeded sessions %", "paper traffic %"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Name, row.SessionPct, row.SessionCV, row.TrafficPct, row.TrafficCV,
			row.SeededSessionPct, row.SeededTrafficPct)
	}
	t.Notes = append(t.Notes, "expected shape: measured session shares track the seeded Table 1 column closely; traffic shares scatter more (higher CV)")
	return t
}
