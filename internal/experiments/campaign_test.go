package experiments

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"mobiletraffic/internal/faults"
)

// TestShardedBitIdentity is the acceptance gate of the sharded runner:
// for shard counts 1, 4 and 7 the fitted ModelSet JSON must be
// byte-identical to the in-process NewEnv pipeline.
func TestShardedBitIdentity(t *testing.T) {
	cfg := Config{NumBS: 11, Days: 2, Seed: 11}
	ref, err := NewEnv(cfg)
	if err != nil {
		t.Fatal(err)
	}
	refJSON, err := ref.Models.ToJSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 4, 7} {
		env, report, err := NewEnvSharded(context.Background(), cfg, CampaignOptions{Shards: shards})
		if err != nil {
			t.Fatalf("%d shards: %v", shards, err)
		}
		if report.Degraded() || report.Completed != shards {
			t.Fatalf("%d shards: report %+v", shards, report)
		}
		got, err := env.Models.ToJSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(refJSON, got) {
			t.Fatalf("%d shards: ModelSet JSON differs from the in-process reference", shards)
		}
	}
}

// TestShardedWithDataFaults verifies the sharded runner composes with
// the data-plane fault injector identically to the in-process path:
// fault streams are per-(BS, day), so sharding must not change the
// realization.
func TestShardedWithDataFaults(t *testing.T) {
	cfg := Config{NumBS: 10, Days: 1, Seed: 13}
	fcfg := faults.Config{OutageProb: 0.2, FlowLossProb: 0.1, Seed: 5}

	numServices := catalogSize(t, cfg.Seed)
	env := func(shards int) []byte {
		t.Helper()
		inj, err := faults.New(fcfg, numServices)
		if err != nil {
			t.Fatal(err)
		}
		e, rep, err := NewEnvSharded(context.Background(), cfg, CampaignOptions{Shards: shards, Faults: inj})
		if err != nil {
			t.Fatalf("%d shards: %v", shards, err)
		}
		if rep.Degraded() {
			t.Fatalf("%d shards: degraded report %+v", shards, rep)
		}
		j, err := e.Models.ToJSON()
		if err != nil {
			t.Fatal(err)
		}
		return j
	}
	a, b := env(1), env(3)
	if !bytes.Equal(a, b) {
		t.Fatal("fault-injected campaign differs across shard counts")
	}
}

// TestShardedFaultyWorkersBitIdentical pins the columnar collect plane
// under concurrent shard workers with faults enabled: for worker
// counts 1, 4 and 7 over a fixed shard layout, the fitted ModelSet
// JSON must be byte-identical. Per-(BS, day) substreams and fault
// streams are derived, not sequenced, so scheduling must not matter;
// the CI race job runs this under -race, where any sharing between
// the per-worker DayColumns scratches, fault day-streams or partial
// collectors surfaces as a data race.
func TestShardedFaultyWorkersBitIdentical(t *testing.T) {
	cfg := Config{NumBS: 14, Days: 1, Seed: 21}
	fcfg := faults.Config{
		OutageProb: 0.15, TruncatedDayProb: 0.1, FlowLossProb: 0.05,
		FlowDupProb: 0.02, SignalGapProb: 0.03, MisclassProb: 0.02, Seed: 9,
	}
	numServices := catalogSize(t, cfg.Seed)
	env := func(workers int) []byte {
		t.Helper()
		inj, err := faults.New(fcfg, numServices)
		if err != nil {
			t.Fatal(err)
		}
		e, _, err := NewEnvSharded(context.Background(), cfg, CampaignOptions{
			Shards: 7, Workers: workers, Faults: inj,
		})
		if err != nil {
			t.Fatalf("workers %d: %v", workers, err)
		}
		j, err := e.Models.ToJSON()
		if err != nil {
			t.Fatal(err)
		}
		return j
	}
	one := env(1)
	for _, w := range []int{4, 7} {
		if !bytes.Equal(one, env(w)) {
			t.Fatalf("fault-injected campaign differs between 1 and %d workers", w)
		}
	}
}

// catalogSize builds a minimal environment just to learn the service
// catalog size (the fault injector needs the count up front).
func catalogSize(t *testing.T, seed int64) int {
	t.Helper()
	e, err := NewEnv(Config{NumBS: 10, Days: 1, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return len(e.Catalog)
}

// TestShardedResumeRejectsOtherConfig verifies the manifest config hash
// covers the experiment parameters: a checkpoint directory written
// under one seed refuses to resume under another.
func TestShardedResumeRejectsOtherConfig(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{NumBS: 10, Days: 1, Seed: 3}
	if _, _, err := NewEnvSharded(context.Background(), cfg, CampaignOptions{Shards: 2, CheckpointDir: dir}); err != nil {
		t.Fatal(err)
	}
	other := cfg
	other.Seed = 4
	_, _, err := NewEnvSharded(context.Background(), other, CampaignOptions{Shards: 2, CheckpointDir: dir, Resume: true})
	if err == nil || !strings.Contains(err.Error(), "different campaign config") {
		t.Fatalf("seed change: err = %v", err)
	}
}

// TestExpKillResume runs the full chaos experiment at small scale: all
// three phases (crash-retry, kill/resume, retry exhaustion) across a
// couple of shard counts, asserting the determinism columns.
func TestExpKillResume(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	env, err := NewEnv(Config{NumBS: 11, Days: 1, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	r, err := ExpKillResume(env, KillResumeConfig{ShardCounts: []int{1, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(r.Rows))
	}
	for _, row := range r.Rows {
		if !row.CrashIdentical {
			t.Errorf("%d shards: crash-retry fit differs from the reference", row.Shards)
		}
		if row.CrashRetries < 1 {
			t.Errorf("%d shards: crash phase recorded no retry", row.Shards)
		}
		if !row.ResumeIdentical {
			t.Errorf("%d shards: resumed fit differs from the reference", row.Shards)
		}
		if row.Shards > 1 {
			if row.KilledShards < 1 || row.ResumedShards < 1 {
				t.Errorf("%d shards: kill/resume phase killed %d, resumed %d", row.Shards, row.KilledShards, row.ResumedShards)
			}
			if row.DegradedFailed != 1 || row.DegradedLostBS < 1 {
				t.Errorf("%d shards: degraded phase %+v", row.Shards, row)
			}
			if row.DegradedFitted < 1 {
				t.Errorf("%d shards: degraded campaign fitted no services", row.Shards)
			}
		}
	}
	if got := r.Table().Render(); !strings.Contains(got, "kill/resume") {
		t.Fatalf("table render missing title: %q", got)
	}
}

// TestCampaignInterruptPath verifies the cmd/characterize contract: a
// canceled campaign surfaces campaign.ErrInterrupted and leaves a
// resumable checkpoint directory behind.
func TestCampaignInterruptPath(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{NumBS: 10, Days: 1, Seed: 19}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the "signal" arrives before any shard completes
	_, _, err := NewEnvSharded(ctx, cfg, CampaignOptions{Shards: 3, CheckpointDir: dir})
	if err == nil {
		t.Fatal("pre-canceled campaign must error")
	}
	// Nothing completed, so the merge has nothing; a live resume run
	// then computes everything and matches the reference.
	ref, err := NewEnv(cfg)
	if err != nil {
		t.Fatal(err)
	}
	refJSON, err := ref.Models.ToJSON()
	if err != nil {
		t.Fatal(err)
	}
	env, rep, err := NewEnvSharded(context.Background(), cfg, CampaignOptions{Shards: 3, CheckpointDir: dir, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != 3 {
		t.Fatalf("resume-after-abort report %+v", rep)
	}
	got, err := env.Models.ToJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(refJSON, got) {
		t.Fatal("resume after aborted campaign differs from the reference")
	}
}
