package experiments

import (
	"math"
	"strings"
	"sync"
	"testing"

	"mobiletraffic/internal/core"
	"mobiletraffic/internal/littrafgen"
	"mobiletraffic/internal/services"
)

var (
	envOnce sync.Once
	envVal  *Env
	envErr  error

	staticOnce sync.Once
	staticVal  *Env
	staticErr  error
)

// sharedEnv builds one moderately sized environment reused by every
// experiment test.
func sharedEnv(t *testing.T) *Env {
	t.Helper()
	envOnce.Do(func() {
		envVal, envErr = NewEnv(Config{NumBS: 20, Days: 7, Seed: 1})
	})
	if envErr != nil {
		t.Fatal(envErr)
	}
	return envVal
}

// staticEnv is a no-mobility environment: with no transient-session
// truncation, fitted parameters are directly comparable with the
// seeded ground truth.
func staticEnv(t *testing.T) *Env {
	t.Helper()
	staticOnce.Do(func() {
		staticVal, staticErr = NewEnv(Config{NumBS: 20, Days: 3, Seed: 2, MoveProb: -1})
	})
	if staticErr != nil {
		t.Fatal(staticErr)
	}
	return staticVal
}

func TestNewEnvDefaults(t *testing.T) {
	env := sharedEnv(t)
	if len(env.Topo.BSs) != 20 {
		t.Errorf("BSs = %d", len(env.Topo.BSs))
	}
	if len(env.Models.Services) < 20 {
		t.Errorf("only %d services modeled", len(env.Models.Services))
	}
	if len(env.Arrivals) != 10 {
		t.Errorf("arrival classes = %d", len(env.Arrivals))
	}
}

func TestExpFig3Shape(t *testing.T) {
	env := sharedEnv(t)
	r, err := ExpFig3(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Deciles) != 10 {
		t.Fatalf("deciles = %d", len(r.Deciles))
	}
	// The paper's regularities: sigma/mu ~ 0.1 everywhere, arrival
	// rates growing exponentially from ~1.21 to ~71.
	for _, d := range r.Deciles {
		if ratio := d.Model.SigmaRatio(); ratio < 0.02 || ratio > 0.4 {
			t.Errorf("decile %d sigma/mu = %v", d.Decile, ratio)
		}
	}
	if r.Deciles[9].Model.PeakMu < 10*r.Deciles[0].Model.PeakMu {
		t.Errorf("rate growth too small: %v -> %v",
			r.Deciles[0].Model.PeakMu, r.Deciles[9].Model.PeakMu)
	}
	if r.MuGrowth <= 1 || r.ScaleGrowth <= 1 {
		t.Errorf("growth factors = %v, %v", r.MuGrowth, r.ScaleGrowth)
	}
	// Night mode well below day mode in every decile.
	for _, d := range r.Deciles {
		if d.EmpiricalOffMean >= d.EmpiricalPeakMean/2 {
			t.Errorf("decile %d: night %v not well below day %v",
				d.Decile, d.EmpiricalOffMean, d.EmpiricalPeakMean)
		}
	}
	if s := r.Table().Render(); !strings.Contains(s, "Fig. 3") {
		t.Error("table render")
	}
}

func TestExpFig4ExponentialLaw(t *testing.T) {
	env := sharedEnv(t)
	r, err := ExpFig4(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Names) != len(env.Catalog) {
		t.Fatalf("ranked %d services", len(r.Names))
	}
	// Shares sorted descending.
	for i := 1; i < len(r.SessionFrac); i++ {
		if r.SessionFrac[i] > r.SessionFrac[i-1]+1e-12 {
			t.Fatalf("ranking not descending at %d", i)
		}
	}
	// Paper: negative exponential with R² = 0.97; top-20 > 78%.
	if r.ExpB >= 0 {
		t.Errorf("exponent B = %v, want negative", r.ExpB)
	}
	if r.R2 < 0.85 {
		t.Errorf("exponential fit R2 = %v, want > 0.85", r.R2)
	}
	if r.Top20Percent < 0.78 {
		t.Errorf("top-20 share = %v, want > 0.78", r.Top20Percent)
	}
	if !strings.Contains(r.Table().Render(), "rank") {
		t.Error("table render")
	}
}

func TestExpFig5ServiceContrasts(t *testing.T) {
	env := sharedEnv(t)
	r, err := ExpFig5(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Services) != 6 {
		t.Fatalf("services = %d", len(r.Services))
	}
	byName := map[string]ServicePDFSummary{}
	for _, s := range r.Services {
		byName[s.Name] = s
	}
	// Streaming services carry heavier sessions and super-linear beta.
	if byName["Netflix"].Mean <= byName["Amazon"].Mean {
		t.Error("Netflix sessions must outweigh Amazon's")
	}
	if byName["Netflix"].PairBeta <= 1 {
		t.Errorf("Netflix beta = %v, want super-linear", byName["Netflix"].PairBeta)
	}
	if byName["Waze"].PairBeta >= 1 {
		t.Errorf("Waze beta = %v, want sub-linear", byName["Waze"].PairBeta)
	}
	// Workday/weekend invariance (§4.4).
	for name, s := range byName {
		if s.WorkdayWeekendEMD > 0.12 {
			t.Errorf("%s workday/weekend EMD = %v, want small", name, s.WorkdayWeekendEMD)
		}
	}
}

func TestExpFig6Clustering(t *testing.T) {
	env := sharedEnv(t)
	r, err := ExpFig6(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Names) < 10 {
		t.Fatalf("clustered %d services", len(r.Names))
	}
	if len(r.LabelsK3) != len(r.Names) {
		t.Fatal("label shape")
	}
	// Exactly 3 clusters at the paper's cut.
	seen := map[int]bool{}
	for _, l := range r.LabelsK3 {
		seen[l] = true
	}
	if len(seen) != 3 {
		t.Errorf("clusters at k=3 = %d", len(seen))
	}
	if len(r.Silhouette) < 3 {
		t.Errorf("silhouette profile length = %d", len(r.Silhouette))
	}
	// The streaming/lightweight dichotomy must show through.
	if r.StreamingPairAgreement < 0.6 {
		t.Errorf("pair agreement = %v, want >= 0.6", r.StreamingPairAgreement)
	}
	if !strings.Contains(r.Table().Render(), "cluster") {
		t.Error("table render")
	}
}

func TestExpFig7FacebookContrast(t *testing.T) {
	env := sharedEnv(t)
	r, err := ExpFig7(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Services) != 2 {
		t.Fatalf("services = %d", len(r.Services))
	}
	var live, fb ServicePDFSummary
	for _, s := range r.Services {
		if s.Name == "FB Live" {
			live = s
		} else {
			fb = s
		}
	}
	// Fig. 7: same user base, opposite behaviours.
	if live.PairBeta <= 1 || fb.PairBeta >= 1 {
		t.Errorf("betas: FB Live %v (want > 1), Facebook %v (want < 1)", live.PairBeta, fb.PairBeta)
	}
	if live.Mean <= fb.Mean {
		t.Error("FB Live sessions must be heavier than Facebook's")
	}
}

func TestExpFig8Invariance(t *testing.T) {
	env := sharedEnv(t)
	r, err := ExpFig8(env)
	if err != nil {
		t.Fatal(err)
	}
	find := func(stats []BoxStats, tag string) BoxStats {
		for _, b := range stats {
			if b.Tag == tag {
				return b
			}
		}
		t.Fatalf("missing tag %s", tag)
		return BoxStats{}
	}
	apps := find(r.EMD, "Apps")
	if apps.N == 0 {
		t.Fatal("no Apps distances")
	}
	// The paper's headline: within-service dimensions yield distances
	// far below inter-service ones.
	for _, tag := range []string{"Days", "Regions", "Cities", "RATs"} {
		b := find(r.EMD, tag)
		if b.N == 0 {
			continue
		}
		if b.Median >= apps.Median/2 {
			t.Errorf("EMD %s median %v not well below Apps median %v", tag, b.Median, apps.Median)
		}
	}
	appsSED := find(r.SED, "Apps")
	for _, tag := range []string{"Days", "Regions", "Cities", "RATs"} {
		b := find(r.SED, tag)
		if b.N == 0 {
			continue
		}
		if b.Median >= appsSED.Median/2 {
			t.Errorf("SED %s median %v not well below Apps median %v", tag, b.Median, appsSED.Median)
		}
	}
	// Apps distances stable across RATs (paper: 'Apps (4G)'/'Apps (5G)'
	// match 'Apps').
	for _, tag := range []string{"Apps (4G)", "Apps (5G)"} {
		b := find(r.EMD, tag)
		if b.N == 0 {
			continue
		}
		if b.Median < apps.Median/3 || b.Median > apps.Median*3 {
			t.Errorf("EMD %s median %v inconsistent with Apps %v", tag, b.Median, apps.Median)
		}
	}
	if !strings.Contains(r.Table().Render(), "Apps") {
		t.Error("table render")
	}
}

func TestExpFig9Decomposition(t *testing.T) {
	env := sharedEnv(t)
	r, err := ExpFig9(env, "")
	if err != nil {
		t.Fatal(err)
	}
	if r.Service != "Netflix" {
		t.Errorf("default service = %s", r.Service)
	}
	if math.Abs(r.MainMu-r.SeededMainMu) > 0.5 {
		t.Errorf("main mu = %v, seeded %v", r.MainMu, r.SeededMainMu)
	}
	// Adding the residual components must improve the fit.
	if r.FinalEMD >= r.MainOnlyEMD {
		t.Errorf("mixture EMD %v did not improve on main-only %v", r.FinalEMD, r.MainOnlyEMD)
	}
	if len(r.Peaks) == 0 || len(r.Peaks) > 3 {
		t.Errorf("peaks = %d", len(r.Peaks))
	}
	if _, err := ExpFig9(env, "NoSuchService"); err == nil {
		t.Error("unknown service must error")
	}
	if !strings.Contains(r.Table().Render(), "main") {
		t.Error("table render")
	}
}

func TestExpFig10BetaRecoveryNoMobility(t *testing.T) {
	// Without transient-session truncation the fitted exponents must
	// recover the seeded ground truth closely.
	env := staticEnv(t)
	r, err := ExpFig10(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) < 20 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if math.Abs(row.Beta-row.SeededBeta) > 0.25 {
			t.Errorf("%s: beta %v, seeded %v", row.Name, row.Beta, row.SeededBeta)
		}
	}
}

func TestExpFig10ShapeWithMobility(t *testing.T) {
	// With the realistic transient-session share, absolute exponents
	// compress toward 1 (truncation preserves throughput), but the
	// Fig. 10 dichotomy must survive: streaming super-linear,
	// interactive sub-linear.
	env := sharedEnv(t)
	r, err := ExpFig10(env)
	if err != nil {
		t.Fatal(err)
	}
	var superStreaming, streaming, subInteractive, interactive int
	for _, row := range r.Rows {
		switch row.Class {
		case services.Streaming:
			streaming++
			if row.Beta > 1 {
				superStreaming++
			}
		case services.Interactive:
			interactive++
			if row.Beta < 1 {
				subInteractive++
			}
		}
	}
	if superStreaming < streaming*2/3 {
		t.Errorf("only %d/%d streaming services super-linear", superStreaming, streaming)
	}
	if subInteractive < interactive*9/10 {
		t.Errorf("only %d/%d interactive services sub-linear", subInteractive, interactive)
	}
}

func TestExpQuality(t *testing.T) {
	env := sharedEnv(t)
	r, err := ExpQuality(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) < 20 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	var emds []float64
	for _, row := range r.Rows {
		emds = append(emds, row.VolumeEMD)
		if row.PeakCount > 3 {
			t.Errorf("%s: %d peaks", row.Name, row.PeakCount)
		}
	}
	// §5.4 shape: the typical model error sits far below inter-service
	// distances (the paper reports one order of magnitude).
	sortFloats(emds)
	median := emds[len(emds)/2]
	if r.MedianInterServiceEMD > 0 && median > r.MedianInterServiceEMD/2.5 {
		t.Errorf("median model EMD %v not well below inter-service median %v",
			median, r.MedianInterServiceEMD)
	}
	if worst := emds[len(emds)-1]; r.MedianInterServiceEMD > 0 && worst > 2*r.MedianInterServiceEMD {
		t.Errorf("worst model EMD %v above 2x inter-service median %v", worst, r.MedianInterServiceEMD)
	}
	if !strings.Contains(r.Table().Render(), "volume EMD") {
		t.Error("table render")
	}
}

func TestExpTable1Shares(t *testing.T) {
	env := sharedEnv(t)
	r, err := ExpTable1(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != len(env.Catalog) {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.SeededSessionPct > 1 { // only check the stable heavy services
			if math.Abs(row.SessionPct-row.SeededSessionPct) > 2 {
				t.Errorf("%s: measured %v%%, seeded %v%%", row.Name, row.SessionPct, row.SeededSessionPct)
			}
		}
	}
	if !strings.Contains(r.Table().Render(), "sessions %") {
		t.Error("table render")
	}
}

func TestAblations(t *testing.T) {
	env := sharedEnv(t)

	t.Run("peak cap", func(t *testing.T) {
		r, err := ExpAblationPeakCap(env)
		if err != nil {
			t.Fatal(err)
		}
		if len(r.Rows) != 3 {
			t.Fatalf("rows = %d", len(r.Rows))
		}
		// Uncapped fits comparably or better, at the cost of more
		// components (the two-pass main-trend refinement makes the
		// comparison non-monotone within a few percent).
		if r.Rows[2].Value > r.Rows[1].Value*1.1 {
			t.Errorf("uncapped EMD %v clearly worse than cap=3 %v", r.Rows[2].Value, r.Rows[1].Value)
		}
		if r.Rows[2].Extra < r.Rows[0].Extra {
			t.Errorf("uncapped components %v below cap=1 %v", r.Rows[2].Extra, r.Rows[0].Extra)
		}
	})

	t.Run("smoothing", func(t *testing.T) {
		r, err := ExpAblationSmoothing(env)
		if err != nil {
			t.Fatal(err)
		}
		if len(r.Rows) != 2 {
			t.Fatalf("rows = %d", len(r.Rows))
		}
	})

	t.Run("duration family", func(t *testing.T) {
		r, err := ExpAblationDurationFamily(env)
		if err != nil {
			t.Fatal(err)
		}
		byName := map[string]float64{}
		for _, row := range r.Rows {
			byName[row.Config] = row.Value
		}
		// §5.3: the power law wins the family comparison.
		pl := byName["power law (paper)"]
		for name, v := range byName {
			if name == "power law (paper)" {
				continue
			}
			if v > pl+1e-9 {
				t.Errorf("%s R2 %v beats power law %v", name, v, pl)
			}
		}
	})

	t.Run("arrival fit", func(t *testing.T) {
		r, err := ExpAblationArrivalFit(env)
		if err != nil {
			t.Fatal(err)
		}
		if len(r.Rows) != 2 {
			t.Fatalf("rows = %d", len(r.Rows))
		}
		// The bi-modal model must beat the single Gaussian.
		if r.Rows[0].Value >= r.Rows[1].Value {
			t.Errorf("bi-modal EMD %v not below single-gaussian %v",
				r.Rows[0].Value, r.Rows[1].Value)
		}
	})
}

func TestExpTable2SlicingOrdering(t *testing.T) {
	env := sharedEnv(t)
	r, err := ExpTable2(env, SlicingConfig{Antennas: 4, Days: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Strategies) != 3 {
		t.Fatalf("strategies = %d", len(r.Strategies))
	}
	byName := map[string]StrategyResult{}
	for _, s := range r.Strategies {
		byName[s.Name] = s
	}
	model := byName["session-level models"]
	// Paper Table 2 shape: the session-level model meets the SLA and
	// beats both benchmarks.
	if model.MeanSatisfied < 0.90 {
		t.Errorf("model satisfaction = %v, want >= 0.90", model.MeanSatisfied)
	}
	for _, bm := range []string{"bm_a", "bm_b"} {
		if byName[bm].MeanSatisfied > model.MeanSatisfied {
			t.Errorf("%s (%v) beats the session-level model (%v)",
				bm, byName[bm].MeanSatisfied, model.MeanSatisfied)
		}
	}
	if !strings.Contains(r.Table().Render(), "Table 2") {
		t.Error("table render")
	}
}

func TestExpFig12Timeline(t *testing.T) {
	env := sharedEnv(t)
	r, err := ExpFig12(env, SlicingConfig{Antennas: 1, Days: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.HourlyPeakDemand) != 48 {
		t.Fatalf("hours = %d", len(r.HourlyPeakDemand))
	}
	var maxPeak, meanSum float64
	var meanN int
	for h, v := range r.HourlyPeakDemand {
		if v > maxPeak {
			maxPeak = v
		}
		if hod := h % 24; hod >= 8 && hod < 22 {
			meanSum += r.HourlyMeanDemand[h]
			meanN++
		}
	}
	// Fig. 12 shape: the allocation follows the 95th percentile, so it
	// sits near or below the demand peaks (never inflated to cover
	// every burst) while remaining above the typical load, and the SLA
	// holds.
	if r.Capacity > maxPeak*1.05 {
		t.Errorf("capacity %v well above peak demand %v", r.Capacity, maxPeak)
	}
	if meanN > 0 && r.Capacity <= meanSum/float64(meanN) {
		t.Errorf("capacity %v not above mean peak-hour demand %v", r.Capacity, meanSum/float64(meanN))
	}
	if r.Satisfied < 0.85 {
		t.Errorf("satisfaction = %v", r.Satisfied)
	}
	if !strings.Contains(r.Table().Render(), "Fig. 12") {
		t.Error("table render")
	}
}

func TestExpFig13VRANOrdering(t *testing.T) {
	env := sharedEnv(t)
	r, err := ExpFig13(env, VRANConfig{ESs: 4, RUsPerES: 5, Hours: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Strategies) != 4 {
		t.Fatalf("strategies = %d", len(r.Strategies))
	}
	byName := map[string]VRANStrategy{}
	for _, s := range r.Strategies {
		byName[s.Name] = s
	}
	model := byName["session-level models"]
	// Fig. 13b shape: the session-level model's APE is small while the
	// benchmarks are off by a large factor (paper: <5% vs 100-1000%).
	if model.PowerAPE.Median > 20 {
		t.Errorf("model power APE median = %v%%, want small", model.PowerAPE.Median)
	}
	if byName["bm_a"].PowerAPE.Median < 50 {
		t.Errorf("bm_a power APE = %v%%, want benchmark-scale error", byName["bm_a"].PowerAPE.Median)
	}
	if byName["bm_a"].PowerAPE.Median < model.PowerAPE.Median*3 {
		t.Errorf("bm_a power APE %v not well above model %v",
			byName["bm_a"].PowerAPE.Median, model.PowerAPE.Median)
	}
	// Power series present for Fig. 13c.
	for _, key := range []string{"measurement", "model", "bm_c"} {
		if len(r.PowerSeries[key]) == 0 {
			t.Errorf("missing power series %q", key)
		}
	}
	if !strings.Contains(r.Table().Render(), "Fig. 13b") {
		t.Error("table render")
	}
	if !strings.Contains(r.Fig13cTable().Render(), "Fig. 13c") {
		t.Error("fig13c render")
	}
}

// TestExpTable2SlicingOrderingV1 re-runs the Table 2 headline shape on
// the historical v1 generation engine: both engines must reproduce the
// paper's ordering.
func TestExpTable2SlicingOrderingV1(t *testing.T) {
	env := sharedEnv(t)
	r, err := ExpTable2(env, SlicingConfig{Antennas: 4, Days: 2, Seed: 3, Engine: core.GenV1})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]StrategyResult{}
	for _, s := range r.Strategies {
		byName[s.Name] = s
	}
	model := byName["session-level models"]
	if model.MeanSatisfied < 0.90 {
		t.Errorf("v1 model satisfaction = %v, want >= 0.90", model.MeanSatisfied)
	}
	for _, bm := range []string{"bm_a", "bm_b"} {
		if byName[bm].MeanSatisfied > model.MeanSatisfied {
			t.Errorf("v1: %s (%v) beats the session-level model (%v)",
				bm, byName[bm].MeanSatisfied, model.MeanSatisfied)
		}
	}
}

// TestExpFig13VRANOrderingV1 re-runs the Fig. 13b headline shape on the
// v1 generation engine.
func TestExpFig13VRANOrderingV1(t *testing.T) {
	env := sharedEnv(t)
	r, err := ExpFig13(env, VRANConfig{ESs: 4, RUsPerES: 5, Hours: 1, Seed: 7, Engine: core.GenV1})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]VRANStrategy{}
	for _, s := range r.Strategies {
		byName[s.Name] = s
	}
	model := byName["session-level models"]
	if model.PowerAPE.Median > 20 {
		t.Errorf("v1 model power APE median = %v%%, want small", model.PowerAPE.Median)
	}
	if byName["bm_a"].PowerAPE.Median < model.PowerAPE.Median*3 {
		t.Errorf("v1: bm_a power APE %v not well above model %v",
			byName["bm_a"].PowerAPE.Median, model.PowerAPE.Median)
	}
}

// TestExpFig13BmBDistinctFromBmA guards the bm_b construction: the
// benchmark must be built from the literature BMB share vector, not
// bm_a's measured shares (a regression once aliased the two, skewing
// bm_b's NormalizeTotal weighting).
func TestExpFig13BmBDistinctFromBmA(t *testing.T) {
	// The share vectors weight NormalizeTotal differently, so the same
	// volume target must produce different scales.
	ga := littrafgen.NewGenerator(littrafgen.BMAShares(), 1)
	gb := littrafgen.NewGenerator(littrafgen.BMBShares(), 1)
	const wantMean = 5e7
	if sa, sb := ga.NormalizeTotal(wantMean), gb.NormalizeTotal(wantMean); sa == sb {
		t.Errorf("BMA- and BMB-share normalization scales identical (%v)", sa)
	}
	env := sharedEnv(t)
	r, err := ExpFig13(env, VRANConfig{ESs: 4, RUsPerES: 5, Hours: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]VRANStrategy{}
	for _, s := range r.Strategies {
		byName[s.Name] = s
	}
	a, b := byName["bm_a"], byName["bm_b"]
	if a.MeanPowerW == b.MeanPowerW && a.PowerAPE.Median == b.PowerAPE.Median {
		t.Error("bm_a and bm_b produced identical Fig. 13b rows")
	}
}

func sortFloats(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func TestTableRender(t *testing.T) {
	tb := &Table{Title: "t", Header: []string{"a", "bb"}}
	tb.AddRow(1, 2.5)
	tb.AddRow("x", 1e9)
	tb.Notes = append(tb.Notes, "n")
	s := tb.Render()
	for _, want := range []string{"== t ==", "a", "bb", "2.5", "1.000e+09", "note: n"} {
		if !strings.Contains(s, want) {
			t.Errorf("render missing %q:\n%s", want, s)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tb := &Table{Title: "t", Header: []string{"a", "b,c"}}
	tb.AddRow("x\"y", 1.5)
	tb.Notes = append(tb.Notes, "n")
	s := tb.CSV()
	for _, want := range []string{`a,"b,c"`, `"x""y",1.5`, "# n"} {
		if !strings.Contains(s, want) {
			t.Errorf("CSV missing %q:\n%s", want, s)
		}
	}
}

// NewEnv must be deterministic under parallel collection: two builds
// with the same seed produce identical released parameters.
func TestNewEnvParallelDeterministic(t *testing.T) {
	a, err := NewEnv(Config{NumBS: 14, Days: 2, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewEnv(Config{NumBS: 14, Days: 2, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	ja, err := a.Models.ToJSON()
	if err != nil {
		t.Fatal(err)
	}
	jb, err := b.Models.ToJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(ja) != string(jb) {
		t.Error("parallel collection is not deterministic")
	}
}

// TestExpTable2WorkersBitIdentical pins the parallel-plane contract at
// the experiment level: the Table 2 study is bit-identical for every
// worker count on both engines, because antennas and day cells draw
// from keyed substreams and fold in index order.
func TestExpTable2WorkersBitIdentical(t *testing.T) {
	env := sharedEnv(t)
	for _, engine := range []core.Engine{core.GenV2, core.GenV1} {
		base := SlicingConfig{Antennas: 4, Days: 2, Seed: 3, Engine: engine}
		cfg1 := base
		cfg1.Workers = 1
		ref, err := ExpTable2(env, cfg1)
		if err != nil {
			t.Fatal(err)
		}
		cfg4 := base
		cfg4.Workers = 4
		got, err := ExpTable2(env, cfg4)
		if err != nil {
			t.Fatal(err)
		}
		if len(ref.Strategies) != len(got.Strategies) {
			t.Fatalf("%s: strategy counts differ", engine)
		}
		for i := range ref.Strategies {
			if ref.Strategies[i] != got.Strategies[i] {
				t.Errorf("%s: strategy %q differs between 1 and 4 workers:\n  %+v\n  %+v",
					engine, ref.Strategies[i].Name, ref.Strategies[i], got.Strategies[i])
			}
		}
	}
}

// TestExpFig13WorkersBitIdentical does the same for the vRAN study's
// parallel strategy-series builds.
func TestExpFig13WorkersBitIdentical(t *testing.T) {
	env := sharedEnv(t)
	base := VRANConfig{ESs: 4, RUsPerES: 5, Hours: 1, Seed: 7}
	cfg1 := base
	cfg1.Workers = 1
	ref, err := ExpFig13(env, cfg1)
	if err != nil {
		t.Fatal(err)
	}
	cfg3 := base
	cfg3.Workers = 3
	got, err := ExpFig13(env, cfg3)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Strategies) != len(got.Strategies) {
		t.Fatal("strategy counts differ")
	}
	for i := range ref.Strategies {
		if ref.Strategies[i] != got.Strategies[i] {
			t.Errorf("strategy %q differs between 1 and 3 workers", ref.Strategies[i].Name)
		}
	}
	for _, key := range []string{"model", "bm_c"} {
		a, b := ref.PowerSeries[key], got.PowerSeries[key]
		if len(a) != len(b) {
			t.Fatalf("power series %q lengths differ", key)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("power series %q differs at %d", key, i)
			}
		}
	}
}
