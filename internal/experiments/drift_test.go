package experiments

import (
	"math"
	"strings"
	"testing"
)

func TestExpDriftDetectsPlantedChanges(t *testing.T) {
	env := sharedEnv(t)
	r, err := ExpDrift(env)
	if err != nil {
		t.Fatal(err)
	}
	// The removed and added services show up in the set differences.
	foundRemoved, foundAdded := false, false
	for _, n := range r.Comparison.OnlyInA {
		if n == r.RemovedService {
			foundRemoved = true
		}
	}
	for _, n := range r.Comparison.OnlyInB {
		if n == r.AddedService {
			foundAdded = true
		}
	}
	if !foundRemoved {
		t.Errorf("removed service %s not flagged (onlyInA = %v)", r.RemovedService, r.Comparison.OnlyInA)
	}
	if !foundAdded {
		t.Errorf("added service %s not flagged (onlyInB = %v)", r.AddedService, r.Comparison.OnlyInB)
	}
	// The shifted service's volume-trend delta must reflect the planted
	// +0.5 decade shift far above the baseline noise.
	var shiftedDelta float64
	for _, d := range r.Comparison.Deltas {
		if d.Name == r.ShiftedService {
			shiftedDelta = d.DeltaMu
		}
	}
	if math.Abs(shiftedDelta-r.PlantedMuShift) > 0.25 {
		t.Errorf("detected mu drift %v, planted %v", shiftedDelta, r.PlantedMuShift)
	}
	// The planted behavioural change dominates the drift ranking: the
	// shifted service's volume-trend delta is the largest of all
	// services (undrifted ones only carry refit noise).
	for _, d := range r.Comparison.Deltas {
		if d.Name != r.ShiftedService && d.DeltaMu >= shiftedDelta {
			t.Errorf("%s drift (|d mu| %v) unexpectedly exceeds the planted %s drift (%v)",
				d.Name, d.DeltaMu, r.ShiftedService, shiftedDelta)
		}
	}
	// Undrifted services stay near the within-campaign noise floor.
	if r.Comparison.MedianDeltaBeta > 0.05 {
		t.Errorf("median drift %v too large for mostly-unchanged catalogs", r.Comparison.MedianDeltaBeta)
	}
	if !strings.Contains(r.Table().Render(), "model aging") {
		t.Error("table render")
	}
}
