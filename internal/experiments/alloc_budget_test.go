package experiments

// Allocation-budget regression guard for the columnar collect path
// (ISSUE 10): the parallel campaign must allocate only the per-worker
// partial collectors (cell slabs sized to the campaign extent) and one
// pre-sized DayColumns scratch per worker — the per-(BS, day) sampling
// and ingest loops themselves run allocation-free. The budget scales
// with the worker count because each worker owns a full-extent partial
// collector; a regression here means the day loop started allocating
// (scratch re-growth, per-session materialization, or cell churn).

import (
	"runtime"
	"testing"

	"mobiletraffic/internal/netsim"
)

// Per-worker collect() footprint ceilings, calibrated at ~1.5x the
// measured steady-state of the 20-BS, 7-day campaign below: the
// partial collector's dense slabs dominate (one DayStats per touched
// (service, BS, day) cell), plus the worker's DayColumns scratch.
const (
	collectAllocPerWorker = 96 << 20 // partial collector + columnar scratch
	collectAllocBase      = 8 << 20  // merge plane, topology, fit-free fixed costs
)

func TestCollectAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second campaign")
	}
	const numBS, days = 20, 7
	topo, err := netsim.NewTopology(netsim.TopologyConfig{NumBS: numBS, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := netsim.NewSimulator(topo, netsim.SimConfig{Days: days, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Warm run: lazy simulator state (phase tables, alias tables).
	if _, err := collect(sim, days, nil); err != nil {
		t.Fatal(err)
	}
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	coll, err := collect(sim, days, nil)
	if err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&m1)
	if coll.TotalSessions() <= 0 {
		t.Fatal("campaign collected no sessions")
	}
	workers := runtime.NumCPU()
	if workers > numBS {
		workers = numBS
	}
	if workers < 1 {
		workers = 1
	}
	budget := uint64(collectAllocBase + workers*collectAllocPerWorker)
	got := m1.TotalAlloc - m0.TotalAlloc
	if got > budget {
		t.Errorf("collect allocated %d B transient with %d workers, budget %d B: the columnar day loop is allocating again",
			got, workers, budget)
	}
	t.Logf("collect transient heap: %d B with %d workers (budget %d B)", got, workers, budget)
}
