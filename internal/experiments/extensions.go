package experiments

import (
	"fmt"

	"mobiletraffic/internal/applayer"
	"mobiletraffic/internal/core"
	"mobiletraffic/internal/netsim"
	"mobiletraffic/internal/probe"
	"mobiletraffic/internal/services"
)

// Extension experiments beyond the paper's evaluation: the
// application-layer session reconstruction the paper defers to future
// work (§7, footnote 1), and a temporal-stability check on the fitted
// parameter tuples.

// AppLayerClassRow characterizes reconstructed application-layer
// sessions for one service class.
type AppLayerClassRow struct {
	Class        services.Class
	AppSessions  int
	MeanFlows    float64
	P95Flows     float64
	MeanParallel float64
}

// AppLayerResult is the extension experiment's output.
type AppLayerResult struct {
	Rows    []AppLayerClassRow
	IdleGap float64
	Flows   int
}

// ExpAppLayer runs the UE-level mobility simulation, reconstructs
// application-layer sessions with the given idle gap (seconds; default
// 30 when <= 0), and reports flows-per-app-session by service class.
func ExpAppLayer(env *Env, idleGap float64) (*AppLayerResult, error) {
	if idleGap <= 0 {
		idleGap = 30
	}
	trace, err := env.Sim.SimulateMobility(netsim.MobilityConfig{
		UEs: 400, Horizon: 4 * 3600, FlowRate: 1.0 / 45, Seed: env.Config.Seed ^ 0xa991,
	})
	if err != nil {
		return nil, err
	}
	flows := make([]applayer.Flow, 0, len(trace.Flows))
	for _, f := range trace.Flows {
		flows = append(flows, applayer.Flow{
			UE: f.UE, Service: f.Service, Start: f.Start, End: f.Start + f.Duration, Volume: f.Volume,
		})
	}
	sessions, err := applayer.Group(flows, idleGap)
	if err != nil {
		return nil, err
	}
	// Partition by class.
	perClass := map[services.Class][]applayer.AppSession{}
	flowsPerClass := map[services.Class][]applayer.Flow{}
	for _, s := range sessions {
		c := env.Catalog[s.Service].Class
		perClass[c] = append(perClass[c], s)
	}
	for _, f := range flows {
		c := env.Catalog[f.Service].Class
		flowsPerClass[c] = append(flowsPerClass[c], f)
	}
	out := &AppLayerResult{IdleGap: idleGap, Flows: len(flows)}
	for _, c := range []services.Class{services.Streaming, services.Interactive, services.Outlier} {
		group := perClass[c]
		if len(group) == 0 {
			continue
		}
		st, err := applayer.Summarize(group, flowsPerClass[c])
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, AppLayerClassRow{
			Class:        c,
			AppSessions:  st.AppSessions,
			MeanFlows:    st.MeanFlows,
			P95Flows:     st.P95Flows,
			MeanParallel: st.MeanParallel,
		})
	}
	if len(out.Rows) == 0 {
		return nil, fmt.Errorf("experiments: app-layer reconstruction produced no sessions")
	}
	return out, nil
}

// Table renders the app-layer extension result.
func (r *AppLayerResult) Table() *Table {
	t := &Table{
		Title:  "Extension — application-layer session reconstruction (paper §7 future work)",
		Header: []string{"class", "app sessions", "mean flows/session", "p95 flows", "mean peak parallelism"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Class.String(), row.AppSessions, row.MeanFlows, row.P95Flows, row.MeanParallel)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("idle gap %.0f s over %d transport flows", r.IdleGap, r.Flows),
		"transport sessions of one application chain into longer app-layer sessions; the paper models the transport layer only")
	return t
}

// StabilityResult is the temporal-stability extension: model sets
// fitted on disjoint day ranges of the same campaign must agree (§4.4
// predicts day-type invariance).
type StabilityResult struct {
	Comparison *core.SetComparison
	DaysA      string
	DaysB      string
}

// ExpStability fits two model sets on the first and second half of the
// campaign days and compares the released parameter tuples.
func ExpStability(env *Env) (*StabilityResult, error) {
	days := env.Config.Days
	if days < 2 {
		return nil, fmt.Errorf("experiments: stability needs >= 2 days, have %d", days)
	}
	half := days / 2
	var firstDays, secondDays []int
	for d := 0; d < days; d++ {
		if d < half {
			firstDays = append(firstDays, d)
		} else {
			secondDays = append(secondDays, d)
		}
	}
	fit := func(daySet []int) (*core.ModelSet, error) {
		return core.FitServiceModels(env.Coll, env.Catalog, &core.FitOptions{
			MinSessions: 100,
			Filter:      probe.DayIn(daySet...),
		})
	}
	a, err := fit(firstDays)
	if err != nil {
		return nil, err
	}
	b, err := fit(secondDays)
	if err != nil {
		return nil, err
	}
	cmp, err := core.CompareModelSets(a, b)
	if err != nil {
		return nil, err
	}
	return &StabilityResult{
		Comparison: cmp,
		DaysA:      fmt.Sprintf("days 0-%d", half-1),
		DaysB:      fmt.Sprintf("days %d-%d", half, days-1),
	}, nil
}

// Table renders the stability extension result.
func (r *StabilityResult) Table() *Table {
	t := &Table{
		Title:  fmt.Sprintf("Extension — temporal stability of the released parameters (%s vs %s)", r.DaysA, r.DaysB),
		Header: []string{"service", "|d mu|", "|d sigma|", "|d beta|", "alpha ratio", "|d share|"},
	}
	for _, d := range r.Comparison.Deltas {
		t.AddRow(d.Name, d.DeltaMu, d.DeltaSigma, d.DeltaBeta, d.AlphaRatio, d.ShareDelta)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("median |d mu| %.3g decades, median |d beta| %.3g (paper §4.4: day-to-day statistics are indistinguishable)",
			r.Comparison.MedianDeltaMu, r.Comparison.MedianDeltaBeta))
	return t
}
