package experiments

import (
	"math"
	"strings"
	"testing"

	"mobiletraffic/internal/faults"
)

func TestExpChaosRecoversUnderAcceptanceFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	env := sharedEnv(t)
	r, err := ExpChaos(env, ChaosConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("default sweep has %d levels, want 4", len(r.Rows))
	}
	if len(r.Reports) != len(r.Rows) {
		t.Fatalf("%d reports for %d rows", len(r.Reports), len(r.Rows))
	}
	prevKept := math.Inf(1)
	for i, row := range r.Rows {
		if row.Modeled == 0 {
			t.Fatalf("intensity %v: empty ModelSet", row.Intensity)
		}
		if row.Modeled+r.Reports[i].ServiceSkips() < r.Baseline {
			t.Errorf("intensity %v: %d modeled + %d skipped < %d baseline services",
				row.Intensity, row.Modeled, r.Reports[i].ServiceSkips(), r.Baseline)
		}
		if row.SessionsKept <= 0 || row.SessionsKept > 1.01 {
			t.Errorf("intensity %v: kept fraction %v out of range", row.Intensity, row.SessionsKept)
		}
		if row.SessionsKept > prevKept+0.02 {
			t.Errorf("kept fraction rises with intensity: %v after %v", row.SessionsKept, prevKept)
		}
		prevKept = row.SessionsKept
		if !row.Recovered {
			t.Errorf("intensity %v: median |d beta| = %v above tolerance %v",
				row.Intensity, row.MedianDeltaBeta, r.Tolerance)
		}
	}
	// Full intensity must actually inject the acceptance fault mix.
	last := r.Rows[len(r.Rows)-1]
	if last.OutageDays == 0 || last.TruncDays == 0 {
		t.Errorf("full intensity injected no whole-day faults: %+v", last)
	}
	if last.Misclass < 0.01 || last.Misclass > 0.04 {
		t.Errorf("full-intensity misclassification rate = %v, want ~0.02", last.Misclass)
	}
	if r.WorstBetaDrift() > r.Tolerance {
		t.Errorf("worst beta drift %v above tolerance", r.WorstBetaDrift())
	}
	tab := r.Table()
	if len(tab.Header) != 11 || len(tab.Rows) != len(r.Rows) {
		t.Errorf("table shape %dx%d", len(tab.Header), len(tab.Rows))
	}
	if !strings.Contains(tab.Title, "chaos") {
		t.Errorf("title = %q", tab.Title)
	}
}

// TestExpChaosReportsDegradation drives the faults hard enough that
// some services lose their data, and checks the experiment still
// returns (partial set + faithful report) instead of failing.
func TestExpChaosReportsDegradation(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	env := sharedEnv(t)
	r, err := ExpChaos(env, ChaosConfig{
		Max: faults.Config{
			OutageProb:       0.6,
			TruncatedDayProb: 0.3,
			FlowLossProb:     0.5,
			SignalGapProb:    0.3,
			MisclassProb:     0.05,
		},
		Levels: []float64{1},
	})
	if err != nil {
		t.Fatal(err)
	}
	row := r.Rows[0]
	if row.Modeled == 0 {
		t.Fatal("even a brutal fault mix must leave a partial ModelSet")
	}
	if row.SessionsKept > 0.5 {
		t.Errorf("kept %v of sessions under 60%% outage + 50%% loss", row.SessionsKept)
	}
	// The degraded services must be accounted for: every baseline
	// service is either modeled or listed as skipped.
	if row.Modeled+r.Reports[0].ServiceSkips() < r.Baseline {
		t.Errorf("%d modeled + %d skipped < %d baseline", row.Modeled,
			r.Reports[0].ServiceSkips(), r.Baseline)
	}
}
