package experiments

import (
	"fmt"

	"mobiletraffic/internal/mathx"
	"mobiletraffic/internal/probe"
)

// DiurnalResult characterizes the BS-level aggregate view of Fig. 1's
// taxonomy: the circadian rhythm of session arrivals that makes the
// per-minute arrival PDFs bi-modal (§4.1). It reports the mean
// sessions-per-minute profile by hour of day, aggregated over BSs and
// days, for the lightest and heaviest load deciles.
type DiurnalResult struct {
	// Hourly[h] is the mean per-BS sessions/minute during hour h.
	HourlyAll    []float64
	HourlyFirst  []float64 // first load decile
	HourlyLast   []float64 // last load decile
	DayNightAll  float64   // mean daytime rate / mean nighttime rate
	DayNightLast float64
}

// ExpDiurnal computes the hourly arrival profiles.
func ExpDiurnal(env *Env) (*DiurnalResult, error) {
	profile := func(filter probe.KeyFilter) ([]float64, float64, error) {
		hours := make([][]float64, 24)
		for h := 0; h < 24; h++ {
			hour := h
			samples := env.Coll.MinuteCountSamples(filter, func(m int) bool { return m/60 == hour })
			if len(samples) == 0 {
				return nil, 0, fmt.Errorf("experiments: no samples for hour %d", hour)
			}
			hours[h] = samples
		}
		out := make([]float64, 24)
		for h := range hours {
			out[h] = mathx.Mean(hours[h])
		}
		day := mathx.Mean(out[10:20])
		night := mathx.Mean(out[1:6])
		ratio := 0.0
		if night > 0 {
			ratio = day / night
		}
		return out, ratio, nil
	}
	all, ratioAll, err := profile(nil)
	if err != nil {
		return nil, err
	}
	first, _, err := profile(probe.BSIn(env.Topo.ByDecile(0)))
	if err != nil {
		return nil, err
	}
	last, ratioLast, err := profile(probe.BSIn(env.Topo.ByDecile(9)))
	if err != nil {
		return nil, err
	}
	return &DiurnalResult{
		HourlyAll:    all,
		HourlyFirst:  first,
		HourlyLast:   last,
		DayNightAll:  ratioAll,
		DayNightLast: ratioLast,
	}, nil
}

// Table renders the diurnal profiles.
func (r *DiurnalResult) Table() *Table {
	t := &Table{
		Title:  "BS-level view — circadian session arrival profile (§4.1 context)",
		Header: []string{"hour", "all BSs (sessions/min)", "decile 1", "decile 10"},
	}
	for h := 0; h < 24; h++ {
		t.AddRow(h, r.HourlyAll[h], r.HourlyFirst[h], r.HourlyLast[h])
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("day/night rate ratio: %.1f overall, %.1f for the busiest decile — the circadian rhythm behind the bi-modal arrival PDFs",
			r.DayNightAll, r.DayNightLast),
		"transitions between the two phases are rapid, so intermediate rates are rare (Fig. 3)")
	return t
}
