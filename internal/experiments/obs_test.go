package experiments

import (
	"strconv"
	"testing"

	"mobiletraffic/internal/faults"
	"mobiletraffic/internal/netsim"
	"mobiletraffic/internal/obs"
)

// obsTestSim builds a small campaign simulator for instrumentation
// tests.
func obsTestSim(t *testing.T, seed int64) (*netsim.Simulator, int) {
	t.Helper()
	const days = 2
	topo, err := netsim.NewTopology(netsim.TopologyConfig{NumBS: 12, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := netsim.NewSimulator(topo, netsim.SimConfig{Days: days, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return sim, days
}

// TestCollectInstrumentationExactness runs the parallel collection
// with a live registry and checks that the counters written
// concurrently by every worker add up to exactly what the collector
// itself accounted — no lost increments under contention (the test is
// also exercised with -race in CI).
func TestCollectInstrumentationExactness(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	old := obs.Default()
	reg := obs.NewRegistry()
	obs.SetDefault(reg)
	defer obs.SetDefault(old)

	sim, days := obsTestSim(t, 9)
	coll, err := collect(sim, days, nil)
	if err != nil {
		t.Fatal(err)
	}

	wantSessions := int64(coll.TotalSessions())
	if got := reg.Counter("netsim_sessions_generated_total").Value(); got != wantSessions {
		t.Errorf("netsim_sessions_generated_total = %d, want %d", got, wantSessions)
	}
	var flows int64
	for svc := 0; svc < len(sim.Services); svc++ {
		flows += reg.Counter("probe_flows_tracked_total", "service", "svc"+strconv.Itoa(svc)).Value()
	}
	if flows != wantSessions {
		t.Errorf("sum of probe_flows_tracked_total = %d, want %d", flows, wantSessions)
	}
	// Every BS must be accounted to exactly one worker.
	var done int64
	for w := 0; w < 64; w++ {
		done += reg.Counter("collect_bs_total", "worker", strconv.Itoa(w)).Value()
	}
	if done != int64(len(sim.Topo.BSs)) {
		t.Errorf("sum of collect_bs_total = %d, want %d", done, len(sim.Topo.BSs))
	}
	if reg.Histogram(obs.StageSecondsMetric, obs.DefBucketsSeconds, "stage", "collect").Count() != 1 {
		t.Error("collect stage span not recorded in pipeline_stage_seconds")
	}
}

// TestInstrumentationDoesNotPerturbFaults collects the same faulty
// campaign with instrumentation disabled and enabled and demands
// identical fault realizations and session totals: the observability
// layer must never touch the deterministic fault/simulation RNG
// streams.
func TestInstrumentationDoesNotPerturbFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	cfg := faults.Config{
		OutageProb: 0.2, TruncatedDayProb: 0.1, FlowLossProb: 0.05,
		FlowDupProb: 0.02, SignalGapProb: 0.03, MisclassProb: 0.02, Seed: 41,
	}
	run := func(instrumented bool) (faults.Snapshot, float64) {
		old := obs.Default()
		if instrumented {
			obs.SetDefault(obs.NewRegistry())
		} else {
			obs.SetDefault(nil)
		}
		defer obs.SetDefault(old)

		sim, days := obsTestSim(t, 9)
		inj, err := faults.New(cfg, len(sim.Services))
		if err != nil {
			t.Fatal(err)
		}
		coll, err := collect(sim, days, inj)
		if err != nil {
			t.Fatal(err)
		}
		return inj.Stats(), coll.TotalSessions()
	}

	statsOff, sessionsOff := run(false)
	statsOn, sessionsOn := run(true)
	if statsOff != statsOn {
		t.Errorf("fault stats diverge with instrumentation on:\noff: %+v\non:  %+v", statsOff, statsOn)
	}
	if sessionsOff != sessionsOn {
		t.Errorf("collected sessions diverge: off %v, on %v", sessionsOff, sessionsOn)
	}
}
