package experiments

import (
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"time"

	"mobiletraffic/internal/faults"
	"mobiletraffic/internal/netsim"
	"mobiletraffic/internal/obs"
	"mobiletraffic/internal/probe"
)

// bsTask is one unit of campaign work: a base-station index, stamped
// at enqueue time when instrumentation is on so workers can report
// how long tasks sat in the queue.
type bsTask struct {
	bs       int
	enqueued time.Time
}

// forEachBS fans the base-station indices [0, numBS) out to workers
// and runs work(worker, bs) for each. A worker that hits an error
// stops doing work but keeps draining the task channel: if it returned
// instead, a campaign where every worker fails early would leave the
// feeder blocked on `tasks <- bs` forever. The first error of the
// lowest-numbered failing worker is returned.
//
// When instrumentation is enabled, each dequeue reports its queue
// wait to collect_queue_wait_seconds and each completed BS bumps the
// worker's collect_bs_total{worker=...} counter.
func forEachBS(numBS, workers int, work func(worker, bs int) error) error {
	instrumented := obs.Enabled()
	var queueWait *obs.Histogram
	if instrumented {
		queueWait = obs.HistogramOf("collect_queue_wait_seconds", obs.DefBucketsSeconds)
	}
	tasks := make(chan bsTask)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var done *obs.Counter
			if instrumented {
				done = obs.CounterOf("collect_bs_total", "worker", strconv.Itoa(w))
			}
			for task := range tasks {
				if !task.enqueued.IsZero() {
					queueWait.Observe(time.Since(task.enqueued).Seconds())
				}
				if errs[w] != nil {
					continue // drain so the feeder never blocks
				}
				errs[w] = work(w, task.bs)
				if errs[w] == nil {
					done.Inc()
				}
			}
		}(w)
	}
	// The instrumentation check is hoisted out of the feeder loop: the
	// uninstrumented path never touches the clock.
	if instrumented {
		for bs := 0; bs < numBS; bs++ {
			tasks <- bsTask{bs: bs, enqueued: time.Now()}
		}
	} else {
		for bs := 0; bs < numBS; bs++ {
			tasks <- bsTask{bs: bs}
		}
	}
	close(tasks)
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			return fmt.Errorf("worker %d: %w", w, err)
		}
	}
	return nil
}

// collect runs the measurement campaign with one worker per CPU: each
// worker simulates whole base stations into its own collector and the
// partial collectors are merged afterwards. The per-(BS, day) random
// streams of the simulator are independent, and merging is
// order-insensitive, so the result is bit-identical to a serial run.
//
// An optional fault injector is composed over the measurement plane:
// every session of a (BS, day) cell is routed through that cell's
// deterministic fault stream before reaching the worker's collector,
// and cells hit by a whole-day probe outage skip session generation
// entirely. A nil injector collects a pristine campaign. Fault
// streams are derived per cell from the injector's own seed, so
// realizations are identical regardless of worker count — and of
// whether instrumentation is enabled.
func collect(sim *netsim.Simulator, days int, inj *faults.Injector) (*probe.Collector, error) {
	span := obs.StartSpan("collect")
	defer span.End()
	numBS := len(sim.Topo.BSs)
	workers := runtime.NumCPU()
	if workers > numBS {
		workers = numBS
	}
	if workers < 1 {
		workers = 1
	}

	// Partials are pre-sized to the campaign extent so the dense cell
	// slabs never re-layout mid-collection, and each worker reuses one
	// collection scratch (columnar sampler/fault buffers, or the v1
	// session batch buffer) across its whole share of the campaign.
	partials := make([]*probe.Collector, workers)
	scratches := make([]*collectScratch, workers)
	for w := range partials {
		coll, err := probe.NewCollectorSized(len(sim.Services), numBS, days)
		if err != nil {
			return nil, err
		}
		partials[w] = coll
		scratches[w] = newCollectScratch(sim, inj != nil)
	}
	workerSpans := make([]*obs.Span, workers)
	err := forEachBS(numBS, workers, func(w, bs int) error {
		if workerSpans[w] == nil {
			// One span per worker covering its whole share of the
			// campaign, on its own trace track (tid 1+w).
			s := span.Child("collect/worker", "worker", strconv.Itoa(w))
			s.SetTID(1 + w)
			workerSpans[w] = s
		}
		return collectBS(sim, partials[w], scratches[w], inj, bs, days)
	})
	for _, s := range workerSpans {
		s.End()
	}
	if err != nil {
		return nil, err
	}
	// The dense slabs are index-aligned, so the partials fold into the
	// first one with per-service shards running in parallel.
	mergeSpan := span.Child("aggregate/merge")
	defer mergeSpan.End()
	out := partials[0]
	if err := out.MergeAll(partials[1:], workers); err != nil {
		return nil, err
	}
	return out, nil
}

// collectScratch bundles the reusable per-worker buffers of the
// collection path: the columnar sampler output and fault-filtered
// columns of the v2 pipeline, and the session batch buffer of the v1
// scalar fallback. One scratch is owned by exactly one worker (or
// shard attempt) and reused across its whole campaign share.
type collectScratch struct {
	cols    netsim.DayColumns // SampleDayColumns output
	faulted netsim.DayColumns // ApplyColumns output when faults are injected
	buf     []netsim.Session  // v1 generation batch buffer
}

// newCollectScratch builds one worker's scratch for a campaign over
// sim. The columnar buffers skip the Start column (the probe ingest
// bins by minute and never reads establishment seconds) and are
// pre-sized to the simulator's analytic day-size bound, so the whole
// campaign share runs without a single column re-allocation.
func newCollectScratch(sim *netsim.Simulator, faulted bool) *collectScratch {
	sc := &collectScratch{}
	if sim.Config.Sampler == netsim.SamplerV1 {
		sc.buf = make([]netsim.Session, 0, netsim.SessionBatchSize)
		return sc
	}
	bound := sim.MaxDaySessions()
	sc.cols.SkipStart = true
	sc.cols.Resize(bound)
	sc.cols.Resize(0)
	if faulted {
		sc.faulted.SkipStart = true
		sc.faulted.Resize(bound)
		sc.faulted.Resize(0)
	}
	return sc
}

// collectBS simulates every day of one base station into coll, routing
// each cell through the optional fault injector's per-(BS, day)
// stream. On sampler v2 (the default) the whole (BS, day) flows as
// columns — SampleDayColumns → DayStream.ApplyColumns →
// ObserveColumns — with no per-session Session materialization; the v1
// golden stream keeps the scalar batch path. It is the shared per-BS
// body of the in-process parallel collector (collect) and the sharded
// campaign workers (CollectSharded) — both therefore observe
// bit-identical cell statistics for a given (BS, day).
func collectBS(sim *netsim.Simulator, coll *probe.Collector, sc *collectScratch, inj *faults.Injector, bs, days int) error {
	if sim.Config.Sampler == netsim.SamplerV1 {
		return collectBSScalar(sim, coll, sc.buf, inj, bs, days)
	}
	for day := 0; day < days; day++ {
		var stream *faults.DayStream
		if inj != nil {
			stream = inj.Day(bs, day)
			if stream.Down() {
				continue // whole-day probe outage: nothing is exported
			}
		}
		cols := &sc.cols
		if err := sim.SampleDayColumns(bs, day, cols); err != nil {
			return err
		}
		if stream != nil {
			stream.ApplyColumns(cols, &sc.faulted)
			cols = &sc.faulted
		}
		if err := coll.ObserveColumns(bs, day, cols); err != nil {
			return err
		}
	}
	return nil
}

// collectBSScalar is the v1 per-BS collection body: batched session
// generation through the scalar Observe path, kept verbatim so the
// golden v1 stream flows through exactly the code it always has.
func collectBSScalar(sim *netsim.Simulator, coll *probe.Collector, buf []netsim.Session, inj *faults.Injector, bs, days int) error {
	for day := 0; day < days; day++ {
		var stream *faults.DayStream
		if inj != nil {
			stream = inj.Day(bs, day)
			if stream.Down() {
				continue // whole-day probe outage: nothing is exported
			}
		}
		flush := coll.ObserveBatch
		if stream != nil {
			flush = func(batch []netsim.Session) error {
				var obsErr error
				for i := range batch {
					stream.Apply(batch[i], func(s netsim.Session) {
						if obsErr == nil {
							obsErr = coll.Observe(s)
						}
					})
				}
				return obsErr
			}
		}
		if err := sim.GenerateDayBatch(bs, day, buf, flush); err != nil {
			return err
		}
	}
	return nil
}
