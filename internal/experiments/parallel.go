package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"mobiletraffic/internal/faults"
	"mobiletraffic/internal/netsim"
	"mobiletraffic/internal/probe"
)

// forEachBS fans the base-station indices [0, numBS) out to workers
// and runs work(worker, bs) for each. A worker that hits an error
// stops doing work but keeps draining the task channel: if it returned
// instead, a campaign where every worker fails early would leave the
// feeder blocked on `tasks <- bs` forever. The first error of the
// lowest-numbered failing worker is returned.
func forEachBS(numBS, workers int, work func(worker, bs int) error) error {
	tasks := make(chan int)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for bs := range tasks {
				if errs[w] != nil {
					continue // drain so the feeder never blocks
				}
				errs[w] = work(w, bs)
			}
		}(w)
	}
	for bs := 0; bs < numBS; bs++ {
		tasks <- bs
	}
	close(tasks)
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			return fmt.Errorf("worker %d: %w", w, err)
		}
	}
	return nil
}

// collectParallel runs the measurement campaign with one worker per
// CPU: each worker simulates whole base stations into its own collector
// and the partial collectors are merged afterwards. The per-(BS, day)
// random streams of the simulator are independent, and merging is
// order-insensitive, so the result is bit-identical to a serial run.
func collectParallel(sim *netsim.Simulator, days int) (*probe.Collector, error) {
	return collectFaulty(sim, days, nil)
}

// collectFaulty is collectParallel with an optional fault injector
// composed over the measurement plane: every session of a (BS, day)
// cell is routed through that cell's deterministic fault stream before
// reaching the worker's collector, and cells hit by a whole-day probe
// outage skip session generation entirely. A nil injector collects a
// pristine campaign.
func collectFaulty(sim *netsim.Simulator, days int, inj *faults.Injector) (*probe.Collector, error) {
	numBS := len(sim.Topo.BSs)
	workers := runtime.NumCPU()
	if workers > numBS {
		workers = numBS
	}
	if workers < 1 {
		workers = 1
	}

	partials := make([]*probe.Collector, workers)
	for w := range partials {
		coll, err := probe.NewCollector(len(sim.Services))
		if err != nil {
			return nil, err
		}
		partials[w] = coll
	}
	err := forEachBS(numBS, workers, func(w, bs int) error {
		for day := 0; day < days; day++ {
			var stream *faults.DayStream
			if inj != nil {
				stream = inj.Day(bs, day)
				if stream.Down() {
					continue // whole-day probe outage: nothing is exported
				}
			}
			var obsErr error
			observe := func(s netsim.Session) {
				if obsErr == nil {
					obsErr = partials[w].Observe(s)
				}
			}
			yield := observe
			if stream != nil {
				yield = func(s netsim.Session) { stream.Apply(s, observe) }
			}
			if err := sim.GenerateDay(bs, day, yield); err != nil {
				return err
			}
			if obsErr != nil {
				return obsErr
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := partials[0]
	for _, p := range partials[1:] {
		if err := out.Merge(p); err != nil {
			return nil, err
		}
	}
	return out, nil
}
