package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"mobiletraffic/internal/netsim"
	"mobiletraffic/internal/probe"
)

// collectParallel runs the measurement campaign with one worker per
// CPU: each worker simulates whole base stations into its own collector
// and the partial collectors are merged afterwards. The per-(BS, day)
// random streams of the simulator are independent, and merging is
// order-insensitive, so the result is bit-identical to a serial run.
func collectParallel(sim *netsim.Simulator, days int) (*probe.Collector, error) {
	numBS := len(sim.Topo.BSs)
	workers := runtime.NumCPU()
	if workers > numBS {
		workers = numBS
	}
	if workers < 1 {
		workers = 1
	}

	tasks := make(chan int)
	partials := make([]*probe.Collector, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		coll, err := probe.NewCollector(len(sim.Services))
		if err != nil {
			return nil, err
		}
		partials[w] = coll
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for bs := range tasks {
				for day := 0; day < days; day++ {
					if errs[w] != nil {
						return
					}
					err := sim.GenerateDay(bs, day, func(s netsim.Session) {
						if errs[w] == nil {
							errs[w] = partials[w].Observe(s)
						}
					})
					if err != nil && errs[w] == nil {
						errs[w] = err
					}
				}
			}
		}(w)
	}
	for bs := 0; bs < numBS; bs++ {
		tasks <- bs
	}
	close(tasks)
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("worker %d: %w", w, err)
		}
	}
	out := partials[0]
	for _, p := range partials[1:] {
		if err := out.Merge(p); err != nil {
			return nil, err
		}
	}
	return out, nil
}
