package experiments

import (
	"fmt"
	"math"

	"mobiletraffic/internal/core"
	"mobiletraffic/internal/dist"
	"mobiletraffic/internal/netsim"
)

// FidelityRow compares model-generated sessions against measured ones
// for one service, over the three statistics §5.4 says the released
// models reproduce: traffic volume, duration and average throughput.
// Distances are two-sample Kolmogorov-Smirnov statistics in the log10
// domain (0 = indistinguishable, 1 = disjoint).
type FidelityRow struct {
	Name         string
	Samples      int
	KSVolume     float64
	KSDuration   float64
	KSThroughput float64
	MeanVolRatio float64 // generated mean volume / measured mean volume
}

// FidelityResult is the generator-fidelity experiment output.
type FidelityResult struct {
	Rows []FidelityRow
}

// ExpFidelity draws measured sessions from the simulated campaign and
// synthetic sessions from the fitted models, then compares their
// volume, duration and throughput distributions per service. services
// defaults to the six Fig. 5 services when empty; samples defaults to
// 20000 when <= 0.
func ExpFidelity(env *Env, names []string, samples int) (*FidelityResult, error) {
	if len(names) == 0 {
		names = []string{"Netflix", "Twitch", "Deezer", "Amazon", "Facebook", "Waze"}
	}
	if samples <= 0 {
		samples = 20000
	}
	out := &FidelityResult{}
	gen, err := core.NewGenerator(env.Models, env.Config.Seed^0xf1de)
	if err != nil {
		return nil, err
	}
	for _, name := range names {
		svc, err := env.serviceIndex(name)
		if err != nil {
			return nil, err
		}
		mi := -1
		for i := range env.Models.Services {
			if env.Models.Services[i].Name == name {
				mi = i
				break
			}
		}
		if mi < 0 {
			return nil, fmt.Errorf("experiments: %s not modeled", name)
		}
		// Measured sessions: replay simulator days until enough samples.
		var mVol, mDur, mTput []float64
		for day := 0; day < env.Config.Days && len(mVol) < samples; day++ {
			for bs := 0; bs < len(env.Topo.BSs) && len(mVol) < samples; bs++ {
				err := env.Sim.GenerateDay(bs, day, func(s netsim.Session) {
					if s.Service != svc || len(mVol) >= samples {
						return
					}
					mVol = append(mVol, math.Log10(s.Volume))
					mDur = append(mDur, math.Log10(s.Duration))
					mTput = append(mTput, math.Log10(s.Volume/s.Duration))
				})
				if err != nil {
					return nil, err
				}
			}
		}
		if len(mVol) < 100 {
			continue // not enough measured sessions to compare
		}
		// Generated sessions.
		gVol := make([]float64, len(mVol))
		gDur := make([]float64, len(mVol))
		gTput := make([]float64, len(mVol))
		var mSum, gSum float64
		for i := range gVol {
			s, err := gen.SessionFor(mi)
			if err != nil {
				return nil, err
			}
			gVol[i] = math.Log10(s.Volume)
			gDur[i] = math.Log10(s.Duration)
			gTput[i] = math.Log10(s.Throughput)
			gSum += s.Volume
			mSum += math.Pow(10, mVol[i])
		}
		row := FidelityRow{Name: name, Samples: len(mVol)}
		if row.KSVolume, _, err = dist.KSTwoSample(mVol, gVol); err != nil {
			return nil, err
		}
		if row.KSDuration, _, err = dist.KSTwoSample(mDur, gDur); err != nil {
			return nil, err
		}
		if row.KSThroughput, _, err = dist.KSTwoSample(mTput, gTput); err != nil {
			return nil, err
		}
		if mSum > 0 {
			row.MeanVolRatio = gSum / mSum
		}
		out.Rows = append(out.Rows, row)
	}
	if len(out.Rows) == 0 {
		return nil, fmt.Errorf("experiments: no service had enough measured sessions for fidelity")
	}
	return out, nil
}

// Table renders the fidelity result.
func (r *FidelityResult) Table() *Table {
	t := &Table{
		Title:  "Extension — generator fidelity (§5.4: volume, duration, throughput)",
		Header: []string{"service", "samples", "KS volume", "KS duration", "KS throughput", "mean volume ratio"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Name, row.Samples, row.KSVolume, row.KSDuration, row.KSThroughput, row.MeanVolRatio)
	}
	t.Notes = append(t.Notes,
		"KS statistics in the log10 domain; volume tracks the fitted mixture closely,",
		"duration/throughput inherit extra spread from the deterministic power-law inverse plus generation noise")
	return t
}
