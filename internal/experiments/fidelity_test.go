package experiments

import (
	"strings"
	"testing"
)

func TestExpFidelity(t *testing.T) {
	env := sharedEnv(t)
	r, err := ExpFidelity(env, nil, 8000)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 6 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Samples < 1000 {
			t.Errorf("%s: only %d samples", row.Name, row.Samples)
		}
		// §5.4: the released models reproduce the volume statistics
		// closely; duration and throughput inherit extra spread from
		// the deterministic power-law inverse.
		if row.KSVolume > 0.1 {
			t.Errorf("%s: KS volume = %v", row.Name, row.KSVolume)
		}
		if row.KSDuration > 0.2 {
			t.Errorf("%s: KS duration = %v", row.Name, row.KSDuration)
		}
		if row.KSThroughput > 0.45 {
			t.Errorf("%s: KS throughput = %v", row.Name, row.KSThroughput)
		}
		// Byte-domain means agree within the tail-extrapolation factor
		// of the widest fitted services.
		if row.MeanVolRatio < 0.7 || row.MeanVolRatio > 2.2 {
			t.Errorf("%s: mean volume ratio = %v", row.Name, row.MeanVolRatio)
		}
	}
	if !strings.Contains(r.Table().Render(), "generator fidelity") {
		t.Error("table render")
	}
}

func TestExpFidelityUnknownService(t *testing.T) {
	env := sharedEnv(t)
	if _, err := ExpFidelity(env, []string{"NoSuchApp"}, 100); err == nil {
		t.Error("unknown service must error")
	}
}
