package experiments

import (
	"fmt"
	"math"

	"mobiletraffic/internal/core"
	"mobiletraffic/internal/faults"
)

// The chaos experiment: DESIGN.md names failure injection — classifier
// error rates, empty BSs, truncated days — as the verification
// strategy for the measurement plane, and related measurement studies
// stress that fitted parameters must be stable under imperfect, lossy
// collection. ExpChaos sweeps a combined fault intensity over the
// simulated campaign, refits the models on each degraded collection
// with the graceful pipeline, and reports how far the released
// parameters drift from the clean fit together with the FitReport of
// every run.

// ChaosConfig configures the fault-intensity sweep.
type ChaosConfig struct {
	// Max is the full-intensity fault mix. The zero value defaults to
	// the acceptance mix: 20% BS-day outages, 10% truncated days, 5%
	// flow-record loss, 2% duplication, 3% signaling gaps and 2%
	// misclassification.
	Max faults.Config
	// Levels are the intensity multipliers applied to Max (default
	// 0.25, 0.5, 0.75, 1).
	Levels []float64
	// Tolerance is the recovery criterion on the median |Δβ| against
	// the clean fit (default 0.1, the bound the stability extension
	// holds day-split fits to).
	Tolerance float64
}

func (c ChaosConfig) withDefaults(seed int64) ChaosConfig {
	zero := faults.Config{}
	if c.Max == zero {
		c.Max = faults.Config{
			OutageProb:       0.20,
			TruncatedDayProb: 0.10,
			FlowLossProb:     0.05,
			FlowDupProb:      0.02,
			SignalGapProb:    0.03,
			MisclassProb:     0.02,
		}
	}
	if c.Max.Seed == 0 {
		c.Max.Seed = seed ^ 0xc4a05
	}
	if len(c.Levels) == 0 {
		c.Levels = []float64{0.25, 0.5, 0.75, 1}
	}
	if c.Tolerance <= 0 {
		c.Tolerance = 0.1
	}
	return c
}

// ChaosRow is one fault-intensity level of the sweep.
type ChaosRow struct {
	Intensity    float64
	OutageDays   int64   // (BS, day) cells lost to probe outages
	TruncDays    int64   // (BS, day) cells cut short
	SessionsKept float64 // collected sessions / clean-campaign sessions
	Misclass     float64 // fraction of kept records with a wrong label
	Modeled      int     // services fitted (incl. fallbacks)
	Fallbacks    int
	Skipped      int
	// MedianDeltaMu and MedianDeltaBeta are parameter drifts of the
	// degraded fit against the clean fit.
	MedianDeltaMu   float64
	MedianDeltaBeta float64
	Recovered       bool // MedianDeltaBeta within tolerance
}

// ChaosResult is the chaos experiment output.
type ChaosResult struct {
	Rows []ChaosRow
	// Reports holds the merged FitReport (services + arrival classes)
	// of each level, index-aligned with Rows.
	Reports   []*core.FitReport
	Baseline  int     // services in the clean fit
	Tolerance float64 // recovery criterion on median |d beta|
}

// ExpChaos re-collects the campaign under increasing fault intensity
// and refits the §5 models with the graceful-degradation pipeline.
// Every level must come back with a non-empty ModelSet; skipped or
// fallback-fitted services are reported, not fatal.
func ExpChaos(env *Env, cfg ChaosConfig) (*ChaosResult, error) {
	c := cfg.withDefaults(env.Config.Seed)
	cleanSessions := env.Coll.TotalSessions()
	if cleanSessions <= 0 {
		return nil, fmt.Errorf("experiments: chaos needs a populated clean campaign")
	}
	out := &ChaosResult{Baseline: len(env.Models.Services), Tolerance: c.Tolerance}
	for _, level := range c.Levels {
		inj, err := faults.New(c.Max.Scale(level), len(env.Sim.Services))
		if err != nil {
			return nil, fmt.Errorf("experiments: chaos level %v: %w", level, err)
		}
		coll, err := collect(env.Sim, env.Config.Days, inj)
		if err != nil {
			return nil, fmt.Errorf("experiments: chaos collection at intensity %v: %w", level, err)
		}
		set, report, err := core.FitServiceModelsReport(coll, env.Catalog, nil)
		if err != nil {
			return nil, fmt.Errorf("experiments: chaos fit at intensity %v: %w", level, err)
		}
		arrivals, arrReport, err := core.FitArrivalsByDecileReport(coll, env.Topo)
		if err != nil {
			return nil, fmt.Errorf("experiments: chaos arrival fit at intensity %v: %w", level, err)
		}
		set.Arrivals = arrivals
		report.Merge(arrReport)
		cmp, err := core.CompareModelSets(env.Models, set)
		if err != nil {
			return nil, fmt.Errorf("experiments: chaos comparison at intensity %v: %w", level, err)
		}
		st := inj.Stats()
		row := ChaosRow{
			Intensity:       level,
			OutageDays:      st.OutageDays,
			TruncDays:       st.TruncatedDays,
			SessionsKept:    coll.TotalSessions() / cleanSessions,
			Modeled:         len(set.Services),
			Fallbacks:       len(report.Fallbacks),
			Skipped:         len(report.Skipped),
			MedianDeltaMu:   cmp.MedianDeltaMu,
			MedianDeltaBeta: cmp.MedianDeltaBeta,
			Recovered:       cmp.MedianDeltaBeta <= c.Tolerance,
		}
		if st.Emitted > 0 {
			row.Misclass = float64(st.Misclassified) / float64(st.Emitted)
		}
		out.Rows = append(out.Rows, row)
		out.Reports = append(out.Reports, report)
	}
	if len(out.Rows) == 0 {
		return nil, fmt.Errorf("experiments: chaos swept no intensity levels")
	}
	return out, nil
}

// Table renders the chaos sweep.
func (r *ChaosResult) Table() *Table {
	t := &Table{
		Title: "Extension — chaos: model recovery under measurement-plane faults",
		Header: []string{"intensity", "outage days", "trunc days", "sessions kept",
			"misclass", "modeled", "fallbacks", "skipped", "|d mu| med", "|d beta| med", "recovered"},
	}
	for _, row := range r.Rows {
		recovered := "yes"
		if !row.Recovered {
			recovered = "NO"
		}
		t.AddRow(row.Intensity, row.OutageDays, row.TruncDays,
			fmt.Sprintf("%.1f%%", 100*row.SessionsKept),
			fmt.Sprintf("%.2f%%", 100*row.Misclass),
			row.Modeled, row.Fallbacks, row.Skipped,
			row.MedianDeltaMu, row.MedianDeltaBeta, recovered)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("clean fit models %d services; recovery criterion: median |d beta| <= %.2g vs the clean fit",
			r.Baseline, r.Tolerance),
		"faults: BS-day probe outages, truncated days, gateway record loss/duplication, signaling gaps, DPI misclassification bursts")
	for i, rep := range r.Reports {
		if rep != nil && rep.Degraded() {
			t.Notes = append(t.Notes, fmt.Sprintf("intensity %v: %s",
				r.Rows[i].Intensity, firstLine(rep.Summary())))
		}
	}
	return t
}

func firstLine(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			return s[:i]
		}
	}
	return s
}

// WorstBetaDrift returns the largest median |Δβ| across the sweep —
// the headline number the chaos benchmark bounds.
func (r *ChaosResult) WorstBetaDrift() float64 {
	worst := 0.0
	for _, row := range r.Rows {
		if !math.IsNaN(row.MedianDeltaBeta) && row.MedianDeltaBeta > worst {
			worst = row.MedianDeltaBeta
		}
	}
	return worst
}
