package experiments

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"mobiletraffic/internal/faults"
	"mobiletraffic/internal/netsim"
	"mobiletraffic/internal/probe"
)

// TestForEachBSAllWorkersFail is the deadlock regression test: when
// every worker fails on its first task, the feeder must still be able
// to hand out the remaining tasks (the workers drain them) and the
// call must return the error instead of blocking forever. Run under
// -race this also exercises the per-worker error slots.
func TestForEachBSAllWorkersFail(t *testing.T) {
	boom := errors.New("boom")
	done := make(chan error, 1)
	go func() {
		// Far more tasks than workers, so a worker that returned out of
		// the task loop (the old bug) would strand the feeder.
		done <- forEachBS(1000, 4, func(w, bs int) error { return boom })
	}()
	select {
	case err := <-done:
		if !errors.Is(err, boom) {
			t.Fatalf("err = %v, want the worker error", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("forEachBS deadlocked with all workers failing")
	}
}

func TestForEachBSPartialFailure(t *testing.T) {
	done := make(chan error, 1)
	go func() {
		done <- forEachBS(500, 3, func(w, bs int) error {
			if bs%2 == 1 {
				return fmt.Errorf("bs %d failed", bs)
			}
			return nil
		})
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("expected an error from the failing tasks")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("forEachBS deadlocked with partially failing workers")
	}
}

func TestForEachBSCoversEveryBS(t *testing.T) {
	const numBS = 257
	seen := make([]int, numBS)
	var err error
	done := make(chan struct{})
	go func() {
		defer close(done)
		err = forEachBS(numBS, 5, func(w, bs int) error {
			seen[bs]++ // each bs is dispatched exactly once, so no race
			return nil
		})
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("forEachBS did not finish")
	}
	if err != nil {
		t.Fatal(err)
	}
	for bs, n := range seen {
		if n != 1 {
			t.Fatalf("bs %d dispatched %d times", bs, n)
		}
	}
}

// TestForEachBSFailureStillMergesPartials is the drain regression test
// for the parallel-merge collection path: a worker that fails
// mid-campaign keeps draining the feeder channel (no deadlock), the
// error comes back, and the partial collectors the surviving workers
// left behind still fold through the parallel MergeAll — the merge must
// not assume every partial saw every cell.
func TestForEachBSFailureStillMergesPartials(t *testing.T) {
	const numBS, days, workers, numSvc = 64, 2, 4, 3
	partials := make([]*probe.Collector, workers)
	for w := range partials {
		coll, err := probe.NewCollectorSized(numSvc, numBS, days)
		if err != nil {
			t.Fatal(err)
		}
		partials[w] = coll
	}
	boom := errors.New("probe crashed")
	done := make(chan error, 1)
	go func() {
		done <- forEachBS(numBS, workers, func(w, bs int) error {
			if bs == 17 {
				return boom
			}
			for day := 0; day < days; day++ {
				s := netsim.Session{BS: bs, Day: day, Service: bs % numSvc, Minute: 0, Duration: 10, Volume: 1e6}
				if err := partials[w].Observe(s); err != nil {
					return err
				}
			}
			return nil
		})
	}()
	select {
	case err := <-done:
		if !errors.Is(err, boom) {
			t.Fatalf("err = %v, want the worker error", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("forEachBS deadlocked after a worker failure")
	}
	if err := partials[0].MergeAll(partials[1:], workers); err != nil {
		t.Fatalf("parallel merge of partials after failure: %v", err)
	}
	// Each completed BS contributed exactly `days` sessions. The failed
	// worker drains (but does not process) the tasks it receives after
	// the error, so the total is schedule-dependent — but it is always a
	// whole number of completed BSs, nonzero, and short of a full run.
	got := partials[0].TotalSessions()
	if got <= 0 || got > float64((numBS-1)*days) || int(got)%days != 0 {
		t.Fatalf("merged sessions = %v, want a positive multiple of %d at most %d", got, days, (numBS-1)*days)
	}
}

// TestCollectFaultyMatchesSerialInjection verifies that the parallel
// fault-injected collection is bit-identical to a serial run of the
// same injector seed — the determinism contract of faults.Injector.
func TestCollectFaultyMatchesSerialInjection(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	topo, err := netsim.NewTopology(netsim.TopologyConfig{NumBS: 12, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	const days = 2
	sim, err := netsim.NewSimulator(topo, netsim.SimConfig{Days: days, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	cfg := faults.Config{
		OutageProb: 0.2, TruncatedDayProb: 0.2, FlowLossProb: 0.05,
		FlowDupProb: 0.02, SignalGapProb: 0.03, MisclassProb: 0.02, Seed: 77,
	}
	injPar, err := faults.New(cfg, len(sim.Services))
	if err != nil {
		t.Fatal(err)
	}
	par, err := collect(sim, days, injPar)
	if err != nil {
		t.Fatal(err)
	}

	injSer, err := faults.New(cfg, len(sim.Services))
	if err != nil {
		t.Fatal(err)
	}
	ser, err := probe.NewCollector(len(sim.Services))
	if err != nil {
		t.Fatal(err)
	}
	var obsErr error
	yield := injSer.Wrap(func(s netsim.Session) {
		if obsErr == nil {
			obsErr = ser.Observe(s)
		}
	})
	if err := sim.GenerateAll(yield); err != nil {
		t.Fatal(err)
	}
	if obsErr != nil {
		t.Fatal(obsErr)
	}

	parKeys, serKeys := par.Keys(), ser.Keys()
	if len(parKeys) != len(serKeys) {
		t.Fatalf("parallel has %d cells, serial %d", len(parKeys), len(serKeys))
	}
	for _, k := range parKeys {
		a, _ := par.Get(k)
		b, ok := ser.Get(k)
		if !ok {
			t.Fatalf("cell %+v missing from serial run", k)
		}
		if a.Sessions != b.Sessions {
			t.Fatalf("cell %+v: %v vs %v sessions", k, a.Sessions, b.Sessions)
		}
		for m := range a.MinuteCounts {
			if a.MinuteCounts[m] != b.MinuteCounts[m] {
				t.Fatalf("cell %+v minute %d differs", k, m)
			}
		}
		for i := range a.DurVolSum {
			if a.DurVolSum[i] != b.DurVolSum[i] || a.DurCount[i] != b.DurCount[i] {
				t.Fatalf("cell %+v duration bin %d differs", k, i)
			}
		}
	}
}
