// Package experiments reproduces every table and figure of the paper's
// evaluation: each ExpXxx function runs one experiment end-to-end on a
// simulated measurement campaign and returns the rows/series the paper
// reports. The cmd/experiments binary prints them; the repository-root
// benchmarks regenerate them under `go test -bench`.
package experiments

import (
	"fmt"

	"mobiletraffic/internal/core"
	"mobiletraffic/internal/netsim"
	"mobiletraffic/internal/obs"
	"mobiletraffic/internal/probe"
	"mobiletraffic/internal/services"
)

// Config sizes the simulated measurement campaign. The paper's campaign
// (282k BSs, 45 days) is scaled down to laptop size; the statistical
// shapes are preserved by construction (see DESIGN.md).
type Config struct {
	NumBS int   // base stations (default 40)
	Days  int   // simulated days, day 0 = Monday (default 7)
	Seed  int64 // master seed
	// MoveProb is the probability a session is transient (default
	// 0.25; negative disables UE mobility, useful for ground-truth
	// recovery oracles).
	MoveProb float64
	// Sampler selects the synthesis-engine stream version (default
	// netsim.SamplerV2; netsim.SamplerV1 reproduces the historical
	// session stream byte for byte).
	Sampler netsim.Sampler
}

func (c Config) withDefaults() Config {
	if c.NumBS <= 0 {
		c.NumBS = 40
	}
	if c.Days <= 0 {
		c.Days = 7
	}
	if c.MoveProb == 0 {
		c.MoveProb = 0.25
	}
	return c
}

// Env is a fully prepared experiment environment: simulated topology
// and workload, collected measurements, and fitted session-level
// models.
type Env struct {
	Config   Config
	Topo     *netsim.Topology
	Sim      *netsim.Simulator
	Coll     *probe.Collector
	Models   *core.ModelSet
	Arrivals []*core.ArrivalModel // per BS load decile
	Catalog  []services.Profile   // simulator service catalog (share-ordered)
	// cache memoizes the aggregations the experiment drivers repeat
	// over the (immutable) collector; see cache.go.
	cache aggCache
}

// NewEnv simulates the measurement campaign, collects the §3.2
// statistics and fits the §5 models, returning everything the
// experiment drivers need.
func NewEnv(cfg Config) (*Env, error) {
	c := cfg.withDefaults()
	simSpan := obs.StartSpan("simulate")
	topo, err := netsim.NewTopology(netsim.TopologyConfig{NumBS: c.NumBS, Seed: c.Seed})
	if err != nil {
		return nil, fmt.Errorf("experiments: topology: %w", err)
	}
	sim, err := netsim.NewSimulator(topo, netsim.SimConfig{
		Days:     c.Days,
		Seed:     c.Seed,
		MoveProb: c.MoveProb,
		Sampler:  c.Sampler,
	})
	simSpan.End()
	if err != nil {
		return nil, fmt.Errorf("experiments: simulator: %w", err)
	}
	coll, err := collect(sim, c.Days, nil)
	if err != nil {
		return nil, fmt.Errorf("experiments: collect: %w", err)
	}
	models, err := core.FitServiceModels(coll, sim.Services, nil)
	if err != nil {
		return nil, fmt.Errorf("experiments: fit models: %w", err)
	}
	arrivals, err := core.FitArrivalsByDecile(coll, topo)
	if err != nil {
		return nil, fmt.Errorf("experiments: fit arrivals: %w", err)
	}
	models.Arrivals = arrivals
	return &Env{
		Config:   c,
		Topo:     topo,
		Sim:      sim,
		Coll:     coll,
		Models:   models,
		Arrivals: arrivals,
		Catalog:  sim.Services,
	}, nil
}

// serviceIndex returns the catalog index of a service name.
func (e *Env) serviceIndex(name string) (int, error) {
	for i, p := range e.Catalog {
		if p.Name == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("experiments: unknown service %q", name)
}
