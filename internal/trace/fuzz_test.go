package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead throws arbitrary bytes at the format-sniffing trace reader.
// Traces come from the command line (`sessiongen` output piped through
// other tools), so a malformed or truncated file must produce an error
// or an empty result — never a panic. Successfully parsed records must
// additionally pass Validate, since that is the reader's contract.
func FuzzRead(f *testing.F) {
	f.Add([]byte(""))
	f.Add([]byte(strings.Join(Header, ",") + "\n0,web,100,2,50\n"))
	f.Add([]byte("0,web,100,2,50\n1.5,video,2e6,30,66666.7\n"))
	f.Add([]byte(`{"time_s":0,"service":"web","bytes":100,"duration_s":2,"throughput_bps":50}` + "\n"))
	f.Add([]byte("{"))
	f.Add([]byte("{}"))
	f.Add([]byte("0,web,NaN,2,50\n"))
	f.Add([]byte("0,web,100,-2,50\n"))
	f.Add([]byte(",,,,\n"))
	f.Add([]byte("\xff\xfe0,web,100,2,50"))
	f.Fuzz(func(t *testing.T, data []byte) {
		records, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i, rec := range records {
			if vErr := rec.Validate(); vErr != nil {
				t.Errorf("record %d parsed without error but fails Validate: %v", i, vErr)
			}
		}
	})
}

// FuzzReadCSV targets the CSV row parser directly with a fixed prefix
// so the fuzzer spends its budget on field-level corruption instead of
// format sniffing.
func FuzzReadCSV(f *testing.F) {
	f.Add("0,web,100,2,50")
	f.Add("abc,web,100,2,50")
	f.Add("0,web,1e309,2,50")
	f.Add(`"0","we""b",100,2,50`)
	f.Add("0,web,100,2")
	f.Fuzz(func(t *testing.T, row string) {
		records, err := Read(strings.NewReader(row + "\n"))
		if err != nil {
			return
		}
		for i, rec := range records {
			if vErr := rec.Validate(); vErr != nil {
				t.Errorf("record %d parsed without error but fails Validate: %v", i, vErr)
			}
		}
	})
}

// FuzzReadJSON targets the JSON-lines decoder: every line that decodes
// must validate, and garbage must error cleanly.
func FuzzReadJSON(f *testing.F) {
	f.Add(`{"time_s":0,"service":"web","bytes":100,"duration_s":2,"throughput_bps":50}`)
	f.Add(`{"time_s":-1}`)
	f.Add(`{"bytes":1e999}`)
	f.Add(`{"service":""}{"service":""}`)
	f.Add(`{"time_s":0,"service":"web","bytes":100,"duration_s":2,"throughput_bps":50}{`)
	f.Fuzz(func(t *testing.T, line string) {
		// Force the JSON path regardless of the fuzzed first byte.
		data := "{" + strings.TrimPrefix(line, "{")
		records, err := Read(strings.NewReader(data))
		if err != nil {
			return
		}
		for i, rec := range records {
			if vErr := rec.Validate(); vErr != nil {
				t.Errorf("record %d parsed without error but fails Validate: %v", i, vErr)
			}
		}
	})
}
