package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead throws arbitrary bytes at the format-sniffing trace reader.
// Traces come from the command line (`sessiongen` output piped through
// other tools), so a malformed or truncated file must produce an error
// or an empty result — never a panic. Successfully parsed records must
// additionally pass Validate, since that is the reader's contract.
func FuzzRead(f *testing.F) {
	f.Add([]byte(""))
	f.Add([]byte(strings.Join(Header, ",") + "\n0,web,100,2,50\n"))
	f.Add([]byte("0,web,100,2,50\n1.5,video,2e6,30,66666.7\n"))
	f.Add([]byte(`{"time_s":0,"service":"web","bytes":100,"duration_s":2,"throughput_bps":50}` + "\n"))
	f.Add([]byte("{"))
	f.Add([]byte("{}"))
	f.Add([]byte("0,web,NaN,2,50\n"))
	f.Add([]byte("0,web,100,-2,50\n"))
	f.Add([]byte(",,,,\n"))
	f.Add([]byte("\xff\xfe0,web,100,2,50"))
	f.Fuzz(func(t *testing.T, data []byte) {
		records, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i, rec := range records {
			if vErr := rec.Validate(); vErr != nil {
				t.Errorf("record %d parsed without error but fails Validate: %v", i, vErr)
			}
		}
	})
}

// FuzzReadBin targets the MTTR columnar reader: seeded with valid
// traces (which must round-trip) plus hand-corrupted sections, the
// fuzzer mutates framing, encodings, dict entries, footer and trailer.
// Any input must either fail cleanly or decode to records that pass
// Validate — never panic, never over-allocate past the header caps,
// and never return data whose CRC does not match.
func FuzzReadBin(f *testing.F) {
	seedRecords := [][]Record{
		nil,
		{{TimeS: 0, Service: "web", Bytes: 100, DurationS: 2, Throughput: 50}},
		{
			{TimeS: 0.25, Service: "video", Bytes: 2e6, DurationS: 30, Throughput: 2e6 / 30},
			{TimeS: 1.5, Service: "web", Bytes: 512.125, DurationS: 0.5, Throughput: 1024.25},
			{TimeS: 1.5, Service: "video", Bytes: 1e15, DurationS: 86400, Throughput: 11574074074.074},
		},
	}
	for _, recs := range seedRecords {
		var buf bytes.Buffer
		w, err := NewWriter(&buf, Bin)
		if err != nil {
			f.Fatal(err)
		}
		for _, r := range recs {
			if err := w.Write(r); err != nil {
				f.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			f.Fatal(err)
		}
		data := buf.Bytes()
		f.Add(append([]byte(nil), data...))
		// Truncations and single-byte corruptions as extra seeds.
		f.Add(append([]byte(nil), data[:len(data)/2]...))
		if len(data) > 8 {
			mut := append([]byte(nil), data...)
			mut[7] ^= 0xff
			f.Add(mut)
		}
	}
	f.Add([]byte("MTTR"))
	f.Add([]byte("MTTR\x01\x00"))
	f.Add([]byte("MTTR\x01\x00\x02\xff\xff\xff\xff"))         // huge block
	f.Add([]byte("MTTR\x01\x00\x01\xff\xff\xff\xff\xff\xff")) // bad dict index
	f.Fuzz(func(t *testing.T, data []byte) {
		records, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i, rec := range records {
			if vErr := rec.Validate(); vErr != nil {
				t.Errorf("record %d parsed without error but fails Validate: %v", i, vErr)
			}
		}
	})
}

// FuzzReadCSV targets the CSV row parser directly with a fixed prefix
// so the fuzzer spends its budget on field-level corruption instead of
// format sniffing.
func FuzzReadCSV(f *testing.F) {
	f.Add("0,web,100,2,50")
	f.Add("abc,web,100,2,50")
	f.Add("0,web,1e309,2,50")
	f.Add(`"0","we""b",100,2,50`)
	f.Add("0,web,100,2")
	f.Fuzz(func(t *testing.T, row string) {
		records, err := Read(strings.NewReader(row + "\n"))
		if err != nil {
			return
		}
		for i, rec := range records {
			if vErr := rec.Validate(); vErr != nil {
				t.Errorf("record %d parsed without error but fails Validate: %v", i, vErr)
			}
		}
	})
}

// FuzzReadJSON targets the JSON-lines decoder: every line that decodes
// must validate, and garbage must error cleanly.
func FuzzReadJSON(f *testing.F) {
	f.Add(`{"time_s":0,"service":"web","bytes":100,"duration_s":2,"throughput_bps":50}`)
	f.Add(`{"time_s":-1}`)
	f.Add(`{"bytes":1e999}`)
	f.Add(`{"service":""}{"service":""}`)
	f.Add(`{"time_s":0,"service":"web","bytes":100,"duration_s":2,"throughput_bps":50}{`)
	f.Fuzz(func(t *testing.T, line string) {
		// Force the JSON path regardless of the fuzzed first byte.
		data := "{" + strings.TrimPrefix(line, "{")
		records, err := Read(strings.NewReader(data))
		if err != nil {
			return
		}
		for i, rec := range records {
			if vErr := rec.Validate(); vErr != nil {
				t.Errorf("record %d parsed without error but fails Validate: %v", i, vErr)
			}
		}
	})
}
