// Package trace reads and writes session-level traffic traces: one
// record per transport-layer session with its establishment time,
// service, traffic volume, duration and mean throughput. Two formats
// are supported — CSV with a fixed header, and newline-delimited JSON —
// both round-trip safe. The format is the interchange surface between
// the generator tools (cmd/sessiongen, examples/tracegen) and external
// consumers such as network simulators.
package trace

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"

	"mobiletraffic/internal/mathx"
)

// Record is one session in a trace.
type Record struct {
	TimeS      float64 `json:"time_s"`         // establishment time, seconds from trace origin
	Service    string  `json:"service"`        // service name
	Bytes      float64 `json:"bytes"`          // session traffic volume
	DurationS  float64 `json:"duration_s"`     // session duration
	Throughput float64 `json:"throughput_Bps"` // mean throughput, bytes/second
}

// Validate checks the record's internal consistency.
func (r *Record) Validate() error {
	if r.Service == "" {
		return errors.New("trace: empty service name")
	}
	if r.TimeS < 0 || r.Bytes <= 0 || r.DurationS <= 0 {
		return fmt.Errorf("trace: invalid record (t=%v bytes=%v dur=%v)", r.TimeS, r.Bytes, r.DurationS)
	}
	return nil
}

// Header is the CSV column header.
var Header = []string{"time_s", "service", "bytes", "duration_s", "throughput_Bps"}

// Format selects the trace encoding.
type Format int

// Supported encodings.
const (
	CSV Format = iota
	JSONLines
	// Bin is the MTTR columnar binary format (bin.go): per-column
	// contiguous raw-bits blocks, a service string table, an embedded
	// Summary footer and a CRC-32C trailer.
	Bin
)

// ParseFormat maps "csv" / "json" / "bin" to a Format.
func ParseFormat(s string) (Format, error) {
	switch s {
	case "csv":
		return CSV, nil
	case "json", "jsonl":
		return JSONLines, nil
	case "bin", "mttr":
		return Bin, nil
	default:
		return 0, fmt.Errorf("trace: unknown format %q (want csv, json or bin)", s)
	}
}

// Writer streams records to an output.
type Writer struct {
	format Format
	csvw   *csv.Writer
	jsonw  *json.Encoder
	binw   *binWriter
	wrote  int
	buf    *bufio.Writer
}

// NewWriter creates a trace writer; for CSV it emits the header
// immediately, for Bin the MTTR magic and version.
func NewWriter(w io.Writer, format Format) (*Writer, error) {
	buf := bufio.NewWriter(w)
	out := &Writer{format: format, buf: buf}
	switch format {
	case CSV:
		out.csvw = csv.NewWriter(buf)
		if err := out.csvw.Write(Header); err != nil {
			return nil, err
		}
	case JSONLines:
		out.jsonw = json.NewEncoder(buf)
	case Bin:
		var err error
		out.binw, err = newBinWriter(buf)
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("trace: unknown format %d", format)
	}
	return out, nil
}

// Write appends one record.
func (w *Writer) Write(r Record) error {
	if err := r.Validate(); err != nil {
		return err
	}
	w.wrote++
	switch w.format {
	case CSV:
		return w.csvw.Write([]string{
			strconv.FormatFloat(r.TimeS, 'f', 3, 64),
			r.Service,
			strconv.FormatFloat(r.Bytes, 'f', 0, 64),
			strconv.FormatFloat(r.DurationS, 'f', 3, 64),
			strconv.FormatFloat(r.Throughput, 'f', 3, 64),
		})
	case Bin:
		return w.binw.add(r)
	default:
		return w.jsonw.Encode(r)
	}
}

// Count returns how many records have been written.
func (w *Writer) Count() int { return w.wrote }

// Flush drains buffered output; call it before closing the underlying
// writer. For Bin it finalizes the trace — last block, Summary footer,
// CRC trailer — so no further Write may follow.
func (w *Writer) Flush() error {
	if w.csvw != nil {
		w.csvw.Flush()
		if err := w.csvw.Error(); err != nil {
			return err
		}
	}
	if w.binw != nil {
		if err := w.binw.finish(); err != nil {
			return err
		}
	}
	return w.buf.Flush()
}

// Read parses a whole trace from r, auto-detecting the format from the
// leading bytes ("MTTR" selects the columnar binary format, '{' JSON
// lines, anything else CSV).
func Read(r io.Reader) ([]Record, error) {
	br := bufio.NewReader(r)
	first, err := br.Peek(4)
	if err != nil && (len(first) == 0 || !errors.Is(err, io.EOF)) {
		if errors.Is(err, io.EOF) {
			return nil, nil
		}
		return nil, err
	}
	if string(first) == binMagic {
		return readBin(br)
	}
	if first[0] == '{' {
		return readJSON(br)
	}
	return readCSV(br)
}

func readJSON(r io.Reader) ([]Record, error) {
	dec := json.NewDecoder(r)
	var out []Record
	for {
		var rec Record
		if err := dec.Decode(&rec); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, fmt.Errorf("trace: json record %d: %w", len(out)+1, err)
		}
		if err := rec.Validate(); err != nil {
			return nil, fmt.Errorf("trace: json record %d: %w", len(out)+1, err)
		}
		out = append(out, rec)
	}
	return out, nil
}

func readCSV(r io.Reader) ([]Record, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(Header)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("trace: csv: %w", err)
	}
	if len(rows) == 0 {
		return nil, nil
	}
	start := 0
	if rows[0][0] == Header[0] {
		start = 1 // skip header
	}
	out := make([]Record, 0, len(rows)-start)
	for i := start; i < len(rows); i++ {
		row := rows[i]
		rec := Record{Service: row[1]}
		fields := []struct {
			idx int
			dst *float64
		}{
			{0, &rec.TimeS}, {2, &rec.Bytes}, {3, &rec.DurationS}, {4, &rec.Throughput},
		}
		for _, f := range fields {
			v, err := strconv.ParseFloat(row[f.idx], 64)
			if err != nil {
				return nil, fmt.Errorf("trace: csv row %d column %d: %w", i+1, f.idx+1, err)
			}
			*f.dst = v
		}
		if err := rec.Validate(); err != nil {
			return nil, fmt.Errorf("trace: csv row %d: %w", i+1, err)
		}
		out = append(out, rec)
	}
	return out, nil
}

// Summary condenses a trace for reporting. The binary format embeds it
// in its footer so consumers read counts and volume quantiles without
// scanning the record blocks (see ReadSummary).
type Summary struct {
	Sessions   int            `json:"sessions"`
	TotalBytes float64        `json:"total_bytes"`
	Services   map[string]int `json:"services"`
	SpanS      float64        `json:"span_s"` // time of last establishment
	// Volume quantiles of the per-session traffic volume (bytes);
	// zero when the trace is empty.
	VolumeP50 float64 `json:"volume_p50"`
	VolumeP90 float64 `json:"volume_p90"`
	VolumeP99 float64 `json:"volume_p99"`
}

// Summarize computes aggregate statistics of a trace.
func Summarize(records []Record) Summary {
	s := Summary{Services: map[string]int{}}
	volumes := make([]float64, 0, len(records))
	for _, r := range records {
		s.Sessions++
		s.TotalBytes += r.Bytes
		s.Services[r.Service]++
		volumes = append(volumes, r.Bytes)
		if r.TimeS > s.SpanS {
			s.SpanS = r.TimeS
		}
	}
	s.fillQuantiles(volumes)
	return s
}

// fillQuantiles sets the volume quantiles from an (unsorted) sample of
// session volumes.
func (s *Summary) fillQuantiles(volumes []float64) {
	if len(volumes) == 0 {
		return
	}
	sort.Float64s(volumes)
	s.VolumeP50 = mathx.QuantileSorted(volumes, 0.50)
	s.VolumeP90 = mathx.QuantileSorted(volumes, 0.90)
	s.VolumeP99 = mathx.QuantileSorted(volumes, 0.99)
}
