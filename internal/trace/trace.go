// Package trace reads and writes session-level traffic traces: one
// record per transport-layer session with its establishment time,
// service, traffic volume, duration and mean throughput. Two formats
// are supported — CSV with a fixed header, and newline-delimited JSON —
// both round-trip safe. The format is the interchange surface between
// the generator tools (cmd/sessiongen, examples/tracegen) and external
// consumers such as network simulators.
package trace

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strconv"
)

// Record is one session in a trace.
type Record struct {
	TimeS      float64 `json:"time_s"`         // establishment time, seconds from trace origin
	Service    string  `json:"service"`        // service name
	Bytes      float64 `json:"bytes"`          // session traffic volume
	DurationS  float64 `json:"duration_s"`     // session duration
	Throughput float64 `json:"throughput_Bps"` // mean throughput, bytes/second
}

// Validate checks the record's internal consistency.
func (r *Record) Validate() error {
	if r.Service == "" {
		return errors.New("trace: empty service name")
	}
	if r.TimeS < 0 || r.Bytes <= 0 || r.DurationS <= 0 {
		return fmt.Errorf("trace: invalid record (t=%v bytes=%v dur=%v)", r.TimeS, r.Bytes, r.DurationS)
	}
	return nil
}

// Header is the CSV column header.
var Header = []string{"time_s", "service", "bytes", "duration_s", "throughput_Bps"}

// Format selects the trace encoding.
type Format int

// Supported encodings.
const (
	CSV Format = iota
	JSONLines
)

// ParseFormat maps "csv" / "json" to a Format.
func ParseFormat(s string) (Format, error) {
	switch s {
	case "csv":
		return CSV, nil
	case "json", "jsonl":
		return JSONLines, nil
	default:
		return 0, fmt.Errorf("trace: unknown format %q (want csv or json)", s)
	}
}

// Writer streams records to an output.
type Writer struct {
	format Format
	csvw   *csv.Writer
	jsonw  *json.Encoder
	wrote  int
	buf    *bufio.Writer
}

// NewWriter creates a trace writer; for CSV it emits the header
// immediately.
func NewWriter(w io.Writer, format Format) (*Writer, error) {
	buf := bufio.NewWriter(w)
	out := &Writer{format: format, buf: buf}
	switch format {
	case CSV:
		out.csvw = csv.NewWriter(buf)
		if err := out.csvw.Write(Header); err != nil {
			return nil, err
		}
	case JSONLines:
		out.jsonw = json.NewEncoder(buf)
	default:
		return nil, fmt.Errorf("trace: unknown format %d", format)
	}
	return out, nil
}

// Write appends one record.
func (w *Writer) Write(r Record) error {
	if err := r.Validate(); err != nil {
		return err
	}
	w.wrote++
	switch w.format {
	case CSV:
		return w.csvw.Write([]string{
			strconv.FormatFloat(r.TimeS, 'f', 3, 64),
			r.Service,
			strconv.FormatFloat(r.Bytes, 'f', 0, 64),
			strconv.FormatFloat(r.DurationS, 'f', 3, 64),
			strconv.FormatFloat(r.Throughput, 'f', 3, 64),
		})
	default:
		return w.jsonw.Encode(r)
	}
}

// Count returns how many records have been written.
func (w *Writer) Count() int { return w.wrote }

// Flush drains buffered output; call it before closing the underlying
// writer.
func (w *Writer) Flush() error {
	if w.csvw != nil {
		w.csvw.Flush()
		if err := w.csvw.Error(); err != nil {
			return err
		}
	}
	return w.buf.Flush()
}

// Read parses a whole trace from r, auto-detecting the format from the
// first byte ('{' selects JSON lines, anything else CSV).
func Read(r io.Reader) ([]Record, error) {
	br := bufio.NewReader(r)
	first, err := br.Peek(1)
	if err != nil {
		if errors.Is(err, io.EOF) {
			return nil, nil
		}
		return nil, err
	}
	if first[0] == '{' {
		return readJSON(br)
	}
	return readCSV(br)
}

func readJSON(r io.Reader) ([]Record, error) {
	dec := json.NewDecoder(r)
	var out []Record
	for {
		var rec Record
		if err := dec.Decode(&rec); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, fmt.Errorf("trace: json record %d: %w", len(out)+1, err)
		}
		if err := rec.Validate(); err != nil {
			return nil, fmt.Errorf("trace: json record %d: %w", len(out)+1, err)
		}
		out = append(out, rec)
	}
	return out, nil
}

func readCSV(r io.Reader) ([]Record, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(Header)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("trace: csv: %w", err)
	}
	if len(rows) == 0 {
		return nil, nil
	}
	start := 0
	if rows[0][0] == Header[0] {
		start = 1 // skip header
	}
	out := make([]Record, 0, len(rows)-start)
	for i := start; i < len(rows); i++ {
		row := rows[i]
		rec := Record{Service: row[1]}
		fields := []struct {
			idx int
			dst *float64
		}{
			{0, &rec.TimeS}, {2, &rec.Bytes}, {3, &rec.DurationS}, {4, &rec.Throughput},
		}
		for _, f := range fields {
			v, err := strconv.ParseFloat(row[f.idx], 64)
			if err != nil {
				return nil, fmt.Errorf("trace: csv row %d column %d: %w", i+1, f.idx+1, err)
			}
			*f.dst = v
		}
		if err := rec.Validate(); err != nil {
			return nil, fmt.Errorf("trace: csv row %d: %w", i+1, err)
		}
		out = append(out, rec)
	}
	return out, nil
}

// Summary condenses a trace for reporting.
type Summary struct {
	Sessions   int
	TotalBytes float64
	Services   map[string]int
	SpanS      float64 // time of last establishment
}

// Summarize computes aggregate statistics of a trace.
func Summarize(records []Record) Summary {
	s := Summary{Services: map[string]int{}}
	for _, r := range records {
		s.Sessions++
		s.TotalBytes += r.Bytes
		s.Services[r.Service]++
		if r.TimeS > s.SpanS {
			s.SpanS = r.TimeS
		}
	}
	return s
}
