package trace

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
)

// MTTR: the columnar binary trace format. CSV and JSON lines carry a
// nationwide session stream at ~40-80 bytes per record, all of it
// re-parsed float formatting; MTTR stores the same records
// column-contiguous with per-column encodings picked at write time, a
// string table for the service names and a footer that makes the file
// self-describing. The layout, all little-endian:
//
//	magic "MTTR" | version u16
//	sections, each introduced by a one-byte tag:
//	  0x01 dict   svcIndex u32 | nameLen u16 | name bytes
//	              (emitted before the first block referencing the service;
//	               indices are dense and strictly sequential)
//	  0x02 block  n u32 | five columns in order:
//	              TimeS, Service, Bytes, DurationS, Throughput
//	              column: enc u8 | payloadLen u32 | payload
//	  0x03 footer sumLen u32 | Summary JSON
//	trailer: footerOffset u64 | crc32c u32
//	         (Castagnoli, over every preceding byte including the offset)
//
// Column encodings. The writer picks, per column per block, the
// cheapest form that reproduces every value bit-exactly — equality is
// always checked on the raw IEEE-754 bit pattern, so NaNs, negative
// zero and full-precision doubles all take the raw fallback and
// round-trip unchanged:
//
//	0x00 raw      n x f64 bits (service column: n x u32)
//	0x01 varint   service column: n x uvarint index
//	0x02 decimal  n x uvarint(m<<2|k): v = m/10^k, k in 0..3.
//	              Measurement exports are decimal-quantized (the CSV
//	              surface prints %.3f/%.0f), so m is small.
//	0x03 delta    k u8 | uvarint(m0) | (n-1) x zigzag uvarint(m_i-m_{i-1})
//	              (common scale; session establishment times are nearly
//	               sorted, so deltas are tiny)
//	0x04 derived  empty: Throughput_i = Bytes_i / DurationS_i.
//	              The generator computes mean throughput exactly this
//	              way, so the whole column costs zero bytes.
//	0x05 predict  k u8 | n x zigzag uvarint(m_i - pred_i) with
//	              pred_i = round(Bytes_i/DurationS_i * 10^k); the
//	              residual of a quantized throughput against the
//	              quantized volume/duration is a handful of units
//
// The footer carries trace.Summary — session count, total volume,
// per-service counts, time span, volume quantiles — so a consumer can
// answer "what is in this file" by seeking to the trailer
// (ReadSummary) without scanning a single block. The CRC trailer
// follows the MTCP checkpoint codec: a truncated, bit-flipped or torn
// file is an error, never a silently short trace.
const (
	binMagic   = "MTTR"
	BinVersion = 1

	tagDict   = 0x01
	tagBlock  = 0x02
	tagFooter = 0x03

	encRaw     = 0x00
	encVarint  = 0x01
	encDecimal = 0x02
	encDelta   = 0x03
	encDerived = 0x04
	encPredict = 0x05

	// binBlockRecords is the writer's records-per-block batch size:
	// large enough that column contiguity pays, small enough that a
	// streaming consumer sees output early.
	binBlockRecords = 4096
)

// MaxBinBlockRecords caps the per-block record count a reader will
// allocate, guarding against corrupt or hostile headers.
var MaxBinBlockRecords = uint32(1) << 20

// MaxBinDictEntries caps the service string table a reader will hold.
var MaxBinDictEntries = uint32(1) << 16

var binCRCTable = crc32.MakeTable(crc32.Castagnoli)

// binPow10 holds the decimal scales of the decimal/delta/predict
// encodings; all four are exactly representable, and float64 division
// by them is correctly rounded, so writer and reader reconstruct the
// same bit pattern.
var binPow10 = [4]float64{1, 10, 100, 1000}

// decimalParts finds the smallest scale k such that v is exactly m/10^k
// for a non-negative integer m below 2^53 — "exactly" meaning the
// division reproduces v's bit pattern, which rules out NaN, negatives
// (including -0) and full-precision mantissas.
func decimalParts(v float64) (m int64, k int, ok bool) {
	if !(v >= 0) {
		return 0, 0, false
	}
	bits := math.Float64bits(v)
	for k = 0; k < len(binPow10); k++ {
		scaled := v * binPow10[k]
		if scaled >= 1<<53 {
			return 0, 0, false
		}
		m = int64(math.Round(scaled))
		if math.Float64bits(float64(m)/binPow10[k]) == bits {
			return m, k, true
		}
	}
	return 0, 0, false
}

// scaledInt is decimalParts at a fixed scale.
func scaledInt(v float64, k int) (int64, bool) {
	if !(v >= 0) {
		return 0, false
	}
	scaled := v * binPow10[k]
	if scaled >= 1<<53 {
		return 0, false
	}
	m := int64(math.Round(scaled))
	if math.Float64bits(float64(m)/binPow10[k]) != math.Float64bits(v) {
		return 0, false
	}
	return m, true
}

// predDecimal is the shared writer/reader predictor of the throughput
// column: the decimal-scaled throughput implied by the volume and
// duration columns. Both sides compute it from bit-identical decoded
// inputs, so the residuals cancel exactly; out-of-range predictions
// (division by a denormal, absurd volumes) deterministically collapse
// to zero on both sides rather than overflowing int64.
func predDecimal(vol, dur float64, k int) int64 {
	p := vol / dur * binPow10[k]
	if !(math.Abs(p) < 1<<52) {
		return 0
	}
	return int64(math.Round(p))
}

func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// binCountingWriter accumulates a CRC-32C and a byte offset over
// everything written through it.
type binCountingWriter struct {
	w   io.Writer
	crc uint32
	off uint64
}

func (cw *binCountingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.crc = crc32.Update(cw.crc, binCRCTable, p[:n])
	cw.off += uint64(n)
	return n, err
}

// binWriter is the streaming MTTR block writer behind Writer.
type binWriter struct {
	cw      *binCountingWriter
	scratch []byte
	colbuf  []byte
	dict    map[string]uint32

	// Pending block columns.
	times, volumes, durs, thrs []float64
	svcs                       []uint32

	// Footer accumulators.
	sum        Summary
	allVolumes []float64

	finished bool
}

func newBinWriter(w io.Writer) (*binWriter, error) {
	bw := &binWriter{
		cw:      &binCountingWriter{w: w},
		scratch: make([]byte, 16),
		dict:    make(map[string]uint32),
	}
	bw.sum.Services = map[string]int{}
	if _, err := bw.cw.Write([]byte(binMagic)); err != nil {
		return nil, err
	}
	binary.LittleEndian.PutUint16(bw.scratch[:2], BinVersion)
	if _, err := bw.cw.Write(bw.scratch[:2]); err != nil {
		return nil, err
	}
	return bw, nil
}

// svcIndex interns the service name, emitting a dict section on first
// sight.
func (bw *binWriter) svcIndex(name string) (uint32, error) {
	if idx, ok := bw.dict[name]; ok {
		return idx, nil
	}
	if uint32(len(bw.dict)) >= MaxBinDictEntries {
		return 0, fmt.Errorf("trace: bin: more than %d distinct services", MaxBinDictEntries)
	}
	if len(name) > math.MaxUint16 {
		return 0, fmt.Errorf("trace: bin: service name %d bytes long", len(name))
	}
	idx := uint32(len(bw.dict))
	b := bw.scratch[:7]
	b[0] = tagDict
	binary.LittleEndian.PutUint32(b[1:5], idx)
	binary.LittleEndian.PutUint16(b[5:7], uint16(len(name)))
	if _, err := bw.cw.Write(b); err != nil {
		return 0, err
	}
	if _, err := io.WriteString(bw.cw, name); err != nil {
		return 0, err
	}
	bw.dict[name] = idx
	return idx, nil
}

// add queues one (already validated) record, flushing a full block.
func (bw *binWriter) add(r Record) error {
	if bw.finished {
		return fmt.Errorf("trace: bin: write after Flush finalized the trace")
	}
	idx, err := bw.svcIndex(r.Service)
	if err != nil {
		return err
	}
	bw.times = append(bw.times, r.TimeS)
	bw.svcs = append(bw.svcs, idx)
	bw.volumes = append(bw.volumes, r.Bytes)
	bw.durs = append(bw.durs, r.DurationS)
	bw.thrs = append(bw.thrs, r.Throughput)

	bw.sum.Sessions++
	bw.sum.TotalBytes += r.Bytes
	bw.sum.Services[r.Service]++
	if r.TimeS > bw.sum.SpanS {
		bw.sum.SpanS = r.TimeS
	}
	bw.allVolumes = append(bw.allVolumes, r.Bytes)

	if len(bw.times) == binBlockRecords {
		return bw.flushBlock()
	}
	return nil
}

// writeColumn frames one encoded column: enc byte, payload length,
// payload.
func (bw *binWriter) writeColumn(enc byte, payload []byte) error {
	h := bw.scratch[:5]
	h[0] = enc
	binary.LittleEndian.PutUint32(h[1:5], uint32(len(payload)))
	if _, err := bw.cw.Write(h); err != nil {
		return err
	}
	_, err := bw.cw.Write(payload)
	return err
}

// encodeRawF64 appends the column as raw IEEE-754 bit patterns.
func encodeRawF64(vs []float64, buf []byte) []byte {
	for _, v := range vs {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	return buf
}

// encodeDecimal appends the per-value scaled-decimal form, failing if
// any value is not decimal-exact.
func encodeDecimal(vs []float64, buf []byte) ([]byte, bool) {
	for _, v := range vs {
		m, k, ok := decimalParts(v)
		if !ok {
			return nil, false
		}
		buf = binary.AppendUvarint(buf, uint64(m)<<2|uint64(k))
	}
	return buf, true
}

// encodeDelta appends the common-scale delta form: the column's
// maximal per-value scale, the first scaled value, then zigzag deltas.
func encodeDelta(vs []float64, buf []byte) ([]byte, bool) {
	maxK := 0
	for _, v := range vs {
		_, k, ok := decimalParts(v)
		if !ok {
			return nil, false
		}
		if k > maxK {
			maxK = k
		}
	}
	buf = append(buf, byte(maxK))
	prev := int64(0)
	for i, v := range vs {
		m, ok := scaledInt(v, maxK)
		if !ok {
			return nil, false
		}
		if i == 0 {
			buf = binary.AppendUvarint(buf, uint64(m))
		} else {
			buf = binary.AppendUvarint(buf, zigzag(m-prev))
		}
		prev = m
	}
	return buf, true
}

// encodeDerived succeeds when every throughput equals Bytes/DurationS
// bit-exactly — the generator's own arithmetic — making the column
// free.
func encodeDerived(thrs, vols, durs []float64) bool {
	for i, v := range thrs {
		if math.Float64bits(v) != math.Float64bits(vols[i]/durs[i]) {
			return false
		}
	}
	return true
}

// encodePredict appends decimal-scaled residuals of the throughput
// column against the volume/duration predictor.
func encodePredict(thrs, vols, durs []float64, buf []byte) ([]byte, bool) {
	maxK := 0
	for _, v := range thrs {
		_, k, ok := decimalParts(v)
		if !ok {
			return nil, false
		}
		if k > maxK {
			maxK = k
		}
	}
	buf = append(buf, byte(maxK))
	for i, v := range thrs {
		m, ok := scaledInt(v, maxK)
		if !ok {
			return nil, false
		}
		buf = binary.AppendUvarint(buf, zigzag(m-predDecimal(vols[i], durs[i], maxK)))
	}
	return buf, true
}

// flushBlock writes the pending columns as one block section, picking
// each column's encoding.
func (bw *binWriter) flushBlock() error {
	n := len(bw.times)
	if n == 0 {
		return nil
	}
	b := bw.scratch[:5]
	b[0] = tagBlock
	binary.LittleEndian.PutUint32(b[1:5], uint32(n))
	if _, err := bw.cw.Write(b); err != nil {
		return err
	}

	emit := func(enc byte, payload []byte) error {
		err := bw.writeColumn(enc, payload)
		if cap(payload) > cap(bw.colbuf) {
			bw.colbuf = payload[:0]
		}
		return err
	}

	// TimeS: establishment times are nearly sorted and quantized in
	// measurement exports — delta first, then per-value decimal, then
	// raw.
	if payload, ok := encodeDelta(bw.times, bw.colbuf[:0]); ok {
		if err := emit(encDelta, payload); err != nil {
			return err
		}
	} else if payload, ok := encodeDecimal(bw.times, bw.colbuf[:0]); ok {
		if err := emit(encDecimal, payload); err != nil {
			return err
		}
	} else if err := emit(encRaw, encodeRawF64(bw.times, bw.colbuf[:0])); err != nil {
		return err
	}

	// Service: dense dictionary indices, almost always one byte.
	svcPayload := bw.colbuf[:0]
	for _, s := range bw.svcs {
		svcPayload = binary.AppendUvarint(svcPayload, uint64(s))
	}
	if err := emit(encVarint, svcPayload); err != nil {
		return err
	}

	// Bytes and DurationS: decimal when quantized, raw otherwise.
	for _, col := range [][]float64{bw.volumes, bw.durs} {
		if payload, ok := encodeDecimal(col, bw.colbuf[:0]); ok {
			if err := emit(encDecimal, payload); err != nil {
				return err
			}
		} else if err := emit(encRaw, encodeRawF64(col, bw.colbuf[:0])); err != nil {
			return err
		}
	}

	// Throughput: free when it is exactly Bytes/DurationS, tiny
	// residuals when quantized, raw otherwise.
	switch {
	case encodeDerived(bw.thrs, bw.volumes, bw.durs):
		if err := emit(encDerived, nil); err != nil {
			return err
		}
	default:
		if payload, ok := encodePredict(bw.thrs, bw.volumes, bw.durs, bw.colbuf[:0]); ok {
			if err := emit(encPredict, payload); err != nil {
				return err
			}
		} else if err := emit(encRaw, encodeRawF64(bw.thrs, bw.colbuf[:0])); err != nil {
			return err
		}
	}

	bw.times = bw.times[:0]
	bw.svcs = bw.svcs[:0]
	bw.volumes = bw.volumes[:0]
	bw.durs = bw.durs[:0]
	bw.thrs = bw.thrs[:0]
	return nil
}

// finish flushes the last block and writes the footer and trailer.
// Idempotent: later calls are no-ops.
func (bw *binWriter) finish() error {
	if bw.finished {
		return nil
	}
	if err := bw.flushBlock(); err != nil {
		return err
	}
	bw.finished = true
	bw.sum.fillQuantiles(bw.allVolumes)
	bw.allVolumes = nil
	sumJSON, err := json.Marshal(bw.sum)
	if err != nil {
		return fmt.Errorf("trace: bin: summary encode: %w", err)
	}
	footerOff := bw.cw.off
	b := bw.scratch[:5]
	b[0] = tagFooter
	binary.LittleEndian.PutUint32(b[1:5], uint32(len(sumJSON)))
	if _, err := bw.cw.Write(b); err != nil {
		return err
	}
	if _, err := bw.cw.Write(sumJSON); err != nil {
		return err
	}
	binary.LittleEndian.PutUint64(bw.scratch[:8], footerOff)
	if _, err := bw.cw.Write(bw.scratch[:8]); err != nil {
		return err
	}
	// The CRC covers everything up to and including the footer offset;
	// it is written outside its own checksum, directly to the
	// underlying writer.
	binary.LittleEndian.PutUint32(bw.scratch[:4], bw.cw.crc)
	_, err = bw.cw.w.Write(bw.scratch[:4])
	return err
}

// --- reading ----------------------------------------------------------

// binCountingReader accumulates a CRC-32C and a byte offset over
// everything read through it.
type binCountingReader struct {
	r   io.Reader
	crc uint32
	off uint64
}

func (cr *binCountingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.crc = crc32.Update(cr.crc, binCRCTable, p[:n])
	cr.off += uint64(n)
	return n, err
}

// binColumn is one framed column read off the stream.
type binColumn struct {
	enc     byte
	payload []byte
}

// uvarints decodes exactly n uvarints spanning the whole payload.
func uvarints(payload []byte, n int) ([]uint64, error) {
	out := make([]uint64, n)
	pos := 0
	for i := range out {
		v, w := binary.Uvarint(payload[pos:])
		if w <= 0 {
			return nil, fmt.Errorf("varint %d truncated", i)
		}
		out[i] = v
		pos += w
	}
	if pos != len(payload) {
		return nil, fmt.Errorf("%d trailing payload bytes", len(payload)-pos)
	}
	return out, nil
}

// decodeFloatColumn reconstructs a float column. The derived and
// predict encodings consume the previously decoded volume and duration
// columns (nil for the columns before them, which also forbids those
// encodings there).
func decodeFloatColumn(col binColumn, n int, vols, durs []float64) ([]float64, error) {
	out := make([]float64, n)
	switch col.enc {
	case encRaw:
		if len(col.payload) != n*8 {
			return nil, fmt.Errorf("raw column carries %d bytes, want %d", len(col.payload), n*8)
		}
		for i := range out {
			out[i] = math.Float64frombits(binary.LittleEndian.Uint64(col.payload[i*8:]))
		}
	case encDecimal:
		vs, err := uvarints(col.payload, n)
		if err != nil {
			return nil, err
		}
		for i, v := range vs {
			k := v & 3
			out[i] = float64(v>>2) / binPow10[k]
		}
	case encDelta:
		if len(col.payload) < 1 {
			return nil, fmt.Errorf("delta column missing scale")
		}
		k := int(col.payload[0])
		if k >= len(binPow10) {
			return nil, fmt.Errorf("delta column scale %d", k)
		}
		vs, err := uvarints(col.payload[1:], n)
		if err != nil {
			return nil, err
		}
		m := int64(0)
		for i, v := range vs {
			if i == 0 {
				m = int64(v)
			} else {
				m += unzigzag(v)
			}
			out[i] = float64(m) / binPow10[k]
		}
	case encDerived:
		if vols == nil {
			return nil, fmt.Errorf("derived encoding outside the throughput column")
		}
		if len(col.payload) != 0 {
			return nil, fmt.Errorf("derived column carries %d payload bytes", len(col.payload))
		}
		for i := range out {
			out[i] = vols[i] / durs[i]
		}
	case encPredict:
		if vols == nil {
			return nil, fmt.Errorf("predict encoding outside the throughput column")
		}
		if len(col.payload) < 1 {
			return nil, fmt.Errorf("predict column missing scale")
		}
		k := int(col.payload[0])
		if k >= len(binPow10) {
			return nil, fmt.Errorf("predict column scale %d", k)
		}
		vs, err := uvarints(col.payload[1:], n)
		if err != nil {
			return nil, err
		}
		for i, v := range vs {
			m := predDecimal(vols[i], durs[i], k) + unzigzag(v)
			out[i] = float64(m) / binPow10[k]
		}
	default:
		return nil, fmt.Errorf("float column encoding %#02x", col.enc)
	}
	return out, nil
}

// decodeServiceColumn reconstructs the service index column.
func decodeServiceColumn(col binColumn, n int) ([]uint32, error) {
	out := make([]uint32, n)
	switch col.enc {
	case encRaw:
		if len(col.payload) != n*4 {
			return nil, fmt.Errorf("raw service column carries %d bytes, want %d", len(col.payload), n*4)
		}
		for i := range out {
			out[i] = binary.LittleEndian.Uint32(col.payload[i*4:])
		}
	case encVarint:
		vs, err := uvarints(col.payload, n)
		if err != nil {
			return nil, err
		}
		for i, v := range vs {
			if v > math.MaxUint32 {
				return nil, fmt.Errorf("service index %d overflows", v)
			}
			out[i] = uint32(v)
		}
	default:
		return nil, fmt.Errorf("service column encoding %#02x", col.enc)
	}
	return out, nil
}

// readBin decodes a whole MTTR stream: dict and block sections in
// order, the footer, and the CRC trailer. Any structural violation —
// unknown tag, out-of-range service index, bad trailer — is an error,
// never a panic or a silently short result.
func readBin(r io.Reader) ([]Record, error) {
	cr := &binCountingReader{r: r}
	var scratch [8]byte
	if _, err := io.ReadFull(cr, scratch[:6]); err != nil {
		return nil, fmt.Errorf("trace: bin header: %w", err)
	}
	if string(scratch[:4]) != binMagic {
		return nil, fmt.Errorf("trace: not an MTTR trace (magic %q)", scratch[:4])
	}
	if v := binary.LittleEndian.Uint16(scratch[4:6]); v != BinVersion {
		return nil, fmt.Errorf("trace: unsupported MTTR version %d (have %d)", v, BinVersion)
	}
	var (
		dict    []string
		out     []Record
		footOff uint64
		sawFoot bool
	)
	readColumn := func(n uint32) (binColumn, error) {
		var h [5]byte
		if _, err := io.ReadFull(cr, h[:]); err != nil {
			return binColumn{}, fmt.Errorf("column header: %w", err)
		}
		plen := binary.LittleEndian.Uint32(h[1:5])
		if plen > 10*n+16 {
			return binColumn{}, fmt.Errorf("column declares %d payload bytes for %d records", plen, n)
		}
		payload := make([]byte, plen)
		if _, err := io.ReadFull(cr, payload); err != nil {
			return binColumn{}, fmt.Errorf("column payload: %w", err)
		}
		return binColumn{enc: h[0], payload: payload}, nil
	}
	for !sawFoot {
		sectionOff := cr.off
		if _, err := io.ReadFull(cr, scratch[:1]); err != nil {
			return nil, fmt.Errorf("trace: bin section tag: %w", err)
		}
		switch scratch[0] {
		case tagDict:
			if _, err := io.ReadFull(cr, scratch[:6]); err != nil {
				return nil, fmt.Errorf("trace: bin dict entry: %w", err)
			}
			idx := binary.LittleEndian.Uint32(scratch[:4])
			if idx != uint32(len(dict)) || idx >= MaxBinDictEntries {
				return nil, fmt.Errorf("trace: bin dict index %d (want %d)", idx, len(dict))
			}
			nameLen := int(binary.LittleEndian.Uint16(scratch[4:6]))
			name := make([]byte, nameLen)
			if _, err := io.ReadFull(cr, name); err != nil {
				return nil, fmt.Errorf("trace: bin dict name: %w", err)
			}
			dict = append(dict, string(name))
		case tagBlock:
			if _, err := io.ReadFull(cr, scratch[:4]); err != nil {
				return nil, fmt.Errorf("trace: bin block header: %w", err)
			}
			n := binary.LittleEndian.Uint32(scratch[:4])
			if n == 0 || n > MaxBinBlockRecords {
				return nil, fmt.Errorf("trace: bin block declares %d records", n)
			}
			cols := make([]binColumn, 5)
			for i := range cols {
				col, err := readColumn(n)
				if err != nil {
					return nil, fmt.Errorf("trace: bin block: %w", err)
				}
				cols[i] = col
			}
			times, err := decodeFloatColumn(cols[0], int(n), nil, nil)
			if err != nil {
				return nil, fmt.Errorf("trace: bin block times: %w", err)
			}
			svcs, err := decodeServiceColumn(cols[1], int(n))
			if err != nil {
				return nil, fmt.Errorf("trace: bin block services: %w", err)
			}
			for _, s := range svcs {
				if s >= uint32(len(dict)) {
					return nil, fmt.Errorf("trace: bin service index %d outside %d-entry dict", s, len(dict))
				}
			}
			volumes, err := decodeFloatColumn(cols[2], int(n), nil, nil)
			if err != nil {
				return nil, fmt.Errorf("trace: bin block volumes: %w", err)
			}
			durs, err := decodeFloatColumn(cols[3], int(n), nil, nil)
			if err != nil {
				return nil, fmt.Errorf("trace: bin block durations: %w", err)
			}
			thrs, err := decodeFloatColumn(cols[4], int(n), volumes, durs)
			if err != nil {
				return nil, fmt.Errorf("trace: bin block throughputs: %w", err)
			}
			base := len(out)
			out = append(out, make([]Record, n)...)
			for i := 0; i < int(n); i++ {
				rec := Record{
					TimeS:      times[i],
					Service:    dict[svcs[i]],
					Bytes:      volumes[i],
					DurationS:  durs[i],
					Throughput: thrs[i],
				}
				if err := rec.Validate(); err != nil {
					return nil, fmt.Errorf("trace: bin record %d: %w", base+i+1, err)
				}
				out[base+i] = rec
			}
		case tagFooter:
			footOff = sectionOff
			if _, err := io.ReadFull(cr, scratch[:4]); err != nil {
				return nil, fmt.Errorf("trace: bin footer length: %w", err)
			}
			sumLen := binary.LittleEndian.Uint32(scratch[:4])
			if sumLen > 1<<24 {
				return nil, fmt.Errorf("trace: bin footer declares %d summary bytes", sumLen)
			}
			sumJSON := make([]byte, sumLen)
			if _, err := io.ReadFull(cr, sumJSON); err != nil {
				return nil, fmt.Errorf("trace: bin footer summary: %w", err)
			}
			var sum Summary
			if err := json.Unmarshal(sumJSON, &sum); err != nil {
				return nil, fmt.Errorf("trace: bin footer summary: %w", err)
			}
			if sum.Sessions != len(out) {
				return nil, fmt.Errorf("trace: bin footer says %d sessions, blocks carry %d", sum.Sessions, len(out))
			}
			sawFoot = true
		default:
			return nil, fmt.Errorf("trace: bin unknown section tag %#02x", scratch[0])
		}
	}
	// Trailer: footer offset folds into the CRC, the CRC itself does
	// not.
	if _, err := io.ReadFull(cr, scratch[:8]); err != nil {
		return nil, fmt.Errorf("trace: bin trailer: %w", err)
	}
	if got := binary.LittleEndian.Uint64(scratch[:8]); got != footOff {
		return nil, fmt.Errorf("trace: bin trailer footer offset %d, footer at %d", got, footOff)
	}
	want := cr.crc
	if _, err := io.ReadFull(cr.r, scratch[:4]); err != nil {
		return nil, fmt.Errorf("trace: bin trailer CRC: %w", err)
	}
	if got := binary.LittleEndian.Uint32(scratch[:4]); got != want {
		return nil, fmt.Errorf("trace: bin CRC mismatch (stored %08x, computed %08x)", got, want)
	}
	if _, err := io.ReadFull(cr.r, scratch[:1]); err != io.EOF {
		return nil, fmt.Errorf("trace: trailing bytes after MTTR trailer")
	}
	return out, nil
}

// ReadSummary reads the embedded Summary of an MTTR trace by seeking
// straight to the footer through the trailer — no record block is
// touched, so it is O(footer) regardless of trace size. The CRC
// protects the whole file and is only verified by a full Read; this
// fast path validates the structural invariants it traverses (magic,
// version, trailer offset, footer framing).
func ReadSummary(rs io.ReadSeeker) (Summary, error) {
	var scratch [12]byte
	if _, err := rs.Seek(0, io.SeekStart); err != nil {
		return Summary{}, fmt.Errorf("trace: bin summary: %w", err)
	}
	if _, err := io.ReadFull(rs, scratch[:6]); err != nil {
		return Summary{}, fmt.Errorf("trace: bin summary header: %w", err)
	}
	if string(scratch[:4]) != binMagic {
		return Summary{}, fmt.Errorf("trace: not an MTTR trace (magic %q)", scratch[:4])
	}
	if v := binary.LittleEndian.Uint16(scratch[4:6]); v != BinVersion {
		return Summary{}, fmt.Errorf("trace: unsupported MTTR version %d (have %d)", v, BinVersion)
	}
	end, err := rs.Seek(-12, io.SeekEnd)
	if err != nil {
		return Summary{}, fmt.Errorf("trace: bin summary trailer: %w", err)
	}
	if _, err := io.ReadFull(rs, scratch[:12]); err != nil {
		return Summary{}, fmt.Errorf("trace: bin summary trailer: %w", err)
	}
	footOff := binary.LittleEndian.Uint64(scratch[:8])
	if footOff < 6 || footOff >= uint64(end) {
		return Summary{}, fmt.Errorf("trace: bin summary: footer offset %d out of range", footOff)
	}
	if _, err := rs.Seek(int64(footOff), io.SeekStart); err != nil {
		return Summary{}, fmt.Errorf("trace: bin summary: %w", err)
	}
	if _, err := io.ReadFull(rs, scratch[:5]); err != nil {
		return Summary{}, fmt.Errorf("trace: bin summary footer: %w", err)
	}
	if scratch[0] != tagFooter {
		return Summary{}, fmt.Errorf("trace: bin summary: tag %#02x at footer offset", scratch[0])
	}
	sumLen := binary.LittleEndian.Uint32(scratch[1:5])
	if uint64(footOff)+5+uint64(sumLen) != uint64(end) {
		return Summary{}, fmt.Errorf("trace: bin summary: footer length %d inconsistent with trailer", sumLen)
	}
	sumJSON := make([]byte, sumLen)
	if _, err := io.ReadFull(rs, sumJSON); err != nil {
		return Summary{}, fmt.Errorf("trace: bin summary read: %w", err)
	}
	var sum Summary
	if err := json.Unmarshal(sumJSON, &sum); err != nil {
		return Summary{}, fmt.Errorf("trace: bin summary decode: %w", err)
	}
	return sum, nil
}

// ReadSummaryFile is ReadSummary over a file path.
func ReadSummaryFile(path string) (Summary, error) {
	f, err := os.Open(path)
	if err != nil {
		return Summary{}, fmt.Errorf("trace: bin summary: %w", err)
	}
	defer f.Close()
	return ReadSummary(f)
}
