package trace

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func sampleRecords() []Record {
	return []Record{
		{TimeS: 0, Service: "Netflix", Bytes: 40e6, DurationS: 600, Throughput: 40e6 / 600},
		{TimeS: 12.5, Service: "Facebook", Bytes: 200e3, DurationS: 120, Throughput: 200e3 / 120},
		{TimeS: 59.9, Service: "Waze", Bytes: 50e3, DurationS: 300, Throughput: 50e3 / 300},
	}
}

func TestCSVRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, CSV)
	if err != nil {
		t.Fatal(err)
	}
	recs := sampleRecords()
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 3 {
		t.Errorf("count = %d", w.Count())
	}
	if !strings.HasPrefix(buf.String(), "time_s,service,bytes,duration_s,throughput_Bps\n") {
		t.Errorf("missing header: %q", buf.String()[:50])
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(recs) {
		t.Fatalf("round trip lost records: %d", len(back))
	}
	for i := range recs {
		if back[i].Service != recs[i].Service {
			t.Errorf("record %d service %q", i, back[i].Service)
		}
		if math.Abs(back[i].Bytes-recs[i].Bytes) > 1 {
			t.Errorf("record %d bytes %v", i, back[i].Bytes)
		}
		if math.Abs(back[i].TimeS-recs[i].TimeS) > 0.01 {
			t.Errorf("record %d time %v", i, back[i].TimeS)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, JSONLines)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range sampleRecords() {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 3 {
		t.Fatalf("records = %d", len(back))
	}
	// JSON preserves exact floats.
	if back[0].Bytes != 40e6 || back[0].DurationS != 600 {
		t.Errorf("record 0 = %+v", back[0])
	}
}

func TestReadAutodetect(t *testing.T) {
	csvIn := "time_s,service,bytes,duration_s,throughput_Bps\n1.000,\"X\",100,2.000,50.000\n"
	recs, err := Read(strings.NewReader(csvIn))
	if err != nil || len(recs) != 1 {
		t.Fatalf("csv autodetect: %v, %d", err, len(recs))
	}
	jsonIn := `{"time_s":1,"service":"X","bytes":100,"duration_s":2,"throughput_Bps":50}` + "\n"
	recs, err = Read(strings.NewReader(jsonIn))
	if err != nil || len(recs) != 1 {
		t.Fatalf("json autodetect: %v, %d", err, len(recs))
	}
	recs, err = Read(strings.NewReader(""))
	if err != nil || len(recs) != 0 {
		t.Fatalf("empty input: %v, %d", err, len(recs))
	}
}

func TestReadRejectsInvalid(t *testing.T) {
	bad := []string{
		"time_s,service,bytes,duration_s,throughput_Bps\nnope,\"X\",100,2,50\n", // bad float
		"time_s,service,bytes,duration_s,throughput_Bps\n1,\"X\",0,2,0\n",       // zero bytes
		`{"time_s":-1,"service":"X","bytes":1,"duration_s":1}` + "\n",           // negative time
		`{"garbage`, // malformed JSON
	}
	for i, in := range bad {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestWriteRejectsInvalid(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, CSV)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(Record{Service: "", Bytes: 1, DurationS: 1}); err == nil {
		t.Error("empty service must error")
	}
	if err := w.Write(Record{Service: "X", Bytes: -5, DurationS: 1}); err == nil {
		t.Error("negative bytes must error")
	}
}

func TestParseFormat(t *testing.T) {
	if f, err := ParseFormat("csv"); err != nil || f != CSV {
		t.Error("csv")
	}
	if f, err := ParseFormat("json"); err != nil || f != JSONLines {
		t.Error("json")
	}
	if f, err := ParseFormat("jsonl"); err != nil || f != JSONLines {
		t.Error("jsonl")
	}
	if _, err := ParseFormat("xml"); err == nil {
		t.Error("unknown format must error")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize(sampleRecords())
	if s.Sessions != 3 || s.Services["Netflix"] != 1 {
		t.Errorf("summary = %+v", s)
	}
	if math.Abs(s.TotalBytes-(40e6+200e3+50e3)) > 1 {
		t.Errorf("total bytes = %v", s.TotalBytes)
	}
	if s.SpanS != 59.9 {
		t.Errorf("span = %v", s.SpanS)
	}
	empty := Summarize(nil)
	if empty.Sessions != 0 || empty.TotalBytes != 0 {
		t.Errorf("empty summary = %+v", empty)
	}
}

// Property: any valid record survives a CSV round trip within
// formatting precision.
func TestCSVRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rec := Record{
			TimeS:      rng.Float64() * 86400,
			Service:    "svc-" + string(rune('a'+rng.Intn(26))),
			Bytes:      1 + rng.Float64()*1e9,
			DurationS:  0.001 + rng.Float64()*1e4,
			Throughput: rng.Float64() * 1e7,
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf, CSV)
		if err != nil {
			return false
		}
		if err := w.Write(rec); err != nil {
			return false
		}
		if err := w.Flush(); err != nil {
			return false
		}
		back, err := Read(&buf)
		if err != nil || len(back) != 1 {
			return false
		}
		return back[0].Service == rec.Service &&
			math.Abs(back[0].TimeS-rec.TimeS) < 0.01 &&
			math.Abs(back[0].Bytes-rec.Bytes) < 1 &&
			math.Abs(back[0].DurationS-rec.DurationS) < 0.01
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
