package trace

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// writeTrace encodes records in the given format and returns the bytes.
func writeTrace(t testing.TB, recs []Record, f Format) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, f)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// sameBits fails unless a and b are field-for-field bit-identical.
func sameBits(t *testing.T, what string, a, b []Record) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d records vs %d", what, len(a), len(b))
	}
	for i := range a {
		if a[i].Service != b[i].Service {
			t.Fatalf("%s: record %d service %q vs %q", what, i, a[i].Service, b[i].Service)
		}
		pairs := [][2]float64{
			{a[i].TimeS, b[i].TimeS},
			{a[i].Bytes, b[i].Bytes},
			{a[i].DurationS, b[i].DurationS},
			{a[i].Throughput, b[i].Throughput},
		}
		for j, p := range pairs {
			if math.Float64bits(p[0]) != math.Float64bits(p[1]) {
				t.Fatalf("%s: record %d field %d: %x vs %x (%v vs %v)",
					what, i, j, math.Float64bits(p[0]), math.Float64bits(p[1]), p[0], p[1])
			}
		}
	}
}

// generatorRecords builds n records the way the generator does:
// full-precision volumes and durations, throughput exactly
// volume/duration — the population that exercises the derived
// throughput encoding and the raw float fallbacks.
func generatorRecords(n int, seed int64) []Record {
	rng := rand.New(rand.NewSource(seed))
	svcs := []string{"Netflix", "Twitch", "Waze", "Google Meet", "Pokemon GO"}
	out := make([]Record, n)
	tm := 0.0
	for i := range out {
		tm += rng.Float64() * 2
		vol := 100 + math.Exp(rng.NormFloat64()*2+12)
		dur := 0.5 + math.Exp(rng.NormFloat64()+3)
		out[i] = Record{
			TimeS:      tm,
			Service:    svcs[rng.Intn(len(svcs))],
			Bytes:      vol,
			DurationS:  dur,
			Throughput: vol / dur,
		}
	}
	return out
}

// canonicalRecords is generatorRecords round-tripped once through the
// CSV surface: decimal-quantized values, the interchange population the
// compact encodings target.
func canonicalRecords(t testing.TB, n int, seed int64) []Record {
	t.Helper()
	recs, err := Read(bytes.NewReader(writeTrace(t, generatorRecords(n, seed), CSV)))
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

func TestBinRoundTripGenerator(t *testing.T) {
	recs := generatorRecords(500, 1)
	back, err := Read(bytes.NewReader(writeTrace(t, recs, Bin)))
	if err != nil {
		t.Fatal(err)
	}
	sameBits(t, "generator", recs, back)
}

func TestBinRoundTripCanonical(t *testing.T) {
	recs := canonicalRecords(t, 500, 2)
	back, err := Read(bytes.NewReader(writeTrace(t, recs, Bin)))
	if err != nil {
		t.Fatal(err)
	}
	sameBits(t, "canonical", recs, back)
}

// TestBinRoundTripMultiBlock crosses the block boundary (4096 records
// per block) with a dict that keeps growing mid-stream.
func TestBinRoundTripMultiBlock(t *testing.T) {
	recs := generatorRecords(3*binBlockRecords+17, 3)
	for i := range recs {
		if i%1000 == 0 {
			recs[i].Service = "late-" + string(rune('a'+i/1000))
		}
	}
	back, err := Read(bytes.NewReader(writeTrace(t, recs, Bin)))
	if err != nil {
		t.Fatal(err)
	}
	sameBits(t, "multiblock", recs, back)
}

// TestBinRoundTripHostileFloats pins the raw fallback: full-precision
// mantissas, denormals, huge values and unsorted times must all take
// the raw encoding and survive bit-exactly.
func TestBinRoundTripHostileFloats(t *testing.T) {
	recs := []Record{
		{TimeS: math.Pi, Service: "x", Bytes: math.Nextafter(1, 2), DurationS: 5e-324, Throughput: math.MaxFloat64},
		{TimeS: 0, Service: "x", Bytes: 1e300, DurationS: math.Pi, Throughput: -math.MaxFloat64},
		{TimeS: 86400.000001, Service: "y", Bytes: 0.001, DurationS: 1e-10, Throughput: 0},
	}
	back, err := Read(bytes.NewReader(writeTrace(t, recs, Bin)))
	if err != nil {
		t.Fatal(err)
	}
	sameBits(t, "hostile", recs, back)
}

func TestBinEmptyTrace(t *testing.T) {
	data := writeTrace(t, nil, Bin)
	back, err := Read(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 0 {
		t.Fatalf("empty trace decoded %d records", len(back))
	}
}

// TestBinCompactEncodings pins the size story: the canonical
// (CSV-quantized) population must encode far smaller than both the raw
// float fallback and the CSV text it came from, and the generator
// population must get the throughput column for free.
func TestBinCompactEncodings(t *testing.T) {
	n := 5000
	canonical := canonicalRecords(t, n, 4)
	csvSize := len(writeTrace(t, canonical, CSV))
	binSize := len(writeTrace(t, canonical, Bin))
	if binSize*3 > csvSize {
		t.Errorf("canonical bin = %d bytes, csv = %d: want >=3x smaller", binSize, csvSize)
	}

	gen := generatorRecords(n, 5)
	genBin := len(writeTrace(t, gen, Bin))
	// Raw fallback costs 8B for time/bytes/duration plus ~1B service;
	// the derived throughput column must not add another 8B per record.
	if perRec := float64(genBin) / float64(n); perRec > 27 {
		t.Errorf("generator bin = %.1f B/record: derived throughput encoding not engaged", perRec)
	}
}

func TestBinRejectsCorruption(t *testing.T) {
	data := writeTrace(t, generatorRecords(300, 6), Bin)

	// Any single flipped byte must fail the CRC (or a structural check
	// before it) — sample positions across header, dict, blocks, footer
	// and trailer.
	for _, pos := range []int{0, 5, 10, len(data) / 2, len(data) - 13, len(data) - 6, len(data) - 1} {
		mut := append([]byte(nil), data...)
		mut[pos] ^= 0x40
		if _, err := Read(bytes.NewReader(mut)); err == nil {
			t.Errorf("flipped byte %d of %d: read succeeded", pos, len(data))
		}
	}

	// Truncation at any boundary is an error, never a short result.
	for _, cut := range []int{3, 6, 20, len(data) / 2, len(data) - 12, len(data) - 4, len(data) - 1} {
		if _, err := Read(bytes.NewReader(data[:cut])); err == nil {
			t.Errorf("truncated to %d of %d: read succeeded", cut, len(data))
		}
	}

	// Trailing garbage after the trailer is an error.
	if _, err := Read(bytes.NewReader(append(append([]byte(nil), data...), 0))); err == nil {
		t.Error("trailing byte accepted")
	}

	// A torn-off trailer whose stored CRC no longer matches.
	mut := append([]byte(nil), data...)
	mut[len(data)-2] ^= 0xff
	if _, err := Read(bytes.NewReader(mut)); err == nil || !strings.Contains(err.Error(), "CRC") {
		t.Errorf("corrupt CRC: err = %v", err)
	}
}

func TestBinVersionGate(t *testing.T) {
	data := writeTrace(t, generatorRecords(3, 7), Bin)
	mut := append([]byte(nil), data...)
	mut[4] = 0x7f // version low byte
	if _, err := Read(bytes.NewReader(mut)); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("future version: err = %v", err)
	}
}

func TestReadSummaryFastPath(t *testing.T) {
	recs := generatorRecords(2000, 8)
	data := writeTrace(t, recs, Bin)
	sum, err := ReadSummary(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	want := Summarize(recs)
	if sum.Sessions != want.Sessions || sum.TotalBytes != want.TotalBytes || sum.SpanS != want.SpanS {
		t.Fatalf("summary = %+v, want %+v", sum, want)
	}
	if sum.VolumeP50 != want.VolumeP50 || sum.VolumeP99 != want.VolumeP99 {
		t.Fatalf("quantiles = %v/%v, want %v/%v", sum.VolumeP50, sum.VolumeP99, want.VolumeP50, want.VolumeP99)
	}
	if len(sum.Services) != len(want.Services) {
		t.Fatalf("services = %v", sum.Services)
	}

	// Structural errors on the fast path.
	if _, err := ReadSummary(bytes.NewReader(data[:20])); err == nil {
		t.Error("truncated trace: ReadSummary succeeded")
	}
	mut := append([]byte(nil), data...)
	mut[0] = 'X'
	if _, err := ReadSummary(bytes.NewReader(mut)); err == nil {
		t.Error("bad magic: ReadSummary succeeded")
	}
	mut = append([]byte(nil), data...)
	mut[len(mut)-12] ^= 0xff // footer offset
	if _, err := ReadSummary(bytes.NewReader(mut)); err == nil {
		t.Error("bad footer offset: ReadSummary succeeded")
	}
}

// TestCrossFormatRoundTrip is the satellite property test: after one
// canonicalization through the lossy CSV surface, CSV, JSON lines and
// MTTR all reproduce the identical []Record, bit-exact per float64.
func TestCrossFormatRoundTrip(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		recs := canonicalRecords(t, int(n)%64+1, seed)
		var backs [3][]Record
		for i, format := range []Format{CSV, JSONLines, Bin} {
			back, err := Read(bytes.NewReader(writeTrace(t, recs, format)))
			if err != nil {
				t.Logf("format %d: %v", format, err)
				return false
			}
			backs[i] = back
		}
		for _, back := range backs {
			if len(back) != len(recs) {
				return false
			}
			for i := range recs {
				if back[i].Service != recs[i].Service ||
					math.Float64bits(back[i].TimeS) != math.Float64bits(recs[i].TimeS) ||
					math.Float64bits(back[i].Bytes) != math.Float64bits(recs[i].Bytes) ||
					math.Float64bits(back[i].DurationS) != math.Float64bits(recs[i].DurationS) ||
					math.Float64bits(back[i].Throughput) != math.Float64bits(recs[i].Throughput) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestBinRoundTripArbitraryFloats drops the CSV canonicalization: MTTR
// alone must round-trip full-precision records bit-exactly.
func TestBinRoundTripArbitraryFloats(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		recs := make([]Record, rng.Intn(40)+1)
		for i := range recs {
			recs[i] = Record{
				TimeS:      rng.Float64() * math.Exp(rng.NormFloat64()*8),
				Service:    "svc-" + string(rune('a'+rng.Intn(26))),
				Bytes:      math.Exp(rng.NormFloat64() * 20),
				DurationS:  math.Exp(rng.NormFloat64() * 10),
				Throughput: rng.Float64() * 1e9,
			}
		}
		back, err := Read(bytes.NewReader(writeTrace(t, recs, Bin)))
		if err != nil {
			t.Logf("read: %v", err)
			return false
		}
		if len(back) != len(recs) {
			return false
		}
		for i := range recs {
			if back[i].Service != recs[i].Service ||
				math.Float64bits(back[i].TimeS) != math.Float64bits(recs[i].TimeS) ||
				math.Float64bits(back[i].Bytes) != math.Float64bits(recs[i].Bytes) ||
				math.Float64bits(back[i].DurationS) != math.Float64bits(recs[i].DurationS) ||
				math.Float64bits(back[i].Throughput) != math.Float64bits(recs[i].Throughput) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestBinWriteAfterFlush(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Bin)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(generatorRecords(1, 9)[0]); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(generatorRecords(1, 9)[0]); err == nil {
		t.Error("write after finalize must error")
	}
	// A second Flush is a no-op, not a second trailer.
	before := buf.Len()
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != before {
		t.Error("second Flush grew the trace")
	}
}

func TestDecimalParts(t *testing.T) {
	cases := []struct {
		v  float64
		m  int64
		k  int
		ok bool
	}{
		{0, 0, 0, true},
		{42, 42, 0, true},
		{0.5, 5, 1, true},
		{0.125, 125, 3, true},
		{18085.919, 18085919, 3, true},
		{math.Pi, 0, 0, false},
		{-1, 0, 0, false},
		{math.Copysign(0, -1), 0, 0, false}, // -0 must take the raw path
		{math.NaN(), 0, 0, false},
		{math.Inf(1), 0, 0, false},
		{1 << 54, 0, 0, false},
		{0.0001, 0, 0, false}, // below the supported scales
	}
	for _, c := range cases {
		m, k, ok := decimalParts(c.v)
		if ok != c.ok || (ok && (m != c.m || k != c.k)) {
			t.Errorf("decimalParts(%v) = (%d, %d, %v), want (%d, %d, %v)", c.v, m, k, ok, c.m, c.k, c.ok)
		}
	}
}

func TestSummarizeEdgeCases(t *testing.T) {
	empty := Summarize(nil)
	if empty.Sessions != 0 || empty.TotalBytes != 0 || empty.SpanS != 0 {
		t.Errorf("empty summary = %+v", empty)
	}
	if empty.VolumeP50 != 0 || empty.VolumeP90 != 0 || empty.VolumeP99 != 0 {
		t.Errorf("empty summary quantiles = %+v", empty)
	}
	if len(empty.Services) != 0 {
		t.Errorf("empty summary services = %v", empty.Services)
	}

	one := Summarize([]Record{{TimeS: 7.5, Service: "solo", Bytes: 1234, DurationS: 10, Throughput: 123.4}})
	if one.Sessions != 1 || one.TotalBytes != 1234 || one.SpanS != 7.5 {
		t.Errorf("single summary = %+v", one)
	}
	if one.VolumeP50 != 1234 || one.VolumeP90 != 1234 || one.VolumeP99 != 1234 {
		t.Errorf("single summary quantiles collapse to the value: %+v", one)
	}
	if one.Services["solo"] != 1 {
		t.Errorf("single summary services = %v", one.Services)
	}
}
