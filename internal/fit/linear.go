package fit

import (
	"errors"
	"fmt"
	"math"

	"mobiletraffic/internal/mathx"
)

// Line is a fitted straight line y = Intercept + Slope*x.
type Line struct {
	Intercept float64
	Slope     float64
	R2        float64
}

// LinearFit performs ordinary least squares of ys on xs.
func LinearFit(xs, ys []float64) (Line, error) {
	return WeightedLinearFit(xs, ys, nil)
}

// WeightedLinearFit performs weighted least squares of ys on xs; a nil
// weight slice means uniform weights.
func WeightedLinearFit(xs, ys, ws []float64) (Line, error) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return Line{}, fmt.Errorf("fit: linear fit needs >= 2 paired points, got %d/%d", len(xs), len(ys))
	}
	if ws != nil && len(ws) != len(xs) {
		return Line{}, fmt.Errorf("fit: %d weights for %d points", len(ws), len(xs))
	}
	var sw, sx, sy, sxx, sxy float64
	for i := range xs {
		if math.IsNaN(xs[i]) || math.IsInf(xs[i], 0) || math.IsNaN(ys[i]) || math.IsInf(ys[i], 0) {
			return Line{}, fmt.Errorf("fit: non-finite point (%v, %v) at index %d", xs[i], ys[i], i)
		}
		w := 1.0
		if ws != nil {
			w = ws[i]
		}
		sw += w
		sx += w * xs[i]
		sy += w * ys[i]
		sxx += w * xs[i] * xs[i]
		sxy += w * xs[i] * ys[i]
	}
	det := sw*sxx - sx*sx
	if det == 0 || sw == 0 {
		return Line{}, errors.New("fit: degenerate linear system (constant x or zero weights)")
	}
	slope := (sw*sxy - sx*sy) / det
	intercept := (sy - slope*sx) / sw
	yhat := make([]float64, len(xs))
	for i, x := range xs {
		yhat[i] = intercept + slope*x
	}
	r2 := RSquaredWeighted(ys, yhat, ws)
	return Line{Intercept: intercept, Slope: slope, R2: r2}, nil
}

// PolyFit fits a polynomial of the given degree by least squares and
// returns its coefficients, lowest order first.
func PolyFit(xs, ys []float64, degree int) ([]float64, error) {
	if degree < 0 {
		return nil, fmt.Errorf("fit: negative polynomial degree %d", degree)
	}
	n := degree + 1
	if len(xs) != len(ys) || len(xs) < n {
		return nil, fmt.Errorf("fit: polynomial degree %d needs >= %d points, got %d", degree, n, len(xs))
	}
	m := len(xs)
	v := make([]float64, m*n)
	for i, x := range xs {
		pw := 1.0
		for j := 0; j < n; j++ {
			v[i*n+j] = pw
			pw *= x
		}
	}
	vtv := mathx.AtA(v, m, n)
	vty := mathx.AtB(v, ys, m, n)
	coeffs, err := mathx.SolveCholesky(vtv, vty)
	if err != nil {
		coeffs, err = mathx.SolveGauss(vtv, vty)
		if err != nil {
			return nil, fmt.Errorf("fit: polynomial normal equations: %w", err)
		}
	}
	return coeffs, nil
}

// PolyEval evaluates a polynomial with coefficients lowest order first.
func PolyEval(coeffs []float64, x float64) float64 {
	var y float64
	for i := len(coeffs) - 1; i >= 0; i-- {
		y = y*x + coeffs[i]
	}
	return y
}

// RSquared returns the coefficient of determination of predictions yhat
// against observations ys. A perfect fit yields 1; predicting the mean
// yields 0; worse-than-mean fits go negative. Constant observations
// yield 1 when matched exactly and 0 otherwise.
func RSquared(ys, yhat []float64) float64 {
	return RSquaredWeighted(ys, yhat, nil)
}

// RSquaredWeighted is RSquared with per-observation weights (nil means
// uniform).
func RSquaredWeighted(ys, yhat, ws []float64) float64 {
	if len(ys) != len(yhat) || len(ys) == 0 {
		return math.NaN()
	}
	var sw, sy float64
	for i := range ys {
		w := 1.0
		if ws != nil {
			w = ws[i]
		}
		sw += w
		sy += w * ys[i]
	}
	if sw == 0 {
		return math.NaN()
	}
	mean := sy / sw
	var ssRes, ssTot float64
	for i := range ys {
		w := 1.0
		if ws != nil {
			w = ws[i]
		}
		dr := ys[i] - yhat[i]
		dt := ys[i] - mean
		ssRes += w * dr * dr
		ssTot += w * dt * dt
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1
		}
		return 0
	}
	return 1 - ssRes/ssTot
}
