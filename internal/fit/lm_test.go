package fit

import (
	"math"
	"math/rand"
	"testing"

	"mobiletraffic/internal/mathx"
)

func TestLMRecoversExponentialDecay(t *testing.T) {
	model := func(p []float64, x float64) float64 { return p[0] * math.Exp(p[1]*x) }
	truth := []float64{2.5, -0.7}
	xs := mathx.LinSpace(0, 5, 50)
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = model(truth, x)
	}
	res, err := LM(model, xs, ys, []float64{1, -0.1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Error("LM did not converge")
	}
	for i := range truth {
		if math.Abs(res.Params[i]-truth[i]) > 1e-6 {
			t.Errorf("param %d = %v, want %v", i, res.Params[i], truth[i])
		}
	}
	if res.Cost > 1e-12 {
		t.Errorf("final cost = %v", res.Cost)
	}
}

func TestLMWithNoise(t *testing.T) {
	model := func(p []float64, x float64) float64 { return p[0] + p[1]*math.Sin(p[2]*x) }
	truth := []float64{1, 2, 0.5}
	rng := rand.New(rand.NewSource(2))
	xs := mathx.LinSpace(0, 20, 300)
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = model(truth, x) + 0.05*rng.NormFloat64()
	}
	res, err := LM(model, xs, ys, []float64{0.5, 1.5, 0.45}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range truth {
		if math.Abs(res.Params[i]-truth[i]) > 0.05 {
			t.Errorf("param %d = %v, want %v", i, res.Params[i], truth[i])
		}
	}
}

func TestLMWeightsFavorWeightedPoints(t *testing.T) {
	// Constant model fitted to two incompatible points: the weighted
	// solution is the weighted mean.
	model := func(p []float64, _ float64) float64 { return p[0] }
	xs := []float64{0, 1}
	ys := []float64{0, 10}
	ws := []float64{3, 1}
	res, err := LM(model, xs, ys, []float64{5}, &LMOptions{Weights: ws})
	if err != nil {
		t.Fatal(err)
	}
	// Minimizer of 9(p-0)^2 + (p-10)^2 is p = 1.
	if math.Abs(res.Params[0]-1) > 1e-6 {
		t.Errorf("weighted constant fit = %v, want 1", res.Params[0])
	}
}

func TestLMValidation(t *testing.T) {
	model := func(p []float64, x float64) float64 { return p[0] * x }
	if _, err := LM(model, []float64{1}, []float64{1, 2}, []float64{1}, nil); err == nil {
		t.Error("length mismatch must error")
	}
	if _, err := LM(model, []float64{1}, []float64{1}, []float64{1, 2}, nil); err == nil {
		t.Error("underdetermined system must error")
	}
	if _, err := LM(model, []float64{1}, []float64{1}, nil, nil); err == nil {
		t.Error("empty parameters must error")
	}
	if _, err := LM(model, []float64{1, 2}, []float64{1, 2}, []float64{1},
		&LMOptions{Weights: []float64{1}}); err == nil {
		t.Error("weight length mismatch must error")
	}
	bad := func(p []float64, x float64) float64 { return math.NaN() }
	if _, err := LM(bad, []float64{1}, []float64{1}, []float64{1}, nil); err == nil {
		t.Error("non-finite initial residuals must error")
	}
}

func TestLinearFitExact(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7} // y = 1 + 2x
	line, err := LinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(line.Intercept-1) > 1e-12 || math.Abs(line.Slope-2) > 1e-12 {
		t.Errorf("line = %+v", line)
	}
	if math.Abs(line.R2-1) > 1e-12 {
		t.Errorf("R2 = %v, want 1", line.R2)
	}
}

func TestLinearFitDegenerate(t *testing.T) {
	if _, err := LinearFit([]float64{1, 1}, []float64{2, 3}); err == nil {
		t.Error("constant x must error")
	}
	if _, err := LinearFit([]float64{1}, []float64{2}); err == nil {
		t.Error("single point must error")
	}
}

func TestWeightedLinearFit(t *testing.T) {
	// Outlier with zero weight must not affect the fit.
	xs := []float64{0, 1, 2, 3}
	ys := []float64{0, 1, 2, 100}
	ws := []float64{1, 1, 1, 0}
	line, err := WeightedLinearFit(xs, ys, ws)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(line.Slope-1) > 1e-9 || math.Abs(line.Intercept) > 1e-9 {
		t.Errorf("weighted line = %+v, want y=x", line)
	}
}

func TestPolyFit(t *testing.T) {
	xs := mathx.LinSpace(-3, 3, 30)
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 2 - x + 0.5*x*x
	}
	coeffs, err := PolyFit(xs, ys, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, -1, 0.5}
	for i := range want {
		if math.Abs(coeffs[i]-want[i]) > 1e-8 {
			t.Errorf("coeff %d = %v, want %v", i, coeffs[i], want[i])
		}
	}
	if got := PolyEval(coeffs, 2); math.Abs(got-2) > 1e-8 {
		t.Errorf("PolyEval(2) = %v, want 2", got)
	}
	if _, err := PolyFit(xs[:2], ys[:2], 2); err == nil {
		t.Error("insufficient points must error")
	}
	if _, err := PolyFit(xs, ys, -1); err == nil {
		t.Error("negative degree must error")
	}
}

func TestRSquared(t *testing.T) {
	ys := []float64{1, 2, 3, 4}
	if got := RSquared(ys, ys); got != 1 {
		t.Errorf("perfect R2 = %v", got)
	}
	mean := []float64{2.5, 2.5, 2.5, 2.5}
	if got := RSquared(ys, mean); got != 0 {
		t.Errorf("mean-prediction R2 = %v", got)
	}
	worse := []float64{4, 3, 2, 1}
	if got := RSquared(ys, worse); got >= 0 {
		t.Errorf("anti-correlated R2 = %v, want negative", got)
	}
	if got := RSquared([]float64{5, 5}, []float64{5, 5}); got != 1 {
		t.Errorf("constant matched R2 = %v, want 1", got)
	}
	if got := RSquared([]float64{5, 5}, []float64{4, 6}); got != 0 {
		t.Errorf("constant mismatched R2 = %v, want 0", got)
	}
	if !math.IsNaN(RSquared(nil, nil)) {
		t.Error("empty R2 must be NaN")
	}
}

// TestLMDegenerateInputs drives LM with inputs a fault-injected
// measurement campaign can produce — constant x (all sessions in one
// duration bin) and NaN observations — and requires it to either
// return an error or finite parameters, never panic or emit NaN.
func TestLMDegenerateInputs(t *testing.T) {
	power := func(p []float64, x float64) float64 { return p[0] * math.Pow(x, p[1]) }

	// Constant x: the Jacobian columns are linearly dependent, so the
	// normal equations are singular.
	xs := []float64{5, 5, 5, 5}
	ys := []float64{10, 11, 9, 10.5}
	res, err := LM(power, xs, ys, []float64{1, 1}, nil)
	if err == nil {
		for i, p := range res.Params {
			if math.IsNaN(p) || math.IsInf(p, 0) {
				t.Errorf("constant-x fit returned non-finite param %d: %v", i, p)
			}
		}
	}

	// NaN observations must be rejected up front.
	if _, err := LM(power, []float64{1, 2, 3}, []float64{1, math.NaN(), 3},
		[]float64{1, 1}, nil); err == nil {
		t.Error("NaN observation must error")
	}
	// NaN in x poisons the residuals the same way.
	if _, err := LM(power, []float64{1, math.NaN(), 3}, []float64{1, 2, 3},
		[]float64{1, 1}, nil); err == nil {
		t.Error("NaN x must error")
	}
	// Inf observation likewise.
	if _, err := LM(power, []float64{1, 2, 3}, []float64{1, math.Inf(1), 3},
		[]float64{1, 1}, nil); err == nil {
		t.Error("Inf observation must error")
	}
}

// TestLinearFitRejectsNaN mirrors the LM guard for the closed-form
// fits used to seed the power-law refinement.
func TestLinearFitRejectsNaN(t *testing.T) {
	if _, err := LinearFit([]float64{1, 2, math.NaN()}, []float64{1, 2, 3}); err == nil {
		t.Error("NaN x must error")
	}
	if _, err := LinearFit([]float64{1, 2, 3}, []float64{1, math.Inf(1), 3}); err == nil {
		t.Error("Inf y must error")
	}
	if _, err := WeightedLinearFit([]float64{1, 2, 3}, []float64{1, math.NaN(), 3},
		[]float64{1, 1, 1}); err == nil {
		t.Error("weighted NaN y must error")
	}
}
