package fit

import (
	"fmt"
	"math"
)

// PowerLaw is a fitted power law y = Alpha * x^Beta, the model family
// the paper selects for duration-volume pairs v_s(d) = alpha_s *
// d^beta_s (§5.3). Beta > 1 indicates sessions whose mean throughput
// grows with duration (streaming); Beta < 1 the opposite.
type PowerLaw struct {
	Alpha float64
	Beta  float64
	R2    float64
}

// Eval returns Alpha * x^Beta.
func (p PowerLaw) Eval(x float64) float64 { return p.Alpha * math.Pow(x, p.Beta) }

// Invert returns the x with Eval(x) = y; the paper uses this inverse to
// obtain a session's duration from its sampled volume (§5.4).
func (p PowerLaw) Invert(y float64) float64 {
	if y <= 0 || p.Alpha <= 0 || p.Beta == 0 {
		return math.NaN()
	}
	return math.Pow(y/p.Alpha, 1/p.Beta)
}

// FitPowerLaw fits y = alpha*x^beta to strictly positive paired data by
// a log-log linear initialization refined with Levenberg-Marquardt in
// the original space (matching the paper's use of LM non-linear least
// squares). Weights (nil = uniform) apply to the LM refinement stage.
func FitPowerLaw(xs, ys, ws []float64) (PowerLaw, error) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return PowerLaw{}, fmt.Errorf("fit: power law needs >= 2 paired points, got %d/%d", len(xs), len(ys))
	}
	// Log-log OLS on the positive subset for the starting point.
	var lx, ly []float64
	for i := range xs {
		if xs[i] > 0 && ys[i] > 0 {
			lx = append(lx, math.Log(xs[i]))
			ly = append(ly, math.Log(ys[i]))
		}
	}
	if len(lx) < 2 {
		return PowerLaw{}, fmt.Errorf("fit: power law needs >= 2 strictly positive points, got %d", len(lx))
	}
	line, err := LinearFit(lx, ly)
	if err != nil {
		return PowerLaw{}, err
	}
	p0 := []float64{math.Exp(line.Intercept), line.Slope}

	model := func(p []float64, x float64) float64 {
		if x <= 0 {
			return 0
		}
		return p[0] * math.Pow(x, p[1])
	}
	res, err := LM(model, xs, ys, p0, &LMOptions{Weights: ws})
	if err != nil {
		return PowerLaw{}, err
	}
	alpha, beta := res.Params[0], res.Params[1]
	yhat := make([]float64, len(xs))
	for i, x := range xs {
		yhat[i] = model(res.Params, x)
	}
	return PowerLaw{Alpha: alpha, Beta: beta, R2: RSquaredWeighted(ys, yhat, ws)}, nil
}

// ExpCurve is a fitted exponential y = A * exp(B*x). With B < 0 it is
// the negative exponential law the paper fits to the per-service
// session-share ranking (§4.1, Fig. 4, R² = 0.97).
type ExpCurve struct {
	A  float64
	B  float64
	R2 float64
}

// Eval returns A * exp(B*x).
func (e ExpCurve) Eval(x float64) float64 { return e.A * math.Exp(e.B*x) }

// FitExpCurve fits y = A*exp(B*x) to data with strictly positive ys,
// using a semi-log linear initialization refined with LM.
func FitExpCurve(xs, ys []float64) (ExpCurve, error) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return ExpCurve{}, fmt.Errorf("fit: exp curve needs >= 2 paired points, got %d/%d", len(xs), len(ys))
	}
	var sx, sly []float64
	for i := range xs {
		if ys[i] > 0 {
			sx = append(sx, xs[i])
			sly = append(sly, math.Log(ys[i]))
		}
	}
	if len(sx) < 2 {
		return ExpCurve{}, fmt.Errorf("fit: exp curve needs >= 2 positive observations, got %d", len(sx))
	}
	line, err := LinearFit(sx, sly)
	if err != nil {
		return ExpCurve{}, err
	}
	p0 := []float64{math.Exp(line.Intercept), line.Slope}
	model := func(p []float64, x float64) float64 { return p[0] * math.Exp(p[1]*x) }
	res, err := LM(model, xs, ys, p0, nil)
	if err != nil {
		return ExpCurve{}, err
	}
	yhat := make([]float64, len(xs))
	for i, x := range xs {
		yhat[i] = model(res.Params, x)
	}
	return ExpCurve{A: res.Params[0], B: res.Params[1], R2: RSquared(ys, yhat)}, nil
}

// GaussCurve is a fitted Gaussian bump y = A * exp(-(x-Mu)²/(2 Sigma²)),
// used for the daytime mode of the arrival-rate PDF (§5.1).
type GaussCurve struct {
	A     float64
	Mu    float64
	Sigma float64
	R2    float64
}

// Eval returns the Gaussian bump value at x.
func (g GaussCurve) Eval(x float64) float64 {
	if g.Sigma == 0 {
		return 0
	}
	z := (x - g.Mu) / g.Sigma
	return g.A * math.Exp(-z*z/2)
}

// FitGaussCurve fits an amplitude Gaussian to (xs, ys) with LM, seeded
// by the empirical peak location, height and spread.
func FitGaussCurve(xs, ys []float64) (GaussCurve, error) {
	if len(xs) != len(ys) || len(xs) < 3 {
		return GaussCurve{}, fmt.Errorf("fit: gaussian needs >= 3 paired points, got %d/%d", len(xs), len(ys))
	}
	// Seed: mode of y, and mass-weighted spread around it.
	peak := 0
	for i := range ys {
		if ys[i] > ys[peak] {
			peak = i
		}
	}
	var sw, swx float64
	for i := range xs {
		w := math.Max(ys[i], 0)
		sw += w
		swx += w * xs[i]
	}
	mu := xs[peak]
	if sw > 0 {
		mu = swx / sw
	}
	var swd float64
	for i := range xs {
		w := math.Max(ys[i], 0)
		d := xs[i] - mu
		swd += w * d * d
	}
	sigma := 1.0
	if sw > 0 && swd > 0 {
		sigma = math.Sqrt(swd / sw)
	}
	p0 := []float64{math.Max(ys[peak], 1e-12), xs[peak], sigma}
	model := func(p []float64, x float64) float64 {
		if p[2] == 0 {
			return 0
		}
		z := (x - p[1]) / p[2]
		return p[0] * math.Exp(-z*z/2)
	}
	res, err := LM(model, xs, ys, p0, nil)
	if err != nil {
		return GaussCurve{}, err
	}
	yhat := make([]float64, len(xs))
	for i, x := range xs {
		yhat[i] = model(res.Params, x)
	}
	return GaussCurve{
		A:     res.Params[0],
		Mu:    res.Params[1],
		Sigma: math.Abs(res.Params[2]),
		R2:    RSquared(ys, yhat),
	}, nil
}
