// Package fit provides the curve-fitting machinery of the modeling
// pipeline: Levenberg-Marquardt nonlinear least squares (used for the
// power-law duration-volume fits of paper §5.3), linear and polynomial
// least squares, parametric curve fits (power law, exponential,
// Gaussian), the coefficient of determination R², and the
// Savitzky-Golay-based residual-peak detection of paper §5.2.
package fit

import (
	"errors"
	"fmt"
	"math"

	"mobiletraffic/internal/mathx"
	"mobiletraffic/internal/obs"
)

// Model is a parametric scalar function y = f(params, x).
type Model func(params []float64, x float64) float64

// LMOptions tunes the Levenberg-Marquardt optimizer. The zero value is
// usable; unset fields take the defaults documented on each field.
type LMOptions struct {
	// MaxIter caps the outer iterations (default 200).
	MaxIter int
	// TolCost stops when the relative cost improvement falls below it
	// (default 1e-12).
	TolCost float64
	// TolStep stops when the parameter step norm falls below it
	// (default 1e-12).
	TolStep float64
	// InitialLambda is the starting damping factor (default 1e-3).
	InitialLambda float64
	// Weights optionally holds one weight per observation; nil means
	// uniform weighting.
	Weights []float64
}

func (o *LMOptions) withDefaults() LMOptions {
	out := LMOptions{MaxIter: 200, TolCost: 1e-12, TolStep: 1e-12, InitialLambda: 1e-3}
	if o == nil {
		return out
	}
	if o.MaxIter > 0 {
		out.MaxIter = o.MaxIter
	}
	if o.TolCost > 0 {
		out.TolCost = o.TolCost
	}
	if o.TolStep > 0 {
		out.TolStep = o.TolStep
	}
	if o.InitialLambda > 0 {
		out.InitialLambda = o.InitialLambda
	}
	out.Weights = o.Weights
	return out
}

// LMResult reports the outcome of a Levenberg-Marquardt fit.
type LMResult struct {
	Params     []float64 // fitted parameters
	Cost       float64   // final sum of squared weighted residuals
	Iterations int       // outer iterations performed
	Converged  bool      // true if a tolerance (not MaxIter) stopped the fit
}

// recordLM reports one finished LM run to the instrumentation layer:
// the iteration count (fit_lm_iterations), the stop reason
// (fit_lm_total{reason=...}) and the damping restarts — rejected
// trial steps that escalated lambda (fit_lm_restarts_total). LM runs
// at most once per fitted curve, so the registry lookups here are
// cold-path; with instrumentation disabled Default() is nil and every
// call below is a no-op on nil handles.
func recordLM(res *LMResult, reason string, restarts int64) {
	r := obs.Default()
	if r == nil {
		return
	}
	r.Histogram("fit_lm_iterations", obs.DefBucketsCount).Observe(float64(res.Iterations))
	r.Counter("fit_lm_total", "reason", reason).Inc()
	r.Counter("fit_lm_restarts_total").Add(restarts)
}

// LM fits model to the observations (xs, ys) by weighted nonlinear
// least squares starting from p0, using the Levenberg-Marquardt
// algorithm with a numerically differenced Jacobian.
func LM(model Model, xs, ys []float64, p0 []float64, opts *LMOptions) (LMResult, error) {
	if len(xs) != len(ys) {
		return LMResult{}, fmt.Errorf("fit: LM: len(xs)=%d != len(ys)=%d", len(xs), len(ys))
	}
	if len(xs) < len(p0) {
		return LMResult{}, fmt.Errorf("fit: LM: %d observations cannot constrain %d parameters",
			len(xs), len(p0))
	}
	if len(p0) == 0 {
		return LMResult{}, errors.New("fit: LM: empty initial parameter vector")
	}
	o := opts.withDefaults()
	if o.Weights != nil && len(o.Weights) != len(xs) {
		return LMResult{}, fmt.Errorf("fit: LM: %d weights for %d observations", len(o.Weights), len(xs))
	}
	m, n := len(xs), len(p0)
	p := make([]float64, n)
	copy(p, p0)

	weight := func(i int) float64 {
		if o.Weights == nil {
			return 1
		}
		return o.Weights[i]
	}
	residuals := func(params []float64, out []float64) float64 {
		var cost float64
		for i := range xs {
			r := weight(i) * (model(params, xs[i]) - ys[i])
			out[i] = r
			cost += r * r
		}
		return cost
	}

	r := make([]float64, m)
	cost := residuals(p, r)
	if math.IsNaN(cost) || math.IsInf(cost, 0) {
		return LMResult{}, errors.New("fit: LM: initial parameters produce non-finite residuals")
	}
	lambda := o.InitialLambda
	jac := make([]float64, m*n)
	pTrial := make([]float64, n)
	rTrial := make([]float64, m)
	result := LMResult{Params: p, Cost: cost}
	var restarts int64

	for iter := 0; iter < o.MaxIter; iter++ {
		result.Iterations = iter + 1
		// Numeric Jacobian by forward differences.
		for j := 0; j < n; j++ {
			h := 1e-8 * math.Max(1, math.Abs(p[j]))
			copy(pTrial, p)
			pTrial[j] += h
			for i := range xs {
				jac[i*n+j] = weight(i) * (model(pTrial, xs[i]) - model(p, xs[i])) / h
			}
		}
		jtj := mathx.AtA(jac, m, n)
		jtr := mathx.AtB(jac, r, m, n)

		improved := false
		for attempt := 0; attempt < 30; attempt++ {
			// (JᵀJ + λ·diag(JᵀJ)) δ = -Jᵀr
			a := make([]float64, n*n)
			copy(a, jtj)
			for d := 0; d < n; d++ {
				damp := jtj[d*n+d]
				if damp == 0 {
					damp = 1
				}
				a[d*n+d] += lambda * damp
			}
			neg := make([]float64, n)
			for i, v := range jtr {
				neg[i] = -v
			}
			delta, err := mathx.SolveCholesky(a, neg)
			if err != nil {
				delta, err = mathx.SolveGauss(a, neg)
				if err != nil {
					lambda *= 10
					restarts++
					continue
				}
			}
			for j := 0; j < n; j++ {
				pTrial[j] = p[j] + delta[j]
			}
			trialCost := residuals(pTrial, rTrial)
			if !math.IsNaN(trialCost) && trialCost < cost {
				stepNorm := 0.0
				for _, d := range delta {
					stepNorm += d * d
				}
				stepNorm = math.Sqrt(stepNorm)
				relImprove := (cost - trialCost) / math.Max(cost, 1e-300)
				copy(p, pTrial)
				copy(r, rTrial)
				cost = trialCost
				lambda = math.Max(lambda/10, 1e-12)
				improved = true
				if relImprove < o.TolCost || stepNorm < o.TolStep {
					result.Params, result.Cost, result.Converged = p, cost, true
					recordLM(&result, "tolerance", restarts)
					return result, nil
				}
				break
			}
			lambda *= 10
			restarts++
			if lambda > 1e12 {
				break
			}
		}
		if !improved {
			// Damping exhausted: current point is (locally) optimal.
			result.Params, result.Cost, result.Converged = p, cost, true
			recordLM(&result, "stalled", restarts)
			return result, nil
		}
	}
	result.Params, result.Cost = p, cost
	recordLM(&result, "maxiter", restarts)
	return result, nil
}
