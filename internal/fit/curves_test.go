package fit

import (
	"math"
	"math/rand"
	"testing"

	"mobiletraffic/internal/mathx"
)

func TestFitPowerLawExact(t *testing.T) {
	truth := PowerLaw{Alpha: 3, Beta: 1.4}
	xs := mathx.LinSpace(1, 100, 60)
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = truth.Eval(x)
	}
	got, err := FitPowerLaw(xs, ys, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Alpha-3) > 1e-4 || math.Abs(got.Beta-1.4) > 1e-5 {
		t.Errorf("power law = %+v", got)
	}
	if got.R2 < 0.9999 {
		t.Errorf("R2 = %v", got.R2)
	}
}

func TestFitPowerLawNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	truth := PowerLaw{Alpha: 1e4, Beta: 0.6}
	xs := mathx.LogSpace(0, 3, 80) // durations 1..1000 s
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = truth.Eval(x) * math.Exp(0.1*rng.NormFloat64())
	}
	got, err := FitPowerLaw(xs, ys, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Beta-0.6) > 0.05 {
		t.Errorf("beta = %v, want ~0.6", got.Beta)
	}
	if got.R2 < 0.8 {
		t.Errorf("R2 = %v", got.R2)
	}
}

func TestPowerLawInvert(t *testing.T) {
	p := PowerLaw{Alpha: 2, Beta: 1.5}
	for _, x := range []float64{0.5, 1, 10, 300} {
		y := p.Eval(x)
		if got := p.Invert(y); math.Abs(got-x)/x > 1e-9 {
			t.Errorf("Invert(Eval(%v)) = %v", x, got)
		}
	}
	if !math.IsNaN(p.Invert(-1)) {
		t.Error("Invert of negative volume must be NaN")
	}
	if !math.IsNaN(PowerLaw{Alpha: 1, Beta: 0}.Invert(1)) {
		t.Error("Invert with zero beta must be NaN")
	}
}

func TestFitPowerLawValidation(t *testing.T) {
	if _, err := FitPowerLaw([]float64{1}, []float64{1}, nil); err == nil {
		t.Error("single point must error")
	}
	if _, err := FitPowerLaw([]float64{-1, -2, -3}, []float64{1, 2, 3}, nil); err == nil {
		t.Error("all-negative x must error")
	}
}

func TestFitExpCurve(t *testing.T) {
	// The Fig. 4 scenario: service session shares decaying exponentially
	// with rank.
	truth := ExpCurve{A: 0.4, B: -0.15}
	xs := mathx.LinSpace(0, 99, 100)
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = truth.Eval(x)
	}
	got, err := FitExpCurve(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.A-0.4) > 1e-6 || math.Abs(got.B+0.15) > 1e-7 {
		t.Errorf("exp curve = %+v", got)
	}
	if got.R2 < 0.999 {
		t.Errorf("R2 = %v", got.R2)
	}
	if _, err := FitExpCurve([]float64{1}, []float64{1}); err == nil {
		t.Error("single point must error")
	}
	if _, err := FitExpCurve([]float64{1, 2}, []float64{-1, -2}); err == nil {
		t.Error("non-positive ys must error")
	}
}

func TestFitGaussCurve(t *testing.T) {
	truth := GaussCurve{A: 2, Mu: 5, Sigma: 1.2}
	xs := mathx.LinSpace(0, 10, 120)
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = truth.Eval(x)
	}
	got, err := FitGaussCurve(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.A-2) > 1e-4 || math.Abs(got.Mu-5) > 1e-4 || math.Abs(got.Sigma-1.2) > 1e-4 {
		t.Errorf("gaussian = %+v", got)
	}
	if _, err := FitGaussCurve([]float64{1, 2}, []float64{1, 2}); err == nil {
		t.Error("two points must error")
	}
}

func TestDetectPeaksFindsSeededModes(t *testing.T) {
	// Residual with two bumps of different mass on a flat background.
	n := 200
	residual := make([]float64, n)
	bump := func(center int, height, width float64) {
		for i := range residual {
			z := (float64(i) - float64(center)) / width
			residual[i] += height * math.Exp(-z*z/2)
		}
	}
	bump(60, 0.02, 3)  // heavier peak
	bump(140, 0.01, 3) // lighter peak
	peaks, err := DetectPeaks(residual, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(peaks) < 2 {
		t.Fatalf("found %d peaks, want >= 2", len(peaks))
	}
	// Ranked by mass: the heavy peak first.
	if math.Abs(float64(peaks[0].Center-60)) > 5 {
		t.Errorf("first peak center = %d, want ~60", peaks[0].Center)
	}
	if math.Abs(float64(peaks[1].Center-140)) > 5 {
		t.Errorf("second peak center = %d, want ~140", peaks[1].Center)
	}
	if peaks[0].Mass <= peaks[1].Mass {
		t.Errorf("peaks not ranked by mass: %v <= %v", peaks[0].Mass, peaks[1].Mass)
	}
	if peaks[0].Span() <= 0 {
		t.Errorf("span = %d", peaks[0].Span())
	}
}

func TestDetectPeaksIgnoresFlatResidual(t *testing.T) {
	flat := make([]float64, 100)
	for i := range flat {
		flat[i] = 1e-7 // below any derivative threshold
	}
	peaks, err := DetectPeaks(flat, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(peaks) != 0 {
		t.Errorf("found %d peaks on flat residual", len(peaks))
	}
}

func TestDetectPeaksEmptyAndShort(t *testing.T) {
	if peaks, err := DetectPeaks(nil, nil); err != nil || len(peaks) != 0 {
		t.Errorf("empty input: %v, %v", peaks, err)
	}
	if peaks, err := DetectPeaks([]float64{1, 2}, nil); err != nil || len(peaks) != 0 {
		t.Errorf("too-short input: %v, %v", peaks, err)
	}
}

func TestDetectPeaksMinMass(t *testing.T) {
	n := 100
	residual := make([]float64, n)
	for i := range residual {
		z := (float64(i) - 50) / 2
		residual[i] = 0.001 * math.Exp(-z*z/2)
	}
	peaks, err := DetectPeaks(residual, &PeakOptions{MinMass: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(peaks) != 0 {
		t.Errorf("MinMass filter failed: %d peaks", len(peaks))
	}
}

func TestDetectPeaksFiniteDiffAblation(t *testing.T) {
	// Both differentiators must find a single strong clean peak.
	n := 150
	residual := make([]float64, n)
	for i := range residual {
		z := (float64(i) - 70) / 4
		residual[i] = 0.05 * math.Exp(-z*z/2)
	}
	for _, fd := range []bool{false, true} {
		peaks, err := DetectPeaks(residual, &PeakOptions{UseFiniteDiff: fd})
		if err != nil {
			t.Fatal(err)
		}
		if len(peaks) == 0 {
			t.Fatalf("finiteDiff=%v: no peaks found", fd)
		}
		if math.Abs(float64(peaks[0].Center-70)) > 6 {
			t.Errorf("finiteDiff=%v: center = %d, want ~70", fd, peaks[0].Center)
		}
	}
}
