package fit

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mobiletraffic/internal/mathx"
)

// Property: LM recovers a random two-parameter exponential curve from
// clean observations, from a perturbed starting point.
func TestLMRecoveryProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := 0.5 + rng.Float64()*5
		b := -1 + rng.Float64()*0.9 // decay in (-1, -0.1)
		model := func(p []float64, x float64) float64 { return p[0] * math.Exp(p[1]*x) }
		xs := mathx.LinSpace(0, 5, 40)
		ys := make([]float64, len(xs))
		for i, x := range xs {
			ys[i] = model([]float64{a, b}, x)
		}
		p0 := []float64{a * (0.5 + rng.Float64()), b * (0.5 + rng.Float64())}
		res, err := LM(model, xs, ys, p0, nil)
		if err != nil {
			return false
		}
		return math.Abs(res.Params[0]-a) < 1e-3 && math.Abs(res.Params[1]-b) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: the weighted linear fit interpolates any two distinct
// points exactly.
func TestLinearFitTwoPointProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x0 := rng.NormFloat64() * 10
		x1 := x0 + 0.1 + rng.Float64()*10
		y0 := rng.NormFloat64() * 10
		y1 := rng.NormFloat64() * 10
		line, err := LinearFit([]float64{x0, x1}, []float64{y0, y1})
		if err != nil {
			return false
		}
		return math.Abs(line.Intercept+line.Slope*x0-y0) < 1e-6 &&
			math.Abs(line.Intercept+line.Slope*x1-y1) < 1e-6 &&
			math.Abs(line.R2-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: power-law fit and inverse are mutually consistent for
// random positive parameters.
func TestPowerLawRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		alpha := math.Pow(10, rng.Float64()*6)
		beta := 0.1 + rng.Float64()*1.7
		xs := mathx.LogSpace(0, 3, 30)
		ys := make([]float64, len(xs))
		for i, x := range xs {
			ys[i] = alpha * math.Pow(x, beta)
		}
		p, err := FitPowerLaw(xs, ys, nil)
		if err != nil {
			return false
		}
		if math.Abs(p.Beta-beta) > 1e-3 {
			return false
		}
		// Invert at a random point.
		x := 1 + rng.Float64()*500
		return math.Abs(p.Invert(p.Eval(x))-x)/x < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: DetectPeaks is scale-covariant in the threshold — scaling
// the residual and the threshold together finds the same intervals.
func TestDetectPeaksScaleProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 80
		residual := make([]float64, n)
		center := 10 + rng.Intn(60)
		height := 0.01 + rng.Float64()*0.1
		for i := range residual {
			z := (float64(i) - float64(center)) / (2 + rng.Float64()*3)
			residual[i] = height * math.Exp(-z*z/2)
		}
		scale := math.Pow(10, 1+rng.Float64()*2)
		scaled := make([]float64, n)
		for i, v := range residual {
			scaled[i] = v * scale
		}
		a, err := DetectPeaks(residual, &PeakOptions{Threshold: 1e-4})
		if err != nil {
			return false
		}
		b, err := DetectPeaks(scaled, &PeakOptions{Threshold: 1e-4 * scale})
		if err != nil {
			return false
		}
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i].Lo != b[i].Lo || a[i].Hi != b[i].Hi || a[i].Center != b[i].Center {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
