package fit

import (
	"fmt"
	"sort"

	"mobiletraffic/internal/mathx"
)

// Peak describes one residual probability mode detected by the §5.2
// algorithm: a contiguous bin interval with rapidly changing residual,
// its dominant bin, and the residual mass it contains (the integral the
// paper uses to rank intervals and as the mixture weight k_{s,n}).
type Peak struct {
	Lo, Hi int     // inclusive bin-index interval
	Center int     // bin index of the residual maximum within [Lo, Hi]
	Mass   float64 // residual probability contained in the interval
}

// Span returns the number of bins covered by the peak interval.
func (p Peak) Span() int { return p.Hi - p.Lo + 1 }

// PeakOptions configures residual-peak detection.
type PeakOptions struct {
	// Threshold is the absolute first-derivative threshold above which
	// a bin is considered part of a peak. The paper finds the algorithm
	// robust to this choice and uses 1e-5 for every service.
	Threshold float64
	// Window and Order configure the Savitzky-Golay differentiator
	// (defaults 7 and 1: the paper's first-order filter).
	Window, Order int
	// UseFiniteDiff replaces the Savitzky-Golay derivative with a raw
	// central finite difference (used by the smoothing ablation).
	UseFiniteDiff bool
	// MinMass drops intervals whose residual mass falls below it; the
	// paper observes peaks beyond the top 3 carry weight below 1e-4.
	MinMass float64
}

func (o *PeakOptions) withDefaults() PeakOptions {
	out := PeakOptions{Threshold: 1e-5, Window: 7, Order: 1}
	if o == nil {
		return out
	}
	if o.Threshold > 0 {
		out.Threshold = o.Threshold
	}
	if o.Window > 0 {
		out.Window = o.Window
	}
	if o.Order > 0 {
		out.Order = o.Order
	}
	out.UseFiniteDiff = o.UseFiniteDiff
	out.MinMass = o.MinMass
	return out
}

// DetectPeaks implements the residual-mode identification of paper
// §5.2: it differentiates the residual probability curve with a
// first-order Savitzky-Golay filter, marks bins where the absolute
// smoothed derivative exceeds the threshold, groups contiguous marked
// bins into intervals, and returns the intervals ranked by descending
// contained residual mass.
//
// residual holds non-negative per-bin residual probability (measurement
// PDF minus main log-normal trend, clipped at zero).
func DetectPeaks(residual []float64, opts *PeakOptions) ([]Peak, error) {
	o := opts.withDefaults()
	if len(residual) == 0 {
		return nil, nil
	}
	if o.Window >= len(residual) {
		// Shrink the window for very short inputs; keep it odd and >= 3.
		w := len(residual)
		if w%2 == 0 {
			w--
		}
		if w < 3 {
			return nil, nil
		}
		o.Window = w
		if o.Order >= o.Window {
			o.Order = o.Window - 1
		}
	}

	var deriv []float64
	if o.UseFiniteDiff {
		deriv = mathx.FiniteDiff(residual)
	} else {
		var err error
		deriv, err = mathx.SavGol(residual, o.Window, o.Order, 1)
		if err != nil {
			return nil, fmt.Errorf("fit: peak detection derivative: %w", err)
		}
	}

	active := make([]bool, len(residual))
	for i, d := range deriv {
		if d > o.Threshold || d < -o.Threshold {
			active[i] = true
		}
	}

	// Collect contiguous active runs, then merge runs separated by short
	// gaps: a smooth residual mode has a near-zero derivative exactly at
	// its apex, which would otherwise split one peak into its rising and
	// falling flanks.
	type run struct{ lo, hi int }
	var runs []run
	i := 0
	for i < len(active) {
		if !active[i] {
			i++
			continue
		}
		lo := i
		for i < len(active) && active[i] {
			i++
		}
		runs = append(runs, run{lo: lo, hi: i - 1})
	}
	mergeGap := o.Window
	var merged []run
	for _, r := range runs {
		if n := len(merged); n > 0 && r.lo-merged[n-1].hi <= mergeGap {
			merged[n-1].hi = r.hi
			continue
		}
		merged = append(merged, r)
	}

	var peaks []Peak
	for _, r := range merged {
		var mass float64
		center := r.lo
		for j := r.lo; j <= r.hi; j++ {
			if residual[j] < 0 {
				continue
			}
			mass += residual[j]
			if residual[j] > residual[center] {
				center = j
			}
		}
		if mass > o.MinMass {
			peaks = append(peaks, Peak{Lo: r.lo, Hi: r.hi, Center: center, Mass: mass})
		}
	}
	sort.Slice(peaks, func(a, b int) bool { return peaks[a].Mass > peaks[b].Mass })
	return peaks, nil
}
