package core

import (
	"errors"
	"fmt"
	"math"

	"mobiletraffic/internal/netsim"
	"mobiletraffic/internal/obs"
)

// This file is the deterministic parallel generation plane of engine
// v2: campaign generation decomposed into independent per-(BS, day)
// cells, each drawing from its own substream
// (SeedStream(master^genCampaignDomain, key, day)), executed on the
// shared claim-from-a-counter worker pool and stitched back in cell
// index order. Because every cell's stream is a pure function of
// (master seed, key, day), the output is bit-identical for any worker
// count — including 1 — and for any schedule the pool happens to run.
//
// Inside a cell, the per-minute draws run on the batch kernels of
// internal/mathx (FillFloat64 / FillNorm and AliasTable.PickBatch):
// for a minute with n arrivals the cell consumes a fixed rectangle of
// draws — one phase uniform, the arrival count draw, then exactly
// 5·n variates in a fixed order (service uniforms, component uniforms,
// volume Gaussians, duration-noise Gaussians, start uniforms) — so the
// draw layout is independent of which services were picked or whether
// a model has mixture peaks or noise. This is a new v2 stream: it
// realizes the same released distributions as MinuteAppend but maps
// draws differently, so campaign output is statistically (not
// byte-for-byte) equivalent to the scalar path.

// CampaignSpec describes a generation campaign: a grid of (BS, day)
// cells over the given arrival models.
type CampaignSpec struct {
	// Arrivals holds one arrival model per BS in the campaign.
	Arrivals []*ArrivalModel
	// Keys holds the substream key of each BS; nil uses the slice
	// index. Callers with stable topology identifiers should pass them
	// here so a BS keeps its traffic when the campaign is re-sliced.
	Keys []uint64
	// Days is the number of days generated per BS.
	Days int
	// MinutesPerDay truncates each day (0 means a full 1440 minutes).
	// The substream layout is per-day, so a truncated campaign is a
	// prefix of the full one.
	MinutesPerDay int
	// StartMinute is minute 0's offset into the phase-weight table,
	// for campaigns that do not start at midnight.
	StartMinute int
	// PhaseWeights gives the probability that a minute is in the
	// daytime arrival mode, indexed by (StartMinute + minute) modulo
	// its length. Nil uses the 1440-entry netsim.DayWeight diurnal
	// profile.
	PhaseWeights []float64
	// Workers bounds the worker pool (<= 0 uses every CPU). The
	// output does not depend on it.
	Workers int
}

// DayBlock is one (BS, day) cell of campaign output in
// structure-of-arrays layout with a CSR minute index: the sessions of
// minute m are rows Offsets[m] to Offsets[m+1].
type DayBlock struct {
	BS  int // index into CampaignSpec.Arrivals
	Day int
	// Offsets has one entry per minute plus a trailing total.
	Offsets []int32
	// Per-session columns, all of length Offsets[len(Offsets)-1].
	Svc      []int32   // service index into the generator's ModelSet
	Volume   []float64 // bytes
	Duration []float64 // seconds
	Start    []float64 // session start in seconds from the day origin
}

// Sessions returns the number of sessions in the block.
func (b *DayBlock) Sessions() int { return len(b.Svc) }

// MinuteRange returns the half-open row range of minute m.
func (b *DayBlock) MinuteRange(m int) (lo, hi int) {
	return int(b.Offsets[m]), int(b.Offsets[m+1])
}

// defaultPhaseWeights is the lazily built 1440-minute diurnal profile
// shared by campaigns that do not override PhaseWeights.
var defaultPhaseWeights []float64

func phaseWeightTable() []float64 {
	if defaultPhaseWeights == nil {
		w := make([]float64, 24*60)
		for m := range w {
			w[m] = netsim.DayWeight(m)
		}
		defaultPhaseWeights = w
	}
	return defaultPhaseWeights
}

// genScratch is one worker's reusable draw buffers: the batch kernels
// fill them once per minute, so the steady state of a campaign worker
// performs no per-minute allocation.
type genScratch struct {
	u, uc, zv, zd, us []float64
	svc               []int32
}

func (s *genScratch) grow(n int) {
	if cap(s.u) >= n {
		s.u = s.u[:n]
		s.uc = s.uc[:n]
		s.zv = s.zv[:n]
		s.zd = s.zd[:n]
		s.us = s.us[:n]
		s.svc = s.svc[:n]
		return
	}
	c := 2 * cap(s.u)
	if c < n {
		c = n
	}
	s.u = make([]float64, n, c)
	s.uc = make([]float64, n, c)
	s.zv = make([]float64, n, c)
	s.zd = make([]float64, n, c)
	s.us = make([]float64, n, c)
	s.svc = make([]int32, n, c)
}

// campaignParams is the validated, defaulted form of a CampaignSpec.
type campaignParams struct {
	minutes int
	weights []float64
	cells   int
	workers int
}

// validateCampaign checks a spec against the generator's engine and
// resolves its defaults, shared by the materializing and folding
// campaign surfaces.
func (g *Generator) validateCampaign(spec CampaignSpec) (campaignParams, error) {
	var p campaignParams
	if g.Engine != GenV2 {
		return p, errors.New("core: campaign generation needs engine v2 (v1 preserves the historical single stream)")
	}
	if len(spec.Arrivals) == 0 {
		return p, errors.New("core: campaign needs at least one arrival model")
	}
	for i, a := range spec.Arrivals {
		if a == nil {
			return p, fmt.Errorf("core: campaign arrival model %d is nil", i)
		}
	}
	if spec.Keys != nil && len(spec.Keys) != len(spec.Arrivals) {
		return p, fmt.Errorf("core: campaign has %d keys for %d arrival models", len(spec.Keys), len(spec.Arrivals))
	}
	if spec.Days <= 0 {
		return p, fmt.Errorf("core: campaign needs days >= 1, got %d", spec.Days)
	}
	p.minutes = spec.MinutesPerDay
	if p.minutes == 0 {
		p.minutes = 24 * 60
	}
	if p.minutes < 0 {
		return p, fmt.Errorf("core: campaign needs minutes per day >= 0, got %d", p.minutes)
	}
	p.weights = spec.PhaseWeights
	if p.weights == nil {
		p.weights = phaseWeightTable()
	}
	if len(p.weights) == 0 {
		return p, errors.New("core: campaign phase-weight table is empty")
	}
	if spec.StartMinute < 0 {
		return p, fmt.Errorf("core: campaign start minute %d is negative", spec.StartMinute)
	}
	p.cells = len(spec.Arrivals) * spec.Days
	p.workers = resolveWorkers(p.cells, spec.Workers)
	return p, nil
}

// GenerateCampaign generates every (BS, day) cell of the spec on the
// worker pool and returns the blocks in cell order (BS-major:
// block index = bs*Days + day). The result is bit-identical for every
// worker count and depends only on (generator seed, spec). Campaign
// generation is a v2 feature; v1 generators return an error.
//
// GenerateCampaign materializes the whole campaign at once; callers
// that fold cells into an aggregate (a demand trace, a file, a
// collector) should use GenerateCampaignFold, which keeps O(workers)
// cells live instead of cells = BSs × days.
func (g *Generator) GenerateCampaign(spec CampaignSpec) ([]DayBlock, error) {
	p, err := g.validateCampaign(spec)
	if err != nil {
		return nil, err
	}
	blocks := make([]DayBlock, p.cells)
	scratch := make([]genScratch, p.workers)
	runTasksWorker(p.cells, p.workers, func(w, cell int) {
		bs := cell / spec.Days
		day := cell % spec.Days
		key := uint64(bs)
		if spec.Keys != nil {
			key = spec.Keys[bs]
		}
		blk := &blocks[cell]
		blk.BS, blk.Day = bs, day
		g.generateCell(blk, spec.Arrivals[bs], key, uint64(day), p.minutes, spec.StartMinute, p.weights, &scratch[w])
	})
	if obs.Enabled() {
		var sessions int64
		for i := range blocks {
			sessions += int64(blocks[i].Sessions())
		}
		obs.CounterOf("gen_sessions_total").Add(sessions)
		obs.CounterOf("gen_minutes_total").Add(int64(p.cells) * int64(p.minutes))
	}
	return blocks, nil
}

// GenerateCampaignFold generates the same cells as GenerateCampaign
// but never materializes the campaign: cells are produced concurrently
// on the worker pool and handed to visit strictly in cell order
// (BS-major, the order GenerateCampaign returns), with the block
// storage recycled through a freelist once visit returns. The blocks
// visit sees are bit-identical to GenerateCampaign's for every worker
// count; only their lifetime differs. The *DayBlock argument — and its
// backing arrays — is only valid during the visit call: the fold
// reuses it for a later cell, so callers that need to keep cell data
// must copy it out. A non-nil error from visit stops the campaign
// early and is returned.
func (g *Generator) GenerateCampaignFold(spec CampaignSpec, visit func(*DayBlock) error) error {
	p, err := g.validateCampaign(spec)
	if err != nil {
		return err
	}
	scratch := make([]genScratch, p.workers)
	var sessions, minutes int64
	err = FoldTasks(p.cells, p.workers, func(w, cell int, blk *DayBlock) {
		bs := cell / spec.Days
		day := cell % spec.Days
		key := uint64(bs)
		if spec.Keys != nil {
			key = spec.Keys[bs]
		}
		blk.BS, blk.Day = bs, day
		g.generateCell(blk, spec.Arrivals[bs], key, uint64(day), p.minutes, spec.StartMinute, p.weights, &scratch[w])
	}, func(cell int, blk *DayBlock) error {
		sessions += int64(blk.Sessions())
		minutes += int64(p.minutes)
		return visit(blk)
	})
	if obs.Enabled() {
		obs.CounterOf("gen_sessions_total").Add(sessions)
		obs.CounterOf("gen_minutes_total").Add(minutes)
	}
	return err
}

// GenerateDays is the single-BS convenience form of GenerateCampaign:
// days day-blocks for one BS of the given load class (an index into
// the model set's arrival models), keyed by the class.
func (g *Generator) GenerateDays(class, days, workers int) ([]DayBlock, error) {
	if class < 0 || class >= len(g.Set.Arrivals) {
		return nil, fmt.Errorf("core: arrival class %d out of range [0, %d)", class, len(g.Set.Arrivals))
	}
	return g.GenerateCampaign(CampaignSpec{
		Arrivals: []*ArrivalModel{g.Set.Arrivals[class]},
		Keys:     []uint64{uint64(class)},
		Days:     days,
		Workers:  workers,
	})
}

// expectedCellSessions estimates the mean session count of one
// (BS, day) cell from the arrival model and the phase-weight profile:
// each minute contributes the phase-weighted mix of the daytime
// Gaussian mean and the (capped) nighttime Pareto mean. A fresh
// block's first allocation lands at its steady-state size instead of
// doubling toward it, which matters to callers that run many
// short-lived folds (one per antenna study) under a memory budget.
func expectedCellSessions(arr *ArrivalModel, minutes, startMinute int, weights []float64) int {
	// The sampler caps the Pareto rate at PeakMu/2; use the smaller of
	// that cap and the uncapped Pareto mean scale*shape/(shape-1).
	offMean := arr.PeakMu * 0.5
	if arr.OffShape > 1 {
		if m := arr.OffScale * arr.OffShape / (arr.OffShape - 1); m < offMean {
			offMean = m
		}
	}
	var e float64
	for m := 0; m < minutes; m++ {
		w := weights[(startMinute+m)%len(weights)]
		e += w*arr.PeakMu + (1-w)*offMean
	}
	return int(e)
}

// generateCell fills one (BS, day) block from the cell's substream.
// Per minute the stream consumes: one phase uniform, the arrival count
// draw, then — when n > 0 — five rectangular batches of n variates in
// a fixed order. Every variate is drawn unconditionally (component
// uniforms even for peak-free models, noise Gaussians even at zero
// noise), so the draw layout never depends on sampled structure and
// two cells with the same key and day are always identical.
// A block whose backing arrays are large enough is refilled in place
// (the fold path recycles blocks through a freelist); a zero-valued
// block allocates with an arrival-rate-derived capacity estimate.
func (g *Generator) generateCell(blk *DayBlock, arr *ArrivalModel, key, day uint64, minutes, startMinute int, weights []float64, sc *genScratch) {
	var rng = g.pcg // copy the type, not the state:
	rng.SeedStream(g.seed^genCampaignDomain, key, day)

	if cap(blk.Offsets) >= minutes+1 {
		blk.Offsets = blk.Offsets[:minutes+1]
		blk.Offsets[0] = 0
	} else {
		blk.Offsets = make([]int32, minutes+1)
	}
	if blk.Svc != nil {
		blk.Svc = blk.Svc[:0]
		blk.Volume = blk.Volume[:0]
		blk.Duration = blk.Duration[:0]
		blk.Start = blk.Start[:0]
	} else {
		est := expectedCellSessions(arr, minutes, startMinute, weights)
		est += est/8 + 64
		blk.Svc = make([]int32, 0, est)
		blk.Volume = make([]float64, 0, est)
		blk.Duration = make([]float64, 0, est)
		blk.Start = make([]float64, 0, est)
	}

	plan := g.plan
	for m := 0; m < minutes; m++ {
		peak := rng.Float64() < weights[(startMinute+m)%len(weights)]
		n := arr.SampleCountFast(peak, &rng)
		if n > 0 {
			sc.grow(n)
			rng.FillFloat64(sc.u)
			plan.svcPick.PickBatch(sc.u, sc.svc)
			rng.FillFloat64(sc.uc)
			rng.FillNorm(sc.zv)
			rng.FillNorm(sc.zd)
			rng.FillFloat64(sc.us)
			base := float64(m) * 60
			for i := 0; i < n; i++ {
				svc := sc.svc[i]
				sp := &plan.svcs[svc]
				ci := 0
				if sp.comp != nil {
					ci = sp.comp.Pick(sc.uc[i])
				}
				lnV := sp.muLn[ci] + sp.sigLn[ci]*sc.zv[i]
				var v float64
				if lnV >= sp.lnCap {
					v, lnV = sp.maxVol, sp.lnCap
				} else {
					v = math.Exp(lnV)
				}
				var d float64
				if sp.degenerate {
					d = 1
				} else {
					x := sp.invBeta*(lnV-sp.lnAlpha) + sp.noiseLn*sc.zd[i]
					switch {
					case x <= 0:
						d = 1
					case x >= lnMaxDuration:
						d = MaxSessionDuration
					default:
						d = math.Exp(x)
					}
				}
				blk.Svc = append(blk.Svc, svc)
				blk.Volume = append(blk.Volume, v)
				blk.Duration = append(blk.Duration, d)
				blk.Start = append(blk.Start, base+sc.us[i]*60)
			}
		}
		blk.Offsets[m+1] = int32(len(blk.Svc))
	}
}
