package core

import (
	"errors"
	"math"
	"math/rand"

	"mobiletraffic/internal/dist"
	"mobiletraffic/internal/mathx"
)

// ParetoShape is the fixed off-peak Pareto shape of §5.1: the
// measurement data across all BS load deciles is well fitted with
// b = 1.765, varying only the scale per antenna class.
const ParetoShape = 1.765

// ArrivalModel is the bi-modal per-minute session arrival model of
// §5.1 for one BS (or one BS load class): a daytime Gaussian mode and a
// nighttime Pareto mode, fitted separately so day or night traffic can
// be emulated independently.
type ArrivalModel struct {
	// PeakMu and PeakSigma parametrize the daytime Gaussian; across the
	// paper's BS deciles PeakMu spans 1.21 to 71 sessions/minute and
	// PeakSigma tracks PeakMu/10.
	PeakMu    float64 `json:"peak_mu"`
	PeakSigma float64 `json:"peak_sigma"`
	// OffShape and OffScale parametrize the nighttime Pareto; OffShape
	// is fixed to ParetoShape when fitted via FitArrivalModel.
	OffShape float64 `json:"off_shape"`
	OffScale float64 `json:"off_scale"`
}

// FitArrivalModel fits the two arrival modes from per-minute count
// samples taken during peak (daytime) and off-peak (nighttime) hours
// respectively. Following §5.1, the Gaussian is fitted by moments and
// the Pareto keeps the fixed shape 1.765 with only its scale fitted.
func FitArrivalModel(peakSamples, offSamples []float64) (*ArrivalModel, error) {
	if len(peakSamples) == 0 || len(offSamples) == 0 {
		return nil, errors.New("core: arrival fit needs samples for both modes")
	}
	n, err := dist.FitNormal(peakSamples)
	if err != nil {
		return nil, err
	}
	// Pareto scale: MLE under fixed shape uses the sample minimum, but
	// minute counts include zeros; use the positive samples only and
	// fall back to a small scale when the night is fully silent.
	var pos []float64
	for _, x := range offSamples {
		if x > 0 {
			pos = append(pos, x)
		}
	}
	scale := 0.01
	if len(pos) > 0 {
		p, err := dist.FitParetoFixedShape(pos, ParetoShape)
		if err != nil {
			return nil, err
		}
		scale = p.Scale
	}
	return &ArrivalModel{
		PeakMu:    n.Mu,
		PeakSigma: n.Sigma,
		OffShape:  ParetoShape,
		OffScale:  scale,
	}, nil
}

// SigmaRatio returns PeakSigma/PeakMu; the paper observes this ratio is
// ~1/10 across every BS load class, which lets the models set sigma
// automatically from mu.
func (m *ArrivalModel) SigmaRatio() float64 {
	if m.PeakMu == 0 {
		return math.NaN()
	}
	return m.PeakSigma / m.PeakMu
}

// AutoSigma replaces the fitted PeakSigma with the paper's automated
// setting sigma = mu/10 and returns the model for chaining.
func (m *ArrivalModel) AutoSigma() *ArrivalModel {
	m.PeakSigma = m.PeakMu / 10
	return m
}

// SampleCount draws a per-minute session count: from the daytime
// Gaussian when peak is true, from the nighttime Pareto otherwise.
// Counts are non-negative integers.
func (m *ArrivalModel) SampleCount(peak bool, rng *rand.Rand) int {
	var rate float64
	if peak {
		rate = m.PeakMu + m.PeakSigma*rng.NormFloat64()
	} else {
		rate = m.OffScale * math.Pow(1-rng.Float64(), -1/m.OffShape)
		if cap := m.PeakMu * 0.5; rate > cap {
			rate = cap
		}
	}
	n := int(math.Round(rate))
	if n < 0 {
		return 0
	}
	return n
}

// SampleCountFast is the generation-engine-v2 form of SampleCount on
// the PCG stream: the daytime Gaussian comes from the ziggurat sampler
// and the nighttime Pareto uses the inverse-CDF identity
// scale·(1−u)^(−1/shape) = scale·exp(E/shape) with E standard
// exponential, trading math.Pow for one math.Exp. Identically
// distributed to SampleCount, not draw-for-draw identical.
func (m *ArrivalModel) SampleCountFast(peak bool, rng *mathx.PCG) int {
	var rate float64
	if peak {
		rate = m.PeakMu + m.PeakSigma*rng.NormFloat64()
	} else {
		rate = m.OffScale * math.Exp(rng.ExpFloat64()/m.OffShape)
		if cap := m.PeakMu * 0.5; rate > cap {
			rate = cap
		}
	}
	n := int(math.Round(rate))
	if n < 0 {
		return 0
	}
	return n
}

// PeakPDF evaluates the fitted daytime Gaussian density at x.
func (m *ArrivalModel) PeakPDF(x float64) float64 {
	return dist.Normal{Mu: m.PeakMu, Sigma: m.PeakSigma}.PDF(x)
}

// OffPeakPDF evaluates the fitted nighttime Pareto density at x.
func (m *ArrivalModel) OffPeakPDF(x float64) float64 {
	return dist.Pareto{Shape: m.OffShape, Scale: m.OffScale}.PDF(x)
}

// FitArrivalModelsByClass fits one ArrivalModel per BS class from
// per-class peak and off-peak minute-count samples, returning the
// models plus the observed sigma/mu ratios (which the paper finds to
// cluster around 0.1 across all classes).
func FitArrivalModelsByClass(peakByClass, offByClass [][]float64) ([]*ArrivalModel, []float64, error) {
	if len(peakByClass) != len(offByClass) || len(peakByClass) == 0 {
		return nil, nil, errors.New("core: class arrival fit needs matching non-empty sample sets")
	}
	models := make([]*ArrivalModel, len(peakByClass))
	ratios := make([]float64, len(peakByClass))
	for i := range peakByClass {
		m, err := FitArrivalModel(peakByClass[i], offByClass[i])
		if err != nil {
			return nil, nil, err
		}
		models[i] = m
		ratios[i] = m.SigmaRatio()
	}
	return models, ratios, nil
}

// ArrivalGrowthRate fits the exponential growth of a per-class
// parameter (e.g. PeakMu or OffScale) across load classes, returning
// the per-class multiplicative factor. The paper notes mu and the
// Pareto scale grow exponentially at similar rates across deciles.
func ArrivalGrowthRate(values []float64) (float64, error) {
	if len(values) < 2 {
		return 0, errors.New("core: growth rate needs >= 2 classes")
	}
	logs := make([]float64, 0, len(values))
	for _, v := range values {
		if v <= 0 {
			return 0, errors.New("core: growth rate needs positive values")
		}
		logs = append(logs, math.Log(v))
	}
	xs := mathx.LinSpace(0, float64(len(values)-1), len(values))
	line, err := fitLine(xs, logs)
	if err != nil {
		return 0, err
	}
	return math.Exp(line), nil
}

// fitLine returns the OLS slope of ys on xs.
func fitLine(xs, ys []float64) (float64, error) {
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	det := n*sxx - sx*sx
	if det == 0 {
		return 0, errors.New("core: degenerate growth fit")
	}
	return (n*sxy - sx*sy) / det, nil
}
