package core

import (
	"sync"
	"sync/atomic"
)

// Ordered fold over the shared worker pool: produce tasks concurrently,
// consume their results strictly in task-index order, and recycle the
// result slots so a campaign of N cells keeps O(workers) cells live
// instead of materializing all N. This is the substrate of
// Generator.GenerateCampaignFold and the experiments' demand builders
// (see DESIGN.md "Lane-split kernels and LCG jump-ahead" — fold-order
// determinism).
//
// Slots come from an explicit freelist rather than a sync.Pool: a pool
// may drop buffers between GCs or keep per-P caches, which makes
// allocation behavior depend on the scheduler and GC timing; the
// freelist keeps slot reuse a pure function of the fold's own
// progress, so allocation counts are reproducible run to run.

// foldWindow bounds how far producers may run ahead of the fold, in
// tasks, as a multiple of the worker count: live slots are capped at
// roughly (1 + foldWindow) * workers, which keeps memory flat while
// leaving enough slack that a slow cell rarely stalls the pool.
const foldWindow = 2

// FoldTasks runs produce(w, i, slot) for every i in [0, n) on up to
// workers goroutines (the same claim-from-a-counter pool as RunTasks)
// and calls visit(i, slot) exactly once per task in increasing task
// order, serially. Slots start as new(T) and are recycled through a
// freelist after their visit returns, so produce implementations that
// reuse the slot's backing arrays make the steady state of a long fold
// allocation-free. The visit order — and therefore any order-dependent
// accumulation the caller performs — is independent of the worker
// count and schedule. A non-nil error from visit stops the fold early
// (producers finish their in-flight task) and is returned.
func FoldTasks[T any](n, workers int, produce func(worker, i int, slot *T), visit func(i int, slot *T) error) error {
	if n <= 0 {
		return nil
	}
	workers = resolveWorkers(n, workers)
	if workers <= 1 {
		// Serial fold: one slot reused for every task.
		slot := new(T)
		for i := 0; i < n; i++ {
			produce(0, i, slot)
			if err := visit(i, slot); err != nil {
				return err
			}
		}
		return nil
	}

	window := foldWindow * workers
	ctl := &foldCtl[T]{
		ready: make(map[int]*T, window+workers),
	}
	ctl.cond = sync.NewCond(&ctl.mu)

	var wg sync.WaitGroup
	var claim atomic.Int64
	claim.Store(-1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(claim.Add(1))
				if i >= n {
					return
				}
				ctl.mu.Lock()
				for i >= ctl.next+window && !ctl.stopped {
					ctl.cond.Wait()
				}
				if ctl.stopped {
					ctl.mu.Unlock()
					return
				}
				slot := ctl.takeSlot()
				ctl.mu.Unlock()

				produce(w, i, slot)

				ctl.mu.Lock()
				ctl.ready[i] = slot
				// Whichever worker publishes the next-needed task
				// becomes the folder and drains the ready run; the
				// folding flag keeps visits serial.
				for !ctl.folding && !ctl.stopped {
					s, ok := ctl.ready[ctl.next]
					if !ok {
						break
					}
					delete(ctl.ready, ctl.next)
					idx := ctl.next
					ctl.folding = true
					ctl.mu.Unlock()
					err := visit(idx, s)
					ctl.mu.Lock()
					ctl.folding = false
					ctl.free = append(ctl.free, s)
					if err != nil {
						ctl.err = err
						ctl.stopped = true
						break
					}
					ctl.next++
				}
				ctl.cond.Broadcast()
				ctl.mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	return ctl.err
}

// foldCtl is the shared state of one parallel ordered fold.
type foldCtl[T any] struct {
	mu      sync.Mutex
	cond    *sync.Cond
	ready   map[int]*T // produced but not yet visited, by task index
	free    []*T       // recycled slots
	next    int        // next task index to visit
	folding bool       // a worker is inside visit
	stopped bool       // visit errored: stop claiming and waiting
	err     error
}

// takeSlot pops a recycled slot or allocates a fresh one. Caller holds mu.
func (c *foldCtl[T]) takeSlot() *T {
	if k := len(c.free); k > 0 {
		s := c.free[k-1]
		c.free = c.free[:k-1]
		return s
	}
	return new(T)
}
