// Package core implements the paper's primary contribution (§5): the
// session-level mobile traffic models. It provides
//
//   - ArrivalModel: the bi-modal per-minute session arrival model of
//     §5.1 (daytime Gaussian with sigma ~ mu/10, nighttime Pareto with
//     fixed shape 1.765) with the measurement-driven per-service
//     breakdown of Table 1;
//   - VolumeModel: the log-normal mixture model of the per-session
//     traffic volume PDF F_s(x) of §5.2, fitted with the three-step
//     main-trend / residual-peak / composition algorithm;
//   - DurationModel: the power-law duration-volume model
//     v_s(d) = alpha_s * d^beta_s of §5.3 fitted with
//     Levenberg-Marquardt;
//   - ServiceModel and Generator: the released parameter tuple
//     [mu_s, sigma_s, {k_n, mu_n, sigma_n}, alpha_s, beta_s] (§5.4) and
//     a synthetic session generator built on it.
package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"mobiletraffic/internal/dist"
	"mobiletraffic/internal/fit"
)

// MaxPeaks caps the residual mixture components per service: the paper
// finds at most 3 peaks carry non-negligible weight and aligns all
// models to that bound (§5.2).
const MaxPeaks = 3

// MinPeakWeight drops residual components below this weight; the paper
// reports peaks beyond the top 3 weigh under 1e-4.
const MinPeakWeight = 1e-4

// MaxPeakSigma caps the width of a residual component: the paper
// describes the residual modes as "abrupt and marked spikes" of
// probability, i.e. low-variance log-normals. Without the cap a broad
// residual shoulder (e.g. from transient sessions) could masquerade as
// one enormous peak and blow up the mixture's byte-domain mean.
const MaxPeakSigma = 0.3

// VolumeComponent is one residual mixture component f_{s,n} of Eq. (4):
// a base-10 log-normal with weight K, center Mu (log10 bytes) and
// width Sigma (decades).
type VolumeComponent struct {
	K     float64 `json:"k"`
	Mu    float64 `json:"mu"`
	Sigma float64 `json:"sigma"`
}

// VolumeModel is the log-normal mixture model of F_s(x) (Eq. 5): a main
// log-normal trend plus up to MaxPeaks residual peaks. All parameters
// live in the log10-bytes domain.
type VolumeModel struct {
	MainMu    float64           `json:"mu"`
	MainSigma float64           `json:"sigma"`
	Peaks     []VolumeComponent `json:"peaks,omitempty"`
	// MaxVolume is the upper support of the measurement PDF the model
	// was fitted on (bytes); generation never extrapolates beyond it.
	// Zero means unbounded (falls back to MaxSampleVolume).
	MaxVolume float64 `json:"max_volume,omitempty"`
}

// totalWeight returns 1 + sum k_n, the Eq. (5) normalizer.
func (m *VolumeModel) totalWeight() float64 {
	t := 1.0
	for _, p := range m.Peaks {
		t += p.K
	}
	return t
}

// PDFLog10 evaluates the modeled density over u = log10(bytes):
// Eq. (5) restricted to the log domain.
func (m *VolumeModel) PDFLog10(u float64) float64 {
	gauss := func(mu, sigma float64) float64 {
		if sigma <= 0 {
			return 0
		}
		z := (u - mu) / sigma
		return math.Exp(-z*z/2) / (sigma * math.Sqrt(2*math.Pi))
	}
	s := gauss(m.MainMu, m.MainSigma)
	for _, p := range m.Peaks {
		s += p.K * gauss(p.Mu, p.Sigma)
	}
	return s / m.totalWeight()
}

// Hist renders the model on a log10-bytes bin grid, normalized; used to
// compare the model against a measurement PDF on the same grid.
func (m *VolumeModel) Hist(edges []float64) (*dist.Hist, error) {
	h, err := dist.NewHist(edges)
	if err != nil {
		return nil, err
	}
	norm := dist.Normal{Mu: m.MainMu, Sigma: m.MainSigma}
	for i := range h.P {
		mass := norm.CDF(h.Edges[i+1]) - norm.CDF(h.Edges[i])
		for _, p := range m.Peaks {
			pn := dist.Normal{Mu: p.Mu, Sigma: p.Sigma}
			mass += p.K * (pn.CDF(h.Edges[i+1]) - pn.CDF(h.Edges[i]))
		}
		h.P[i] = mass
	}
	if err := h.Normalize(); err != nil {
		return nil, err
	}
	return h, nil
}

// MaxSampleVolume caps generated volumes at the top of the measurement
// grid (~30 GB): the fitted mixture is only supported there.
const MaxSampleVolume = 3e10

// Sample draws one per-session traffic volume in bytes.
func (m *VolumeModel) Sample(rng *rand.Rand) float64 {
	u := rng.Float64() * m.totalWeight()
	var v float64
	switch {
	case u < 1:
		v = math.Pow(10, m.MainMu+m.MainSigma*rng.NormFloat64())
	default:
		u -= 1
		for _, p := range m.Peaks {
			if u < p.K {
				v = math.Pow(10, p.Mu+p.Sigma*rng.NormFloat64())
				break
			}
			u -= p.K
		}
		if v == 0 {
			v = math.Pow(10, m.MainMu+m.MainSigma*rng.NormFloat64())
		}
	}
	cap := m.MaxVolume
	if cap <= 0 {
		cap = MaxSampleVolume
	}
	if v > cap {
		return cap
	}
	return v
}

// EMD returns the earth-mover distance between the model and a
// measurement histogram on the histogram's grid — the §5.4 quality
// metric (reported there in the 1e-5 order for all services).
func (m *VolumeModel) EMD(measured *dist.Hist) (float64, error) {
	mh, err := m.Hist(measured.Edges)
	if err != nil {
		return 0, err
	}
	return dist.EMD(measured, mh)
}

// VolumeFitOptions tunes the three-step fitting algorithm of §5.2.
type VolumeFitOptions struct {
	// Threshold is the residual-derivative threshold (default 1e-5, the
	// paper's service-independent choice).
	Threshold float64
	// MaxPeaks caps the retained components (default MaxPeaks = 3).
	// Set to -1 for the uncapped ablation.
	MaxPeaks int
	// UseFiniteDiff switches the residual differentiator from
	// Savitzky-Golay to a raw finite difference (smoothing ablation).
	UseFiniteDiff bool
}

func (o *VolumeFitOptions) withDefaults() VolumeFitOptions {
	out := VolumeFitOptions{Threshold: 1e-5, MaxPeaks: MaxPeaks}
	if o == nil {
		return out
	}
	if o.Threshold > 0 {
		out.Threshold = o.Threshold
	}
	if o.MaxPeaks > 0 || o.MaxPeaks == -1 {
		out.MaxPeaks = o.MaxPeaks
	}
	out.UseFiniteDiff = o.UseFiniteDiff
	return out
}

// FitVolumeModel runs the three-step decomposition of §5.2 on a
// measured per-session volume PDF (a histogram over log10 bytes):
//
//  1. fit the main log-normal trend f_s and subtract it, clamping the
//     residual at zero;
//  2. locate residual peaks via the thresholded Savitzky-Golay first
//     derivative, ranking intervals by contained probability;
//  3. model each retained peak as a log-normal with mu at the interval's
//     probability maximum, sigma = 0.997*span/3 and weight k equal to
//     the interval's residual mass, then compose Eq. (5).
func FitVolumeModel(measured *dist.Hist, opts *VolumeFitOptions) (*VolumeModel, error) {
	o := opts.withDefaults()
	if measured == nil || measured.Total() <= 0 {
		return nil, errors.New("core: volume fit needs a non-empty measurement histogram")
	}
	h := measured.Clone()
	if err := h.Normalize(); err != nil {
		return nil, err
	}
	centers := h.Centers()

	// The three steps of §5.2, run twice: the second pass refits the
	// main trend on the histogram with the modeled peaks subtracted, so
	// heavy characteristic peaks do not skew the main log-normal's
	// moments.
	base := h.Clone()
	var model *VolumeModel
	for pass := 0; pass < 2; pass++ {
		// Step 1: main log-normal trend. In the log10 domain the
		// histogram moments are the Gaussian MLE.
		model = &VolumeModel{MainMu: base.Mean(), MainSigma: base.Std()}
		if model.MainSigma <= 0 {
			return nil, fmt.Errorf("core: degenerate volume PDF (zero spread)")
		}
		main := dist.Normal{Mu: model.MainMu, Sigma: model.MainSigma}
		// Residual against the *measured* PDF, scaled so the main
		// component carries the base histogram's share of the mass.
		baseTotal := base.Total()
		residual := make([]float64, h.Bins())
		for i := range residual {
			expected := baseTotal * (main.CDF(h.Edges[i+1]) - main.CDF(h.Edges[i]))
			r := h.P[i] - expected
			if r > 0 {
				residual[i] = r
			}
		}

		// Step 2: peak identification on the residual.
		peaks, err := fit.DetectPeaks(residual, &fit.PeakOptions{
			Threshold:     o.Threshold,
			UseFiniteDiff: o.UseFiniteDiff,
			MinMass:       MinPeakWeight,
		})
		if err != nil {
			return nil, err
		}
		if o.MaxPeaks >= 0 && len(peaks) > o.MaxPeaks {
			peaks = peaks[:o.MaxPeaks]
		}

		// Step 3: log-normal components per retained peak.
		model.Peaks = nil
		for _, p := range peaks {
			span := h.Edges[p.Hi+1] - h.Edges[p.Lo]
			sigma := 0.997 * span / 3
			if sigma > MaxPeakSigma {
				sigma = MaxPeakSigma
			}
			if sigma <= 0 {
				continue
			}
			model.Peaks = append(model.Peaks, VolumeComponent{
				K:     p.Mass / baseTotal,
				Mu:    centers[p.Center],
				Sigma: sigma,
			})
		}
		if pass == 1 || len(model.Peaks) == 0 {
			break
		}
		// Prepare the refinement pass: subtract the modeled peak mass
		// from the measurement and refit the main trend on what is
		// left.
		base = h.Clone()
		for _, c := range model.Peaks {
			pn := dist.Normal{Mu: c.Mu, Sigma: c.Sigma}
			for i := range base.P {
				base.P[i] -= c.K * baseTotal * (pn.CDF(h.Edges[i+1]) - pn.CDF(h.Edges[i]))
				if base.P[i] < 0 {
					base.P[i] = 0
				}
			}
		}
		if base.Total() <= 0 {
			break
		}
	}
	// Record the measured support ceiling (99.99th percentile of the
	// measurement PDF) so generation does not extrapolate the fitted
	// log-normal tails past what was ever observed.
	model.MaxVolume = math.Pow(10, h.Quantile(1-1e-4))
	return model, nil
}
