package core

import (
	"math"
	"math/rand"
	"testing"

	"mobiletraffic/internal/dist"
	"mobiletraffic/internal/mathx"
	"mobiletraffic/internal/services"
)

// truthHist renders a service's ground-truth volume mixture on the
// measurement grid.
func truthHist(t *testing.T, name string, edges []float64) *dist.Hist {
	t.Helper()
	p, err := services.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	h, err := dist.NewHist(edges)
	if err != nil {
		t.Fatal(err)
	}
	centers := h.Centers()
	for i, u := range centers {
		h.P[i] = p.VolumeLogPDF(u) * (h.Edges[i+1] - h.Edges[i])
	}
	if err := h.Normalize(); err != nil {
		t.Fatal(err)
	}
	return h
}

var volEdges = mathx.LinSpace(2, 10.5, 171)

func TestFitVolumeModelRecoversNetflixPeaks(t *testing.T) {
	h := truthHist(t, "Netflix", volEdges)
	m, err := FitVolumeModel(h, nil)
	if err != nil {
		t.Fatal(err)
	}
	truth, _ := services.ByName("Netflix")
	// Main trend near the seeded log-normal.
	if math.Abs(m.MainMu-truth.MainMu) > 0.35 {
		t.Errorf("main mu = %v, want ~%v", m.MainMu, truth.MainMu)
	}
	// The 40 MB mode (log10 = 7.6) must be among the recovered peaks.
	found := false
	for _, p := range m.Peaks {
		if math.Abs(p.Mu-7.6) < 0.15 {
			found = true
		}
	}
	if !found {
		t.Errorf("7.6-decade Netflix mode not recovered; peaks = %+v", m.Peaks)
	}
	if len(m.Peaks) > MaxPeaks {
		t.Errorf("peaks = %d, want <= %d", len(m.Peaks), MaxPeaks)
	}
}

func TestFitVolumeModelQualityEMD(t *testing.T) {
	// §5.4: the mixture model's EMD against the measurement PDF must be
	// far below typical inter-service distances (~1e-1 in the log
	// domain); the paper reports order 1e-5 on its (much finer) data.
	for _, name := range []string{"Netflix", "Twitch", "Deezer", "Facebook", "Amazon", "Waze"} {
		h := truthHist(t, name, volEdges)
		m, err := FitVolumeModel(h, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		emd, err := m.EMD(h)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if emd > 0.08 {
			t.Errorf("%s: model EMD = %v, want < 0.08 decades", name, emd)
		}
	}
}

func TestFitVolumeModelNoPeaksForPlainLogNormal(t *testing.T) {
	h, err := dist.NewHist(volEdges)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.FillFromDist(dist.Normal{Mu: 5.0, Sigma: 0.8}); err != nil {
		t.Fatal(err)
	}
	m, err := FitVolumeModel(h, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.MainMu-5.0) > 0.05 || math.Abs(m.MainSigma-0.8) > 0.05 {
		t.Errorf("main = (%v, %v)", m.MainMu, m.MainSigma)
	}
	// A pure log-normal leaves only numerical residue: any detected
	// peaks must carry trivial weight.
	for _, p := range m.Peaks {
		if p.K > 0.01 {
			t.Errorf("spurious peak %+v on plain log-normal", p)
		}
	}
}

func TestFitVolumeModelValidation(t *testing.T) {
	if _, err := FitVolumeModel(nil, nil); err == nil {
		t.Error("nil histogram must error")
	}
	empty, _ := dist.NewHist(volEdges)
	if _, err := FitVolumeModel(empty, nil); err == nil {
		t.Error("empty histogram must error")
	}
	// All mass in one bin: degenerate spread.
	oneBin, _ := dist.NewHist(volEdges)
	oneBin.P[50] = 1
	if _, err := FitVolumeModel(oneBin, nil); err == nil {
		t.Error("zero-spread histogram must error")
	}
}

func TestVolumeModelPDFIntegratesToOne(t *testing.T) {
	m := &VolumeModel{MainMu: 6, MainSigma: 0.8, Peaks: []VolumeComponent{
		{K: 0.1, Mu: 7.5, Sigma: 0.1}, {K: 0.05, Mu: 8.2, Sigma: 0.1},
	}}
	us := mathx.LinSpace(0, 12, 4801)
	ys := make([]float64, len(us))
	for i, u := range us {
		ys[i] = m.PDFLog10(u)
	}
	if got := mathx.Trapezoid(us, ys); math.Abs(got-1) > 1e-3 {
		t.Errorf("PDF integral = %v", got)
	}
}

func TestVolumeModelSampleMatchesMixture(t *testing.T) {
	m := &VolumeModel{MainMu: 6, MainSigma: 0.5, Peaks: []VolumeComponent{
		{K: 0.25, Mu: 8, Sigma: 0.1},
	}}
	rng := rand.New(rand.NewSource(1))
	const n = 100000
	inPeak := 0
	for i := 0; i < n; i++ {
		if math.Log10(m.Sample(rng)) > 7.5 {
			inPeak++
		}
	}
	// Peak weight 0.25 of total 1.25 -> 20% of samples.
	frac := float64(inPeak) / n
	if math.Abs(frac-0.2) > 0.01 {
		t.Errorf("peak fraction = %v, want ~0.2", frac)
	}
}

func TestVolumeModelHistNormalized(t *testing.T) {
	m := &VolumeModel{MainMu: 6, MainSigma: 0.8}
	h, err := m.Hist(volEdges)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h.Total()-1) > 1e-9 {
		t.Errorf("model hist total = %v", h.Total())
	}
	if math.Abs(h.Mean()-6) > 0.02 {
		t.Errorf("model hist mean = %v", h.Mean())
	}
}

func TestPeakCapAblation(t *testing.T) {
	// With many seeded peaks, the capped fit keeps the heaviest 3 and
	// the uncapped fit may keep more.
	h, err := dist.NewHist(volEdges)
	if err != nil {
		t.Fatal(err)
	}
	mix := &VolumeModel{MainMu: 6, MainSigma: 1.0, Peaks: []VolumeComponent{
		{K: 0.20, Mu: 4.0, Sigma: 0.08},
		{K: 0.15, Mu: 5.0, Sigma: 0.08},
		{K: 0.10, Mu: 7.2, Sigma: 0.08},
		{K: 0.08, Mu: 8.2, Sigma: 0.08},
		{K: 0.06, Mu: 9.0, Sigma: 0.08},
	}}
	centers := h.Centers()
	for i, u := range centers {
		h.P[i] = mix.PDFLog10(u) * (h.Edges[i+1] - h.Edges[i])
	}
	if err := h.Normalize(); err != nil {
		t.Fatal(err)
	}
	capped, err := FitVolumeModel(h, nil)
	if err != nil {
		t.Fatal(err)
	}
	uncapped, err := FitVolumeModel(h, &VolumeFitOptions{MaxPeaks: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(capped.Peaks) > 3 {
		t.Errorf("capped peaks = %d", len(capped.Peaks))
	}
	if len(uncapped.Peaks) < len(capped.Peaks) {
		t.Errorf("uncapped (%d) found fewer peaks than capped (%d)",
			len(uncapped.Peaks), len(capped.Peaks))
	}
	// The uncapped model must fit comparably or better (the two-pass
	// main-trend refinement makes the comparison non-monotone within a
	// few percent).
	ce, _ := capped.EMD(h)
	ue, _ := uncapped.EMD(h)
	if ue > ce*1.1+1e-9 {
		t.Errorf("uncapped EMD %v clearly worse than capped %v", ue, ce)
	}
}
