package core

import (
	"reflect"
	"testing"

	"mobiletraffic/internal/netsim"
	"mobiletraffic/internal/obs"
)

// fitBothWays fits the same measurements serially (Workers: 1) and with
// a wide worker pool and returns both outcomes for comparison.
func fitBothWays(t *testing.T, days, numBS int) (serialSet, parSet *ModelSet, serialRep, parRep *FitReport) {
	t.Helper()
	coll, sim := buildMeasurement(t, netsim.SimConfig{Days: days, Seed: 23}, numBS)
	var err error
	serialSet, serialRep, err = FitServiceModelsReport(coll, sim.Services, &FitOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parSet, parRep, err = FitServiceModelsReport(coll, sim.Services, &FitOptions{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	return serialSet, parSet, serialRep, parRep
}

// TestParallelFitBitIdentical is the determinism contract of the
// parallel fitting pipeline: every fitted parameter and the full
// degradation report must be bitwise identical between a serial run and
// a parallel one over the same collector — with instrumentation both
// off and on (live counters and spans must not perturb the numerics).
func TestParallelFitBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	for _, instrumented := range []bool{false, true} {
		old := obs.Default()
		if instrumented {
			obs.SetDefault(obs.NewRegistry())
		} else {
			obs.SetDefault(nil)
		}
		serialSet, parSet, serialRep, parRep := fitBothWays(t, 2, 12)
		obs.SetDefault(old)

		if !reflect.DeepEqual(serialSet, parSet) {
			t.Errorf("instrumented=%v: parallel ModelSet differs from serial", instrumented)
		}
		if !reflect.DeepEqual(serialRep, parRep) {
			t.Errorf("instrumented=%v: parallel FitReport differs from serial", instrumented)
		}
	}
}

// TestParallelArrivalFitBitIdentical pins the same contract for the
// per-decile arrival fits, including the serial nearest-decile
// backfill that follows the parallel section.
func TestParallelArrivalFitBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	coll, sim := buildMeasurement(t, netsim.SimConfig{Days: 2, Seed: 29}, 20)
	serial, serialRep, err := FitArrivalsByDecileWorkers(coll, sim.Topo, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, parRep, err := FitArrivalsByDecileWorkers(coll, sim.Topo, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, par) {
		t.Error("parallel arrival models differ from serial")
	}
	if !reflect.DeepEqual(serialRep, parRep) {
		t.Error("parallel arrival FitReport differs from serial")
	}
}
