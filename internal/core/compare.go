package core

import (
	"errors"
	"math"
	"sort"
)

// Model comparison utilities. The paper notes its models "will require
// updates over the years to consider changes in popularity and new
// services" (§7); comparing model sets fitted on different campaigns
// (different periods, regions or operators) quantifies that drift and
// doubles as a stability check: §4.4 predicts near-zero drift across
// days of the same campaign.

// ModelDelta quantifies the difference between two fitted models of the
// same service.
type ModelDelta struct {
	Name string
	// DeltaMu and DeltaSigma are absolute differences of the main
	// volume trend parameters (log10 decades).
	DeltaMu    float64
	DeltaSigma float64
	// DeltaBeta is the absolute difference of the power-law exponent.
	DeltaBeta float64
	// AlphaRatio is the ratio of power-law prefactors (1 = identical);
	// expressed as max/min so it is always >= 1.
	AlphaRatio float64
	// ShareDelta is the absolute difference of session shares.
	ShareDelta float64
	// PeakCountDelta is the difference in retained mixture components.
	PeakCountDelta int
}

// CompareModels computes the parameter deltas between two models of the
// same service.
func CompareModels(a, b *ServiceModel) ModelDelta {
	d := ModelDelta{
		Name:           a.Name,
		DeltaMu:        math.Abs(a.Volume.MainMu - b.Volume.MainMu),
		DeltaSigma:     math.Abs(a.Volume.MainSigma - b.Volume.MainSigma),
		DeltaBeta:      math.Abs(a.Duration.Beta - b.Duration.Beta),
		ShareDelta:     math.Abs(a.SessionShare - b.SessionShare),
		PeakCountDelta: len(a.Volume.Peaks) - len(b.Volume.Peaks),
	}
	if a.Duration.Alpha > 0 && b.Duration.Alpha > 0 {
		r := a.Duration.Alpha / b.Duration.Alpha
		if r < 1 {
			r = 1 / r
		}
		d.AlphaRatio = r
	}
	return d
}

// SetComparison is the aggregate comparison of two model sets.
type SetComparison struct {
	// Deltas holds per-service parameter differences for services
	// present in both sets, sorted by descending DeltaBeta.
	Deltas []ModelDelta
	// OnlyInA and OnlyInB list services modeled in one set only — new
	// or vanished services in a drift scenario.
	OnlyInA, OnlyInB []string
	// MedianDeltaMu and MedianDeltaBeta summarize the common services.
	MedianDeltaMu   float64
	MedianDeltaBeta float64
}

// CompareModelSets matches services by name and compares their models.
func CompareModelSets(a, b *ModelSet) (*SetComparison, error) {
	if a == nil || b == nil {
		return nil, errors.New("core: nil model set")
	}
	inB := map[string]*ServiceModel{}
	for i := range b.Services {
		inB[b.Services[i].Name] = &b.Services[i]
	}
	seen := map[string]bool{}
	out := &SetComparison{}
	var mus, betas []float64
	for i := range a.Services {
		ma := &a.Services[i]
		mb, ok := inB[ma.Name]
		if !ok {
			out.OnlyInA = append(out.OnlyInA, ma.Name)
			continue
		}
		seen[ma.Name] = true
		d := CompareModels(ma, mb)
		out.Deltas = append(out.Deltas, d)
		mus = append(mus, d.DeltaMu)
		betas = append(betas, d.DeltaBeta)
	}
	for i := range b.Services {
		if !seen[b.Services[i].Name] {
			found := false
			for _, n := range out.OnlyInA {
				if n == b.Services[i].Name {
					found = true
				}
			}
			if !found {
				out.OnlyInB = append(out.OnlyInB, b.Services[i].Name)
			}
		}
	}
	if len(out.Deltas) == 0 {
		return nil, errors.New("core: model sets share no services")
	}
	sort.SliceStable(out.Deltas, func(i, j int) bool {
		return out.Deltas[i].DeltaBeta > out.Deltas[j].DeltaBeta
	})
	sort.Float64s(mus)
	sort.Float64s(betas)
	out.MedianDeltaMu = mus[len(mus)/2]
	out.MedianDeltaBeta = betas[len(betas)/2]
	return out, nil
}
