package core

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"mobiletraffic/internal/obs"
)

func TestFitIssueString(t *testing.T) {
	skip := FitIssue{Service: "Netflix", Stage: "volume", Err: "diverged"}
	if got, want := skip.String(), "Netflix: skipped at volume stage (diverged)"; got != want {
		t.Errorf("skip String() = %q, want %q", got, want)
	}
	fb := FitIssue{Service: "Waze", Stage: "duration", Fallback: "constant-throughput power law", Err: "singular"}
	if got, want := fb.String(), "Waze: duration fit degraded to constant-throughput power law (singular)"; got != want {
		t.Errorf("fallback String() = %q, want %q", got, want)
	}
}

func TestFitReportAccumulators(t *testing.T) {
	r := &FitReport{}
	if r.Degraded() {
		t.Error("empty report reports degraded")
	}
	r.skip("Netflix", "sessions", errors.New("too few"))
	r.fallback("Twitch", "volume", "single log-normal", errors.New("diverged"))
	r.warn("no EMD for %s: %v", "Deezer", errors.New("empty hist"))
	r.skip("Deezer", "pairs", nil)

	if len(r.Skipped) != 2 || len(r.Fallbacks) != 1 || len(r.Warnings) != 1 {
		t.Fatalf("accumulators = %d/%d/%d skipped/fallbacks/warnings, want 2/1/1",
			len(r.Skipped), len(r.Fallbacks), len(r.Warnings))
	}
	if !r.Degraded() {
		t.Error("degraded report reports clean")
	}
	// skip with a nil error must not render a literal "<nil>".
	if r.Skipped[1].Err != "" {
		t.Errorf("nil-error skip recorded Err = %q, want empty", r.Skipped[1].Err)
	}
	if got, want := r.Warnings[0], "no EMD for Deezer: empty hist"; got != want {
		t.Errorf("warn formatting = %q, want %q", got, want)
	}
}

func TestFitReportMerge(t *testing.T) {
	r := &FitReport{Fitted: 3}
	r.skip("A", "sessions", errors.New("x"))
	other := &FitReport{Fitted: 9}
	other.fallback("decile 4", "arrivals", "nearest class (decile 3)", nil)
	other.skip("decile 7", "arrivals", errors.New("dark"))
	other.warn("w1")

	r.Merge(other)
	if r.Fitted != 12 {
		t.Errorf("merged Fitted = %d, want 12", r.Fitted)
	}
	if len(r.Skipped) != 2 || len(r.Fallbacks) != 1 || len(r.Warnings) != 1 {
		t.Errorf("merged issues = %d/%d/%d skipped/fallbacks/warnings, want 2/1/1",
			len(r.Skipped), len(r.Fallbacks), len(r.Warnings))
	}
	// Order must be preserved: own issues first, merged ones appended.
	if r.Skipped[0].Service != "A" || r.Skipped[1].Service != "decile 7" {
		t.Errorf("merge reordered skips: %v", r.Skipped)
	}

	// Merging nil is a no-op, not a panic.
	before := *r
	r.Merge(nil)
	if r.Fitted != before.Fitted || len(r.Skipped) != len(before.Skipped) {
		t.Error("Merge(nil) changed the report")
	}
}

func TestServiceSkipsExcludesArrivalClasses(t *testing.T) {
	r := &FitReport{}
	r.skip("Netflix", "sessions", errors.New("x"))
	r.skip("decile 2", "arrivals", errors.New("dark"))
	r.skip("Waze", "duration", errors.New("y"))
	if got := r.ServiceSkips(); got != 2 {
		t.Errorf("ServiceSkips() = %d, want 2 (arrival classes excluded)", got)
	}
}

func TestDegradedServicesSortedDeduped(t *testing.T) {
	r := &FitReport{}
	r.skip("Waze", "sessions", nil)
	r.fallback("Netflix", "volume", "single log-normal", nil)
	r.fallback("Waze", "duration", "constant-throughput power law", nil)
	r.skip("Amazon", "pairs", nil)
	got := r.DegradedServices()
	want := []string{"Amazon", "Netflix", "Waze"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("DegradedServices() = %v, want %v", got, want)
	}
}

func TestSummaryOrdering(t *testing.T) {
	r := &FitReport{Fitted: 5}
	r.warn("late warning")
	r.skip("S", "sessions", errors.New("e1"))
	r.fallback("F", "volume", "single log-normal", errors.New("e2"))

	s := r.Summary()
	lines := strings.Split(s, "\n")
	if !strings.HasPrefix(lines[0], "fitted 5, fallbacks 1, skipped 1, warnings 1") {
		t.Errorf("summary head = %q", lines[0])
	}
	// Digest first, then fallbacks, then skips, then warnings —
	// regardless of recording order.
	iFb := strings.Index(s, "F: volume fit degraded")
	iSk := strings.Index(s, "S: skipped at sessions")
	iWn := strings.Index(s, "warning: late warning")
	if iFb < 0 || iSk < 0 || iWn < 0 || !(iFb < iSk && iSk < iWn) {
		t.Errorf("summary section order wrong:\n%s", s)
	}
}

func TestReportCountersMatchAccumulators(t *testing.T) {
	old := obs.Default()
	reg := obs.NewRegistry()
	obs.SetDefault(reg)
	defer obs.SetDefault(old)

	r := &FitReport{}
	for i := 0; i < 3; i++ {
		r.skip(fmt.Sprintf("s%d", i), "sessions", errors.New("x"))
	}
	r.fallback("f", "volume", "single log-normal", nil)
	r.warn("w")

	if got := reg.Counter("fit_skipped_total").Value(); got != 3 {
		t.Errorf("fit_skipped_total = %d, want 3", got)
	}
	if got := reg.Counter("fit_fallbacks_total").Value(); got != 1 {
		t.Errorf("fit_fallbacks_total = %d, want 1", got)
	}
	if got := reg.Counter("fit_warnings_total").Value(); got != 1 {
		t.Errorf("fit_warnings_total = %d, want 1", got)
	}
}
