package core

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// runTasks runs fn(i) for every i in [0, n) on up to workers
// goroutines (workers <= 0 uses every CPU; workers == 1 runs inline).
// Tasks are claimed from an atomic counter, so each index runs exactly
// once; callers write results into pre-sized per-index slots, which
// keeps output ordering — and therefore every downstream consumer —
// independent of the schedule.
func runTasks(n, workers int, fn func(i int)) {
	runTasksWorker(n, workers, func(_, i int) { fn(i) })
}

// RunTasks is the exported form of runTasks for the experiment drivers:
// the same claim-from-a-counter pool the parallel fitting and
// generation planes run on, so every fan-out in the repository shares
// one scheduling (and therefore one determinism) story.
func RunTasks(n, workers int, fn func(i int)) { runTasks(n, workers, fn) }

// resolveWorkers normalizes a worker-count request against a task
// count exactly as the pool does, so callers can pre-size per-worker
// state (scratch buffers, output shards) to the pool that will run.
func resolveWorkers(n, workers int) int {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// runTasksWorker is runTasks with worker identity: fn(w, i) runs task i
// on worker w, with w in [0, resolveWorkers(n, workers)). Workers own
// their id for their whole lifetime, so per-worker scratch buffers are
// data-race-free by construction.
func runTasksWorker(n, workers int, fn func(worker, i int)) {
	workers = resolveWorkers(n, workers)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var wg sync.WaitGroup
	var next atomic.Int64
	next.Store(-1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				fn(w, i)
			}
		}(w)
	}
	wg.Wait()
}
