package core

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// runTasks runs fn(i) for every i in [0, n) on up to workers
// goroutines (workers <= 0 uses every CPU; workers == 1 runs inline).
// Tasks are claimed from an atomic counter, so each index runs exactly
// once; callers write results into pre-sized per-index slots, which
// keeps output ordering — and therefore every downstream consumer —
// independent of the schedule.
func runTasks(n, workers int, fn func(i int)) {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	var next atomic.Int64
	next.Store(-1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
