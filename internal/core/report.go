package core

import (
	"fmt"
	"sort"
	"strings"

	"mobiletraffic/internal/obs"
)

// Graceful-degradation accounting for the fitting pipeline. On real
// measurement campaigns the input statistics are never pristine —
// probe outages empty whole cells, classifier errors contaminate
// per-service PDFs, truncated days starve duration bins — so a fit
// that aborts on the first per-service failure would rarely return at
// all. Instead the pipeline always returns the services it could
// model plus a FitReport stating exactly which services were skipped,
// which were fitted with a fallback, and why.

// FitIssue records one per-service problem encountered while fitting.
type FitIssue struct {
	// Service is the affected service (or "decile N" for arrival fits).
	Service string `json:"service"`
	// Stage is the pipeline stage that failed: "sessions", "volume",
	// "pairs", "duration" or "arrivals".
	Stage string `json:"stage"`
	// Fallback names the substitute model used, empty when the service
	// was skipped outright.
	Fallback string `json:"fallback,omitempty"`
	// Err is the underlying failure.
	Err string `json:"error,omitempty"`
}

func (i FitIssue) String() string {
	if i.Fallback != "" {
		return fmt.Sprintf("%s: %s fit degraded to %s (%s)", i.Service, i.Stage, i.Fallback, i.Err)
	}
	return fmt.Sprintf("%s: skipped at %s stage (%s)", i.Service, i.Stage, i.Err)
}

// FitReport is the faithful account of one graceful-degradation
// fitting run: what was modeled cleanly, what needed a fallback, what
// had to be skipped.
type FitReport struct {
	// Fitted counts services (or arrival classes) modeled, including
	// fallback fits.
	Fitted int `json:"fitted"`
	// Skipped lists inputs no model could be produced for.
	Skipped []FitIssue `json:"skipped,omitempty"`
	// Fallbacks lists inputs fitted with a degraded substitute model.
	Fallbacks []FitIssue `json:"fallbacks,omitempty"`
	// Warnings lists non-fatal anomalies (e.g. a missing quality
	// metric) that did not change the fitted parameters.
	Warnings []string `json:"warnings,omitempty"`
}

// The accumulators double as the instrumentation taps of the
// graceful-degradation pipeline: every recorded issue also bumps the
// corresponding fit_* counter (no-ops when instrumentation is
// disabled), so exposition always agrees with the FitReports handed
// to callers.

func (r *FitReport) skip(service, stage string, err error) {
	r.Skipped = append(r.Skipped, FitIssue{Service: service, Stage: stage, Err: errString(err)})
	obs.CounterOf("fit_skipped_total").Inc()
}

func (r *FitReport) fallback(service, stage, fallback string, err error) {
	r.Fallbacks = append(r.Fallbacks, FitIssue{
		Service: service, Stage: stage, Fallback: fallback, Err: errString(err),
	})
	obs.CounterOf("fit_fallbacks_total").Inc()
}

func (r *FitReport) warn(format string, args ...interface{}) {
	r.Warnings = append(r.Warnings, fmt.Sprintf(format, args...))
	obs.CounterOf("fit_warnings_total").Inc()
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// Degraded reports whether anything deviated from a clean fit.
func (r *FitReport) Degraded() bool {
	return len(r.Skipped) > 0 || len(r.Fallbacks) > 0 || len(r.Warnings) > 0
}

// DegradedServices returns the sorted, de-duplicated names of every
// service that was skipped or needed a fallback.
func (r *FitReport) DegradedServices() []string {
	seen := map[string]bool{}
	var out []string
	for _, issues := range [][]FitIssue{r.Skipped, r.Fallbacks} {
		for _, i := range issues {
			if !seen[i.Service] {
				seen[i.Service] = true
				out = append(out, i.Service)
			}
		}
	}
	sort.Strings(out)
	return out
}

// ServiceSkips counts skipped services, excluding arrival-class
// ("decile N") entries, so callers can reconcile modeled + skipped
// against the catalog size.
func (r *FitReport) ServiceSkips() int {
	n := 0
	for _, i := range r.Skipped {
		if i.Stage != "arrivals" {
			n++
		}
	}
	return n
}

// Merge folds another report (e.g. the arrival-model report) into r.
func (r *FitReport) Merge(other *FitReport) {
	if other == nil {
		return
	}
	r.Fitted += other.Fitted
	r.Skipped = append(r.Skipped, other.Skipped...)
	r.Fallbacks = append(r.Fallbacks, other.Fallbacks...)
	r.Warnings = append(r.Warnings, other.Warnings...)
}

// Summary renders a one-line digest followed by one line per issue.
func (r *FitReport) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fitted %d, fallbacks %d, skipped %d, warnings %d",
		r.Fitted, len(r.Fallbacks), len(r.Skipped), len(r.Warnings))
	for _, i := range r.Fallbacks {
		b.WriteString("\n  " + i.String())
	}
	for _, i := range r.Skipped {
		b.WriteString("\n  " + i.String())
	}
	for _, w := range r.Warnings {
		b.WriteString("\n  warning: " + w)
	}
	return b.String()
}
