package core

import (
	"math"
	"testing"
)

func mkModel(name string, mu, sigma, alpha, beta, share float64, peaks int) ServiceModel {
	m := ServiceModel{
		Name:         name,
		SessionShare: share,
		Volume:       VolumeModel{MainMu: mu, MainSigma: sigma},
		Duration:     DurationModel{Alpha: alpha, Beta: beta},
	}
	for i := 0; i < peaks; i++ {
		m.Volume.Peaks = append(m.Volume.Peaks, VolumeComponent{K: 0.1, Mu: mu + 1, Sigma: 0.1})
	}
	return m
}

func TestCompareModelsDeltas(t *testing.T) {
	a := mkModel("x", 6.0, 0.8, 1000, 1.2, 0.3, 2)
	b := mkModel("x", 6.5, 0.7, 2000, 1.0, 0.25, 1)
	d := CompareModels(&a, &b)
	if math.Abs(d.DeltaMu-0.5) > 1e-12 || math.Abs(d.DeltaSigma-0.1) > 1e-12 {
		t.Errorf("volume deltas = %+v", d)
	}
	if math.Abs(d.DeltaBeta-0.2) > 1e-12 {
		t.Errorf("beta delta = %v", d.DeltaBeta)
	}
	if math.Abs(d.AlphaRatio-2) > 1e-12 {
		t.Errorf("alpha ratio = %v", d.AlphaRatio)
	}
	if math.Abs(d.ShareDelta-0.05) > 1e-12 {
		t.Errorf("share delta = %v", d.ShareDelta)
	}
	if d.PeakCountDelta != 1 {
		t.Errorf("peak delta = %d", d.PeakCountDelta)
	}
	// Ratio is symmetric (always >= 1).
	rev := CompareModels(&b, &a)
	if math.Abs(rev.AlphaRatio-d.AlphaRatio) > 1e-12 {
		t.Errorf("alpha ratio not symmetric: %v vs %v", rev.AlphaRatio, d.AlphaRatio)
	}
}

func TestCompareModelSets(t *testing.T) {
	a := &ModelSet{Services: []ServiceModel{
		mkModel("common1", 6, 0.8, 1000, 1.2, 0.5, 1),
		mkModel("common2", 5, 0.7, 500, 0.5, 0.3, 0),
		mkModel("onlyA", 4, 0.5, 100, 0.3, 0.2, 0),
	}}
	b := &ModelSet{Services: []ServiceModel{
		mkModel("common1", 6.1, 0.8, 1100, 1.25, 0.5, 1),
		mkModel("common2", 5.0, 0.7, 500, 0.9, 0.3, 0),
		mkModel("onlyB", 7, 0.9, 5000, 1.5, 0.1, 2),
	}}
	cmp, err := CompareModelSets(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.Deltas) != 2 {
		t.Fatalf("deltas = %d", len(cmp.Deltas))
	}
	// Sorted by descending beta delta: common2 (0.4) before common1 (0.05).
	if cmp.Deltas[0].Name != "common2" {
		t.Errorf("first delta = %s", cmp.Deltas[0].Name)
	}
	if len(cmp.OnlyInA) != 1 || cmp.OnlyInA[0] != "onlyA" {
		t.Errorf("onlyInA = %v", cmp.OnlyInA)
	}
	if len(cmp.OnlyInB) != 1 || cmp.OnlyInB[0] != "onlyB" {
		t.Errorf("onlyInB = %v", cmp.OnlyInB)
	}
	if cmp.MedianDeltaBeta <= 0 {
		t.Errorf("median beta delta = %v", cmp.MedianDeltaBeta)
	}
}

func TestCompareModelSetsValidation(t *testing.T) {
	if _, err := CompareModelSets(nil, &ModelSet{}); err == nil {
		t.Error("nil set must error")
	}
	a := &ModelSet{Services: []ServiceModel{mkModel("a", 1, 1, 1, 1, 1, 0)}}
	b := &ModelSet{Services: []ServiceModel{mkModel("b", 1, 1, 1, 1, 1, 0)}}
	if _, err := CompareModelSets(a, b); err == nil {
		t.Error("disjoint sets must error")
	}
}

func TestIdenticalSetsZeroDelta(t *testing.T) {
	a := &ModelSet{Services: []ServiceModel{
		mkModel("x", 6, 0.8, 1000, 1.2, 0.5, 1),
		mkModel("y", 5, 0.6, 800, 0.6, 0.5, 2),
	}}
	cmp, err := CompareModelSets(a, a)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range cmp.Deltas {
		if d.DeltaMu != 0 || d.DeltaBeta != 0 || d.AlphaRatio != 1 || d.PeakCountDelta != 0 {
			t.Errorf("self-comparison delta = %+v", d)
		}
	}
	if cmp.MedianDeltaMu != 0 || cmp.MedianDeltaBeta != 0 {
		t.Errorf("medians = %v, %v", cmp.MedianDeltaMu, cmp.MedianDeltaBeta)
	}
}
