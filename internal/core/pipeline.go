package core

import (
	"fmt"
	"math"

	"mobiletraffic/internal/dist"
	"mobiletraffic/internal/netsim"
	"mobiletraffic/internal/obs"
	"mobiletraffic/internal/probe"
	"mobiletraffic/internal/services"
)

// FitOptions configures the end-to-end fitting pipeline.
type FitOptions struct {
	// Volume tunes the §5.2 mixture fit.
	Volume *VolumeFitOptions
	// MinSessions skips services with fewer observed sessions (their
	// statistics are too noisy to model; default 100, mirroring the
	// operator's aggregation floor).
	MinSessions float64
	// DurationNoise is stored on every fitted ServiceModel for
	// generation (default 0.2 decades).
	DurationNoise float64
	// Filter optionally restricts which measurement cells inform the
	// fit (e.g. probe.DayIn for per-period models, probe.BSIn for
	// per-area models).
	Filter probe.KeyFilter
	// Workers bounds the per-service fitting parallelism (default: one
	// per CPU; 1 forces serial execution). Every fitted parameter and
	// the FitReport are bit-identical for any worker count: services
	// are fitted independently into pre-sized slots and the report is
	// assembled serially in catalog order afterwards.
	Workers int
}

func (o *FitOptions) withDefaults() FitOptions {
	out := FitOptions{MinSessions: 100, DurationNoise: 0.2}
	if o == nil {
		return out
	}
	out.Volume = o.Volume
	if o.MinSessions > 0 {
		out.MinSessions = o.MinSessions
	}
	if o.DurationNoise > 0 {
		out.DurationNoise = o.DurationNoise
	}
	out.Filter = o.Filter
	out.Workers = o.Workers
	return out
}

// FitServiceModels runs the full §5 modeling pipeline on collected
// measurements; see FitServiceModelsReport. It returns the (possibly
// partial) ModelSet and discards the degradation report.
func FitServiceModels(c *probe.Collector, catalog []services.Profile, opts *FitOptions) (*ModelSet, error) {
	set, _, err := FitServiceModelsReport(c, catalog, opts)
	return set, err
}

// FitServiceModelsReport runs the full §5 modeling pipeline on
// collected measurements: for every service in the catalog it
// aggregates the nationwide volume PDF (Eq. 2) and duration-volume
// pairs (Eq. 1), fits the log-normal mixture (§5.2) and the power law
// (§5.3), and records the session share (Table 1) and the volume-model
// EMD (§5.4).
//
// The pipeline degrades gracefully: a per-service failure never aborts
// the run. Services whose mixture fit diverges fall back to a single
// log-normal; services whose power-law fit fails fall back to a
// constant-throughput law; services with too few sessions or unusable
// statistics are skipped. Every deviation is recorded in the returned
// FitReport, so a partial ModelSet always comes back with a faithful
// account of what degraded. An error is returned only when the inputs
// are structurally invalid or no service at all could be modeled.
func FitServiceModelsReport(c *probe.Collector, catalog []services.Profile, opts *FitOptions) (*ModelSet, *FitReport, error) {
	span := obs.StartSpan("fit/services")
	defer span.End()
	// Pre-register the degradation counters so a clean run still
	// exposes them at zero — dashboards alert on these going nonzero,
	// which only works if the series exists beforehand.
	obs.CounterOf("fit_fallbacks_total")
	obs.CounterOf("fit_skipped_total")
	o := opts.withDefaults()
	if c == nil {
		return nil, nil, fmt.Errorf("core: nil collector")
	}
	if len(catalog) != c.NumServices {
		return nil, nil, fmt.Errorf("core: catalog size %d does not match collector services %d",
			len(catalog), c.NumServices)
	}
	shares, _, err := c.SessionShare(o.Filter)
	if err != nil {
		return nil, nil, fmt.Errorf("core: session shares: %w", err)
	}
	durations := c.DurationCenters()
	withFilter := func(svc int) probe.KeyFilter {
		f := probe.ForService(svc)
		if o.Filter != nil {
			return probe.And(f, o.Filter)
		}
		return f
	}
	// Services are fitted independently — each one aggregates, fits and
	// reports into its own pre-sized slot — so the loop fans out over a
	// bounded worker pool. The combined report and the ModelSet are
	// assembled serially in catalog order afterwards, which keeps the
	// output bit-identical to a serial run for any worker count.
	results := make([]svcFit, len(catalog))
	runTasks(len(catalog), o.Workers, func(svc int) {
		results[svc] = fitOneService(c, catalog[svc].Name, svc, shares[svc], durations, withFilter(svc), &o, span)
	})
	set := &ModelSet{}
	report := &FitReport{}
	for svc := range results {
		report.Merge(&results[svc].report)
		if results[svc].model != nil {
			set.Services = append(set.Services, *results[svc].model)
		}
	}
	if len(set.Services) == 0 {
		return nil, report, fmt.Errorf("core: no service could be modeled (%d skipped)", len(report.Skipped))
	}
	return set, report, nil
}

// svcFit is the outcome slot of one service's independent fit: the
// fitted model (nil when skipped) plus the service-local degradation
// report, merged into the combined report in catalog order.
type svcFit struct {
	model  *ServiceModel
	report FitReport
}

// fitOneService runs the §5.2/§5.3 pipeline for a single service:
// aggregate the volume PDF and duration-volume pairs, fit the mixture
// and the power law with their graceful fallbacks, and record every
// deviation in the slot's local report. It only reads the collector,
// so concurrent calls for distinct services are race-free.
func fitOneService(c *probe.Collector, name string, svc int, share float64, durations []float64, filter probe.KeyFilter, o *FitOptions, span *obs.Span) svcFit {
	var out svcFit
	report := &out.report
	aggSpan := span.Child("aggregate", "service", name)
	hist, weight, err := c.AggregateVolume(filter)
	aggSpan.End()
	if err != nil {
		report.skip(name, "sessions", err)
		return out
	}
	if weight < o.MinSessions {
		report.skip(name, "sessions",
			fmt.Errorf("%.0f sessions below the %.0f aggregation floor", weight, o.MinSessions))
		return out
	}
	volSpan := span.Child("fit/volume", "service", name)
	vm, err := FitVolumeModel(hist, o.Volume)
	volSpan.End()
	if err != nil {
		// The mixture fit diverged; a single log-normal over the
		// same histogram still captures the main trend.
		fb, fbErr := fallbackVolumeModel(hist)
		if fbErr != nil {
			report.skip(name, "volume", err)
			return out
		}
		vm = fb
		report.fallback(name, "volume", "single log-normal", err)
	}
	emd, err := vm.EMD(hist)
	if err != nil {
		emd = math.NaN()
		report.warn("%s: volume EMD unavailable: %v", name, err)
	}
	values, counts, err := c.AggregatePairs(filter)
	if err != nil {
		report.skip(name, "pairs", err)
		return out
	}
	durSpan := span.Child("fit/duration", "service", name)
	dm, err := FitDurationModel(durations, values, counts)
	durSpan.End()
	if err != nil {
		fb, fbErr := fallbackDurationModel(durations, values, counts)
		if fbErr != nil {
			report.skip(name, "duration", fmt.Errorf("%v; fallback: %v", err, fbErr))
			return out
		}
		dm = fb
		report.fallback(name, "duration", "constant-throughput power law", err)
	}
	out.model = &ServiceModel{
		Name:          name,
		SessionShare:  share,
		Volume:        *vm,
		Duration:      *dm,
		VolumeEMD:     emd,
		DurationNoise: o.DurationNoise,
	}
	report.Fitted++
	obs.CounterOf("fit_services_fitted_total").Inc()
	// Per-service fit-quality gauges: the §5.4 EMD of the volume
	// mixture and the R² of the duration power law — the numbers
	// FitReport consumers audit, exposed live for drift alerts.
	obs.GaugeOf("fit_volume_emd", "service", name).Set(emd)
	obs.GaugeOf("fit_duration_r2", "service", name).Set(dm.R2)
	return out
}

// FallbackVolumeSigmaFloor is the minimum main-trend width of a
// fallback volume fit, one measurement bin (0.05 decades): a PDF with
// all mass in a single bin would otherwise yield a zero-width,
// unsampleable log-normal.
const FallbackVolumeSigmaFloor = 0.05

// fallbackVolumeModel fits a single log-normal (no residual peaks) by
// moments — the degenerate Eq. (5) with zero components. Used when the
// full mixture decomposition diverges on a degraded measurement PDF.
func fallbackVolumeModel(measured *dist.Hist) (*VolumeModel, error) {
	h := measured.Clone()
	if err := h.Normalize(); err != nil {
		return nil, fmt.Errorf("core: volume fallback: %w", err)
	}
	mu, sigma := h.Mean(), h.Std()
	if !isFinite(mu) || !isFinite(sigma) {
		return nil, fmt.Errorf("core: volume fallback: non-finite moments")
	}
	if sigma < FallbackVolumeSigmaFloor {
		sigma = FallbackVolumeSigmaFloor
	}
	return &VolumeModel{
		MainMu:    mu,
		MainSigma: sigma,
		MaxVolume: math.Pow(10, h.Quantile(1-1e-4)),
	}, nil
}

// fallbackDurationModel fits the degenerate power law beta = 1
// (duration-independent throughput): alpha is the session-weighted
// mean throughput over every populated duration bin. Used when the
// guarded LM fit fails on degraded pair statistics — it preserves the
// service's traffic intensity even when the exponent is unrecoverable.
func fallbackDurationModel(durations, values, counts []float64) (*DurationModel, error) {
	var vol, dur float64
	for i := range durations {
		if i >= len(values) || counts == nil || i >= len(counts) {
			break
		}
		if counts[i] <= 0 || !isFinite(values[i]) || values[i] <= 0 || durations[i] <= 0 {
			continue
		}
		vol += values[i] * counts[i]
		dur += durations[i] * counts[i]
	}
	if vol <= 0 || dur <= 0 {
		return nil, fmt.Errorf("core: duration fallback: no populated bins")
	}
	return &DurationModel{Alpha: vol / dur, Beta: 1, R2: 0}, nil
}

// isFinite reports whether v is neither NaN nor infinite.
func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// FitArrivalsByDecile fits one ArrivalModel per BS load decile from
// the collected minute counts; see FitArrivalsByDecileReport. It
// returns the models and discards the degradation report.
func FitArrivalsByDecile(c *probe.Collector, topo *netsim.Topology) ([]*ArrivalModel, error) {
	models, _, err := FitArrivalsByDecileReport(c, topo)
	return models, err
}

// FitArrivalsByDecileReport fits one ArrivalModel per BS load decile
// from the collected minute counts, reproducing the Fig. 3 / §5.1
// fits. topo provides the decile membership of each BS.
//
// Deciles whose BSs exported no samples (e.g. every probe of the class
// was dark) borrow the model of the nearest populated decile instead
// of aborting the whole fit; each substitution is recorded in the
// returned FitReport. An error is returned only when no decile at all
// could be fitted.
func FitArrivalsByDecileReport(c *probe.Collector, topo *netsim.Topology) ([]*ArrivalModel, *FitReport, error) {
	return FitArrivalsByDecileWorkers(c, topo, 0)
}

// FitArrivalsByDecileWorkers is FitArrivalsByDecileReport with an
// explicit worker-pool bound (workers <= 0 uses every CPU; 1 forces
// serial execution). Deciles are independent — each reads its own BS
// class from the collector and fits into a pre-sized slot — and the
// report is assembled serially in decile order afterwards, so the
// models and the report are bit-identical for any worker count.
func FitArrivalsByDecileWorkers(c *probe.Collector, topo *netsim.Topology, workers int) ([]*ArrivalModel, *FitReport, error) {
	span := obs.StartSpan("fit/arrivals")
	defer span.End()
	if c == nil || topo == nil {
		return nil, nil, fmt.Errorf("core: nil collector or topology")
	}
	models := make([]*ArrivalModel, 10)
	reports := make([]FitReport, 10)
	runTasks(10, workers, func(d int) {
		report := &reports[d]
		label := fmt.Sprintf("decile %d", d+1)
		idx := topo.ByDecile(d)
		if len(idx) == 0 {
			report.skip(label, "arrivals", fmt.Errorf("no BSs in class"))
			return
		}
		filter := probe.BSIn(idx)
		peak, off := c.MinuteCountSamplePair(filter, netsim.IsPeakMinute, netsim.IsOffPeakMinute)
		if len(peak) == 0 || len(off) == 0 {
			report.skip(label, "arrivals", fmt.Errorf("no minute samples (probes dark?)"))
			return
		}
		m, err := FitArrivalModel(peak, off)
		if err != nil {
			report.skip(label, "arrivals", err)
			return
		}
		models[d] = m
		report.Fitted++
	})
	report := &FitReport{}
	for d := range reports {
		report.Merge(&reports[d])
	}
	if report.Fitted == 0 {
		return nil, report, fmt.Errorf("core: no arrival class could be fitted")
	}
	// Backfill missing classes from the nearest fitted decile so the
	// released model always covers all 10 load classes.
	for d := 0; d < 10; d++ {
		if models[d] != nil {
			continue
		}
		src := -1
		for step := 1; step < 10; step++ {
			if d-step >= 0 && models[d-step] != nil {
				src = d - step
				break
			}
			if d+step < 10 && models[d+step] != nil {
				src = d + step
				break
			}
		}
		clone := *models[src]
		models[d] = &clone
		report.fallback(fmt.Sprintf("decile %d", d+1), "arrivals",
			fmt.Sprintf("nearest class (decile %d)", src+1), nil)
	}
	return models, report, nil
}
