package core

import (
	"fmt"

	"mobiletraffic/internal/netsim"
	"mobiletraffic/internal/probe"
	"mobiletraffic/internal/services"
)

// FitOptions configures the end-to-end fitting pipeline.
type FitOptions struct {
	// Volume tunes the §5.2 mixture fit.
	Volume *VolumeFitOptions
	// MinSessions skips services with fewer observed sessions (their
	// statistics are too noisy to model; default 100, mirroring the
	// operator's aggregation floor).
	MinSessions float64
	// DurationNoise is stored on every fitted ServiceModel for
	// generation (default 0.2 decades).
	DurationNoise float64
	// Filter optionally restricts which measurement cells inform the
	// fit (e.g. probe.DayIn for per-period models, probe.BSIn for
	// per-area models).
	Filter probe.KeyFilter
}

func (o *FitOptions) withDefaults() FitOptions {
	out := FitOptions{MinSessions: 100, DurationNoise: 0.2}
	if o == nil {
		return out
	}
	out.Volume = o.Volume
	if o.MinSessions > 0 {
		out.MinSessions = o.MinSessions
	}
	if o.DurationNoise > 0 {
		out.DurationNoise = o.DurationNoise
	}
	out.Filter = o.Filter
	return out
}

// FitServiceModels runs the full §5 modeling pipeline on collected
// measurements: for every service in the catalog it aggregates the
// nationwide volume PDF (Eq. 2) and duration-volume pairs (Eq. 1),
// fits the log-normal mixture (§5.2) and the power law (§5.3), and
// records the session share (Table 1) and the volume-model EMD (§5.4).
// Services with too few sessions are skipped.
func FitServiceModels(c *probe.Collector, catalog []services.Profile, opts *FitOptions) (*ModelSet, error) {
	o := opts.withDefaults()
	if c == nil {
		return nil, fmt.Errorf("core: nil collector")
	}
	if len(catalog) != c.NumServices {
		return nil, fmt.Errorf("core: catalog size %d does not match collector services %d",
			len(catalog), c.NumServices)
	}
	shares, _, err := c.SessionShare(o.Filter)
	if err != nil {
		return nil, fmt.Errorf("core: session shares: %w", err)
	}
	durations := c.DurationCenters()
	withFilter := func(svc int) probe.KeyFilter {
		f := probe.ForService(svc)
		if o.Filter != nil {
			return probe.And(f, o.Filter)
		}
		return f
	}
	set := &ModelSet{}
	for svc := range catalog {
		hist, weight, err := c.AggregateVolume(withFilter(svc))
		if err != nil || weight < o.MinSessions {
			continue
		}
		vm, err := FitVolumeModel(hist, o.Volume)
		if err != nil {
			return nil, fmt.Errorf("core: volume fit for %s: %w", catalog[svc].Name, err)
		}
		emd, err := vm.EMD(hist)
		if err != nil {
			return nil, fmt.Errorf("core: volume EMD for %s: %w", catalog[svc].Name, err)
		}
		values, counts, err := c.AggregatePairs(withFilter(svc))
		if err != nil {
			return nil, fmt.Errorf("core: pairs for %s: %w", catalog[svc].Name, err)
		}
		dm, err := FitDurationModel(durations, values, counts)
		if err != nil {
			return nil, fmt.Errorf("core: duration fit for %s: %w", catalog[svc].Name, err)
		}
		set.Services = append(set.Services, ServiceModel{
			Name:          catalog[svc].Name,
			SessionShare:  shares[svc],
			Volume:        *vm,
			Duration:      *dm,
			VolumeEMD:     emd,
			DurationNoise: o.DurationNoise,
		})
	}
	if len(set.Services) == 0 {
		return nil, fmt.Errorf("core: no service had >= %v sessions", o.MinSessions)
	}
	return set, nil
}

// FitArrivalsByDecile fits one ArrivalModel per BS load decile from the
// collected minute counts, reproducing the Fig. 3 / §5.1 fits. topo
// provides the decile membership of each BS.
func FitArrivalsByDecile(c *probe.Collector, topo *netsim.Topology) ([]*ArrivalModel, error) {
	if c == nil || topo == nil {
		return nil, fmt.Errorf("core: nil collector or topology")
	}
	peakByClass := make([][]float64, 10)
	offByClass := make([][]float64, 10)
	for d := 0; d < 10; d++ {
		idx := topo.ByDecile(d)
		if len(idx) == 0 {
			return nil, fmt.Errorf("core: decile %d has no BSs", d)
		}
		filter := probe.BSIn(idx)
		peakByClass[d] = c.MinuteCountSamples(filter, netsim.IsPeakMinute)
		offByClass[d] = c.MinuteCountSamples(filter, netsim.IsOffPeakMinute)
		if len(peakByClass[d]) == 0 || len(offByClass[d]) == 0 {
			return nil, fmt.Errorf("core: decile %d has no minute samples", d)
		}
	}
	models, _, err := FitArrivalModelsByClass(peakByClass, offByClass)
	return models, err
}
