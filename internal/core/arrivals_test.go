package core

import (
	"math"
	"math/rand"
	"testing"

	"mobiletraffic/internal/mathx"
)

func TestFitArrivalModel(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	peak := make([]float64, 20000)
	for i := range peak {
		peak[i] = 40 + 4*rng.NormFloat64()
	}
	off := make([]float64, 20000)
	for i := range off {
		off[i] = 0.5 * math.Pow(1-rng.Float64(), -1/ParetoShape)
	}
	m, err := FitArrivalModel(peak, off)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.PeakMu-40) > 0.2 || math.Abs(m.PeakSigma-4) > 0.2 {
		t.Errorf("peak fit = (%v, %v)", m.PeakMu, m.PeakSigma)
	}
	if m.OffShape != ParetoShape {
		t.Errorf("off shape = %v, want fixed %v", m.OffShape, ParetoShape)
	}
	if math.Abs(m.OffScale-0.5) > 0.05 {
		t.Errorf("off scale = %v, want ~0.5", m.OffScale)
	}
	// sigma/mu ratio ~ 1/10, the paper's automated-sigma regularity.
	if r := m.SigmaRatio(); math.Abs(r-0.1) > 0.02 {
		t.Errorf("sigma ratio = %v, want ~0.1", r)
	}
}

func TestFitArrivalModelValidation(t *testing.T) {
	if _, err := FitArrivalModel(nil, []float64{1}); err == nil {
		t.Error("empty peak samples must error")
	}
	if _, err := FitArrivalModel([]float64{1}, nil); err == nil {
		t.Error("empty off samples must error")
	}
}

func TestFitArrivalModelSilentNight(t *testing.T) {
	m, err := FitArrivalModel([]float64{5, 6, 5}, []float64{0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if m.OffScale <= 0 {
		t.Errorf("silent-night scale = %v, want positive fallback", m.OffScale)
	}
}

func TestAutoSigma(t *testing.T) {
	m := &ArrivalModel{PeakMu: 50, PeakSigma: 9}
	m.AutoSigma()
	if m.PeakSigma != 5 {
		t.Errorf("auto sigma = %v, want 5", m.PeakSigma)
	}
	if !math.IsNaN((&ArrivalModel{}).SigmaRatio()) {
		t.Error("zero-mu sigma ratio must be NaN")
	}
}

func TestSampleCountModes(t *testing.T) {
	m := &ArrivalModel{PeakMu: 30, PeakSigma: 3, OffShape: ParetoShape, OffScale: 0.5}
	rng := rand.New(rand.NewSource(7))
	var day, night []float64
	for i := 0; i < 10000; i++ {
		day = append(day, float64(m.SampleCount(true, rng)))
		night = append(night, float64(m.SampleCount(false, rng)))
	}
	if dm := mathx.Mean(day); math.Abs(dm-30) > 1 {
		t.Errorf("day mean = %v", dm)
	}
	if nm := mathx.Mean(night); nm >= mathx.Mean(day)/3 {
		t.Errorf("night mean %v not well below day", nm)
	}
	min, _ := mathx.MinMax(night)
	if min < 0 {
		t.Error("negative count")
	}
}

func TestArrivalPDFs(t *testing.T) {
	m := &ArrivalModel{PeakMu: 10, PeakSigma: 1, OffShape: ParetoShape, OffScale: 0.3}
	if got := m.PeakPDF(10); got <= m.PeakPDF(13) {
		t.Error("peak PDF must peak at mu")
	}
	if m.OffPeakPDF(0.2) != 0 {
		t.Error("off-peak PDF below scale must be 0")
	}
	if m.OffPeakPDF(0.4) <= m.OffPeakPDF(2) {
		t.Error("Pareto PDF must decay")
	}
}

func TestFitArrivalModelsByClassAndGrowth(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var peakByClass, offByClass [][]float64
	for d := 0; d < 10; d++ {
		mu := 1.21 * math.Pow(71/1.21, float64(d)/9)
		peak := make([]float64, 3000)
		for i := range peak {
			peak[i] = mu + mu/10*rng.NormFloat64()
		}
		off := make([]float64, 3000)
		for i := range off {
			off[i] = (0.05 * math.Pow(40, float64(d)/9)) * math.Pow(1-rng.Float64(), -1/ParetoShape)
		}
		peakByClass = append(peakByClass, peak)
		offByClass = append(offByClass, off)
	}
	models, ratios, err := FitArrivalModelsByClass(peakByClass, offByClass)
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 10 {
		t.Fatalf("models = %d", len(models))
	}
	// Paper §5.1: mu spans 1.21 to 71 across deciles, sigma/mu ~ 0.1
	// everywhere.
	if math.Abs(models[0].PeakMu-1.21) > 0.1 || math.Abs(models[9].PeakMu-71) > 2 {
		t.Errorf("decile extremes = %v, %v", models[0].PeakMu, models[9].PeakMu)
	}
	for d, r := range ratios {
		if math.Abs(r-0.1) > 0.03 {
			t.Errorf("decile %d sigma ratio = %v", d, r)
		}
	}
	// Exponential growth of mu across classes.
	mus := make([]float64, 10)
	scales := make([]float64, 10)
	for d, m := range models {
		mus[d] = m.PeakMu
		scales[d] = m.OffScale
	}
	gMu, err := ArrivalGrowthRate(mus)
	if err != nil {
		t.Fatal(err)
	}
	wantG := math.Pow(71/1.21, 1.0/9)
	if math.Abs(gMu-wantG) > 0.05 {
		t.Errorf("mu growth = %v, want ~%v", gMu, wantG)
	}
	// "similar rate": the Pareto scale growth is within a factor ~1.3.
	gScale, err := ArrivalGrowthRate(scales)
	if err != nil {
		t.Fatal(err)
	}
	if gScale < gMu*0.7 || gScale > gMu*1.4 {
		t.Errorf("scale growth %v dissimilar to mu growth %v", gScale, gMu)
	}
}

func TestArrivalGrowthRateValidation(t *testing.T) {
	if _, err := ArrivalGrowthRate([]float64{1}); err == nil {
		t.Error("single class must error")
	}
	if _, err := ArrivalGrowthRate([]float64{1, -1}); err == nil {
		t.Error("negative values must error")
	}
	if _, _, err := FitArrivalModelsByClass(nil, nil); err == nil {
		t.Error("empty class sets must error")
	}
}
