package core

import (
	"math"
	"testing"

	"mobiletraffic/internal/netsim"
	"mobiletraffic/internal/probe"
	"mobiletraffic/internal/services"
)

// buildMeasurement simulates a small network and collects its
// measurements, returning the pieces the pipeline needs.
func buildMeasurement(t *testing.T, cfg netsim.SimConfig, numBS int) (*probe.Collector, *netsim.Simulator) {
	t.Helper()
	topo, err := netsim.NewTopology(netsim.TopologyConfig{NumBS: numBS, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := netsim.NewSimulator(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	coll, err := probe.NewCollector(len(sim.Services))
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.GenerateAll(func(s netsim.Session) {
		if err := coll.Observe(s); err != nil {
			t.Fatal(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	return coll, sim
}

// TestPipelineRecoversGroundTruth is the central oracle test of the
// reproduction: models fitted on simulated measurements must recover
// the seeded per-service ground truth.
func TestPipelineRecoversGroundTruth(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	// MoveProb 0 keeps sessions untruncated so fitted parameters are
	// directly comparable with the seeded ones.
	coll, sim := buildMeasurement(t, netsim.SimConfig{Days: 2, Seed: 17, MoveProb: 1e-12}, 20)
	sim.Config.MoveProb = 0
	set, err := FitServiceModels(coll, sim.Services, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Services) < 10 {
		t.Fatalf("only %d services modeled", len(set.Services))
	}
	// Per-service checks for the heavy hitters.
	for _, name := range []string{"Facebook", "Instagram", "SnapChat", "Netflix"} {
		m, err := set.ByName(name)
		if err != nil {
			t.Fatalf("%s not modeled", name)
		}
		var truth *netsimProfile
		for i := range sim.Services {
			if sim.Services[i].Name == name {
				truth = &netsimProfile{
					mu: sim.Services[i].MainMu, beta: sim.Services[i].Beta,
					share: 0,
				}
			}
		}
		if truth == nil {
			t.Fatalf("no ground truth for %s", name)
		}
		if math.Abs(m.Volume.MainMu-truth.mu) > 0.4 {
			t.Errorf("%s: fitted mu %v, seeded %v", name, m.Volume.MainMu, truth.mu)
		}
		if math.Abs(m.Duration.Beta-truth.beta) > 0.2 {
			t.Errorf("%s: fitted beta %v, seeded %v", name, m.Duration.Beta, truth.beta)
		}
		if m.Duration.R2 < 0.5 {
			t.Errorf("%s: duration R2 = %v (paper reports >= ~0.5)", name, m.Duration.R2)
		}
	}
}

type netsimProfile struct {
	mu, beta, share float64
}

func TestFitServiceModelsSessionShares(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	coll, sim := buildMeasurement(t, netsim.SimConfig{Days: 1, Seed: 23}, 15)
	set, err := FitServiceModels(coll, sim.Services, nil)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := set.ByName("Facebook")
	if err != nil {
		t.Fatal(err)
	}
	// Table 1: Facebook ~36.5% of sessions (of the normalized catalog).
	if fb.SessionShare < 0.30 || fb.SessionShare > 0.42 {
		t.Errorf("Facebook share = %v", fb.SessionShare)
	}
}

func TestFitServiceModelsValidation(t *testing.T) {
	if _, err := FitServiceModels(nil, nil, nil); err == nil {
		t.Error("nil collector must error")
	}
	coll, _ := probe.NewCollector(3)
	if _, err := FitServiceModels(coll, nil, nil); err == nil {
		t.Error("catalog mismatch must error")
	}
}

func TestFitArrivalsByDecile(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	coll, sim := buildMeasurement(t, netsim.SimConfig{Days: 1, Seed: 31}, 40)
	models, err := FitArrivalsByDecile(coll, sim.Topo)
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 10 {
		t.Fatalf("models = %d", len(models))
	}
	// Arrival rates must grow monotonically (modulo jitter) from the
	// first to the last decile and match the seeded extremes.
	if models[9].PeakMu < models[0].PeakMu*10 {
		t.Errorf("decile growth too small: %v -> %v", models[0].PeakMu, models[9].PeakMu)
	}
	if models[0].PeakMu < 0.5 || models[0].PeakMu > 3 {
		t.Errorf("first decile mu = %v, seeded ~1.21", models[0].PeakMu)
	}
	if models[9].PeakMu < 50 || models[9].PeakMu > 95 {
		t.Errorf("last decile mu = %v, seeded ~71", models[9].PeakMu)
	}
	// sigma ~ mu/10 across classes.
	for d, m := range models {
		if r := m.SigmaRatio(); r < 0.03 || r > 0.3 {
			t.Errorf("decile %d sigma ratio = %v", d, r)
		}
	}
	if _, err := FitArrivalsByDecile(nil, nil); err == nil {
		t.Error("nil inputs must error")
	}
}

// degradedCollector builds a hand-crafted measurement with one healthy
// service, one degenerate service (all sessions identical, so both the
// mixture and the power-law fits fail), and one service below the
// session floor.
func degradedCollector(t *testing.T) (*probe.Collector, []string) {
	t.Helper()
	coll, err := probe.NewCollector(3)
	if err != nil {
		t.Fatal(err)
	}
	obs := func(svc int, minute int, vol, dur float64) {
		t.Helper()
		err := coll.Observe(netsim.Session{
			Service: svc, BS: 0, Day: 0, Minute: minute % netsim.MinutesPerDay,
			Start: float64(minute) * 60, Volume: vol, Duration: dur,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	// Healthy: volumes spread over decades, durations over many bins.
	for i := 0; i < 600; i++ {
		dur := math.Pow(10, float64(i%40)/10) // 1 s .. ~8000 s
		obs(0, i, 2e4*math.Pow(dur, 1.2)*(1+0.1*float64(i%7)), dur)
	}
	// Degenerate: every session identical -> zero-spread volume PDF and
	// a single populated duration bin.
	for i := 0; i < 400; i++ {
		obs(1, i, 1e6, 30)
	}
	// Starved: below the default 100-session aggregation floor.
	for i := 0; i < 20; i++ {
		obs(2, i, 5e5, 60)
	}
	return coll, []string{"healthy", "degenerate", "starved"}
}

func TestFitServiceModelsReportGracefulDegradation(t *testing.T) {
	coll, names := degradedCollector(t)
	catalog := make([]services.Profile, len(names))
	for i, n := range names {
		catalog[i] = services.Profile{Name: n}
	}
	set, report, err := FitServiceModelsReport(coll, catalog, nil)
	if err != nil {
		t.Fatalf("graceful pipeline aborted: %v", err)
	}
	if len(set.Services) != 2 {
		t.Fatalf("modeled %d services, want 2 (healthy + degenerate fallback)", len(set.Services))
	}
	if report.Fitted != 2 {
		t.Errorf("report.Fitted = %d", report.Fitted)
	}
	if !report.Degraded() {
		t.Fatal("report must flag degradation")
	}
	// The starved service is skipped at the sessions stage.
	foundSkip := false
	for _, s := range report.Skipped {
		if s.Service == "starved" && s.Stage == "sessions" {
			foundSkip = true
		}
	}
	if !foundSkip {
		t.Errorf("starved service not reported as skipped: %+v", report.Skipped)
	}
	// The degenerate service is fitted via both fallbacks.
	stages := map[string]string{}
	for _, f := range report.Fallbacks {
		if f.Service == "degenerate" {
			stages[f.Stage] = f.Fallback
		}
	}
	if stages["volume"] == "" || stages["duration"] == "" {
		t.Fatalf("degenerate service fallbacks missing: %+v", report.Fallbacks)
	}
	m, err := set.ByName("degenerate")
	if err != nil {
		t.Fatal(err)
	}
	if m.Volume.MainSigma < FallbackVolumeSigmaFloor {
		t.Errorf("fallback sigma %v below floor", m.Volume.MainSigma)
	}
	if m.Duration.Beta != 1 {
		t.Errorf("fallback beta = %v, want 1 (constant throughput)", m.Duration.Beta)
	}
	// alpha = mean throughput = 1e6 bytes / ~30 s bin center.
	if m.Duration.Alpha <= 0 {
		t.Errorf("fallback alpha = %v", m.Duration.Alpha)
	}
	got := report.DegradedServices()
	want := []string{"degenerate", "starved"}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("DegradedServices() = %v, want %v", got, want)
	}
	if err := set.Validate(); err != nil {
		t.Errorf("degraded but fitted set must still validate: %v", err)
	}
	// The legacy wrapper returns the same partial set without aborting.
	legacy, err := FitServiceModels(coll, catalog, nil)
	if err != nil || len(legacy.Services) != 2 {
		t.Errorf("legacy wrapper: set=%v err=%v", legacy, err)
	}
}

func TestFitServiceModelsReportAllUnusable(t *testing.T) {
	coll, err := probe.NewCollector(1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ { // below the session floor
		err := coll.Observe(netsim.Session{Service: 0, Minute: i, Volume: 1e5, Duration: 10})
		if err != nil {
			t.Fatal(err)
		}
	}
	set, report, err := FitServiceModelsReport(coll, []services.Profile{{Name: "only"}}, nil)
	if err == nil || set != nil {
		t.Fatal("fit with zero modelable services must error")
	}
	if report == nil || len(report.Skipped) != 1 {
		t.Fatalf("report must still account for the skip: %+v", report)
	}
}

func TestFitArrivalsByDecileReportBackfillsDarkClasses(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	topo, err := netsim.NewTopology(netsim.TopologyConfig{NumBS: 40, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := netsim.NewSimulator(topo, netsim.SimConfig{Days: 1, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	// Probes of the two lowest load classes are dark for the whole
	// campaign: their cells never reach the collector.
	dark := map[int]bool{}
	for _, d := range []int{0, 1} {
		for _, bs := range topo.ByDecile(d) {
			dark[bs] = true
		}
	}
	coll, err := probe.NewCollector(len(sim.Services))
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.GenerateAll(func(s netsim.Session) {
		if dark[s.BS] {
			return
		}
		if err := coll.Observe(s); err != nil {
			t.Fatal(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	models, report, err := FitArrivalsByDecileReport(coll, topo)
	if err != nil {
		t.Fatalf("dark classes must not abort the arrival fit: %v", err)
	}
	if len(models) != 10 {
		t.Fatalf("models = %d", len(models))
	}
	for d, m := range models {
		if m == nil {
			t.Fatalf("decile %d left nil", d+1)
		}
	}
	if len(report.Fallbacks) != 2 {
		t.Fatalf("expected 2 backfilled classes, got %+v", report.Fallbacks)
	}
	// Backfilled classes borrow the nearest fitted decile's model.
	if models[0].PeakMu != models[2].PeakMu || models[1].PeakMu != models[2].PeakMu {
		t.Errorf("backfill did not use the nearest class: %v %v vs %v",
			models[0].PeakMu, models[1].PeakMu, models[2].PeakMu)
	}
	// The legacy wrapper stays usable too.
	if _, err := FitArrivalsByDecile(coll, topo); err != nil {
		t.Errorf("legacy wrapper errored: %v", err)
	}
}

func TestFitDurationModelRejectsNonFinite(t *testing.T) {
	durations := []float64{1, 10, 100, 1000}
	// Only two finite bins survive the guard -> must error, not fit Inf.
	values := []float64{1e5, math.Inf(1), math.NaN(), 1e7}
	if _, err := FitDurationModel(durations, values, nil); err == nil {
		t.Error("fit over non-finite pairs must error")
	}
	// With three finite bins the Inf bin is ignored and the fit succeeds.
	values = []float64{1e5, math.Inf(1), 1e6, 1e7}
	durations = []float64{1, 10, 100, 1000}
	m, err := FitDurationModel(durations, values, nil)
	if err != nil {
		t.Fatalf("guarded fit failed: %v", err)
	}
	if math.IsNaN(m.Alpha) || math.IsNaN(m.Beta) || m.Alpha <= 0 {
		t.Errorf("guarded fit returned non-finite model: %+v", m)
	}
}
