package core

import (
	"math"
	"testing"

	"mobiletraffic/internal/netsim"
	"mobiletraffic/internal/probe"
)

// buildMeasurement simulates a small network and collects its
// measurements, returning the pieces the pipeline needs.
func buildMeasurement(t *testing.T, cfg netsim.SimConfig, numBS int) (*probe.Collector, *netsim.Simulator) {
	t.Helper()
	topo, err := netsim.NewTopology(netsim.TopologyConfig{NumBS: numBS, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := netsim.NewSimulator(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	coll, err := probe.NewCollector(len(sim.Services))
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.GenerateAll(func(s netsim.Session) {
		if err := coll.Observe(s); err != nil {
			t.Fatal(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	return coll, sim
}

// TestPipelineRecoversGroundTruth is the central oracle test of the
// reproduction: models fitted on simulated measurements must recover
// the seeded per-service ground truth.
func TestPipelineRecoversGroundTruth(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	// MoveProb 0 keeps sessions untruncated so fitted parameters are
	// directly comparable with the seeded ones.
	coll, sim := buildMeasurement(t, netsim.SimConfig{Days: 2, Seed: 17, MoveProb: 1e-12}, 20)
	sim.Config.MoveProb = 0
	set, err := FitServiceModels(coll, sim.Services, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Services) < 10 {
		t.Fatalf("only %d services modeled", len(set.Services))
	}
	// Per-service checks for the heavy hitters.
	for _, name := range []string{"Facebook", "Instagram", "SnapChat", "Netflix"} {
		m, err := set.ByName(name)
		if err != nil {
			t.Fatalf("%s not modeled", name)
		}
		var truth *netsimProfile
		for i := range sim.Services {
			if sim.Services[i].Name == name {
				truth = &netsimProfile{
					mu: sim.Services[i].MainMu, beta: sim.Services[i].Beta,
					share: 0,
				}
			}
		}
		if truth == nil {
			t.Fatalf("no ground truth for %s", name)
		}
		if math.Abs(m.Volume.MainMu-truth.mu) > 0.4 {
			t.Errorf("%s: fitted mu %v, seeded %v", name, m.Volume.MainMu, truth.mu)
		}
		if math.Abs(m.Duration.Beta-truth.beta) > 0.2 {
			t.Errorf("%s: fitted beta %v, seeded %v", name, m.Duration.Beta, truth.beta)
		}
		if m.Duration.R2 < 0.5 {
			t.Errorf("%s: duration R2 = %v (paper reports >= ~0.5)", name, m.Duration.R2)
		}
	}
}

type netsimProfile struct {
	mu, beta, share float64
}

func TestFitServiceModelsSessionShares(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	coll, sim := buildMeasurement(t, netsim.SimConfig{Days: 1, Seed: 23}, 15)
	set, err := FitServiceModels(coll, sim.Services, nil)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := set.ByName("Facebook")
	if err != nil {
		t.Fatal(err)
	}
	// Table 1: Facebook ~36.5% of sessions (of the normalized catalog).
	if fb.SessionShare < 0.30 || fb.SessionShare > 0.42 {
		t.Errorf("Facebook share = %v", fb.SessionShare)
	}
}

func TestFitServiceModelsValidation(t *testing.T) {
	if _, err := FitServiceModels(nil, nil, nil); err == nil {
		t.Error("nil collector must error")
	}
	coll, _ := probe.NewCollector(3)
	if _, err := FitServiceModels(coll, nil, nil); err == nil {
		t.Error("catalog mismatch must error")
	}
}

func TestFitArrivalsByDecile(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	coll, sim := buildMeasurement(t, netsim.SimConfig{Days: 1, Seed: 31}, 40)
	models, err := FitArrivalsByDecile(coll, sim.Topo)
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 10 {
		t.Fatalf("models = %d", len(models))
	}
	// Arrival rates must grow monotonically (modulo jitter) from the
	// first to the last decile and match the seeded extremes.
	if models[9].PeakMu < models[0].PeakMu*10 {
		t.Errorf("decile growth too small: %v -> %v", models[0].PeakMu, models[9].PeakMu)
	}
	if models[0].PeakMu < 0.5 || models[0].PeakMu > 3 {
		t.Errorf("first decile mu = %v, seeded ~1.21", models[0].PeakMu)
	}
	if models[9].PeakMu < 50 || models[9].PeakMu > 95 {
		t.Errorf("last decile mu = %v, seeded ~71", models[9].PeakMu)
	}
	// sigma ~ mu/10 across classes.
	for d, m := range models {
		if r := m.SigmaRatio(); r < 0.03 || r > 0.3 {
			t.Errorf("decile %d sigma ratio = %v", d, r)
		}
	}
	if _, err := FitArrivalsByDecile(nil, nil); err == nil {
		t.Error("nil inputs must error")
	}
}
