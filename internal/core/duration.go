package core

import (
	"errors"
	"math"
	"math/rand"

	"mobiletraffic/internal/fit"
)

// DurationModel is the power-law duration-volume model of §5.3:
// v_s(d) = Alpha * d^Beta, with d in seconds and v in bytes. Beta > 1
// marks sessions whose mean throughput grows with duration (video
// streaming); Beta < 1 the opposite (interactive services); Beta = 1
// would mean duration-independent throughput Alpha.
type DurationModel struct {
	Alpha float64 `json:"alpha"`
	Beta  float64 `json:"beta"`
	R2    float64 `json:"r2"`
}

// MeanVolume returns v(d) = Alpha * d^Beta.
func (m *DurationModel) MeanVolume(duration float64) float64 {
	return m.Alpha * math.Pow(duration, m.Beta)
}

// DurationFor applies the inverse function v^{-1} to obtain a session
// duration from a traffic volume, as prescribed for generation in §5.4.
func (m *DurationModel) DurationFor(volume float64) float64 {
	if volume <= 0 || m.Alpha <= 0 || m.Beta == 0 {
		return math.NaN()
	}
	return math.Pow(volume/m.Alpha, 1/m.Beta)
}

// Throughput returns the mean throughput v(d)/d in bytes/second implied
// by the model at duration d.
func (m *DurationModel) Throughput(duration float64) float64 {
	if duration <= 0 {
		return math.NaN()
	}
	return m.MeanVolume(duration) / duration
}

// MaxSessionDuration bounds generated durations: a transport session
// served by a single BS cannot outlive the daily aggregation window of
// the measurements (§3.2).
const MaxSessionDuration = 24 * 3600.0

// SampleDuration draws a duration for a session of the given volume,
// optionally jittered log-normally by noise decades, clamped to
// [1 s, MaxSessionDuration].
func (m *DurationModel) SampleDuration(volume, noise float64, rng *rand.Rand) float64 {
	d := m.DurationFor(volume)
	if math.IsNaN(d) {
		return 1
	}
	if noise > 0 {
		d *= math.Pow(10, noise*rng.NormFloat64())
	}
	switch {
	case d < 1:
		return 1
	case d > MaxSessionDuration:
		return MaxSessionDuration
	}
	return d
}

// MinPairSessions is the minimum session count for a duration bin to
// enter the power-law fit; sparser bins are measurement noise.
const MinPairSessions = 5

// FitDurationModel fits the power law to duration-volume pairs: the
// per-bin mean volumes values (NaN for empty bins) at the bin-center
// durations, using the log-log initialized Levenberg-Marquardt fit of
// §5.3. Following the paper, each populated bin is one equally weighted
// observation of the v_s(d) value pairs; counts (optional) only gate
// which bins are considered populated. Equal weighting keeps the
// transient-session pile-up at short durations from dominating the
// exponent.
func FitDurationModel(durations, values, counts []float64) (*DurationModel, error) {
	if len(durations) != len(values) {
		return nil, errors.New("core: duration fit needs matching durations/values")
	}
	var xs, ys []float64
	var ws []float64 // nil: uniform weights
	for i := range durations {
		// Reject non-finite observations outright: on degraded
		// measurements (probe outages, truncated exports) empty bins
		// surface as NaN and overflowed accumulators as Inf, and either
		// would poison the LM residuals.
		if math.IsNaN(values[i]) || math.IsInf(values[i], 0) || values[i] <= 0 {
			continue
		}
		if math.IsInf(durations[i], 0) || durations[i] <= 0 {
			continue
		}
		if counts != nil && counts[i] < MinPairSessions {
			continue
		}
		xs = append(xs, durations[i])
		ys = append(ys, values[i])
	}
	if len(xs) < 3 {
		return nil, errors.New("core: duration fit needs >= 3 populated bins")
	}
	// Fit in the log-log domain: the relative (multiplicative) error is
	// the right loss when volumes span many decades.
	lx := make([]float64, len(xs))
	ly := make([]float64, len(ys))
	for i := range xs {
		lx[i] = math.Log(xs[i])
		ly[i] = math.Log(ys[i])
	}
	line, err := fit.WeightedLinearFit(lx, ly, ws)
	if err != nil {
		return nil, err
	}
	if !isFinite(line.Intercept) || !isFinite(line.Slope) {
		return nil, errors.New("core: duration fit: non-finite log-log initialization")
	}
	model := &DurationModel{Alpha: math.Exp(line.Intercept), Beta: line.Slope}
	// Refine with LM in the log domain (equivalent to multiplicative
	// least squares on the original scale). The refinement is guarded:
	// a result with NaN/Inf parameters — possible when degraded inputs
	// leave the normal equations near-singular — is rejected and the
	// log-log initialization kept.
	logModel := func(p []float64, x float64) float64 { return p[0] + p[1]*x }
	res, err := fit.LM(logModel, lx, ly, []float64{line.Intercept, line.Slope}, &fit.LMOptions{Weights: ws})
	if err == nil && isFinite(res.Params[0]) && isFinite(res.Params[1]) {
		model.Alpha = math.Exp(res.Params[0])
		model.Beta = res.Params[1]
	}
	if !isFinite(model.Alpha) || model.Alpha <= 0 || !isFinite(model.Beta) {
		return nil, errors.New("core: duration fit produced non-finite parameters")
	}
	yhat := make([]float64, len(lx))
	for i, x := range lx {
		yhat[i] = math.Log(model.Alpha) + model.Beta*x
	}
	model.R2 = fit.RSquaredWeighted(ly, yhat, ws)
	return model, nil
}
