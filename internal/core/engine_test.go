package core

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"testing"

	"mobiletraffic/internal/dist"
)

// goldenModelSet is the fixed released-model fixture behind the GenV1
// stream digests: three services covering the interesting shapes
// (multi-peak mixture with a volume cap, bare log-normal, single peak)
// and two arrival classes. Changing any parameter invalidates the
// digests in TestGenV1GoldenStream.
func goldenModelSet() *ModelSet {
	return &ModelSet{
		Services: []ServiceModel{
			{
				Name:         "video",
				SessionShare: 0.22,
				Volume: VolumeModel{MainMu: 6.5, MainSigma: 1.1, MaxVolume: 2e9,
					Peaks: []VolumeComponent{{K: 0.18, Mu: 7.6, Sigma: 0.08}, {K: 0.05, Mu: 8.3, Sigma: 0.1}}},
				Duration:      DurationModel{Alpha: 3000, Beta: 1.5},
				DurationNoise: 0.15,
			},
			{
				Name:          "web",
				SessionShare:  0.6,
				Volume:        VolumeModel{MainMu: 5.3, MainSigma: 0.7},
				Duration:      DurationModel{Alpha: 800, Beta: 0.6},
				DurationNoise: 0.25,
			},
			{
				Name:         "sync",
				SessionShare: 0.18,
				Volume: VolumeModel{MainMu: 6.0, MainSigma: 1.2,
					Peaks: []VolumeComponent{{K: 0.1, Mu: 7.8, Sigma: 0.12}}},
				Duration:      DurationModel{Alpha: 1200, Beta: 1.05},
				DurationNoise: 0.3,
			},
		},
		Arrivals: []*ArrivalModel{
			{PeakMu: 4, PeakSigma: 0.4, OffShape: ParetoShape, OffScale: 0.2},
			{PeakMu: 25, PeakSigma: 2.5, OffShape: ParetoShape, OffScale: 0.7},
		},
	}
}

// hashGenStream drives the generator through the fixed golden schedule
// (500 minutes cycling classes and day/night modes, then 100 single
// Session draws cycling the services) and digests every generated
// field bit for bit.
func hashGenStream(t *testing.T, g *Generator, minutes int) (string, int) {
	t.Helper()
	h := sha256.New()
	var buf [8]byte
	n := 0
	w64 := func(v uint64) { binary.LittleEndian.PutUint64(buf[:], v); h.Write(buf[:]) }
	for m := 0; m < minutes; m++ {
		class := m % len(g.Set.Arrivals)
		peak := m%3 != 0
		sessions, err := g.Minute(class, peak)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range sessions {
			n++
			h.Write([]byte(s.Service))
			w64(math.Float64bits(s.Volume))
			w64(math.Float64bits(s.Duration))
			w64(math.Float64bits(s.Throughput))
		}
	}
	for i := 0; i < 100; i++ {
		s, err := g.Session(g.Set.Services[i%len(g.Set.Services)].Name)
		if err != nil {
			t.Fatal(err)
		}
		n++
		h.Write([]byte(s.Service))
		w64(math.Float64bits(s.Volume))
		w64(math.Float64bits(s.Duration))
		w64(math.Float64bits(s.Throughput))
	}
	return fmt.Sprintf("%x", h.Sum(nil)), n
}

// TestGenV1GoldenStream pins the v1 engine to the exact byte stream the
// pre-versioning Generator produced: the digests below were captured on
// the unmodified code immediately before the engine split. Any change
// to the v1 draw order, the share normalization arithmetic, or the
// underlying model samplers breaks this test.
func TestGenV1GoldenStream(t *testing.T) {
	golden := []struct {
		seed     int64
		hash     string
		sessions int
	}{
		{42, "039095b91e017da4105ff7d0e51739be7881ddd351dc2fdbed13c538400b13cb", 5103},
		{7, "f34e2bd563466839ea6e9514bbad7b366d8c0187d53d97bcc3db8ded689ad7d2", 5094},
	}
	for _, gc := range golden {
		g, err := NewGeneratorEngine(goldenModelSet(), gc.seed, GenV1)
		if err != nil {
			t.Fatal(err)
		}
		hash, n := hashGenStream(t, g, 500)
		if hash != gc.hash || n != gc.sessions {
			t.Errorf("seed %d: v1 stream drifted: got %s (%d sessions), want %s (%d sessions)",
				gc.seed, hash, n, gc.hash, gc.sessions)
		}
	}
}

// TestGenV2Deterministic checks the v2 stream is a pure function of the
// seed, and that MinuteAppend into a reused buffer replays the exact
// Minute sequence.
func TestGenV2Deterministic(t *testing.T) {
	ga, err := NewGenerator(goldenModelSet(), 11)
	if err != nil {
		t.Fatal(err)
	}
	if ga.Engine != GenV2 {
		t.Fatalf("default engine = %q, want %q", ga.Engine, GenV2)
	}
	gb, err := NewGeneratorEngine(goldenModelSet(), 11, GenV2)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]GenSession, 0, 256)
	for m := 0; m < 200; m++ {
		class := m % 2
		peak := m%4 != 0
		sa, err := ga.Minute(class, peak)
		if err != nil {
			t.Fatal(err)
		}
		buf = buf[:0]
		buf, err = gb.MinuteAppend(buf, class, peak)
		if err != nil {
			t.Fatal(err)
		}
		if len(sa) != len(buf) {
			t.Fatalf("minute %d: %d vs %d sessions", m, len(sa), len(buf))
		}
		for i := range sa {
			if sa[i] != buf[i] {
				t.Fatalf("minute %d session %d: %+v vs %+v", m, i, sa[i], buf[i])
			}
		}
	}
}

// mergeTailBins pools trailing histogram bins until each merged bin
// holds at least minCount observations in the pooled reference, keeping
// chi-square expected counts honest for sparse tails.
func mergeTailBins(a, b []float64, minCount float64) (ma, mb []float64) {
	for i := 0; i < len(a); {
		j := i
		var ca, cb float64
		for j < len(a) {
			ca += a[j]
			cb += b[j]
			j++
			if ca+cb >= minCount {
				break
			}
		}
		ma = append(ma, ca)
		mb = append(mb, cb)
		i = j
	}
	// Fold a deficient final bin into its neighbor.
	if n := len(ma); n > 1 && ma[n-1]+mb[n-1] < minCount {
		ma[n-2] += ma[n-1]
		mb[n-2] += mb[n-1]
		ma, mb = ma[:n-1], mb[:n-1]
	}
	return ma, mb
}

// TestGenV2StatEquivalence is the engine-v2 guard: generated sessions
// from both engines must agree on the volume and duration marginals
// (two-sample KS in the log domain), the service attribution (Table 1
// shares, chi-square homogeneity) and the per-minute arrival counts
// (chi-square over the count histogram). Both streams are fixed-seed,
// so the p-values are deterministic.
func TestGenV2StatEquivalence(t *testing.T) {
	set := goldenModelSet()
	g1, err := NewGeneratorEngine(goldenModelSet(), 1234, GenV1)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := NewGeneratorEngine(goldenModelSet(), 4321, GenV2)
	if err != nil {
		t.Fatal(err)
	}
	type sample struct {
		logVol, logDur []float64
		svcCounts      []float64
		arrCounts      []float64
	}
	const minutes = 6000
	collect := func(g *Generator) sample {
		s := sample{svcCounts: make([]float64, len(set.Services))}
		svcIdx := map[string]int{}
		for i, m := range set.Services {
			svcIdx[m.Name] = i
		}
		var buf []GenSession
		for m := 0; m < minutes; m++ {
			class := m % 2
			peak := m%3 != 0
			buf = buf[:0]
			buf, err := g.MinuteAppend(buf, class, peak)
			if err != nil {
				t.Fatal(err)
			}
			if class == 1 && peak {
				for len(s.arrCounts) <= len(buf) {
					s.arrCounts = append(s.arrCounts, 0)
				}
				s.arrCounts[len(buf)]++
			}
			for _, sess := range buf {
				s.svcCounts[svcIdx[sess.Service]]++
				s.logVol = append(s.logVol, math.Log10(sess.Volume))
				s.logDur = append(s.logDur, math.Log10(sess.Duration))
			}
		}
		return s
	}
	s1, s2 := collect(g1), collect(g2)
	for name, pair := range map[string][2][]float64{
		"volume":   {s1.logVol, s2.logVol},
		"duration": {s1.logDur, s2.logDur},
	} {
		d, p, err := dist.KSTwoSample(pair[0], pair[1])
		if err != nil {
			t.Fatal(err)
		}
		if p < 1e-3 {
			t.Errorf("%s marginals differ between engines: D=%.4f p=%.2e", name, d, p)
		}
	}
	stat, df, p, err := dist.Chi2Homogeneity(s1.svcCounts, s2.svcCounts)
	if err != nil {
		t.Fatal(err)
	}
	if p < 1e-3 {
		t.Errorf("service attribution differs between engines: chi2=%.1f df=%d p=%.2e", stat, df, p)
	}
	// Equalize histogram lengths before pooling tail bins.
	for len(s1.arrCounts) < len(s2.arrCounts) {
		s1.arrCounts = append(s1.arrCounts, 0)
	}
	for len(s2.arrCounts) < len(s1.arrCounts) {
		s2.arrCounts = append(s2.arrCounts, 0)
	}
	a, b := mergeTailBins(s1.arrCounts, s2.arrCounts, 10)
	stat, df, p, err = dist.Chi2Homogeneity(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if p < 1e-3 {
		t.Errorf("arrival counts differ between engines: chi2=%.1f df=%d p=%.2e", stat, df, p)
	}
}

// TestGenV2MinuteAppendAllocs pins the v2 fast path at zero steady-state
// heap allocations: with a warm reused buffer, a minute fill must not
// touch the allocator.
func TestGenV2MinuteAppendAllocs(t *testing.T) {
	g, err := NewGenerator(goldenModelSet(), 5)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]GenSession, 0, 4096)
	// Warm up so append never grows the buffer inside the measured runs.
	for i := 0; i < 32; i++ {
		buf = buf[:0]
		if buf, err = g.MinuteAppend(buf, 1, true); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		buf = buf[:0]
		var err error
		buf, err = g.MinuteAppend(buf, 1, true)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("v2 MinuteAppend allocates %.1f objects per minute, want 0", allocs)
	}
}

// TestNewGeneratorDoesNotMutateModelSet pins the satellite fix: the
// constructor must normalize shares into generator-private tables, not
// rescale the caller's models in place.
func TestNewGeneratorDoesNotMutateModelSet(t *testing.T) {
	for _, engine := range []Engine{GenV1, GenV2} {
		set := goldenModelSet()
		before, err := json.Marshal(set)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := NewGeneratorEngine(set, 3, engine); err != nil {
			t.Fatal(err)
		}
		after, err := json.Marshal(set)
		if err != nil {
			t.Fatal(err)
		}
		if string(before) != string(after) {
			t.Errorf("%s: NewGeneratorEngine mutated the caller's ModelSet", engine)
		}
	}
}

// TestGenerateBatchMatchesMinuteAppend checks the bulk fill is exactly
// the per-minute sequence.
func TestGenerateBatchMatchesMinuteAppend(t *testing.T) {
	peaks := make([]bool, 60)
	for i := range peaks {
		peaks[i] = i%2 == 0
	}
	for _, engine := range []Engine{GenV1, GenV2} {
		ga, err := NewGeneratorEngine(goldenModelSet(), 77, engine)
		if err != nil {
			t.Fatal(err)
		}
		gb, err := NewGeneratorEngine(goldenModelSet(), 77, engine)
		if err != nil {
			t.Fatal(err)
		}
		batch, err := ga.GenerateBatch(nil, 1, peaks)
		if err != nil {
			t.Fatal(err)
		}
		var loop []GenSession
		for _, p := range peaks {
			loop, err = gb.MinuteAppend(loop, 1, p)
			if err != nil {
				t.Fatal(err)
			}
		}
		if len(batch) != len(loop) {
			t.Fatalf("%s: batch %d vs loop %d sessions", engine, len(batch), len(loop))
		}
		for i := range batch {
			if batch[i] != loop[i] {
				t.Fatalf("%s: session %d: %+v vs %+v", engine, i, batch[i], loop[i])
			}
		}
	}
}

// TestSessionForBounds checks the index-based draw validates its range
// on both engines and agrees with the name-based Session draw.
func TestSessionForBounds(t *testing.T) {
	for _, engine := range []Engine{GenV1, GenV2} {
		g, err := NewGeneratorEngine(goldenModelSet(), 9, engine)
		if err != nil {
			t.Fatal(err)
		}
		for _, idx := range []int{-1, len(g.Set.Services)} {
			if _, err := g.SessionFor(idx); err == nil {
				t.Errorf("%s: SessionFor(%d) did not error", engine, idx)
			}
		}
		if _, err := g.Session("no-such-service"); err == nil {
			t.Errorf("%s: Session on unknown name did not error", engine)
		}
		s, err := g.SessionFor(1)
		if err != nil {
			t.Fatal(err)
		}
		if s.Service != g.Set.Services[1].Name {
			t.Errorf("%s: SessionFor(1) generated %q", engine, s.Service)
		}
	}
}

// TestParseEngine covers the flag-parsing helper.
func TestParseEngine(t *testing.T) {
	for in, want := range map[string]Engine{"": GenV2, "v1": GenV1, "v2": GenV2} {
		got, err := ParseEngine(in)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("ParseEngine(%q) = %q, want %q", in, got, want)
		}
	}
	if _, err := ParseEngine("v3"); err == nil {
		t.Error("ParseEngine(v3) did not error")
	}
	if _, err := NewGeneratorEngine(goldenModelSet(), 1, Engine("v9")); err == nil {
		t.Error("NewGeneratorEngine with unknown engine did not error")
	}
}

// TestGenV2DegenerateDuration checks an uninvertible power law pins v2
// durations at the 1 s floor, matching the v1 NaN-guard behavior.
func TestGenV2DegenerateDuration(t *testing.T) {
	set := &ModelSet{
		Services: []ServiceModel{{
			Name:         "flat",
			SessionShare: 1,
			Volume:       VolumeModel{MainMu: 5, MainSigma: 1},
			Duration:     DurationModel{Alpha: 0, Beta: 0},
		}},
		Arrivals: []*ArrivalModel{{PeakMu: 10, PeakSigma: 1, OffShape: ParetoShape, OffScale: 0.5}},
	}
	g, err := NewGenerator(set, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		s, err := g.SessionFor(0)
		if err != nil {
			t.Fatal(err)
		}
		if s.Duration != 1 {
			t.Fatalf("degenerate duration %v, want 1", s.Duration)
		}
	}
}
