package core

import (
	"math"
	"testing"

	"mobiletraffic/internal/mathx"
	"mobiletraffic/internal/netsim"
)

func testModelSet() *ModelSet {
	return &ModelSet{
		Services: []ServiceModel{
			{
				Name:         "video",
				SessionShare: 0.25,
				Volume:       VolumeModel{MainMu: 7, MainSigma: 0.5},
				Duration:     DurationModel{Alpha: 3000, Beta: 1.4},
			},
			{
				Name:         "web",
				SessionShare: 0.75,
				Volume:       VolumeModel{MainMu: 5, MainSigma: 0.7},
				Duration:     DurationModel{Alpha: 800, Beta: 0.5},
			},
		},
		Arrivals: []*ArrivalModel{
			{PeakMu: 20, PeakSigma: 2, OffShape: ParetoShape, OffScale: 0.4},
		},
	}
}

func TestGeneratorServiceMix(t *testing.T) {
	g, err := NewGenerator(testModelSet(), 1)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	total := 0
	for minute := 0; minute < 2000; minute++ {
		sessions, err := g.Minute(0, true)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range sessions {
			counts[s.Service]++
			total++
		}
	}
	if total == 0 {
		t.Fatal("no sessions generated")
	}
	frac := float64(counts["web"]) / float64(total)
	if math.Abs(frac-0.75) > 0.02 {
		t.Errorf("web share = %v, want ~0.75", frac)
	}
	// Arrival volume: ~20 sessions per peak minute.
	if rate := float64(total) / 2000; math.Abs(rate-20) > 1 {
		t.Errorf("mean arrivals/min = %v, want ~20", rate)
	}
}

func TestGenerateSessionConsistency(t *testing.T) {
	g, err := NewGenerator(testModelSet(), 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		s, err := g.Session("video")
		if err != nil {
			t.Fatal(err)
		}
		if s.Volume <= 0 || s.Duration < 1 {
			t.Fatalf("invalid session %+v", s)
		}
		if math.Abs(s.Throughput-s.Volume/s.Duration) > 1e-9 {
			t.Fatalf("throughput inconsistent: %+v", s)
		}
	}
	if _, err := g.Session("nope"); err == nil {
		t.Error("unknown service must error")
	}
}

func TestGeneratorDurationFollowsInversePowerLaw(t *testing.T) {
	set := testModelSet()
	set.Services[0].DurationNoise = 0 // deterministic inverse
	g, err := NewGenerator(set, 3)
	if err != nil {
		t.Fatal(err)
	}
	m := set.Services[0]
	for i := 0; i < 200; i++ {
		s, err := g.Session("video")
		if err != nil {
			t.Fatal(err)
		}
		want := m.Duration.DurationFor(s.Volume)
		if want < 1 {
			want = 1
		}
		if math.Abs(s.Duration-want)/want > 1e-9 {
			t.Fatalf("duration %v, want inverse %v", s.Duration, want)
		}
	}
}

func TestGeneratorValidation(t *testing.T) {
	if _, err := NewGenerator(nil, 0); err == nil {
		t.Error("nil set must error")
	}
	if _, err := NewGenerator(&ModelSet{}, 0); err == nil {
		t.Error("empty set must error")
	}
	zero := testModelSet()
	zero.Services[0].SessionShare = 0
	zero.Services[1].SessionShare = 0
	if _, err := NewGenerator(zero, 0); err == nil {
		t.Error("zero shares must error")
	}
	g, err := NewGenerator(testModelSet(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Minute(5, true); err == nil {
		t.Error("out-of-range arrival class must error")
	}
	if _, err := g.Minute(-1, true); err == nil {
		t.Error("negative arrival class must error")
	}
	if _, err := g.MinuteAppend(nil, len(g.Set.Arrivals), false); err == nil {
		t.Error("MinuteAppend out-of-range class must error")
	}
	noArr := testModelSet()
	noArr.Arrivals = nil
	g2, err := NewGenerator(noArr, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g2.Minute(0, true); err == nil {
		t.Error("missing arrival models must error")
	}
}

func TestModelSetJSONRoundTrip(t *testing.T) {
	set := testModelSet()
	set.Services[0].Volume.Peaks = []VolumeComponent{{K: 0.1, Mu: 7.6, Sigma: 0.08}}
	set.Services[0].DurationNoise = 0.35
	data, err := set.ToJSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ModelSetFromJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Services) != 2 || len(back.Arrivals) != 1 {
		t.Fatalf("round trip shape: %+v", back)
	}
	v, err := back.ByName("video")
	if err != nil {
		t.Fatal(err)
	}
	if v.Volume.MainMu != 7 || len(v.Volume.Peaks) != 1 || v.Volume.Peaks[0].Mu != 7.6 {
		t.Errorf("round-tripped video model = %+v", v)
	}
	if v.Duration.Beta != 1.4 {
		t.Errorf("beta = %v", v.Duration.Beta)
	}
	if v.DurationNoise != 0.35 {
		t.Errorf("duration noise = %v, want 0.35", v.DurationNoise)
	}
	if a := back.Arrivals[0]; a.PeakMu != 20 || a.PeakSigma != set.Arrivals[0].PeakSigma ||
		a.OffShape != set.Arrivals[0].OffShape || a.OffScale != set.Arrivals[0].OffScale {
		t.Errorf("arrivals = %+v, want %+v", a, set.Arrivals[0])
	}
	if _, err := ModelSetFromJSON([]byte("{garbage")); err == nil {
		t.Error("malformed JSON must error")
	}
	if _, err := back.ByName("missing"); err == nil {
		t.Error("unknown name must error")
	}
}

func TestModelSetNormalize(t *testing.T) {
	set := testModelSet()
	set.Services[0].SessionShare = 1
	set.Services[1].SessionShare = 3
	if err := set.Normalize(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(set.Services[0].SessionShare-0.25) > 1e-12 {
		t.Errorf("normalized share = %v", set.Services[0].SessionShare)
	}
}

func TestGeneratedVolumesMatchModelPDF(t *testing.T) {
	set := testModelSet()
	g, err := NewGenerator(set, 11)
	if err != nil {
		t.Fatal(err)
	}
	var logs []float64
	for i := 0; i < 50000; i++ {
		s, err := g.Session("web")
		if err != nil {
			t.Fatal(err)
		}
		logs = append(logs, math.Log10(s.Volume))
	}
	if m := mathx.Mean(logs); math.Abs(m-5) > 0.02 {
		t.Errorf("generated log-volume mean = %v, want 5", m)
	}
	if s := mathx.Std(logs); math.Abs(s-0.7) > 0.02 {
		t.Errorf("generated log-volume std = %v, want 0.7", s)
	}
}

func validSet() *ModelSet {
	return &ModelSet{
		Services: []ServiceModel{
			{
				Name: "A", SessionShare: 0.6,
				Volume:   VolumeModel{MainMu: 6, MainSigma: 0.8, Peaks: []VolumeComponent{{K: 0.1, Mu: 7, Sigma: 0.2}}},
				Duration: DurationModel{Alpha: 1e4, Beta: 1.2, R2: 0.9},
			},
			{
				Name: "B", SessionShare: 0.4,
				Volume:   VolumeModel{MainMu: 5, MainSigma: 0.5},
				Duration: DurationModel{Alpha: 2e3, Beta: 0.7, R2: 0.8},
			},
		},
		Arrivals: []*ArrivalModel{{PeakMu: 10, PeakSigma: 1, OffShape: ParetoShape, OffScale: 0.5}},
	}
}

func TestModelSetValidate(t *testing.T) {
	if err := validSet().Validate(); err != nil {
		t.Fatalf("valid set rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*ModelSet)
	}{
		{"NaN volume mu", func(s *ModelSet) { s.Services[0].Volume.MainMu = math.NaN() }},
		{"Inf volume sigma", func(s *ModelSet) { s.Services[0].Volume.MainSigma = math.Inf(1) }},
		{"zero volume sigma", func(s *ModelSet) { s.Services[0].Volume.MainSigma = 0 }},
		{"negative alpha", func(s *ModelSet) { s.Services[1].Duration.Alpha = -3 }},
		{"NaN beta", func(s *ModelSet) { s.Services[1].Duration.Beta = math.NaN() }},
		{"zero beta", func(s *ModelSet) { s.Services[1].Duration.Beta = 0 }},
		{"negative share", func(s *ModelSet) { s.Services[0].SessionShare = -0.1 }},
		{"share above one", func(s *ModelSet) { s.Services[0].SessionShare = 1.5 }},
		{"shares sum past one", func(s *ModelSet) {
			s.Services[0].SessionShare = 0.8
			s.Services[1].SessionShare = 0.8
		}},
		{"negative peak weight", func(s *ModelSet) { s.Services[0].Volume.Peaks[0].K = -0.1 }},
		{"NaN peak mu", func(s *ModelSet) { s.Services[0].Volume.Peaks[0].Mu = math.NaN() }},
		{"negative EMD", func(s *ModelSet) { s.Services[0].VolumeEMD = -1 }},
		{"Inf max volume", func(s *ModelSet) { s.Services[0].Volume.MaxVolume = math.Inf(1) }},
		{"nil arrival", func(s *ModelSet) { s.Arrivals = append(s.Arrivals, nil) }},
		{"negative arrival mu", func(s *ModelSet) { s.Arrivals[0].PeakMu = -2 }},
		{"zero Pareto scale", func(s *ModelSet) { s.Arrivals[0].OffScale = 0 }},
		{"empty set", func(s *ModelSet) { s.Services = nil }},
	}
	for _, tc := range cases {
		s := validSet()
		tc.mutate(s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: not rejected", tc.name)
		}
	}
}

func TestValidateAcceptsFittedSet(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	coll, sim := buildMeasurement(t, netsim.SimConfig{Days: 1, Seed: 7}, 10)
	set, err := FitServiceModels(coll, sim.Services, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := set.Validate(); err != nil {
		t.Errorf("freshly fitted set must validate: %v", err)
	}
}
