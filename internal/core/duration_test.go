package core

import (
	"math"
	"math/rand"
	"testing"

	"mobiletraffic/internal/mathx"
)

func TestFitDurationModelRecoversPowerLaw(t *testing.T) {
	// Clean v(d) = 2000 * d^1.5 over log-spaced duration bins.
	durations := mathx.LogSpace(0, 4, 40)
	values := make([]float64, len(durations))
	counts := make([]float64, len(durations))
	for i, d := range durations {
		values[i] = 2000 * math.Pow(d, 1.5)
		counts[i] = 100
	}
	m, err := FitDurationModel(durations, values, counts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Beta-1.5) > 1e-6 || math.Abs(m.Alpha-2000)/2000 > 1e-6 {
		t.Errorf("model = %+v", m)
	}
	if m.R2 < 0.999 {
		t.Errorf("R2 = %v", m.R2)
	}
}

func TestFitDurationModelSkipsEmptyBins(t *testing.T) {
	durations := mathx.LogSpace(0, 3, 20)
	values := make([]float64, len(durations))
	counts := make([]float64, len(durations))
	for i, d := range durations {
		if i%3 == 0 {
			values[i] = math.NaN() // empty bin
			counts[i] = 0
			continue
		}
		values[i] = 5e4 * math.Pow(d, 0.6)
		counts[i] = 10
	}
	m, err := FitDurationModel(durations, values, counts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Beta-0.6) > 0.01 {
		t.Errorf("beta = %v", m.Beta)
	}
}

func TestFitDurationModelNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	durations := mathx.LogSpace(0, 4, 50)
	values := make([]float64, len(durations))
	counts := make([]float64, len(durations))
	for i, d := range durations {
		values[i] = 300 * math.Pow(d, 1.1) * math.Exp(0.15*rng.NormFloat64())
		counts[i] = float64(10 + rng.Intn(1000))
	}
	m, err := FitDurationModel(durations, values, counts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Beta-1.1) > 0.08 {
		t.Errorf("beta = %v, want ~1.1", m.Beta)
	}
	if m.R2 < 0.7 {
		t.Errorf("R2 = %v, the paper's typical range is 0.7-0.9", m.R2)
	}
}

func TestFitDurationModelValidation(t *testing.T) {
	if _, err := FitDurationModel([]float64{1, 2}, []float64{1}, nil); err == nil {
		t.Error("length mismatch must error")
	}
	nan := math.NaN()
	if _, err := FitDurationModel([]float64{1, 2, 3}, []float64{nan, nan, nan}, nil); err == nil {
		t.Error("all-NaN values must error")
	}
	if _, err := FitDurationModel([]float64{1, 2}, []float64{10, 20}, nil); err == nil {
		t.Error("fewer than 3 populated bins must error")
	}
}

func TestDurationModelInverse(t *testing.T) {
	m := &DurationModel{Alpha: 1000, Beta: 1.4}
	for _, d := range []float64{1, 10, 300, 5000} {
		v := m.MeanVolume(d)
		if got := m.DurationFor(v); math.Abs(got-d)/d > 1e-9 {
			t.Errorf("DurationFor(MeanVolume(%v)) = %v", d, got)
		}
	}
	if !math.IsNaN(m.DurationFor(0)) {
		t.Error("zero volume must give NaN duration")
	}
	if !math.IsNaN((&DurationModel{Alpha: 1, Beta: 0}).DurationFor(5)) {
		t.Error("zero beta must give NaN duration")
	}
}

func TestDurationModelThroughputScaling(t *testing.T) {
	super := &DurationModel{Alpha: 100, Beta: 1.5}
	sub := &DurationModel{Alpha: 100, Beta: 0.5}
	// Super-linear: throughput grows with duration (§5.3's video
	// streaming signature); sub-linear: decays.
	if super.Throughput(100) <= super.Throughput(10) {
		t.Error("super-linear throughput must grow with duration")
	}
	if sub.Throughput(100) >= sub.Throughput(10) {
		t.Error("sub-linear throughput must decay with duration")
	}
	if !math.IsNaN(super.Throughput(0)) {
		t.Error("zero-duration throughput must be NaN")
	}
}

func TestSampleDuration(t *testing.T) {
	m := &DurationModel{Alpha: 1000, Beta: 1.0}
	rng := rand.New(rand.NewSource(5))
	// Deterministic mode: exactly the inverse.
	if got := m.SampleDuration(5000, 0, rng); math.Abs(got-5) > 1e-9 {
		t.Errorf("deterministic duration = %v, want 5", got)
	}
	// Noise mode centers on the inverse.
	var logs []float64
	for i := 0; i < 20000; i++ {
		logs = append(logs, math.Log10(m.SampleDuration(1e6, 0.2, rng)))
	}
	if got := mathx.Mean(logs); math.Abs(got-3) > 0.02 {
		t.Errorf("mean log duration = %v, want 3", got)
	}
	// Invalid volume floors at 1 s.
	if got := m.SampleDuration(-1, 0, rng); got != 1 {
		t.Errorf("invalid-volume duration = %v, want 1", got)
	}
}
