package core

import (
	"fmt"
	"math"
	"testing"

	"mobiletraffic/internal/dist"
	"mobiletraffic/internal/mathx"
)

// campaignSpecForTest is a small multi-class campaign over the golden
// fixture: two BSs (one per arrival class), three days each.
func campaignSpecForTest(workers int) CampaignSpec {
	set := goldenModelSet()
	return CampaignSpec{
		Arrivals: set.Arrivals,
		Days:     3,
		Workers:  workers,
	}
}

func blocksEqual(a, b []DayBlock) error {
	if len(a) != len(b) {
		return fmt.Errorf("block counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		x, y := &a[i], &b[i]
		if x.BS != y.BS || x.Day != y.Day {
			return fmt.Errorf("block %d identity differs: (%d,%d) vs (%d,%d)", i, x.BS, x.Day, y.BS, y.Day)
		}
		if len(x.Offsets) != len(y.Offsets) || len(x.Svc) != len(y.Svc) {
			return fmt.Errorf("block %d shape differs: %d/%d offsets, %d/%d sessions",
				i, len(x.Offsets), len(y.Offsets), len(x.Svc), len(y.Svc))
		}
		for m := range x.Offsets {
			if x.Offsets[m] != y.Offsets[m] {
				return fmt.Errorf("block %d offsets differ at minute %d", i, m)
			}
		}
		for k := range x.Svc {
			if x.Svc[k] != y.Svc[k] ||
				math.Float64bits(x.Volume[k]) != math.Float64bits(y.Volume[k]) ||
				math.Float64bits(x.Duration[k]) != math.Float64bits(y.Duration[k]) ||
				math.Float64bits(x.Start[k]) != math.Float64bits(y.Start[k]) {
				return fmt.Errorf("block %d session %d differs", i, k)
			}
		}
	}
	return nil
}

// TestGenerateCampaignWorkerBitIdentity is the central contract of the
// parallel plane: the campaign output is bit-for-bit identical at every
// worker count, because each (BS, day) cell draws from its own keyed
// substream and results land in per-index slots.
func TestGenerateCampaignWorkerBitIdentity(t *testing.T) {
	set := goldenModelSet()
	gen := func() *Generator {
		g, err := NewGenerator(set, 4242)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	ref, err := gen().GenerateCampaign(campaignSpecForTest(1))
	if err != nil {
		t.Fatal(err)
	}
	var total int
	for i := range ref {
		total += ref[i].Sessions()
	}
	if total == 0 {
		t.Fatal("reference campaign generated no sessions")
	}
	for _, workers := range []int{4, 7} {
		got, err := gen().GenerateCampaign(campaignSpecForTest(workers))
		if err != nil {
			t.Fatal(err)
		}
		if err := blocksEqual(ref, got); err != nil {
			t.Errorf("workers=%d output differs from workers=1: %v", workers, err)
		}
	}
}

// TestGenerateCampaignDeterministic checks the campaign depends only on
// (seed, spec): same seed reproduces, different seed diverges, and
// generating twice from one generator gives the same campaign (cell
// substreams never consume the generator's own stream).
func TestGenerateCampaignDeterministic(t *testing.T) {
	set := goldenModelSet()
	g1, err := NewGenerator(set, 7)
	if err != nil {
		t.Fatal(err)
	}
	a, err := g1.GenerateCampaign(campaignSpecForTest(2))
	if err != nil {
		t.Fatal(err)
	}
	b, err := g1.GenerateCampaign(campaignSpecForTest(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := blocksEqual(a, b); err != nil {
		t.Errorf("repeat campaign from one generator differs: %v", err)
	}
	g2, err := NewGenerator(set, 8)
	if err != nil {
		t.Fatal(err)
	}
	c, err := g2.GenerateCampaign(campaignSpecForTest(2))
	if err != nil {
		t.Fatal(err)
	}
	if blocksEqual(a, c) == nil {
		t.Error("campaigns with different master seeds are identical")
	}
}

// TestGenerateCampaignCellInvariance checks a cell's content is a pure
// function of (seed, key, day): re-slicing the campaign (fewer days,
// different BS order via keys) reproduces the overlapping cells bit for
// bit, and truncated days are prefixes of full ones.
func TestGenerateCampaignCellInvariance(t *testing.T) {
	set := goldenModelSet()
	g, err := NewGenerator(set, 99)
	if err != nil {
		t.Fatal(err)
	}
	full, err := g.GenerateCampaign(CampaignSpec{
		Arrivals: set.Arrivals, Keys: []uint64{10, 20}, Days: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Swap the BS order; cell (key 20, day d) must be unchanged.
	swapped, err := g.GenerateCampaign(CampaignSpec{
		Arrivals: []*ArrivalModel{set.Arrivals[1], set.Arrivals[0]},
		Keys:     []uint64{20, 10}, Days: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// full blocks: [bs0 d0, bs0 d1, bs1 d0, bs1 d1]; swapped: [bs1 d0, ...].
	for d := 0; d < 2; d++ {
		want, got := full[2+d], swapped[d]
		want.BS, got.BS = 0, 0 // identity fields legitimately differ
		if err := blocksEqual([]DayBlock{want}, []DayBlock{got}); err != nil {
			t.Errorf("cell (key=20, day=%d) changed under campaign re-slicing: %v", d, err)
		}
	}
	// A truncated day is a prefix of the full day.
	trunc, err := g.GenerateCampaign(CampaignSpec{
		Arrivals: set.Arrivals, Keys: []uint64{10, 20}, Days: 2, MinutesPerDay: 300,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range trunc {
		tb, fb := &trunc[i], &full[i]
		if len(tb.Offsets) != 301 {
			t.Fatalf("truncated block %d has %d offsets, want 301", i, len(tb.Offsets))
		}
		n := int(tb.Offsets[300])
		if n != int(fb.Offsets[300]) {
			t.Fatalf("truncated block %d has %d sessions in 300 min, full has %d", i, n, fb.Offsets[300])
		}
		for k := 0; k < n; k++ {
			if tb.Svc[k] != fb.Svc[k] || tb.Volume[k] != fb.Volume[k] {
				t.Fatalf("truncated block %d session %d is not a prefix of the full day", i, k)
			}
		}
	}
}

// TestGenerateCampaignV1Rejected pins the engine gate: v1's contract is
// the historical single stream, which has no parallel decomposition.
func TestGenerateCampaignV1Rejected(t *testing.T) {
	set := goldenModelSet()
	g, err := NewGeneratorEngine(set, 1, GenV1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.GenerateCampaign(campaignSpecForTest(1)); err == nil {
		t.Error("GenerateCampaign on a v1 generator did not error")
	}
	if _, err := g.Substream(1, 2); err == nil {
		t.Error("Substream on a v1 generator did not error")
	}
}

// TestGenerateCampaignValidation covers the spec error paths.
func TestGenerateCampaignValidation(t *testing.T) {
	set := goldenModelSet()
	g, err := NewGenerator(set, 1)
	if err != nil {
		t.Fatal(err)
	}
	bad := []CampaignSpec{
		{},
		{Arrivals: set.Arrivals, Days: 0},
		{Arrivals: set.Arrivals, Days: 1, Keys: []uint64{1}},
		{Arrivals: []*ArrivalModel{nil}, Days: 1},
		{Arrivals: set.Arrivals, Days: 1, MinutesPerDay: -1},
		{Arrivals: set.Arrivals, Days: 1, StartMinute: -5},
		{Arrivals: set.Arrivals, Days: 1, PhaseWeights: []float64{}},
	}
	for i, spec := range bad {
		if _, err := g.GenerateCampaign(spec); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

// TestSubstreamKeyingNonOverlap verifies the domain salts keep the
// three stream families of one master seed — the measurement sampler's
// unsalted netsim substreams, the campaign cells, and the server-facing
// client substreams — pairwise disjoint on identical (a, b) keys.
func TestSubstreamKeyingNonOverlap(t *testing.T) {
	const seed, a, b = 12345, 3, 5
	draw := func(master uint64) [8]uint64 {
		var p mathx.PCG
		p.SeedStream(master, a, b)
		var out [8]uint64
		for i := range out {
			out[i] = p.Uint64()
		}
		return out
	}
	netsimStream := draw(seed) // netsim seeds SeedStream(seed, bs, day) unsalted
	campaign := draw(seed ^ genCampaignDomain)
	client := draw(seed ^ genClientDomain)
	if netsimStream == campaign {
		t.Error("campaign substream collides with the netsim sampler substream")
	}
	if netsimStream == client {
		t.Error("client substream collides with the netsim sampler substream")
	}
	if campaign == client {
		t.Error("campaign and client substreams collide")
	}
	if genCampaignDomain == genClientDomain || genCampaignDomain == 0 || genClientDomain == 0 {
		t.Error("domain salts must be distinct and non-zero")
	}
}

// TestSubstreamIndependence checks Substream cells are pure functions
// of (master seed, client, stream): creation order and interleaved
// draws on other substreams never change a cell's output, and the
// parent generator's own stream is untouched by handing cells out.
func TestSubstreamIndependence(t *testing.T) {
	set := goldenModelSet()
	g, err := NewGenerator(set, 555)
	if err != nil {
		t.Fatal(err)
	}
	parentBefore, err := NewGenerator(set, 555)
	if err != nil {
		t.Fatal(err)
	}

	s12, err := g.Substream(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	ref := make([]GenSession, 0, 8)
	for i := 0; i < 8; i++ {
		s, err := s12.SessionFor(i % len(set.Services))
		if err != nil {
			t.Fatal(err)
		}
		ref = append(ref, s)
	}

	// Different creation order, interleaved draws on a sibling.
	s34, err := g.Substream(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	again, err := g.Substream(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := s34.SessionFor(0); err != nil {
			t.Fatal(err)
		}
		s, err := again.SessionFor(i % len(set.Services))
		if err != nil {
			t.Fatal(err)
		}
		if s != ref[i] {
			t.Fatalf("substream (1,2) draw %d changed under interleaving: %+v vs %+v", i, s, ref[i])
		}
	}

	// The parent stream is unaffected by substream derivation.
	a, err := g.Minute(0, true)
	if err != nil {
		t.Fatal(err)
	}
	b, err := parentBefore.Minute(0, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("parent stream perturbed by substream derivation: %d vs %d sessions", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("parent stream session %d perturbed by substream derivation", i)
		}
	}
}

// TestGenerateDaysOffsets pins the CSR invariants of the DayBlock
// layout: monotone offsets closing at the session count, start times
// inside the owning minute, and positive volumes/durations within the
// model support.
func TestGenerateDaysOffsets(t *testing.T) {
	set := goldenModelSet()
	g, err := NewGenerator(set, 31)
	if err != nil {
		t.Fatal(err)
	}
	blocks, err := g.GenerateDays(1, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 2 {
		t.Fatalf("GenerateDays(1, 2, 3) returned %d blocks, want 2", len(blocks))
	}
	for i := range blocks {
		b := &blocks[i]
		if b.Day != i || b.BS != 0 {
			t.Errorf("block %d has identity (BS=%d, Day=%d)", i, b.BS, b.Day)
		}
		if len(b.Offsets) != 24*60+1 {
			t.Fatalf("block %d has %d offsets, want %d", i, len(b.Offsets), 24*60+1)
		}
		if b.Offsets[0] != 0 || int(b.Offsets[len(b.Offsets)-1]) != b.Sessions() {
			t.Fatalf("block %d offsets do not close over the session count", i)
		}
		if b.Sessions() != len(b.Volume) || b.Sessions() != len(b.Duration) || b.Sessions() != len(b.Start) {
			t.Fatalf("block %d column lengths disagree", i)
		}
		for m := 0; m < 24*60; m++ {
			lo, hi := b.MinuteRange(m)
			if lo > hi {
				t.Fatalf("block %d offsets decrease at minute %d", i, m)
			}
			for k := lo; k < hi; k++ {
				if s := b.Start[k]; s < float64(m)*60 || s >= float64(m+1)*60 {
					t.Fatalf("block %d session %d starts at %v s, outside minute %d", i, k, s, m)
				}
				if b.Volume[k] <= 0 || b.Duration[k] < 1 || b.Duration[k] > MaxSessionDuration {
					t.Fatalf("block %d session %d outside model support (v=%v d=%v)",
						i, k, b.Volume[k], b.Duration[k])
				}
				if svc := int(b.Svc[k]); svc < 0 || svc >= len(set.Services) {
					t.Fatalf("block %d session %d has service index %d", i, k, svc)
				}
			}
		}
	}
}

// TestGenerateCampaignMatchesScalarStats is the statistical-equivalence
// guard between the campaign plane's batched stream and the scalar
// MinuteAppend stream: per-service volume and duration marginals agree
// under a two-sample KS test, and the service attribution counts agree
// under a chi-square homogeneity test. Both sides are fixed-seed, so
// the p-values are deterministic.
func TestGenerateCampaignMatchesScalarStats(t *testing.T) {
	set := goldenModelSet()
	g, err := NewGenerator(set, 2024)
	if err != nil {
		t.Fatal(err)
	}
	const days = 12
	blocks, err := g.GenerateCampaign(CampaignSpec{
		Arrivals: set.Arrivals[1:], Days: days, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	nsvc := len(set.Services)
	campVol := make([][]float64, nsvc)
	campDur := make([][]float64, nsvc)
	campCounts := make([]float64, nsvc)
	for i := range blocks {
		b := &blocks[i]
		for k := 0; k < b.Sessions(); k++ {
			svc := b.Svc[k]
			campVol[svc] = append(campVol[svc], math.Log(b.Volume[k]))
			campDur[svc] = append(campDur[svc], math.Log(b.Duration[k]))
			campCounts[svc]++
		}
	}

	// Scalar reference: the same minutes through MinuteAppend on an
	// independent stream, with the same diurnal phase profile realized
	// by an independent phase RNG.
	sg, err := NewGenerator(set, 7777)
	if err != nil {
		t.Fatal(err)
	}
	var phase mathx.PCG
	phase.SeedStream(31337, 1, 1)
	weights := phaseWeightTable()
	scalVol := make([][]float64, nsvc)
	scalDur := make([][]float64, nsvc)
	scalCounts := make([]float64, nsvc)
	buf := make([]GenSession, 0, 64)
	byName := map[string]int{}
	for i := range set.Services {
		byName[set.Services[i].Name] = i
	}
	for m := 0; m < days*24*60; m++ {
		peak := phase.Float64() < weights[m%len(weights)]
		buf = buf[:0]
		buf, err = sg.MinuteAppend(buf, 1, peak)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range buf {
			svc := byName[s.Service]
			scalVol[svc] = append(scalVol[svc], math.Log(s.Volume))
			scalDur[svc] = append(scalDur[svc], math.Log(s.Duration))
			scalCounts[svc]++
		}
	}

	if stat, df, p, err := dist.Chi2Homogeneity(campCounts, scalCounts); err != nil {
		t.Fatal(err)
	} else if p < 1e-3 {
		t.Errorf("campaign vs scalar service attribution differs: chi2=%.1f df=%d p=%.2e", stat, df, p)
	}
	for svc := 0; svc < nsvc; svc++ {
		if len(campVol[svc]) < 100 || len(scalVol[svc]) < 100 {
			t.Fatalf("service %d undersampled (%d campaign, %d scalar)", svc, len(campVol[svc]), len(scalVol[svc]))
		}
		if d, p, err := dist.KSTwoSample(campVol[svc], scalVol[svc]); err != nil {
			t.Fatal(err)
		} else if p < 1e-3 {
			t.Errorf("service %d volume marginals differ: D=%.4f p=%.2e", svc, d, p)
		}
		if d, p, err := dist.KSTwoSample(campDur[svc], scalDur[svc]); err != nil {
			t.Fatal(err)
		} else if p < 1e-3 {
			t.Errorf("service %d duration marginals differ: D=%.4f p=%.2e", svc, d, p)
		}
	}
}
