package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"mobiletraffic/internal/mathx"
	"mobiletraffic/internal/obs"
)

// ServiceModel is the complete released model of one service (§5.4):
// the parameter tuple [mu_s, sigma_s, {k_n, mu_n, sigma_n}_n, alpha_s,
// beta_s] plus bookkeeping. Traffic volume statistics are extracted
// from the volume mixture; duration follows from the inverse power law;
// average throughput is their ratio.
type ServiceModel struct {
	Name         string        `json:"name"`
	SessionShare float64       `json:"session_share"` // probability a new session belongs to this service
	Volume       VolumeModel   `json:"volume"`
	Duration     DurationModel `json:"duration"`
	// VolumeEMD is the §5.4 quality metric of the volume model against
	// the measurement PDF it was fitted on.
	VolumeEMD float64 `json:"volume_emd"`
	// DurationNoise is the log-domain jitter used when generating
	// durations (0 reproduces the deterministic inverse of §5.4).
	DurationNoise float64 `json:"duration_noise,omitempty"`
}

// GenSession is one synthetic session drawn from a ServiceModel.
type GenSession struct {
	Service    string
	Volume     float64 // bytes
	Duration   float64 // seconds
	Throughput float64 // bytes/second
}

// Generate draws one synthetic session: volume from F_s, duration via
// the inverse v_s^{-1}, throughput as their ratio (§5.4).
func (m *ServiceModel) Generate(rng *rand.Rand) GenSession {
	vol := m.Volume.Sample(rng)
	dur := m.Duration.SampleDuration(vol, m.DurationNoise, rng)
	return GenSession{
		Service:    m.Name,
		Volume:     vol,
		Duration:   dur,
		Throughput: vol / dur,
	}
}

// ModelSet is the released collection of per-service models together
// with the shared arrival model(s) per BS load class.
type ModelSet struct {
	Services []ServiceModel  `json:"services"`
	Arrivals []*ArrivalModel `json:"arrivals,omitempty"` // per BS load class
}

// MarshalJSON is provided by the embedded struct tags; ToJSON returns
// an indented rendering of the released parameters.
func (s *ModelSet) ToJSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// ModelSetFromJSON parses a released parameter file.
func ModelSetFromJSON(data []byte) (*ModelSet, error) {
	var out ModelSet
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("core: parse model set: %w", err)
	}
	return &out, nil
}

// ByName returns the service model with the given name.
func (s *ModelSet) ByName(name string) (*ServiceModel, error) {
	for i := range s.Services {
		if s.Services[i].Name == name {
			return &s.Services[i], nil
		}
	}
	return nil, fmt.Errorf("core: model set has no service %q", name)
}

// Validate checks that every released parameter tuple is usable for
// generation: finite parameters, positive widths and prefactors, and
// session shares inside [0, 1] that do not sum past one. A parameter
// file that fails Validate would produce NaN volumes or unsampleable
// distributions, so loaders should reject it outright.
func (s *ModelSet) Validate() error {
	span := obs.StartSpan("validate")
	defer span.End()
	finite := func(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
	var problems []string
	bad := func(format string, args ...interface{}) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}
	if len(s.Services) == 0 {
		bad("no services")
	}
	var shareSum float64
	for i := range s.Services {
		m := &s.Services[i]
		name := m.Name
		if name == "" {
			name = fmt.Sprintf("service #%d", i)
			bad("%s: empty name", name)
		}
		if !finite(m.SessionShare) || m.SessionShare < 0 || m.SessionShare > 1 {
			bad("%s: session share %v outside [0, 1]", name, m.SessionShare)
		} else {
			shareSum += m.SessionShare
		}
		if !finite(m.Volume.MainMu) {
			bad("%s: non-finite volume mu %v", name, m.Volume.MainMu)
		}
		if !finite(m.Volume.MainSigma) || m.Volume.MainSigma <= 0 {
			bad("%s: volume sigma %v not positive", name, m.Volume.MainSigma)
		}
		if !finite(m.Volume.MaxVolume) || m.Volume.MaxVolume < 0 {
			bad("%s: invalid max volume %v", name, m.Volume.MaxVolume)
		}
		for j, p := range m.Volume.Peaks {
			if !finite(p.K) || p.K <= 0 || !finite(p.Mu) || !finite(p.Sigma) || p.Sigma <= 0 {
				bad("%s: peak %d has invalid parameters (k=%v mu=%v sigma=%v)", name, j+1, p.K, p.Mu, p.Sigma)
			}
		}
		if !finite(m.Duration.Alpha) || m.Duration.Alpha <= 0 {
			bad("%s: power-law alpha %v not positive", name, m.Duration.Alpha)
		}
		if !finite(m.Duration.Beta) || m.Duration.Beta == 0 {
			bad("%s: power-law beta %v not invertible", name, m.Duration.Beta)
		}
		if math.IsInf(m.VolumeEMD, 0) || m.VolumeEMD < 0 {
			bad("%s: invalid volume EMD %v", name, m.VolumeEMD)
		}
		if !finite(m.DurationNoise) || m.DurationNoise < 0 {
			bad("%s: invalid duration noise %v", name, m.DurationNoise)
		}
	}
	if shareSum > 1+1e-6 {
		bad("session shares sum to %v > 1", shareSum)
	}
	for i, a := range s.Arrivals {
		if a == nil {
			bad("arrival class %d: nil model", i+1)
			continue
		}
		if !finite(a.PeakMu) || a.PeakMu < 0 || !finite(a.PeakSigma) || a.PeakSigma < 0 {
			bad("arrival class %d: invalid daytime Gaussian (mu=%v sigma=%v)", i+1, a.PeakMu, a.PeakSigma)
		}
		if !finite(a.OffShape) || a.OffShape <= 0 || !finite(a.OffScale) || a.OffScale <= 0 {
			bad("arrival class %d: invalid nighttime Pareto (shape=%v scale=%v)", i+1, a.OffShape, a.OffScale)
		}
	}
	if len(problems) > 0 {
		return fmt.Errorf("core: invalid model set:\n  %s", strings.Join(problems, "\n  "))
	}
	return nil
}

// Normalize rescales the session shares to sum to one, returning an
// error when they are all zero.
func (s *ModelSet) Normalize() error {
	var total float64
	for _, m := range s.Services {
		total += m.SessionShare
	}
	if total <= 0 {
		return errors.New("core: model set has zero total session share")
	}
	for i := range s.Services {
		s.Services[i].SessionShare /= total
	}
	return nil
}

// Generator produces synthetic per-minute session workloads from a
// ModelSet: arrival counts from the bi-modal arrival model of the
// requested BS class, service attribution by the Table 1 shares, and
// per-session volume/duration/throughput from the per-service models —
// the complete generation recipe of §5.4 / §6.1. The Engine selects
// which random stream realizes the draws: GenV1 replays the historical
// math/rand stream byte for byte, GenV2 (the default) runs the
// precomputed table-driven fast path.
type Generator struct {
	Set    *ModelSet
	Engine Engine
	// v1 stream state: math/rand source plus the cumulative share
	// table scanned with a binary search.
	rng *rand.Rand
	cum []float64
	// v2 stream state: inline PCG (no pointer chase, no sync.Mutex)
	// plus the precomputed generation plan.
	pcg  mathx.PCG
	plan *genPlan
	// seed is the master seed, kept for deriving substreams (the
	// per-(BS, day) campaign cells and per-(client, stream) server
	// generators of the parallel generation plane).
	seed uint64
	// byName resolves Session's name argument to a service index.
	byName map[string]int
}

// NewGenerator validates the model set and prepares a generator with
// the given seed on the default engine (GenV2). The caller's set is
// not modified: session shares are normalized into generator-private
// tables.
func NewGenerator(set *ModelSet, seed int64) (*Generator, error) {
	return NewGeneratorEngine(set, seed, GenV2)
}

// NewGeneratorEngine prepares a generator on an explicit generation
// engine; the zero Engine value selects the default.
func NewGeneratorEngine(set *ModelSet, seed int64, engine Engine) (*Generator, error) {
	if engine == "" {
		engine = GenV2
	}
	if engine != GenV1 && engine != GenV2 {
		return nil, fmt.Errorf("core: unknown generation engine %q (want v1 or v2)", engine)
	}
	if set == nil || len(set.Services) == 0 {
		return nil, errors.New("core: generator needs a non-empty model set")
	}
	// Normalize the shares into a private slice instead of mutating the
	// caller's models. The copy performs the same share/total divisions
	// the historical in-place Normalize did, so the v1 cumulative table
	// is bit-identical.
	var total float64
	for i := range set.Services {
		total += set.Services[i].SessionShare
	}
	if total <= 0 {
		return nil, errors.New("core: model set has zero total session share")
	}
	shares := make([]float64, len(set.Services))
	for i := range set.Services {
		shares[i] = set.Services[i].SessionShare / total
	}
	g := &Generator{Set: set, Engine: engine, seed: uint64(seed)}
	g.byName = make(map[string]int, len(set.Services))
	for i := range set.Services {
		g.byName[set.Services[i].Name] = i
	}
	if engine == GenV1 {
		g.rng = rand.New(rand.NewSource(seed))
		g.cum = make([]float64, len(set.Services))
		var acc float64
		for i, share := range shares {
			acc += share
			g.cum[i] = acc
		}
		return g, nil
	}
	plan, err := newGenPlan(set, shares)
	if err != nil {
		return nil, err
	}
	g.plan = plan
	g.pcg.SeedStream(uint64(seed), 0x67656e, 2)
	return g, nil
}

// Substream returns an independent generator on the (client, stream)
// cell of this generator's stream family: same compiled plan and model
// set (shared, immutable), its own PCG seeded via
// SeedStream(master^genClientDomain, client, stream). Substreams are
// pure functions of (master seed, client, stream) — the order they are
// created or drawn from never affects any stream's output — so a
// session-stream server can hand every consumer its own generator and
// stay deterministic under any interleaving. Substreams are a v2
// feature: v1's contract is the historical single math/rand stream,
// which has no substream decomposition, so v1 generators return an
// error.
func (g *Generator) Substream(client, stream uint64) (*Generator, error) {
	return g.substream(genClientDomain, client, stream)
}

// substream derives the (a, b) cell generator of the given key domain.
// The plan, byName table and ModelSet are shared read-only; only the
// 16-byte PCG is per-substream state, so deriving one is allocation-
// cheap enough to do per (BS, day) campaign cell.
func (g *Generator) substream(domain, a, b uint64) (*Generator, error) {
	if g.Engine != GenV2 {
		return nil, fmt.Errorf("core: substreams need engine v2 (v1 preserves the historical single stream)")
	}
	sub := &Generator{Set: g.Set, Engine: g.Engine, plan: g.plan, seed: g.seed, byName: g.byName}
	sub.pcg.SeedStream(g.seed^domain, a, b)
	return sub, nil
}

// PickServiceIndex draws a service index by session share, without
// generating a session; callers can pair it with SessionFor to drive a
// shared arrival realization across generators.
func (g *Generator) PickServiceIndex() int { return g.pickService() }

// pickService draws a service index by session share.
func (g *Generator) pickService() int {
	if g.Engine == GenV1 {
		u := g.rng.Float64()
		i := sort.SearchFloat64s(g.cum, u)
		if i >= len(g.cum) {
			i = len(g.cum) - 1
		}
		return i
	}
	return g.plan.svcPick.Pick(g.pcg.Float64())
}

// generateV2 draws one session of service index svc on the fast path:
// both the volume and the duration cost one Gaussian variate and one
// math.Exp, using the natural log of the volume to skip the logarithm
// half of the power-law inversion.
func (g *Generator) generateV2(svc int) GenSession {
	sp := &g.plan.svcs[svc]
	v, lnV := sp.sampleVolumeLn(&g.pcg)
	d := sp.sampleDurationLn(lnV, &g.pcg)
	return GenSession{
		Service:    g.Set.Services[svc].Name,
		Volume:     v,
		Duration:   d,
		Throughput: v / d,
	}
}

// Minute generates the sessions established in one minute at a BS of
// the given load class (index into Set.Arrivals); peak selects the
// daytime or nighttime arrival mode. Allocates a fresh slice per call;
// steady-state loops should use MinuteAppend with a reused buffer.
func (g *Generator) Minute(class int, peak bool) ([]GenSession, error) {
	out, err := g.MinuteAppend(nil, class, peak)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// MinuteAppend generates one minute's sessions and appends them to
// dst, returning the extended slice. Passing a buffer with spare
// capacity makes the v2 steady state allocation-free (pinned by
// TestGenV2MinuteAppendAllocs); the draw sequence is identical to
// Minute on both engines.
func (g *Generator) MinuteAppend(dst []GenSession, class int, peak bool) ([]GenSession, error) {
	if len(g.Set.Arrivals) == 0 {
		return dst, errors.New("core: model set has no arrival models")
	}
	if class < 0 || class >= len(g.Set.Arrivals) {
		return dst, fmt.Errorf("core: arrival class %d out of range [0, %d)", class, len(g.Set.Arrivals))
	}
	if g.Engine == GenV1 {
		n := g.Set.Arrivals[class].SampleCount(peak, g.rng)
		dst = growSessions(dst, n)
		for k := 0; k < n; k++ {
			svc := g.pickService()
			dst = append(dst, g.Set.Services[svc].Generate(g.rng))
		}
		return dst, nil
	}
	n := g.Set.Arrivals[class].SampleCountFast(peak, &g.pcg)
	dst = growSessions(dst, n)
	for k := 0; k < n; k++ {
		svc := g.plan.svcPick.Pick(g.pcg.Float64())
		dst = append(dst, g.generateV2(svc))
	}
	return dst, nil
}

// growSessions ensures dst has room for n more sessions with at most
// one allocation, so a minute fill never reallocates mid-loop.
func growSessions(dst []GenSession, n int) []GenSession {
	if cap(dst)-len(dst) >= n {
		return dst
	}
	grown := make([]GenSession, len(dst), len(dst)+n)
	copy(grown, dst)
	return grown
}

// GenerateBatch appends one minute of sessions per entry of peaks
// (all for the same load class) to dst, returning the extended slice —
// the bulk form of MinuteAppend for trace fills.
func (g *Generator) GenerateBatch(dst []GenSession, class int, peaks []bool) ([]GenSession, error) {
	var err error
	for _, peak := range peaks {
		dst, err = g.MinuteAppend(dst, class, peak)
		if err != nil {
			return dst, err
		}
	}
	return dst, nil
}

// SessionFor generates a single session of the service at the given
// index — the hot-path form of Session, pairing with PickServiceIndex
// without a name round-trip.
func (g *Generator) SessionFor(idx int) (GenSession, error) {
	if idx < 0 || idx >= len(g.Set.Services) {
		return GenSession{}, fmt.Errorf("core: service index %d out of range [0, %d)", idx, len(g.Set.Services))
	}
	if g.Engine == GenV1 {
		return g.Set.Services[idx].Generate(g.rng), nil
	}
	return g.generateV2(idx), nil
}

// Session generates a single session of the named service.
func (g *Generator) Session(name string) (GenSession, error) {
	idx, ok := g.byName[name]
	if !ok {
		return GenSession{}, fmt.Errorf("core: model set has no service %q", name)
	}
	return g.SessionFor(idx)
}
