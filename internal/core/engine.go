package core

import (
	"fmt"
	"math"

	"mobiletraffic/internal/mathx"
)

// Engine selects the versioned generation engine that turns a
// Generator seed into a synthetic session stream. Both versions
// realize the released model distributions of §5.4; they differ in
// which random draws produce them (see DESIGN.md "Generation engine
// streams").
type Engine string

// Generation engine stream versions.
const (
	// GenV1 is the original math/rand stream: every draw is
	// byte-for-byte identical to the pre-versioning Generator, pinned
	// by TestGenV1GoldenStream. Use it to reproduce historical traces.
	GenV1 Engine = "v1"
	// GenV2 is the fast default: a table-driven engine (stack-resident
	// PCG, Walker alias tables for the Table 1 service pick and the
	// mixture-component pick, single-Exp log-domain volume/duration
	// draws) that is statistically equivalent to v1 — same marginals,
	// different draw mapping.
	GenV2 Engine = "v2"
)

// ParseEngine validates a generation-engine version string; the empty
// string selects the default (v2).
func ParseEngine(s string) (Engine, error) {
	switch Engine(s) {
	case "":
		return GenV2, nil
	case GenV1, GenV2:
		return Engine(s), nil
	}
	return "", fmt.Errorf("core: unknown generation engine %q (want v1 or v2)", s)
}

// Substream key domains of the v2 generation plane. A substream is a
// mathx.PCG seeded SeedStream(master^domain, a, b); the domain salt
// partitions the one master seed into disjoint stream families so a
// generation substream can never coincide with the measurement
// sampler's netsim substream of the same (seed, BS, day) — netsim
// seeds SeedStream(seed, bs, day) with no salt — nor with each other.
// See DESIGN.md "Generation engine streams" for the full keying table.
const (
	// genCampaignDomain keys the per-(BS, day) campaign substreams:
	// a = the BS key (topology index unless overridden), b = the day.
	genCampaignDomain uint64 = 0xB5DA_6E67_656E01CA
	// genClientDomain keys the server-facing per-(client, stream id)
	// substreams handed out by Generator.Substream.
	genClientDomain uint64 = 0xC11E_5467_656E02AB
)

// lnMaxDuration is the [1 s, 24 h] duration ceiling in the natural-log
// domain, shared by every v2 duration draw.
var lnMaxDuration = math.Log(MaxSessionDuration)

// genPlan is the precomputed generation plan of one ModelSet: the
// engine-v2 counterpart of the v1 cumulative-share table, built once
// per Generator so the per-session hot path performs no parameter
// derivation, no name lookups and no O(n) scans.
type genPlan struct {
	// svcPick is the Walker/Vose alias table over the normalized
	// session shares: the Table 1 service attribution in O(1).
	svcPick *mathx.AliasTable
	svcs    []svcPlan
}

// svcPlan is one service's precomputed sampling parameters in the
// natural-log domain: each volume draw is one Gaussian variate and one
// math.Exp, each duration draw one more of each.
type svcPlan struct {
	// comp picks the mixture component (column 0 = main trend, then
	// the residual peaks in order); nil when the model has no peaks.
	comp *mathx.AliasTable
	// muLn and sigLn hold the per-component location/width scaled by
	// ln 10, main component first.
	muLn  []float64
	sigLn []float64
	// lnCap / maxVol are the volume support ceiling (MaxVolume, or
	// MaxSampleVolume when the model is unbounded) in both domains.
	lnCap  float64
	maxVol float64
	// Power-law inversion terms: d = exp(invBeta·(ln v − lnAlpha) +
	// noiseLn·Z), clamped to [1 s, MaxSessionDuration] in the log
	// domain.
	invBeta float64
	lnAlpha float64
	noiseLn float64
	// degenerate marks an uninvertible power law (alpha <= 0 or
	// beta == 0): durations pin at the 1 s floor, matching the v1
	// NaN-guard in DurationModel.SampleDuration.
	degenerate bool
}

// newGenPlan compiles the v2 generation plan from the model set and
// its normalized session shares.
func newGenPlan(set *ModelSet, shares []float64) (*genPlan, error) {
	svcPick, err := mathx.NewAliasTable(shares)
	if err != nil {
		return nil, fmt.Errorf("core: generation plan service table: %w", err)
	}
	plan := &genPlan{svcPick: svcPick, svcs: make([]svcPlan, len(set.Services))}
	for i := range set.Services {
		m := &set.Services[i]
		sp := &plan.svcs[i]
		ncomp := 1 + len(m.Volume.Peaks)
		sp.muLn = make([]float64, ncomp)
		sp.sigLn = make([]float64, ncomp)
		sp.muLn[0] = m.Volume.MainMu * math.Ln10
		sp.sigLn[0] = m.Volume.MainSigma * math.Ln10
		if len(m.Volume.Peaks) > 0 {
			weights := make([]float64, ncomp)
			weights[0] = 1
			for j, p := range m.Volume.Peaks {
				weights[j+1] = p.K
				sp.muLn[j+1] = p.Mu * math.Ln10
				sp.sigLn[j+1] = p.Sigma * math.Ln10
			}
			comp, err := mathx.NewAliasTable(weights)
			if err != nil {
				return nil, fmt.Errorf("core: generation plan for %s: %w", m.Name, err)
			}
			sp.comp = comp
		}
		sp.maxVol = m.Volume.MaxVolume
		if sp.maxVol <= 0 {
			sp.maxVol = MaxSampleVolume
		}
		sp.lnCap = math.Log(sp.maxVol)
		if m.Duration.Alpha <= 0 || m.Duration.Beta == 0 ||
			math.IsNaN(m.Duration.Alpha) || math.IsNaN(m.Duration.Beta) {
			sp.degenerate = true
		} else {
			sp.invBeta = 1 / m.Duration.Beta
			sp.lnAlpha = math.Log(m.Duration.Alpha)
		}
		sp.noiseLn = m.DurationNoise * math.Ln10
	}
	return plan, nil
}

// sampleVolumeLn draws one volume from the log-normal mixture in the
// natural-log domain: component via the alias table, variate via the
// ziggurat Gaussian, one math.Exp — versus math.Pow(10, ·) (a log and
// an exp) on the v1 path. Returns the volume and its natural log so
// the duration draw can skip the log half of the power-law inversion.
func (sp *svcPlan) sampleVolumeLn(rng *mathx.PCG) (v, lnV float64) {
	ci := 0
	if sp.comp != nil {
		ci = sp.comp.Pick(rng.Float64())
	}
	lnV = sp.muLn[ci] + sp.sigLn[ci]*rng.NormFloat64()
	if lnV >= sp.lnCap {
		return sp.maxVol, sp.lnCap
	}
	return math.Exp(lnV), lnV
}

// sampleDurationLn draws the session duration for a volume with the
// given natural log: the power-law inversion plus optional log-normal
// jitter evaluated as a single math.Exp, with the [1 s, 24 h] clamps
// applied in the log domain (boundary cases skip the Exp entirely).
func (sp *svcPlan) sampleDurationLn(lnV float64, rng *mathx.PCG) float64 {
	if sp.degenerate {
		return 1
	}
	x := sp.invBeta * (lnV - sp.lnAlpha)
	if sp.noiseLn > 0 {
		x += sp.noiseLn * rng.NormFloat64()
	}
	switch {
	case x <= 0: // d < 1 s
		return 1
	case x >= lnMaxDuration:
		return MaxSessionDuration
	}
	return math.Exp(x)
}
