package core

import (
	"errors"
	"runtime"
	"testing"
)

// TestFoldTasksOrderAndReuse pins the ordered-fold contract: visit runs
// exactly once per task in increasing index order at every worker
// count, sees the slot its producer filled, and the freelist bounds the
// number of distinct slots to O(workers) regardless of n.
func TestFoldTasksOrderAndReuse(t *testing.T) {
	const n = 200
	for _, workers := range []int{1, 4, 7} {
		var visited []int
		slots := map[*int]bool{}
		err := FoldTasks(n, workers, func(_, i int, slot *int) {
			*slot = i * i
		}, func(i int, slot *int) error {
			if *slot != i*i {
				t.Errorf("workers=%d: visit(%d) got slot value %d, want %d", workers, i, *slot, i*i)
			}
			visited = append(visited, i)
			slots[slot] = true
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(visited) != n {
			t.Fatalf("workers=%d: visited %d tasks, want %d", workers, len(visited), n)
		}
		for i, v := range visited {
			if v != i {
				t.Fatalf("workers=%d: visit order broken at position %d: got task %d", workers, i, v)
			}
		}
		// Live slots are bounded by the producer window plus the workers
		// themselves, never by n.
		if max := (foldWindow+1)*workers + workers; len(slots) > max {
			t.Errorf("workers=%d: %d distinct slots allocated, want <= %d", workers, len(slots), max)
		}
	}
}

// TestFoldTasksError checks a visit error stops the fold early: the
// error is returned and no later task is visited.
func TestFoldTasksError(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		var visited []int
		err := FoldTasks(100, workers, func(_, i int, slot *int) {
			*slot = i
		}, func(i int, _ *int) error {
			visited = append(visited, i)
			if i == 5 {
				return boom
			}
			return nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v, want boom", workers, err)
		}
		if len(visited) != 6 {
			t.Fatalf("workers=%d: visited %v, want exactly tasks 0..5", workers, visited)
		}
		for i, v := range visited {
			if v != i {
				t.Fatalf("workers=%d: out-of-order visit %v", workers, visited)
			}
		}
	}
}

// TestFoldTasksEmpty covers the degenerate sizes.
func TestFoldTasksEmpty(t *testing.T) {
	for _, n := range []int{0, -3} {
		called := false
		err := FoldTasks(n, 4, func(_, _ int, _ *int) { called = true },
			func(_ int, _ *int) error { called = true; return nil })
		if err != nil || called {
			t.Fatalf("FoldTasks(%d) ran work: err=%v called=%v", n, err, called)
		}
	}
}

func cloneBlock(b *DayBlock) DayBlock {
	return DayBlock{
		BS: b.BS, Day: b.Day,
		Offsets:  append([]int32(nil), b.Offsets...),
		Svc:      append([]int32(nil), b.Svc...),
		Volume:   append([]float64(nil), b.Volume...),
		Duration: append([]float64(nil), b.Duration...),
		Start:    append([]float64(nil), b.Start...),
	}
}

// TestGenerateCampaignFoldMatchesMaterialized is the fold plane's
// bit-identity contract: the cells handed to visit — in cell order, at
// every worker count — are exactly the blocks GenerateCampaign
// materializes, even though their storage is recycled between visits.
func TestGenerateCampaignFoldMatchesMaterialized(t *testing.T) {
	set := goldenModelSet()
	g, err := NewGenerator(set, 4242)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := g.GenerateCampaign(campaignSpecForTest(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4, 7} {
		spec := campaignSpecForTest(workers)
		var got []DayBlock
		err := g.GenerateCampaignFold(spec, func(blk *DayBlock) error {
			got = append(got, cloneBlock(blk))
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if err := blocksEqual(ref, got); err != nil {
			t.Errorf("workers=%d: fold output differs from GenerateCampaign: %v", workers, err)
		}
	}
}

// TestGenerateCampaignFoldEarlyStop checks visit errors abort the
// campaign and surface to the caller.
func TestGenerateCampaignFoldEarlyStop(t *testing.T) {
	set := goldenModelSet()
	g, err := NewGenerator(set, 7)
	if err != nil {
		t.Fatal(err)
	}
	stop := errors.New("stop")
	seen := 0
	err = g.GenerateCampaignFold(campaignSpecForTest(2), func(blk *DayBlock) error {
		seen++
		if seen == 2 {
			return stop
		}
		return nil
	})
	if !errors.Is(err, stop) {
		t.Fatalf("err = %v, want stop", err)
	}
	if seen != 2 {
		t.Fatalf("visited %d cells after stop, want 2", seen)
	}
}

// TestGenerateCampaignFoldValidation pins that the fold surface shares
// the materializing surface's spec and engine gates.
func TestGenerateCampaignFoldValidation(t *testing.T) {
	set := goldenModelSet()
	g, err := NewGenerator(set, 1)
	if err != nil {
		t.Fatal(err)
	}
	noop := func(*DayBlock) error { return nil }
	if err := g.GenerateCampaignFold(CampaignSpec{}, noop); err == nil {
		t.Error("empty spec accepted")
	}
	v1, err := NewGeneratorEngine(set, 1, GenV1)
	if err != nil {
		t.Fatal(err)
	}
	if err := v1.GenerateCampaignFold(campaignSpecForTest(1), noop); err == nil {
		t.Error("GenerateCampaignFold on a v1 generator did not error")
	}
}

// TestGenerateCampaignFoldSteadyStateAllocs pins the freelist contract
// the -workers sessiongen path and the demand builders rely on: once
// the reused block and scratch buffers have grown to the campaign's
// working set, later days allocate nothing — day cells are generated
// into recycled storage.
func TestGenerateCampaignFoldSteadyStateAllocs(t *testing.T) {
	set := goldenModelSet()
	g, err := NewGenerator(set, 99)
	if err != nil {
		t.Fatal(err)
	}
	const days, warm = 30, 12
	spec := CampaignSpec{
		Arrivals: set.Arrivals[:1],
		Days:     days,
		Workers:  1, // serial fold: one recycled slot, deterministic reuse
	}
	var m0, m1 runtime.MemStats
	err = g.GenerateCampaignFold(spec, func(blk *DayBlock) error {
		switch blk.Day {
		case warm:
			runtime.ReadMemStats(&m0)
		case days - 1:
			runtime.ReadMemStats(&m1)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := m1.Mallocs - m0.Mallocs; got != 0 {
		t.Errorf("steady-state fold allocated %d objects over %d days, want 0", got, days-1-warm)
	}
}
