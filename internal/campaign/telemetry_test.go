package campaign

import (
	"context"
	"errors"
	"testing"
	"time"

	"mobiletraffic/internal/obs"
	"mobiletraffic/internal/probe"
)

// withTestRegistry installs a fresh obs registry for the test and
// restores the previous default afterwards.
func withTestRegistry(t *testing.T) *obs.Registry {
	t.Helper()
	old := obs.Default()
	reg := obs.NewRegistry()
	obs.SetDefault(reg)
	t.Cleanup(func() { obs.SetDefault(old) })
	return reg
}

// eventKinds tallies the flight-recorder tail by kind.
func eventKinds(reg *obs.Registry) map[string]int {
	out := map[string]int{}
	for _, ev := range reg.Events().Tail(0) {
		out[ev.Kind]++
	}
	return out
}

// TestRunEmitsLifecycleEvents drives one campaign through every
// in-process lifecycle edge — start, done, retry, panic, permanent
// failure, merge — and checks the flight recorder, the labeled
// failure/retry counters, the shard-seconds histogram, the config info
// gauge and the progress tracker all saw it.
func TestRunEmitsLifecycleEvents(t *testing.T) {
	reg := withTestRegistry(t)
	const numBS, shards = 9, 3
	inner := testShardFunc(numBS)
	fn := func(ctx context.Context, sh Shard, attempt int) (*probe.Collector, error) {
		switch {
		case sh.Index == 1 && attempt == 1:
			panic("injected crash")
		case sh.Index == 2:
			return nil, errors.New("injected permanent failure")
		}
		return inner(ctx, sh, attempt)
	}
	_, report, err := Run(context.Background(), Config{
		NumBS: numBS, Shards: shards, MaxRetries: 1,
		BackoffBase: time.Millisecond, BackoffMax: 2 * time.Millisecond,
	}, fn)
	if err != nil {
		t.Fatal(err)
	}
	if report.Completed != 2 || report.Failed != 1 {
		t.Fatalf("report %+v", report)
	}

	kinds := eventKinds(reg)
	// Shard 0: 1 start. Shard 1: 2 starts (panic retry). Shard 2: 2
	// starts (MaxRetries 1).
	if kinds[obs.EventShardStart] != 5 {
		t.Errorf("shard_start events = %d, want 5 (kinds %v)", kinds[obs.EventShardStart], kinds)
	}
	if kinds[obs.EventShardDone] != 2 {
		t.Errorf("shard_done events = %d, want 2", kinds[obs.EventShardDone])
	}
	if kinds[obs.EventShardPanic] != 1 || kinds[obs.EventShardFailed] != 1 || kinds[obs.EventMerge] != 1 {
		t.Errorf("panic/failed/merge = %d/%d/%d, want 1/1/1 (kinds %v)",
			kinds[obs.EventShardPanic], kinds[obs.EventShardFailed], kinds[obs.EventMerge], kinds)
	}
	// Shard 2 retried once (attempt 1 -> 2); shard 1's panic also
	// scheduled one retry.
	if kinds[obs.EventShardRetry] != 2 {
		t.Errorf("shard_retry events = %d, want 2", kinds[obs.EventShardRetry])
	}

	// Failures and retries are attributable from /metrics alone.
	if got := reg.Counter("campaign_shards_failed_total", "shard", "2", "attempt", "2").Value(); got != 1 {
		t.Errorf("campaign_shards_failed_total{shard=2,attempt=2} = %d, want 1", got)
	}
	if got := reg.Counter("campaign_shard_retries_total", "shard", "2", "attempt", "1").Value(); got != 1 {
		t.Errorf("campaign_shard_retries_total{shard=2,attempt=1} = %d, want 1", got)
	}

	// Per-attempt wall time lands in campaign_shard_seconds by outcome:
	// 2 ok attempts (shard 0, shard 1's retry) and 3 err attempts
	// (shard 1's panic, shard 2's two failures).
	ok := reg.Histogram(ShardSecondsMetric, nil, "outcome", "ok").Count()
	errs := reg.Histogram(ShardSecondsMetric, nil, "outcome", "err").Count()
	if ok != 2 || errs != 3 {
		t.Errorf("shard_seconds ok/err counts = %d/%d, want 2/3", ok, errs)
	}

	// The manifest config hash is an info gauge.
	cfg := Config{NumBS: numBS, Shards: shards, MaxRetries: 1,
		BackoffBase: time.Millisecond, BackoffMax: 2 * time.Millisecond}.withDefaults()
	if got := reg.Gauge("campaign_config_info", "config_sha256", cfg.hash()).Value(); got != 1 {
		t.Errorf("campaign_config_info gauge = %v, want 1", got)
	}

	// The progress tracker reached a terminal snapshot.
	var found bool
	for _, st := range reg.ProgressStatuses() {
		if st.Name == ProgressName {
			found = true
			if st.Done != 2 || st.Failed != 1 || st.Fraction != 1 {
				t.Errorf("progress = %+v", st)
			}
			if st.Units[1].Attempts != 2 || st.Units[2].Attempts != 2 {
				t.Errorf("unit attempts = %+v", st.Units)
			}
		}
	}
	if !found {
		t.Fatalf("no %q tracker registered", ProgressName)
	}
}

// TestRunEmitsTimeoutEvents pins the timeout edge separately: a hung
// attempt produces shard_timeout, then the retry completes the shard.
func TestRunEmitsTimeoutEvents(t *testing.T) {
	reg := withTestRegistry(t)
	const numBS = 4
	inner := testShardFunc(numBS)
	fn := func(ctx context.Context, sh Shard, attempt int) (*probe.Collector, error) {
		if sh.Index == 0 && attempt == 1 {
			<-ctx.Done()
			return nil, ctx.Err()
		}
		return inner(ctx, sh, attempt)
	}
	_, report, err := Run(context.Background(), Config{
		NumBS: numBS, Shards: 2, ShardTimeout: 20 * time.Millisecond,
		BackoffBase: time.Millisecond, BackoffMax: 2 * time.Millisecond,
	}, fn)
	if err != nil {
		t.Fatal(err)
	}
	if report.Retries != 1 {
		t.Fatalf("report %+v", report)
	}
	kinds := eventKinds(reg)
	if kinds[obs.EventShardTimeout] != 1 {
		t.Fatalf("shard_timeout events = %d (kinds %v)", kinds[obs.EventShardTimeout], kinds)
	}
}

// TestRunEmitsCheckpointAndResumeEvents drives a checkpoint + resume
// cycle and checks the durable edges land in the recorder: checkpoint
// events on the first run, resume events on the second.
func TestRunEmitsCheckpointAndResumeEvents(t *testing.T) {
	reg := withTestRegistry(t)
	const numBS, shards = 8, 4
	dir := t.TempDir()
	cfg := Config{
		NumBS: numBS, Shards: shards, CheckpointDir: dir, ConfigTag: "telemetry-test",
		BackoffBase: time.Millisecond, BackoffMax: 2 * time.Millisecond,
	}
	if _, _, err := Run(context.Background(), cfg, testShardFunc(numBS)); err != nil {
		t.Fatal(err)
	}
	if kinds := eventKinds(reg); kinds[obs.EventCheckpoint] != shards {
		t.Fatalf("checkpoint events = %d, want %d (kinds %v)", kinds[obs.EventCheckpoint], shards, kinds)
	}

	// Fresh registry for the resume run so the counts are unambiguous.
	reg = withTestRegistry(t)
	cfg.Resume = true
	if _, rep, err := Run(context.Background(), cfg, testShardFunc(numBS)); err != nil || rep.Resumed != shards {
		t.Fatalf("resume: err=%v report=%+v", err, rep)
	}
	kinds := eventKinds(reg)
	if kinds[obs.EventResume] != shards {
		t.Fatalf("resume events = %d, want %d (kinds %v)", kinds[obs.EventResume], shards, kinds)
	}
	if kinds[obs.EventShardStart] != 0 {
		t.Fatalf("fully-resumed campaign started %d shards", kinds[obs.EventShardStart])
	}
	// Resumed units are terminal on the tracker.
	for _, st := range reg.ProgressStatuses() {
		if st.Name == ProgressName && (st.Done != shards || st.Fraction != 1) {
			t.Fatalf("resumed progress = %+v", st)
		}
	}
}

// TestRunFlagsStalledShards pins stall detection end to end: a shard
// that stops heartbeating past Config.StallAfter is flagged — one
// counter increment and one shard_stalled event — while a beating
// shard is not.
func TestRunFlagsStalledShards(t *testing.T) {
	reg := withTestRegistry(t)
	const numBS = 4
	inner := testShardFunc(numBS)
	release := make(chan struct{})
	fn := func(ctx context.Context, sh Shard, attempt int) (*probe.Collector, error) {
		if sh.Index == 0 {
			// Goes quiet: no heartbeat until released.
			<-release
		} else {
			// Stays lively well past the stall threshold.
			for i := 0; i < 20; i++ {
				Heartbeat(ctx)
				time.Sleep(5 * time.Millisecond)
			}
			close(release)
		}
		return inner(ctx, sh, attempt)
	}
	_, report, err := Run(context.Background(), Config{
		NumBS: numBS, Shards: 2, Workers: 2, StallAfter: 25 * time.Millisecond,
	}, fn)
	if err != nil {
		t.Fatal(err)
	}
	if report.Completed != 2 {
		t.Fatalf("report %+v", report)
	}
	if got := reg.Counter("campaign_shards_stalled_total", "shard", "0").Value(); got == 0 {
		t.Error("stalled shard 0 not counted")
	}
	if got := reg.Counter("campaign_shards_stalled_total", "shard", "1").Value(); got != 0 {
		t.Errorf("beating shard 1 counted as stalled %d times", got)
	}
	var stalledShard0 bool
	for _, ev := range reg.Events().Tail(0) {
		if ev.Kind == obs.EventShardStalled {
			if ev.Shard != 0 {
				t.Errorf("stall event for shard %d", ev.Shard)
			}
			stalledShard0 = true
		}
	}
	if !stalledShard0 {
		t.Error("no shard_stalled event recorded")
	}
}

// TestHeartbeatOutsideCampaign pins the no-op contract: shared
// collection code calls Heartbeat unconditionally, so a context
// without a campaign attempt must be safe.
func TestHeartbeatOutsideCampaign(t *testing.T) {
	Heartbeat(context.Background())
	Heartbeat(withHeartbeat(context.Background(), func() {})) // and with one
}

// TestRunTelemetryDisabled pins the zero-cost default: with no obs
// registry installed, a campaign runs to the same result with every
// telemetry call collapsing to nil-handle no-ops.
func TestRunTelemetryDisabled(t *testing.T) {
	old := obs.Default()
	obs.SetDefault(nil)
	t.Cleanup(func() { obs.SetDefault(old) })
	const numBS = 6
	ref := reference(t, numBS)
	coll, report, err := Run(context.Background(), Config{
		NumBS: numBS, Shards: 3, StallAfter: 5 * time.Millisecond,
	}, testShardFunc(numBS))
	if err != nil {
		t.Fatal(err)
	}
	if report.Completed != 3 {
		t.Fatalf("report %+v", report)
	}
	sameCells(t, ref, coll)
}
