package campaign

import (
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mobiletraffic/internal/netsim"
	"mobiletraffic/internal/probe"
)

const (
	testServices = 3
	testDays     = 2
)

// testShardFunc deterministically simulates a shard: every BS in the
// range contributes a handful of synthetic sessions whose values depend
// only on (bs, day), so any sharding of [0, numBS) merges to the same
// collector and retries are bit-identical to first attempts.
func testShardFunc(numBS int) ShardFunc {
	return func(ctx context.Context, sh Shard, attempt int) (*probe.Collector, error) {
		coll, err := probe.NewCollectorSized(testServices, numBS, testDays)
		if err != nil {
			return nil, err
		}
		for bs := sh.StartBS; bs < sh.EndBS; bs++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			for day := 0; day < testDays; day++ {
				for k := 0; k < 4; k++ {
					s := netsim.Session{
						Service:  (bs + k) % testServices,
						BS:       bs,
						Day:      day,
						Minute:   (bs*97 + day*31 + k*13) % netsim.MinutesPerDay,
						Volume:   float64(1+bs) * 1e4 * float64(1+k),
						Duration: float64(1+day) * 7.5,
					}
					if err := coll.Observe(s); err != nil {
						return nil, err
					}
				}
			}
		}
		return coll, nil
	}
}

// reference computes the uninterrupted single-shard result every test
// compares against.
func reference(t *testing.T, numBS int) *probe.Collector {
	t.Helper()
	coll, _, err := Run(context.Background(), Config{NumBS: numBS, Shards: 1}, testShardFunc(numBS))
	if err != nil {
		t.Fatal(err)
	}
	return coll
}

// sameCells fails unless a and b hold bit-identical cell statistics.
func sameCells(t *testing.T, a, b *probe.Collector) {
	t.Helper()
	ak, bk := a.Keys(), b.Keys()
	if len(ak) != len(bk) {
		t.Fatalf("cell counts differ: %d vs %d", len(ak), len(bk))
	}
	for _, key := range ak {
		sa, _ := a.Get(key)
		sb, ok := b.Get(key)
		if !ok {
			t.Fatalf("cell %+v missing", key)
		}
		if math.Float64bits(sa.Sessions) != math.Float64bits(sb.Sessions) {
			t.Fatalf("cell %+v sessions %v vs %v", key, sa.Sessions, sb.Sessions)
		}
		for i := range sa.Volume.P {
			if math.Float64bits(sa.Volume.P[i]) != math.Float64bits(sb.Volume.P[i]) {
				t.Fatalf("cell %+v volume bin %d differs", key, i)
			}
		}
	}
}

func TestPlan(t *testing.T) {
	cases := []struct {
		numBS, shards int
		want          int // shard count after clamping
	}{
		{10, 3, 3}, {10, 10, 10}, {10, 25, 10}, {10, 0, 1}, {10, -2, 1}, {1, 4, 1},
	}
	for _, c := range cases {
		plan := Plan(c.numBS, c.shards)
		if len(plan) != c.want {
			t.Fatalf("Plan(%d,%d) = %d shards, want %d", c.numBS, c.shards, len(plan), c.want)
		}
		next := 0
		for i, sh := range plan {
			if sh.Index != i || sh.StartBS != next || sh.EndBS <= sh.StartBS {
				t.Fatalf("Plan(%d,%d) shard %d = %+v (next start %d)", c.numBS, c.shards, i, sh, next)
			}
			next = sh.EndBS
		}
		if next != c.numBS {
			t.Fatalf("Plan(%d,%d) covers [0,%d)", c.numBS, c.shards, next)
		}
	}
	if Plan(0, 4) != nil {
		t.Fatal("Plan with no BSs must be empty")
	}
}

// TestRunBitIdentical verifies the tentpole determinism contract: the
// merged collector is bit-identical across shard counts.
func TestRunBitIdentical(t *testing.T) {
	const numBS = 11
	ref := reference(t, numBS)
	for _, shards := range []int{2, 3, 4, 7, 11} {
		coll, report, err := Run(context.Background(), Config{NumBS: numBS, Shards: shards}, testShardFunc(numBS))
		if err != nil {
			t.Fatalf("%d shards: %v", shards, err)
		}
		if report.Completed != shards || report.Degraded() {
			t.Fatalf("%d shards: report %+v", shards, report)
		}
		sameCells(t, ref, coll)
	}
}

// TestRunRecoversPanic verifies supervised retry: a shard whose first
// attempt panics is retried and the campaign result is unchanged.
func TestRunRecoversPanic(t *testing.T) {
	const numBS = 8
	ref := reference(t, numBS)
	inner := testShardFunc(numBS)
	fn := func(ctx context.Context, sh Shard, attempt int) (*probe.Collector, error) {
		if sh.Index == 1 && attempt == 1 {
			panic("injected worker crash")
		}
		return inner(ctx, sh, attempt)
	}
	coll, report, err := Run(context.Background(), Config{
		NumBS: numBS, Shards: 4, Seed: 9,
		BackoffBase: time.Millisecond, BackoffMax: 2 * time.Millisecond,
	}, fn)
	if err != nil {
		t.Fatal(err)
	}
	if report.Retries != 1 || report.Completed != 4 || report.Degraded() {
		t.Fatalf("report %+v, want 1 retry and 4 completed", report)
	}
	if report.Shards[1].Attempts != 2 {
		t.Fatalf("shard 1 attempts = %d, want 2", report.Shards[1].Attempts)
	}
	sameCells(t, ref, coll)
}

// TestRunTimeoutRetries verifies a hung attempt is abandoned at the
// shard timeout and the retry recovers the shard.
func TestRunTimeoutRetries(t *testing.T) {
	const numBS = 6
	ref := reference(t, numBS)
	inner := testShardFunc(numBS)
	fn := func(ctx context.Context, sh Shard, attempt int) (*probe.Collector, error) {
		if sh.Index == 0 && attempt == 1 {
			<-ctx.Done() // hung worker: freed only by the attempt timeout
			return nil, ctx.Err()
		}
		return inner(ctx, sh, attempt)
	}
	coll, report, err := Run(context.Background(), Config{
		NumBS: numBS, Shards: 3, ShardTimeout: 20 * time.Millisecond,
		BackoffBase: time.Millisecond, BackoffMax: 2 * time.Millisecond,
	}, fn)
	if err != nil {
		t.Fatal(err)
	}
	if report.Retries != 1 || report.Degraded() {
		t.Fatalf("report %+v, want 1 retry and no degradation", report)
	}
	if report.Shards[0].Attempts != 2 || report.Shards[0].Err != "" {
		t.Fatalf("shard 0 outcome %+v, want 2 attempts and a clean error", report.Shards[0])
	}
	sameCells(t, ref, coll)
}

// TestRunDegrades verifies retry exhaustion: the shard fails, the
// campaign completes with the surviving shards and the report names the
// coverage gap.
func TestRunDegrades(t *testing.T) {
	const numBS = 9
	inner := testShardFunc(numBS)
	fn := func(ctx context.Context, sh Shard, attempt int) (*probe.Collector, error) {
		if sh.Index == 2 {
			return nil, errors.New("injected permanent failure")
		}
		return inner(ctx, sh, attempt)
	}
	coll, report, err := Run(context.Background(), Config{
		NumBS: numBS, Shards: 3, MaxRetries: 1,
		BackoffBase: time.Millisecond, BackoffMax: 2 * time.Millisecond,
	}, fn)
	if err != nil {
		t.Fatal(err)
	}
	if !report.Degraded() || report.Failed != 1 || report.Completed != 2 {
		t.Fatalf("report %+v, want 1 failed / 2 completed", report)
	}
	if report.Shards[2].Attempts != 2 { // first attempt + MaxRetries
		t.Fatalf("failed shard attempts = %d, want 2", report.Shards[2].Attempts)
	}
	if report.LostBS != report.Shards[2].NumBS() {
		t.Fatalf("LostBS = %d, want %d", report.LostBS, report.Shards[2].NumBS())
	}
	if report.Merge == nil || report.Merge.Skipped != 1 {
		t.Fatalf("merge report %+v, want 1 skipped partial", report.Merge)
	}
	if !strings.Contains(report.Summary(), "DEGRADED") {
		t.Fatalf("summary %q does not flag degradation", report.Summary())
	}
	// The surviving shards' cells are intact: no BS of shards 0/1 lost.
	lost := report.Shards[2]
	for _, key := range coll.Keys() {
		if key.BS >= lost.StartBS && key.BS < lost.EndBS {
			t.Fatalf("cell %+v belongs to the failed shard", key)
		}
	}
}

// TestRunAllFailed verifies a campaign where nothing completes is an
// error, not an empty success.
func TestRunAllFailed(t *testing.T) {
	fn := func(ctx context.Context, sh Shard, attempt int) (*probe.Collector, error) {
		return nil, errors.New("boom")
	}
	_, report, err := Run(context.Background(), Config{
		NumBS: 4, Shards: 2, MaxRetries: -1,
		BackoffBase: time.Millisecond, BackoffMax: 2 * time.Millisecond,
	}, fn)
	if err == nil || !strings.Contains(err.Error(), "no shard completed") {
		t.Fatalf("err = %v, want no-shard-completed", err)
	}
	if report == nil || report.Failed != 2 {
		t.Fatalf("report %+v, want 2 failed", report)
	}
}

// TestRunCheckpointResume is the kill/resume core: run 1 loses every
// shard past a cut (completed shards checkpoint durably), run 2 resumes
// and must recompute exactly the missing shards, yielding a collector
// bit-identical to the uninterrupted reference.
func TestRunCheckpointResume(t *testing.T) {
	const numBS, shards = 10, 4
	ref := reference(t, numBS)
	dir := t.TempDir()
	inner := testShardFunc(numBS)
	cut := 2
	fail := func(ctx context.Context, sh Shard, attempt int) (*probe.Collector, error) {
		if sh.Index >= cut {
			return nil, errors.New("injected kill")
		}
		return inner(ctx, sh, attempt)
	}
	cfg := Config{
		NumBS: numBS, Shards: shards, CheckpointDir: dir, MaxRetries: -1,
		BackoffBase: time.Millisecond, BackoffMax: 2 * time.Millisecond,
		ConfigTag: "test-campaign",
	}
	_, rep1, err := Run(context.Background(), cfg, fail)
	if err != nil {
		t.Fatal(err)
	}
	if rep1.Completed != cut || rep1.Failed != shards-cut {
		t.Fatalf("run 1 report %+v", rep1)
	}
	for i := 0; i < cut; i++ {
		if _, err := os.Stat(filepath.Join(dir, checkpointName(i))); err != nil {
			t.Fatalf("completed shard %d has no checkpoint: %v", i, err)
		}
	}

	// Run 2: resume. Track which shards recompute — it must be exactly
	// the failed ones.
	var mu sync.Mutex
	recomputed := map[int]bool{}
	resumeFn := func(ctx context.Context, sh Shard, attempt int) (*probe.Collector, error) {
		mu.Lock()
		recomputed[sh.Index] = true
		mu.Unlock()
		return inner(ctx, sh, attempt)
	}
	cfg.Resume = true
	coll, rep2, err := Run(context.Background(), cfg, resumeFn)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Resumed != cut || rep2.Completed != shards-cut || rep2.Degraded() {
		t.Fatalf("run 2 report %+v, want %d resumed / %d computed", rep2, cut, shards-cut)
	}
	for i := 0; i < shards; i++ {
		if recomputed[i] != (i >= cut) {
			t.Fatalf("shard %d recomputed=%v, want %v", i, recomputed[i], i >= cut)
		}
	}
	sameCells(t, ref, coll)

	// Run 3: resuming a fully-done campaign computes nothing.
	coll3, rep3, err := Run(context.Background(), cfg, func(ctx context.Context, sh Shard, attempt int) (*probe.Collector, error) {
		return nil, fmt.Errorf("shard %d must not recompute", sh.Index)
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep3.Resumed != shards || rep3.Completed != 0 {
		t.Fatalf("run 3 report %+v, want all resumed", rep3)
	}
	sameCells(t, ref, coll3)
}

// TestResumeCorruptCheckpoint verifies a torn checkpoint demotes its
// shard to recompute — the CRC catches the damage, the campaign heals.
func TestResumeCorruptCheckpoint(t *testing.T) {
	const numBS, shards = 8, 4
	ref := reference(t, numBS)
	dir := t.TempDir()
	cfg := Config{
		NumBS: numBS, Shards: shards, CheckpointDir: dir,
		BackoffBase: time.Millisecond, BackoffMax: 2 * time.Millisecond,
		ConfigTag: "test-campaign",
	}
	if _, _, err := Run(context.Background(), cfg, testShardFunc(numBS)); err != nil {
		t.Fatal(err)
	}
	// Tear shard 1's checkpoint mid-file.
	path := filepath.Join(dir, checkpointName(1))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	var recomputed atomic.Int64
	cfg.Resume = true
	inner := testShardFunc(numBS)
	coll, rep, err := Run(context.Background(), cfg, func(ctx context.Context, sh Shard, attempt int) (*probe.Collector, error) {
		if sh.Index != 1 {
			return nil, fmt.Errorf("shard %d recomputed despite a valid checkpoint", sh.Index)
		}
		recomputed.Add(1)
		return inner(ctx, sh, attempt)
	})
	if err != nil {
		t.Fatal(err)
	}
	if recomputed.Load() != 1 || rep.Resumed != shards-1 || rep.Completed != 1 {
		t.Fatalf("report %+v (recomputed %d), want shard 1 recomputed", rep, recomputed.Load())
	}
	sameCells(t, ref, coll)
}

// TestResumeConfigMismatch verifies a checkpoint directory cannot be
// resumed under a different campaign configuration or shard plan.
func TestResumeConfigMismatch(t *testing.T) {
	const numBS = 8
	dir := t.TempDir()
	cfg := Config{NumBS: numBS, Shards: 4, CheckpointDir: dir, ConfigTag: "workload-a"}
	if _, _, err := Run(context.Background(), cfg, testShardFunc(numBS)); err != nil {
		t.Fatal(err)
	}
	cfg.Resume = true
	cfg.ConfigTag = "workload-b"
	if _, _, err := Run(context.Background(), cfg, testShardFunc(numBS)); err == nil ||
		!strings.Contains(err.Error(), "different campaign config") {
		t.Fatalf("config mismatch: err = %v", err)
	}
	cfg.ConfigTag = "workload-a"
	cfg.Shards = 2
	if _, _, err := Run(context.Background(), cfg, testShardFunc(numBS)); err == nil {
		t.Fatal("shard plan mismatch must refuse to resume")
	}
}

// TestRunInterrupted verifies cancellation mid-campaign: completed
// shards are checkpointed, the rest are marked interrupted, and the
// error wraps ErrInterrupted so callers can advertise -resume.
func TestRunInterrupted(t *testing.T) {
	const numBS, shards = 8, 4
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	inner := testShardFunc(numBS)
	fn := func(c context.Context, sh Shard, attempt int) (*probe.Collector, error) {
		if sh.Index == 1 {
			// The "signal" lands as shard 1 starts: with one worker,
			// shard 0 is already checkpointed and everything from here
			// on is cut off.
			cancel()
			return nil, c.Err()
		}
		return inner(c, sh, attempt)
	}
	coll, report, err := Run(ctx, Config{
		NumBS: numBS, Shards: shards, Workers: 1, CheckpointDir: dir,
		ConfigTag: "test-campaign",
	}, fn)
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	if report.Completed < 1 || report.Interrupted < 1 {
		t.Fatalf("report %+v, want >=1 completed and >=1 interrupted", report)
	}
	if coll == nil {
		t.Fatal("interrupted campaign with completed shards must still return the partial merge")
	}
	// The final manifest reflects the interruption durably.
	m, err := LoadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	var done, interrupted int
	for _, sh := range m.Shards {
		switch sh.Status {
		case ShardDone:
			done++
		case ShardInterrupted, ShardPending:
			interrupted++
		}
	}
	if done != report.Completed || done+interrupted != shards {
		t.Fatalf("manifest records %d done / %d interrupted, report %+v", done, interrupted, report)
	}

	// Resume completes the campaign bit-identically.
	ref := reference(t, numBS)
	cfg2 := Config{NumBS: numBS, Shards: shards, CheckpointDir: dir, Resume: true, ConfigTag: "test-campaign"}
	coll2, rep2, err := Run(context.Background(), cfg2, testShardFunc(numBS))
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Resumed != report.Completed || rep2.Degraded() {
		t.Fatalf("resume report %+v, want %d resumed", rep2, report.Completed)
	}
	sameCells(t, ref, coll2)
}

// TestRunValidation covers the hard input errors.
func TestRunValidation(t *testing.T) {
	if _, _, err := Run(context.Background(), Config{NumBS: 0}, testShardFunc(1)); err == nil {
		t.Fatal("NumBS 0 must error")
	}
	if _, _, err := Run(context.Background(), Config{NumBS: 4}, nil); err == nil {
		t.Fatal("nil shard func must error")
	}
	// A shard func returning (nil, nil) is a supervisor error, not a crash.
	_, _, err := Run(context.Background(), Config{
		NumBS: 2, Shards: 1, MaxRetries: -1,
	}, func(ctx context.Context, sh Shard, attempt int) (*probe.Collector, error) {
		return nil, nil
	})
	if err == nil || !strings.Contains(err.Error(), "no shard completed") {
		t.Fatalf("nil/nil shard func: err = %v", err)
	}
}
