package campaign

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// ManifestName is the campaign manifest's file name inside the
// checkpoint directory.
const ManifestName = "manifest.json"

// manifestVersion guards the manifest schema the same way the
// checkpoint codec version guards the binary cell format.
const manifestVersion = 1

// ShardStatus is the durable state of one shard in the manifest and in
// the CampaignReport.
type ShardStatus string

const (
	// ShardPending — not yet attempted (or attempt lost to a crash:
	// a shard whose worker died never leaves pending, which is exactly
	// what makes resume recompute it).
	ShardPending ShardStatus = "pending"
	// ShardDone — completed and, when checkpointing is on, durably
	// checkpointed.
	ShardDone ShardStatus = "done"
	// ShardResumed — completed in an earlier run; its checkpoint was
	// loaded instead of recomputing.
	ShardResumed ShardStatus = "resumed"
	// ShardFailed — exhausted its retry budget; the campaign completed
	// without it (graceful degradation).
	ShardFailed ShardStatus = "failed"
	// ShardInterrupted — the campaign was canceled (SIGINT/SIGTERM)
	// before the shard completed.
	ShardInterrupted ShardStatus = "interrupted"
)

// ManifestShard is one shard's durable record.
type ManifestShard struct {
	Index      int         `json:"index"`
	StartBS    int         `json:"start_bs"`
	EndBS      int         `json:"end_bs"`
	Status     ShardStatus `json:"status"`
	Attempts   int         `json:"attempts"`
	Checkpoint string      `json:"checkpoint,omitempty"` // file name, relative to the manifest dir
	Error      string      `json:"error,omitempty"`
}

// Manifest is the campaign's durable control record: which
// configuration produced it (as a hash, so resuming under a different
// config is refused rather than silently merging incompatible shards)
// and the status of every shard. It is rewritten atomically after
// every shard transition, so at any crash point it describes exactly
// which checkpoints are valid.
type Manifest struct {
	Version    int             `json:"version"`
	ConfigHash string          `json:"config_hash"`
	NumBS      int             `json:"num_bs"`
	Shards     []ManifestShard `json:"shards"`
}

// ConfigHash folds the campaign-identifying parts into a hex digest.
// Any field that changes the shard contents or boundaries must be
// represented in parts.
func ConfigHash(parts ...interface{}) string {
	h := sha256.New()
	fmt.Fprintln(h, parts...)
	return fmt.Sprintf("%x", h.Sum(nil))
}

// checkpointName is the per-shard checkpoint file name.
func checkpointName(index int) string {
	return fmt.Sprintf("shard-%04d.ckpt", index)
}

// WriteFile writes the manifest crash-safely into dir: temp file,
// fsync, rename, directory fsync — the same protocol as the shard
// checkpoints, so a crash never leaves a torn manifest.
func (m *Manifest) WriteFile(dir string) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("campaign: manifest encode: %w", err)
	}
	tmp, err := os.CreateTemp(dir, ManifestName+".tmp-*")
	if err != nil {
		return fmt.Errorf("campaign: manifest temp: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		return fmt.Errorf("campaign: manifest write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("campaign: manifest fsync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("campaign: manifest close: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, ManifestName)); err != nil {
		return fmt.Errorf("campaign: manifest rename: %w", err)
	}
	syncDir(dir)
	return nil
}

// LoadManifest reads the manifest from dir. A missing manifest returns
// (nil, nil): the directory holds no resumable campaign.
func LoadManifest(dir string) (*Manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("campaign: manifest read: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("campaign: manifest parse: %w", err)
	}
	if m.Version != manifestVersion {
		return nil, fmt.Errorf("campaign: manifest version %d (have %d)", m.Version, manifestVersion)
	}
	return &m, nil
}

// matches reports whether the manifest was produced by the same
// campaign configuration and shard plan.
func (m *Manifest) matches(hash string, plan []Shard) error {
	if m.ConfigHash != hash {
		return fmt.Errorf("campaign: checkpoint dir belongs to a different campaign config (manifest hash %.12s, current %.12s)", m.ConfigHash, hash)
	}
	if len(m.Shards) != len(plan) {
		return fmt.Errorf("campaign: manifest has %d shards, current plan %d", len(m.Shards), len(plan))
	}
	for i, sh := range plan {
		ms := m.Shards[i]
		if ms.Index != sh.Index || ms.StartBS != sh.StartBS || ms.EndBS != sh.EndBS {
			return fmt.Errorf("campaign: manifest shard %d spans [%d,%d), current plan [%d,%d)",
				i, ms.StartBS, ms.EndBS, sh.StartBS, sh.EndBS)
		}
	}
	return nil
}

// syncDir fsyncs a directory so a just-renamed entry is durable;
// best-effort, mirroring probe.WriteCheckpointFile.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}
