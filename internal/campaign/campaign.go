// Package campaign is the fault-tolerance layer of a sharded
// measurement campaign. The paper's collection spans 282k base
// stations over 45 days — at that scale characterization is a
// long-lived distributed job, not a process that either finishes or is
// rerun from scratch. This package partitions the BS range into
// shards, drives them through a supervised worker pool (per-shard
// timeout, bounded retry with exponential backoff and jitter, panic
// capture), checkpoints every completed shard crash-safely
// (probe.WriteCheckpointFile) under a durable manifest, and on resume
// loads completed shards instead of recomputing them.
//
// Determinism: each base station belongs to exactly one shard, shard
// collectors are index-aligned dense slabs, and the final fold runs in
// ascending shard order (probe.MergeAllReport), so every destination
// cell receives its (unique) contribution identically regardless of
// shard count, worker count, retry history, or whether a shard was
// recomputed or loaded from a bit-exact checkpoint. A resumed campaign
// therefore produces a bit-identical collector — and bit-identical
// fitted models — to an uninterrupted run. A shard that exhausts its
// retry budget degrades the campaign instead of failing it: the merge
// skips the gap and the Report says exactly which BS ranges are
// missing.
package campaign

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"time"

	"mobiletraffic/internal/obs"
	"mobiletraffic/internal/probe"
)

// Shard is one contiguous BS range [StartBS, EndBS) of the campaign.
type Shard struct {
	Index   int
	StartBS int
	EndBS   int
}

// NumBS returns the number of base stations in the shard.
func (s Shard) NumBS() int { return s.EndBS - s.StartBS }

// Plan partitions [0, numBS) into shards contiguous near-equal ranges
// in index order. The first numBS%shards shards carry one extra BS.
// shards is clamped to [1, numBS].
func Plan(numBS, shards int) []Shard {
	if shards < 1 {
		shards = 1
	}
	if shards > numBS {
		shards = numBS
	}
	if numBS <= 0 {
		return nil
	}
	out := make([]Shard, shards)
	base, extra := numBS/shards, numBS%shards
	start := 0
	for i := range out {
		n := base
		if i < extra {
			n++
		}
		out[i] = Shard{Index: i, StartBS: start, EndBS: start + n}
		start += n
	}
	return out
}

// ShardFunc computes one shard's partial collector. It must be safe to
// call concurrently for distinct shards and must honor ctx
// cancellation (checking between base stations is enough). attempt
// starts at 1 and counts retries of the same shard.
type ShardFunc func(ctx context.Context, sh Shard, attempt int) (*probe.Collector, error)

// Config drives a campaign run.
type Config struct {
	// NumBS is the campaign extent; shards partition [0, NumBS).
	NumBS int
	// Shards is the number of shards (default min(NumBS, NumCPU)).
	Shards int
	// Workers bounds concurrent shard attempts (default min(Shards, NumCPU)).
	Workers int
	// CheckpointDir enables durable checkpoints and the manifest;
	// empty runs the campaign in memory only.
	CheckpointDir string
	// Resume loads completed shard checkpoints from CheckpointDir
	// instead of recomputing them. The manifest's config hash and
	// shard plan must match; a missing manifest starts fresh.
	Resume bool
	// ShardTimeout aborts (and retries) a shard attempt that runs
	// longer; 0 disables the timeout.
	ShardTimeout time.Duration
	// MaxRetries is the retry budget after the first attempt (default
	// 2; negative disables retries).
	MaxRetries int
	// BackoffBase and BackoffMax bound the exponential retry backoff
	// (defaults 50ms and 2s). Jitter is drawn from a seeded stream so
	// test runs are reproducible.
	BackoffBase, BackoffMax time.Duration
	// Seed feeds the backoff jitter only — it never influences shard
	// contents.
	Seed int64
	// ConfigTag folds campaign-identifying configuration (simulator
	// seed, days, sampler, grids, ...) into the manifest's config
	// hash, so a checkpoint directory cannot be resumed under a
	// different workload.
	ConfigTag string
	// StallAfter flags a running shard as stalled — a flight-recorder
	// event plus campaign_shards_stalled_total — when its heartbeat age
	// exceeds this threshold (shard funcs heartbeat via
	// campaign.Heartbeat). 0 disables stall detection.
	StallAfter time.Duration
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = runtime.NumCPU()
	}
	if c.Shards > c.NumBS {
		c.Shards = c.NumBS
	}
	if c.Workers <= 0 {
		c.Workers = runtime.NumCPU()
	}
	if c.Workers > c.Shards {
		c.Workers = c.Shards
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 2
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 50 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 2 * time.Second
	}
	return c
}

// hash returns the manifest config hash of this campaign.
func (c Config) hash() string {
	return ConfigHash("v", manifestVersion, "numBS", c.NumBS, "shards", c.Shards, "tag", c.ConfigTag)
}

// ShardOutcome is one shard's fate in the Report.
type ShardOutcome struct {
	Shard
	Status   ShardStatus
	Attempts int
	Err      string // last error of a failed/interrupted shard
}

// Report is the campaign's account of itself: every shard's outcome,
// the merge report of the final fold, and the coverage gap left by
// shards that exhausted their retries.
type Report struct {
	Shards      []ShardOutcome
	Completed   int // shards computed in this run
	Resumed     int // shards loaded from checkpoints
	Failed      int // shards that exhausted their retry budget
	Interrupted int // shards cut off by cancellation
	Retries     int // total retry attempts across all shards
	// LostBS counts base stations in failed/interrupted shards — the
	// coverage gap of a degraded campaign.
	LostBS int
	// Merge is the final fold's per-partial account (nil when no shard
	// completed).
	Merge *probe.MergeReport
}

// Degraded reports whether the campaign is missing any shard.
func (r *Report) Degraded() bool { return r.Failed > 0 || r.Interrupted > 0 }

// Summary renders a one-line account of the campaign.
func (r *Report) Summary() string {
	s := fmt.Sprintf("campaign: %d shards (%d computed, %d resumed", len(r.Shards), r.Completed, r.Resumed)
	if r.Retries > 0 {
		s += fmt.Sprintf(", %d retries", r.Retries)
	}
	s += ")"
	if r.Degraded() {
		s += fmt.Sprintf("; DEGRADED: %d failed, %d interrupted, %d BSs lost", r.Failed, r.Interrupted, r.LostBS)
		for _, sh := range r.Shards {
			if sh.Status == ShardFailed {
				s += fmt.Sprintf("; shard %d [%d,%d): %s", sh.Index, sh.StartBS, sh.EndBS, sh.Err)
			}
		}
	}
	return s
}

// ErrInterrupted is wrapped by Run when the campaign context is
// canceled before every shard completes. Completed shards are already
// checkpointed and the manifest reflects them, so a later Resume run
// picks up where this one stopped.
var ErrInterrupted = errors.New("campaign: interrupted")

// Run executes the sharded campaign: plan, optionally resume completed
// shards from CheckpointDir, supervise the rest through the worker
// pool, checkpoint each completed shard, and fold everything that
// survived into one collector in shard-index order.
//
// A shard failure after the retry budget degrades the result instead
// of failing the run: the returned Report names the gap and the merged
// collector covers the surviving shards. Run returns an error only
// when no shard at all completed, when the checkpoint directory is
// unusable, or — wrapping ErrInterrupted — when ctx was canceled
// first.
func Run(ctx context.Context, cfg Config, fn ShardFunc) (*probe.Collector, *Report, error) {
	span := obs.StartSpan("campaign")
	defer span.End()
	if cfg.NumBS <= 0 {
		return nil, nil, fmt.Errorf("campaign: NumBS = %d", cfg.NumBS)
	}
	if fn == nil {
		return nil, nil, fmt.Errorf("campaign: nil shard func")
	}
	c := cfg.withDefaults()
	plan := Plan(c.NumBS, c.Shards)
	hash := c.hash()
	// The config hash as an info gauge: /metrics alone identifies which
	// campaign configuration a scrape belongs to.
	obs.GaugeOf("campaign_config_info", "config_sha256", hash).Set(1)

	st := &runState{
		cfg:        c,
		plan:       plan,
		collectors: make([]*probe.Collector, len(plan)),
		outcomes:   make([]ShardOutcome, len(plan)),
		progress:   obs.NewProgress(ProgressName, len(plan)),
	}
	obs.TrackProgressOf(st.progress)
	for i, sh := range plan {
		st.outcomes[i] = ShardOutcome{Shard: sh, Status: ShardPending}
	}
	stopStallWatch := watchStalls(st.progress, c.StallAfter)
	defer stopStallWatch()

	if c.CheckpointDir != "" {
		if err := os.MkdirAll(c.CheckpointDir, 0o755); err != nil {
			return nil, nil, fmt.Errorf("campaign: checkpoint dir: %w", err)
		}
		st.manifest = &Manifest{Version: manifestVersion, ConfigHash: hash, NumBS: c.NumBS}
		for _, sh := range plan {
			st.manifest.Shards = append(st.manifest.Shards,
				ManifestShard{Index: sh.Index, StartBS: sh.StartBS, EndBS: sh.EndBS, Status: ShardPending})
		}
		if c.Resume {
			if err := st.resume(hash); err != nil {
				return nil, nil, err
			}
		}
		if err := st.manifest.WriteFile(c.CheckpointDir); err != nil {
			return nil, nil, err
		}
	}

	// Dispatch every non-resumed shard to the worker pool. The task
	// channel is pre-filled and closed, so workers drain it even after
	// cancellation — marking the leftovers interrupted instead of
	// deadlocking a feeder.
	tasks := make(chan int, len(plan))
	for i := range plan {
		if st.outcomes[i].Status == ShardPending {
			tasks <- i
		}
	}
	close(tasks)
	var wg sync.WaitGroup
	for w := 0; w < c.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range tasks {
				if ctx.Err() != nil {
					st.finishFailed(i, ShardOutcome{Shard: plan[i], Status: ShardInterrupted, Err: ctx.Err().Error()})
					continue
				}
				st.runShard(ctx, span, w, i, fn)
			}
		}(w)
	}
	wg.Wait()

	report := st.report()
	// The final manifest write is the campaign's durable goodbye: on a
	// clean finish it records done/failed, on SIGINT/SIGTERM it marks
	// the cut-off shards interrupted so a resume recomputes exactly
	// those.
	if st.manifest != nil {
		if err := st.manifest.WriteFile(c.CheckpointDir); err != nil {
			return nil, report, err
		}
	}

	merged, err := st.merge(report)
	if err != nil {
		return nil, report, err
	}
	if ctx.Err() != nil {
		event(obs.EventInterrupted, -1, 0,
			fmt.Sprintf("%d of %d shards checkpointed", report.Completed+report.Resumed, len(plan)))
		return merged, report, fmt.Errorf("%w: %d of %d shards checkpointed", ErrInterrupted, report.Completed+report.Resumed, len(plan))
	}
	return merged, report, nil
}

// runState carries a campaign run's mutable state; the mutex guards
// the manifest and outcome slots against concurrent shard completions
// (each collectors slot is written by exactly one worker).
type runState struct {
	cfg        Config
	plan       []Shard
	collectors []*probe.Collector
	outcomes   []ShardOutcome
	manifest   *Manifest
	progress   *obs.Progress
	retries    int
	mu         sync.Mutex
}

// resume loads completed shard checkpoints recorded by a prior run's
// manifest. Corrupt or missing checkpoints demote their shard back to
// pending — recomputed, never trusted.
func (st *runState) resume(hash string) error {
	prior, err := LoadManifest(st.cfg.CheckpointDir)
	if err != nil {
		return err
	}
	if prior == nil {
		return nil // nothing to resume; start fresh
	}
	if err := prior.matches(hash, st.plan); err != nil {
		return err
	}
	for i, ms := range prior.Shards {
		if (ms.Status != ShardDone && ms.Status != ShardResumed) || ms.Checkpoint == "" {
			continue
		}
		coll, err := probe.ReadCheckpointFile(filepath.Join(st.cfg.CheckpointDir, ms.Checkpoint))
		if err != nil {
			// A torn or bit-rotted checkpoint is a recompute, not a
			// failure: the codec's CRC caught it.
			obs.CounterOf("campaign_checkpoint_corrupt_total").Inc()
			continue
		}
		st.collectors[i] = coll
		st.outcomes[i] = ShardOutcome{Shard: st.plan[i], Status: ShardResumed, Attempts: ms.Attempts}
		st.manifest.Shards[i] = ManifestShard{
			Index: ms.Index, StartBS: ms.StartBS, EndBS: ms.EndBS,
			Status: ShardResumed, Attempts: ms.Attempts, Checkpoint: ms.Checkpoint,
		}
		obs.CounterOf("campaign_shards_resumed_total").Inc()
		event(obs.EventResume, ms.Index, ms.Attempts, ms.Checkpoint)
		st.progress.Start(i)
		st.progress.Done(i)
	}
	return nil
}

// runShard supervises one shard: bounded retries around runAttempt,
// checkpoint + manifest update on success, degradation on exhaustion.
func (st *runState) runShard(ctx context.Context, span *obs.Span, worker, i int, fn ShardFunc) {
	sh := st.plan[i]
	shSpan := span.Child("campaign/shard", "shard", strconv.Itoa(sh.Index))
	shSpan.SetTID(1 + worker)
	defer shSpan.End()
	jitter := rand.New(rand.NewSource(st.cfg.Seed ^ int64(sh.Index)<<17 ^ 0x5ca1ab1e))
	shardLabel := strconv.Itoa(sh.Index)
	var lastErr error
	for attempt := 1; ; attempt++ {
		st.progress.Start(i)
		event(obs.EventShardStart, sh.Index, attempt, fmt.Sprintf("[%d,%d)", sh.StartBS, sh.EndBS))
		attemptStart := time.Now()
		coll, err := runAttempt(ctx, st, sh, attempt, fn)
		wall := time.Since(attemptStart).Seconds()
		if err == nil {
			obs.HistogramOf(ShardSecondsMetric, nil, "outcome", "ok").Observe(wall)
			event(obs.EventShardDone, sh.Index, attempt, fmt.Sprintf("%.3fs", wall))
			st.complete(i, attempt, coll)
			return
		}
		obs.HistogramOf(ShardSecondsMetric, nil, "outcome", "err").Observe(wall)
		lastErr = err
		if ctx.Err() != nil {
			st.finishFailed(i, ShardOutcome{Shard: sh, Status: ShardInterrupted, Attempts: attempt, Err: err.Error()})
			return
		}
		if attempt > st.cfg.MaxRetries {
			obs.CounterOf("campaign_shards_failed_total",
				"shard", shardLabel, "attempt", strconv.Itoa(attempt)).Inc()
			event(obs.EventShardFailed, sh.Index, attempt, lastErr.Error())
			st.finishFailed(i, ShardOutcome{Shard: sh, Status: ShardFailed, Attempts: attempt, Err: lastErr.Error()})
			return
		}
		obs.CounterOf("campaign_shard_retries_total",
			"shard", shardLabel, "attempt", strconv.Itoa(attempt)).Inc()
		event(obs.EventShardRetry, sh.Index, attempt, lastErr.Error())
		st.mu.Lock()
		st.retries++
		st.mu.Unlock()
		// Exponential backoff with full jitter, capped at BackoffMax.
		backoff := st.cfg.BackoffBase << (attempt - 1)
		if backoff > st.cfg.BackoffMax || backoff <= 0 {
			backoff = st.cfg.BackoffMax
		}
		backoff = time.Duration(jitter.Int63n(int64(backoff)) + 1)
		select {
		case <-time.After(backoff):
		case <-ctx.Done():
			st.finishFailed(i, ShardOutcome{Shard: sh, Status: ShardInterrupted, Attempts: attempt, Err: lastErr.Error()})
			return
		}
	}
}

// runAttempt executes one supervised attempt: the shard func runs in
// its own goroutine under the per-shard timeout with the shard's
// heartbeat callback on its context, panics are captured as errors,
// and a hung attempt is abandoned when its context expires (the
// goroutine drains into the buffered channel once it notices).
func runAttempt(ctx context.Context, st *runState, sh Shard, attempt int, fn ShardFunc) (*probe.Collector, error) {
	cfg := st.cfg
	actx := ctx
	if cfg.ShardTimeout > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(ctx, cfg.ShardTimeout)
		defer cancel()
	}
	shardIdx := sh.Index
	actx = withHeartbeat(actx, func() { st.progress.Heartbeat(shardIdx) })
	type result struct {
		coll *probe.Collector
		err  error
	}
	done := make(chan result, 1)
	go func() {
		defer func() {
			if p := recover(); p != nil {
				obs.CounterOf("campaign_shard_panics_total").Inc()
				event(obs.EventShardPanic, sh.Index, attempt, fmt.Sprint(p))
				done <- result{nil, fmt.Errorf("campaign: shard %d attempt %d panicked: %v\n%s",
					sh.Index, attempt, p, debug.Stack())}
			}
		}()
		coll, err := fn(actx, sh, attempt)
		done <- result{coll, err}
	}()
	select {
	case r := <-done:
		if r.err == nil && r.coll == nil {
			return nil, fmt.Errorf("campaign: shard %d returned no collector", sh.Index)
		}
		return r.coll, r.err
	case <-actx.Done():
		if errors.Is(actx.Err(), context.DeadlineExceeded) {
			obs.CounterOf("campaign_shard_timeouts_total").Inc()
			event(obs.EventShardTimeout, sh.Index, attempt, cfg.ShardTimeout.String())
			return nil, fmt.Errorf("campaign: shard %d attempt %d exceeded timeout %v", sh.Index, attempt, cfg.ShardTimeout)
		}
		return nil, fmt.Errorf("campaign: shard %d attempt %d: %w", sh.Index, attempt, actx.Err())
	}
}

// complete records a successful shard: checkpoint first (durable
// before visible), then the manifest flips the shard to done — the
// write ordering that makes a crash between the two merely re-derive
// the checkpoint.
func (st *runState) complete(i, attempts int, coll *probe.Collector) {
	sh := st.plan[i]
	out := ShardOutcome{Shard: sh, Status: ShardDone, Attempts: attempts}
	name := ""
	if st.cfg.CheckpointDir != "" {
		name = checkpointName(sh.Index)
		if err := coll.WriteCheckpointFile(filepath.Join(st.cfg.CheckpointDir, name)); err != nil {
			// A shard that computed but cannot persist still serves
			// this run; resume will recompute it.
			out.Err = err.Error()
			name = ""
		} else {
			event(obs.EventCheckpoint, sh.Index, attempts, name)
		}
	}
	st.finish(i, coll, out)
	st.progress.Done(i)
	if st.manifest != nil {
		st.mu.Lock()
		st.manifest.Shards[i].Status = ShardDone
		st.manifest.Shards[i].Attempts = attempts
		st.manifest.Shards[i].Checkpoint = name
		st.manifest.WriteFile(st.cfg.CheckpointDir)
		st.mu.Unlock()
	}
}

// finishFailed records a failed/interrupted outcome for shard i and
// flips its progress unit to the failed state.
func (st *runState) finishFailed(i int, out ShardOutcome) {
	st.finish(i, nil, out)
	st.progress.Fail(i, string(out.Status)+": "+out.Err)
}

// finish records a terminal outcome for shard i.
func (st *runState) finish(i int, coll *probe.Collector, out ShardOutcome) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.collectors[i] = coll
	st.outcomes[i] = out
	if st.manifest != nil && out.Status != ShardDone {
		st.manifest.Shards[i].Status = out.Status
		st.manifest.Shards[i].Attempts = out.Attempts
		st.manifest.Shards[i].Error = out.Err
	}
}

// report assembles the Report from the outcome slots.
func (st *runState) report() *Report {
	r := &Report{Shards: append([]ShardOutcome(nil), st.outcomes...), Retries: st.retries}
	for _, out := range st.outcomes {
		switch out.Status {
		case ShardDone:
			r.Completed++
		case ShardResumed:
			r.Resumed++
		case ShardFailed:
			r.Failed++
			r.LostBS += out.NumBS()
		default: // interrupted or never left pending
			r.Interrupted++
			r.LostBS += out.NumBS()
		}
	}
	return r
}

// merge folds the surviving shard collectors, in ascending shard
// order, into one campaign collector; failed shards appear as skipped
// partials in the merge report. Merging into a fresh collector keeps
// every shard checkpoint immutable on disk.
func (st *runState) merge(report *Report) (*probe.Collector, error) {
	span := obs.StartSpan("campaign/merge")
	defer span.End()
	var first *probe.Collector
	for _, coll := range st.collectors {
		if coll != nil {
			first = coll
			break
		}
	}
	if first == nil {
		return nil, fmt.Errorf("campaign: no shard completed")
	}
	dest, err := probe.NewCollectorGrids(first.NumServices, 0, 0, first.VolumeEdges, first.DurationEdges)
	if err != nil {
		return nil, fmt.Errorf("campaign: merge target: %w", err)
	}
	mrep, err := dest.MergeAllReport(st.collectors, st.cfg.Workers)
	if err != nil {
		return nil, err
	}
	report.Merge = mrep
	event(obs.EventMerge, -1, 0,
		fmt.Sprintf("%d merged, %d skipped", mrep.Merged, mrep.Skipped))
	return dest, nil
}
