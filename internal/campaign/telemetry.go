package campaign

import (
	"context"
	"fmt"
	"strconv"
	"time"

	"mobiletraffic/internal/obs"
)

// Run telemetry: the campaign emits a flight-recorder event at every
// shard lifecycle edge (start/retry/timeout/panic/checkpoint/resume/
// merge), tracks every shard through an obs.Progress state machine
// (surfaced on /statusz with completion fraction, ETA and heartbeat
// ages), and — when Config.StallAfter is set — flags shards whose
// heartbeat goes quiet. Shard funcs report liveness through
// Heartbeat(ctx), one atomic store per call, typically once per base
// station.

// ShardSecondsMetric is the histogram family recording per-attempt
// shard wall time, labeled by outcome ("ok" or "err").
const ShardSecondsMetric = "campaign_shard_seconds"

// ProgressName is the obs.Progress tracker name of the campaign's
// shard state machine on /statusz.
const ProgressName = "campaign_shards"

type heartbeatKey struct{}

// withHeartbeat injects the shard's liveness callback into the attempt
// context.
func withHeartbeat(ctx context.Context, beat func()) context.Context {
	return context.WithValue(ctx, heartbeatKey{}, beat)
}

// Heartbeat reports liveness from inside a shard func. Safe (and a
// no-op) on contexts without a campaign attempt attached, so shared
// collection code can call it unconditionally. Call it at a natural
// unit of progress — once per base station is plenty.
func Heartbeat(ctx context.Context) {
	if beat, ok := ctx.Value(heartbeatKey{}).(func()); ok {
		beat()
	}
}

// event records a campaign flight-recorder event on the default
// registry.
func event(kind string, shard, attempt int, detail string) {
	obs.RecordEvent(obs.Event{Kind: kind, Shard: shard, Attempt: attempt, Detail: detail})
}

// watchStalls polls the progress tracker until ctx is done, flagging
// every running shard whose heartbeat age exceeds threshold: one
// flight-recorder event and one campaign_shards_stalled_total
// increment per stall episode (a shard that resumes beating and stalls
// again is flagged again). The returned func stops the watcher.
func watchStalls(progress *obs.Progress, threshold time.Duration) (stop func()) {
	if progress == nil || threshold <= 0 {
		return func() {}
	}
	poll := threshold / 4
	if poll < 10*time.Millisecond {
		poll = 10 * time.Millisecond
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		ticker := time.NewTicker(poll)
		defer ticker.Stop()
		flagged := make(map[int]bool)
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
			}
			stalled := progress.Stalled(threshold)
			now := make(map[int]bool, len(stalled))
			for _, sh := range stalled {
				now[sh] = true
				if !flagged[sh] {
					obs.CounterOf("campaign_shards_stalled_total", "shard", strconv.Itoa(sh)).Inc()
					event(obs.EventShardStalled, sh, 0,
						fmt.Sprintf("heartbeat age exceeded %v", threshold))
				}
			}
			flagged = now
		}
	}()
	return func() { close(done); <-finished }
}
