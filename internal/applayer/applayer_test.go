package applayer

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGroupSequentialWithinGap(t *testing.T) {
	flows := []Flow{
		{UE: 1, Service: 0, Start: 0, End: 10, Volume: 100},
		{UE: 1, Service: 0, Start: 15, End: 25, Volume: 200}, // gap 5 <= 10
		{UE: 1, Service: 0, Start: 50, End: 60, Volume: 300}, // gap 25 > 10
	}
	sessions, err := Group(flows, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(sessions) != 2 {
		t.Fatalf("sessions = %d, want 2", len(sessions))
	}
	first := sessions[0]
	if first.Flows != 2 || first.Volume != 300 || first.Start != 0 || first.End != 25 {
		t.Errorf("first session = %+v", first)
	}
	if first.MaxParallel != 1 {
		t.Errorf("sequential flows parallelism = %d", first.MaxParallel)
	}
	if sessions[1].Flows != 1 || sessions[1].Volume != 300 {
		t.Errorf("second session = %+v", sessions[1])
	}
}

func TestGroupParallelFlows(t *testing.T) {
	flows := []Flow{
		{UE: 1, Service: 2, Start: 0, End: 100, Volume: 1},
		{UE: 1, Service: 2, Start: 10, End: 50, Volume: 1},
		{UE: 1, Service: 2, Start: 20, End: 40, Volume: 1},
	}
	sessions, err := Group(flows, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(sessions) != 1 {
		t.Fatalf("sessions = %d", len(sessions))
	}
	if sessions[0].MaxParallel != 3 {
		t.Errorf("max parallel = %d, want 3", sessions[0].MaxParallel)
	}
	if sessions[0].Duration() != 100 {
		t.Errorf("duration = %v", sessions[0].Duration())
	}
}

func TestGroupSeparatesUEsAndServices(t *testing.T) {
	flows := []Flow{
		{UE: 1, Service: 0, Start: 0, End: 10, Volume: 1},
		{UE: 2, Service: 0, Start: 0, End: 10, Volume: 1},
		{UE: 1, Service: 1, Start: 0, End: 10, Volume: 1},
	}
	sessions, err := Group(flows, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(sessions) != 3 {
		t.Fatalf("sessions = %d, want 3 (distinct UE/service pairs)", len(sessions))
	}
}

func TestGroupBackToBackNotParallel(t *testing.T) {
	// A flow opening exactly when the previous closes is sequential.
	flows := []Flow{
		{UE: 1, Service: 0, Start: 0, End: 10, Volume: 1},
		{UE: 1, Service: 0, Start: 10, End: 20, Volume: 1},
	}
	sessions, err := Group(flows, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(sessions) != 1 || sessions[0].MaxParallel != 1 {
		t.Fatalf("sessions = %+v", sessions)
	}
}

func TestGroupLongFlowShadowsGaps(t *testing.T) {
	// A long-lived flow keeps the app session open even when later
	// short flows leave gaps between each other.
	flows := []Flow{
		{UE: 1, Service: 0, Start: 0, End: 1000, Volume: 1},
		{UE: 1, Service: 0, Start: 100, End: 110, Volume: 1},
		{UE: 1, Service: 0, Start: 500, End: 510, Volume: 1}, // gap from 110 huge, but horizon is 1000
	}
	sessions, err := Group(flows, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(sessions) != 1 {
		t.Fatalf("sessions = %d, want 1 (horizon rule)", len(sessions))
	}
}

func TestGroupValidation(t *testing.T) {
	if _, err := Group(nil, -1); err == nil {
		t.Error("negative gap must error")
	}
	if _, err := Group([]Flow{{Start: 10, End: 5, Volume: 1}}, 1); err == nil {
		t.Error("inverted flow must error")
	}
	if _, err := Group([]Flow{{Start: 0, End: 5, Volume: -1}}, 1); err == nil {
		t.Error("negative volume must error")
	}
	sessions, err := Group(nil, 1)
	if err != nil || len(sessions) != 0 {
		t.Errorf("empty input: %v, %d", err, len(sessions))
	}
}

func TestGroupDoesNotModifyInput(t *testing.T) {
	flows := []Flow{
		{UE: 2, Service: 0, Start: 5, End: 6, Volume: 1},
		{UE: 1, Service: 0, Start: 0, End: 1, Volume: 1},
	}
	if _, err := Group(flows, 1); err != nil {
		t.Fatal(err)
	}
	if flows[0].UE != 2 {
		t.Error("Group reordered its input")
	}
}

func TestSummarize(t *testing.T) {
	flows := []Flow{
		{UE: 1, Service: 0, Start: 0, End: 10, Volume: 1},
		{UE: 1, Service: 0, Start: 12, End: 22, Volume: 1},
		{UE: 2, Service: 0, Start: 0, End: 5, Volume: 1},
	}
	sessions, err := Group(flows, 5)
	if err != nil {
		t.Fatal(err)
	}
	st, err := Summarize(sessions, flows)
	if err != nil {
		t.Fatal(err)
	}
	if st.AppSessions != 2 {
		t.Errorf("app sessions = %d", st.AppSessions)
	}
	if math.Abs(st.MeanFlows-1.5) > 1e-12 {
		t.Errorf("mean flows = %v", st.MeanFlows)
	}
	// UE 1: span 22, flow durations 20 -> ratio 1.1; UE 2: 5/5 -> 1.
	if math.Abs(st.MeanSpanRatio-1.05) > 1e-9 {
		t.Errorf("mean span ratio = %v", st.MeanSpanRatio)
	}
	if _, err := Summarize(nil, nil); err == nil {
		t.Error("empty sessions must error")
	}
}

// Property: grouping conserves flow count and volume, and every app
// session's span contains all its flows.
func TestGroupConservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(60)
		flows := make([]Flow, n)
		var totalVol float64
		for i := range flows {
			start := rng.Float64() * 1000
			flows[i] = Flow{
				UE:      uint64(1 + rng.Intn(4)),
				Service: rng.Intn(3),
				Start:   start,
				End:     start + rng.Float64()*100,
				Volume:  1 + rng.Float64()*1000,
			}
			totalVol += flows[i].Volume
		}
		gap := rng.Float64() * 50
		sessions, err := Group(flows, gap)
		if err != nil {
			return false
		}
		var gotFlows int
		var gotVol float64
		for _, s := range sessions {
			gotFlows += s.Flows
			gotVol += s.Volume
			if s.MaxParallel < 1 || s.MaxParallel > s.Flows {
				return false
			}
			if s.End < s.Start {
				return false
			}
		}
		return gotFlows == n && math.Abs(gotVol-totalVol) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: a larger idle gap never yields more app sessions.
func TestGroupMonotoneInGapProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		flows := make([]Flow, n)
		for i := range flows {
			start := rng.Float64() * 500
			flows[i] = Flow{
				UE:      uint64(1 + rng.Intn(2)),
				Service: rng.Intn(2),
				Start:   start,
				End:     start + rng.Float64()*50,
				Volume:  1,
			}
		}
		small, err := Group(flows, 5)
		if err != nil {
			return false
		}
		large, err := Group(flows, 50)
		if err != nil {
			return false
		}
		return len(large) <= len(small)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
