// Package applayer implements the paper's stated future-work extension
// (§7 and footnote 1): grouping individual transport-layer sessions
// into application-layer sessions. A single application may establish
// several transport sessions over time (e.g. a messaging app opening a
// new flow per conversation) or in parallel (e.g. a download fanning
// out connections); the paper models transport sessions only and leaves
// the higher-layer relationship open. This package reconstructs
// application-layer sessions from per-UE flow records by merging flows
// of the same (UE, service) pair that overlap or follow each other
// within an idle gap, and characterizes the resulting structure.
package applayer

import (
	"errors"
	"fmt"
	"sort"

	"mobiletraffic/internal/mathx"
)

// Flow is one transport-layer session attributed to a UE.
type Flow struct {
	UE      uint64
	Service int
	Start   float64 // seconds
	End     float64 // seconds, >= Start
	Volume  float64 // bytes
}

// AppSession is one reconstructed application-layer session: a maximal
// group of same-(UE, service) flows chained by overlap or by gaps below
// the idle threshold.
type AppSession struct {
	UE      uint64
	Service int
	Start   float64
	End     float64
	Volume  float64 // summed transport volumes
	Flows   int     // transport sessions merged
	// MaxParallel is the peak number of simultaneously open transport
	// sessions within the group.
	MaxParallel int
}

// Duration returns the application-session span in seconds.
func (a *AppSession) Duration() float64 { return a.End - a.Start }

// Group reconstructs application-layer sessions. idleGap is the maximum
// silence (seconds) between consecutive flows of one application before
// a new application session starts; it mirrors the service-specific
// expiration timeouts the gateway probes use one layer down (§3.2).
func Group(flows []Flow, idleGap float64) ([]AppSession, error) {
	if idleGap < 0 {
		return nil, fmt.Errorf("applayer: negative idle gap %v", idleGap)
	}
	for i, f := range flows {
		if f.End < f.Start {
			return nil, fmt.Errorf("applayer: flow %d ends (%v) before it starts (%v)", i, f.End, f.Start)
		}
		if f.Volume < 0 {
			return nil, fmt.Errorf("applayer: flow %d has negative volume", i)
		}
	}
	sorted := make([]Flow, len(flows))
	copy(sorted, flows)
	sort.SliceStable(sorted, func(i, j int) bool {
		a, b := sorted[i], sorted[j]
		if a.UE != b.UE {
			return a.UE < b.UE
		}
		if a.Service != b.Service {
			return a.Service < b.Service
		}
		return a.Start < b.Start
	})

	var out []AppSession
	var group []Flow
	flush := func() {
		if len(group) == 0 {
			return
		}
		out = append(out, buildSession(group))
		group = group[:0]
	}
	for _, f := range sorted {
		if len(group) > 0 {
			prev := group[len(group)-1]
			sameApp := prev.UE == f.UE && prev.Service == f.Service
			// The group's horizon is the max End seen so far.
			horizon := groupHorizon(group)
			if !sameApp || f.Start > horizon+idleGap {
				flush()
			}
		}
		group = append(group, f)
	}
	flush()
	return out, nil
}

// groupHorizon returns the latest end time in the group.
func groupHorizon(group []Flow) float64 {
	var h float64
	for i, f := range group {
		if i == 0 || f.End > h {
			h = f.End
		}
	}
	return h
}

func buildSession(group []Flow) AppSession {
	s := AppSession{
		UE:      group[0].UE,
		Service: group[0].Service,
		Start:   group[0].Start,
		End:     group[0].End,
		Flows:   len(group),
	}
	type edge struct {
		t     float64
		delta int
	}
	var edges []edge
	for _, f := range group {
		s.Volume += f.Volume
		if f.Start < s.Start {
			s.Start = f.Start
		}
		if f.End > s.End {
			s.End = f.End
		}
		edges = append(edges, edge{f.Start, 1}, edge{f.End, -1})
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].t != edges[j].t {
			return edges[i].t < edges[j].t
		}
		// Close before open at equal times: back-to-back flows are
		// sequential, not parallel.
		return edges[i].delta < edges[j].delta
	})
	cur, peak := 0, 0
	for _, e := range edges {
		cur += e.delta
		if cur > peak {
			peak = cur
		}
	}
	s.MaxParallel = peak
	return s
}

// Stats characterizes the reconstructed application layer.
type Stats struct {
	AppSessions int
	// FlowsPerSession distribution.
	MeanFlows float64
	P95Flows  float64
	// MaxParallel distribution.
	MeanParallel float64
	P95Parallel  float64
	// MeanSpanRatio is the mean app-session duration divided by the
	// summed durations of its flows; < 1 indicates parallel flows
	// dominate, > 1 indicates idle gaps between sequential flows.
	MeanSpanRatio float64
}

// Summarize computes aggregate statistics over app sessions, given the
// original flows for span-ratio computation.
func Summarize(sessions []AppSession, flows []Flow) (Stats, error) {
	if len(sessions) == 0 {
		return Stats{}, errors.New("applayer: no app sessions")
	}
	flowDur := map[[2]uint64]float64{} // (UE, service) -> summed flow durations
	for _, f := range flows {
		key := [2]uint64{f.UE, uint64(f.Service)}
		flowDur[key] += f.End - f.Start
	}
	var nFlows, nPar, ratios []float64
	spanByKey := map[[2]uint64]float64{}
	for _, s := range sessions {
		nFlows = append(nFlows, float64(s.Flows))
		nPar = append(nPar, float64(s.MaxParallel))
		key := [2]uint64{s.UE, uint64(s.Service)}
		spanByKey[key] += s.Duration()
	}
	for key, span := range spanByKey {
		if d := flowDur[key]; d > 0 {
			ratios = append(ratios, span/d)
		}
	}
	st := Stats{
		AppSessions:  len(sessions),
		MeanFlows:    mathx.Mean(nFlows),
		P95Flows:     mathx.Quantile(nFlows, 0.95),
		MeanParallel: mathx.Mean(nPar),
		P95Parallel:  mathx.Quantile(nPar, 0.95),
	}
	if len(ratios) > 0 {
		st.MeanSpanRatio = mathx.Mean(ratios)
	}
	return st, nil
}
