// Package netsim simulates the radio access network substrate whose
// measurements the paper characterizes: a population of 4G eNodeBs and
// 5G NSA gNodeBs spread over urban, semi-urban and rural regions and a
// handful of metropolitan areas, each serving transport-layer sessions
// that arrive following the bi-modal (day/night) process of paper §4.1
// and whose volume and duration follow the per-service ground truth of
// internal/services.
//
// The real counterpart — 282,000 production BSs observed for 45 days —
// is proprietary; this simulator is the documented substitution (see
// DESIGN.md): it reproduces the statistical structure the paper
// describes so that the downstream characterization and modeling
// pipeline can run end-to-end and be validated against known ground
// truth.
package netsim

import (
	"fmt"
	"math"
	"math/rand"
)

// RAT identifies the radio access technology of a base station.
type RAT int

// Radio access technologies of the 4G/5G NSA deployment (§3).
const (
	RAT4G RAT = iota
	RAT5G
)

// String implements fmt.Stringer.
func (r RAT) String() string {
	if r == RAT5G {
		return "5G"
	}
	return "4G"
}

// Region is the urbanization level of a base station's location (§4.4).
type Region int

// Urbanization levels.
const (
	Urban Region = iota
	SemiUrban
	Rural
)

// String implements fmt.Stringer.
func (r Region) String() string {
	switch r {
	case Urban:
		return "urban"
	case SemiUrban:
		return "semi-urban"
	default:
		return "rural"
	}
}

// NoCity marks base stations outside the tracked metropolitan areas.
const NoCity = -1

// BS is one simulated base station.
type BS struct {
	ID     int
	RAT    RAT
	Region Region
	// City is the metropolitan area index in [0, NumCities), or NoCity.
	City int
	// Decile is the BS load class in [0, 9]: the paper groups BSs into
	// deciles of total served traffic and observes the arrival process
	// shape is invariant across them (Fig. 3).
	Decile int
	// PeakRate is the mean daytime session arrival rate mu (sessions
	// per minute, §5.1: 1.21 for the first decile up to 71 for the
	// busiest).
	PeakRate float64
	// OffPeakScale is the Pareto scale of the nighttime arrival mode.
	OffPeakScale float64
}

// Topology holds the simulated BS population.
type Topology struct {
	BSs []BS
}

// TopologyConfig configures topology synthesis. Zero values take the
// documented defaults.
type TopologyConfig struct {
	NumBS     int     // number of base stations (default 100)
	NumCities int     // tracked metropolitan areas (default 5, as in §4.4)
	Frac5G    float64 // fraction of gNodeBs (default 0.3)
	// Region mix (defaults 0.4 urban / 0.35 semi-urban / 0.25 rural).
	FracUrban, FracSemiUrban float64
	Seed                     int64
}

func (c TopologyConfig) withDefaults() TopologyConfig {
	if c.NumBS <= 0 {
		c.NumBS = 100
	}
	if c.NumCities <= 0 {
		c.NumCities = 5
	}
	if c.Frac5G <= 0 {
		c.Frac5G = 0.3
	}
	if c.FracUrban <= 0 {
		c.FracUrban = 0.4
	}
	if c.FracSemiUrban <= 0 {
		c.FracSemiUrban = 0.35
	}
	return c
}

// Paper §5.1: the daytime Gaussian mean ranges from 1.21 sessions/min
// (first load decile) to 71 (last), growing exponentially across
// deciles; the off-peak Pareto keeps shape 1.765 with a scale growing
// at a similar exponential rate.
const (
	FirstDecilePeakRate = 1.21
	LastDecilePeakRate  = 71.0
	OffPeakParetoShape  = 1.765
	firstDecileOffScale = 0.08
	lastDecileOffScale  = 4.7
)

// DecilePeakRate returns the nominal daytime arrival rate mu for a load
// decile in [0, 9], interpolating exponentially between the paper's
// extremes.
func DecilePeakRate(decile int) float64 {
	f := float64(decile) / 9
	return FirstDecilePeakRate * math.Pow(LastDecilePeakRate/FirstDecilePeakRate, f)
}

// DecileOffPeakScale returns the nominal nighttime Pareto scale for a
// load decile in [0, 9].
func DecileOffPeakScale(decile int) float64 {
	f := float64(decile) / 9
	return firstDecileOffScale * math.Pow(lastDecileOffScale/firstDecileOffScale, f)
}

// NewTopology synthesizes a BS population: deciles are assigned evenly
// (10% of BSs each, mirroring the paper's decile categorization), RATs
// and regions by the configured fractions, and each BS's arrival-rate
// parameters jitter mildly around its decile nominal value.
func NewTopology(cfg TopologyConfig) (*Topology, error) {
	c := cfg.withDefaults()
	if c.NumBS < 10 {
		return nil, fmt.Errorf("netsim: need >= 10 BSs for decile classes, got %d", c.NumBS)
	}
	rng := rand.New(rand.NewSource(c.Seed))
	bss := make([]BS, c.NumBS)
	for i := range bss {
		decile := i * 10 / c.NumBS // even decile split
		// Mild intra-decile heterogeneity: BSs of one load class differ
		// by a few percent, keeping the per-class count deviation near
		// the paper's sigma ~ mu/10 regularity.
		jitter := 0.95 + 0.1*rng.Float64()
		region := Rural
		switch u := rng.Float64(); {
		case u < c.FracUrban:
			region = Urban
		case u < c.FracUrban+c.FracSemiUrban:
			region = SemiUrban
		}
		city := NoCity
		if region == Urban {
			city = rng.Intn(c.NumCities)
		}
		rat := RAT4G
		if rng.Float64() < c.Frac5G {
			rat = RAT5G
		}
		bss[i] = BS{
			ID:           i,
			RAT:          rat,
			Region:       region,
			City:         city,
			Decile:       decile,
			PeakRate:     DecilePeakRate(decile) * jitter,
			OffPeakScale: DecileOffPeakScale(decile) * jitter,
		}
	}
	// Shuffle so decile is independent of ID ordering downstream.
	rng.Shuffle(len(bss), func(i, j int) {
		bss[i], bss[j] = bss[j], bss[i]
		bss[i].ID, bss[j].ID = i, j
	})
	return &Topology{BSs: bss}, nil
}

// ByDecile returns the indices of BSs in the given load decile.
func (t *Topology) ByDecile(decile int) []int {
	var out []int
	for i, b := range t.BSs {
		if b.Decile == decile {
			out = append(out, i)
		}
	}
	return out
}

// ByRegion returns the indices of BSs in the given region.
func (t *Topology) ByRegion(r Region) []int {
	var out []int
	for i, b := range t.BSs {
		if b.Region == r {
			out = append(out, i)
		}
	}
	return out
}

// ByCity returns the indices of BSs in the given metropolitan area.
func (t *Topology) ByCity(city int) []int {
	var out []int
	for i, b := range t.BSs {
		if b.City == city {
			out = append(out, i)
		}
	}
	return out
}

// ByRAT returns the indices of BSs with the given radio technology.
func (t *Topology) ByRAT(r RAT) []int {
	var out []int
	for i, b := range t.BSs {
		if b.RAT == r {
			out = append(out, i)
		}
	}
	return out
}
