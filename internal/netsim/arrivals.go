package netsim

import (
	"math"
	"math/rand"

	"mobiletraffic/internal/mathx"
)

// MinutesPerDay is the number of one-minute aggregation slots per day,
// matching the operator's one-minute pre-aggregation (§3.2).
const MinutesPerDay = 24 * 60

// Day-phase boundaries for the bi-modal arrival process (§4.1): daytime
// plateau from 08:00 to 22:00, nighttime trough from 23:00 to 06:00,
// with rapid transitions in between ("transitions between these two
// phases are very rapid", §4.1).
const (
	dayStartMin   = 8 * 60
	dayEndMin     = 22 * 60
	transitionMin = 45.0 // logistic transition width, minutes
)

// DayWeight returns the smooth day-phase indicator for a minute of day
// in [0, 1): ~1 during daylight hours, ~0 overnight, with steep
// logistic transitions.
func DayWeight(minute int) float64 {
	m := float64(minute)
	rise := 1 / (1 + math.Exp(-(m-dayStartMin)/transitionMin*4))
	fall := 1 / (1 + math.Exp(-(dayEndMin-m)/transitionMin*4))
	return rise * fall
}

// ArrivalCount draws the number of new sessions established at the BS
// during the given minute of day. During daylight hours counts follow a
// Gaussian with mean PeakRate and deviation PeakRate/10 (the paper's
// sigma ~ mu/10 regularity); overnight they follow a Pareto with shape
// 1.765 and the BS's off-peak scale. The two regimes mix through the
// steep logistic phase weight, which makes intermediate rates rare and
// the per-minute count PDF bi-modal as in Fig. 3.
func ArrivalCount(bs *BS, minute int, rng *rand.Rand) int {
	return arrivalCount(bs, DayWeight(minute), rng)
}

// offPeakExp is the precomputed inverse-CDF Pareto exponent.
const offPeakExp = -1 / OffPeakParetoShape

// arrivalCount is ArrivalCount with the phase weight supplied by the
// caller, so the per-day generation loop can read it from the
// simulator's precomputed minute table instead of paying two math.Exp
// logistic evaluations per minute. The draw sequence is identical to
// ArrivalCount's.
func arrivalCount(bs *BS, w float64, rng *rand.Rand) int {
	var rate float64
	if rng.Float64() < w {
		rate = bs.PeakRate + bs.PeakRate/10*rng.NormFloat64()
	} else {
		// Inverse-CDF Pareto draw.
		rate = bs.OffPeakScale * math.Pow(1-rng.Float64(), offPeakExp)
		// The off-peak mode must stay below the daytime plateau: clamp
		// the heavy tail at a fraction of the peak rate.
		if clamp := bs.PeakRate * 0.5; rate > clamp {
			rate = clamp
		}
	}
	if rate <= 0 {
		return 0
	}
	n := int(math.Round(rate))
	if n < 0 {
		return 0
	}
	return n
}

// arrivalCountFast is arrivalCount on the sampler-v2 PCG stream: same
// bi-modal mixture, same clamps, different (but identically
// distributed) randomness.
func arrivalCountFast(bs *BS, w float64, rng *mathx.PCG) int {
	var rate float64
	if rng.Float64() < w {
		rate = bs.PeakRate + bs.PeakRate/10*rng.NormFloat64()
	} else {
		rate = bs.OffPeakScale * math.Pow(1-rng.Float64(), offPeakExp)
		if clamp := bs.PeakRate * 0.5; rate > clamp {
			rate = clamp
		}
	}
	if rate <= 0 {
		return 0
	}
	n := int(math.Round(rate))
	if n < 0 {
		return 0
	}
	return n
}

// IsPeakMinute reports whether the minute falls safely inside the
// daytime plateau (used when fitting day and night modes separately in
// §5.1). The window starts two transition widths after the morning rise
// and ends two before the evening fall, so that no night-mode draws
// leak into the daytime Gaussian fit and sigma stays at the paper's
// ~mu/10 regularity.
func IsPeakMinute(minute int) bool {
	return minute >= dayStartMin+2*60 && minute < dayEndMin-2*60
}

// IsDaytime reports whether the minute is predominantly in the day
// phase (DayWeight >= 0.5): the right phase selector when generating a
// whole day of traffic minute by minute.
func IsDaytime(minute int) bool { return DayWeight(minute) >= 0.5 }

// IsOffPeakMinute reports whether the minute falls in the overnight
// trough, excluding the transition bands.
func IsOffPeakMinute(minute int) bool {
	return minute < dayStartMin-60 || minute >= dayEndMin+60
}
