package netsim

import (
	"fmt"
	"math"
	"sort"

	"mobiletraffic/internal/mathx"
)

// DayColumns is one (BS, day) of synthesized sessions in
// structure-of-arrays layout — the measurement-synthesis counterpart of
// the generation plane's core.DayBlock. All per-session columns have
// length N(); they come in two index domains:
//
//   - Session order (index i): Minute, Svc, Start, Truncated — ordered
//     minute-major (Minute is nondecreasing), exactly the order
//     GenerateDay emits and the per-(BS, day) fault streams consume.
//
//   - Value columns (Volume, LnV, Duration, LnD): when the by-service
//     grouping (SvcSeg/ByService/Slot) is populated — as
//     SampleDayColumns always leaves it — these are stored in grouped
//     order, indexed by slot g = Slot[i]: sessions of one service are
//     contiguous, so both the per-service batch samplers that write
//     them and the per-cell probe folds that read them run over dense
//     segments. When the grouping is absent (SvcSeg empty, e.g. the
//     output of faults.DayStream.ApplyColumns), the value columns are
//     in plain session order.
//
// A DayColumns is meant to be owned by one collection worker and
// reused across its whole campaign share: SampleDayColumns grows the
// columns geometrically and then runs allocation-free (pre-size with
// Resize(sim.MaxDaySessions()) to skip even the first growth).
//
// LnV and LnD carry the natural logs the log-domain samplers produce as
// byproducts (updated on mobility truncation), for downstream consumers
// that work in the log domain. The probe ingest deliberately does NOT
// bin from them: probe.ObserveColumns re-derives log10 from the linear
// Volume/Duration columns with the exact math of the scalar Observe, so
// columnar and scalar binning can never diverge by a ulp at a bin edge.
type DayColumns struct {
	// Counts[m] is the number of sessions established in minute m,
	// after weekend scaling (len MinutesPerDay once sampled).
	Counts []int32
	// Session-order columns.
	Minute    []int32   // minute of day of establishment
	Svc       []int32   // catalog index of the session's service
	Start     []float64 // second of day of establishment (len 0 when SkipStart)
	Truncated []bool    // cut short by UE mobility
	// Value columns — grouped order under a valid grouping, session
	// order otherwise (see the type comment).
	Duration []float64 // served duration in seconds
	Volume   []float64 // served traffic in bytes
	LnV      []float64 // natural log of Volume
	LnD      []float64 // natural log of Duration

	// SvcSeg, ByService and Slot describe the stable by-service
	// grouping the sampler computes with a counting sort: sessions of
	// service s occupy grouped slots [SvcSeg[s], SvcSeg[s+1]),
	// ByService[g] is the session index held by grouped slot g —
	// ascending within each segment, so per-service iteration visits
	// sessions in exactly the minute-major column order — and
	// Slot[i] = g is the inverse map. The grouping is only meaningful
	// when len(SvcSeg) == numServices+1 and len(ByService) == N() and
	// all three were produced alongside Svc; transformations that
	// re-map services (faults.ApplyColumns) truncate SvcSeg to mark
	// the grouping invalid and emit value columns in session order.
	SvcSeg    []int32
	ByService []int32
	Slot      []int32
	// MinuteG mirrors Minute in grouped (slot) order —
	// MinuteG[Slot[i]] == Minute[i] — so grouped consumers stream
	// minutes sequentially instead of gathering through ByService. It
	// is only meaningful under a valid grouping (len == N() alongside
	// SvcSeg/ByService/Slot); ungrouped producers leave it stale.
	MinuteG []int32

	// SkipStart, when set by the owner before sampling, elides the
	// Start column entirely: its draw rectangle is the last of the
	// per-(BS, day) stream, so skipping it leaves every other column's
	// draws untouched while saving the rectangle and its backing array.
	// Collection paths that never read establishment seconds (the
	// probe ingest bins by minute) run with SkipStart set.
	SkipStart bool

	// Draw scratch of the columnar sampler: one uniform and one
	// normal/exponential rectangle, sized alongside the session
	// columns, plus the counting-sort cursor (numServices entries).
	u, z   []float64
	segCur []int32
}

// N returns the number of sessions in the columns.
func (c *DayColumns) N() int { return len(c.Minute) }

// Resize sets every per-session column to length n, growing the
// backing arrays when needed and preserving existing contents. Growth
// allocates exactly the requested size the first time and doubles
// thereafter, so a scratch pre-sized to the campaign's largest day
// (MaxDaySessions) never re-allocates. Newly exposed elements are
// unspecified.
func (c *DayColumns) Resize(n int) {
	if cap(c.Minute) < n {
		m := 2 * cap(c.Minute)
		if m < n {
			m = n
		}
		grow32 := func(s []int32) []int32 {
			ns := make([]int32, m)
			copy(ns, s)
			return ns
		}
		growF := func(s []float64) []float64 {
			ns := make([]float64, m)
			copy(ns, s)
			return ns
		}
		c.Minute = grow32(c.Minute)
		c.Svc = grow32(c.Svc)
		c.ByService = grow32(c.ByService)
		c.Slot = grow32(c.Slot)
		c.MinuteG = grow32(c.MinuteG)
		c.Duration = growF(c.Duration)
		c.Volume = growF(c.Volume)
		c.LnV = growF(c.LnV)
		c.LnD = growF(c.LnD)
		c.u = growF(c.u)
		c.z = growF(c.z)
		nt := make([]bool, m)
		copy(nt, c.Truncated)
		c.Truncated = nt
	}
	c.Minute = c.Minute[:n]
	c.Svc = c.Svc[:n]
	c.ByService = c.ByService[:n]
	c.Slot = c.Slot[:n]
	c.MinuteG = c.MinuteG[:n]
	c.Duration = c.Duration[:n]
	c.Volume = c.Volume[:n]
	c.LnV = c.LnV[:n]
	c.LnD = c.LnD[:n]
	c.Truncated = c.Truncated[:n]
	c.u = c.u[:n]
	c.z = c.z[:n]
	// Start has its own capacity check: a scratch can flip SkipStart
	// between uses, so its backing array may lag the others.
	if c.SkipStart {
		c.Start = c.Start[:0]
	} else {
		if cap(c.Start) < n {
			ns := make([]float64, cap(c.Minute))
			copy(ns, c.Start)
			c.Start = ns
		}
		c.Start = c.Start[:n]
	}
}

// CutoffIndex returns the index of the first session established at or
// after the given minute — the suffix boundary a truncated-day fault
// drops. The columns must be minute-major (as SampleDayColumns emits).
func (c *DayColumns) CutoffIndex(minute int) int {
	m := int32(minute)
	return sort.Search(len(c.Minute), func(i int) bool { return c.Minute[i] >= m })
}

// Grouped reports whether the by-service grouping is populated, i.e.
// whether the value columns are in grouped order (see the type
// comment) for a catalog of numServices services.
func (c *DayColumns) Grouped(numServices int) bool {
	return len(c.SvcSeg) == numServices+1 && len(c.ByService) == c.N() && len(c.Slot) == c.N()
}

// MaxDaySessions returns a deterministic upper bound on the session
// count of any (BS, day) cell of this simulator: the largest per-BS
// expected day total (peak-mode mean plus the off-peak mode's clamped
// mean, through the diurnal phase table and the worst weekend scale)
// with a 5% + 1024 safety margin. The day total concentrates tightly
// around its mean (it sums 1440 independent minutes), so the margin
// covers the stochastic spread by a wide multiple of its standard
// deviation. Collection workers pre-size their DayColumns scratch with
// it so the whole campaign runs without a single column re-allocation.
func (s *Simulator) MaxDaySessions() int { return s.maxDay }

func computeMaxDaySessions(topo *Topology, cfg SimConfig, phase []float64) int {
	wk := 1.0
	if cfg.Weekend > 1 {
		wk = cfg.Weekend
	}
	// Mean of the off-peak Pareto draw OffPeakScale*(1-U)^offPeakExp:
	// E[(1-U)^a] = 1/(1+a) for a > -1.
	offMean := 1 / (1 + offPeakExp)
	maxMean := 0.0
	for i := range topo.BSs {
		bs := &topo.BSs[i]
		off := bs.OffPeakScale * offMean
		if clamp := bs.PeakRate * 0.5; off > clamp {
			off = clamp
		}
		mean := 0.0
		for _, w := range phase {
			mean += w*bs.PeakRate + (1-w)*off
		}
		if mean > maxMean {
			maxMean = mean
		}
	}
	return int(maxMean*wk*1.05) + 1024
}

// SampleDayColumns synthesizes all sessions established at the BS (by
// topology index) during the given day into cols, replacing its
// contents. It is the columnar form of the sampler-v2 engine — the
// per-(BS, day) stream is deterministic in the simulator seed and is
// the same stream GenerateDay materializes — and is only available on
// sampler v2 (the v1 stream is pinned scalar draw by scalar draw by
// TestSamplerV1GoldenStream and cannot be batched without changing it).
// cols is caller scratch, reusable across calls and across (BS, day)
// cells; distinct cols values may be used from concurrent goroutines.
func (s *Simulator) SampleDayColumns(bsIdx, day int, cols *DayColumns) error {
	if cols == nil {
		return fmt.Errorf("netsim: nil DayColumns")
	}
	if bsIdx < 0 || bsIdx >= len(s.Topo.BSs) {
		return fmt.Errorf("netsim: BS index %d out of range [0, %d)", bsIdx, len(s.Topo.BSs))
	}
	if day < 0 {
		return fmt.Errorf("netsim: negative day %d", day)
	}
	if s.Config.Sampler != SamplerV2 {
		return fmt.Errorf("netsim: columnar sampling requires sampler %s (configured %s)", SamplerV2, s.Config.Sampler)
	}
	s.sampleDayColumns(bsIdx, day, cols)
	return nil
}

// sampleDayColumns is the sampler-v2 columnar engine. The day is drawn
// as a fixed sequence of rectangles: (1) the scalar per-minute arrival
// counts, (2) one uniform rectangle mapped through the BS's alias table
// to service picks, (3) per service in catalog order, the volume
// component+deviate rectangles then the duration deviate rectangle —
// sessions are grouped by service with a stable counting sort and each
// profile's samplers write one contiguous grouped segment of the value
// columns, which is where they stay (see the DayColumns layout) — (4)
// the mobility gate rectangle followed by one Exp draw per mover, and
// (5) last, the start-second uniform rectangle, elided entirely under
// SkipStart, which is why it is ordered after everything else.
// Grouping is stable, so within any (service, BS, day) cell the
// session order — and therefore every downstream floating-point
// accumulation — is identical to the minute-major emission order.
func (s *Simulator) sampleDayColumns(bsIdx, day int, c *DayColumns) {
	bs := &s.Topo.BSs[bsIdx]
	var rng mathx.PCG
	rng.SeedStream(uint64(s.Config.Seed), uint64(bsIdx), uint64(day))
	weekendScale := 1.0
	if IsWeekend(day) {
		weekendScale = s.Config.Weekend
	}
	scaleWeekend := weekendScale != 1

	if c.Counts == nil {
		c.Counts = make([]int32, MinutesPerDay)
	}
	total := 0
	for minute := 0; minute < MinutesPerDay; minute++ {
		n := arrivalCountFast(bs, s.phase[minute], &rng)
		if n != 0 && scaleWeekend {
			n = int(math.Round(float64(n) * weekendScale))
		}
		c.Counts[minute] = int32(n)
		total += n
	}
	c.Resize(total)
	if total == 0 {
		c.SvcSeg = c.SvcSeg[:0]
		return
	}
	idx := 0
	for m := 0; m < MinutesPerDay; m++ {
		for k := int32(0); k < c.Counts[m]; k++ {
			c.Minute[idx] = int32(m)
			idx++
		}
	}

	// Service picks: one uniform rectangle through the alias table.
	rng.FillFloat64(c.u)
	s.bsAlias[bsIdx].PickBatch(c.u, c.Svc)

	// Stable counting sort by service: SvcSeg[s] is the grouped-segment
	// start of service s, Slot[i] the grouped slot of session i,
	// ByService its inverse (ascending within each segment).
	nSvc := len(s.Services)
	if cap(c.SvcSeg) < nSvc+1 {
		c.SvcSeg = make([]int32, nSvc+1)
		c.segCur = make([]int32, nSvc)
	}
	off := c.SvcSeg[:nSvc+1]
	c.SvcSeg = off
	for i := range off {
		off[i] = 0
	}
	for _, sv := range c.Svc {
		off[sv+1]++
	}
	for i := 0; i < nSvc; i++ {
		off[i+1] += off[i]
	}
	cur := c.segCur[:nSvc]
	copy(cur, off[:nSvc])
	for i, sv := range c.Svc {
		g := cur[sv]
		cur[sv]++
		c.Slot[i] = g
		c.ByService[g] = int32(i)
		c.MinuteG[g] = c.Minute[i]
	}

	// Per-service batch sampling: each profile fills its contiguous
	// grouped segment of the value columns, in catalog order.
	for sv := 0; sv < nSvc; sv++ {
		lo, hi := int(off[sv]), int(off[sv+1])
		if lo == hi {
			continue
		}
		prof := &s.Services[sv]
		k := hi - lo
		prof.SampleVolumeLnBatch(&rng, c.u[:k], c.z[:k], c.Volume[lo:hi], c.LnV[lo:hi])
		prof.SampleDurationLnBatch(&rng, c.LnV[lo:hi], c.z[:k], c.Duration[lo:hi], c.LnD[lo:hi])
	}

	// Mobility: one gate rectangle, then exactly one dwell Exp draw per
	// mover (drawn into the z scratch, free after the service stage),
	// consumed in session order; each mover's value columns are reached
	// through its grouped slot.
	for i := range c.Truncated {
		c.Truncated[i] = false
	}
	var split int64
	if moveProb := s.Config.MoveProb; moveProb > 0 {
		meanDwell := s.Config.MeanDwell
		rng.FillFloat64(c.u)
		movers := 0
		for _, u := range c.u {
			if u < moveProb {
				movers++
			}
		}
		rng.FillExp(c.z[:movers])
		j := 0
		for i := 0; i < total; i++ {
			if c.u[i] >= moveProb {
				continue
			}
			dwell := c.z[j] * meanDwell
			j++
			if dwell < 1 {
				dwell = 1
			}
			g := c.Slot[i]
			if dwell < c.Duration[g] {
				// The BS only sees the dwell-time share of the session:
				// volume pro-rated on served time.
				c.Volume[g] *= dwell / c.Duration[g]
				c.Duration[g] = dwell
				c.LnV[g] = math.Log(c.Volume[g])
				c.LnD[g] = math.Log(dwell)
				c.Truncated[i] = true
				split++
			}
		}
	}

	// Establishment second within the minute — the final rectangle of
	// the stream, so eliding it under SkipStart perturbs nothing.
	if !c.SkipStart {
		rng.FillFloat64(c.u)
		for i := 0; i < total; i++ {
			c.Start[i] = float64(c.Minute[i])*60 + c.u[i]*60
		}
	}
	s.obsSessions.Add(int64(total))
	s.obsSplits.Add(split)
}
