package netsim

import (
	"testing"

	"mobiletraffic/internal/services"
)

// The mobility layer is exercised end-to-end by internal/probe's
// pipeline tests; these are package-local checks on its basic shape.

func TestSimulateMobilityDefaults(t *testing.T) {
	topo, err := NewTopology(TopologyConfig{NumBS: 10, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSimulator(topo, SimConfig{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	trace, err := sim.SimulateMobility(MobilityConfig{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(trace.Events) < 100 {
		t.Errorf("events = %d (100 UEs must at least attach)", len(trace.Events))
	}
	if len(trace.Flows) == 0 {
		t.Error("no flows generated")
	}
	// Handover targets stay within the topology and differ from the
	// previous BS.
	last := map[uint64]int{}
	for _, ev := range trace.Events {
		if ev.Type != UEDetach && (ev.BS < 0 || ev.BS >= 10) {
			t.Fatalf("event BS out of range: %+v", ev)
		}
		if ev.Type == UEHandover && last[ev.UE] == ev.BS {
			t.Fatalf("handover to the same BS: %+v", ev)
		}
		last[ev.UE] = ev.BS
	}
}

func TestSimulateMobilityDeterministic(t *testing.T) {
	topo, err := NewTopology(TopologyConfig{NumBS: 10, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSimulator(topo, SimConfig{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	cfg := MobilityConfig{UEs: 20, Horizon: 600, Seed: 9}
	a, err := sim.SimulateMobility(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sim.SimulateMobility(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Events) != len(b.Events) || len(a.Flows) != len(b.Flows) {
		t.Fatalf("non-deterministic: %d/%d events, %d/%d flows",
			len(a.Events), len(b.Events), len(a.Flows), len(b.Flows))
	}
	for i := range a.Flows {
		if a.Flows[i] != b.Flows[i] {
			t.Fatalf("flow %d differs", i)
		}
	}
}

func TestGenerateAllCoversAllBSsAndDays(t *testing.T) {
	topo, err := NewTopology(TopologyConfig{NumBS: 10, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSimulator(topo, SimConfig{Days: 2, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	type cell struct{ bs, day int }
	seen := map[cell]bool{}
	if err := sim.GenerateAll(func(s Session) {
		seen[cell{s.BS, s.Day}] = true
	}); err != nil {
		t.Fatal(err)
	}
	for bs := 0; bs < 10; bs++ {
		for day := 0; day < 2; day++ {
			if !seen[cell{bs, day}] {
				t.Errorf("no sessions for BS %d day %d", bs, day)
			}
		}
	}
}

func TestNewSimulatorWithCatalogValidation(t *testing.T) {
	topo, err := NewTopology(TopologyConfig{NumBS: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSimulatorWithCatalog(topo, SimConfig{}, nil); err == nil {
		t.Error("empty catalog must error")
	}
	bad := []services.Profile{{Name: "x", SessionSharePct: -1}}
	if _, err := NewSimulatorWithCatalog(topo, SimConfig{}, bad); err == nil {
		t.Error("negative share must error")
	}
	zero := []services.Profile{{Name: "x", SessionSharePct: 0}}
	if _, err := NewSimulatorWithCatalog(topo, SimConfig{}, zero); err == nil {
		t.Error("zero total share must error")
	}
	// A valid custom catalog simulates only its own services.
	custom := []services.Profile{
		{Name: "only", SessionSharePct: 1, MainMu: 5, MainSigma: 0.5,
			Beta: 0.5, TypDuration: 60, DurationNoise: 0.2},
	}
	sim, err := NewSimulatorWithCatalog(topo, SimConfig{Seed: 3}, custom)
	if err != nil {
		t.Fatal(err)
	}
	err = sim.GenerateDay(0, 0, func(s Session) {
		if s.Service != 0 {
			t.Fatalf("unexpected service %d", s.Service)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
