package netsim

import (
	"math"
	"math/rand"
	"testing"

	"mobiletraffic/internal/mathx"
)

func TestNewTopologyDefaults(t *testing.T) {
	topo, err := NewTopology(TopologyConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(topo.BSs) != 100 {
		t.Fatalf("default BS count = %d, want 100", len(topo.BSs))
	}
	// Even decile split: 10 per decile.
	for d := 0; d < 10; d++ {
		if got := len(topo.ByDecile(d)); got != 10 {
			t.Errorf("decile %d has %d BSs, want 10", d, got)
		}
	}
	// IDs match slice positions after shuffling.
	for i, b := range topo.BSs {
		if b.ID != i {
			t.Fatalf("BS at %d has ID %d", i, b.ID)
		}
	}
}

func TestNewTopologyValidation(t *testing.T) {
	if _, err := NewTopology(TopologyConfig{NumBS: 5}); err == nil {
		t.Error("fewer than 10 BSs must error")
	}
}

func TestTopologyGroupsCoverAll(t *testing.T) {
	topo, err := NewTopology(TopologyConfig{NumBS: 200, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(topo.ByRegion(Urban)) + len(topo.ByRegion(SemiUrban)) + len(topo.ByRegion(Rural)); got != 200 {
		t.Errorf("region partition covers %d", got)
	}
	if got := len(topo.ByRAT(RAT4G)) + len(topo.ByRAT(RAT5G)); got != 200 {
		t.Errorf("RAT partition covers %d", got)
	}
	// Roughly 30% 5G.
	frac := float64(len(topo.ByRAT(RAT5G))) / 200
	if frac < 0.15 || frac > 0.45 {
		t.Errorf("5G fraction = %v", frac)
	}
	// All urban BSs belong to one of the 5 cities; others to none.
	for _, i := range topo.ByRegion(Urban) {
		if c := topo.BSs[i].City; c < 0 || c >= 5 {
			t.Errorf("urban BS %d city = %d", i, c)
		}
	}
	for _, i := range topo.ByRegion(Rural) {
		if topo.BSs[i].City != NoCity {
			t.Errorf("rural BS %d has city %d", i, topo.BSs[i].City)
		}
	}
	// City lookups partition the urban set.
	var cityTotal int
	for c := 0; c < 5; c++ {
		cityTotal += len(topo.ByCity(c))
	}
	if cityTotal != len(topo.ByRegion(Urban)) {
		t.Errorf("city partition = %d, urban = %d", cityTotal, len(topo.ByRegion(Urban)))
	}
}

func TestDecileRatesMatchPaperEndpoints(t *testing.T) {
	if got := DecilePeakRate(0); got != FirstDecilePeakRate {
		t.Errorf("decile 0 rate = %v", got)
	}
	if got := DecilePeakRate(9); math.Abs(got-LastDecilePeakRate) > 1e-9 {
		t.Errorf("decile 9 rate = %v", got)
	}
	// Exponential growth: constant ratio between consecutive deciles.
	r := DecilePeakRate(1) / DecilePeakRate(0)
	for d := 2; d < 10; d++ {
		got := DecilePeakRate(d) / DecilePeakRate(d-1)
		if math.Abs(got-r) > 1e-9 {
			t.Errorf("ratio at decile %d = %v, want %v", d, got, r)
		}
	}
	if DecileOffPeakScale(9) <= DecileOffPeakScale(0) {
		t.Error("off-peak scale must grow across deciles")
	}
}

func TestDayWeightShape(t *testing.T) {
	if w := DayWeight(3 * 60); w > 0.05 {
		t.Errorf("3am weight = %v, want ~0", w)
	}
	if w := DayWeight(14 * 60); w < 0.95 {
		t.Errorf("2pm weight = %v, want ~1", w)
	}
	// Monotone rise through the morning transition.
	prev := DayWeight(5 * 60)
	for m := 5*60 + 10; m <= 10*60; m += 10 {
		w := DayWeight(m)
		if w < prev-1e-9 {
			t.Errorf("day weight not rising at %d: %v < %v", m, w, prev)
		}
		prev = w
	}
}

func TestArrivalCountBimodal(t *testing.T) {
	bs := &BS{PeakRate: 40, OffPeakScale: 2}
	rng := rand.New(rand.NewSource(3))
	var day, night []float64
	for trial := 0; trial < 4000; trial++ {
		day = append(day, float64(ArrivalCount(bs, 14*60, rng)))
		night = append(night, float64(ArrivalCount(bs, 3*60, rng)))
	}
	dm, nm := mathx.Mean(day), mathx.Mean(night)
	if math.Abs(dm-40) > 2 {
		t.Errorf("daytime mean = %v, want ~40", dm)
	}
	if nm >= dm/3 {
		t.Errorf("night mean %v not clearly below day mean %v", nm, dm)
	}
	// Daytime deviation ~ mu/10.
	if ds := mathx.Std(day); ds < 2.5 || ds > 6.5 {
		t.Errorf("daytime std = %v, want ~4", ds)
	}
	// Counts never negative.
	min, _ := mathx.MinMax(night)
	if min < 0 {
		t.Errorf("negative count %v", min)
	}
}

func TestPeakMinuteHelpers(t *testing.T) {
	if !IsPeakMinute(12*60) || IsPeakMinute(2*60) {
		t.Error("IsPeakMinute misclassifies")
	}
	if !IsOffPeakMinute(3*60) || IsOffPeakMinute(12*60) {
		t.Error("IsOffPeakMinute misclassifies")
	}
	// Transition band excluded from both.
	if IsPeakMinute(7*60+30) || IsOffPeakMinute(7*60+30) {
		t.Error("transition minute classified as peak or off-peak")
	}
}

func newTestSim(t *testing.T, cfg SimConfig) *Simulator {
	t.Helper()
	topo, err := NewTopology(TopologyConfig{NumBS: 20, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSimulator(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sim
}

func TestGenerateDayDeterministic(t *testing.T) {
	sim := newTestSim(t, SimConfig{Seed: 42})
	collect := func() []Session {
		var out []Session
		if err := sim.GenerateDay(3, 1, func(s Session) { out = append(out, s) }); err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := collect(), collect()
	if len(a) == 0 {
		t.Fatal("no sessions generated")
	}
	if len(a) != len(b) {
		t.Fatalf("non-deterministic session count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("session %d differs between runs", i)
		}
	}
}

func TestGenerateDayValidation(t *testing.T) {
	sim := newTestSim(t, SimConfig{Seed: 1})
	if err := sim.GenerateDay(-1, 0, func(Session) {}); err == nil {
		t.Error("negative BS index must error")
	}
	if err := sim.GenerateDay(999, 0, func(Session) {}); err == nil {
		t.Error("out-of-range BS index must error")
	}
	if err := sim.GenerateDay(0, -1, func(Session) {}); err == nil {
		t.Error("negative day must error")
	}
}

func TestSessionFieldsSane(t *testing.T) {
	sim := newTestSim(t, SimConfig{Seed: 5})
	var n, truncated int
	err := sim.GenerateDay(0, 0, func(s Session) {
		n++
		if s.Volume <= 0 || s.Duration < 1 {
			t.Fatalf("invalid session %+v", s)
		}
		if s.Minute < 0 || s.Minute >= MinutesPerDay {
			t.Fatalf("minute out of range: %+v", s)
		}
		if s.Start < float64(s.Minute)*60 || s.Start >= float64(s.Minute+1)*60 {
			t.Fatalf("start not within minute: %+v", s)
		}
		if s.Service < 0 || s.Service >= len(sim.Services) {
			t.Fatalf("service out of range: %+v", s)
		}
		if s.Truncated {
			truncated++
		}
		if tp := s.Throughput(); tp <= 0 {
			t.Fatalf("throughput %v", tp)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no sessions")
	}
	// With MoveProb 0.25 a visible share of sessions is transient.
	frac := float64(truncated) / float64(n)
	if frac < 0.02 || frac > 0.35 {
		t.Errorf("truncated fraction = %v", frac)
	}
}

func TestMoveProbZeroDisablesTruncation(t *testing.T) {
	topo, err := NewTopology(TopologyConfig{NumBS: 10, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSimulator(topo, SimConfig{Seed: 2, MoveProb: -1})
	if err != nil {
		t.Fatal(err)
	}
	// MoveProb <= 0 falls back to the default, so explicitly test with
	// a tiny positive epsilon standing in for "no mobility".
	sim.Config.MoveProb = 0
	err = sim.GenerateDay(0, 0, func(s Session) {
		if s.Truncated {
			t.Fatal("truncated session with MoveProb = 0")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestServiceSharesRecovered(t *testing.T) {
	sim := newTestSim(t, SimConfig{Seed: 11})
	counts := make([]float64, len(sim.Services))
	var total float64
	for day := 0; day < 2; day++ {
		for b := 0; b < len(sim.Topo.BSs); b++ {
			err := sim.GenerateDay(b, day, func(s Session) {
				counts[s.Service]++
				total++
			})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	// Facebook (heaviest) share must land near Table 1's 36.52% of the
	// normalized catalog.
	fbIdx, err := sim.ServiceIndex("Facebook")
	if err != nil {
		t.Fatal(err)
	}
	_, probs := sharesForTest(sim)
	got := counts[fbIdx] / total
	if math.Abs(got-probs[fbIdx]) > 0.01 {
		t.Errorf("Facebook share = %v, want ~%v", got, probs[fbIdx])
	}
}

// sharesForTest exposes the simulator's base probabilities.
func sharesForTest(s *Simulator) ([]string, []float64) {
	names := make([]string, len(s.Services))
	for i, p := range s.Services {
		names[i] = p.Name
	}
	return names, s.baseProbs
}

func TestIsWeekend(t *testing.T) {
	// Day 0 is Monday.
	for d := 0; d < 5; d++ {
		if IsWeekend(d) {
			t.Errorf("day %d flagged weekend", d)
		}
	}
	if !IsWeekend(5) || !IsWeekend(6) || !IsWeekend(12) {
		t.Error("weekend days misclassified")
	}
}

func TestNewSimulatorValidation(t *testing.T) {
	if _, err := NewSimulator(nil, SimConfig{}); err == nil {
		t.Error("nil topology must error")
	}
	if _, err := NewSimulator(&Topology{}, SimConfig{}); err == nil {
		t.Error("empty topology must error")
	}
}

func TestRATStringRegionString(t *testing.T) {
	if RAT4G.String() != "4G" || RAT5G.String() != "5G" {
		t.Error("RAT strings")
	}
	if Urban.String() != "urban" || SemiUrban.String() != "semi-urban" || Rural.String() != "rural" {
		t.Error("Region strings")
	}
}

func TestWeekendScaling(t *testing.T) {
	topo, err := NewTopology(TopologyConfig{NumBS: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSimulator(topo, SimConfig{Seed: 3, Weekend: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	count := func(day int) int {
		n := 0
		for bs := 0; bs < 10; bs++ {
			if err := sim.GenerateDay(bs, day, func(Session) { n++ }); err != nil {
				t.Fatal(err)
			}
		}
		return n
	}
	weekday := count(2)  // Wednesday
	saturday := count(5) // Saturday
	ratio := float64(saturday) / float64(weekday)
	if ratio < 0.4 || ratio > 0.6 {
		t.Errorf("weekend/weekday session ratio = %v, want ~0.5", ratio)
	}
	// Default (Weekend = 1) keeps day types indistinguishable, per the
	// paper's §4.4 finding.
	simDefault, err := NewSimulator(topo, SimConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	nWd, nWe := 0, 0
	for bs := 0; bs < 10; bs++ {
		if err := simDefault.GenerateDay(bs, 2, func(Session) { nWd++ }); err != nil {
			t.Fatal(err)
		}
		if err := simDefault.GenerateDay(bs, 5, func(Session) { nWe++ }); err != nil {
			t.Fatal(err)
		}
	}
	if r := float64(nWe) / float64(nWd); r < 0.9 || r > 1.1 {
		t.Errorf("default weekend ratio = %v, want ~1", r)
	}
}

func TestArrivalCountNeverNegativeAtTinyRates(t *testing.T) {
	bs := &BS{PeakRate: 0.3, OffPeakScale: 0.05}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 20000; i++ {
		if n := ArrivalCount(bs, i%MinutesPerDay, rng); n < 0 {
			t.Fatalf("negative count %d", n)
		}
	}
}
