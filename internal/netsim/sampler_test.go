package netsim

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
	"testing"

	"mobiletraffic/internal/dist"
)

// hashSessionStream runs the full campaign (days outermost, BSs inner,
// matching GenerateAll's order) and returns the sha256 of every session
// field at full float64 precision plus the session count. Any change to
// a single random draw, clamp, or field changes the digest.
func hashSessionStream(t *testing.T, numBS int, topoSeed int64, cfg SimConfig, days int) (string, int) {
	t.Helper()
	topo, err := NewTopology(TopologyConfig{NumBS: numBS, Seed: topoSeed})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSimulator(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	h := sha256.New()
	var buf [8]byte
	n := 0
	w64 := func(v uint64) { binary.LittleEndian.PutUint64(buf[:], v); h.Write(buf[:]) }
	for day := 0; day < days; day++ {
		for bs := 0; bs < numBS; bs++ {
			err := sim.GenerateDay(bs, day, func(s Session) {
				n++
				w64(uint64(s.BS))
				w64(uint64(s.Service))
				w64(uint64(s.Day))
				w64(uint64(s.Minute))
				w64(math.Float64bits(s.Start))
				w64(math.Float64bits(s.Duration))
				w64(math.Float64bits(s.Volume))
				if s.Truncated {
					w64(1)
				} else {
					w64(0)
				}
			})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	return fmt.Sprintf("%x", h.Sum(nil)), n
}

// TestSamplerV1GoldenStream pins the v1 session stream byte for byte:
// the digests below were captured from the simulator before sampler
// versioning existed, so v1 remaining equal to them proves the refactor
// (phase-weight table, batching, counter plumbing) left every random
// draw of the historical stream untouched. If this test fails, v1 no
// longer reproduces historical runs — that is a breaking change, not a
// test to re-pin casually.
func TestSamplerV1GoldenStream(t *testing.T) {
	cases := []struct {
		name     string
		numBS    int
		topoSeed int64
		cfg      SimConfig
		days     int
		hash     string
		sessions int
	}{
		{
			name:     "default-config",
			numBS:    20,
			topoSeed: 7,
			cfg:      SimConfig{Seed: 42, Sampler: SamplerV1},
			days:     2,
			hash:     "2551e10213f0b38b5038ddb4158845624d5130a9c998656dfb2b06f1b4e8c64b",
			sessions: 710756,
		},
		{
			name:     "weekend-mobility-week",
			numBS:    12,
			topoSeed: 3,
			cfg:      SimConfig{Seed: 9, Weekend: 0.5, MoveProb: 0.4, Days: 7, Sampler: SamplerV1},
			days:     7,
			hash:     "2be92c7fe9d1fad78392ec1e355fef73f1a968928586fe7dad2dc4169824112e",
			sessions: 1161144,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			hash, n := hashSessionStream(t, tc.numBS, tc.topoSeed, tc.cfg, tc.days)
			if n != tc.sessions {
				t.Errorf("v1 stream generated %d sessions, golden capture had %d", n, tc.sessions)
			}
			if hash != tc.hash {
				t.Errorf("v1 stream digest %s does not match golden %s", hash, tc.hash)
			}
		})
	}
}

// TestSamplerV2Deterministic checks that the v2 stream is a pure
// function of the seed: two simulators built from the same config
// produce identical digests, and GenerateDayBatch yields the same
// sessions as GenerateDay.
func TestSamplerV2Deterministic(t *testing.T) {
	cfg := SimConfig{Seed: 42, Sampler: SamplerV2}
	h1, n1 := hashSessionStream(t, 20, 7, cfg, 2)
	h2, n2 := hashSessionStream(t, 20, 7, cfg, 2)
	if h1 != h2 || n1 != n2 {
		t.Fatalf("v2 stream not deterministic: %s/%d vs %s/%d", h1, n1, h2, n2)
	}
	sim := newTestSim(t, cfg)
	var direct []Session
	if err := sim.GenerateDay(3, 1, func(s Session) { direct = append(direct, s) }); err != nil {
		t.Fatal(err)
	}
	var batched []Session
	err := sim.GenerateDayBatch(3, 1, make([]Session, 0, 64), func(b []Session) error {
		batched = append(batched, b...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(direct) != len(batched) {
		t.Fatalf("GenerateDay yielded %d sessions, GenerateDayBatch %d", len(direct), len(batched))
	}
	for i := range direct {
		if direct[i] != batched[i] {
			t.Fatalf("session %d differs between GenerateDay and GenerateDayBatch:\n%+v\n%+v", i, direct[i], batched[i])
		}
	}
}

// collectMarginals generates a campaign and extracts the marginals the
// equivalence test compares: per-service session counts, per-service
// volume and duration samples for the highest-share services, the
// per-minute arrival-count histogram, and the truncation count.
type marginals struct {
	total        int
	svcCounts    []float64
	volumes      map[int][]float64 // log10 bytes, keyed by service
	durations    map[int][]float64 // log10 seconds
	arrivalHist  []float64         // sessions per (BS, minute) count histogram
	truncated    int
	weekendCount int
}

func collectMarginals(t *testing.T, sampler Sampler, topSvc map[int]bool) marginals {
	t.Helper()
	topo, err := NewTopology(TopologyConfig{NumBS: 20, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSimulator(topo, SimConfig{Seed: 42, Days: 2, Weekend: 0.7, Sampler: sampler})
	if err != nil {
		t.Fatal(err)
	}
	m := marginals{
		svcCounts: make([]float64, len(sim.Services)),
		volumes:   map[int][]float64{},
		durations: map[int][]float64{},
	}
	perMinute := make([]int, len(topo.BSs)*MinutesPerDay)
	for day := 0; day < 2; day++ {
		for i := range perMinute {
			perMinute[i] = 0
		}
		for bs := range topo.BSs {
			err := sim.GenerateDay(bs, day, func(s Session) {
				m.total++
				m.svcCounts[s.Service]++
				if topSvc[s.Service] {
					m.volumes[s.Service] = append(m.volumes[s.Service], math.Log10(s.Volume))
					m.durations[s.Service] = append(m.durations[s.Service], math.Log10(s.Duration))
				}
				if s.Truncated {
					m.truncated++
				}
				if IsWeekend(s.Day) {
					m.weekendCount++
				}
				perMinute[s.BS*MinutesPerDay+s.Minute]++
			})
			if err != nil {
				t.Fatal(err)
			}
		}
		for _, c := range perMinute {
			for len(m.arrivalHist) <= c {
				m.arrivalHist = append(m.arrivalHist, 0)
			}
			m.arrivalHist[c]++
		}
	}
	return m
}

// mergeTailBins pools sparse high-count bins so every chi-square cell
// has a pooled count of at least min, keeping the asymptotic chi-square
// approximation honest for the long arrival-count tail.
func mergeTailBins(a, b []float64, min float64) (am, bm []float64) {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	at := func(s []float64, i int) float64 {
		if i < len(s) {
			return s[i]
		}
		return 0
	}
	var accA, accB float64
	for i := 0; i < n; i++ {
		accA += at(a, i)
		accB += at(b, i)
		if accA+accB >= min {
			am = append(am, accA)
			bm = append(bm, accB)
			accA, accB = 0, 0
		}
	}
	if accA+accB > 0 && len(am) > 0 {
		am[len(am)-1] += accA
		bm[len(bm)-1] += accB
	}
	return am, bm
}

// TestSamplerV2StatEquivalence checks the v2 contract: a different draw
// mapping realizing the same ground truth. Both engines run the same
// config at the same seed and every compared marginal — per-service
// session shares, per-service volume and duration distributions,
// the per-(BS, minute) arrival-count histogram, and the mobility
// truncation rate — must agree within sampling noise (KS for continuous
// marginals, chi-square homogeneity for categorical ones). Seeds are
// fixed, so the observed p-values are constants; the 1e-3 floor keeps
// the test deterministic while still failing loudly on any systematic
// distributional shift.
func TestSamplerV2StatEquivalence(t *testing.T) {
	// Facebook, Instagram, SnapChat carry >75% of sessions; Youtube adds
	// a heavy-tailed streaming profile with multiple peaks.
	topSvc := map[int]bool{0: true, 1: true, 2: true, 3: true}
	v1 := collectMarginals(t, SamplerV1, topSvc)
	v2 := collectMarginals(t, SamplerV2, topSvc)
	const minP = 1e-3

	if v1.total == 0 || v2.total == 0 {
		t.Fatal("empty campaign")
	}
	// Campaign sizes must agree to well under a percent: both engines
	// draw arrival counts from the same per-BS rate processes.
	if ratio := float64(v2.total) / float64(v1.total); ratio < 0.99 || ratio > 1.01 {
		t.Errorf("total sessions diverge: v1=%d v2=%d (ratio %.4f)", v1.total, v2.total, ratio)
	}

	// Service shares: chi-square homogeneity over all catalog services.
	stat, df, p, err := dist.Chi2Homogeneity(v1.svcCounts, v2.svcCounts)
	if err != nil {
		t.Fatalf("service-share chi2: %v", err)
	}
	if p < minP {
		t.Errorf("service shares differ: chi2=%.1f df=%d p=%.2e", stat, df, p)
	}

	// Arrival-count histogram: pooled tail bins, then homogeneity.
	ah1, ah2 := mergeTailBins(v1.arrivalHist, v2.arrivalHist, 25)
	stat, df, p, err = dist.Chi2Homogeneity(ah1, ah2)
	if err != nil {
		t.Fatalf("arrival-count chi2: %v", err)
	}
	if p < minP {
		t.Errorf("arrival-count histograms differ: chi2=%.1f df=%d p=%.2e", stat, df, p)
	}

	// Per-service volume and duration marginals: two-sample KS.
	for svc := range topSvc {
		for _, m := range []struct {
			name   string
			s1, s2 []float64
		}{
			{"volume", v1.volumes[svc], v2.volumes[svc]},
			{"duration", v1.durations[svc], v2.durations[svc]},
		} {
			d, p, err := dist.KSTwoSample(m.s1, m.s2)
			if err != nil {
				t.Fatalf("service %d %s KS: %v", svc, m.name, err)
			}
			if p < minP {
				t.Errorf("service %d %s marginals differ: D=%.4f p=%.2e (n1=%d n2=%d)",
					svc, m.name, d, p, len(m.s1), len(m.s2))
			}
		}
	}

	// Truncation rate: two-proportion chi-square (equivalent to the
	// z-test squared).
	stat, df, p, err = dist.Chi2Homogeneity(
		[]float64{float64(v1.truncated), float64(v1.total - v1.truncated)},
		[]float64{float64(v2.truncated), float64(v2.total - v2.truncated)},
	)
	if err != nil {
		t.Fatalf("truncation chi2: %v", err)
	}
	if p < minP {
		t.Errorf("truncation rates differ: v1=%.4f v2=%.4f chi2=%.1f df=%d p=%.2e",
			float64(v1.truncated)/float64(v1.total), float64(v2.truncated)/float64(v2.total), stat, df, p)
	}

	// Weekend scaling applies identically (day 5 of a 2-day run never
	// happens; weekendCount counts day-type attribution consistency).
	if (v1.weekendCount == 0) != (v2.weekendCount == 0) {
		t.Errorf("weekend attribution differs: v1=%d v2=%d", v1.weekendCount, v2.weekendCount)
	}
}

// TestSamplerV2DayAllocs pins the tentpole allocation property: with a
// caller-supplied batch buffer, a v2 day synthesizes its thousands of
// sessions without per-day heap allocations — no rand.Rand, no mixture
// scratch, nothing. (v1 pays the math/rand lagged-Fibonacci source per
// day by design; it exists to reproduce history, not to be fast.)
func TestSamplerV2DayAllocs(t *testing.T) {
	sim := newTestSim(t, SimConfig{Seed: 42, Sampler: SamplerV2})
	buf := make([]Session, 0, SessionBatchSize)
	var kept int
	yield := func(b []Session) error { kept += len(b); return nil }
	// Warm up lazy state (obs handles, topology caches).
	if err := sim.GenerateDayBatch(2, 0, buf, yield); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(5, func() {
		if err := sim.GenerateDayBatch(2, 0, buf, yield); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 2 {
		t.Errorf("v2 GenerateDayBatch allocates %.1f times per day, want <= 2", allocs)
	}
	if kept == 0 {
		t.Fatal("no sessions generated")
	}
}

// TestPhaseTableMatchesDayWeight checks the precomputed phase table is
// bit-identical to the closed form — the property that lets sampler v1
// read it without perturbing the historical stream.
func TestPhaseTableMatchesDayWeight(t *testing.T) {
	sim := newTestSim(t, SimConfig{Seed: 1})
	if len(sim.phase) != MinutesPerDay {
		t.Fatalf("phase table has %d entries, want %d", len(sim.phase), MinutesPerDay)
	}
	for m := 0; m < MinutesPerDay; m++ {
		if got, want := sim.phase[m], DayWeight(m); got != want {
			t.Fatalf("phase[%d] = %v, DayWeight = %v", m, got, want)
		}
	}
}

func TestParseSampler(t *testing.T) {
	cases := []struct {
		in      string
		want    Sampler
		wantErr bool
	}{
		{"", SamplerV2, false},
		{"v1", SamplerV1, false},
		{"v2", SamplerV2, false},
		{"v3", "", true},
		{"V1", "", true},
	}
	for _, tc := range cases {
		got, err := ParseSampler(tc.in)
		if (err != nil) != tc.wantErr {
			t.Errorf("ParseSampler(%q) error = %v, wantErr %v", tc.in, err, tc.wantErr)
			continue
		}
		if !tc.wantErr && got != tc.want {
			t.Errorf("ParseSampler(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestNewSimulatorRejectsUnknownSampler(t *testing.T) {
	topo, err := NewTopology(TopologyConfig{NumBS: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSimulator(topo, SimConfig{Seed: 1, Sampler: "v99"}); err == nil {
		t.Fatal("expected error for unknown sampler version")
	}
}
