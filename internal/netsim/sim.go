package netsim

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"mobiletraffic/internal/obs"
	"mobiletraffic/internal/services"
)

// Session is one simulated transport-layer session served (possibly in
// part) by a single BS, the unit of observation of the whole paper.
type Session struct {
	BS      int     // topology index of the serving BS
	Service int     // index into the simulator's service catalog
	Day     int     // simulation day
	Minute  int     // minute of day of session establishment
	Start   float64 // second of day of establishment
	// Duration is the time in seconds the session was served by this
	// BS; for sessions interrupted by a handover it is the dwell time.
	Duration float64
	// Volume is the traffic in bytes the session generated at this BS.
	Volume float64
	// Truncated marks sessions cut short by UE mobility: the partial,
	// transient sessions the paper highlights as overlooked by prior
	// traffic models (insight e, §4.5).
	Truncated bool
}

// Throughput returns the session's mean throughput in bytes/second.
func (s *Session) Throughput() float64 {
	if s.Duration <= 0 {
		return 0
	}
	return s.Volume / s.Duration
}

// Sampler selects the versioned sampling engine that turns the
// deterministic per-(BS, day) seed into a session stream. Both
// versions synthesize the same ground-truth distributions; they differ
// in which random draws realize them (see DESIGN.md "Sampler streams
// and determinism").
type Sampler string

// Sampler stream versions.
const (
	// SamplerV1 is the original math/rand stream: every session draw is
	// byte-for-byte identical to the pre-versioning simulator, pinned by
	// TestSamplerV1GoldenStream. Use it to reproduce historical runs.
	SamplerV1 Sampler = "v1"
	// SamplerV2 is the fast default: a table-driven engine (PCG RNG,
	// per-BS alias tables, single-Exp log-domain sampling) that is
	// statistically equivalent to v1 — same marginals, different draw
	// mapping — and roughly halves synthesis cost.
	SamplerV2 Sampler = "v2"
)

// ParseSampler validates a sampler version string; the empty string
// selects the default (v2).
func ParseSampler(s string) (Sampler, error) {
	switch Sampler(s) {
	case "":
		return SamplerV2, nil
	case SamplerV1, SamplerV2:
		return Sampler(s), nil
	}
	return "", fmt.Errorf("netsim: unknown sampler version %q (want v1 or v2)", s)
}

// SimConfig configures session synthesis. Zero values take documented
// defaults.
type SimConfig struct {
	// Days is the number of simulated days (default 3; the paper
	// observes 45 but finds day-type invariance, §4.4).
	Days int
	// MoveProb is the probability that a session belongs to an
	// in-transit UE and is truncated by a handover (default 0.25; any
	// negative value disables mobility entirely).
	MoveProb float64
	// MeanDwell is the mean BS dwell time in seconds for in-transit UEs
	// (default 45 s, consistent with the paper's reading of Netflix's
	// sub-minute transient mode).
	MeanDwell float64
	// ShareJitterCV scales the per-BS perturbation of service session
	// shares (default 0.01: Table 1 reports session-share CVs around 1%).
	ShareJitterCV float64
	// Weekend scales arrival rates on Saturdays and Sundays (default 1:
	// §4.4 finds workday/weekend session-level statistics
	// indistinguishable).
	Weekend float64
	// Sampler selects the sampling-engine stream version (default
	// SamplerV2; SamplerV1 reproduces the historical session stream
	// byte for byte).
	Sampler Sampler
	Seed    int64
}

func (c SimConfig) withDefaults() SimConfig {
	if c.Days <= 0 {
		c.Days = 3
	}
	switch {
	case c.MoveProb == 0:
		c.MoveProb = 0.25
	case c.MoveProb < 0:
		c.MoveProb = 0
	}
	if c.MeanDwell <= 0 {
		c.MeanDwell = 45
	}
	if c.ShareJitterCV <= 0 {
		c.ShareJitterCV = 0.01
	}
	if c.Weekend <= 0 {
		c.Weekend = 1
	}
	if c.Sampler == "" {
		c.Sampler = SamplerV2
	}
	return c
}

// Simulator generates the session workload of a Topology according to
// the ground-truth service catalog.
type Simulator struct {
	Topo     *Topology
	Config   SimConfig
	Services []services.Profile
	// baseProbs holds the nationwide per-service session probabilities;
	// bsProbs the per-BS jittered variants (constant over time, CV ~1%,
	// §5.1).
	baseProbs []float64
	bsProbs   [][]float64
	// bsAlias holds one Walker alias table per BS over that BS's
	// jittered shares: the sampler-v2 categorical draw is O(1) instead
	// of an O(#services) cumulative scan.
	bsAlias []*services.AliasTable
	// phase is the precomputed 1440-entry DayWeight table: phase[m]
	// stores the exact float DayWeight(m) returns, so both sampler
	// streams read it in place of two math.Exp calls per minute without
	// perturbing any draw.
	phase []float64
	// Workload accounting (netsim_*_total), batched per GenerateDay so
	// the per-session loop stays atomics-free; nil handles when
	// instrumentation is disabled.
	obsSessions *obs.Counter
	obsSplits   *obs.Counter
	// colsPool recycles the DayColumns scratch the v2 materializing
	// path samples into; a pool (not a plain field) because GenerateDay
	// may be called from concurrent workers.
	colsPool sync.Pool
	// maxDay is the analytic day-size bound MaxDaySessions returns,
	// computed once at construction.
	maxDay int
}

// NewSimulator builds a simulator over the topology using the full
// 31-service catalog.
func NewSimulator(topo *Topology, cfg SimConfig) (*Simulator, error) {
	profiles, _ := services.SessionShareProbs()
	return NewSimulatorWithCatalog(topo, cfg, profiles)
}

// NewSimulatorWithCatalog builds a simulator over a custom service
// catalog — e.g. a future-year catalog with drifted popularity to study
// model aging (§7 notes the models "will require updates over the
// years"). Profiles must have positive session shares.
func NewSimulatorWithCatalog(topo *Topology, cfg SimConfig, profiles []services.Profile) (*Simulator, error) {
	if topo == nil || len(topo.BSs) == 0 {
		return nil, fmt.Errorf("netsim: empty topology")
	}
	if len(profiles) == 0 {
		return nil, fmt.Errorf("netsim: empty service catalog")
	}
	c := cfg.withDefaults()
	if c.Sampler != SamplerV1 && c.Sampler != SamplerV2 {
		return nil, fmt.Errorf("netsim: unknown sampler version %q (want %q or %q)", c.Sampler, SamplerV1, SamplerV2)
	}
	var total float64
	for _, p := range profiles {
		if p.SessionSharePct < 0 {
			return nil, fmt.Errorf("netsim: negative session share for %s", p.Name)
		}
		total += p.SessionSharePct
	}
	if total <= 0 {
		return nil, fmt.Errorf("netsim: catalog session shares sum to zero")
	}
	probs := make([]float64, len(profiles))
	for i, p := range profiles {
		probs[i] = p.SessionSharePct / total
	}
	// Own a copy of the catalog and memoize each profile's power-law
	// terms once, so the per-session sampling hot path never re-derives
	// them (two math.Pow calls per session otherwise).
	owned := make([]services.Profile, len(profiles))
	copy(owned, profiles)
	for i := range owned {
		owned[i].Precompute()
	}
	s := &Simulator{
		Topo:        topo,
		Config:      c,
		Services:    owned,
		baseProbs:   probs,
		obsSessions: obs.CounterOf("netsim_sessions_generated_total"),
		obsSplits:   obs.CounterOf("netsim_handover_splits_total"),
	}
	s.phase = make([]float64, MinutesPerDay)
	for m := range s.phase {
		s.phase[m] = DayWeight(m)
	}
	s.maxDay = computeMaxDaySessions(topo, c, s.phase)
	s.colsPool.New = func() any {
		// Pooled scratch is born pre-sized to the campaign's largest
		// day so the materializing path never grows it.
		cols := new(DayColumns)
		cols.Resize(s.maxDay)
		cols.Resize(0)
		return cols
	}
	rng := rand.New(rand.NewSource(c.Seed ^ 0x5eed))
	s.bsProbs = make([][]float64, len(topo.BSs))
	s.bsAlias = make([]*services.AliasTable, len(topo.BSs))
	for b := range topo.BSs {
		p := make([]float64, len(probs))
		var total float64
		for i, v := range probs {
			p[i] = v * math.Max(0, 1+c.ShareJitterCV*rng.NormFloat64())
			total += p[i]
		}
		for i := range p {
			p[i] /= total
		}
		s.bsProbs[b] = p
		tab, err := services.NewAliasTable(p)
		if err != nil {
			return nil, fmt.Errorf("netsim: BS %d alias table: %w", b, err)
		}
		s.bsAlias[b] = tab
	}
	return s, nil
}

// ServiceIndex returns the catalog index of the named service.
func (s *Simulator) ServiceIndex(name string) (int, error) {
	for i, p := range s.Services {
		if p.Name == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("netsim: unknown service %q", name)
}

// IsWeekend reports whether the simulation day falls on a weekend
// (days count from Monday = 0).
func IsWeekend(day int) bool {
	d := day % 7
	return d == 5 || d == 6
}

// BSDayRNG derives a deterministic random stream for one (BS, day)
// cell from a master seed, so independent consumers — the simulator's
// session synthesis, the fault injector of internal/faults — can
// generate per-cell streams in any order (and in parallel) while
// staying bit-identical to a serial run.
func BSDayRNG(masterSeed int64, bsIdx, day int) *rand.Rand {
	seed := uint64(masterSeed)
	seed = seed*0x9E3779B97F4A7C15 + uint64(bsIdx)*0xBF58476D1CE4E5B9 + uint64(day)*0x94D049BB133111EB + 1
	// SplitMix64 finalizer for good bit dispersion across (bs, day).
	seed ^= seed >> 30
	seed *= 0xBF58476D1CE4E5B9
	seed ^= seed >> 27
	return rand.New(rand.NewSource(int64(seed)))
}

// dayRNG derives the simulator's deterministic per-(BS, day) random
// stream so that days and BSs can be generated independently.
func (s *Simulator) dayRNG(bsIdx, day int) *rand.Rand {
	return BSDayRNG(s.Config.Seed, bsIdx, day)
}

// SessionBatchSize is the default yield granularity of
// GenerateDayBatch: large enough to amortize the per-batch indirect
// call over the per-session synthesis cost, small enough to keep a
// worker's in-flight batch within L2.
const SessionBatchSize = 512

// GenerateDay synthesizes all sessions established at the BS (by
// topology index) during the given day, invoking yield for each. The
// per-(BS, day) stream is deterministic in the simulator seed.
func (s *Simulator) GenerateDay(bsIdx, day int, yield func(Session)) error {
	return s.GenerateDayBatch(bsIdx, day, nil, func(batch []Session) error {
		for i := range batch {
			yield(batch[i])
		}
		return nil
	})
}

// GenerateDayBatch is the bulk counterpart of GenerateDay: sessions are
// synthesized into a reusable buffer and yielded in batches, so the
// per-session cost is an append rather than an indirect call. buf
// optionally supplies the batch buffer (its capacity sets the batch
// size; SessionBatchSize is used when nil) and may be reused across
// calls. The yielded slice is only valid until yield returns; a
// non-nil yield error aborts generation and is returned as-is. The
// session stream — and the underlying random draws — are identical to
// GenerateDay's.
func (s *Simulator) GenerateDayBatch(bsIdx, day int, buf []Session, yield func([]Session) error) error {
	if bsIdx < 0 || bsIdx >= len(s.Topo.BSs) {
		return fmt.Errorf("netsim: BS index %d out of range [0, %d)", bsIdx, len(s.Topo.BSs))
	}
	if day < 0 {
		return fmt.Errorf("netsim: negative day %d", day)
	}
	if cap(buf) == 0 {
		buf = make([]Session, 0, SessionBatchSize)
	}
	buf = buf[:0]
	if s.Config.Sampler == SamplerV1 {
		weekendScale := 1.0
		if IsWeekend(day) {
			weekendScale = s.Config.Weekend
		}
		return s.generateDayV1(bsIdx, day, weekendScale, buf, yield)
	}
	return s.generateDayV2(bsIdx, day, buf, yield)
}

// generateDayV1 is the historical math/rand sampling engine, kept
// byte-for-byte identical to the pre-versioning simulator (pinned by
// TestSamplerV1GoldenStream): reading the phase weight from the
// precomputed table and skipping the weekend rounding at n == 0 leave
// every random draw untouched.
func (s *Simulator) generateDayV1(bsIdx, day int, weekendScale float64, buf []Session, yield func([]Session) error) error {
	bs := &s.Topo.BSs[bsIdx]
	rng := s.dayRNG(bsIdx, day)
	probs := s.bsProbs[bsIdx]
	scaleWeekend := weekendScale != 1
	var generated, split int64
	// Batch the workload counters with the sessions: account whatever
	// was synthesized even when a yield error aborts the day early.
	defer func() {
		s.obsSessions.Add(generated)
		s.obsSplits.Add(split)
	}()
	for minute := 0; minute < MinutesPerDay; minute++ {
		n := arrivalCount(bs, s.phase[minute], rng)
		if n == 0 {
			continue
		}
		if scaleWeekend {
			n = int(math.Round(float64(n) * weekendScale))
		}
		for k := 0; k < n; k++ {
			svc := services.PickService(probs, rng)
			prof := &s.Services[svc]
			volume := prof.SampleVolume(rng)
			duration := prof.SampleDuration(volume, rng)
			truncated := false
			if rng.Float64() < s.Config.MoveProb {
				dwell := rng.ExpFloat64() * s.Config.MeanDwell
				if dwell < 1 {
					dwell = 1
				}
				if dwell < duration {
					// The BS only sees the dwell-time share of the
					// session: volume pro-rated on served time.
					volume *= dwell / duration
					duration = dwell
					truncated = true
				}
			}
			generated++
			if truncated {
				split++
			}
			buf = append(buf, Session{
				BS:        bsIdx,
				Service:   svc,
				Day:       day,
				Minute:    minute,
				Start:     float64(minute)*60 + rng.Float64()*60,
				Duration:  duration,
				Volume:    volume,
				Truncated: truncated,
			})
			if len(buf) == cap(buf) {
				if err := yield(buf); err != nil {
					return err
				}
				buf = buf[:0]
			}
		}
	}
	if len(buf) > 0 {
		return yield(buf)
	}
	return nil
}

// generateDayV2 is the table-driven sampling engine: the whole day is
// synthesized by the columnar pipeline (sampleDayColumns — batch draw
// kernels, per-BS alias table picks, single-Exp log-domain samplers)
// into a pooled DayColumns scratch and then materialized into Session
// values batch by batch. The stream differs from v1 draw by draw but
// realizes the same ground-truth distributions
// (TestSamplerV2StatEquivalence); it is identical, session for
// session, to what SampleDayColumns exposes in columnar form.
func (s *Simulator) generateDayV2(bsIdx, day int, buf []Session, yield func([]Session) error) error {
	c := s.colsPool.Get().(*DayColumns)
	defer s.colsPool.Put(c)
	s.sampleDayColumns(bsIdx, day, c)
	for i, n := 0, c.N(); i < n; i++ {
		// Value columns live in grouped order; the session's slot
		// bridges back to emission order.
		g := c.Slot[i]
		buf = append(buf, Session{
			BS:        bsIdx,
			Service:   int(c.Svc[i]),
			Day:       day,
			Minute:    int(c.Minute[i]),
			Start:     c.Start[i],
			Duration:  c.Duration[g],
			Volume:    c.Volume[g],
			Truncated: c.Truncated[i],
		})
		if len(buf) == cap(buf) {
			if err := yield(buf); err != nil {
				return err
			}
			buf = buf[:0]
		}
	}
	if len(buf) > 0 {
		return yield(buf)
	}
	return nil
}

// GenerateAll synthesizes every configured day for every BS, invoking
// yield per session, days outermost.
func (s *Simulator) GenerateAll(yield func(Session)) error {
	for day := 0; day < s.Config.Days; day++ {
		for b := range s.Topo.BSs {
			if err := s.GenerateDay(b, day, yield); err != nil {
				return err
			}
		}
	}
	return nil
}
