package faults

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestProcessAttempt(t *testing.T) {
	ctx := context.Background()

	t.Run("nil-receiver", func(t *testing.T) {
		var p *ProcessFaults
		if err := p.Attempt(ctx, 0, 1); err != nil {
			t.Fatalf("nil injector: %v", err)
		}
	})
	t.Run("inert", func(t *testing.T) {
		p, err := NewProcess(ProcessConfig{})
		if err != nil {
			t.Fatal(err)
		}
		for shard := 0; shard < 4; shard++ {
			if err := p.Attempt(ctx, shard, 1); err != nil {
				t.Fatalf("zero config injected a fault on shard %d: %v", shard, err)
			}
		}
	})
	t.Run("crash", func(t *testing.T) {
		p, err := NewProcess(ProcessConfig{CrashShard: 1, CrashAttempts: 1})
		if err != nil {
			t.Fatal(err)
		}
		panicked := func(shard, attempt int) (p2 bool) {
			defer func() { p2 = recover() != nil }()
			p.Attempt(ctx, shard, attempt)
			return
		}
		if !panicked(1, 1) {
			t.Fatal("target shard's first attempt must panic")
		}
		if panicked(1, 2) {
			t.Fatal("retry past CrashAttempts must not panic")
		}
		if panicked(0, 1) || panicked(2, 1) {
			t.Fatal("non-target shards must not panic")
		}
	})
	t.Run("hang", func(t *testing.T) {
		p, err := NewProcess(ProcessConfig{HangShard: 0, HangAttempts: 1})
		if err != nil {
			t.Fatal(err)
		}
		hctx, cancel := context.WithTimeout(ctx, 10*time.Millisecond)
		defer cancel()
		start := time.Now()
		err = p.Attempt(hctx, 0, 1)
		if err == nil || !strings.Contains(err.Error(), "hang") {
			t.Fatalf("hang: err = %v", err)
		}
		if time.Since(start) < 10*time.Millisecond {
			t.Fatal("hang returned before ctx cancellation")
		}
		if err := p.Attempt(ctx, 0, 2); err != nil {
			t.Fatalf("retry past HangAttempts: %v", err)
		}
	})
	t.Run("fail-from", func(t *testing.T) {
		p, err := NewProcess(ProcessConfig{FailFromShard: 2})
		if err != nil {
			t.Fatal(err)
		}
		for attempt := 1; attempt <= 3; attempt++ {
			if err := p.Attempt(ctx, 2, attempt); err == nil {
				t.Fatalf("shard at the cut must fail permanently (attempt %d)", attempt)
			}
			if err := p.Attempt(ctx, 3, attempt); err == nil {
				t.Fatalf("shard past the cut must fail permanently (attempt %d)", attempt)
			}
		}
		if err := p.Attempt(ctx, 1, 1); err != nil {
			t.Fatalf("shard below the cut: %v", err)
		}
	})
	t.Run("slow", func(t *testing.T) {
		p, err := NewProcess(ProcessConfig{SlowShardDelay: 5 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		if err := p.Attempt(ctx, 0, 1); err != nil {
			t.Fatal(err)
		}
		if time.Since(start) < 5*time.Millisecond {
			t.Fatal("slow-worker delay did not apply")
		}
		// A canceled context frees a slowed attempt early.
		cctx, cancel := context.WithCancel(ctx)
		cancel()
		p2, _ := NewProcess(ProcessConfig{SlowShardDelay: time.Hour})
		if err := p2.Attempt(cctx, 0, 1); err == nil {
			t.Fatal("canceled slow attempt must return the ctx error")
		}
	})
	t.Run("validation", func(t *testing.T) {
		if _, err := NewProcess(ProcessConfig{CrashAttempts: -1}); err == nil {
			t.Fatal("negative crash attempts must error")
		}
		if _, err := NewProcess(ProcessConfig{HangAttempts: -1}); err == nil {
			t.Fatal("negative hang attempts must error")
		}
		if _, err := NewProcess(ProcessConfig{SlowShardDelay: -time.Second}); err == nil {
			t.Fatal("negative slow delay must error")
		}
	})
}
