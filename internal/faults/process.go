package faults

import (
	"context"
	"fmt"
	"time"

	"mobiletraffic/internal/obs"
)

// Process-level fault modes. The data-plane Injector corrupts what a
// probe exports; these corrupt the worker that does the exporting — a
// shard process that panics, hangs, or runs pathologically slowly.
// They exist to exercise the campaign supervisor (internal/campaign):
// panic capture, per-shard timeouts, bounded retry, and
// checkpoint/resume are only trustworthy if a test can kill workers on
// demand and deterministic reruns can prove recovery changed nothing.

// ProcessConfig selects which shards misbehave and how often. The zero
// value injects nothing.
type ProcessConfig struct {
	// CrashShard panics the first CrashAttempts attempts of this shard
	// index (a crashed worker, captured by the supervisor and
	// retried). CrashAttempts = 0 disables crashing.
	CrashShard    int
	CrashAttempts int
	// HangShard blocks the first HangAttempts attempts of this shard
	// until the shard context is canceled — a hung worker, recovered
	// only by the supervisor's ShardTimeout. HangAttempts = 0 disables
	// hanging.
	HangShard    int
	HangAttempts int
	// FailFromShard, when > 0, permanently fails every attempt of
	// every shard with index >= FailFromShard — the in-process stand-in
	// for a SIGKILLed campaign: shards below the cut complete and
	// checkpoint, the rest never finish, and a resumed run must
	// recompute exactly them. (Shard 0 cannot be targeted; a campaign
	// killed before any shard completes is just a fresh start.)
	FailFromShard int
	// SlowShardDelay adds a fixed latency to every shard attempt — the
	// slow-worker mode that stretches a campaign so an external kill
	// (or a ShardTimeout) reliably lands mid-run.
	SlowShardDelay time.Duration
}

// ProcessFaults gates shard-worker attempts with the configured
// process-level faults. Shard workers call Attempt before doing any
// shard work (see experiments.CollectSharded), so a crashed or hung
// attempt never emits a partial collector. Fault decisions depend only
// on (shard index, attempt), so a faulted campaign is reproducible
// regardless of worker parallelism.
type ProcessFaults struct {
	cfg     ProcessConfig
	obsKind struct {
		crash, hang, slow, fail *obs.Counter
	}
}

// NewProcess builds a process-level fault injector.
func NewProcess(cfg ProcessConfig) (*ProcessFaults, error) {
	if cfg.CrashAttempts < 0 || cfg.HangAttempts < 0 {
		return nil, fmt.Errorf("faults: negative process fault attempt counts")
	}
	if cfg.SlowShardDelay < 0 {
		return nil, fmt.Errorf("faults: negative slow-shard delay")
	}
	p := &ProcessFaults{cfg: cfg}
	p.obsKind.crash = obs.CounterOf("faults_injected_total", "kind", "proc_crash")
	p.obsKind.hang = obs.CounterOf("faults_injected_total", "kind", "proc_hang")
	p.obsKind.slow = obs.CounterOf("faults_injected_total", "kind", "proc_slow")
	p.obsKind.fail = obs.CounterOf("faults_injected_total", "kind", "proc_fail")
	return p, nil
}

// Config returns the injector's configuration.
func (p *ProcessFaults) Config() ProcessConfig { return p.cfg }

// Attempt fires the faults configured for one shard attempt (attempts
// count from 1): it panics for an injected crash, blocks until ctx
// cancellation for an injected hang, returns an error for a permanent
// failure, and sleeps for the slow-worker delay. A nil receiver and a
// fault-free attempt both return nil immediately.
func (p *ProcessFaults) Attempt(ctx context.Context, shard, attempt int) error {
	if p == nil {
		return nil
	}
	cfg := &p.cfg
	if cfg.FailFromShard > 0 && shard >= cfg.FailFromShard {
		p.obsKind.fail.Inc()
		return fmt.Errorf("faults: injected permanent failure of shard %d (fail-from %d)", shard, cfg.FailFromShard)
	}
	if cfg.CrashAttempts > 0 && shard == cfg.CrashShard && attempt <= cfg.CrashAttempts {
		p.obsKind.crash.Inc()
		panic(fmt.Sprintf("faults: injected crash of shard %d attempt %d", shard, attempt))
	}
	if cfg.HangAttempts > 0 && shard == cfg.HangShard && attempt <= cfg.HangAttempts {
		p.obsKind.hang.Inc()
		<-ctx.Done() // hung worker: only the shard timeout frees it
		return fmt.Errorf("faults: injected hang of shard %d attempt %d: %w", shard, attempt, ctx.Err())
	}
	if cfg.SlowShardDelay > 0 {
		p.obsKind.slow.Inc()
		select {
		case <-time.After(cfg.SlowShardDelay):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}
