// Package faults injects deterministic, seeded failures into the
// netsim→probe measurement plane. The paper's pipeline runs on a real
// operator's probes, where the export is never pristine: probes go
// dark for whole BS×day cells, collection days are truncated by
// restarts, the gateway tap loses or duplicates flow records under
// load, signaling gaps leave flows without a usable location history,
// and the DPI classifier misroutes bursts of flows of one service to
// another. An Injector reproduces all of these over the simulated
// session stream so the graceful-degradation fitting pipeline
// (core.FitServiceModelsReport) can be verified against known fault
// intensities.
//
// Every fault decision is drawn from a per-(BS, day) random stream
// derived with netsim.BSDayRNG, so an injected campaign is
// reproducible for a given seed regardless of worker parallelism or
// generation order — the same property the simulator itself
// guarantees.
package faults

import (
	"fmt"
	"math/rand"
	"sync/atomic"

	"mobiletraffic/internal/netsim"
	"mobiletraffic/internal/obs"
)

// Config sets the fault intensities. All probabilities are per-unit
// rates in [0, 1]; the zero value injects nothing.
type Config struct {
	// OutageProb is the probability that a (BS, day) probe exports
	// nothing at all — a dark cell in the measurement campaign.
	OutageProb float64
	// TruncatedDayProb is the probability that a (BS, day) export is
	// cut short by a probe restart: sessions established after a
	// uniformly drawn cutoff minute are lost.
	TruncatedDayProb float64
	// FlowLossProb is the per-record loss rate at the gateway probe.
	FlowLossProb float64
	// FlowDupProb is the per-record duplication rate at the gateway
	// probe (a retransmitted export record counted twice).
	FlowDupProb float64
	// SignalGapProb is the probability that a flow's UE has no usable
	// signaling history; such flows cannot be geo-referenced and the
	// operator drops them from the per-BS statistics (§3.1).
	SignalGapProb float64
	// MisclassProb is the expected fraction of records carrying a
	// wrong service label. Misclassification arrives in bursts — a DPI
	// signature misfire reroutes a run of records to one wrong service
	// — so the burst-start probability is MisclassProb/MeanBurstLen.
	MisclassProb float64
	// MeanBurstLen is the mean length (in records) of a
	// misclassification burst; default 8 when zero or negative.
	MeanBurstLen float64
	// Seed drives every fault decision; independent of the simulator
	// seed so fault realizations can be varied against a fixed
	// workload.
	Seed int64
}

// DefaultMeanBurstLen is the mean misclassification burst length used
// when Config.MeanBurstLen is unset.
const DefaultMeanBurstLen = 8

// Scale returns a copy of the config with every fault probability
// multiplied by intensity (clamped to [0, 1]); the seed and burst
// length are preserved. Scale(0) is a fault-free config, Scale(1) the
// config itself — the knob a fault-intensity sweep turns.
func (c Config) Scale(intensity float64) Config {
	clamp := func(p float64) float64 {
		p *= intensity
		if p < 0 {
			return 0
		}
		if p > 1 {
			return 1
		}
		return p
	}
	out := c
	out.OutageProb = clamp(c.OutageProb)
	out.TruncatedDayProb = clamp(c.TruncatedDayProb)
	out.FlowLossProb = clamp(c.FlowLossProb)
	out.FlowDupProb = clamp(c.FlowDupProb)
	out.SignalGapProb = clamp(c.SignalGapProb)
	out.MisclassProb = clamp(c.MisclassProb)
	return out
}

func (c Config) validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"OutageProb", c.OutageProb},
		{"TruncatedDayProb", c.TruncatedDayProb},
		{"FlowLossProb", c.FlowLossProb},
		{"FlowDupProb", c.FlowDupProb},
		{"SignalGapProb", c.SignalGapProb},
		{"MisclassProb", c.MisclassProb},
	} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("faults: %s = %v outside [0, 1]", p.name, p.v)
		}
	}
	return nil
}

// Stats counts injected faults with atomic counters, so a parallel
// collection campaign can share one Injector across workers.
type Stats struct {
	outageDays    atomic.Int64
	truncatedDays atomic.Int64
	observed      atomic.Int64 // sessions entering the injector
	emitted       atomic.Int64 // sessions leaving it (incl. duplicates)
	truncDropped  atomic.Int64 // sessions lost to day truncation
	lost          atomic.Int64 // records lost at the gateway
	duplicated    atomic.Int64 // records duplicated at the gateway
	unreferenced  atomic.Int64 // records without signaling history
	misclassified atomic.Int64 // records with a remapped service label
}

// Snapshot is a plain-integer copy of the fault counters for
// reporting.
type Snapshot struct {
	OutageDays    int64 // (BS, day) cells that exported nothing
	TruncatedDays int64 // (BS, day) cells cut short
	Observed      int64 // sessions entering the injector
	Emitted       int64 // sessions leaving it (incl. duplicates)
	TruncDropped  int64 // sessions lost to day truncation
	Lost          int64 // records lost at the gateway probe
	Duplicated    int64 // records duplicated at the gateway probe
	Unreferenced  int64 // records dropped for missing signaling
	Misclassified int64 // records with a wrong service label
}

// Dropped returns the total number of sessions the injector removed
// from the stream (truncation + gateway loss + signaling gaps); outage
// days never enter the stream and are not included.
func (s Snapshot) Dropped() int64 { return s.TruncDropped + s.Lost + s.Unreferenced }

// Injector composes the configured faults over a session stream. It is
// safe for concurrent use: per-(BS, day) fault streams obtained from
// Day carry all mutable state, and the shared counters are atomic.
type Injector struct {
	cfg         Config
	numServices int
	stats       Stats
	// obsKind counts injected faults by kind
	// (faults_injected_total{kind=...}); handles are resolved once at
	// construction and are nil (free) when instrumentation is
	// disabled. They never touch the fault RNG, so realizations are
	// identical with instrumentation on or off.
	obsKind struct {
		outage, truncDay, loss, dup, gap, misclass *obs.Counter
	}
}

// New validates the config and builds an injector for a catalog of
// numServices services (needed to remap misclassified labels).
func New(cfg Config, numServices int) (*Injector, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if numServices <= 0 {
		return nil, fmt.Errorf("faults: injector needs >= 1 service, got %d", numServices)
	}
	if cfg.MeanBurstLen <= 0 {
		cfg.MeanBurstLen = DefaultMeanBurstLen
	}
	inj := &Injector{cfg: cfg, numServices: numServices}
	inj.obsKind.outage = obs.CounterOf("faults_injected_total", "kind", "outage_day")
	inj.obsKind.truncDay = obs.CounterOf("faults_injected_total", "kind", "truncated_day")
	inj.obsKind.loss = obs.CounterOf("faults_injected_total", "kind", "flow_loss")
	inj.obsKind.dup = obs.CounterOf("faults_injected_total", "kind", "flow_dup")
	inj.obsKind.gap = obs.CounterOf("faults_injected_total", "kind", "signal_gap")
	inj.obsKind.misclass = obs.CounterOf("faults_injected_total", "kind", "misclass")
	return inj, nil
}

// Config returns the injector's (validated, defaulted) configuration.
func (inj *Injector) Config() Config { return inj.cfg }

// Stats returns a snapshot of the fault counters accumulated so far.
func (inj *Injector) Stats() Snapshot {
	return Snapshot{
		OutageDays:    inj.stats.outageDays.Load(),
		TruncatedDays: inj.stats.truncatedDays.Load(),
		Observed:      inj.stats.observed.Load(),
		Emitted:       inj.stats.emitted.Load(),
		TruncDropped:  inj.stats.truncDropped.Load(),
		Lost:          inj.stats.lost.Load(),
		Duplicated:    inj.stats.duplicated.Load(),
		Unreferenced:  inj.stats.unreferenced.Load(),
		Misclassified: inj.stats.misclassified.Load(),
	}
}

// DayStream is the fault state of one (BS, day) probe export. It must
// be fed that cell's sessions in generation order and is not safe for
// concurrent use — each worker owns the streams of the cells it
// simulates, mirroring how each probe site owns its own export.
type DayStream struct {
	inj        *Injector
	rng        *rand.Rand
	down       bool
	cutoff     int // sessions at minute >= cutoff are lost
	burstLeft  int // remaining records in the current misclass burst
	burstShift int // service-index shift applied during the burst
}

// Day derives the deterministic fault stream of one (BS, day) cell.
// Whole-day decisions (outage, truncation cutoff) are drawn
// immediately, so Down can be checked before paying for session
// generation.
func (inj *Injector) Day(bs, day int) *DayStream {
	d := &DayStream{
		inj:    inj,
		rng:    netsim.BSDayRNG(inj.cfg.Seed^0xfa017, bs, day),
		cutoff: netsim.MinutesPerDay,
	}
	if d.rng.Float64() < inj.cfg.OutageProb {
		d.down = true
		inj.stats.outageDays.Add(1)
		inj.obsKind.outage.Inc()
		return d
	}
	if d.rng.Float64() < inj.cfg.TruncatedDayProb {
		d.cutoff = d.rng.Intn(netsim.MinutesPerDay)
		inj.stats.truncatedDays.Add(1)
		inj.obsKind.truncDay.Inc()
	}
	return d
}

// Down reports whether the whole (BS, day) export is lost; callers can
// skip session generation entirely for such cells.
func (d *DayStream) Down() bool { return d.down }

// CutoffMinute returns the first lost minute of a truncated day
// (netsim.MinutesPerDay when the day is complete).
func (d *DayStream) CutoffMinute() int { return d.cutoff }

// Apply pushes one observed session through the fault stream, invoking
// emit zero times (lost), once (passed, possibly relabeled) or twice
// (duplicated). Faults compose in measurement-plane order: outage and
// day truncation first, then gateway record loss, then the signaling
// gap check, then DPI misclassification, and finally export
// duplication.
func (d *DayStream) Apply(s netsim.Session, emit func(netsim.Session)) {
	st := &d.inj.stats
	st.observed.Add(1)
	if d.down {
		return
	}
	if s.Minute >= d.cutoff {
		st.truncDropped.Add(1)
		return
	}
	cfg := &d.inj.cfg
	if cfg.FlowLossProb > 0 && d.rng.Float64() < cfg.FlowLossProb {
		st.lost.Add(1)
		d.inj.obsKind.loss.Inc()
		return
	}
	if cfg.SignalGapProb > 0 && d.rng.Float64() < cfg.SignalGapProb {
		st.unreferenced.Add(1)
		d.inj.obsKind.gap.Inc()
		return
	}
	if d.burstLeft == 0 && cfg.MisclassProb > 0 &&
		d.rng.Float64() < cfg.MisclassProb/cfg.MeanBurstLen {
		// A DPI signature misfires: a geometric-length run of records
		// is consistently rerouted to one wrong service. Starting a
		// burst of mean length MeanBurstLen with probability
		// MisclassProb/MeanBurstLen keeps the per-record rate at
		// MisclassProb.
		d.burstLeft = 1 + d.geometric(cfg.MeanBurstLen)
		d.burstShift = 0
		if d.inj.numServices > 1 {
			d.burstShift = 1 + d.rng.Intn(d.inj.numServices-1)
		}
	}
	if d.burstLeft > 0 {
		d.burstLeft--
		if d.burstShift != 0 {
			s.Service = (s.Service + d.burstShift) % d.inj.numServices
			st.misclassified.Add(1)
			d.inj.obsKind.misclass.Inc()
		}
	}
	st.emitted.Add(1)
	emit(s)
	if cfg.FlowDupProb > 0 && d.rng.Float64() < cfg.FlowDupProb {
		st.duplicated.Add(1)
		d.inj.obsKind.dup.Inc()
		st.emitted.Add(1)
		emit(s)
	}
}

// ApplyColumns pushes one (BS, day) column of sessions through the
// fault stream: src is the cell's minute-major DayColumns (as
// netsim.SampleDayColumns emits), dst receives the surviving sessions
// — every column copied, the service label possibly remapped,
// duplicated records emitted twice in a row — and is resized to the
// emitted count (dst.Counts is cleared, not maintained; the Start
// column is copied only when src carries one). Misclassification
// bursts re-map service labels, so the sampler's by-service grouping
// cannot describe the output: dst is emitted with the grouping marked
// invalid (SvcSeg truncated) and its value columns in plain session
// order — src's grouped value columns are gathered through src.Slot —
// so downstream columnar folds take their ungrouped path. src is not
// modified; dst must not alias it.
//
// The fault realization is bit-identical to feeding the same sessions
// through Apply one by one in column order: the per-session RNG draws
// are consumed in exactly Apply's sequence, with the day-truncation
// suffix (which consumes no draws in Apply) dropped as one column
// range. Only the shared Stats/metrics counters are batched — one
// atomic add per fault kind per column instead of one per session.
func (d *DayStream) ApplyColumns(src, dst *netsim.DayColumns) {
	n := src.N()
	st := &d.inj.stats
	st.observed.Add(int64(n))
	dst.Counts = dst.Counts[:0]
	dst.SvcSeg = dst.SvcSeg[:0]
	dst.SkipStart = len(src.Start) != n
	dst.Resize(0)
	if d.down {
		return
	}
	keep := n
	if d.cutoff < netsim.MinutesPerDay {
		keep = src.CutoffIndex(d.cutoff)
		st.truncDropped.Add(int64(n - keep))
	}
	// Session order bridges to src's value columns through the grouped
	// slot when src carries the sampler's grouping, or the identity
	// when src is already in session order.
	grouped := src.Grouped(d.inj.numServices)
	cfg := &d.inj.cfg
	rng := d.rng
	var lost, gap, misclass, dup, emitted int64
	out := 0
	for i := 0; i < keep; i++ {
		if cfg.FlowLossProb > 0 && rng.Float64() < cfg.FlowLossProb {
			lost++
			continue
		}
		if cfg.SignalGapProb > 0 && rng.Float64() < cfg.SignalGapProb {
			gap++
			continue
		}
		if d.burstLeft == 0 && cfg.MisclassProb > 0 &&
			rng.Float64() < cfg.MisclassProb/cfg.MeanBurstLen {
			// Same burst model as Apply: a geometric-length run of
			// records consistently rerouted to one wrong service.
			d.burstLeft = 1 + d.geometric(cfg.MeanBurstLen)
			d.burstShift = 0
			if d.inj.numServices > 1 {
				d.burstShift = 1 + rng.Intn(d.inj.numServices-1)
			}
		}
		sv := src.Svc[i]
		if d.burstLeft > 0 {
			d.burstLeft--
			if d.burstShift != 0 {
				sv = int32((int(sv) + d.burstShift) % d.inj.numServices)
				misclass++
			}
		}
		dupHere := cfg.FlowDupProb > 0 && rng.Float64() < cfg.FlowDupProb
		copies := 1
		if dupHere {
			copies = 2
			dup++
		}
		emitted += int64(copies)
		if out+copies > dst.N() {
			dst.Resize(out + copies + (keep-i)*copies)
		}
		g := i
		if grouped {
			g = int(src.Slot[i])
		}
		for c := 0; c < copies; c++ {
			dst.Minute[out] = src.Minute[i]
			dst.Svc[out] = sv
			if !dst.SkipStart {
				dst.Start[out] = src.Start[i]
			}
			dst.Duration[out] = src.Duration[g]
			dst.Volume[out] = src.Volume[g]
			dst.LnV[out] = src.LnV[g]
			dst.LnD[out] = src.LnD[g]
			dst.Truncated[out] = src.Truncated[i]
			out++
		}
	}
	dst.Resize(out)
	st.emitted.Add(emitted)
	if lost > 0 {
		st.lost.Add(lost)
		d.inj.obsKind.loss.Add(lost)
	}
	if gap > 0 {
		st.unreferenced.Add(gap)
		d.inj.obsKind.gap.Add(gap)
	}
	if misclass > 0 {
		st.misclassified.Add(misclass)
		d.inj.obsKind.misclass.Add(misclass)
	}
	if dup > 0 {
		st.duplicated.Add(dup)
		d.inj.obsKind.dup.Add(dup)
	}
}

// geometric draws a geometric variate with the given mean.
func (d *DayStream) geometric(mean float64) int {
	if mean <= 1 {
		return 0
	}
	n := 0
	p := 1 / mean
	for d.rng.Float64() > p {
		n++
		if n > 10000 { // guard against pathological p
			break
		}
	}
	return n
}

// Wrap adapts a serial session sink into a fault-injected one: the
// returned yield function routes each session through the fault stream
// of its (BS, day) cell, lazily creating streams as cells appear. The
// wrapper is for serial collection (e.g. netsim.Simulator.GenerateAll);
// parallel campaigns should call Day per cell from each worker.
func (inj *Injector) Wrap(yield func(netsim.Session)) func(netsim.Session) {
	type bsDay struct{ bs, day int }
	streams := map[bsDay]*DayStream{}
	return func(s netsim.Session) {
		key := bsDay{s.BS, s.Day}
		d, ok := streams[key]
		if !ok {
			d = inj.Day(s.BS, s.Day)
			streams[key] = d
		}
		d.Apply(s, yield)
	}
}
