package faults

import (
	"math"
	"testing"

	"mobiletraffic/internal/netsim"
)

func session(bs, day, minute, svc int) netsim.Session {
	return netsim.Session{
		BS: bs, Day: day, Minute: minute, Service: svc,
		Start: float64(minute) * 60, Duration: 10, Volume: 1e5,
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{OutageProb: 1.5}, 3); err == nil {
		t.Error("out-of-range probability must be rejected")
	}
	if _, err := New(Config{FlowLossProb: -0.1}, 3); err == nil {
		t.Error("negative probability must be rejected")
	}
	if _, err := New(Config{}, 0); err == nil {
		t.Error("zero services must be rejected")
	}
	inj, err := New(Config{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if inj.Config().MeanBurstLen != DefaultMeanBurstLen {
		t.Errorf("burst length default = %v", inj.Config().MeanBurstLen)
	}
}

func TestScaleClamps(t *testing.T) {
	c := Config{OutageProb: 0.4, FlowLossProb: 0.05, Seed: 7, MeanBurstLen: 3}
	s := c.Scale(0)
	if s.OutageProb != 0 || s.FlowLossProb != 0 {
		t.Errorf("Scale(0) must zero probabilities: %+v", s)
	}
	if s.Seed != 7 || s.MeanBurstLen != 3 {
		t.Errorf("Scale must preserve seed and burst length: %+v", s)
	}
	s = c.Scale(5)
	if s.OutageProb != 1 {
		t.Errorf("Scale must clamp at 1, got %v", s.OutageProb)
	}
}

func TestZeroConfigPassesEverything(t *testing.T) {
	inj, err := New(Config{}, 5)
	if err != nil {
		t.Fatal(err)
	}
	var got []netsim.Session
	yield := inj.Wrap(func(s netsim.Session) { got = append(got, s) })
	for m := 0; m < 100; m++ {
		yield(session(2, 1, m*14%netsim.MinutesPerDay, m%5))
	}
	if len(got) != 100 {
		t.Fatalf("zero config must pass all sessions, got %d/100", len(got))
	}
	for i, s := range got {
		if s.Service != i%5 {
			t.Fatalf("session %d relabeled to %d", i, s.Service)
		}
	}
	st := inj.Stats()
	if st.Dropped() != 0 || st.Duplicated != 0 || st.Misclassified != 0 {
		t.Errorf("zero config injected faults: %+v", st)
	}
}

func TestDeterminismAcrossOrderings(t *testing.T) {
	cfg := Config{
		OutageProb: 0.2, TruncatedDayProb: 0.2, FlowLossProb: 0.1,
		FlowDupProb: 0.05, SignalGapProb: 0.05, MisclassProb: 0.05, Seed: 99,
	}
	run := func(cellOrder [][2]int) map[[2]int][]netsim.Session {
		inj, err := New(cfg, 4)
		if err != nil {
			t.Fatal(err)
		}
		out := map[[2]int][]netsim.Session{}
		for _, cell := range cellOrder {
			d := inj.Day(cell[0], cell[1])
			for m := 0; m < 50; m++ {
				d.Apply(session(cell[0], cell[1], m, m%4), func(s netsim.Session) {
					out[cell] = append(out[cell], s)
				})
			}
		}
		return out
	}
	a := run([][2]int{{0, 0}, {0, 1}, {1, 0}, {1, 1}})
	b := run([][2]int{{1, 1}, {0, 1}, {1, 0}, {0, 0}})
	for cell, sa := range a {
		sb := b[cell]
		if len(sa) != len(sb) {
			t.Fatalf("cell %v: %d vs %d sessions across orderings", cell, len(sa), len(sb))
		}
		for i := range sa {
			if sa[i] != sb[i] {
				t.Fatalf("cell %v session %d differs across orderings", cell, i)
			}
		}
	}
}

func TestOutageRate(t *testing.T) {
	inj, err := New(Config{OutageProb: 0.3, Seed: 5}, 3)
	if err != nil {
		t.Fatal(err)
	}
	down := 0
	const cells = 2000
	for bs := 0; bs < cells; bs++ {
		if inj.Day(bs, 0).Down() {
			down++
		}
	}
	rate := float64(down) / cells
	if math.Abs(rate-0.3) > 0.04 {
		t.Errorf("outage rate = %v, want ~0.3", rate)
	}
	if got := inj.Stats().OutageDays; got != int64(down) {
		t.Errorf("OutageDays = %d, counted %d", got, down)
	}
}

func TestDayTruncationDropsTail(t *testing.T) {
	inj, err := New(Config{TruncatedDayProb: 1, Seed: 11}, 3)
	if err != nil {
		t.Fatal(err)
	}
	d := inj.Day(0, 0)
	cut := d.CutoffMinute()
	if cut < 0 || cut >= netsim.MinutesPerDay {
		t.Fatalf("cutoff = %d", cut)
	}
	var kept []int
	for m := 0; m < netsim.MinutesPerDay; m += 10 {
		d.Apply(session(0, 0, m, 0), func(s netsim.Session) { kept = append(kept, s.Minute) })
	}
	for _, m := range kept {
		if m >= cut {
			t.Errorf("minute %d kept past cutoff %d", m, cut)
		}
	}
	if inj.Stats().TruncatedDays != 1 {
		t.Errorf("TruncatedDays = %d", inj.Stats().TruncatedDays)
	}
}

func TestFlowLossAndDuplicationRates(t *testing.T) {
	inj, err := New(Config{FlowLossProb: 0.2, FlowDupProb: 0.1, Seed: 21}, 3)
	if err != nil {
		t.Fatal(err)
	}
	const n = 20000
	emitted := 0
	yield := inj.Wrap(func(netsim.Session) { emitted++ })
	for i := 0; i < n; i++ {
		yield(session(i%7, i%3, i%netsim.MinutesPerDay, i%3))
	}
	st := inj.Stats()
	if lossRate := float64(st.Lost) / n; math.Abs(lossRate-0.2) > 0.02 {
		t.Errorf("loss rate = %v, want ~0.2", lossRate)
	}
	// Duplication applies to the surviving 80%.
	if dupRate := float64(st.Duplicated) / float64(n-int(st.Lost)); math.Abs(dupRate-0.1) > 0.02 {
		t.Errorf("dup rate = %v, want ~0.1", dupRate)
	}
	if int64(emitted) != st.Emitted {
		t.Errorf("emitted %d, stats say %d", emitted, st.Emitted)
	}
	if st.Emitted != st.Observed-st.Dropped()+st.Duplicated {
		t.Errorf("session accounting inconsistent: %+v", st)
	}
}

func TestMisclassificationBursts(t *testing.T) {
	inj, err := New(Config{MisclassProb: 0.05, MeanBurstLen: 6, Seed: 31}, 10)
	if err != nil {
		t.Fatal(err)
	}
	const n = 20000
	relabeled := 0
	d := inj.Day(0, 0)
	for i := 0; i < n; i++ {
		in := session(0, 0, i%netsim.MinutesPerDay, i%10)
		d.Apply(in, func(s netsim.Session) {
			if s.Service != in.Service {
				relabeled++
			}
			if s.Service < 0 || s.Service >= 10 {
				t.Fatalf("remapped service %d out of range", s.Service)
			}
		})
	}
	if int64(relabeled) != inj.Stats().Misclassified {
		t.Errorf("relabeled %d, stats say %d", relabeled, inj.Stats().Misclassified)
	}
	// MisclassProb is the per-record rate: bursts of mean length 6
	// start with probability 0.05/6, so ~5% of records are relabeled.
	rate := float64(relabeled) / n
	if rate < 0.02 || rate > 0.1 {
		t.Errorf("misclassification rate = %v, want ~0.05", rate)
	}
	// The relabelings must actually be bursty: count maximal runs of
	// consecutive relabeled records. With mean burst length 6 there are
	// far fewer runs than relabeled records.
	if runs := countRuns(inj, n); runs > relabeled/2 {
		t.Errorf("%d runs for %d relabelings — not bursty", runs, relabeled)
	}
}

// countRuns replays the same stream on a fresh injector and counts
// maximal runs of consecutive relabeled records.
func countRuns(ref *Injector, n int) int {
	inj, _ := New(ref.Config(), 10)
	d := inj.Day(0, 0)
	runs, inRun := 0, false
	for i := 0; i < n; i++ {
		in := session(0, 0, i%netsim.MinutesPerDay, i%10)
		flipped := false
		d.Apply(in, func(s netsim.Session) { flipped = s.Service != in.Service })
		if flipped && !inRun {
			runs++
		}
		inRun = flipped
	}
	return runs
}

func TestSignalGapDrops(t *testing.T) {
	inj, err := New(Config{SignalGapProb: 0.15, Seed: 41}, 3)
	if err != nil {
		t.Fatal(err)
	}
	const n = 10000
	kept := 0
	yield := inj.Wrap(func(netsim.Session) { kept++ })
	for i := 0; i < n; i++ {
		yield(session(0, 0, i%netsim.MinutesPerDay, 0))
	}
	st := inj.Stats()
	if rate := float64(st.Unreferenced) / n; math.Abs(rate-0.15) > 0.02 {
		t.Errorf("unreferenced rate = %v, want ~0.15", rate)
	}
	if kept+int(st.Unreferenced) != n {
		t.Errorf("kept %d + unreferenced %d != %d", kept, st.Unreferenced, n)
	}
}
