package obs

import (
	"sync"
	"testing"
)

func TestNilSafety(t *testing.T) {
	var r *Registry
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x", nil) != nil {
		t.Fatal("nil registry must hand out nil handles")
	}
	if r.StartSpan("x") != nil {
		t.Fatal("nil registry must hand out nil spans")
	}
	if got := r.Snapshot(); got != nil {
		t.Fatalf("nil registry snapshot = %v", got)
	}
	// Every hot-path method must be a no-op on nil handles.
	var c *Counter
	c.Add(3)
	c.Inc()
	if c.Value() != 0 {
		t.Fatal("nil counter value")
	}
	var g *Gauge
	g.Set(1)
	g.Add(2)
	if g.Value() != 0 {
		t.Fatal("nil gauge value")
	}
	var h *Histogram
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram stats")
	}
	var s *Span
	s.End()
	s.SetTID(1)
	if s.Child("y") != nil {
		t.Fatal("nil span child")
	}
}

func TestCounterMemoization(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("reqs", "service", "Netflix")
	b := r.Counter("reqs", "service", "Netflix")
	if a != b {
		t.Fatal("same name+labels must return the same counter")
	}
	if c := r.Counter("reqs", "service", "Twitch"); c == a {
		t.Fatal("different labels must return a different counter")
	}
	a.Add(2)
	b.Inc()
	if got := a.Value(); got != 3 {
		t.Fatalf("counter value = %d, want 3", got)
	}
}

func TestConcurrentCounterExactness(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits")
	const workers, perWorker = 16, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("lost increments: got %d, want %d", got, workers*perWorker)
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("emd", "service", "Netflix")
	g.Set(0.25)
	if got := g.Value(); got != 0.25 {
		t.Fatalf("gauge = %v", got)
	}
	g.Add(0.75)
	if got := g.Value(); got != 1.0 {
		t.Fatalf("gauge after add = %v", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("iters", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 2, 50, 1000} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() != 1053.5 {
		t.Fatalf("sum = %v", h.Sum())
	}
	var m Metric
	for _, s := range r.Snapshot() {
		if s.Name == "iters" {
			m = s
		}
	}
	// v <= 1: {0.5, 1}; 1 < v <= 10: {2}; 10 < v <= 100: {50}; +Inf: {1000}.
	want := []int64{2, 1, 1, 1}
	for i, b := range m.Buckets {
		if b != want[i] {
			t.Fatalf("buckets = %v, want %v", m.Buckets, want)
		}
	}
}

func TestSnapshotDeterministicOrder(t *testing.T) {
	r := NewRegistry()
	r.Counter("b").Inc()
	r.Counter("a", "k", "2").Inc()
	r.Counter("a", "k", "1").Inc()
	r.Gauge("a", "k", "0").Set(1)
	snap := r.Snapshot()
	for i := 1; i < len(snap); i++ {
		prev, cur := snap[i-1], snap[i]
		if prev.Name > cur.Name ||
			(prev.Name == cur.Name && labelKey(prev.Labels) > labelKey(cur.Labels)) {
			t.Fatalf("snapshot out of order at %d: %+v before %+v", i, prev, cur)
		}
	}
}

func TestDefaultRegistrySwap(t *testing.T) {
	old := Default()
	defer SetDefault(old)

	SetDefault(nil)
	if Enabled() {
		t.Fatal("expected disabled default")
	}
	if CounterOf("x") != nil || GaugeOf("x") != nil ||
		HistogramOf("x", nil) != nil || StartSpan("x") != nil {
		t.Fatal("disabled default must hand out nil handles")
	}

	r := NewRegistry()
	SetDefault(r)
	CounterOf("x").Inc()
	if got := r.Counter("x").Value(); got != 1 {
		t.Fatalf("default-routed counter = %d", got)
	}
}

func BenchmarkCounterAddDisabled(b *testing.B) {
	var c *Counter
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkCounterAddEnabled(b *testing.B) {
	c := NewRegistry().Counter("bench")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Add(1)
		}
	})
}
