package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// StageSecondsMetric is the histogram family every finished span
// reports its duration to, labeled by stage name — the
// `pipeline_stage_seconds{stage=...}` series of the exposition.
const StageSecondsMetric = "pipeline_stage_seconds"

// SpanRecord is one finished timed region.
type SpanRecord struct {
	ID     int64    `json:"id"`
	Parent int64    `json:"parent,omitempty"` // 0 = root
	Name   string   `json:"name"`
	Labels []string `json:"labels,omitempty"`
	// TID is the track the span renders on in a Chrome trace (0 =
	// main pipeline; workers use 1+worker).
	TID int `json:"tid"`
	// Start is the offset from registry creation; Dur the duration.
	Start time.Duration `json:"start_ns"`
	Dur   time.Duration `json:"dur_ns"`
}

// Span is an open timed region. Spans nest: children started from a
// span inherit its track and record it as parent, and the Chrome
// trace viewer nests spans on the same track by time containment. A
// nil *Span (instrumentation disabled) is inert.
type Span struct {
	r      *Registry
	id     int64
	parent int64
	name   string
	labels []string
	tid    int
	start  time.Time
}

// StartSpan opens a root timed region. Returns nil on a nil registry.
func (r *Registry) StartSpan(name string, labels ...string) *Span {
	if r == nil {
		return nil
	}
	return &Span{
		r: r, id: r.nextSpan.Add(1), name: name,
		labels: labels, start: time.Now(),
	}
}

// Child opens a nested region under s. Safe on nil (returns nil).
func (s *Span) Child(name string, labels ...string) *Span {
	if s == nil {
		return nil
	}
	c := s.r.StartSpan(name, labels...)
	c.parent = s.id
	c.tid = s.tid
	return c
}

// SetTID assigns the span to a render track (e.g. one per collection
// worker). Safe on nil.
func (s *Span) SetTID(tid int) {
	if s != nil {
		s.tid = tid
	}
}

// End closes the region, appending it to the registry's span log and
// observing its duration on pipeline_stage_seconds{stage=name}. Safe
// on nil and idempotent only in the sense that calling it on a nil
// span does nothing.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := time.Now()
	rec := SpanRecord{
		ID: s.id, Parent: s.parent, Name: s.name, Labels: s.labels, TID: s.tid,
		Start: s.start.Sub(s.r.start), Dur: now.Sub(s.start),
	}
	s.r.spanMu.Lock()
	s.r.spans = append(s.r.spans, rec)
	s.r.spanMu.Unlock()
	s.r.Histogram(StageSecondsMetric, DefBucketsSeconds, "stage", s.name).
		Observe(rec.Dur.Seconds())
}

// SpanRecords returns a copy of the finished spans, ordered by start
// time. Nil registries return nothing.
func (r *Registry) SpanRecords() []SpanRecord {
	if r == nil {
		return nil
	}
	r.spanMu.Lock()
	out := append([]SpanRecord(nil), r.spans...)
	r.spanMu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// WriteSpanJSON writes the finished spans as a JSON array.
func (r *Registry) WriteSpanJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.SpanRecords())
}

// WriteTraceEvents writes the finished spans in Chrome trace_event
// format (load into chrome://tracing or Perfetto): one complete ("X")
// event per span with microsecond timestamps, tracks mapped to tids.
func (r *Registry) WriteTraceEvents(w io.Writer) error {
	type traceEvent struct {
		Name string            `json:"name"`
		Ph   string            `json:"ph"`
		TS   float64           `json:"ts"`  // microseconds
		Dur  float64           `json:"dur"` // microseconds
		PID  int               `json:"pid"`
		TID  int               `json:"tid"`
		Args map[string]string `json:"args,omitempty"`
	}
	events := make([]traceEvent, 0, 16)
	for _, s := range r.SpanRecords() {
		ev := traceEvent{
			Name: s.Name, Ph: "X",
			TS:  float64(s.Start) / 1e3,
			Dur: float64(s.Dur) / 1e3,
			PID: 1, TID: s.TID,
		}
		for i := 0; i+1 < len(s.Labels); i += 2 {
			if ev.Args == nil {
				ev.Args = make(map[string]string)
			}
			ev.Args[s.Labels[i]] = s.Labels[i+1]
		}
		events = append(events, ev)
	}
	return json.NewEncoder(w).Encode(struct {
		TraceEvents []traceEvent `json:"traceEvents"`
	}{events})
}

// SpanTotal aggregates the spans of one stage name.
type SpanTotal struct {
	Name  string
	Count int
	Total time.Duration
}

// SummarizeSpans aggregates a span slice by stage name, ordered by
// descending total duration — the digest the -v experiment driver
// prints per subcommand.
func SummarizeSpans(spans []SpanRecord) []SpanTotal {
	idx := map[string]int{}
	var out []SpanTotal
	for _, s := range spans {
		i, ok := idx[s.Name]
		if !ok {
			i = len(out)
			idx[s.Name] = i
			out = append(out, SpanTotal{Name: s.Name})
		}
		out[i].Count++
		out[i].Total += s.Dur
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Total > out[j].Total })
	return out
}

// FormatSpanTotals renders span totals as a one-line digest like
// "collect 1x801ms, fit/volume 31x210ms".
func FormatSpanTotals(totals []SpanTotal) string {
	if len(totals) == 0 {
		return "none"
	}
	parts := make([]string, len(totals))
	for i, t := range totals {
		parts[i] = fmt.Sprintf("%s %dx%s", t.Name, t.Count, t.Total.Round(time.Millisecond))
	}
	out := parts[0]
	for _, p := range parts[1:] {
		out += ", " + p
	}
	return out
}
