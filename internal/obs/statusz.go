package obs

import (
	"encoding/json"
	"fmt"
	"html"
	"io"
	"net/http"
	"strconv"
	"time"
)

// /statusz and /events: the live run-telemetry endpoints. /metrics is
// what a scraper ingests; /statusz is what a human (or the CI
// invariant check) reads during a long campaign — per-unit shard
// states, completion fraction, rate-windowed ETA, heartbeat ages, and
// the tail of the flight recorder, as HTML by default and as one JSON
// document with ?format=json.

// Status is the /statusz?format=json document.
type Status struct {
	UptimeS  float64          `json:"uptime_s"`
	Progress []ProgressStatus `json:"progress"`
	// Events is the flight-recorder tail (most recent last). EventsRetained
	// and EventsCapacity describe the ring itself.
	Events         []Event `json:"events"`
	EventsRetained int     `json:"events_retained"`
	EventsCapacity int     `json:"events_capacity"`
}

// statusEventsTail bounds the flight-recorder tail embedded in a
// /statusz document; /events serves the full ring.
const statusEventsTail = 64

// Status assembles the live status document.
func (r *Registry) Status() Status {
	st := Status{Progress: []ProgressStatus{}, Events: []Event{}}
	if r == nil {
		return st
	}
	st.UptimeS = time.Since(r.start).Seconds()
	if p := r.ProgressStatuses(); p != nil {
		st.Progress = p
	}
	if ev := r.Events().Tail(statusEventsTail); ev != nil {
		st.Events = ev
	}
	st.EventsRetained = r.Events().Len()
	st.EventsCapacity = r.Events().Capacity()
	return st
}

// WriteStatusJSON writes the /statusz JSON document.
func (r *Registry) WriteStatusJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Status())
}

// WriteStatusHTML renders the status document as a self-contained
// HTML page.
func (r *Registry) WriteStatusHTML(w io.Writer) error {
	st := r.Status()
	var err error
	p := func(format string, args ...interface{}) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	p(`<!DOCTYPE html><html><head><title>statusz</title><style>
body{font-family:monospace;margin:1.5em}
table{border-collapse:collapse;margin:0.5em 0}
td,th{border:1px solid #999;padding:2px 8px;text-align:left}
.done{color:#060}.failed{color:#a00}.running{color:#06c}.pending{color:#888}
.bar{display:inline-block;height:0.8em;background:#06c}
</style></head><body>`)
	p("<h1>statusz</h1><p>uptime %.1fs &middot; <a href=\"?format=json\">json</a> &middot; <a href=\"/events\">events</a> &middot; <a href=\"/metrics\">metrics</a></p>\n", st.UptimeS)
	for _, pr := range st.Progress {
		p("<h2>%s</h2>", html.EscapeString(pr.Name))
		p(`<p><span class="bar" style="width:%.0fpx"></span> %.1f%% (%d/%d done`,
			200*pr.Fraction, 100*pr.Fraction, pr.Done, pr.Total)
		if pr.Failed > 0 {
			p(`, <span class="failed">%d failed</span>`, pr.Failed)
		}
		p(", %d running, %d pending)", pr.Running, pr.Pending)
		if pr.RateHz > 0 {
			p(" &middot; %.2f/s", pr.RateHz)
		}
		if pr.ETAS >= 0 {
			p(" &middot; ETA %s", (time.Duration(pr.ETAS * float64(time.Second))).Round(time.Second))
		}
		p("</p>\n<table><tr><th>unit</th><th>state</th><th>attempts</th><th>heartbeat age</th><th>run</th><th>detail</th></tr>\n")
		for _, u := range pr.Units {
			beat := "&mdash;"
			if u.HeartbeatAgeS >= 0 {
				beat = fmt.Sprintf("%.1fs", u.HeartbeatAgeS)
			}
			p(`<tr><td>%d</td><td class="%s">%s</td><td>%d</td><td>%s</td><td>%.1fs</td><td>%s</td></tr>`+"\n",
				u.Unit, u.State, u.State, u.Attempts, beat, u.RunS, html.EscapeString(u.Detail))
		}
		p("</table>\n")
	}
	if len(st.Progress) == 0 {
		p("<p>no progress trackers registered</p>\n")
	}
	p("<h2>recent events</h2><p>%d retained of %d capacity</p>\n", st.EventsRetained, st.EventsCapacity)
	p("<table><tr><th>seq</th><th>time</th><th>kind</th><th>shard</th><th>attempt</th><th>detail</th></tr>\n")
	for i := len(st.Events) - 1; i >= 0; i-- {
		ev := st.Events[i]
		p("<tr><td>%d</td><td>%s</td><td>%s</td><td>%d</td><td>%d</td><td>%s</td></tr>\n",
			ev.Seq, time.Unix(0, ev.WallNs).Format("15:04:05.000"),
			html.EscapeString(ev.Kind), ev.Shard, ev.Attempt, html.EscapeString(ev.Detail))
	}
	p("</table></body></html>\n")
	return err
}

// handleStatusz serves /statusz (HTML, or JSON with ?format=json).
func (r *Registry) handleStatusz(w http.ResponseWriter, req *http.Request) {
	if req.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		_ = r.WriteStatusJSON(w)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_ = r.WriteStatusHTML(w)
}

// handleEvents serves /events: the flight-recorder tail as a JSON
// array, most recent last. ?n= bounds the tail (default: everything
// retained).
func (r *Registry) handleEvents(w http.ResponseWriter, req *http.Request) {
	n := 0
	if s := req.URL.Query().Get("n"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 0 {
			http.Error(w, "events: bad n", http.StatusBadRequest)
			return
		}
		n = v
	}
	w.Header().Set("Content-Type", "application/json")
	_ = r.Events().WriteJSON(w, n)
}
