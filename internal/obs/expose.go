package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
)

// WritePrometheus writes every metric in the Prometheus text
// exposition format (version 0.0.4). Counters and gauges emit one
// sample; histograms emit cumulative _bucket series plus _sum and
// _count, matching what a Prometheus scraper expects. Output is
// deterministic (sorted by name, then label set).
func (r *Registry) WritePrometheus(w io.Writer) error {
	lastFamily := ""
	for _, m := range r.Snapshot() {
		if m.Name != lastFamily {
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.Name, m.Type); err != nil {
				return err
			}
			lastFamily = m.Name
		}
		var err error
		switch m.Type {
		case "histogram":
			cum := int64(0)
			for i, b := range m.Buckets {
				cum += b
				le := "+Inf"
				if i < len(m.Bounds) {
					le = formatFloat(m.Bounds[i])
				}
				_, err = fmt.Fprintf(w, "%s_bucket%s %d\n",
					m.Name, promLabels(m.Labels, "le", le), cum)
				if err != nil {
					return err
				}
			}
			if _, err = fmt.Fprintf(w, "%s_sum%s %s\n", m.Name,
				promLabels(m.Labels), formatFloat(m.Sum)); err != nil {
				return err
			}
			_, err = fmt.Fprintf(w, "%s_count%s %d\n", m.Name, promLabels(m.Labels), m.Count)
		default:
			_, err = fmt.Fprintf(w, "%s%s %s\n", m.Name, promLabels(m.Labels), formatFloat(m.Value))
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promLabels renders a label set as {k="v",...}; extra pairs (e.g.
// le) are appended after the metric's own labels. Returns "" for an
// empty set.
func promLabels(labels []string, extra ...string) string {
	all := make([]string, 0, len(labels)+len(extra))
	all = append(all, labels...)
	all = append(all, extra...)
	if len(all) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i+1 < len(all); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		// %q escapes quotes, backslashes and newlines exactly as the
		// Prometheus text format requires.
		fmt.Fprintf(&b, "%s=%q", all[i], all[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

// WriteJSON writes the full registry snapshot (metrics + spans) as
// one JSON document.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Metrics []Metric     `json:"metrics"`
		Spans   []SpanRecord `json:"spans"`
	}{r.Snapshot(), r.SpanRecords()})
}

// Handler returns the observability mux of the registry:
//
//	/metrics          Prometheus text format
//	/metrics.json     JSON snapshot (metrics + spans)
//	/statusz          live run status: progress trackers + event tail
//	                  (HTML; ?format=json for the machine-readable view)
//	/events           flight-recorder tail as JSON (?n= bounds it)
//	/spans            span log as JSON
//	/trace            Chrome trace_event export of the span log
//	/debug/pprof/*    the standard Go profiling endpoints
//	/debug/vars       expvar
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/statusz", r.handleStatusz)
	mux.HandleFunc("/events", r.handleEvents)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = r.WriteJSON(w)
	})
	mux.HandleFunc("/spans", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = r.WriteSpanJSON(w)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = r.WriteTraceEvents(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	return mux
}

// Serve installs the registry's Handler on addr and serves it on a
// background goroutine. It returns after the listener is bound (so a
// scrape can follow immediately) with the bound address — useful with
// ":0" — or an error if the address cannot be bound.
func Serve(addr string, r *Registry) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: r.Handler()}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), nil
}
