package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestSpanNestingAndStageHistogram(t *testing.T) {
	r := NewRegistry()
	root := r.StartSpan("collect")
	child := root.Child("collect/worker", "worker", "3")
	child.SetTID(4)
	time.Sleep(time.Millisecond)
	child.End()
	root.End()

	spans := r.SpanRecords()
	if len(spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(spans))
	}
	// Ordered by start: root first.
	if spans[0].Name != "collect" || spans[1].Name != "collect/worker" {
		t.Fatalf("span order: %q, %q", spans[0].Name, spans[1].Name)
	}
	if spans[1].Parent != spans[0].ID {
		t.Fatalf("child parent = %d, want %d", spans[1].Parent, spans[0].ID)
	}
	if spans[1].TID != 4 {
		t.Fatalf("child tid = %d", spans[1].TID)
	}
	if spans[0].Dur < spans[1].Dur {
		t.Fatal("root span shorter than its child")
	}
	// Every End observes pipeline_stage_seconds{stage=...}.
	if got := r.Histogram(StageSecondsMetric, nil, "stage", "collect").Count(); got != 1 {
		t.Fatalf("stage histogram count = %d", got)
	}
}

func TestWriteTraceEvents(t *testing.T) {
	r := NewRegistry()
	s := r.StartSpan("fit/volume", "service", "Netflix")
	time.Sleep(time.Millisecond)
	s.End()

	var buf bytes.Buffer
	if err := r.WriteTraceEvents(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Dur  float64           `json:"dur"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace export is not JSON: %v", err)
	}
	if len(doc.TraceEvents) != 1 {
		t.Fatalf("events = %d", len(doc.TraceEvents))
	}
	ev := doc.TraceEvents[0]
	if ev.Name != "fit/volume" || ev.Ph != "X" || ev.Dur <= 0 {
		t.Fatalf("bad event: %+v", ev)
	}
	if ev.Args["service"] != "Netflix" {
		t.Fatalf("label lost: %+v", ev.Args)
	}
}

// TestWriteTraceEventsNestingAndOrder pins the Chrome export contract
// for nested spans: children keep their parent's track so the viewer
// nests them by time containment, events come out ordered by start
// time regardless of End order, and a repeated export is
// byte-identical (the span log is immutable once written).
func TestWriteTraceEventsNestingAndOrder(t *testing.T) {
	r := NewRegistry()
	root := r.StartSpan("campaign")
	worker := root.Child("campaign/shard", "shard", "0")
	worker.SetTID(3)
	grand := worker.Child("campaign/shard/fit")
	time.Sleep(time.Millisecond)
	// End out of start order: root first, then the leaf, then the middle.
	root.End()
	grand.End()
	worker.End()

	var buf bytes.Buffer
	if err := r.WriteTraceEvents(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			TID  int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.TraceEvents) != 3 {
		t.Fatalf("events = %d", len(doc.TraceEvents))
	}
	// Deterministic ordering: ascending start time, not End order.
	wantNames := []string{"campaign", "campaign/shard", "campaign/shard/fit"}
	for i, ev := range doc.TraceEvents {
		if ev.Name != wantNames[i] {
			t.Fatalf("event %d = %q, want %q (ordered by start)", i, ev.Name, wantNames[i])
		}
		if i > 0 && ev.TS < doc.TraceEvents[i-1].TS {
			t.Fatalf("timestamps not ascending: %v then %v", doc.TraceEvents[i-1].TS, ev.TS)
		}
	}
	// The grandchild inherits the worker's reassigned track.
	if doc.TraceEvents[2].TID != 3 {
		t.Fatalf("grandchild tid = %d, want inherited 3", doc.TraceEvents[2].TID)
	}

	// Re-export: byte-identical.
	var buf2 bytes.Buffer
	if err := r.WriteTraceEvents(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("repeated Chrome export diverged")
	}
}

func TestWriteSpanJSON(t *testing.T) {
	r := NewRegistry()
	r.StartSpan("validate").End()
	var buf bytes.Buffer
	if err := r.WriteSpanJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var spans []SpanRecord
	if err := json.Unmarshal(buf.Bytes(), &spans); err != nil {
		t.Fatal(err)
	}
	if len(spans) != 1 || spans[0].Name != "validate" {
		t.Fatalf("spans = %+v", spans)
	}
}

func TestSummarizeSpans(t *testing.T) {
	spans := []SpanRecord{
		{Name: "fit", Dur: 10 * time.Millisecond},
		{Name: "collect", Dur: 100 * time.Millisecond},
		{Name: "fit", Dur: 30 * time.Millisecond},
	}
	totals := SummarizeSpans(spans)
	if len(totals) != 2 {
		t.Fatalf("totals = %+v", totals)
	}
	if totals[0].Name != "collect" {
		t.Fatalf("expected collect first (largest total), got %q", totals[0].Name)
	}
	if totals[1].Count != 2 || totals[1].Total != 40*time.Millisecond {
		t.Fatalf("fit total = %+v", totals[1])
	}
	line := FormatSpanTotals(totals)
	if !strings.Contains(line, "collect 1x") || !strings.Contains(line, "fit 2x") {
		t.Fatalf("digest = %q", line)
	}
	if FormatSpanTotals(nil) != "none" {
		t.Fatal("empty digest")
	}
}
