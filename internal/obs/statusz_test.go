package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// statusRegistry builds a registry with one mid-flight tracker and a
// few flight-recorder events.
func statusRegistry() *Registry {
	r := NewRegistry()
	p := NewProgress("campaign_shards", 3)
	p.Start(0)
	p.Done(0)
	p.Start(1)
	r.TrackProgress(p)
	r.Events().Record(Event{Kind: EventShardStart, Shard: 0, Attempt: 1})
	r.Events().Record(Event{Kind: EventCheckpoint, Shard: 0, Attempt: 1, Detail: "shard-0000.ckpt"})
	r.Events().Record(Event{Kind: EventShardStart, Shard: 1, Attempt: 1, Detail: "<detail&>"})
	return r
}

func TestStatusDocument(t *testing.T) {
	st := statusRegistry().Status()
	if len(st.Progress) != 1 {
		t.Fatalf("progress = %+v", st.Progress)
	}
	pr := st.Progress[0]
	if pr.Name != "campaign_shards" || pr.Done != 1 || pr.Running != 1 || pr.Pending != 1 {
		t.Fatalf("tracker = %+v", pr)
	}
	if len(st.Events) != 3 || st.EventsRetained != 3 {
		t.Fatalf("events = %d retained = %d", len(st.Events), st.EventsRetained)
	}
	if st.EventsCapacity != DefaultRecorderCapacity {
		t.Fatalf("capacity = %d", st.EventsCapacity)
	}

	// A nil registry yields an empty document, not nils.
	var nilReg *Registry
	empty := nilReg.Status()
	if empty.Progress == nil || empty.Events == nil {
		t.Fatalf("nil registry status = %+v", empty)
	}
}

func TestStatuszEndpoints(t *testing.T) {
	srv := httptest.NewServer(statusRegistry().Handler())
	defer srv.Close()

	fetch := func(path string) (*http.Response, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp, string(body)
	}

	// HTML view: progress table, event tail, escaped details.
	resp, body := fetch("/statusz")
	if resp.StatusCode != 200 || !strings.Contains(resp.Header.Get("Content-Type"), "text/html") {
		t.Fatalf("/statusz: code=%d type=%q", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	for _, want := range []string{"campaign_shards", "33.3%", "shard-0000.ckpt", "&lt;detail&amp;&gt;"} {
		if !strings.Contains(body, want) {
			t.Errorf("/statusz HTML missing %q", want)
		}
	}
	if strings.Contains(body, "<detail&>") {
		t.Error("/statusz HTML does not escape event details")
	}

	// JSON view: the machine-readable document CI scrapes.
	resp, body = fetch("/statusz?format=json")
	if resp.StatusCode != 200 || !strings.Contains(resp.Header.Get("Content-Type"), "application/json") {
		t.Fatalf("/statusz?format=json: code=%d type=%q", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	var doc Status
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("statusz JSON: %v", err)
	}
	if len(doc.Progress) != 1 || doc.Progress[0].Done != 1 {
		t.Fatalf("statusz JSON progress = %+v", doc.Progress)
	}
	if len(doc.Events) != 3 {
		t.Fatalf("statusz JSON events = %d", len(doc.Events))
	}

	// /events: full tail, then bounded.
	_, body = fetch("/events")
	var events []Event
	if err := json.Unmarshal([]byte(body), &events); err != nil {
		t.Fatalf("events JSON: %v", err)
	}
	if len(events) != 3 || events[0].Kind != EventShardStart || events[1].Kind != EventCheckpoint {
		t.Fatalf("events = %+v", events)
	}
	_, body = fetch("/events?n=1")
	events = nil
	if err := json.Unmarshal([]byte(body), &events); err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Shard != 1 {
		t.Fatalf("bounded events = %+v", events)
	}
	if resp, _ := fetch("/events?n=bogus"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad n: code=%d", resp.StatusCode)
	}
}
