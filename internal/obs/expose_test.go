package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func exampleRegistry() *Registry {
	r := NewRegistry()
	r.Counter("probe_flows_tracked_total", "service", "Netflix").Add(7)
	r.Counter("fit_fallbacks_total").Add(2)
	r.Gauge("fit_volume_emd", "service", "Netflix").Set(0.31)
	h := r.Histogram("fit_lm_iterations", DefBucketsCount)
	h.Observe(3)
	h.Observe(42)
	s := r.StartSpan("collect")
	s.End()
	return r
}

func TestWritePrometheus(t *testing.T) {
	var buf bytes.Buffer
	if err := exampleRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE probe_flows_tracked_total counter",
		`probe_flows_tracked_total{service="Netflix"} 7`,
		"fit_fallbacks_total 2",
		`fit_volume_emd{service="Netflix"} 0.31`,
		"# TYPE fit_lm_iterations histogram",
		`fit_lm_iterations_bucket{le="5"} 1`,
		`fit_lm_iterations_bucket{le="50"} 2`,
		`fit_lm_iterations_bucket{le="+Inf"} 2`,
		"fit_lm_iterations_sum 45",
		"fit_lm_iterations_count 2",
		"pipeline_stage_seconds_bucket",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// Deterministic: a second write renders byte-identical output.
	var buf2 bytes.Buffer
	if err := exampleRegistry().WritePrometheus(&buf2); err != nil {
		t.Fatal(err)
	}
	// Histogram sums aside (spans time real sleeps), the counter/gauge
	// lines must agree.
	if !strings.Contains(buf2.String(), `probe_flows_tracked_total{service="Netflix"} 7`) {
		t.Error("second render diverged")
	}
}

func TestWriteJSONSnapshot(t *testing.T) {
	var buf bytes.Buffer
	if err := exampleRegistry().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Metrics []Metric     `json:"metrics"`
		Spans   []SpanRecord `json:"spans"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Metrics) == 0 || len(doc.Spans) != 1 {
		t.Fatalf("metrics=%d spans=%d", len(doc.Metrics), len(doc.Spans))
	}
}

func TestHandlerEndpoints(t *testing.T) {
	srv := httptest.NewServer(exampleRegistry().Handler())
	defer srv.Close()

	fetch := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := fetch("/metrics"); code != 200 ||
		!strings.Contains(body, "probe_flows_tracked_total") {
		t.Fatalf("/metrics: code=%d body=%q", code, body)
	}
	if code, body := fetch("/metrics.json"); code != 200 || !strings.Contains(body, `"metrics"`) {
		t.Fatalf("/metrics.json: code=%d body=%q", code, body)
	}
	if code, body := fetch("/trace"); code != 200 || !strings.Contains(body, `"traceEvents"`) {
		t.Fatalf("/trace: code=%d body=%q", code, body)
	}
	if code, _ := fetch("/spans"); code != 200 {
		t.Fatalf("/spans: code=%d", code)
	}
	if code, body := fetch("/debug/pprof/cmdline"); code != 200 || body == "" {
		t.Fatalf("/debug/pprof/cmdline: code=%d", code)
	}
	if code, body := fetch("/debug/vars"); code != 200 || !strings.Contains(body, "memstats") {
		t.Fatalf("/debug/vars: code=%d", code)
	}
}

func TestServe(t *testing.T) {
	addr, err := Serve("127.0.0.1:0", exampleRegistry())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", addr))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "fit_fallbacks_total") {
		t.Fatalf("served metrics missing counter: %q", body)
	}
}

func TestPromLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("c", "k", "a\"b\\c\nd").Inc()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "\n\"") {
		t.Fatalf("unescaped newline in label: %q", buf.String())
	}
}
