// Package obs is the dependency-free instrumentation layer of the
// measurement→fitting pipeline. It provides three things:
//
//   - a metrics registry of atomic counters, gauges and fixed-bucket
//     histograms with label support, striped so the parallel
//     collector's workers do not contend on a shared cache line;
//   - stage spans — nestable timed regions covering simulate, collect,
//     aggregate, fit and validate — exportable as JSON and as Chrome
//     trace_event format;
//   - exposition: a Prometheus text-format writer, a JSON snapshot,
//     and an HTTP handler serving /metrics, /debug/pprof/* and expvar.
//
// Instrumentation is off by default: the package-level default
// registry starts nil, every handle obtained through it is nil, and
// every method on a nil handle is a single pointer check. Hot paths
// therefore instrument unconditionally and pay ~zero cost until a
// binary opts in with SetDefault (e.g. behind a -metrics-addr flag).
//
// Handles are resolved once at construction time of the instrumented
// component (a simulator, a collector, an injector): callers cache
// the *Counter / *Gauge / *Histogram and increment it directly, so
// the per-event cost is one striped atomic add and never a map
// lookup. Components built before SetDefault keep their nil handles —
// enable the registry before constructing the pipeline.
package obs

import "sync/atomic"

// defaultReg holds the process-wide registry; nil means disabled.
var defaultReg atomic.Pointer[Registry]

// Default returns the process-wide registry, or nil when
// instrumentation is disabled.
func Default() *Registry { return defaultReg.Load() }

// SetDefault installs r as the process-wide registry (nil disables
// instrumentation for components constructed afterwards).
func SetDefault(r *Registry) { defaultReg.Store(r) }

// Enabled reports whether a process-wide registry is installed.
func Enabled() bool { return Default() != nil }

// CounterOf returns the named counter of the default registry (nil —
// a no-op handle — when instrumentation is disabled). Labels are
// alternating key, value pairs.
func CounterOf(name string, labels ...string) *Counter {
	return Default().Counter(name, labels...)
}

// GaugeOf returns the named gauge of the default registry (nil when
// instrumentation is disabled).
func GaugeOf(name string, labels ...string) *Gauge {
	return Default().Gauge(name, labels...)
}

// HistogramOf returns the named histogram of the default registry
// with the given bucket upper bounds (nil when disabled). The bounds
// of the first caller win; later callers share the same histogram.
func HistogramOf(name string, bounds []float64, labels ...string) *Histogram {
	return Default().Histogram(name, bounds, labels...)
}

// StartSpan opens a timed region on the default registry. The
// returned span is nil — and End a no-op — when instrumentation is
// disabled.
func StartSpan(name string, labels ...string) *Span {
	return Default().StartSpan(name, labels...)
}
