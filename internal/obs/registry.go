package obs

import (
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// metricKey uniquely identifies one metric instance: its family name
// plus its serialized label set.
type metricKey struct {
	name   string
	labels string // "k\x00v\x00k\x00v", pairs in caller order
}

func labelKey(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	return strings.Join(labels, "\x00")
}

// Registry holds every metric instance and the span log of one
// process. The zero value is not usable; call NewRegistry. A nil
// *Registry is the disabled state: every method is a no-op returning
// nil handles.
type Registry struct {
	start time.Time

	mu       sync.RWMutex
	counters map[metricKey]*Counter
	gauges   map[metricKey]*Gauge
	hists    map[metricKey]*Histogram

	spanMu   sync.Mutex
	spans    []SpanRecord
	nextSpan atomic.Int64

	recorder   *Recorder
	progressMu sync.Mutex
	progress   map[string]*Progress
}

// NewRegistry returns an empty, enabled registry.
func NewRegistry() *Registry {
	return &Registry{
		start:    time.Now(),
		counters: make(map[metricKey]*Counter),
		gauges:   make(map[metricKey]*Gauge),
		hists:    make(map[metricKey]*Histogram),
		recorder: NewRecorder(DefaultRecorderCapacity),
	}
}

// Counter returns (creating on first use) the counter of the given
// family name and label pairs. Returns nil on a nil registry.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	key := metricKey{name, labelKey(labels)}
	r.mu.RLock()
	c, ok := r.counters[key]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[key]; ok {
		return c
	}
	c = &Counter{name: name, labels: append([]string(nil), labels...)}
	c.stripes = make([]stripe, stripeCount)
	r.counters[key] = c
	return c
}

// Gauge returns (creating on first use) the gauge of the given family
// name and label pairs. Returns nil on a nil registry.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	key := metricKey{name, labelKey(labels)}
	r.mu.RLock()
	g, ok := r.gauges[key]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[key]; ok {
		return g
	}
	g = &Gauge{name: name, labels: append([]string(nil), labels...)}
	r.gauges[key] = g
	return g
}

// DefBucketsSeconds is the default histogram grid for stage
// durations: 1 ms .. ~100 s, roughly logarithmic.
var DefBucketsSeconds = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100,
}

// DefBucketsCount is the default histogram grid for small counts
// (e.g. LM iterations).
var DefBucketsCount = []float64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000}

// Histogram returns (creating on first use) the fixed-bucket
// histogram of the given family name and label pairs. bounds are the
// inclusive bucket upper bounds in increasing order; nil takes
// DefBucketsSeconds. The bounds of the first caller win. Returns nil
// on a nil registry.
func (r *Registry) Histogram(name string, bounds []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	key := metricKey{name, labelKey(labels)}
	r.mu.RLock()
	h, ok := r.hists[key]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.hists[key]; ok {
		return h
	}
	if bounds == nil {
		bounds = DefBucketsSeconds
	}
	h = &Histogram{
		name:    name,
		labels:  append([]string(nil), labels...),
		bounds:  append([]float64(nil), bounds...),
		buckets: make([]atomic.Int64, len(bounds)+1), // +1: overflow (+Inf)
	}
	r.hists[key] = h
	return h
}

// --- striped counters -------------------------------------------------

// stripe is one cache-line-padded accumulator of a striped counter.
type stripe struct {
	v atomic.Int64
	_ [56]byte // pad to 64 bytes against false sharing
}

// stripeCount is the number of stripes per counter, a power of two
// sized to the available parallelism.
var stripeCount = func() int {
	n := 1
	for n < runtime.GOMAXPROCS(0) && n < 64 {
		n <<= 1
	}
	return n
}()

// stripeHint hands out small integers that are stable per P:
// sync.Pool keeps its free lists per scheduler P, so a worker
// goroutine keeps drawing the same hint while it stays on its P and
// concurrent workers draw different ones — exactly the distribution a
// striped counter wants, with no unsafe tricks.
var (
	hintSeq  atomic.Int64
	hintPool = sync.Pool{New: func() interface{} {
		h := int(hintSeq.Add(1)) & (stripeCount - 1)
		return &h
	}}
)

func stripeHint() int {
	p := hintPool.Get().(*int)
	h := *p
	hintPool.Put(p)
	return h
}

// Counter is a monotonically increasing striped atomic counter. All
// methods are safe on a nil receiver (the disabled state) and for
// concurrent use.
type Counter struct {
	name    string
	labels  []string
	stripes []stripe
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.stripes[stripeHint()].v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the counter's current total (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	var sum int64
	for i := range c.stripes {
		sum += c.stripes[i].v.Load()
	}
	return sum
}

// Gauge is a last-value-wins float64 metric. All methods are safe on
// a nil receiver and for concurrent use.
type Gauge struct {
	name   string
	labels []string
	bits   atomic.Uint64
}

// Set stores v as the gauge's current value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add atomically adds d to the gauge.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the gauge's current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets (Prometheus
// cumulative-on-export convention: bucket i stores observations with
// v <= bounds[i]; the last bucket is +Inf). All methods are safe on a
// nil receiver and for concurrent use.
type Histogram struct {
	name    string
	labels  []string
	bounds  []float64
	buckets []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Binary search for the first bound >= v.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.buckets[lo].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// --- snapshotting -----------------------------------------------------

// Metric is one metric instance in a registry snapshot.
type Metric struct {
	Name   string   `json:"name"`
	Type   string   `json:"type"` // "counter", "gauge" or "histogram"
	Labels []string `json:"labels,omitempty"`
	// Value holds the counter total or gauge value.
	Value float64 `json:"value"`
	// Histogram-only fields.
	Bounds  []float64 `json:"bounds,omitempty"`
	Buckets []int64   `json:"buckets,omitempty"` // per-bucket (non-cumulative) counts
	Count   int64     `json:"count,omitempty"`
	Sum     float64   `json:"sum,omitempty"`
}

// Snapshot returns every metric instance, sorted by name then label
// set, so output is deterministic. Nil registries snapshot empty.
func (r *Registry) Snapshot() []Metric {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Metric, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for _, c := range r.counters {
		out = append(out, Metric{
			Name: c.name, Type: "counter", Labels: c.labels, Value: float64(c.Value()),
		})
	}
	for _, g := range r.gauges {
		out = append(out, Metric{Name: g.name, Type: "gauge", Labels: g.labels, Value: g.Value()})
	}
	for _, h := range r.hists {
		m := Metric{
			Name: h.name, Type: "histogram", Labels: h.labels,
			Bounds: h.bounds, Count: h.Count(), Sum: h.Sum(),
		}
		m.Buckets = make([]int64, len(h.buckets))
		for i := range h.buckets {
			m.Buckets[i] = h.buckets[i].Load()
		}
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return labelKey(out[i].Labels) < labelKey(out[j].Labels)
	})
	return out
}
