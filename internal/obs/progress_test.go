package obs

import (
	"sync"
	"testing"
	"time"
)

func TestProgressStateMachine(t *testing.T) {
	p := NewProgress("campaign_shards", 4)
	st := p.Status()
	if st.Total != 4 || st.Pending != 4 || st.Fraction != 0 {
		t.Fatalf("fresh status = %+v", st)
	}
	if st.ETAS >= 0 {
		t.Fatalf("fresh ETA = %v, want unavailable", st.ETAS)
	}

	p.Start(0)
	p.Start(1)
	p.Done(0)
	p.Fail(1, "retries exhausted")
	p.Start(2)

	st = p.Status()
	if st.Pending != 1 || st.Running != 1 || st.Done != 1 || st.Failed != 1 {
		t.Fatalf("status = %+v", st)
	}
	if st.Fraction != 0.5 {
		t.Fatalf("fraction = %v, want 0.5", st.Fraction)
	}
	if st.Units[0].State != UnitDone || st.Units[1].State != UnitFailed ||
		st.Units[2].State != UnitRunning || st.Units[3].State != UnitPending {
		t.Fatalf("unit states = %+v", st.Units)
	}
	if st.Units[1].Detail != "retries exhausted" {
		t.Fatalf("failed detail = %q", st.Units[1].Detail)
	}
	if st.Units[3].HeartbeatAgeS >= 0 {
		t.Fatalf("pending unit has a heartbeat age: %+v", st.Units[3])
	}
	if st.Units[2].HeartbeatAgeS < 0 {
		t.Fatalf("running unit missing heartbeat age: %+v", st.Units[2])
	}
}

func TestProgressRetriesCountAttempts(t *testing.T) {
	p := NewProgress("x", 1)
	p.Start(0)
	p.Start(0) // retry
	p.Start(0) // retry
	p.Done(0)
	st := p.Status()
	if st.Units[0].Attempts != 3 {
		t.Fatalf("attempts = %d, want 3", st.Units[0].Attempts)
	}
	if st.Done != 1 {
		t.Fatalf("status = %+v", st)
	}
}

func TestProgressETA(t *testing.T) {
	p := NewProgress("x", 4)
	for i := 0; i < 2; i++ {
		p.Start(i)
		p.Done(i)
		time.Sleep(5 * time.Millisecond)
	}
	st := p.Status()
	if st.RateHz <= 0 {
		t.Fatalf("rate = %v after 2 completions", st.RateHz)
	}
	if st.ETAS < 0 {
		t.Fatalf("ETA = %v, want an estimate", st.ETAS)
	}
	// 2 units remain at RateHz; the estimate must be remaining/rate.
	want := 2 / st.RateHz
	if diff := st.ETAS - want; diff < -1e-9 || diff > 1e-9 {
		t.Fatalf("ETA = %v, want %v", st.ETAS, want)
	}
}

func TestProgressStalled(t *testing.T) {
	p := NewProgress("x", 3)
	p.Start(0)
	p.Start(1)
	p.Done(1) // terminal units never stall
	time.Sleep(30 * time.Millisecond)
	p.Start(2)
	p.Heartbeat(2) // fresh heartbeat

	stalled := p.Stalled(15 * time.Millisecond)
	if len(stalled) != 1 || stalled[0] != 0 {
		t.Fatalf("stalled = %v, want [0]", stalled)
	}
	// A heartbeat clears the stall.
	p.Heartbeat(0)
	if stalled := p.Stalled(15 * time.Millisecond); len(stalled) != 0 {
		t.Fatalf("stalled after heartbeat = %v", stalled)
	}
	if p.Stalled(0) != nil {
		t.Fatal("threshold 0 must disable stall detection")
	}
}

func TestProgressNilAndBoundsSafe(t *testing.T) {
	var p *Progress
	p.Start(0)
	p.Heartbeat(0)
	p.Done(0)
	p.Fail(0, "x")
	if st := p.Status(); st.Total != 0 || st.ETAS >= 0 {
		t.Fatalf("nil status = %+v", st)
	}
	if p.Stalled(time.Second) != nil {
		t.Fatal("nil tracker reports stalls")
	}
	if NewProgress("x", 0) != nil {
		t.Fatal("zero-unit tracker must be nil")
	}
	q := NewProgress("x", 2)
	q.Start(-1)
	q.Start(2)
	q.Done(99)
	if st := q.Status(); st.Pending != 2 {
		t.Fatalf("out-of-range transitions mutated the tracker: %+v", st)
	}
}

func TestRegistryTrackProgress(t *testing.T) {
	r := NewRegistry()
	if got := r.ProgressStatuses(); len(got) != 0 {
		t.Fatalf("fresh registry trackers = %+v", got)
	}
	b := NewProgress("b_tracker", 2)
	a := NewProgress("a_tracker", 3)
	r.TrackProgress(b)
	r.TrackProgress(a)
	got := r.ProgressStatuses()
	if len(got) != 2 || got[0].Name != "a_tracker" || got[1].Name != "b_tracker" {
		t.Fatalf("trackers = %+v", got)
	}
	// Same name replaces: a resumed campaign restarts its tracker.
	a2 := NewProgress("a_tracker", 7)
	r.TrackProgress(a2)
	got = r.ProgressStatuses()
	if len(got) != 2 || got[0].Total != 7 {
		t.Fatalf("replacement failed: %+v", got)
	}
	// Nil-safety of the package-level helpers with no default registry.
	var nilReg *Registry
	nilReg.TrackProgress(a)
	if nilReg.ProgressStatuses() != nil {
		t.Fatal("nil registry reports trackers")
	}
}

// TestProgressConcurrentWriters is the dedicated race stress for the
// progress tracker: concurrent state transitions, heartbeats and
// status reads. Run under -race in CI.
func TestProgressConcurrentWriters(t *testing.T) {
	const units = 64
	p := NewProgress("stress", units)
	var wg sync.WaitGroup
	for u := 0; u < units; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			p.Start(u)
			for i := 0; i < 100; i++ {
				p.Heartbeat(u)
			}
			if u%7 == 0 {
				p.Start(u) // retry
			}
			if u%5 == 0 {
				p.Fail(u, "injected")
			} else {
				p.Done(u)
			}
		}(u)
	}
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			st := p.Status()
			if st.Pending+st.Running+st.Done+st.Failed != units {
				t.Errorf("state counts do not partition: %+v", st)
				return
			}
			p.Stalled(time.Millisecond)
		}
	}()
	wg.Wait()
	close(stop)
	readers.Wait()

	st := p.Status()
	if st.Fraction != 1 {
		t.Fatalf("fraction = %v after all units finished", st.Fraction)
	}
	wantFailed := 0
	for u := 0; u < units; u++ {
		if u%5 == 0 {
			wantFailed++
		}
	}
	if st.Failed != wantFailed || st.Done != units-wantFailed {
		t.Fatalf("done/failed = %d/%d, want %d/%d", st.Done, st.Failed, units-wantFailed, wantFailed)
	}
}
