package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
)

func TestRecorderTailOrder(t *testing.T) {
	r := NewRecorder(64)
	for i := 0; i < 10; i++ {
		r.Record(Event{Kind: EventShardStart, Shard: i})
	}
	tail := r.Tail(0)
	if len(tail) != 10 {
		t.Fatalf("tail = %d events, want 10", len(tail))
	}
	for i, ev := range tail {
		if ev.Seq != int64(i+1) {
			t.Fatalf("event %d seq = %d, want %d", i, ev.Seq, i+1)
		}
		if ev.Shard != i {
			t.Fatalf("event %d shard = %d: tail not in record order", i, ev.Shard)
		}
		if ev.WallNs == 0 {
			t.Fatalf("event %d wall clock not stamped", i)
		}
	}
	// A bounded tail keeps the most recent events.
	last3 := r.Tail(3)
	if len(last3) != 3 || last3[0].Shard != 7 || last3[2].Shard != 9 {
		t.Fatalf("tail(3) = %+v", last3)
	}
}

func TestRecorderOverwritesOldest(t *testing.T) {
	// A single-shard ring makes eviction deterministic: one writer's
	// stripe hint is stable, so NewRecorder's shard count would depend
	// on GOMAXPROCS here.
	r := &Recorder{shards: make([]recorderShard, 1)}
	r.shards[0].ring = make([]Event, 8)
	total := 5*8 + 3
	for i := 0; i < total; i++ {
		r.Record(Event{Kind: "e", Shard: i})
	}
	if got := r.Len(); got != 8 {
		t.Fatalf("len = %d, want ring size 8", got)
	}
	tail := r.Tail(0)
	if len(tail) != 8 {
		t.Fatalf("tail = %d events, want 8", len(tail))
	}
	// The ring keeps exactly the 8 newest events, in order.
	for i, ev := range tail {
		if want := int64(total - 8 + i + 1); ev.Seq != want {
			t.Fatalf("tail[%d].Seq = %d, want %d", i, ev.Seq, want)
		}
	}
}

// TestRecorderBoundedRetention checks the public-constructor ring:
// however writes distribute over the lock shards, retention never
// exceeds capacity and the tail stays seq-ordered.
func TestRecorderBoundedRetention(t *testing.T) {
	r := NewRecorder(16)
	total := 5*r.Capacity() + 3
	for i := 0; i < total; i++ {
		r.Record(Event{Kind: "e", Shard: i})
	}
	if got := r.Len(); got == 0 || got > r.Capacity() {
		t.Fatalf("len = %d, capacity %d", got, r.Capacity())
	}
	tail := r.Tail(0)
	// A single writer appends to one shard at a time, so the newest
	// event it recorded is always retained.
	if last := tail[len(tail)-1]; last.Seq != int64(total) {
		t.Fatalf("newest retained seq = %d, want %d", last.Seq, total)
	}
	for i := 1; i < len(tail); i++ {
		if tail[i].Seq <= tail[i-1].Seq {
			t.Fatalf("tail out of order at %d: %d then %d", i, tail[i-1].Seq, tail[i].Seq)
		}
	}
}

func TestRecorderWriteJSON(t *testing.T) {
	r := NewRecorder(8)
	r.Record(Event{Kind: EventCheckpoint, Shard: 2, Attempt: 1, Detail: "shard-0002.ckpt"})
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf, 0); err != nil {
		t.Fatal(err)
	}
	var events []Event
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("events JSON: %v", err)
	}
	if len(events) != 1 || events[0].Kind != EventCheckpoint || events[0].Detail != "shard-0002.ckpt" {
		t.Fatalf("events = %+v", events)
	}

	// An empty recorder serializes as [], not null.
	var empty bytes.Buffer
	if err := NewRecorder(8).WriteJSON(&empty, 0); err != nil {
		t.Fatal(err)
	}
	if s := empty.String(); s == "null\n" {
		t.Fatalf("empty recorder serialized as %q", s)
	}
}

func TestRecorderNilSafe(t *testing.T) {
	var r *Recorder
	r.Record(Event{Kind: "x"}) // must not panic
	if r.Len() != 0 || r.Capacity() != 0 || r.Tail(5) != nil {
		t.Fatal("nil recorder not inert")
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf, 0); err != nil {
		t.Fatal(err)
	}
	// The registry plumbing is equally nil-safe.
	var reg *Registry
	reg.Events().Record(Event{Kind: "x"})
}

// TestRecorderConcurrentWriters is the dedicated race stress for the
// flight recorder: many writers hammering Record while readers Tail
// and WriteJSON concurrently. Run under -race in CI.
func TestRecorderConcurrentWriters(t *testing.T) {
	r := NewRecorder(256)
	const writers = 8
	const perWriter = 2000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				r.Record(Event{Kind: EventShardStart, Shard: w, Attempt: i,
					Detail: fmt.Sprintf("w%d-%d", w, i)})
			}
		}(w)
	}
	readErr := make(chan error, 1)
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			tail := r.Tail(64)
			for i := 1; i < len(tail); i++ {
				if tail[i].Seq <= tail[i-1].Seq {
					select {
					case readErr <- fmt.Errorf("tail out of order: %d then %d", tail[i-1].Seq, tail[i].Seq):
					default:
					}
					return
				}
			}
			var buf bytes.Buffer
			_ = r.WriteJSON(&buf, 16)
		}
	}()
	wg.Wait()
	close(stop)
	readers.Wait()
	select {
	case err := <-readErr:
		t.Fatal(err)
	default:
	}
	// Far more events were written than the ring holds; retention is
	// bounded by capacity (shard fill depends on how goroutines mapped
	// to stripes, so "exactly full" is not guaranteed).
	if got := r.Len(); got == 0 || got > r.Capacity() {
		t.Fatalf("len = %d, capacity %d", got, r.Capacity())
	}
}
