package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Progress tracks a fixed population of work units (the shards of a
// campaign, the streams of a generation run) through a per-unit state
// machine pending → running → done/failed, and derives the numbers an
// operator actually wants from a long run: completion fraction, a
// rate-windowed ETA, and per-unit heartbeat ages for stall detection.
//
// State transitions take the tracker's mutex (they are rare — a few
// per unit); heartbeats are a single atomic store per unit so a hot
// inner loop can beat every iteration for free. All methods are safe
// on a nil receiver and for concurrent use.

// UnitState is one work unit's position in the state machine.
type UnitState string

const (
	UnitPending UnitState = "pending"
	UnitRunning UnitState = "running"
	UnitDone    UnitState = "done"
	UnitFailed  UnitState = "failed"
)

// etaWindow is how many recent completions feed the ETA rate estimate.
// A window — rather than the lifetime average — makes the ETA track
// the current completion rate, so it recovers quickly after a slow
// resume phase or a retry storm.
const etaWindow = 16

type progressUnit struct {
	state    UnitState
	attempts int
	startNs  int64 // wall ns of the first Start
	endNs    int64 // wall ns of the terminal transition
	detail   string
	beatNs   atomic.Int64 // wall ns of the last heartbeat
}

// Progress is the tracker. Create with NewProgress; register on a
// registry with TrackProgress to surface it on /statusz.
type Progress struct {
	name  string
	units []progressUnit

	mu      sync.Mutex
	started time.Time
	doneLog []int64 // wall ns of recent terminal transitions (ring, etaWindow)
}

// NewProgress returns a tracker for n pending units. Returns nil when
// n <= 0 — and, like the other obs handles, a nil tracker is inert.
func NewProgress(name string, n int) *Progress {
	if n <= 0 {
		return nil
	}
	return &Progress{name: name, units: make([]progressUnit, n), started: time.Now()}
}

// valid reports whether unit is a live index.
func (p *Progress) valid(unit int) bool {
	return p != nil && unit >= 0 && unit < len(p.units)
}

// Start marks the unit running (and counts an attempt). Restarting a
// running or failed unit counts a further attempt — the retry path.
func (p *Progress) Start(unit int) {
	if !p.valid(unit) {
		return
	}
	now := time.Now().UnixNano()
	p.mu.Lock()
	u := &p.units[unit]
	u.state = UnitRunning
	u.attempts++
	if u.startNs == 0 {
		u.startNs = now
	}
	p.mu.Unlock()
	u.beatNs.Store(now)
}

// Heartbeat records liveness for a running unit: one atomic store,
// cheap enough for a per-BS (or per-minute) inner loop.
func (p *Progress) Heartbeat(unit int) {
	if !p.valid(unit) {
		return
	}
	p.units[unit].beatNs.Store(time.Now().UnixNano())
}

// Done marks the unit completed.
func (p *Progress) Done(unit int) { p.finish(unit, UnitDone, "") }

// Fail marks the unit terminally failed with a reason.
func (p *Progress) Fail(unit int, detail string) { p.finish(unit, UnitFailed, detail) }

func (p *Progress) finish(unit int, state UnitState, detail string) {
	if !p.valid(unit) {
		return
	}
	now := time.Now().UnixNano()
	p.mu.Lock()
	u := &p.units[unit]
	u.state = state
	u.endNs = now
	u.detail = detail
	if len(p.doneLog) == etaWindow {
		copy(p.doneLog, p.doneLog[1:])
		p.doneLog = p.doneLog[:etaWindow-1]
	}
	p.doneLog = append(p.doneLog, now)
	p.mu.Unlock()
	u.beatNs.Store(now)
}

// UnitStatus is one unit's row in a snapshot.
type UnitStatus struct {
	Unit     int       `json:"unit"`
	State    UnitState `json:"state"`
	Attempts int       `json:"attempts,omitempty"`
	// HeartbeatAgeS is seconds since the unit's last heartbeat;
	// negative when the unit never started.
	HeartbeatAgeS float64 `json:"heartbeat_age_s"`
	// RunS is the unit's wall time: start → terminal transition, or
	// start → now while running.
	RunS   float64 `json:"run_s,omitempty"`
	Detail string  `json:"detail,omitempty"`
}

// ProgressStatus is a consistent point-in-time view of the tracker.
type ProgressStatus struct {
	Name     string  `json:"name"`
	Total    int     `json:"total"`
	Pending  int     `json:"pending"`
	Running  int     `json:"running"`
	Done     int     `json:"done"`
	Failed   int     `json:"failed"`
	Fraction float64 `json:"fraction"` // terminal units / total
	// RateHz is the rate-windowed completion rate (terminal
	// transitions per second over the last etaWindow completions);
	// 0 until two units finish.
	RateHz float64 `json:"rate_hz"`
	// ETAS is the estimated seconds until the remaining units finish
	// at RateHz; negative when no estimate is available yet.
	ETAS     float64      `json:"eta_s"`
	ElapsedS float64      `json:"elapsed_s"`
	Units    []UnitStatus `json:"units"`
}

// Status snapshots the tracker. Units are reported in index order.
func (p *Progress) Status() ProgressStatus {
	if p == nil {
		return ProgressStatus{ETAS: -1}
	}
	now := time.Now()
	nowNs := now.UnixNano()
	p.mu.Lock()
	defer p.mu.Unlock()
	st := ProgressStatus{
		Name:     p.name,
		Total:    len(p.units),
		ETAS:     -1,
		ElapsedS: now.Sub(p.started).Seconds(),
		Units:    make([]UnitStatus, len(p.units)),
	}
	for i := range p.units {
		u := &p.units[i]
		us := UnitStatus{Unit: i, Attempts: u.attempts, Detail: u.detail, HeartbeatAgeS: -1}
		switch u.state {
		case UnitRunning:
			st.Running++
			us.State = UnitRunning
			us.RunS = float64(nowNs-u.startNs) / 1e9
		case UnitDone:
			st.Done++
			us.State = UnitDone
			us.RunS = float64(u.endNs-u.startNs) / 1e9
		case UnitFailed:
			st.Failed++
			us.State = UnitFailed
			us.RunS = float64(u.endNs-u.startNs) / 1e9
		default:
			st.Pending++
			us.State = UnitPending
		}
		if beat := u.beatNs.Load(); beat > 0 {
			us.HeartbeatAgeS = float64(nowNs-beat) / 1e9
		}
		st.Units[i] = us
	}
	st.Fraction = float64(st.Done+st.Failed) / float64(st.Total)
	if n := len(p.doneLog); n >= 2 {
		span := float64(p.doneLog[n-1]-p.doneLog[0]) / 1e9
		if span > 0 {
			st.RateHz = float64(n-1) / span
			remaining := st.Pending + st.Running
			st.ETAS = float64(remaining) / st.RateHz
		}
	}
	return st
}

// Stalled returns the indices of running units whose heartbeat age
// exceeds threshold, in index order.
func (p *Progress) Stalled(threshold time.Duration) []int {
	if p == nil || threshold <= 0 {
		return nil
	}
	cutoff := time.Now().Add(-threshold).UnixNano()
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []int
	for i := range p.units {
		u := &p.units[i]
		if u.state == UnitRunning && u.beatNs.Load() < cutoff {
			out = append(out, i)
		}
	}
	return out
}

// --- registry attachment ---------------------------------------------

// TrackProgress registers the tracker on the registry under its name
// so /statusz can render it; a later tracker with the same name
// replaces the earlier one (a resumed campaign restarts its tracker).
// No-op on a nil registry or tracker.
func (r *Registry) TrackProgress(p *Progress) {
	if r == nil || p == nil {
		return
	}
	r.progressMu.Lock()
	if r.progress == nil {
		r.progress = make(map[string]*Progress)
	}
	r.progress[p.name] = p
	r.progressMu.Unlock()
}

// ProgressStatuses snapshots every registered tracker, sorted by name.
func (r *Registry) ProgressStatuses() []ProgressStatus {
	if r == nil {
		return nil
	}
	r.progressMu.Lock()
	trackers := make([]*Progress, 0, len(r.progress))
	for _, p := range r.progress {
		trackers = append(trackers, p)
	}
	r.progressMu.Unlock()
	out := make([]ProgressStatus, len(trackers))
	for i, p := range trackers {
		out[i] = p.Status()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// TrackProgressOf registers the tracker on the default registry.
func TrackProgressOf(p *Progress) { Default().TrackProgress(p) }
