package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Flight recorder: a fixed-capacity, lock-sharded ring of structured
// run events. Where metrics answer "how much" and spans answer "how
// long", the recorder answers "what happened, in what order" — the
// record an operator reads after a crash, a stall or a kill/resume
// cycle instead of grepping logs. Writers append to one of several
// independently-locked ring shards (picked by the same per-P stripe
// hint as the counters, so concurrent shard workers rarely contend);
// readers merge the shards back into global order by sequence number.
// The ring overwrites its oldest entries once full: a flight recorder
// keeps the recent past, it is not an audit log.

// Event kinds emitted by the campaign runner. Kind is an open string
// set — other subsystems may record their own kinds — but the campaign
// lifecycle uses these.
const (
	EventShardStart   = "shard_start"   // attempt began
	EventShardDone    = "shard_done"    // attempt succeeded
	EventShardRetry   = "shard_retry"   // attempt failed, retry scheduled
	EventShardTimeout = "shard_timeout" // attempt exceeded its deadline
	EventShardPanic   = "shard_panic"   // attempt panicked (captured)
	EventShardFailed  = "shard_failed"  // retry budget exhausted
	EventShardStalled = "shard_stalled" // heartbeat age exceeded threshold
	EventCheckpoint   = "checkpoint"    // shard checkpoint durably written
	EventResume       = "resume"        // shard loaded from a checkpoint
	EventMerge        = "merge"         // final fold ran
	EventInterrupted  = "interrupted"   // campaign canceled mid-flight
)

// Event is one entry in the flight recorder. Seq is a process-global
// strictly increasing sequence number (assigned by Record); WallNs is
// the wall-clock timestamp in Unix nanoseconds. Shard and Attempt are
// -1/0 when the event is not tied to a shard attempt.
type Event struct {
	Seq     int64  `json:"seq"`
	WallNs  int64  `json:"wall_ns"`
	Kind    string `json:"kind"`
	Shard   int    `json:"shard"`
	Attempt int    `json:"attempt,omitempty"`
	Detail  string `json:"detail,omitempty"`
}

// recorderShard is one independently-locked ring segment.
type recorderShard struct {
	mu   sync.Mutex
	ring []Event
	next int // ring[next] is the slot the next write takes
	full bool
	_    [24]byte // keep neighbouring shards off one cache line
}

// Recorder is the fixed-capacity lock-sharded event ring. All methods
// are safe on a nil receiver (the disabled state) and for concurrent
// use.
type Recorder struct {
	shards []recorderShard
	seq    atomic.Int64
}

// DefaultRecorderCapacity is the event capacity NewRegistry gives its
// recorder: enough for every lifecycle edge of a few thousand shard
// attempts while bounding memory to a few hundred KB.
const DefaultRecorderCapacity = 8192

// NewRecorder returns a recorder holding at least capacity events
// (rounded up so every lock shard gets an equal ring). capacity <= 0
// takes DefaultRecorderCapacity.
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultRecorderCapacity
	}
	n := stripeCount
	if n > capacity {
		n = 1
	}
	per := (capacity + n - 1) / n
	r := &Recorder{shards: make([]recorderShard, n)}
	for i := range r.shards {
		r.shards[i].ring = make([]Event, per)
	}
	return r
}

// Capacity returns the total number of events the ring retains.
func (r *Recorder) Capacity() int {
	if r == nil {
		return 0
	}
	return len(r.shards) * len(r.shards[0].ring)
}

// Record stamps ev with the next sequence number and the current wall
// clock (unless the caller pre-filled WallNs) and appends it, evicting
// the shard's oldest event once the ring is full.
func (r *Recorder) Record(ev Event) {
	if r == nil {
		return
	}
	ev.Seq = r.seq.Add(1)
	if ev.WallNs == 0 {
		ev.WallNs = time.Now().UnixNano()
	}
	sh := &r.shards[stripeHint()%len(r.shards)]
	sh.mu.Lock()
	sh.ring[sh.next] = ev
	sh.next++
	if sh.next == len(sh.ring) {
		sh.next = 0
		sh.full = true
	}
	sh.mu.Unlock()
}

// Len returns how many events the ring currently retains.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	n := 0
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		if sh.full {
			n += len(sh.ring)
		} else {
			n += sh.next
		}
		sh.mu.Unlock()
	}
	return n
}

// Tail returns the most recent n retained events in ascending Seq
// order (all of them when n <= 0 or n exceeds the retained count).
func (r *Recorder) Tail(n int) []Event {
	if r == nil {
		return nil
	}
	var out []Event
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		if sh.full {
			out = append(out, sh.ring[sh.next:]...)
		}
		out = append(out, sh.ring[:sh.next]...)
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	if n > 0 && len(out) > n {
		out = out[len(out)-n:]
	}
	return out
}

// WriteJSON writes the most recent n retained events (all when n <= 0)
// as a JSON array in ascending Seq order.
func (r *Recorder) WriteJSON(w io.Writer, n int) error {
	events := r.Tail(n)
	if events == nil {
		events = []Event{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(events)
}

// Events returns the registry's flight recorder (nil when disabled).
func (r *Registry) Events() *Recorder {
	if r == nil {
		return nil
	}
	return r.recorder
}

// RecordEvent appends an event to the default registry's flight
// recorder; a no-op while instrumentation is disabled.
func RecordEvent(ev Event) { Default().Events().Record(ev) }
