// Package slicing implements the network-slicing capacity allocation
// use case of paper §6.1: an operator signs an SLA with one service
// provider per modeled service, reserves per-slice capacity at each
// antenna, and meets the SLA when all of the slice's traffic is served
// at least 95% of the time. Capacity is dimensioned from a traffic
// model — the paper's session-level models or the category-level
// literature benchmarks bm_a/bm_b — and evaluated against
// measurement-driven demand.
package slicing

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"mobiletraffic/internal/mathx"
)

// SessionSpec is the slice-relevant view of one session: which service
// it belongs to, when it starts (seconds from trace origin), how long
// it lasts and how much traffic it carries.
type SessionSpec struct {
	Service  int
	Start    float64 // seconds
	Duration float64 // seconds
	Volume   float64 // bytes
}

// DemandTrace is the per-service, per-minute traffic demand at one
// antenna in bytes per minute.
type DemandTrace struct {
	NumServices int
	Minutes     int
	// Demand[s][m] is the bytes of service s transferred in minute m.
	Demand [][]float64
}

// NewDemandTrace allocates an empty trace.
func NewDemandTrace(numServices, minutes int) (*DemandTrace, error) {
	if numServices <= 0 || minutes <= 0 {
		return nil, fmt.Errorf("slicing: invalid trace shape %dx%d", numServices, minutes)
	}
	d := &DemandTrace{NumServices: numServices, Minutes: minutes}
	d.Demand = make([][]float64, numServices)
	for s := range d.Demand {
		d.Demand[s] = make([]float64, minutes)
	}
	return d, nil
}

// AddSession spreads the session's volume uniformly over its lifetime
// across the minutes it overlaps, clamping to the trace horizon.
func (d *DemandTrace) AddSession(s SessionSpec) error {
	if s.Service < 0 || s.Service >= d.NumServices {
		return fmt.Errorf("slicing: service %d out of range [0, %d)", s.Service, d.NumServices)
	}
	if s.Duration <= 0 || s.Volume <= 0 {
		return fmt.Errorf("slicing: session needs positive duration and volume, got %v/%v",
			s.Duration, s.Volume)
	}
	rate := s.Volume / s.Duration // bytes per second
	end := s.Start + s.Duration
	for m := int(s.Start / 60); m < d.Minutes; m++ {
		lo := math.Max(s.Start, float64(m)*60)
		hi := math.Min(end, float64(m+1)*60)
		if hi <= lo {
			break
		}
		d.Demand[s.Service][m] += rate * (hi - lo)
	}
	return nil
}

// AddSessions adds a batch of sessions, stopping at the first invalid
// spec — the bulk form of AddSession for generator trace fills working
// from a reused session buffer.
func (d *DemandTrace) AddSessions(specs []SessionSpec) error {
	for i := range specs {
		if err := d.AddSession(specs[i]); err != nil {
			return err
		}
	}
	return nil
}

// Total returns the summed demand over all services per minute.
func (d *DemandTrace) Total() []float64 {
	out := make([]float64, d.Minutes)
	for _, row := range d.Demand {
		for m, v := range row {
			out[m] += v
		}
	}
	return out
}

// Allocation is the per-service reserved capacity in bytes per minute.
type Allocation []float64

// AllocatePercentile reserves, for every service, the given percentile
// (e.g. 0.95) of its per-minute demand in the reference trace —
// the paper's model-driven allocation rule. minuteFilter optionally
// restricts which minutes inform the percentile (e.g. peak hours only).
func AllocatePercentile(ref *DemandTrace, pct float64, minuteFilter func(int) bool) (Allocation, error) {
	if ref == nil {
		return nil, errors.New("slicing: nil reference trace")
	}
	if pct <= 0 || pct >= 1 {
		return nil, fmt.Errorf("slicing: percentile %v outside (0, 1)", pct)
	}
	alloc := make(Allocation, ref.NumServices)
	// One sample buffer reused across services: the filtered minute set
	// has the same size for every service, so a single allocation
	// (sorted in place per service) serves the whole pass instead of an
	// append-grown slice plus a Quantile-internal copy per service.
	samples := make([]float64, 0, ref.Minutes)
	for s := 0; s < ref.NumServices; s++ {
		samples = samples[:0]
		for m, v := range ref.Demand[s] {
			if minuteFilter != nil && !minuteFilter(m) {
				continue
			}
			samples = append(samples, v)
		}
		if len(samples) == 0 {
			return nil, fmt.Errorf("slicing: no minutes selected for service %d", s)
		}
		sort.Float64s(samples)
		alloc[s] = mathx.QuantileSorted(samples, pct)
	}
	return alloc, nil
}

// AllocateCategoryUniform implements the benchmark allocation of §6.1:
// per-category capacity is the percentile of the category's aggregate
// demand in the reference category trace, then split uniformly across
// the services mapped to that category (no intra-category information
// is available to the literature models).
//
// catRef must have one row per category; membership maps each service
// to its category row.
func AllocateCategoryUniform(catRef *DemandTrace, membership []int, pct float64, minuteFilter func(int) bool) (Allocation, error) {
	if catRef == nil {
		return nil, errors.New("slicing: nil category trace")
	}
	catAlloc, err := AllocatePercentile(catRef, pct, minuteFilter)
	if err != nil {
		return nil, err
	}
	counts := make([]int, catRef.NumServices)
	for _, c := range membership {
		if c < 0 || c >= catRef.NumServices {
			return nil, fmt.Errorf("slicing: category %d out of range [0, %d)", c, catRef.NumServices)
		}
		counts[c]++
	}
	alloc := make(Allocation, len(membership))
	for s, c := range membership {
		if counts[c] == 0 {
			continue
		}
		alloc[s] = catAlloc[c] / float64(counts[c])
	}
	return alloc, nil
}

// SLAResult reports SLA satisfaction for one (service, antenna) slice.
type SLAResult struct {
	Service int
	// Satisfied is the fraction of evaluated minutes in which the
	// allocated capacity covered all demand ("time with no dropped
	// traffic", Table 2).
	Satisfied float64
	// DroppedBytes is the total demand exceeding capacity.
	DroppedBytes float64
}

// Evaluate checks the allocation against real demand: for every service
// it returns the fraction of (filtered) minutes fully served and the
// dropped volume.
func Evaluate(real *DemandTrace, alloc Allocation, minuteFilter func(int) bool) ([]SLAResult, error) {
	if real == nil {
		return nil, errors.New("slicing: nil demand trace")
	}
	if len(alloc) != real.NumServices {
		return nil, fmt.Errorf("slicing: allocation for %d services, trace has %d",
			len(alloc), real.NumServices)
	}
	out := make([]SLAResult, real.NumServices)
	for s := 0; s < real.NumServices; s++ {
		res := SLAResult{Service: s}
		var evaluated, ok int
		for m, v := range real.Demand[s] {
			if minuteFilter != nil && !minuteFilter(m) {
				continue
			}
			evaluated++
			if v <= alloc[s] {
				ok++
			} else {
				res.DroppedBytes += v - alloc[s]
			}
		}
		if evaluated > 0 {
			res.Satisfied = float64(ok) / float64(evaluated)
		}
		out[s] = res
	}
	return out, nil
}

// Summary condenses SLA results across services and antennas: the mean
// and standard deviation of the satisfaction fraction, and how many
// slices meet the 95% SLA bar — the Table 2 columns.
type Summary struct {
	MeanSatisfied float64
	StdSatisfied  float64
	SLAMetCount   int
	SliceCount    int
}

// Summarize aggregates results (possibly from several antennas),
// ignoring slices that saw no demand at all.
func Summarize(results []SLAResult, slaBar float64) Summary {
	var vals []float64
	met := 0
	for _, r := range results {
		vals = append(vals, r.Satisfied)
		if r.Satisfied >= slaBar {
			met++
		}
	}
	return Summary{
		MeanSatisfied: mathx.Mean(vals),
		StdSatisfied:  mathx.Std(vals),
		SLAMetCount:   met,
		SliceCount:    len(vals),
	}
}

// PeakMinutes returns a minute filter keeping the §6.1 SLA window:
// everything except nighttime 22:00-08:00, repeating daily.
func PeakMinutes() func(int) bool {
	return func(m int) bool {
		mod := m % (24 * 60)
		return mod >= 8*60 && mod < 22*60
	}
}
