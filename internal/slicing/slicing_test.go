package slicing

import (
	"math"
	"testing"
)

func TestDemandTraceAddSession(t *testing.T) {
	d, err := NewDemandTrace(2, 10)
	if err != nil {
		t.Fatal(err)
	}
	// 120 s session at 1000 B/s starting at t=30: 30 s in minute 0,
	// full minute 1, 30 s in minute 2.
	if err := d.AddSession(SessionSpec{Service: 0, Start: 30, Duration: 120, Volume: 120000}); err != nil {
		t.Fatal(err)
	}
	want := []float64{30000, 60000, 30000}
	for m, w := range want {
		if math.Abs(d.Demand[0][m]-w) > 1e-9 {
			t.Errorf("minute %d demand = %v, want %v", m, d.Demand[0][m], w)
		}
	}
	if d.Demand[0][3] != 0 {
		t.Errorf("minute 3 demand = %v", d.Demand[0][3])
	}
	// Volume is conserved within the horizon.
	var sum float64
	for _, v := range d.Demand[0] {
		sum += v
	}
	if math.Abs(sum-120000) > 1e-9 {
		t.Errorf("total demand = %v", sum)
	}
}

func TestDemandTraceClampsToHorizon(t *testing.T) {
	d, _ := NewDemandTrace(1, 2)
	// Session runs past the end of the trace.
	if err := d.AddSession(SessionSpec{Service: 0, Start: 60, Duration: 600, Volume: 600000}); err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.Demand[0][1]-60000) > 1e-9 {
		t.Errorf("clamped demand = %v", d.Demand[0][1])
	}
}

func TestDemandTraceValidation(t *testing.T) {
	if _, err := NewDemandTrace(0, 5); err == nil {
		t.Error("zero services must error")
	}
	d, _ := NewDemandTrace(1, 5)
	if err := d.AddSession(SessionSpec{Service: 5, Duration: 1, Volume: 1}); err == nil {
		t.Error("service out of range must error")
	}
	if err := d.AddSession(SessionSpec{Service: 0, Duration: 0, Volume: 1}); err == nil {
		t.Error("zero duration must error")
	}
	if err := d.AddSession(SessionSpec{Service: 0, Duration: 1, Volume: 0}); err == nil {
		t.Error("zero volume must error")
	}
}

func TestTotal(t *testing.T) {
	d, _ := NewDemandTrace(2, 3)
	d.Demand[0] = []float64{1, 2, 3}
	d.Demand[1] = []float64{10, 20, 30}
	total := d.Total()
	want := []float64{11, 22, 33}
	for i := range want {
		if total[i] != want[i] {
			t.Errorf("total[%d] = %v", i, total[i])
		}
	}
}

func TestAllocatePercentile(t *testing.T) {
	d, _ := NewDemandTrace(1, 100)
	for m := 0; m < 100; m++ {
		d.Demand[0][m] = float64(m + 1) // 1..100
	}
	alloc, err := AllocatePercentile(d, 0.95, nil)
	if err != nil {
		t.Fatal(err)
	}
	// 95th percentile of 1..100 ~ 95.05.
	if alloc[0] < 94 || alloc[0] > 97 {
		t.Errorf("allocation = %v", alloc[0])
	}
	// Minute filter restricts the sample.
	alloc, err = AllocatePercentile(d, 0.95, func(m int) bool { return m < 10 })
	if err != nil {
		t.Fatal(err)
	}
	if alloc[0] > 10.1 {
		t.Errorf("filtered allocation = %v", alloc[0])
	}
}

func TestAllocatePercentileValidation(t *testing.T) {
	if _, err := AllocatePercentile(nil, 0.95, nil); err == nil {
		t.Error("nil trace must error")
	}
	d, _ := NewDemandTrace(1, 5)
	if _, err := AllocatePercentile(d, 1.5, nil); err == nil {
		t.Error("percentile out of range must error")
	}
	if _, err := AllocatePercentile(d, 0.95, func(int) bool { return false }); err == nil {
		t.Error("empty minute selection must error")
	}
}

func TestAllocateCategoryUniform(t *testing.T) {
	// Category trace: 2 categories; category 0 carries 90, category 1
	// carries 30, constant.
	cat, _ := NewDemandTrace(2, 10)
	for m := 0; m < 10; m++ {
		cat.Demand[0][m] = 90
		cat.Demand[1][m] = 30
	}
	// Services 0,1,2 map to category 0; service 3 to category 1.
	membership := []int{0, 0, 0, 1}
	alloc, err := AllocateCategoryUniform(cat, membership, 0.95, nil)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 3; s++ {
		if math.Abs(alloc[s]-30) > 1e-9 {
			t.Errorf("service %d allocation = %v, want 30", s, alloc[s])
		}
	}
	if math.Abs(alloc[3]-30) > 1e-9 {
		t.Errorf("service 3 allocation = %v, want 30", alloc[3])
	}
	if _, err := AllocateCategoryUniform(cat, []int{5}, 0.95, nil); err == nil {
		t.Error("membership out of range must error")
	}
	if _, err := AllocateCategoryUniform(nil, membership, 0.95, nil); err == nil {
		t.Error("nil category trace must error")
	}
}

func TestEvaluate(t *testing.T) {
	d, _ := NewDemandTrace(1, 10)
	for m := 0; m < 10; m++ {
		d.Demand[0][m] = float64(m) // 0..9
	}
	res, err := Evaluate(d, Allocation{7}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Minutes 0..7 satisfied (8 of 10).
	if math.Abs(res[0].Satisfied-0.8) > 1e-12 {
		t.Errorf("satisfied = %v", res[0].Satisfied)
	}
	// Dropped: (8-7)+(9-7) = 3.
	if math.Abs(res[0].DroppedBytes-3) > 1e-12 {
		t.Errorf("dropped = %v", res[0].DroppedBytes)
	}
	if _, err := Evaluate(d, Allocation{1, 2}, nil); err == nil {
		t.Error("allocation size mismatch must error")
	}
	if _, err := Evaluate(nil, Allocation{1}, nil); err == nil {
		t.Error("nil trace must error")
	}
}

func TestSummarize(t *testing.T) {
	results := []SLAResult{
		{Satisfied: 1.0},
		{Satisfied: 0.96},
		{Satisfied: 0.90},
	}
	s := Summarize(results, 0.95)
	if s.SLAMetCount != 2 || s.SliceCount != 3 {
		t.Errorf("summary = %+v", s)
	}
	if math.Abs(s.MeanSatisfied-(1.0+0.96+0.90)/3) > 1e-12 {
		t.Errorf("mean = %v", s.MeanSatisfied)
	}
	if s.StdSatisfied <= 0 {
		t.Errorf("std = %v", s.StdSatisfied)
	}
}

func TestPeakMinutes(t *testing.T) {
	f := PeakMinutes()
	if f(3 * 60) {
		t.Error("3am must be off-peak")
	}
	if !f(12 * 60) {
		t.Error("noon must be peak")
	}
	if f(23 * 60) {
		t.Error("11pm must be off-peak")
	}
	// Repeats daily.
	if !f(24*60 + 12*60) {
		t.Error("noon on day 2 must be peak")
	}
}
