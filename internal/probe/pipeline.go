package probe

import (
	"fmt"
	"math"
	"sort"

	"mobiletraffic/internal/netsim"
	"mobiletraffic/internal/obs"
)

// Pipeline wires the complete measurement plane of §3.1 together:
// UE-level flows are packetized and observed by the gateway-probe flow
// tracker, classified to services by the DPI stand-in, geo-referenced
// and split at handovers using the RAN-probe signaling stream, and
// finally aggregated into the per-(service, BS, day) statistics.
type Pipeline struct {
	Classifier *Classifier
	Tracker    *Tracker
	Packetizer *Packetizer
	Collector  *Collector
	// Measurement-plane accounting (probe_*_total); nil handles when
	// instrumentation is disabled.
	obsUnlocated *obs.Counter // flows without usable signaling history
	obsSplits    *obs.Counter // per-BS partial sessions after handover splitting
}

// NewPipeline assembles a measurement pipeline for numServices services
// with the given DPI accuracy.
func NewPipeline(numServices int, accuracy float64, seed int64) (*Pipeline, error) {
	cl, err := NewClassifier(numServices, accuracy, seed)
	if err != nil {
		return nil, err
	}
	coll, err := NewCollector(numServices)
	if err != nil {
		return nil, err
	}
	// Service-specific idle timeouts (§3.2): streaming-class ports get
	// a longer expiration than short-transaction ones. The synthetic
	// port plan maps service i to ServicePort(i).
	timeoutFor := func(t FiveTuple) float64 {
		svc, ok := cl.portToService[t.DstPort]
		if !ok {
			return 0 // defaults
		}
		if svc%2 == 0 { // TCP services in the synthetic plan
			return 300
		}
		return 90
	}
	return &Pipeline{
		Classifier:   cl,
		Tracker:      NewTracker(TrackerConfig{TimeoutFor: timeoutFor}),
		Packetizer:   NewPacketizer(seed ^ 0x9acce55),
		Collector:    coll,
		obsUnlocated: obs.CounterOf("probe_unlocated_flows_total"),
		obsSplits:    obs.CounterOf("probe_session_splits_total"),
	}, nil
}

// PipelineStats summarizes one measurement run.
type PipelineStats struct {
	Flows         int // transport-layer flows observed at the gateway
	Unclassified  int // flows the classifier could not map to a service
	Unlocatable   int // flows whose UE had no usable signaling history
	SessionsSplit int // per-BS partial sessions recorded (>= located flows)
}

// Run processes a UE-level mobility trace end-to-end and fills the
// pipeline's Collector. Flow i of a UE uses TCP for even service
// indices and UDP for odd ones, exercising both delimitation paths.
func (p *Pipeline) Run(trace *netsim.MobilityTrace) (PipelineStats, error) {
	var stats PipelineStats
	if trace == nil {
		return stats, fmt.Errorf("probe: nil mobility trace")
	}

	// RAN probe: index the signaling stream.
	events := make([]SignalEvent, 0, len(trace.Events))
	for _, ev := range trace.Events {
		se := SignalEvent{Time: ev.Time, UE: ev.UE, BS: ev.BS}
		switch ev.Type {
		case netsim.UEAttach:
			se.Type = EvAttach
		case netsim.UEHandover:
			se.Type = EvHandover
		case netsim.UEDetach:
			se.Type = EvDetach
		}
		events = append(events, se)
	}
	locator := NewLocator(events)

	// Gateway probe: packetize every flow and observe the packets in
	// global time order, as the SGi tap would.
	var packets []Packet
	seqPerUE := map[uint64]int{}
	for _, f := range trace.Flows {
		seq := seqPerUE[f.UE]
		seqPerUE[f.UE] = seq + 1
		proto := TCP
		if f.Service%2 == 1 {
			proto = UDP
		}
		tuple := TupleForUE(f.UE, f.Service, seq, proto)
		pkts, err := p.Packetizer.Packetize(FlowSpec{
			Tuple: tuple, Start: f.Start, Duration: f.Duration, Volume: f.Volume,
		})
		if err != nil {
			return stats, err
		}
		packets = append(packets, pkts...)
	}
	sort.SliceStable(packets, func(i, j int) bool { return packets[i].Time < packets[j].Time })
	var lastT float64
	for _, pkt := range packets {
		p.Tracker.Observe(pkt)
		lastT = pkt.Time
	}
	p.Tracker.ExpireIdle(lastT + 1e6) // close residual UDP flows
	records := p.Tracker.Flush()
	stats.Flows = len(records)

	// Classification, geo-referencing and aggregation.
	for _, rec := range records {
		svc, ok := p.Classifier.Classify(rec.Tuple)
		if !ok {
			stats.Unclassified++
			continue
		}
		ue := UEOfTuple(rec.Tuple)
		spans, err := locator.Split(ue, rec.Start, rec.End)
		if err != nil {
			stats.Unlocatable++
			p.obsUnlocated.Inc()
			continue
		}
		for _, span := range spans {
			dur := span.End - span.Start
			if dur <= 0 {
				dur = 1
			}
			vol := float64(rec.Bytes) * span.Fraction
			if vol <= 0 {
				continue
			}
			day := int(span.Start / 86400)
			minute := int(span.Start/60) % netsim.MinutesPerDay
			if minute < 0 {
				minute = 0
			}
			err := p.Collector.Observe(netsim.Session{
				Service:   svc,
				BS:        span.BS,
				Day:       day,
				Minute:    minute,
				Start:     math.Mod(span.Start, 86400),
				Duration:  dur,
				Volume:    vol,
				Truncated: len(spans) > 1,
			})
			if err != nil {
				return stats, err
			}
			stats.SessionsSplit++
			p.obsSplits.Inc()
		}
	}
	return stats, nil
}
