package probe

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"

	"mobiletraffic/internal/netsim"
	"mobiletraffic/internal/obs"
)

// Checkpoint codec: the compact binary serialization of a (partial)
// Collector that a sharded campaign writes after each completed shard
// and reloads on resume. The layout, all little-endian:
//
//	magic "MTCP" | version u16
//	numServices u32 | numBS u32 | days u32 | minutesPerDay u32
//	numVolumeEdges u32 | numDurationEdges u32 | numCells u64
//	volume edges  [numVolumeEdges]f64
//	duration edges [numDurationEdges]f64
//	numCells × { slabIndex u64 | Sessions f64
//	             | MinuteCounts [minutesPerDay]f64
//	             | Volume.P    [numVolumeEdges-1]f64
//	             | DurVolSum   [numDurationEdges-1]f64
//	             | DurCount    [numDurationEdges-1]f64 }
//	crc32c u32   (Castagnoli, over every preceding byte)
//
// Only populated cells are written, in ascending slab order, so the
// encoding of a collector is deterministic and a sparse shard stays
// small. Floats are stored as raw IEEE-754 bits, so a decoded
// collector is bit-identical to the encoded one — the property the
// resume-determinism argument stands on (DESIGN.md).
const (
	checkpointMagic   = "MTCP"
	CheckpointVersion = 1
)

// MaxCheckpointCells caps the (services × BS × days) slab size a
// decoder will allocate, guarding ReadCheckpoint against corrupt or
// hostile headers that declare absurd dimensions. Operators running
// genuinely nationwide campaigns (the paper's 282k BS × 45 days) may
// raise it before decoding.
var MaxCheckpointCells = uint64(1) << 27

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Extent returns the collector's current (numBS, days) slab extent.
func (c *Collector) Extent() (numBS, days int) { return c.numBS, c.days }

// crcWriter accumulates a CRC-32C over everything written through it.
type crcWriter struct {
	w   io.Writer
	crc uint32
}

func (cw *crcWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.crc = crc32.Update(cw.crc, crcTable, p[:n])
	return n, err
}

// crcReader accumulates a CRC-32C over everything read through it.
type crcReader struct {
	r   io.Reader
	crc uint32
}

func (cr *crcReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.crc = crc32.Update(cr.crc, crcTable, p[:n])
	return n, err
}

// WriteCheckpoint encodes the collector in the checkpoint format.
func (c *Collector) WriteCheckpoint(w io.Writer) error {
	span := obs.StartSpan("checkpoint/write")
	defer span.End()
	cw := &crcWriter{w: w}
	var scratch [8]byte
	putU16 := func(v uint16) error {
		binary.LittleEndian.PutUint16(scratch[:2], v)
		_, err := cw.Write(scratch[:2])
		return err
	}
	putU32 := func(v uint32) error {
		binary.LittleEndian.PutUint32(scratch[:4], v)
		_, err := cw.Write(scratch[:4])
		return err
	}
	putU64 := func(v uint64) error {
		binary.LittleEndian.PutUint64(scratch[:8], v)
		_, err := cw.Write(scratch[:8])
		return err
	}
	// Reusable encode buffer sized for the largest float64 run.
	maxRun := netsim.MinutesPerDay
	if n := len(c.VolumeEdges); n > maxRun {
		maxRun = n
	}
	if n := len(c.DurationEdges); n > maxRun {
		maxRun = n
	}
	buf := make([]byte, maxRun*8)
	putF64s := func(vs []float64) error {
		b := buf[:len(vs)*8]
		for i, v := range vs {
			binary.LittleEndian.PutUint64(b[i*8:], math.Float64bits(v))
		}
		_, err := cw.Write(b)
		return err
	}

	if _, err := cw.Write([]byte(checkpointMagic)); err != nil {
		return err
	}
	if err := putU16(CheckpointVersion); err != nil {
		return err
	}
	for _, v := range []uint32{
		uint32(c.NumServices), uint32(c.numBS), uint32(c.days),
		netsim.MinutesPerDay, uint32(len(c.VolumeEdges)), uint32(len(c.DurationEdges)),
	} {
		if err := putU32(v); err != nil {
			return err
		}
	}
	var nCells uint64
	for _, st := range c.cells {
		if st != nil {
			nCells++
		}
	}
	if err := putU64(nCells); err != nil {
		return err
	}
	if err := putF64s(c.VolumeEdges); err != nil {
		return err
	}
	if err := putF64s(c.DurationEdges); err != nil {
		return err
	}
	for i, st := range c.cells {
		if st == nil {
			continue
		}
		if err := putU64(uint64(i)); err != nil {
			return err
		}
		if err := putF64s([]float64{st.Sessions}); err != nil {
			return err
		}
		for _, run := range [][]float64{st.MinuteCounts, st.Volume.P, st.DurVolSum, st.DurCount} {
			if err := putF64s(run); err != nil {
				return err
			}
		}
	}
	obs.CounterOf("campaign_checkpoint_cells_total").Add(int64(nCells))
	crc := cw.crc
	binary.LittleEndian.PutUint32(scratch[:4], crc)
	_, err := w.Write(scratch[:4]) // trailer is outside its own CRC
	return err
}

// ReadCheckpoint decodes a checkpoint into a fresh Collector. It
// validates the magic, version, dimensions and trailing CRC, and
// returns an error — never panics — on truncated, bit-flipped or
// otherwise malformed input.
func ReadCheckpoint(r io.Reader) (*Collector, error) {
	span := obs.StartSpan("checkpoint/read")
	defer span.End()
	br := bufio.NewReaderSize(r, 1<<16)
	cr := &crcReader{r: br}
	var scratch [8]byte
	getU16 := func() (uint16, error) {
		if _, err := io.ReadFull(cr, scratch[:2]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint16(scratch[:2]), nil
	}
	getU32 := func() (uint32, error) {
		if _, err := io.ReadFull(cr, scratch[:4]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(scratch[:4]), nil
	}
	getU64 := func() (uint64, error) {
		if _, err := io.ReadFull(cr, scratch[:8]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(scratch[:8]), nil
	}
	var buf []byte
	getF64s := func(dst []float64) error {
		need := len(dst) * 8
		if cap(buf) < need {
			buf = make([]byte, need)
		}
		b := buf[:need]
		if _, err := io.ReadFull(cr, b); err != nil {
			return err
		}
		for i := range dst {
			dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
		}
		return nil
	}

	if _, err := io.ReadFull(cr, scratch[:4]); err != nil {
		return nil, fmt.Errorf("probe: checkpoint header: %w", err)
	}
	if string(scratch[:4]) != checkpointMagic {
		return nil, fmt.Errorf("probe: not a checkpoint (magic %q)", scratch[:4])
	}
	version, err := getU16()
	if err != nil {
		return nil, fmt.Errorf("probe: checkpoint version: %w", err)
	}
	if version != CheckpointVersion {
		return nil, fmt.Errorf("probe: unsupported checkpoint version %d (have %d)", version, CheckpointVersion)
	}
	var dims [6]uint32
	for i := range dims {
		if dims[i], err = getU32(); err != nil {
			return nil, fmt.Errorf("probe: checkpoint dims: %w", err)
		}
	}
	numServices, numBS, days := dims[0], dims[1], dims[2]
	minutes, nVolEdges, nDurEdges := dims[3], dims[4], dims[5]
	if numServices == 0 || numServices > 1<<20 {
		return nil, fmt.Errorf("probe: checkpoint declares %d services", numServices)
	}
	if minutes != netsim.MinutesPerDay {
		return nil, fmt.Errorf("probe: checkpoint minute grid %d != %d", minutes, netsim.MinutesPerDay)
	}
	if nVolEdges < 2 || nVolEdges > 1<<20 || nDurEdges < 2 || nDurEdges > 1<<20 {
		return nil, fmt.Errorf("probe: checkpoint edge counts %d/%d out of range", nVolEdges, nDurEdges)
	}
	slab := uint64(numServices) * uint64(numBS) * uint64(days)
	if slab > MaxCheckpointCells {
		return nil, fmt.Errorf("probe: checkpoint slab %d cells exceeds cap %d", slab, MaxCheckpointCells)
	}
	nCells, err := getU64()
	if err != nil {
		return nil, fmt.Errorf("probe: checkpoint cell count: %w", err)
	}
	if nCells > slab {
		return nil, fmt.Errorf("probe: checkpoint declares %d cells in a %d-cell slab", nCells, slab)
	}
	volEdges := make([]float64, nVolEdges)
	durEdges := make([]float64, nDurEdges)
	if err := getF64s(volEdges); err != nil {
		return nil, fmt.Errorf("probe: checkpoint volume edges: %w", err)
	}
	if err := getF64s(durEdges); err != nil {
		return nil, fmt.Errorf("probe: checkpoint duration edges: %w", err)
	}
	c, err := NewCollectorGrids(int(numServices), int(numBS), int(days), volEdges, durEdges)
	if err != nil {
		return nil, fmt.Errorf("probe: checkpoint grids: %w", err)
	}
	var one [1]float64
	prev := int64(-1)
	for n := uint64(0); n < nCells; n++ {
		idx, err := getU64()
		if err != nil {
			return nil, fmt.Errorf("probe: checkpoint cell %d index: %w", n, err)
		}
		if idx >= slab || int64(idx) <= prev {
			return nil, fmt.Errorf("probe: checkpoint cell index %d out of order or range", idx)
		}
		prev = int64(idx)
		st := c.newCell()
		c.cells[idx] = st
		if err := getF64s(one[:]); err != nil {
			return nil, fmt.Errorf("probe: checkpoint cell %d: %w", n, err)
		}
		st.Sessions = one[0]
		for _, run := range [][]float64{st.MinuteCounts, st.Volume.P, st.DurVolSum, st.DurCount} {
			if err := getF64s(run); err != nil {
				return nil, fmt.Errorf("probe: checkpoint cell %d payload: %w", n, err)
			}
		}
	}
	want := cr.crc
	// The trailer is read from the underlying reader so it does not
	// fold into its own checksum.
	if _, err := io.ReadFull(br, scratch[:4]); err != nil {
		return nil, fmt.Errorf("probe: checkpoint trailer: %w", err)
	}
	if got := binary.LittleEndian.Uint32(scratch[:4]); got != want {
		return nil, fmt.Errorf("probe: checkpoint CRC mismatch (stored %08x, computed %08x)", got, want)
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("probe: trailing bytes after checkpoint")
	}
	return c, nil
}

// WriteCheckpointFile writes the checkpoint crash-safely: the encoding
// goes to a temporary file in the destination directory, is fsynced,
// and only then renamed over path, so a crash mid-write can never
// leave a torn checkpoint under the final name. The directory is
// fsynced after the rename so the new name itself survives a crash.
func (c *Collector) WriteCheckpointFile(path string) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("probe: checkpoint temp: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	bw := bufio.NewWriterSize(tmp, 1<<20)
	if err := c.WriteCheckpoint(bw); err != nil {
		tmp.Close()
		return fmt.Errorf("probe: checkpoint encode: %w", err)
	}
	if err := bw.Flush(); err != nil {
		tmp.Close()
		return fmt.Errorf("probe: checkpoint flush: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("probe: checkpoint fsync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("probe: checkpoint close: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("probe: checkpoint rename: %w", err)
	}
	syncDir(dir)
	obs.CounterOf("campaign_checkpoint_writes_total").Inc()
	return nil
}

// ReadCheckpointFile decodes a checkpoint file written by
// WriteCheckpointFile.
func ReadCheckpointFile(path string) (*Collector, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("probe: checkpoint open: %w", err)
	}
	defer f.Close()
	c, err := ReadCheckpoint(f)
	if err != nil {
		return nil, fmt.Errorf("probe: checkpoint %s: %w", filepath.Base(path), err)
	}
	obs.CounterOf("campaign_checkpoint_loads_total").Inc()
	return c, nil
}

// syncDir fsyncs a directory so a just-renamed entry is durable.
// Best-effort: some platforms (and some filesystems) reject directory
// fsync, and the rename itself is already atomic.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}
