package probe

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"mobiletraffic/internal/obs"
)

// Merge folds the statistics of other into c. Both collectors must
// share the same service count and measurement grids. Merging is
// associative and commutative, so a measurement campaign can be
// aggregated by independent workers (e.g. one per base station) whose
// collectors are merged afterwards — the map-reduce layout a real
// probe deployment uses across gateway sites.
func (c *Collector) Merge(other *Collector) error {
	return c.MergeAll([]*Collector{other}, 1)
}

// MergeAll folds a set of partial collectors into c in slice order. The
// dense slabs are index-aligned, so the walk shards by service across
// up to workers goroutines (workers <= 0 uses every CPU): shards touch
// disjoint cell ranges and each destination cell receives its
// contributions in the same partial order as a serial pairwise Merge
// chain, so the result is bit-identical regardless of worker count.
func (c *Collector) MergeAll(others []*Collector, workers int) error {
	for _, other := range others {
		if kind, err := c.mergeCheck(other); err != nil {
			obs.CounterOf("probe_merge_conflicts_total", "kind", kind).Inc()
			return err
		}
	}
	c.mergeChecked(others, workers)
	return nil
}

// mergeCheck validates that other can fold into c, returning the
// conflict kind (the probe_merge_conflicts_total label) on failure.
func (c *Collector) mergeCheck(other *Collector) (kind string, err error) {
	if other == nil {
		return "nil", errors.New("probe: merge with nil collector")
	}
	if c.NumServices != other.NumServices {
		return "services", fmt.Errorf("probe: merge service counts differ: %d vs %d", c.NumServices, other.NumServices)
	}
	if !sameEdges(c.VolumeEdges, other.VolumeEdges) || !sameEdges(c.DurationEdges, other.DurationEdges) {
		return "grids", errors.New("probe: merge grids differ")
	}
	return "", nil
}

// MergePartial is the fate of one partial collector in a
// MergeAllReport call.
type MergePartial struct {
	Index  int    // position in the input slice
	Merged bool   // folded into the destination
	Reason string // why the partial was skipped (empty when merged)
}

// MergeReport accounts for every partial offered to MergeAllReport.
type MergeReport struct {
	Partials []MergePartial
	Merged   int
	Skipped  int
}

// Degraded reports whether any partial was skipped.
func (r *MergeReport) Degraded() bool { return r.Skipped > 0 }

// Summary renders a one-line account of the merge.
func (r *MergeReport) Summary() string {
	if !r.Degraded() {
		return fmt.Sprintf("merged %d/%d partials", r.Merged, len(r.Partials))
	}
	s := fmt.Sprintf("merged %d/%d partials;", r.Merged, len(r.Partials))
	for _, p := range r.Partials {
		if !p.Merged {
			s += fmt.Sprintf(" #%d skipped (%s)", p.Index, p.Reason)
		}
	}
	return s
}

// MergeAllReport is the graceful-degradation variant of MergeAll: nil
// or grid/service-mismatched partials are skipped — and counted via
// probe_merge_conflicts_total — instead of aborting the fold, so a
// campaign that lost a shard still aggregates everything that
// survived. The returned report records the fate of every partial;
// merge order among the surviving partials is their slice order, the
// same bit-identity contract as MergeAll.
func (c *Collector) MergeAllReport(others []*Collector, workers int) (*MergeReport, error) {
	report := &MergeReport{Partials: make([]MergePartial, len(others))}
	good := make([]*Collector, 0, len(others))
	for i, other := range others {
		p := MergePartial{Index: i}
		if kind, err := c.mergeCheck(other); err != nil {
			obs.CounterOf("probe_merge_conflicts_total", "kind", kind).Inc()
			p.Reason = err.Error()
			report.Skipped++
		} else {
			p.Merged = true
			report.Merged++
			good = append(good, other)
		}
		report.Partials[i] = p
	}
	c.mergeChecked(good, workers)
	return report, nil
}

// mergeChecked folds pre-validated partials into c; see MergeAll for
// the determinism argument.
func (c *Collector) mergeChecked(others []*Collector, workers int) {
	// Grow the destination slab once, up front, so the per-service
	// shards only ever write disjoint index ranges.
	maxBS, maxDays := c.numBS, c.days
	for _, other := range others {
		if other.numBS > maxBS {
			maxBS = other.numBS
		}
		if other.days > maxDays {
			maxDays = other.days
		}
	}
	if maxBS > c.numBS || maxDays > c.days {
		c.ensure(maxBS-1, maxDays-1)
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > c.NumServices {
		workers = c.NumServices
	}
	if workers <= 1 {
		for svc := 0; svc < c.NumServices; svc++ {
			c.mergeService(svc, others)
		}
		return
	}
	var wg sync.WaitGroup
	var next atomic.Int64
	next.Store(-1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				svc := int(next.Add(1))
				if svc >= c.NumServices {
					return
				}
				c.mergeService(svc, others)
			}
		}()
	}
	wg.Wait()
}

// mergeService folds one service's cells from every partial, in partial
// order, into c. Only cells of service svc are touched, so concurrent
// calls for distinct services are race-free.
func (c *Collector) mergeService(svc int, others []*Collector) {
	for _, other := range others {
		for bs := 0; bs < other.numBS; bs++ {
			srcBase := (svc*other.numBS + bs) * other.days
			dstBase := (svc*c.numBS + bs) * c.days
			for day := 0; day < other.days; day++ {
				src := other.cells[srcBase+day]
				if src == nil {
					continue
				}
				dst := c.cells[dstBase+day]
				if dst == nil {
					dst = c.newCell()
					c.cells[dstBase+day] = dst
				}
				for m, v := range src.MinuteCounts {
					dst.MinuteCounts[m] += v
				}
				dst.Sessions += src.Sessions
				for i, p := range src.Volume.P {
					dst.Volume.P[i] += p
				}
				for i := range src.DurVolSum {
					dst.DurVolSum[i] += src.DurVolSum[i]
					dst.DurCount[i] += src.DurCount[i]
				}
			}
		}
	}
}

func sameEdges(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
