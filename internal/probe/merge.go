package probe

import (
	"errors"
	"fmt"

	"mobiletraffic/internal/obs"
)

// Merge folds the statistics of other into c. Both collectors must
// share the same service count and measurement grids. Merging is
// associative and commutative, so a measurement campaign can be
// aggregated by independent workers (e.g. one per base station) whose
// collectors are merged afterwards — the map-reduce layout a real
// probe deployment uses across gateway sites.
func (c *Collector) Merge(other *Collector) error {
	if other == nil {
		obs.CounterOf("probe_merge_conflicts_total", "kind", "nil").Inc()
		return errors.New("probe: merge with nil collector")
	}
	if c.NumServices != other.NumServices {
		obs.CounterOf("probe_merge_conflicts_total", "kind", "services").Inc()
		return fmt.Errorf("probe: merge service counts differ: %d vs %d", c.NumServices, other.NumServices)
	}
	if !sameEdges(c.VolumeEdges, other.VolumeEdges) || !sameEdges(c.DurationEdges, other.DurationEdges) {
		obs.CounterOf("probe_merge_conflicts_total", "kind", "grids").Inc()
		return errors.New("probe: merge grids differ")
	}
	for key, src := range other.stats {
		dst, err := c.cell(key)
		if err != nil {
			return err
		}
		for m, v := range src.MinuteCounts {
			dst.MinuteCounts[m] += v
		}
		dst.Sessions += src.Sessions
		for i, p := range src.Volume.P {
			dst.Volume.P[i] += p
		}
		for i := range src.DurVolSum {
			dst.DurVolSum[i] += src.DurVolSum[i]
			dst.DurCount[i] += src.DurCount[i]
		}
	}
	return nil
}

func sameEdges(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
