package probe

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"mobiletraffic/internal/obs"
)

// Merge folds the statistics of other into c. Both collectors must
// share the same service count and measurement grids. Merging is
// associative and commutative, so a measurement campaign can be
// aggregated by independent workers (e.g. one per base station) whose
// collectors are merged afterwards — the map-reduce layout a real
// probe deployment uses across gateway sites.
func (c *Collector) Merge(other *Collector) error {
	return c.MergeAll([]*Collector{other}, 1)
}

// MergeAll folds a set of partial collectors into c in slice order. The
// dense slabs are index-aligned, so the walk shards by service across
// up to workers goroutines (workers <= 0 uses every CPU): shards touch
// disjoint cell ranges and each destination cell receives its
// contributions in the same partial order as a serial pairwise Merge
// chain, so the result is bit-identical regardless of worker count.
func (c *Collector) MergeAll(others []*Collector, workers int) error {
	for _, other := range others {
		if other == nil {
			obs.CounterOf("probe_merge_conflicts_total", "kind", "nil").Inc()
			return errors.New("probe: merge with nil collector")
		}
		if c.NumServices != other.NumServices {
			obs.CounterOf("probe_merge_conflicts_total", "kind", "services").Inc()
			return fmt.Errorf("probe: merge service counts differ: %d vs %d", c.NumServices, other.NumServices)
		}
		if !sameEdges(c.VolumeEdges, other.VolumeEdges) || !sameEdges(c.DurationEdges, other.DurationEdges) {
			obs.CounterOf("probe_merge_conflicts_total", "kind", "grids").Inc()
			return errors.New("probe: merge grids differ")
		}
	}
	// Grow the destination slab once, up front, so the per-service
	// shards only ever write disjoint index ranges.
	maxBS, maxDays := c.numBS, c.days
	for _, other := range others {
		if other.numBS > maxBS {
			maxBS = other.numBS
		}
		if other.days > maxDays {
			maxDays = other.days
		}
	}
	if maxBS > c.numBS || maxDays > c.days {
		c.ensure(maxBS-1, maxDays-1)
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > c.NumServices {
		workers = c.NumServices
	}
	if workers <= 1 {
		for svc := 0; svc < c.NumServices; svc++ {
			c.mergeService(svc, others)
		}
		return nil
	}
	var wg sync.WaitGroup
	var next atomic.Int64
	next.Store(-1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				svc := int(next.Add(1))
				if svc >= c.NumServices {
					return
				}
				c.mergeService(svc, others)
			}
		}()
	}
	wg.Wait()
	return nil
}

// mergeService folds one service's cells from every partial, in partial
// order, into c. Only cells of service svc are touched, so concurrent
// calls for distinct services are race-free.
func (c *Collector) mergeService(svc int, others []*Collector) {
	for _, other := range others {
		for bs := 0; bs < other.numBS; bs++ {
			srcBase := (svc*other.numBS + bs) * other.days
			dstBase := (svc*c.numBS + bs) * c.days
			for day := 0; day < other.days; day++ {
				src := other.cells[srcBase+day]
				if src == nil {
					continue
				}
				dst := c.cells[dstBase+day]
				if dst == nil {
					dst = c.newCell()
					c.cells[dstBase+day] = dst
				}
				for m, v := range src.MinuteCounts {
					dst.MinuteCounts[m] += v
				}
				dst.Sessions += src.Sessions
				for i, p := range src.Volume.P {
					dst.Volume.P[i] += p
				}
				for i := range src.DurVolSum {
					dst.DurVolSum[i] += src.DurVolSum[i]
					dst.DurCount[i] += src.DurCount[i]
				}
			}
		}
	}
}

func sameEdges(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
