package probe

import (
	"fmt"
	"math"
	"sort"
	"strconv"

	"mobiletraffic/internal/dist"
	"mobiletraffic/internal/mathx"
	"mobiletraffic/internal/netsim"
	"mobiletraffic/internal/obs"
)

// Default measurement grids. Volumes live on a log10-bytes abscissa
// from 100 B to ~30 GB; durations on a log10-seconds abscissa from 1 s
// to ~28 h, matching the "discretized duration" pairs of §3.2.
var (
	// DefaultVolumeEdges spans log10(bytes) in [2, 10.5] with 0.05-decade bins.
	DefaultVolumeEdges = mathx.LinSpace(2, 10.5, 171)
	// DefaultDurationEdges spans log10(seconds) in [0, 5] with 0.1-decade bins.
	DefaultDurationEdges = mathx.LinSpace(0, 5, 51)
)

// StatKey identifies one (service, BS, day) statistics cell.
type StatKey struct {
	Service int
	BS      int
	Day     int
}

// DayStats holds the privacy-preserving aggregate the operator exports
// per (service, BS, day) tuple (§3.2): per-minute session counts
// w^{c,m}, the traffic volume PDF F^{c,t}, and duration-volume pairs
// v^{c,t}(d).
type DayStats struct {
	// MinuteCounts[m] is the number of sessions established in minute m.
	MinuteCounts []float64
	// Sessions is the daily total w^{c,t}.
	Sessions float64
	// Volume is the histogram of per-session log10 traffic volume. Its
	// Edges are shared with the owning Collector and must not be
	// mutated.
	Volume *dist.Hist
	// DurVolSum[i] and DurCount[i] accumulate volume and session count
	// per duration bin, so DurVolSum[i]/DurCount[i] is v(d_i).
	DurVolSum, DurCount []float64
}

// PairValues returns the mean volume per duration bin (NaN for empty
// bins): the v^{c,t}_s(d) value pairs.
func (d *DayStats) PairValues() []float64 {
	out := make([]float64, len(d.DurVolSum))
	for i := range out {
		if d.DurCount[i] > 0 {
			out[i] = d.DurVolSum[i] / d.DurCount[i]
		} else {
			out[i] = math.NaN()
		}
	}
	return out
}

// binner maps a domain value onto a fixed ascending edge grid with
// dist.Hist.BinIndex semantics: values outside the grid clamp into the
// boundary bins and the right-most edge belongs to the last bin.
// Uniform grids (validated at construction) take an O(1) multiplicative
// path double-checked against the edges so float rounding can never
// mis-bin; non-uniform grids fall back to binary search.
type binner struct {
	edges   []float64
	n       int // bins = len(edges)-1
	uniform bool
	lo      float64
	invW    float64 // bins per domain unit on the uniform path
}

func newBinner(edges []float64) binner {
	n := len(edges) - 1
	b := binner{edges: edges, n: n, lo: edges[0]}
	span := edges[n] - edges[0]
	if span > 0 {
		b.invW = float64(n) / span
	}
	w := span / float64(n)
	b.uniform = true
	for i := 1; i <= n; i++ {
		ideal := edges[0] + float64(i)*w
		if math.Abs(edges[i]-ideal) > 1e-9*math.Max(1, math.Abs(ideal)) {
			b.uniform = false
			break
		}
	}
	return b
}

func (b *binner) bin(x float64) int {
	if x <= b.edges[0] {
		return 0
	}
	if x >= b.edges[b.n] {
		return b.n - 1
	}
	if b.uniform {
		i := int((x - b.lo) * b.invW)
		if i > b.n-1 {
			i = b.n - 1
		}
		// The multiplicative guess can be one off at bin boundaries;
		// settle it against the actual edges.
		for i > 0 && x < b.edges[i] {
			i--
		}
		for i < b.n-1 && x >= b.edges[i+1] {
			i++
		}
		return i
	}
	i := sort.SearchFloat64s(b.edges, x)
	if i > 0 && b.edges[i] > x {
		i--
	}
	if i >= b.n {
		i = b.n - 1
	}
	return i
}

// Collector accumulates simulated sessions into the per-(service, BS,
// day) statistics of §3.2.
//
// Cells live in a dense, index-addressed slab: cell (service, bs, day)
// sits at slot (service*numBS+bs)*days+day, so folding a session is a
// bounds check plus an array index (zero allocations once the cell
// exists), iteration is deterministic by construction (ascending
// service, BS, day — no per-aggregation key sort), and merging partial
// collectors is an index-aligned slab walk that shards by service. The
// BS and day dimensions grow geometrically on demand, so callers that
// don't know the campaign extent up front can keep using NewCollector;
// the collection path pre-sizes via NewCollectorSized and never grows.
//
// The measurement grids are fixed at construction; do not mutate
// VolumeEdges or DurationEdges on a live collector.
type Collector struct {
	VolumeEdges   []float64
	DurationEdges []float64
	NumServices   int

	numBS, days int
	cells       []*DayStats // len = NumServices*numBS*days, service-major

	volBinner binner // log10-volume -> Volume.P index
	durBinner binner // log10-duration -> DurVolSum/DurCount index

	// obsFlows[svc] counts the sessions folded in per service
	// (probe_flows_tracked_total{service=...}); handles are resolved
	// once at construction so Observe never does a metric lookup, and
	// are nil (free) when instrumentation is disabled.
	obsFlows []*obs.Counter
}

// NewCollector returns a Collector over the default measurement grids.
// The BS/day extent grows on demand as sessions are observed.
func NewCollector(numServices int) (*Collector, error) {
	return NewCollectorSized(numServices, 0, 0)
}

// NewCollectorSized returns a Collector over the default grids with the
// (BS, day) extent pre-sized, so a collection campaign of known shape
// never pays a slab re-layout.
func NewCollectorSized(numServices, numBS, days int) (*Collector, error) {
	return NewCollectorGrids(numServices, numBS, days, DefaultVolumeEdges, DefaultDurationEdges)
}

// NewCollectorGrids returns a Collector over custom measurement grids.
// Both edge sets must be strictly ascending with at least two edges;
// non-uniform duration grids are binned by binary search.
func NewCollectorGrids(numServices, numBS, days int, volumeEdges, durationEdges []float64) (*Collector, error) {
	if numServices <= 0 {
		return nil, fmt.Errorf("probe: collector needs >= 1 service, got %d", numServices)
	}
	if numBS < 0 || days < 0 {
		return nil, fmt.Errorf("probe: negative collector extent %dx%d", numBS, days)
	}
	// Validate the grids once here so per-cell histograms can share the
	// edge slices without re-checking.
	if _, err := dist.NewHist(volumeEdges); err != nil {
		return nil, fmt.Errorf("probe: volume grid: %w", err)
	}
	if _, err := dist.NewHist(durationEdges); err != nil {
		return nil, fmt.Errorf("probe: duration grid: %w", err)
	}
	c := &Collector{
		VolumeEdges:   volumeEdges,
		DurationEdges: durationEdges,
		NumServices:   numServices,
		numBS:         numBS,
		days:          days,
		cells:         make([]*DayStats, numServices*numBS*days),
		volBinner:     newBinner(volumeEdges),
		durBinner:     newBinner(durationEdges),
	}
	if obs.Enabled() {
		c.obsFlows = make([]*obs.Counter, numServices)
		for i := range c.obsFlows {
			c.obsFlows[i] = obs.CounterOf("probe_flows_tracked_total",
				"service", "svc"+strconv.Itoa(i))
		}
	}
	return c, nil
}

// idx returns the slab slot of a key; the key must be in range.
func (c *Collector) idx(svc, bs, day int) int {
	return (svc*c.numBS+bs)*c.days + day
}

// ensure grows the slab so (bs, day) is addressable. Growth is
// geometric on both dimensions, so repeated out-of-range observations
// re-layout the slab O(log) times. Growing relocates the slab but not
// the cells, so *DayStats pointers handed out earlier stay valid.
func (c *Collector) ensure(bs, day int) {
	if bs < c.numBS && day < c.days {
		return
	}
	newBS, newDays := c.numBS, c.days
	for newBS <= bs {
		if newBS == 0 {
			newBS = bs + 1
		} else {
			newBS *= 2
		}
	}
	for newDays <= day {
		if newDays == 0 {
			newDays = day + 1
		} else {
			newDays *= 2
		}
	}
	cells := make([]*DayStats, c.NumServices*newBS*newDays)
	for svc := 0; svc < c.NumServices; svc++ {
		for b := 0; b < c.numBS; b++ {
			copy(cells[(svc*newBS+b)*newDays:], c.cells[(svc*c.numBS+b)*c.days:(svc*c.numBS+b+1)*c.days])
		}
	}
	c.numBS, c.days, c.cells = newBS, newDays, cells
}

// newCell allocates one statistics cell. All four accumulator arrays
// share a single backing slab for locality; the volume histogram shares
// the collector's edge slice.
func (c *Collector) newCell() *DayStats {
	nv := len(c.VolumeEdges) - 1
	nd := len(c.DurationEdges) - 1
	buf := make([]float64, netsim.MinutesPerDay+nv+2*nd)
	mc, rest := buf[:netsim.MinutesPerDay:netsim.MinutesPerDay], buf[netsim.MinutesPerDay:]
	vp, rest := rest[:nv:nv], rest[nv:]
	dv, dc := rest[:nd:nd], rest[nd:nd+nd:nd+nd]
	return &DayStats{
		MinuteCounts: mc,
		Volume:       &dist.Hist{Edges: c.VolumeEdges, P: vp},
		DurVolSum:    dv,
		DurCount:     dc,
	}
}

// cell returns the statistics cell for a key, creating it if needed.
func (c *Collector) cell(key StatKey) *DayStats {
	c.ensure(key.BS, key.Day)
	i := c.idx(key.Service, key.BS, key.Day)
	st := c.cells[i]
	if st == nil {
		st = c.newCell()
		c.cells[i] = st
	}
	return st
}

// durBin maps a duration in seconds to its log-spaced bin index.
func (c *Collector) durBin(duration float64) int {
	return c.durBinner.bin(math.Log10(math.Max(duration, 1)))
}

// Observe folds one session into the statistics. In steady state (cell
// already touched) it performs no allocations.
func (c *Collector) Observe(s netsim.Session) error {
	if s.Service < 0 || s.Service >= c.NumServices {
		return fmt.Errorf("probe: session service %d out of range [0, %d)", s.Service, c.NumServices)
	}
	if s.Minute < 0 || s.Minute >= netsim.MinutesPerDay {
		return fmt.Errorf("probe: session minute %d out of range", s.Minute)
	}
	if s.BS < 0 || s.Day < 0 {
		return fmt.Errorf("probe: session cell (%d, %d) out of range", s.BS, s.Day)
	}
	var st *DayStats
	if s.BS < c.numBS && s.Day < c.days {
		i := c.idx(s.Service, s.BS, s.Day)
		if st = c.cells[i]; st == nil {
			st = c.newCell()
			c.cells[i] = st
		}
	} else {
		st = c.cell(StatKey{Service: s.Service, BS: s.BS, Day: s.Day})
	}
	st.MinuteCounts[s.Minute]++
	st.Sessions++
	st.Volume.P[c.volBinner.bin(math.Log10(math.Max(s.Volume, 1)))]++
	bin := c.durBin(s.Duration)
	st.DurVolSum[bin] += s.Volume
	st.DurCount[bin]++
	if c.obsFlows != nil {
		c.obsFlows[s.Service].Inc()
	}
	return nil
}

// ObserveBatch folds a batch of sessions, stopping at the first
// invalid one. It is the bulk counterpart of Observe for batched
// generation (netsim.GenerateDayBatch).
func (c *Collector) ObserveBatch(batch []netsim.Session) error {
	for i := range batch {
		if err := c.Observe(batch[i]); err != nil {
			return err
		}
	}
	return nil
}

// TotalSessions returns the number of sessions observed across every
// statistics cell — the campaign's grand total w, used e.g. to gauge
// how much of a workload survived an injected-fault run.
func (c *Collector) TotalSessions() float64 {
	var total float64
	for _, st := range c.cells {
		if st != nil {
			total += st.Sessions
		}
	}
	return total
}

// Get returns the statistics cell for a key, if present.
func (c *Collector) Get(key StatKey) (*DayStats, bool) {
	if key.Service < 0 || key.Service >= c.NumServices ||
		key.BS < 0 || key.BS >= c.numBS || key.Day < 0 || key.Day >= c.days {
		return nil, false
	}
	st := c.cells[c.idx(key.Service, key.BS, key.Day)]
	return st, st != nil
}

// Keys returns every populated (service, BS, day) key in deterministic
// ascending (service, BS, day) order — the iteration order of every
// aggregation, by construction of the dense slab.
func (c *Collector) Keys() []StatKey {
	var out []StatKey
	c.forEachCell(nil, func(k StatKey, _ *DayStats) {
		out = append(out, k)
	})
	return out
}

// forEachCell visits every populated cell passing the filter in
// ascending (service, BS, day) order. Every aggregation iterates this
// way so that floating-point summation — and therefore every fitted
// parameter — is reproducible run to run regardless of the parallelism
// of collection.
func (c *Collector) forEachCell(filter KeyFilter, fn func(k StatKey, st *DayStats)) {
	i := 0
	for svc := 0; svc < c.NumServices; svc++ {
		for bs := 0; bs < c.numBS; bs++ {
			for day := 0; day < c.days; day++ {
				st := c.cells[i]
				i++
				if st == nil {
					continue
				}
				k := StatKey{Service: svc, BS: bs, Day: day}
				if filter != nil && !filter(k) {
					continue
				}
				fn(k, st)
			}
		}
	}
}
