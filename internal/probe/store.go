package probe

import (
	"fmt"
	"math"
	"sort"
	"strconv"

	"mobiletraffic/internal/dist"
	"mobiletraffic/internal/mathx"
	"mobiletraffic/internal/netsim"
	"mobiletraffic/internal/obs"
)

// Default measurement grids. Volumes live on a log10-bytes abscissa
// from 100 B to ~30 GB; durations on a log10-seconds abscissa from 1 s
// to ~28 h, matching the "discretized duration" pairs of §3.2.
var (
	// DefaultVolumeEdges spans log10(bytes) in [2, 10.5] with 0.05-decade bins.
	DefaultVolumeEdges = mathx.LinSpace(2, 10.5, 171)
	// DefaultDurationEdges spans log10(seconds) in [0, 5] with 0.1-decade bins.
	DefaultDurationEdges = mathx.LinSpace(0, 5, 51)
)

// StatKey identifies one (service, BS, day) statistics cell.
type StatKey struct {
	Service int
	BS      int
	Day     int
}

// DayStats holds the privacy-preserving aggregate the operator exports
// per (service, BS, day) tuple (§3.2): per-minute session counts
// w^{c,m}, the traffic volume PDF F^{c,t}, and duration-volume pairs
// v^{c,t}(d).
type DayStats struct {
	// MinuteCounts[m] is the number of sessions established in minute m.
	MinuteCounts []float64
	// Sessions is the daily total w^{c,t}.
	Sessions float64
	// Volume is the histogram of per-session log10 traffic volume. Its
	// Edges are shared with the owning Collector and must not be
	// mutated.
	Volume *dist.Hist
	// DurVolSum[i] and DurCount[i] accumulate volume and session count
	// per duration bin, so DurVolSum[i]/DurCount[i] is v(d_i).
	DurVolSum, DurCount []float64
}

// PairValues returns the mean volume per duration bin (NaN for empty
// bins): the v^{c,t}_s(d) value pairs.
func (d *DayStats) PairValues() []float64 {
	out := make([]float64, len(d.DurVolSum))
	for i := range out {
		if d.DurCount[i] > 0 {
			out[i] = d.DurVolSum[i] / d.DurCount[i]
		} else {
			out[i] = math.NaN()
		}
	}
	return out
}

// binner maps a domain value onto a fixed ascending edge grid with
// dist.Hist.BinIndex semantics: values outside the grid clamp into the
// boundary bins and the right-most edge belongs to the last bin.
// Uniform grids (validated at construction) take an O(1) multiplicative
// path double-checked against the edges so float rounding can never
// mis-bin; non-uniform grids fall back to binary search.
type binner struct {
	edges   []float64
	n       int // bins = len(edges)-1
	uniform bool
	lo      float64
	invW    float64   // bins per domain unit on the uniform path
	thr     []float64 // linear thresholds: thr[j] = min x with Log10(Max(x,1)) >= edges[j]
}

func newBinner(edges []float64) binner {
	n := len(edges) - 1
	b := binner{edges: edges, n: n, lo: edges[0]}
	span := edges[n] - edges[0]
	if span > 0 {
		b.invW = float64(n) / span
	}
	w := span / float64(n)
	b.uniform = true
	for i := 1; i <= n; i++ {
		ideal := edges[0] + float64(i)*w
		if math.Abs(edges[i]-ideal) > 1e-9*math.Max(1, math.Abs(ideal)) {
			b.uniform = false
			break
		}
	}
	b.thr = make([]float64, n+1)
	for i := range b.thr {
		b.thr[i] = linThr(edges[i])
	}
	return b
}

// linThr returns the smallest non-negative float64 x satisfying
// Log10(Max(x, 1)) >= e, found by bisecting the float bit ordering
// (non-negative float64s compare exactly like their bit patterns).
// Comparing a linear value v against these thresholds bins it exactly
// as binning Log10(Max(v, 1)) against the log-space edges would —
// Log10 is monotone, so {v : Log10(Max(v,1)) >= e} is [thr, inf) —
// without a per-sample transcendental call. The oracle property test
// pins the equivalence against the scalar Observe path.
func linThr(e float64) float64 {
	if e <= 0 {
		return 0 // Log10(Max(x,1)) >= 0 for every x
	}
	if math.Log10(math.MaxFloat64) < e {
		return math.Inf(1) // unreachable edge: no finite x qualifies
	}
	lo, hi := uint64(0), math.Float64bits(math.MaxFloat64)
	for lo < hi {
		mid := lo + (hi-lo)/2
		if math.Log10(math.Max(math.Float64frombits(mid), 1)) >= e {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return math.Float64frombits(lo)
}

// approxLog10 estimates Log10(Max(x, 1)) for x >= 0 from the float
// bit pattern alone — exponent plus a linear mantissa term — within
// ~0.026 (always from below), close enough to seed a bin guess that
// one threshold-settle step then makes exact.
func approxLog10(x float64) float64 {
	bits := math.Float64bits(x)
	e := float64(int((bits>>52)&0x7ff) - 1023)
	m := float64(bits&(1<<52-1)) * (1.0 / (1 << 52))
	lg := (e + m) * 0.30102999566398
	if lg < 0 {
		return 0
	}
	return lg
}

func (b *binner) bin(x float64) int {
	if x <= b.edges[0] {
		return 0
	}
	if x >= b.edges[b.n] {
		return b.n - 1
	}
	if b.uniform {
		i := int((x - b.lo) * b.invW)
		if i > b.n-1 {
			i = b.n - 1
		}
		// The multiplicative guess can be one off at bin boundaries;
		// settle it against the actual edges.
		for i > 0 && x < b.edges[i] {
			i--
		}
		for i < b.n-1 && x >= b.edges[i+1] {
			i++
		}
		return i
	}
	i := sort.SearchFloat64s(b.edges, x)
	if i > 0 && b.edges[i] > x {
		i--
	}
	if i >= b.n {
		i = b.n - 1
	}
	return i
}

// Collector accumulates simulated sessions into the per-(service, BS,
// day) statistics of §3.2.
//
// Cells live in a dense, index-addressed slab: cell (service, bs, day)
// sits at slot (service*numBS+bs)*days+day, so folding a session is a
// bounds check plus an array index (zero allocations once the cell
// exists), iteration is deterministic by construction (ascending
// service, BS, day — no per-aggregation key sort), and merging partial
// collectors is an index-aligned slab walk that shards by service. The
// BS and day dimensions grow geometrically on demand, so callers that
// don't know the campaign extent up front can keep using NewCollector;
// the collection path pre-sizes via NewCollectorSized and never grows.
//
// The measurement grids are fixed at construction; do not mutate
// VolumeEdges or DurationEdges on a live collector.
type Collector struct {
	VolumeEdges   []float64
	DurationEdges []float64
	NumServices   int

	numBS, days int
	cells       []*DayStats // len = NumServices*numBS*days, service-major

	volBinner binner // log10-volume -> Volume.P index
	durBinner binner // log10-duration -> DurVolSum/DurCount index

	// obsFlows[svc] counts the sessions folded in per service
	// (probe_flows_tracked_total{service=...}); handles are resolved
	// once at construction so Observe never does a metric lookup, and
	// are nil (free) when instrumentation is disabled. flowScratch is
	// ObserveColumns' per-service tally buffer (lazily allocated once),
	// so the columnar path batches one Add per touched service instead
	// of one per session.
	obsFlows    []*obs.Counter
	flowScratch []int64
}

// NewCollector returns a Collector over the default measurement grids.
// The BS/day extent grows on demand as sessions are observed.
func NewCollector(numServices int) (*Collector, error) {
	return NewCollectorSized(numServices, 0, 0)
}

// NewCollectorSized returns a Collector over the default grids with the
// (BS, day) extent pre-sized, so a collection campaign of known shape
// never pays a slab re-layout.
func NewCollectorSized(numServices, numBS, days int) (*Collector, error) {
	return NewCollectorGrids(numServices, numBS, days, DefaultVolumeEdges, DefaultDurationEdges)
}

// NewCollectorGrids returns a Collector over custom measurement grids.
// Both edge sets must be strictly ascending with at least two edges;
// non-uniform duration grids are binned by binary search.
func NewCollectorGrids(numServices, numBS, days int, volumeEdges, durationEdges []float64) (*Collector, error) {
	if numServices <= 0 {
		return nil, fmt.Errorf("probe: collector needs >= 1 service, got %d", numServices)
	}
	if numBS < 0 || days < 0 {
		return nil, fmt.Errorf("probe: negative collector extent %dx%d", numBS, days)
	}
	// Validate the grids once here so per-cell histograms can share the
	// edge slices without re-checking.
	if _, err := dist.NewHist(volumeEdges); err != nil {
		return nil, fmt.Errorf("probe: volume grid: %w", err)
	}
	if _, err := dist.NewHist(durationEdges); err != nil {
		return nil, fmt.Errorf("probe: duration grid: %w", err)
	}
	c := &Collector{
		VolumeEdges:   volumeEdges,
		DurationEdges: durationEdges,
		NumServices:   numServices,
		numBS:         numBS,
		days:          days,
		cells:         make([]*DayStats, numServices*numBS*days),
		volBinner:     newBinner(volumeEdges),
		durBinner:     newBinner(durationEdges),
	}
	if obs.Enabled() {
		c.obsFlows = make([]*obs.Counter, numServices)
		for i := range c.obsFlows {
			c.obsFlows[i] = obs.CounterOf("probe_flows_tracked_total",
				"service", "svc"+strconv.Itoa(i))
		}
	}
	return c, nil
}

// idx returns the slab slot of a key; the key must be in range.
func (c *Collector) idx(svc, bs, day int) int {
	return (svc*c.numBS+bs)*c.days + day
}

// ensure grows the slab so (bs, day) is addressable. Growth is
// geometric on both dimensions, so repeated out-of-range observations
// re-layout the slab O(log) times. Growing relocates the slab but not
// the cells, so *DayStats pointers handed out earlier stay valid.
func (c *Collector) ensure(bs, day int) {
	if bs < c.numBS && day < c.days {
		return
	}
	newBS, newDays := c.numBS, c.days
	for newBS <= bs {
		if newBS == 0 {
			newBS = bs + 1
		} else {
			newBS *= 2
		}
	}
	for newDays <= day {
		if newDays == 0 {
			newDays = day + 1
		} else {
			newDays *= 2
		}
	}
	cells := make([]*DayStats, c.NumServices*newBS*newDays)
	for svc := 0; svc < c.NumServices; svc++ {
		for b := 0; b < c.numBS; b++ {
			copy(cells[(svc*newBS+b)*newDays:], c.cells[(svc*c.numBS+b)*c.days:(svc*c.numBS+b+1)*c.days])
		}
	}
	c.numBS, c.days, c.cells = newBS, newDays, cells
}

// newCell allocates one statistics cell. All four accumulator arrays
// share a single backing slab for locality; the volume histogram shares
// the collector's edge slice.
func (c *Collector) newCell() *DayStats {
	nv := len(c.VolumeEdges) - 1
	nd := len(c.DurationEdges) - 1
	buf := make([]float64, netsim.MinutesPerDay+nv+2*nd)
	mc, rest := buf[:netsim.MinutesPerDay:netsim.MinutesPerDay], buf[netsim.MinutesPerDay:]
	vp, rest := rest[:nv:nv], rest[nv:]
	dv, dc := rest[:nd:nd], rest[nd:nd+nd:nd+nd]
	return &DayStats{
		MinuteCounts: mc,
		Volume:       &dist.Hist{Edges: c.VolumeEdges, P: vp},
		DurVolSum:    dv,
		DurCount:     dc,
	}
}

// cell returns the statistics cell for a key, creating it if needed.
func (c *Collector) cell(key StatKey) *DayStats {
	c.ensure(key.BS, key.Day)
	i := c.idx(key.Service, key.BS, key.Day)
	st := c.cells[i]
	if st == nil {
		st = c.newCell()
		c.cells[i] = st
	}
	return st
}

// durBin maps a duration in seconds to its log-spaced bin index.
func (c *Collector) durBin(duration float64) int {
	return c.durBinner.bin(math.Log10(math.Max(duration, 1)))
}

// Observe folds one session into the statistics. In steady state (cell
// already touched) it performs no allocations.
func (c *Collector) Observe(s netsim.Session) error {
	if s.Service < 0 || s.Service >= c.NumServices {
		return fmt.Errorf("probe: session service %d out of range [0, %d)", s.Service, c.NumServices)
	}
	if s.Minute < 0 || s.Minute >= netsim.MinutesPerDay {
		return fmt.Errorf("probe: session minute %d out of range", s.Minute)
	}
	if s.BS < 0 || s.Day < 0 {
		return fmt.Errorf("probe: session cell (%d, %d) out of range", s.BS, s.Day)
	}
	var st *DayStats
	if s.BS < c.numBS && s.Day < c.days {
		i := c.idx(s.Service, s.BS, s.Day)
		if st = c.cells[i]; st == nil {
			st = c.newCell()
			c.cells[i] = st
		}
	} else {
		st = c.cell(StatKey{Service: s.Service, BS: s.BS, Day: s.Day})
	}
	st.MinuteCounts[s.Minute]++
	st.Sessions++
	st.Volume.P[c.volBinner.bin(math.Log10(math.Max(s.Volume, 1)))]++
	bin := c.durBin(s.Duration)
	st.DurVolSum[bin] += s.Volume
	st.DurCount[bin]++
	if c.obsFlows != nil {
		c.obsFlows[s.Service].Inc()
	}
	return nil
}

// ObserveBatch folds a batch of sessions, stopping at the first
// invalid one. It is the bulk counterpart of Observe for batched
// generation (netsim.GenerateDayBatch).
func (c *Collector) ObserveBatch(batch []netsim.Session) error {
	for i := range batch {
		if err := c.Observe(batch[i]); err != nil {
			return err
		}
	}
	return nil
}

// ObserveColumns folds one (BS, day) of columnar sessions — the
// Minute/Svc/Volume/Duration columns of a netsim.DayColumns — into the
// statistics. It is the columnar counterpart of Observe with the
// per-session overhead hoisted out of the loop: the slab is grown
// once, the cell address is an index computation off a precomputed
// base, and on uniform grids (the default) the log10 binning runs
// inline with the O(1) multiplicative path; non-uniform grids keep the
// binary-search fallback. When the columns carry the sampler's
// by-service grouping (SvcSeg/ByService/Slot, with the value columns
// in grouped order), the fold runs one service segment at a time:
// exactly one cell's accumulators are hot while its sessions fold, and
// the volume/duration reads stream a contiguous segment. Without a
// grouping (fault-filtered columns re-map services and emit session
// order) every session resolves its cell individually. Either way the
// statistics are cell-for-cell identical to observing the same
// sessions one by one in column order
// (TestObserveColumnsMatchesScalarOracle) — including the
// floating-point accumulation order, since sessions of one cell fold
// in the same relative order under the stable grouping.
//
// The grouping is trusted to describe Svc and the value-column layout
// (netsim maintains both); ObserveColumns verifies only its structural
// invariants and falls back to the ungrouped fold when they do not
// hold. Unlike Observe/ObserveBatch, the columns are validated up
// front and nothing is folded when any session is invalid.
func (c *Collector) ObserveColumns(bs, day int, cols *netsim.DayColumns) error {
	if cols == nil {
		return fmt.Errorf("probe: nil DayColumns")
	}
	minute, svc := cols.Minute, cols.Svc
	volume, duration := cols.Volume, cols.Duration
	n := len(minute)
	if len(svc) != n || len(volume) != n || len(duration) != n {
		return fmt.Errorf("probe: column lengths differ (minute %d, svc %d, volume %d, duration %d)",
			n, len(svc), len(volume), len(duration))
	}
	if bs < 0 || day < 0 {
		return fmt.Errorf("probe: session cell (%d, %d) out of range", bs, day)
	}
	nSvc := int32(c.NumServices)
	for i := 0; i < n; i++ {
		if svc[i] < 0 || svc[i] >= nSvc {
			return fmt.Errorf("probe: session service %d out of range [0, %d)", svc[i], c.NumServices)
		}
		if minute[i] < 0 || minute[i] >= netsim.MinutesPerDay {
			return fmt.Errorf("probe: session minute %d out of range", minute[i])
		}
	}
	if n == 0 {
		return nil
	}
	c.ensure(bs, day)
	base := bs*c.days + day
	stride := c.numBS * c.days
	cells := c.cells

	// A grouped minute column (MinuteG) makes every fold read
	// sequential — that path needs only the segment offsets, not the
	// per-slot ByService scan. Without MinuteG the fold gathers minutes
	// through the grouping, which is then validated in full. MinuteG
	// entries are range-checked here because the up-front validation
	// loop only covers Minute.
	seg, by, mg := cols.SvcSeg, cols.ByService, cols.MinuteG
	useSeq := len(mg) == n && len(by) == n && len(cols.Slot) == n && c.segValid(seg, n)
	if useSeq {
		for i := 0; i < n; i++ {
			if mg[i] < 0 || mg[i] >= netsim.MinutesPerDay {
				return fmt.Errorf("probe: grouped session minute %d out of range", mg[i])
			}
		}
	}
	if useSeq || c.groupingValid(seg, by, n) {
		for sv := 0; sv < c.NumServices; sv++ {
			lo, hi := int(seg[sv]), int(seg[sv+1])
			if lo == hi {
				continue
			}
			slot := sv*stride + base
			st := cells[slot]
			if st == nil {
				st = c.newCell()
				cells[slot] = st
			}
			// One float64 += per session and an integer-valued start
			// keep the sum exact, so the bulk add equals n increments.
			st.Sessions += float64(hi - lo)
			if useSeq {
				c.foldCellSeq(st, mg[lo:hi], volume[lo:hi], duration[lo:hi])
			} else {
				c.foldCell(st, by[lo:hi], minute, volume[lo:hi], duration[lo:hi])
			}
			if c.obsFlows != nil {
				c.obsFlows[sv].Add(int64(hi - lo))
			}
		}
		return nil
	}

	if c.volBinner.uniform && c.durBinner.uniform {
		// Threshold binning, as in foldCell: exponent-derived guess
		// settled against linear edge thresholds — exactly binner.bin's
		// semantics (the oracle property test pins the equivalence).
		vThr, vN, vLo, vInvW := c.volBinner.thr, c.volBinner.n, c.volBinner.lo, c.volBinner.invW
		dThr, dN, dLo, dInvW := c.durBinner.thr, c.durBinner.n, c.durBinner.lo, c.durBinner.invW
		for i := 0; i < n; i++ {
			slot := int(svc[i])*stride + base
			st := cells[slot]
			if st == nil {
				st = c.newCell()
				cells[slot] = st
			}
			st.MinuteCounts[minute[i]]++
			st.Sessions++
			v := volume[i]
			vb := int((approxLog10(v) - vLo) * vInvW)
			if vb < 0 {
				vb = 0
			} else if vb > vN-1 {
				vb = vN - 1
			}
			for vb > 0 && v < vThr[vb] {
				vb--
			}
			for vb < vN-1 && v >= vThr[vb+1] {
				vb++
			}
			st.Volume.P[vb]++
			d := duration[i]
			db := int((approxLog10(d) - dLo) * dInvW)
			if db < 0 {
				db = 0
			} else if db > dN-1 {
				db = dN - 1
			}
			for db > 0 && d < dThr[db] {
				db--
			}
			for db < dN-1 && d >= dThr[db+1] {
				db++
			}
			st.DurVolSum[db] += v
			st.DurCount[db]++
		}
	} else {
		for i := 0; i < n; i++ {
			slot := int(svc[i])*stride + base
			st := cells[slot]
			if st == nil {
				st = c.newCell()
				cells[slot] = st
			}
			st.MinuteCounts[minute[i]]++
			st.Sessions++
			v := volume[i]
			st.Volume.P[c.volBinner.bin(math.Log10(math.Max(v, 1)))]++
			db := c.durBinner.bin(math.Log10(math.Max(duration[i], 1)))
			st.DurVolSum[db] += v
			st.DurCount[db]++
		}
	}
	if c.obsFlows != nil {
		if c.flowScratch == nil {
			c.flowScratch = make([]int64, c.NumServices)
		}
		counts := c.flowScratch
		for i := range counts {
			counts[i] = 0
		}
		for i := 0; i < n; i++ {
			counts[svc[i]]++
		}
		for s, k := range counts {
			if k != 0 {
				c.obsFlows[s].Add(k)
			}
		}
	}
	return nil
}

// groupingValid checks the structural invariants of a by-service
// grouping over n sessions: one segment per collector service, offsets
// monotone from 0 to n, and every grouped slot holding an in-range
// session index. Content consistency (Svc[ByService[g]] matching the
// segment's service, value columns stored in grouped order) is the
// producer's contract, pinned by the oracle property tests rather than
// re-verified per fold.
func (c *Collector) groupingValid(seg, by []int32, n int) bool {
	if !c.segValid(seg, n) || len(by) != n {
		return false
	}
	for _, g := range by {
		if g < 0 || int(g) >= n {
			return false
		}
	}
	return true
}

// segValid checks the segment-offset invariants alone: one segment per
// collector service, offsets monotone from 0 to n. The grouped-minute
// fold path needs only these (it never indexes through ByService), so
// it skips the per-slot scan of groupingValid.
func (c *Collector) segValid(seg []int32, n int) bool {
	if len(seg) != c.NumServices+1 {
		return false
	}
	if seg[0] != 0 || int(seg[len(seg)-1]) != n {
		return false
	}
	for i := 1; i < len(seg); i++ {
		if seg[i] < seg[i-1] {
			return false
		}
	}
	return true
}

// foldCellSeq folds one service segment whose minute, volume and
// duration slices are all in grouped order — every read streams
// sequentially, no gather. Accumulation order and binning are
// identical to foldCell (same sessions, same relative order under the
// stable grouping).
func (c *Collector) foldCellSeq(st *DayStats, minute []int32, volume, duration []float64) {
	mc := st.MinuteCounts
	vp, dv, dc := st.Volume.P, st.DurVolSum, st.DurCount
	volume = volume[:len(minute)]
	duration = duration[:len(minute)]
	if c.volBinner.uniform && c.durBinner.uniform {
		vThr, vN, vLo, vInvW := c.volBinner.thr, c.volBinner.n, c.volBinner.lo, c.volBinner.invW
		dThr, dN, dLo, dInvW := c.durBinner.thr, c.durBinner.n, c.durBinner.lo, c.durBinner.invW
		for k, m := range minute {
			mc[m]++
			v := volume[k]
			vb := int((approxLog10(v) - vLo) * vInvW)
			if vb < 0 {
				vb = 0
			} else if vb > vN-1 {
				vb = vN - 1
			}
			for vb > 0 && v < vThr[vb] {
				vb--
			}
			for vb < vN-1 && v >= vThr[vb+1] {
				vb++
			}
			vp[vb]++
			d := duration[k]
			db := int((approxLog10(d) - dLo) * dInvW)
			if db < 0 {
				db = 0
			} else if db > dN-1 {
				db = dN - 1
			}
			for db > 0 && d < dThr[db] {
				db--
			}
			for db < dN-1 && d >= dThr[db+1] {
				db++
			}
			dv[db] += v
			dc[db]++
		}
		return
	}
	for k, m := range minute {
		mc[m]++
		v := volume[k]
		vp[c.volBinner.bin(math.Log10(math.Max(v, 1)))]++
		db := c.durBinner.bin(math.Log10(math.Max(duration[k], 1)))
		dv[db] += v
		dc[db]++
	}
}

// foldCell folds one grouped segment into a single cell's accumulators
// — MinuteCounts, volume histogram and duration-binned sums all stay
// cache-hot across the whole segment. seg holds the segment's session
// indices (for the minute lookup); volume and duration are the
// segment's contiguous slices of the grouped value columns, streamed
// sequentially. Binning matches binner.bin exactly.
func (c *Collector) foldCell(st *DayStats, seg, minute []int32, volume, duration []float64) {
	mc := st.MinuteCounts
	vp, dv, dc := st.Volume.P, st.DurVolSum, st.DurCount
	volume = volume[:len(seg)]
	duration = duration[:len(seg)]
	if c.volBinner.uniform && c.durBinner.uniform {
		// Threshold binning: an exponent-derived guess settled against
		// precomputed linear edge thresholds (see linThr) — the same bin
		// Log10-space binning yields, with zero transcendental calls in
		// the loop. The guess underestimates by well under a bin width,
		// so each settle loop runs at most one step.
		vThr, vN, vLo, vInvW := c.volBinner.thr, c.volBinner.n, c.volBinner.lo, c.volBinner.invW
		dThr, dN, dLo, dInvW := c.durBinner.thr, c.durBinner.n, c.durBinner.lo, c.durBinner.invW
		for k, g := range seg {
			mc[minute[g]]++
			v := volume[k]
			vb := int((approxLog10(v) - vLo) * vInvW)
			if vb < 0 {
				vb = 0
			} else if vb > vN-1 {
				vb = vN - 1
			}
			for vb > 0 && v < vThr[vb] {
				vb--
			}
			for vb < vN-1 && v >= vThr[vb+1] {
				vb++
			}
			vp[vb]++
			d := duration[k]
			db := int((approxLog10(d) - dLo) * dInvW)
			if db < 0 {
				db = 0
			} else if db > dN-1 {
				db = dN - 1
			}
			for db > 0 && d < dThr[db] {
				db--
			}
			for db < dN-1 && d >= dThr[db+1] {
				db++
			}
			dv[db] += v
			dc[db]++
		}
		return
	}
	for k, g := range seg {
		mc[minute[g]]++
		v := volume[k]
		vp[c.volBinner.bin(math.Log10(math.Max(v, 1)))]++
		db := c.durBinner.bin(math.Log10(math.Max(duration[k], 1)))
		dv[db] += v
		dc[db]++
	}
}

// TotalSessions returns the number of sessions observed across every
// statistics cell — the campaign's grand total w, used e.g. to gauge
// how much of a workload survived an injected-fault run.
func (c *Collector) TotalSessions() float64 {
	var total float64
	for _, st := range c.cells {
		if st != nil {
			total += st.Sessions
		}
	}
	return total
}

// Get returns the statistics cell for a key, if present.
func (c *Collector) Get(key StatKey) (*DayStats, bool) {
	if key.Service < 0 || key.Service >= c.NumServices ||
		key.BS < 0 || key.BS >= c.numBS || key.Day < 0 || key.Day >= c.days {
		return nil, false
	}
	st := c.cells[c.idx(key.Service, key.BS, key.Day)]
	return st, st != nil
}

// Keys returns every populated (service, BS, day) key in deterministic
// ascending (service, BS, day) order — the iteration order of every
// aggregation, by construction of the dense slab.
func (c *Collector) Keys() []StatKey {
	var out []StatKey
	c.forEachCell(nil, func(k StatKey, _ *DayStats) {
		out = append(out, k)
	})
	return out
}

// forEachCell visits every populated cell passing the filter in
// ascending (service, BS, day) order. Every aggregation iterates this
// way so that floating-point summation — and therefore every fitted
// parameter — is reproducible run to run regardless of the parallelism
// of collection.
func (c *Collector) forEachCell(filter KeyFilter, fn func(k StatKey, st *DayStats)) {
	i := 0
	for svc := 0; svc < c.NumServices; svc++ {
		for bs := 0; bs < c.numBS; bs++ {
			for day := 0; day < c.days; day++ {
				st := c.cells[i]
				i++
				if st == nil {
					continue
				}
				k := StatKey{Service: svc, BS: bs, Day: day}
				if filter != nil && !filter(k) {
					continue
				}
				fn(k, st)
			}
		}
	}
}
