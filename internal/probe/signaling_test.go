package probe

import (
	"math"
	"testing"
)

func TestLocatorLocate(t *testing.T) {
	l := NewLocator([]SignalEvent{
		{Time: 100, UE: 1, BS: 5, Type: EvAttach},
		{Time: 200, UE: 1, BS: 7, Type: EvHandover},
		{Time: 300, UE: 1, Type: EvDetach},
		{Time: 50, UE: 2, BS: 9, Type: EvAttach},
	})
	cases := []struct {
		ue      uint64
		t       float64
		want    int
		wantErr bool
	}{
		{1, 150, 5, false},
		{1, 200, 7, false},
		{1, 250, 7, false},
		{1, 99, 0, true},  // before attach
		{1, 350, 0, true}, // after detach
		{2, 1000, 9, false},
		{3, 100, 0, true}, // unknown UE
	}
	for _, tc := range cases {
		got, err := l.Locate(tc.ue, tc.t)
		if (err != nil) != tc.wantErr {
			t.Errorf("Locate(%d, %v) err = %v, wantErr %v", tc.ue, tc.t, err, tc.wantErr)
			continue
		}
		if err == nil && got != tc.want {
			t.Errorf("Locate(%d, %v) = %d, want %d", tc.ue, tc.t, got, tc.want)
		}
	}
}

func TestLocatorSplitAcrossHandover(t *testing.T) {
	l := NewLocator([]SignalEvent{
		{Time: 0, UE: 1, BS: 3, Type: EvAttach},
		{Time: 60, UE: 1, BS: 4, Type: EvHandover},
	})
	spans, err := l.Split(1, 30, 90)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 2 {
		t.Fatalf("spans = %+v", spans)
	}
	if spans[0].BS != 3 || spans[0].Start != 30 || spans[0].End != 60 {
		t.Errorf("first span = %+v", spans[0])
	}
	if spans[1].BS != 4 || spans[1].Start != 60 || spans[1].End != 90 {
		t.Errorf("second span = %+v", spans[1])
	}
	// Byte fractions pro-rated on time: 50/50.
	if math.Abs(spans[0].Fraction-0.5) > 1e-12 || math.Abs(spans[1].Fraction-0.5) > 1e-12 {
		t.Errorf("fractions = %v, %v", spans[0].Fraction, spans[1].Fraction)
	}
}

func TestLocatorSplitSingleBS(t *testing.T) {
	l := NewLocator([]SignalEvent{{Time: 0, UE: 7, BS: 2, Type: EvAttach}})
	spans, err := l.Split(7, 10, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 1 || spans[0].BS != 2 || spans[0].Fraction != 1 {
		t.Errorf("spans = %+v", spans)
	}
}

func TestLocatorSplitWithDetach(t *testing.T) {
	l := NewLocator([]SignalEvent{
		{Time: 0, UE: 1, BS: 1, Type: EvAttach},
		{Time: 50, UE: 1, Type: EvDetach},
	})
	spans, err := l.Split(1, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Only the attached portion is attributed.
	if len(spans) != 1 || spans[0].End != 50 {
		t.Errorf("spans = %+v", spans)
	}
	if math.Abs(spans[0].Fraction-0.5) > 1e-12 {
		t.Errorf("fraction = %v", spans[0].Fraction)
	}
}

func TestLocatorSplitValidation(t *testing.T) {
	l := NewLocator(nil)
	if _, err := l.Split(1, 0, 10); err == nil {
		t.Error("unknown UE must error")
	}
	l = NewLocator([]SignalEvent{{Time: 0, UE: 1, BS: 1, Type: EvAttach}})
	if _, err := l.Split(1, 10, 5); err == nil {
		t.Error("inverted interval must error")
	}
	if _, err := l.Split(1, -10, -5); err == nil {
		t.Error("pre-attach interval must error")
	}
}

func TestLocatorZeroLengthFlow(t *testing.T) {
	l := NewLocator([]SignalEvent{{Time: 0, UE: 1, BS: 4, Type: EvAttach}})
	spans, err := l.Split(1, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 1 || spans[0].Fraction != 1 {
		t.Errorf("zero-length spans = %+v", spans)
	}
}

func TestEventTypeString(t *testing.T) {
	if EvAttach.String() != "attach" || EvHandover.String() != "handover" || EvDetach.String() != "detach" {
		t.Error("event type strings")
	}
}

func TestClassifierPerfect(t *testing.T) {
	c, err := NewClassifier(10, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		svc, ok := c.Classify(FiveTuple{Proto: TCP, DstPort: ServicePort(i)})
		if !ok || svc != i {
			t.Errorf("Classify(port %d) = %d, %v", ServicePort(i), svc, ok)
		}
	}
	if _, ok := c.Classify(FiveTuple{DstPort: 80}); ok {
		t.Error("unknown port must not classify")
	}
}

func TestClassifierAccuracy(t *testing.T) {
	c, err := NewClassifier(10, 0.8, 2)
	if err != nil {
		t.Fatal(err)
	}
	const n = 20000
	correct := 0
	for i := 0; i < n; i++ {
		svc, ok := c.Classify(FiveTuple{DstPort: ServicePort(3)})
		if !ok {
			t.Fatal("classification failed")
		}
		if svc == 3 {
			correct++
		}
	}
	frac := float64(correct) / n
	if math.Abs(frac-0.8) > 0.02 {
		t.Errorf("accuracy = %v, want ~0.8", frac)
	}
}

func TestClassifierValidation(t *testing.T) {
	if _, err := NewClassifier(0, 1, 1); err == nil {
		t.Error("zero services must error")
	}
	// Out-of-range accuracy falls back to perfect.
	c, err := NewClassifier(3, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c.Accuracy != 1 {
		t.Errorf("accuracy = %v, want 1", c.Accuracy)
	}
}
