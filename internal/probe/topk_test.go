package probe

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTopKExactWhenUnderCapacity(t *testing.T) {
	tk, err := NewTopK(10)
	if err != nil {
		t.Fatal(err)
	}
	stream := []int{1, 1, 1, 2, 2, 3}
	for _, k := range stream {
		tk.Observe(k)
	}
	top := tk.Top()
	if len(top) != 3 {
		t.Fatalf("entries = %d", len(top))
	}
	if top[0].Key != 1 || top[0].Count != 3 || top[0].MaxError != 0 {
		t.Errorf("top entry = %+v", top[0])
	}
	if tk.N() != 6 {
		t.Errorf("N = %d", tk.N())
	}
}

func TestTopKHeavyHitterGuarantee(t *testing.T) {
	// A zipf-ish stream: key i appears proportionally to 1/(i+1).
	rng := rand.New(rand.NewSource(4))
	tk, err := NewTopK(8)
	if err != nil {
		t.Fatal(err)
	}
	truth := map[int]uint64{}
	const n = 100000
	for i := 0; i < n; i++ {
		// Heavy skew: 50% key 0, 25% key 1, ...
		key := 0
		for rng.Float64() < 0.5 && key < 20 {
			key++
		}
		tk.Observe(key)
		truth[key]++
	}
	top := tk.Top()
	// Space-Saving guarantee: every key with count > N/k is tracked.
	threshold := uint64(n / 8)
	tracked := map[int]bool{}
	for _, e := range top {
		tracked[e.Key] = true
	}
	for key, c := range truth {
		if c > threshold && !tracked[key] {
			t.Errorf("heavy hitter %d (count %d) not tracked", key, c)
		}
	}
	// Counts never underestimate beyond the error bound.
	for _, e := range top {
		if e.Count < truth[e.Key] {
			t.Errorf("key %d: estimate %d below truth %d", e.Key, e.Count, truth[e.Key])
		}
		if e.Count-e.MaxError > truth[e.Key] {
			t.Errorf("key %d: guaranteed count %d above truth %d", e.Key, e.Count-e.MaxError, truth[e.Key])
		}
	}
	// The top two keys must be 0 and 1 in order.
	if top[0].Key != 0 || top[1].Key != 1 {
		t.Errorf("ranking = %d, %d", top[0].Key, top[1].Key)
	}
	// GuaranteedTop is a prefix of Top.
	g := tk.GuaranteedTop()
	for i, e := range g {
		if e.Key != top[i].Key {
			t.Errorf("guaranteed prefix mismatch at %d", i)
		}
	}
	if len(g) == 0 {
		t.Error("no guaranteed entries on a heavily skewed stream")
	}
}

func TestTopKValidation(t *testing.T) {
	if _, err := NewTopK(0); err == nil {
		t.Error("k=0 must error")
	}
}

// Property: the sketch never tracks more than k keys, total estimated
// count stays within [N, N + evictions*minCount] bounds, and estimates
// always dominate true counts.
func TestTopKOverestimationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + rng.Intn(8)
		tk, err := NewTopK(k)
		if err != nil {
			return false
		}
		truth := map[int]uint64{}
		n := 100 + rng.Intn(2000)
		for i := 0; i < n; i++ {
			key := rng.Intn(25)
			tk.Observe(key)
			truth[key]++
		}
		top := tk.Top()
		if len(top) > k {
			return false
		}
		for _, e := range top {
			if e.Count < truth[e.Key] {
				return false // must never underestimate
			}
			if e.Count-e.MaxError > truth[e.Key] {
				return false // guaranteed floor must hold
			}
		}
		return tk.N() == uint64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
