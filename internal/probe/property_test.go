package probe

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"mobiletraffic/internal/dist"
	"mobiletraffic/internal/faults"
	"mobiletraffic/internal/mathx"
	"mobiletraffic/internal/netsim"
)

// mapOracle is a reference implementation of the Collector over a plain
// map — the pre-dense-store layout — binning through dist.Hist.BinIndex
// and aggregating through the textbook clone→normalize→MixHists
// formulation. The property tests replay random session streams into
// both stores and require bitwise-identical aggregates.
type mapOracle struct {
	numSvc   int
	volEdges []float64
	durEdges []float64
	cells    map[StatKey]*DayStats
}

func newMapOracle(numSvc int, volEdges, durEdges []float64) *mapOracle {
	return &mapOracle{numSvc: numSvc, volEdges: volEdges, durEdges: durEdges, cells: map[StatKey]*DayStats{}}
}

func (o *mapOracle) observe(s netsim.Session) {
	k := StatKey{Service: s.Service, BS: s.BS, Day: s.Day}
	st := o.cells[k]
	if st == nil {
		vol, _ := dist.NewHist(o.volEdges)
		nd := len(o.durEdges) - 1
		st = &DayStats{
			MinuteCounts: make([]float64, netsim.MinutesPerDay),
			Volume:       vol,
			DurVolSum:    make([]float64, nd),
			DurCount:     make([]float64, nd),
		}
		o.cells[k] = st
	}
	st.MinuteCounts[s.Minute]++
	st.Sessions++
	st.Volume.Add(math.Log10(math.Max(s.Volume, 1)), 1)
	ref := dist.Hist{Edges: o.durEdges, P: make([]float64, len(o.durEdges)-1)}
	bin := ref.BinIndex(math.Log10(math.Max(s.Duration, 1)))
	st.DurVolSum[bin] += s.Volume
	st.DurCount[bin]++
}

// sortedKeys returns the oracle's keys in ascending (service, BS, day)
// order — the iteration order the dense slab guarantees by construction.
func (o *mapOracle) sortedKeys() []StatKey {
	out := make([]StatKey, 0, len(o.cells))
	for k := range o.cells {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Service != b.Service {
			return a.Service < b.Service
		}
		if a.BS != b.BS {
			return a.BS < b.BS
		}
		return a.Day < b.Day
	})
	return out
}

// aggregateVolume is the reference Eq. (2) mixture: per-cell clones
// normalized and mixed with session-count weights via dist.MixHists.
func (o *mapOracle) aggregateVolume(filter KeyFilter) (*dist.Hist, float64, bool) {
	var hists []*dist.Hist
	var weights []float64
	for _, k := range o.sortedKeys() {
		if filter != nil && !filter(k) {
			continue
		}
		st := o.cells[k]
		if st.Sessions <= 0 || st.Volume.Total() <= 0 {
			continue
		}
		h := st.Volume.Clone()
		if err := h.Normalize(); err != nil {
			continue
		}
		hists = append(hists, h)
		weights = append(weights, st.Sessions)
	}
	if len(hists) == 0 {
		return nil, 0, false
	}
	mixed, err := dist.MixHists(hists, weights)
	if err != nil {
		return nil, 0, false
	}
	return mixed, mathx.Sum(weights), true
}

func (o *mapOracle) aggregatePairs(filter KeyFilter) (values, counts []float64, ok bool) {
	n := len(o.durEdges) - 1
	sum := make([]float64, n)
	cnt := make([]float64, n)
	for _, k := range o.sortedKeys() {
		if filter != nil && !filter(k) {
			continue
		}
		ok = true
		st := o.cells[k]
		for i := 0; i < n; i++ {
			sum[i] += st.DurVolSum[i]
			cnt[i] += st.DurCount[i]
		}
	}
	values = make([]float64, n)
	for i := range values {
		if cnt[i] > 0 {
			values[i] = sum[i] / cnt[i]
		} else {
			values[i] = math.NaN()
		}
	}
	return values, cnt, ok
}

// sessionShare replicates the share/CV math over the sorted key order.
func (o *mapOracle) sessionShare(filter KeyFilter) (share, cv []float64, ok bool) {
	type bd struct{ bs, day int }
	perCell := map[bd][]float64{}
	totals := make([]float64, o.numSvc)
	var grand float64
	for _, k := range o.sortedKeys() {
		if filter != nil && !filter(k) {
			continue
		}
		st := o.cells[k]
		ci := bd{k.BS, k.Day}
		if perCell[ci] == nil {
			perCell[ci] = make([]float64, o.numSvc)
		}
		perCell[ci][k.Service] += st.Sessions
		totals[k.Service] += st.Sessions
		grand += st.Sessions
	}
	if grand <= 0 {
		return nil, nil, false
	}
	share = make([]float64, o.numSvc)
	for s := range share {
		share[s] = totals[s] / grand
	}
	cells := make([]bd, 0, len(perCell))
	for ci := range perCell {
		cells = append(cells, ci)
	}
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].bs != cells[j].bs {
			return cells[i].bs < cells[j].bs
		}
		return cells[i].day < cells[j].day
	})
	cv = make([]float64, o.numSvc)
	for s := 0; s < o.numSvc; s++ {
		var vals []float64
		for _, ci := range cells {
			counts := perCell[ci]
			var cellTotal float64
			for _, v := range counts {
				cellTotal += v
			}
			if cellTotal > 0 {
				vals = append(vals, counts[s]/cellTotal)
			}
		}
		if len(vals) > 1 && mathx.Mean(vals) > 0 {
			cv[s] = mathx.Std(vals) / mathx.Mean(vals)
		}
	}
	return share, cv, true
}

// randomSessions draws a session stream that exercises clamping below
// and above both measurement grids and lands some volumes exactly on
// bin edges.
func randomSessions(rng *rand.Rand, n, numSvc, numBS, days int) []netsim.Session {
	out := make([]netsim.Session, n)
	for i := range out {
		vol := math.Pow(10, 1+10*rng.Float64()) // spans below/above the [2, 10.5] grid
		if rng.Intn(10) == 0 {
			// Exactly on a bin edge: the O(1) binner and BinIndex must
			// agree on boundary ownership.
			edges := DefaultVolumeEdges
			vol = math.Pow(10, edges[rng.Intn(len(edges))])
		}
		dur := math.Pow(10, -1+7*rng.Float64()) // spans below/above the [0, 5] grid
		out[i] = netsim.Session{
			BS:       rng.Intn(numBS),
			Service:  rng.Intn(numSvc),
			Day:      rng.Intn(days),
			Minute:   rng.Intn(netsim.MinutesPerDay),
			Duration: dur,
			Volume:   vol,
		}
	}
	return out
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] && !(math.IsNaN(a[i]) && math.IsNaN(b[i])) {
			return false
		}
	}
	return true
}

// TestDenseCollectorMatchesMapOracle replays randomized session streams
// into the dense collector and the map-backed oracle and requires every
// aggregate — totals, keys, volume mixtures, pair sums, shares — to be
// bitwise identical. This pins the dense store to the semantics of the
// formulation it replaced.
func TestDenseCollectorMatchesMapOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 5; trial++ {
		numSvc := 1 + rng.Intn(5)
		numBS := 1 + rng.Intn(7)
		days := 1 + rng.Intn(4)
		sessions := randomSessions(rng, 2000, numSvc, numBS, days)

		// Half the trials pre-size, half grow on demand.
		var c *Collector
		var err error
		if trial%2 == 0 {
			c, err = NewCollectorSized(numSvc, numBS, days)
		} else {
			c, err = NewCollector(numSvc)
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := c.ObserveBatch(sessions); err != nil {
			t.Fatal(err)
		}
		o := newMapOracle(numSvc, c.VolumeEdges, c.DurationEdges)
		for _, s := range sessions {
			o.observe(s)
		}

		if got, want := c.TotalSessions(), float64(len(sessions)); got != want {
			t.Fatalf("trial %d: TotalSessions = %v, want %v", trial, got, want)
		}
		wantKeys := o.sortedKeys()
		gotKeys := c.Keys()
		if len(gotKeys) != len(wantKeys) {
			t.Fatalf("trial %d: %d keys, oracle has %d", trial, len(gotKeys), len(wantKeys))
		}
		for i := range gotKeys {
			if gotKeys[i] != wantKeys[i] {
				t.Fatalf("trial %d: key %d = %+v, oracle %+v", trial, i, gotKeys[i], wantKeys[i])
			}
		}
		for _, k := range wantKeys {
			got, okGot := c.Get(k)
			if !okGot {
				t.Fatalf("trial %d: cell %+v missing from dense store", trial, k)
			}
			want := o.cells[k]
			if got.Sessions != want.Sessions ||
				!equalFloats(got.MinuteCounts, want.MinuteCounts) ||
				!equalFloats(got.Volume.P, want.Volume.P) ||
				!equalFloats(got.DurVolSum, want.DurVolSum) ||
				!equalFloats(got.DurCount, want.DurCount) {
				t.Fatalf("trial %d: cell %+v differs from oracle", trial, k)
			}
		}

		filters := map[string]KeyFilter{
			"nil":      nil,
			"svc0":     ForService(0),
			"weekdays": Weekdays(),
			"bs0":      BSIn([]int{0}),
		}
		for name, f := range filters {
			wantH, wantW, wantOK := o.aggregateVolume(f)
			gotH, gotW, err := c.AggregateVolume(f)
			if (err == nil) != wantOK {
				t.Fatalf("trial %d %s: AggregateVolume err = %v, oracle ok = %v", trial, name, err, wantOK)
			}
			if wantOK {
				if gotW != wantW {
					t.Fatalf("trial %d %s: weight %v, oracle %v", trial, name, gotW, wantW)
				}
				if !equalFloats(gotH.P, wantH.P) {
					t.Fatalf("trial %d %s: AggregateVolume PDF differs from oracle", trial, name)
				}
			}

			wantV, wantC, wantOK := o.aggregatePairs(f)
			gotV, gotC, err := c.AggregatePairs(f)
			if (err == nil) != wantOK {
				t.Fatalf("trial %d %s: AggregatePairs err = %v, oracle ok = %v", trial, name, err, wantOK)
			}
			if wantOK && (!equalFloats(gotV, wantV) || !equalFloats(gotC, wantC)) {
				t.Fatalf("trial %d %s: AggregatePairs differs from oracle", trial, name)
			}

			wantS, wantCV, wantOK := o.sessionShare(f)
			gotS, gotCV, err := c.SessionShare(f)
			if (err == nil) != wantOK {
				t.Fatalf("trial %d %s: SessionShare err = %v, oracle ok = %v", trial, name, err, wantOK)
			}
			if wantOK && (!equalFloats(gotS, wantS) || !equalFloats(gotCV, wantCV)) {
				t.Fatalf("trial %d %s: SessionShare differs from oracle", trial, name)
			}
		}
	}
}

// TestDurBinNonUniformEdges is the regression test for duration binning
// on non-uniform grids: the collector must place every duration in the
// bin dist.Hist.BinIndex assigns, not the bin a uniform-width formula
// would guess.
func TestDurBinNonUniformEdges(t *testing.T) {
	durEdges := []float64{0, 0.3, 1, 2.5, 5} // log10 seconds, deliberately non-uniform
	c, err := NewCollectorGrids(1, 1, 1, DefaultVolumeEdges, durEdges)
	if err != nil {
		t.Fatal(err)
	}
	ref := dist.Hist{Edges: durEdges, P: make([]float64, len(durEdges)-1)}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		logDur := -0.5 + 6*rng.Float64()
		if i%10 == 0 {
			logDur = durEdges[rng.Intn(len(durEdges))] // exactly on an edge
		}
		dur := math.Pow(10, logDur)
		want := ref.BinIndex(math.Log10(math.Max(dur, 1)))
		if got := c.durBin(dur); got != want {
			t.Fatalf("durBin(%v) = %d, BinIndex says %d", dur, got, want)
		}
	}
	// End to end: a 100 s session (log10 = 2) must land in bin 2 of the
	// non-uniform grid; a uniform-width guess over [0, 5] with 4 bins
	// would put it in bin 1.
	if err := c.Observe(netsim.Session{Duration: 100, Volume: 1e6}); err != nil {
		t.Fatal(err)
	}
	st, ok := c.Get(StatKey{})
	if !ok || st.DurCount[2] != 1 {
		t.Fatalf("100 s session mis-binned: DurCount = %v", st.DurCount)
	}
}

// TestObserveZeroAllocs pins the steady-state Observe cost: once a cell
// exists, folding a session must not allocate.
func TestObserveZeroAllocs(t *testing.T) {
	c, err := NewCollectorSized(2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	s := netsim.Session{BS: 1, Service: 1, Day: 1, Minute: 30, Duration: 12, Volume: 1e6}
	if err := c.Observe(s); err != nil { // touch the cell
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if err := c.Observe(s); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("Observe allocates %v times per session in steady state, want 0", allocs)
	}
}

// replayColumnsScalar folds one (BS, day) of columnar sessions into a
// collector one session at a time through the scalar Observe path —
// the reference formulation ObserveColumns must match cell for cell.
// Value columns are read through the grouped slot map when the
// grouping is populated, exactly as netsim materializes sessions.
func replayColumnsScalar(t *testing.T, c *Collector, bs, day, numSvc int, cols *netsim.DayColumns) {
	t.Helper()
	grouped := cols.Grouped(numSvc)
	for i := 0; i < cols.N(); i++ {
		g := i
		if grouped {
			g = int(cols.Slot[i])
		}
		s := netsim.Session{
			BS:       bs,
			Day:      day,
			Service:  int(cols.Svc[i]),
			Minute:   int(cols.Minute[i]),
			Volume:   cols.Volume[g],
			Duration: cols.Duration[g],
		}
		if err := c.Observe(s); err != nil {
			t.Fatal(err)
		}
	}
}

// requireCellsEqual asserts two collectors hold bitwise-identical
// statistics: same keys, and per cell the same session count, minute
// counts, volume histogram and duration-binned accumulators.
func requireCellsEqual(t *testing.T, label string, got, want *Collector) {
	t.Helper()
	if g, w := got.TotalSessions(), want.TotalSessions(); g != w {
		t.Fatalf("%s: TotalSessions = %v, scalar replay %v", label, g, w)
	}
	gotKeys, wantKeys := got.Keys(), want.Keys()
	if len(gotKeys) != len(wantKeys) {
		t.Fatalf("%s: %d cells, scalar replay %d", label, len(gotKeys), len(wantKeys))
	}
	for i, k := range wantKeys {
		if gotKeys[i] != k {
			t.Fatalf("%s: key %d = %+v, scalar replay %+v", label, i, gotKeys[i], k)
		}
		g, _ := got.Get(k)
		w, _ := want.Get(k)
		if g.Sessions != w.Sessions ||
			!equalFloats(g.MinuteCounts, w.MinuteCounts) ||
			!equalFloats(g.Volume.P, w.Volume.P) ||
			!equalFloats(g.DurVolSum, w.DurVolSum) ||
			!equalFloats(g.DurCount, w.DurCount) {
			t.Fatalf("%s: cell %+v differs from scalar replay", label, k)
		}
	}
}

// newOracleSim builds a small v2 simulator whose columnar output (with
// mobility truncation and the by-service grouping) drives the
// ObserveColumns oracle tests.
func newOracleSim(t *testing.T, numBS, days int, seed int64) *netsim.Simulator {
	t.Helper()
	topo, err := netsim.NewTopology(netsim.TopologyConfig{NumBS: numBS, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := netsim.NewSimulator(topo, netsim.SimConfig{Days: days, Seed: seed, Sampler: netsim.SamplerV2})
	if err != nil {
		t.Fatal(err)
	}
	return sim
}

// TestObserveColumnsMatchesScalarOracle replays every (BS, day) column
// of a small campaign through ObserveColumns and, session by session,
// through the scalar Observe path, and requires the resulting
// statistics to be cell-for-cell bitwise identical — the contract that
// lets the columnar ingest replace the scalar fold. Covers the grouped
// fast path (sampler columns carry SvcSeg/ByService/Slot/MinuteG) on
// the default uniform grids.
func TestObserveColumnsMatchesScalarOracle(t *testing.T) {
	const numBS, days = 10, 2
	sim := newOracleSim(t, numBS, days, 17)
	numSvc := len(sim.Services)
	colsColl, err := NewCollectorSized(numSvc, numBS, days)
	if err != nil {
		t.Fatal(err)
	}
	scalColl, err := NewCollectorSized(numSvc, numBS, days)
	if err != nil {
		t.Fatal(err)
	}
	var cols netsim.DayColumns
	for bs := 0; bs < numBS; bs++ {
		for day := 0; day < days; day++ {
			if err := sim.SampleDayColumns(bs, day, &cols); err != nil {
				t.Fatal(err)
			}
			if !cols.Grouped(numSvc) {
				t.Fatalf("bs %d day %d: sampler columns are not grouped", bs, day)
			}
			if err := colsColl.ObserveColumns(bs, day, &cols); err != nil {
				t.Fatal(err)
			}
			replayColumnsScalar(t, scalColl, bs, day, numSvc, &cols)
		}
	}
	requireCellsEqual(t, "grouped uniform", colsColl, scalColl)
}

// TestObserveColumnsNonUniformGridMatchesScalar repeats the oracle
// comparison on a deliberately non-uniform duration grid, driving the
// binary-search binning fallback of the grouped fold.
func TestObserveColumnsNonUniformGridMatchesScalar(t *testing.T) {
	const numBS, days = 10, 2
	durEdges := []float64{0, 0.3, 1, 2.5, 5} // log10 seconds, non-uniform
	sim := newOracleSim(t, numBS, days, 29)
	numSvc := len(sim.Services)
	colsColl, err := NewCollectorGrids(numSvc, numBS, days, DefaultVolumeEdges, durEdges)
	if err != nil {
		t.Fatal(err)
	}
	scalColl, err := NewCollectorGrids(numSvc, numBS, days, DefaultVolumeEdges, durEdges)
	if err != nil {
		t.Fatal(err)
	}
	var cols netsim.DayColumns
	for bs := 0; bs < numBS; bs++ {
		for day := 0; day < days; day++ {
			if err := sim.SampleDayColumns(bs, day, &cols); err != nil {
				t.Fatal(err)
			}
			if err := colsColl.ObserveColumns(bs, day, &cols); err != nil {
				t.Fatal(err)
			}
			replayColumnsScalar(t, scalColl, bs, day, numSvc, &cols)
		}
	}
	requireCellsEqual(t, "non-uniform grid", colsColl, scalColl)
}

// TestObserveColumnsFaultedMatchesScalar pushes the sampler columns
// through a per-(BS, day) fault stream before collection — once
// columnar (ApplyColumns then ObserveColumns, the collectBS wiring)
// and once scalar (the same deterministic DayStream applied session
// by session into Observe) — and requires identical statistics. The
// faulted columns drop the grouping, so this also exercises the
// session-order ingest path.
func TestObserveColumnsFaultedMatchesScalar(t *testing.T) {
	const numBS, days = 10, 2
	cfg := faults.Config{
		OutageProb: 0.1, TruncatedDayProb: 0.2, FlowLossProb: 0.1,
		FlowDupProb: 0.05, SignalGapProb: 0.05, MisclassProb: 0.05, Seed: 23,
	}
	sim := newOracleSim(t, numBS, days, 31)
	numSvc := len(sim.Services)
	injCols, err := faults.New(cfg, numSvc)
	if err != nil {
		t.Fatal(err)
	}
	injScal, err := faults.New(cfg, numSvc)
	if err != nil {
		t.Fatal(err)
	}
	colsColl, err := NewCollectorSized(numSvc, numBS, days)
	if err != nil {
		t.Fatal(err)
	}
	scalColl, err := NewCollectorSized(numSvc, numBS, days)
	if err != nil {
		t.Fatal(err)
	}
	var cols, faulted netsim.DayColumns
	downDays := 0
	for bs := 0; bs < numBS; bs++ {
		for day := 0; day < days; day++ {
			stream := injCols.Day(bs, day)
			if stream.Down() {
				downDays++
				continue
			}
			if err := sim.SampleDayColumns(bs, day, &cols); err != nil {
				t.Fatal(err)
			}
			stream.ApplyColumns(&cols, &faulted)
			if faulted.Grouped(numSvc) {
				t.Fatalf("bs %d day %d: fault-filtered columns must drop the grouping", bs, day)
			}
			if err := colsColl.ObserveColumns(bs, day, &faulted); err != nil {
				t.Fatal(err)
			}

			// Scalar reference: the same deterministic day stream,
			// applied in session order over the materialized sessions.
			ref := injScal.Day(bs, day)
			grouped := cols.Grouped(numSvc)
			for i := 0; i < cols.N(); i++ {
				g := i
				if grouped {
					g = int(cols.Slot[i])
				}
				s := netsim.Session{
					BS:       bs,
					Day:      day,
					Service:  int(cols.Svc[i]),
					Minute:   int(cols.Minute[i]),
					Volume:   cols.Volume[g],
					Duration: cols.Duration[g],
				}
				ref.Apply(s, func(out netsim.Session) {
					if err := scalColl.Observe(out); err != nil {
						t.Fatal(err)
					}
				})
			}
		}
	}
	if downDays == 0 || downDays == numBS*days {
		t.Fatalf("fault config produced %d down days of %d; the test needs a mix", downDays, numBS*days)
	}
	requireCellsEqual(t, "faulted session-order", colsColl, scalColl)
}
