package probe

import (
	"fmt"
	"math/rand"

	"mobiletraffic/internal/obs"
)

// Classifier stands in for the operator's proprietary DPI traffic
// classifier (§3.1): it maps a flow's 5-tuple to a mobile service. The
// synthetic deployment assigns each service a well-known server port,
// and the classifier recovers the service from the destination port
// with a configurable accuracy, so tests can exercise the
// misclassification path that a real DPI engine would exhibit.
type Classifier struct {
	portToService map[uint16]int
	numServices   int
	// Accuracy in (0, 1]: the probability a classification is correct;
	// errors return a uniformly random other service.
	Accuracy float64
	rng      *rand.Rand
	// DPI accounting (probe_classifier_*_total): flows resolved to a
	// service, flows on unknown ports, and deliberate mislabelings of
	// the imperfect-accuracy mode. Nil handles when instrumentation is
	// disabled.
	obsHits, obsMisses, obsErrors *obs.Counter
}

// ServicePortBase is the first synthetic server port; service i listens
// on ServicePortBase + i.
const ServicePortBase = 9000

// ServicePort returns the synthetic well-known port of service index i.
func ServicePort(i int) uint16 { return uint16(ServicePortBase + i) }

// NewClassifier builds a classifier for numServices services with the
// given accuracy (values outside (0, 1] default to 1: a perfect DPI
// engine, which the operator reports theirs is close to).
func NewClassifier(numServices int, accuracy float64, seed int64) (*Classifier, error) {
	if numServices <= 0 {
		return nil, fmt.Errorf("probe: classifier needs >= 1 service, got %d", numServices)
	}
	if accuracy <= 0 || accuracy > 1 {
		accuracy = 1
	}
	m := make(map[uint16]int, numServices)
	for i := 0; i < numServices; i++ {
		m[ServicePort(i)] = i
	}
	return &Classifier{
		portToService: m,
		numServices:   numServices,
		Accuracy:      accuracy,
		rng:           rand.New(rand.NewSource(seed)),
		obsHits:       obs.CounterOf("probe_classifier_hits_total"),
		obsMisses:     obs.CounterOf("probe_classifier_misses_total"),
		obsErrors:     obs.CounterOf("probe_classifier_errors_total"),
	}, nil
}

// Classify maps a flow to its service index. The bool result is false
// when the destination port is not a known service port.
func (c *Classifier) Classify(tuple FiveTuple) (int, bool) {
	svc, ok := c.portToService[tuple.DstPort]
	if !ok {
		c.obsMisses.Inc()
		return 0, false
	}
	c.obsHits.Inc()
	if c.Accuracy < 1 && c.rng.Float64() > c.Accuracy {
		if c.numServices == 1 {
			return svc, true
		}
		other := c.rng.Intn(c.numServices - 1)
		if other >= svc {
			other++
		}
		c.obsErrors.Inc()
		return other, true
	}
	return svc, true
}
