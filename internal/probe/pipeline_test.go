package probe

import (
	"math"
	"testing"

	"mobiletraffic/internal/netsim"
)

func TestPacketizeConservesVolumeAndTiming(t *testing.T) {
	p := NewPacketizer(1)
	f := FlowSpec{Tuple: tcpTuple(443), Start: 100, Duration: 30, Volume: 50000}
	pkts, err := p.Packetize(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts) < 2 {
		t.Fatalf("packets = %d", len(pkts))
	}
	var total int
	for i, pkt := range pkts {
		total += pkt.Size
		if i > 0 && pkt.Time < pkts[i-1].Time {
			t.Fatal("packets out of order")
		}
	}
	if float64(total) != f.Volume {
		t.Errorf("total bytes = %d, want %v", total, f.Volume)
	}
	if pkts[0].Time != 100 || !pkts[0].SYN {
		t.Errorf("first packet = %+v", pkts[0])
	}
	last := pkts[len(pkts)-1]
	if last.Time != 130 || !last.FIN {
		t.Errorf("last packet = %+v", last)
	}
}

func TestPacketizeUDPNoFlags(t *testing.T) {
	p := NewPacketizer(2)
	pkts, err := p.Packetize(FlowSpec{Tuple: udpTuple(53), Start: 0, Duration: 5, Volume: 3000})
	if err != nil {
		t.Fatal(err)
	}
	for _, pkt := range pkts {
		if pkt.SYN || pkt.FIN || pkt.RST {
			t.Fatalf("UDP packet carries TCP flags: %+v", pkt)
		}
	}
}

func TestPacketizeCapsPacketCount(t *testing.T) {
	p := NewPacketizer(3)
	pkts, err := p.Packetize(FlowSpec{Tuple: tcpTuple(1), Start: 0, Duration: 100, Volume: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts) != p.MaxPackets {
		t.Errorf("packets = %d, want cap %d", len(pkts), p.MaxPackets)
	}
	var total float64
	for _, pkt := range pkts {
		total += float64(pkt.Size)
	}
	if math.Abs(total-1e9) > 1 {
		t.Errorf("capped packetization lost bytes: %v", total)
	}
}

func TestPacketizeValidation(t *testing.T) {
	p := NewPacketizer(4)
	if _, err := p.Packetize(FlowSpec{Volume: 0, Duration: 1}); err == nil {
		t.Error("zero volume must error")
	}
	if _, err := p.Packetize(FlowSpec{Volume: 1, Duration: -1}); err == nil {
		t.Error("negative duration must error")
	}
	// Zero-duration flows are legal (single burst).
	pkts, err := p.Packetize(FlowSpec{Tuple: tcpTuple(2), Volume: 100, Duration: 0})
	if err != nil || len(pkts) < 2 {
		t.Errorf("zero-duration flow: %v, %d packets", err, len(pkts))
	}
}

func TestTupleForUEStable(t *testing.T) {
	a := TupleForUE(42, 3, 0, TCP)
	b := TupleForUE(42, 3, 0, TCP)
	if a != b {
		t.Error("tuple derivation not deterministic")
	}
	if UEOfTuple(a) != 42 {
		t.Errorf("UEOfTuple = %d", UEOfTuple(a))
	}
	if a.DstPort != ServicePort(3) {
		t.Errorf("dst port = %d", a.DstPort)
	}
	// Distinct flows of the same UE get distinct tuples.
	c := TupleForUE(42, 3, 1, TCP)
	if a == c {
		t.Error("sequence number must differentiate tuples")
	}
}

// newMobilityFixture builds a small topology+simulator and runs the
// UE-level mobility simulation.
func newMobilityFixture(t *testing.T, cfg netsim.MobilityConfig) (*netsim.Simulator, *netsim.MobilityTrace) {
	t.Helper()
	topo, err := netsim.NewTopology(netsim.TopologyConfig{NumBS: 12, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := netsim.NewSimulator(topo, netsim.SimConfig{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	trace, err := sim.SimulateMobility(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sim, trace
}

func TestMeasurementPipelineEndToEnd(t *testing.T) {
	sim, trace := newMobilityFixture(t, netsim.MobilityConfig{
		UEs: 300, Horizon: 3600, Seed: 9,
	})
	if len(trace.Events) == 0 || len(trace.Flows) == 0 {
		t.Fatal("empty mobility trace")
	}
	pipe, err := NewPipeline(len(sim.Services), 1, 9)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := pipe.Run(trace)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Flows == 0 {
		t.Fatal("no flows tracked")
	}
	if stats.Unclassified != 0 {
		t.Errorf("unclassified = %d with a perfect classifier", stats.Unclassified)
	}
	// Handover splitting produces at least as many partial sessions as
	// located flows.
	located := stats.Flows - stats.Unlocatable
	if stats.SessionsSplit < located {
		t.Errorf("sessions %d < located flows %d", stats.SessionsSplit, located)
	}
	if stats.SessionsSplit == located {
		t.Error("no handover ever split a flow; mobility not exercised")
	}
	// The collector's measured session shares must track the catalog:
	// Facebook is the heaviest service.
	share, _, err := pipe.Collector.SessionShare(nil)
	if err != nil {
		t.Fatal(err)
	}
	best := 0
	for i := range share {
		if share[i] > share[best] {
			best = i
		}
	}
	if sim.Services[best].Name != "Facebook" {
		t.Errorf("heaviest measured service = %s, want Facebook", sim.Services[best].Name)
	}
	// Volume is conserved: the aggregated traffic equals the flow bytes
	// of located flows within packetization rounding.
	var flowBytes float64
	for _, f := range trace.Flows {
		flowBytes += f.Volume
	}
	var measured float64
	for _, key := range pipe.Collector.Keys() {
		st, _ := pipe.Collector.Get(key)
		for i := range st.DurVolSum {
			measured += st.DurVolSum[i]
		}
	}
	if stats.Unlocatable == 0 && math.Abs(measured-flowBytes)/flowBytes > 0.02 {
		t.Errorf("measured %.3g vs generated %.3g bytes", measured, flowBytes)
	}
}

func TestMeasurementPipelineClassifierErrors(t *testing.T) {
	sim, trace := newMobilityFixture(t, netsim.MobilityConfig{
		UEs: 200, Horizon: 1800, StationaryFrac: 1, Seed: 13,
	})
	perfect, err := NewPipeline(len(sim.Services), 1, 13)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := perfect.Run(trace); err != nil {
		t.Fatal(err)
	}
	noisy, err := NewPipeline(len(sim.Services), 0.5, 13)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := noisy.Run(trace); err != nil {
		t.Fatal(err)
	}
	sp, _, err := perfect.Collector.SessionShare(nil)
	if err != nil {
		t.Fatal(err)
	}
	sn, _, err := noisy.Collector.SessionShare(nil)
	if err != nil {
		t.Fatal(err)
	}
	// A 50%-accurate classifier flattens the share distribution: the
	// top service's share shrinks visibly.
	top := 0
	for i := range sp {
		if sp[i] > sp[top] {
			top = i
		}
	}
	if sn[top] >= sp[top]-0.05 {
		t.Errorf("noisy classifier did not flatten shares: %.3f vs %.3f", sn[top], sp[top])
	}
}

func TestPipelineValidation(t *testing.T) {
	if _, err := NewPipeline(0, 1, 1); err == nil {
		t.Error("zero services must error")
	}
	p, err := NewPipeline(3, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(nil); err == nil {
		t.Error("nil trace must error")
	}
}

func TestSimulateMobilityShape(t *testing.T) {
	sim, trace := newMobilityFixture(t, netsim.MobilityConfig{
		UEs: 50, Horizon: 1200, StationaryFrac: 0.5, Seed: 3,
	})
	_ = sim
	// Every UE attaches exactly once; handovers only from mobile UEs.
	attach := map[uint64]int{}
	for _, ev := range trace.Events {
		if ev.Type == netsim.UEAttach {
			attach[ev.UE]++
		}
	}
	if len(attach) != 50 {
		t.Errorf("attached UEs = %d", len(attach))
	}
	for ue, n := range attach {
		if n != 1 {
			t.Errorf("UE %d attached %d times", ue, n)
		}
	}
	// Events and flows are time-sorted within the horizon.
	for i := 1; i < len(trace.Events); i++ {
		if trace.Events[i].Time < trace.Events[i-1].Time {
			t.Fatal("events unsorted")
		}
	}
	for _, f := range trace.Flows {
		if f.Start < 0 || f.Start+f.Duration > 1200+1e-9 {
			t.Fatalf("flow outside horizon: %+v", f)
		}
		if f.Volume <= 0 {
			t.Fatalf("non-positive flow volume: %+v", f)
		}
	}
}

func TestSimulateMobilityValidation(t *testing.T) {
	topo := &netsim.Topology{BSs: []netsim.BS{{ID: 0}}}
	sim, err := netsim.NewSimulator(topo, netsim.SimConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.SimulateMobility(netsim.MobilityConfig{}); err == nil {
		t.Error("single-BS mobility must error")
	}
}

func TestUEEventTypeString(t *testing.T) {
	if netsim.UEAttach.String() != "attach" || netsim.UEHandover.String() != "handover" ||
		netsim.UEDetach.String() != "detach" {
		t.Error("UE event type strings")
	}
}
