package probe

import (
	"fmt"
	"sort"
)

// EventType enumerates the signaling events the RAN probes observe on
// the S1-MME interface (§3.1): attachment, handover between BSs, and
// detachment.
type EventType int

// Signaling event types.
const (
	EvAttach EventType = iota
	EvHandover
	EvDetach
)

// String implements fmt.Stringer.
func (e EventType) String() string {
	switch e {
	case EvAttach:
		return "attach"
	case EvHandover:
		return "handover"
	default:
		return "detach"
	}
}

// SignalEvent is one control-plane observation: the UE was associated
// with BS starting at Time.
type SignalEvent struct {
	Time float64
	UE   uint64
	BS   int
	Type EventType
}

// Locator indexes signaling events so that any (UE, time) can be mapped
// to the serving BS — the geo-referencing step that overcomes the stale
// location identifiers at the PGW (§3.1).
type Locator struct {
	byUE map[uint64][]SignalEvent
}

// NewLocator builds a locator from signaling events (any order).
func NewLocator(events []SignalEvent) *Locator {
	l := &Locator{byUE: make(map[uint64][]SignalEvent)}
	for _, ev := range events {
		l.byUE[ev.UE] = append(l.byUE[ev.UE], ev)
	}
	for ue := range l.byUE {
		evs := l.byUE[ue]
		sort.SliceStable(evs, func(i, j int) bool { return evs[i].Time < evs[j].Time })
	}
	return l
}

// Locate returns the BS serving the UE at time t, or an error when the
// UE is unknown, not yet attached, or already detached.
func (l *Locator) Locate(ue uint64, t float64) (int, error) {
	evs, ok := l.byUE[ue]
	if !ok {
		return 0, fmt.Errorf("probe: unknown UE %d", ue)
	}
	// Last event with Time <= t.
	i := sort.Search(len(evs), func(k int) bool { return evs[k].Time > t }) - 1
	if i < 0 {
		return 0, fmt.Errorf("probe: UE %d not attached at t=%v", ue, t)
	}
	if evs[i].Type == EvDetach {
		return 0, fmt.Errorf("probe: UE %d detached at t=%v", ue, evs[i].Time)
	}
	return evs[i].BS, nil
}

// BSSpan is a contiguous interval of a flow served by one BS.
type BSSpan struct {
	BS         int
	Start, End float64
	// Fraction is the share of the flow's bytes attributed to this BS,
	// pro-rated on served time (the "correct (fraction of) sessions"
	// assignment of §3.1).
	Fraction float64
}

// Split divides the flow interval [start, end] of the given UE into
// per-BS spans using the signaling history: each handover inside the
// interval cuts the session, so that the measurement dataset records a
// partial session per visited BS (§3.2: handovers appear as newly
// established / concluded transport-layer sessions).
func (l *Locator) Split(ue uint64, start, end float64) ([]BSSpan, error) {
	if end < start {
		return nil, fmt.Errorf("probe: flow interval end %v before start %v", end, start)
	}
	evs, ok := l.byUE[ue]
	if !ok {
		return nil, fmt.Errorf("probe: unknown UE %d", ue)
	}
	bs, err := l.Locate(ue, start)
	if err != nil {
		return nil, err
	}
	total := end - start
	var spans []BSSpan
	cur := BSSpan{BS: bs, Start: start}
	for _, ev := range evs {
		if ev.Time <= start || ev.Time > end {
			continue
		}
		switch ev.Type {
		case EvHandover, EvAttach:
			if ev.BS != cur.BS {
				cur.End = ev.Time
				spans = append(spans, cur)
				cur = BSSpan{BS: ev.BS, Start: ev.Time}
			}
		case EvDetach:
			cur.End = ev.Time
			spans = append(spans, cur)
			cur = BSSpan{BS: -1}
		}
	}
	if cur.BS >= 0 {
		cur.End = end
		spans = append(spans, cur)
	}
	for i := range spans {
		if total > 0 {
			spans[i].Fraction = (spans[i].End - spans[i].Start) / total
		} else {
			spans[i].Fraction = 1.0 / float64(len(spans))
		}
	}
	return spans, nil
}
