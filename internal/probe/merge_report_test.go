package probe

import (
	"strings"
	"testing"

	"mobiletraffic/internal/netsim"
)

// TestMergeAllReport exercises the graceful-degradation fold: bad
// partials (nil, service mismatch, grid mismatch) are skipped with a
// recorded reason while every good partial still lands in the
// destination.
func TestMergeAllReport(t *testing.T) {
	mk := func(svc, bs int, vol float64) *Collector {
		t.Helper()
		c, err := NewCollector(3)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Observe(netsim.Session{Service: svc, BS: bs, Day: 0, Minute: 10, Volume: vol, Duration: 5}); err != nil {
			t.Fatal(err)
		}
		return c
	}
	dst, err := NewCollector(3)
	if err != nil {
		t.Fatal(err)
	}
	wrongServices, _ := NewCollector(4)
	wrongGrid, _ := NewCollector(3)
	wrongGrid.VolumeEdges = wrongGrid.VolumeEdges[:len(wrongGrid.VolumeEdges)-1]

	partials := []*Collector{mk(0, 0, 1e5), nil, wrongServices, mk(1, 1, 2e5), wrongGrid}
	report, err := dst.MergeAllReport(partials, 2)
	if err != nil {
		t.Fatal(err)
	}
	if report.Merged != 2 || report.Skipped != 3 {
		t.Fatalf("merged/skipped = %d/%d, want 2/3", report.Merged, report.Skipped)
	}
	if !report.Degraded() {
		t.Fatal("a fold that skipped partials must report Degraded")
	}
	wantMerged := []bool{true, false, false, true, false}
	for i, p := range report.Partials {
		if p.Index != i || p.Merged != wantMerged[i] {
			t.Fatalf("partial %d: %+v, want merged=%v", i, p, wantMerged[i])
		}
		if !p.Merged && p.Reason == "" {
			t.Fatalf("skipped partial %d has no reason", i)
		}
	}
	if s := report.Summary(); !strings.Contains(s, "skipped") {
		t.Fatalf("summary %q does not mention skipped partials", s)
	}
	// Both good partials landed: two populated cells.
	if got := len(dst.Keys()); got != 2 {
		t.Fatalf("destination has %d cells, want 2", got)
	}

	// An all-good fold is not degraded and matches MergeAll exactly.
	dst2, _ := NewCollector(3)
	good := []*Collector{mk(0, 0, 1e5), mk(1, 1, 2e5)}
	report2, err := dst2.MergeAllReport(good, 1)
	if err != nil {
		t.Fatal(err)
	}
	if report2.Degraded() || report2.Merged != 2 {
		t.Fatalf("all-good fold degraded: %+v", report2)
	}
	sameCollector(t, dst, dst2)
}
