package probe

import (
	"fmt"
	"math/rand"
)

// Packetizer expands transport-layer flows into packet streams for the
// gateway probe, closing the loop between the UE-level simulation and
// the flow tracker: volume is split into MTU-sized packets spread
// uniformly over the flow's lifetime, with TCP flows bracketed by a SYN
// and terminated by a FIN.
type Packetizer struct {
	// MTU is the maximum packet payload (default 1400 bytes).
	MTU int
	// MaxPackets caps packets per flow (default 64): the tracker only
	// needs enough packets to delimit the session, and the statistics
	// (bytes, start, end) are preserved exactly.
	MaxPackets int
	rng        *rand.Rand
}

// NewPacketizer returns a Packetizer with the given seed.
func NewPacketizer(seed int64) *Packetizer {
	return &Packetizer{MTU: 1400, MaxPackets: 64, rng: rand.New(rand.NewSource(seed))}
}

// FlowSpec describes one flow to packetize.
type FlowSpec struct {
	Tuple    FiveTuple
	Start    float64
	Duration float64
	Volume   float64 // bytes
}

// Packetize converts a flow into its packet observations, in time
// order. The total packet bytes equal the flow volume (integer-rounded
// across packets); the first packet is at Start (SYN for TCP) and the
// last at Start+Duration (FIN for TCP).
func (p *Packetizer) Packetize(f FlowSpec) ([]Packet, error) {
	if f.Volume <= 0 || f.Duration < 0 {
		return nil, fmt.Errorf("probe: packetize needs positive volume and non-negative duration, got %v/%v",
			f.Volume, f.Duration)
	}
	mtu := p.MTU
	if mtu <= 0 {
		mtu = 1400
	}
	maxPkts := p.MaxPackets
	if maxPkts <= 1 {
		maxPkts = 2
	}
	n := int(f.Volume/float64(mtu)) + 1
	if n > maxPkts {
		n = maxPkts
	}
	if n < 2 {
		n = 2
	}
	per := f.Volume / float64(n)
	out := make([]Packet, 0, n)
	var sent float64
	for i := 0; i < n; i++ {
		var t float64
		switch i {
		case 0:
			t = f.Start
		case n - 1:
			t = f.Start + f.Duration
		default:
			// Spread interior packets over the lifetime with jitter,
			// preserving time order.
			t = f.Start + f.Duration*(float64(i)+0.5*p.rng.Float64())/float64(n)
		}
		size := int(per)
		if i == n-1 {
			size = int(f.Volume - sent) // absorb rounding
		}
		sent += float64(size)
		pkt := Packet{Time: t, Tuple: f.Tuple, Size: size}
		if f.Tuple.Proto == TCP {
			if i == 0 {
				pkt.SYN = true
			}
			if i == n-1 {
				pkt.FIN = true
			}
		}
		out = append(out, pkt)
	}
	// Interior jitter cannot reorder across slots by construction, but
	// make the ordering explicit for safety.
	for i := 1; i < len(out); i++ {
		if out[i].Time < out[i-1].Time {
			out[i].Time = out[i-1].Time
		}
	}
	return out, nil
}

// UEOfTuple derives a synthetic stable UE identifier from the source
// address of a tuple; the simulated deployment assigns each UE a unique
// source IP.
func UEOfTuple(t FiveTuple) uint64 { return uint64(t.SrcIP) }

// TupleForUE builds the canonical 5-tuple of a (UE, service, flow
// sequence) triple in the simulated deployment: the UE's address as
// source, the service's well-known port as destination, and a per-flow
// source port so concurrent flows of one UE to one service stay
// distinct.
func TupleForUE(ue uint64, service int, seq int, proto Proto) FiveTuple {
	return FiveTuple{
		Proto:   proto,
		SrcIP:   uint32(ue),
		DstIP:   0x0a800000 + uint32(service),
		SrcPort: uint16(20000 + seq%40000),
		DstPort: ServicePort(service),
	}
}
