// Package probe implements the measurement plane of paper §3: the
// gateway-probe flow tracker that delimits TCP/UDP transport-layer
// sessions from packet observations at the SGi interface (§3.2), the
// RAN-probe signaling stream used to geo-reference sessions to their
// serving base station (§3.1), a DPI-style traffic classifier, and the
// aggregation of raw sessions into the per-(service, BS, day)
// statistics — minute arrival counts w, traffic volume PDFs F, and
// duration-volume pairs v — together with the weighted averaging of
// Eq. (1)-(2).
package probe

import (
	"fmt"
	"sort"

	"mobiletraffic/internal/obs"
)

// Proto is a transport-layer protocol.
type Proto uint8

// Transport protocols tracked by the gateway probe.
const (
	TCP Proto = 6
	UDP Proto = 17
)

// String implements fmt.Stringer.
func (p Proto) String() string {
	switch p {
	case TCP:
		return "TCP"
	case UDP:
		return "UDP"
	default:
		return fmt.Sprintf("Proto(%d)", uint8(p))
	}
}

// FiveTuple uniquely identifies a transport-layer session (§1): the
// protocol plus source/destination IPv4 addresses and ports.
type FiveTuple struct {
	Proto            Proto
	SrcIP, DstIP     uint32
	SrcPort, DstPort uint16
}

// Packet is one packet observation at the gateway probe.
type Packet struct {
	Time  float64 // seconds since epoch of the capture
	Tuple FiveTuple
	Size  int // payload bytes counted toward the session volume
	// TCP flags relevant to session delimitation.
	SYN, FIN, RST bool
}

// FlowRecord is one completed transport-layer session as assembled by
// the gateway probe: total traffic, start and end times (§3.1).
type FlowRecord struct {
	Tuple   FiveTuple
	Start   float64
	End     float64
	Bytes   int64
	Packets int
	// TermReason records why the flow ended.
	TermReason TermReason
}

// Duration returns the session duration in seconds.
func (f *FlowRecord) Duration() float64 { return f.End - f.Start }

// TermReason enumerates why the tracker closed a flow.
type TermReason int

// Flow termination reasons.
const (
	TermFIN     TermReason = iota // TCP FIN observed
	TermRST                       // TCP RST observed
	TermTimeout                   // service-specific idle timeout (§3.2)
	TermFlush                     // tracker shut down with the flow open
)

// String implements fmt.Stringer.
func (t TermReason) String() string {
	switch t {
	case TermFIN:
		return "fin"
	case TermRST:
		return "rst"
	case TermTimeout:
		return "timeout"
	default:
		return "flush"
	}
}

// TrackerConfig configures session delimitation. The paper notes idle
// timeouts are service-specific; the TimeoutFor hook supports that.
type TrackerConfig struct {
	// TCPTimeout and UDPTimeout are the default idle expirations in
	// seconds (defaults 300 and 60).
	TCPTimeout, UDPTimeout float64
	// TimeoutFor, when set, overrides the default idle timeout per
	// tuple (e.g. after classifying the destination port to a service).
	TimeoutFor func(FiveTuple) float64
}

func (c TrackerConfig) withDefaults() TrackerConfig {
	if c.TCPTimeout <= 0 {
		c.TCPTimeout = 300
	}
	if c.UDPTimeout <= 0 {
		c.UDPTimeout = 60
	}
	return c
}

type flowState struct {
	start, last float64
	bytes       int64
	packets     int
}

// Tracker reassembles transport-layer sessions from packets, following
// §3.2: a TCP session starts with its first (handshake) packet and is
// terminated shortly after a FIN or RST, with idle timeouts guarding
// against unorthodox terminations; a UDP session starts when a new
// 5-tuple is seen and ends after an idle timeout.
//
// Tracker is not safe for concurrent use.
type Tracker struct {
	cfg       TrackerConfig
	active    map[FiveTuple]*flowState
	completed []FlowRecord
	// obsDelim[reason] counts closed flows per termination reason
	// (probe_flow_delim_total{reason=...}); nil handles when
	// instrumentation is disabled.
	obsDelim [TermFlush + 1]*obs.Counter
}

// NewTracker returns a Tracker with the given configuration.
func NewTracker(cfg TrackerConfig) *Tracker {
	t := &Tracker{cfg: cfg.withDefaults(), active: make(map[FiveTuple]*flowState)}
	if obs.Enabled() {
		for reason := TermFIN; reason <= TermFlush; reason++ {
			t.obsDelim[reason] = obs.CounterOf("probe_flow_delim_total",
				"reason", reason.String())
		}
	}
	return t
}

// ActiveFlows returns the number of currently open flows.
func (t *Tracker) ActiveFlows() int { return len(t.active) }

func (t *Tracker) timeout(tuple FiveTuple) float64 {
	if t.cfg.TimeoutFor != nil {
		if to := t.cfg.TimeoutFor(tuple); to > 0 {
			return to
		}
	}
	if tuple.Proto == UDP {
		return t.cfg.UDPTimeout
	}
	return t.cfg.TCPTimeout
}

// Observe processes one packet. Packets are expected in non-decreasing
// time order; out-of-order packets are tolerated but extend flows
// conservatively.
func (t *Tracker) Observe(p Packet) {
	st, ok := t.active[p.Tuple]
	if ok && p.Time-st.last > t.timeout(p.Tuple) {
		// The previous flow on this tuple expired idle before this
		// packet: emit it, then start fresh.
		t.finish(p.Tuple, st, st.last, TermTimeout)
		ok = false
	}
	if !ok {
		st = &flowState{start: p.Time, last: p.Time}
		t.active[p.Tuple] = st
	}
	st.bytes += int64(p.Size)
	st.packets++
	if p.Time > st.last {
		st.last = p.Time
	}
	if p.Tuple.Proto == TCP && (p.FIN || p.RST) {
		reason := TermFIN
		if p.RST {
			reason = TermRST
		}
		t.finish(p.Tuple, st, p.Time, reason)
	}
}

func (t *Tracker) finish(tuple FiveTuple, st *flowState, end float64, reason TermReason) {
	t.completed = append(t.completed, FlowRecord{
		Tuple:      tuple,
		Start:      st.start,
		End:        end,
		Bytes:      st.bytes,
		Packets:    st.packets,
		TermReason: reason,
	})
	t.obsDelim[reason].Inc()
	delete(t.active, tuple)
}

// ExpireIdle closes every flow idle longer than its timeout as of now,
// returning the number closed.
func (t *Tracker) ExpireIdle(now float64) int {
	var tuples []FiveTuple
	for tuple, st := range t.active {
		if now-st.last > t.timeout(tuple) {
			tuples = append(tuples, tuple)
		}
	}
	sort.Slice(tuples, func(i, j int) bool { return less(tuples[i], tuples[j]) })
	for _, tuple := range tuples {
		st := t.active[tuple]
		t.finish(tuple, st, st.last, TermTimeout)
	}
	return len(tuples)
}

// Flush closes all remaining flows (e.g. at capture end) and returns
// every completed record accumulated so far, clearing the buffer.
func (t *Tracker) Flush() []FlowRecord {
	var tuples []FiveTuple
	for tuple := range t.active {
		tuples = append(tuples, tuple)
	}
	sort.Slice(tuples, func(i, j int) bool { return less(tuples[i], tuples[j]) })
	for _, tuple := range tuples {
		st := t.active[tuple]
		t.finish(tuple, st, st.last, TermFlush)
	}
	out := t.completed
	t.completed = nil
	return out
}

// Completed drains and returns the records of flows that have finished
// so far without touching still-active flows.
func (t *Tracker) Completed() []FlowRecord {
	out := t.completed
	t.completed = nil
	return out
}

func less(a, b FiveTuple) bool {
	if a.Proto != b.Proto {
		return a.Proto < b.Proto
	}
	if a.SrcIP != b.SrcIP {
		return a.SrcIP < b.SrcIP
	}
	if a.DstIP != b.DstIP {
		return a.DstIP < b.DstIP
	}
	if a.SrcPort != b.SrcPort {
		return a.SrcPort < b.SrcPort
	}
	return a.DstPort < b.DstPort
}
