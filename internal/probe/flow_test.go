package probe

import (
	"testing"
)

func tcpTuple(port uint16) FiveTuple {
	return FiveTuple{Proto: TCP, SrcIP: 0x0a000001, DstIP: 0x5db8d822, SrcPort: 40000, DstPort: port}
}

func udpTuple(port uint16) FiveTuple {
	return FiveTuple{Proto: UDP, SrcIP: 0x0a000002, DstIP: 0x5db8d823, SrcPort: 40001, DstPort: port}
}

func TestTrackerTCPFin(t *testing.T) {
	tr := NewTracker(TrackerConfig{})
	tuple := tcpTuple(443)
	tr.Observe(Packet{Time: 0, Tuple: tuple, Size: 100, SYN: true})
	tr.Observe(Packet{Time: 1, Tuple: tuple, Size: 1400})
	tr.Observe(Packet{Time: 2.5, Tuple: tuple, Size: 50, FIN: true})
	recs := tr.Completed()
	if len(recs) != 1 {
		t.Fatalf("completed = %d, want 1", len(recs))
	}
	r := recs[0]
	if r.Start != 0 || r.End != 2.5 || r.Bytes != 1550 || r.Packets != 3 {
		t.Errorf("record = %+v", r)
	}
	if r.TermReason != TermFIN {
		t.Errorf("reason = %v, want fin", r.TermReason)
	}
	if r.Duration() != 2.5 {
		t.Errorf("duration = %v", r.Duration())
	}
	if tr.ActiveFlows() != 0 {
		t.Errorf("active = %d", tr.ActiveFlows())
	}
}

func TestTrackerTCPRst(t *testing.T) {
	tr := NewTracker(TrackerConfig{})
	tuple := tcpTuple(80)
	tr.Observe(Packet{Time: 0, Tuple: tuple, Size: 10})
	tr.Observe(Packet{Time: 1, Tuple: tuple, Size: 0, RST: true})
	recs := tr.Completed()
	if len(recs) != 1 || recs[0].TermReason != TermRST {
		t.Fatalf("records = %+v", recs)
	}
}

func TestTrackerUDPTimeout(t *testing.T) {
	tr := NewTracker(TrackerConfig{UDPTimeout: 30})
	tuple := udpTuple(53)
	tr.Observe(Packet{Time: 0, Tuple: tuple, Size: 60})
	tr.Observe(Packet{Time: 5, Tuple: tuple, Size: 60})
	// Nothing completed while the flow is fresh.
	if n := tr.ExpireIdle(20); n != 0 {
		t.Errorf("expired %d flows early", n)
	}
	if n := tr.ExpireIdle(36); n != 1 {
		t.Fatalf("expired %d flows, want 1", n)
	}
	recs := tr.Completed()
	if len(recs) != 1 {
		t.Fatalf("completed = %d", len(recs))
	}
	r := recs[0]
	// The flow ends at its last packet, not at the expiry check time.
	if r.End != 5 || r.TermReason != TermTimeout {
		t.Errorf("record = %+v", r)
	}
}

func TestTrackerTupleReuseAfterIdle(t *testing.T) {
	// A new packet on a tuple idle beyond its timeout starts a second
	// session (the unorthodox-termination guard of §3.2).
	tr := NewTracker(TrackerConfig{TCPTimeout: 60})
	tuple := tcpTuple(443)
	tr.Observe(Packet{Time: 0, Tuple: tuple, Size: 100})
	tr.Observe(Packet{Time: 10, Tuple: tuple, Size: 100})
	tr.Observe(Packet{Time: 500, Tuple: tuple, Size: 100}) // long gap
	recs := tr.Completed()
	if len(recs) != 1 {
		t.Fatalf("completed = %d, want 1 (the expired first session)", len(recs))
	}
	if recs[0].End != 10 || recs[0].Bytes != 200 || recs[0].TermReason != TermTimeout {
		t.Errorf("first session = %+v", recs[0])
	}
	if tr.ActiveFlows() != 1 {
		t.Errorf("active = %d, want 1 (the reused tuple)", tr.ActiveFlows())
	}
}

func TestTrackerFlush(t *testing.T) {
	tr := NewTracker(TrackerConfig{})
	tr.Observe(Packet{Time: 0, Tuple: tcpTuple(1), Size: 1})
	tr.Observe(Packet{Time: 0, Tuple: tcpTuple(2), Size: 2})
	recs := tr.Flush()
	if len(recs) != 2 {
		t.Fatalf("flushed = %d", len(recs))
	}
	for _, r := range recs {
		if r.TermReason != TermFlush {
			t.Errorf("reason = %v", r.TermReason)
		}
	}
	if tr.ActiveFlows() != 0 {
		t.Errorf("active after flush = %d", tr.ActiveFlows())
	}
	// Flush drains the completed buffer.
	if extra := tr.Flush(); len(extra) != 0 {
		t.Errorf("second flush returned %d records", len(extra))
	}
}

func TestTrackerServiceSpecificTimeout(t *testing.T) {
	tr := NewTracker(TrackerConfig{
		UDPTimeout: 60,
		TimeoutFor: func(tu FiveTuple) float64 {
			if tu.DstPort == 1000 {
				return 5 // aggressive per-service timeout
			}
			return 0 // fall through to defaults
		},
	})
	short := udpTuple(1000)
	long := udpTuple(2000)
	tr.Observe(Packet{Time: 0, Tuple: short, Size: 1})
	tr.Observe(Packet{Time: 0, Tuple: long, Size: 1})
	if n := tr.ExpireIdle(10); n != 1 {
		t.Fatalf("expired %d, want only the short-timeout flow", n)
	}
	recs := tr.Completed()
	if len(recs) != 1 || recs[0].Tuple != short {
		t.Errorf("expired records = %+v", recs)
	}
}

func TestTrackerConcurrentFlows(t *testing.T) {
	tr := NewTracker(TrackerConfig{})
	const n = 100
	for i := 0; i < n; i++ {
		tr.Observe(Packet{Time: float64(i) / 100, Tuple: tcpTuple(uint16(i)), Size: i})
	}
	if tr.ActiveFlows() != n {
		t.Fatalf("active = %d", tr.ActiveFlows())
	}
	for i := 0; i < n; i++ {
		tr.Observe(Packet{Time: 2, Tuple: tcpTuple(uint16(i)), Size: 0, FIN: true})
	}
	recs := tr.Completed()
	if len(recs) != n {
		t.Fatalf("completed = %d", len(recs))
	}
}

func TestProtoAndReasonStrings(t *testing.T) {
	if TCP.String() != "TCP" || UDP.String() != "UDP" {
		t.Error("proto strings")
	}
	if Proto(1).String() != "Proto(1)" {
		t.Error("unknown proto string")
	}
	for r, want := range map[TermReason]string{TermFIN: "fin", TermRST: "rst", TermTimeout: "timeout", TermFlush: "flush"} {
		if r.String() != want {
			t.Errorf("reason %d string = %s", r, r.String())
		}
	}
}
