package probe

import (
	"fmt"
	"sort"
)

// TopK is a Space-Saving heavy-hitter sketch: it tracks the (approximately)
// k most frequent keys of a stream using O(k) memory with deterministic
// overestimation bounds. The gateway probe uses it to maintain the
// live service popularity ranking (the Fig. 4 view) without keeping
// exact per-service counters for every flow at line rate.
//
// Guarantees (Metwally et al.): every key with true count > N/k is in
// the sketch, and each reported count overestimates the true count by
// at most the smallest tracked count.
type TopK struct {
	k      int
	counts map[int]uint64 // key -> estimated count
	errs   map[int]uint64 // key -> max overestimation
	n      uint64
}

// NewTopK creates a sketch tracking up to k keys (k >= 1).
func NewTopK(k int) (*TopK, error) {
	if k < 1 {
		return nil, fmt.Errorf("probe: TopK needs k >= 1, got %d", k)
	}
	return &TopK{
		k:      k,
		counts: make(map[int]uint64, k),
		errs:   make(map[int]uint64, k),
	}, nil
}

// Observe feeds one key occurrence.
func (t *TopK) Observe(key int) {
	t.n++
	if _, ok := t.counts[key]; ok {
		t.counts[key]++
		return
	}
	if len(t.counts) < t.k {
		t.counts[key] = 1
		t.errs[key] = 0
		return
	}
	// Evict the minimum and inherit its count (+1) with its count as
	// the overestimation bound.
	minKey, minCount := 0, uint64(0)
	first := true
	for k2, c := range t.counts {
		if first || c < minCount {
			minKey, minCount, first = k2, c, false
		}
	}
	delete(t.counts, minKey)
	delete(t.errs, minKey)
	t.counts[key] = minCount + 1
	t.errs[key] = minCount
}

// N returns the number of observations so far.
func (t *TopK) N() uint64 { return t.n }

// Entry is one sketch result.
type Entry struct {
	Key      int
	Count    uint64 // estimated count (may overestimate)
	MaxError uint64 // overestimation bound: true count >= Count - MaxError
}

// Top returns the tracked keys sorted by descending estimated count.
func (t *TopK) Top() []Entry {
	out := make([]Entry, 0, len(t.counts))
	for k, c := range t.counts {
		out = append(out, Entry{Key: k, Count: c, MaxError: t.errs[k]})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// GuaranteedTop returns the keys whose rank is certain: entries whose
// guaranteed count (Count - MaxError) is at least the estimated count
// of the next entry.
func (t *TopK) GuaranteedTop() []Entry {
	top := t.Top()
	var out []Entry
	for i, e := range top {
		if i+1 < len(top) && e.Count-e.MaxError < top[i+1].Count {
			break
		}
		out = append(out, e)
	}
	return out
}
