package probe

import (
	"math"
	"testing"

	"mobiletraffic/internal/faults"
	"mobiletraffic/internal/netsim"
)

func TestMergeEquivalentToSerial(t *testing.T) {
	topo, err := netsim.NewTopology(netsim.TopologyConfig{NumBS: 10, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := netsim.NewSimulator(topo, netsim.SimConfig{Days: 1, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Serial: everything into one collector.
	serial, err := NewCollector(len(sim.Services))
	if err != nil {
		t.Fatal(err)
	}
	for bs := 0; bs < 10; bs++ {
		if err := sim.GenerateDay(bs, 0, func(s netsim.Session) {
			if err := serial.Observe(s); err != nil {
				t.Fatal(err)
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Split: one collector per BS, merged afterwards.
	merged, err := NewCollector(len(sim.Services))
	if err != nil {
		t.Fatal(err)
	}
	for bs := 0; bs < 10; bs++ {
		part, err := NewCollector(len(sim.Services))
		if err != nil {
			t.Fatal(err)
		}
		if err := sim.GenerateDay(bs, 0, func(s netsim.Session) {
			if err := part.Observe(s); err != nil {
				t.Fatal(err)
			}
		}); err != nil {
			t.Fatal(err)
		}
		if err := merged.Merge(part); err != nil {
			t.Fatal(err)
		}
	}
	// Every cell agrees.
	sk := serial.Keys()
	mk := merged.Keys()
	if len(sk) != len(mk) {
		t.Fatalf("cell counts differ: %d vs %d", len(sk), len(mk))
	}
	for _, key := range sk {
		a, _ := serial.Get(key)
		b, ok := merged.Get(key)
		if !ok {
			t.Fatalf("merged missing cell %+v", key)
		}
		if a.Sessions != b.Sessions {
			t.Fatalf("cell %+v sessions %v vs %v", key, a.Sessions, b.Sessions)
		}
		for i := range a.Volume.P {
			if a.Volume.P[i] != b.Volume.P[i] {
				t.Fatalf("cell %+v volume bin %d differs", key, i)
			}
		}
		for i := range a.DurVolSum {
			if math.Abs(a.DurVolSum[i]-b.DurVolSum[i]) > 1e-6 || a.DurCount[i] != b.DurCount[i] {
				t.Fatalf("cell %+v pair bin %d differs", key, i)
			}
		}
	}
	// Shares identical after merge.
	s1, _, err := serial.SessionShare(nil)
	if err != nil {
		t.Fatal(err)
	}
	s2, _, err := merged.SessionShare(nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range s1 {
		if math.Abs(s1[i]-s2[i]) > 1e-12 {
			t.Fatalf("share %d differs: %v vs %v", i, s1[i], s2[i])
		}
	}
}

func TestMergeValidation(t *testing.T) {
	a, _ := NewCollector(3)
	if err := a.Merge(nil); err == nil {
		t.Error("nil merge must error")
	}
	b, _ := NewCollector(4)
	if err := a.Merge(b); err == nil {
		t.Error("service count mismatch must error")
	}
	c, _ := NewCollector(3)
	c.VolumeEdges = c.VolumeEdges[:len(c.VolumeEdges)-1]
	if err := a.Merge(c); err == nil {
		t.Error("grid mismatch must error")
	}
}

// TestMergeEmptyPartials verifies that folding in collectors that never
// observed a session is a no-op: a real campaign always has idle
// gateway sites, and after a fault-injected one it may have many.
func TestMergeEmptyPartials(t *testing.T) {
	dst, err := NewCollector(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.Observe(netsim.Session{Service: 1, BS: 0, Day: 0, Minute: 10, Volume: 1e5, Duration: 30}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		empty, err := NewCollector(3)
		if err != nil {
			t.Fatal(err)
		}
		if err := dst.Merge(empty); err != nil {
			t.Fatalf("merging empty partial %d: %v", i, err)
		}
	}
	if got := len(dst.Keys()); got != 1 {
		t.Fatalf("empty merges changed the cell count to %d", got)
	}
	st, _ := dst.Get(dst.Keys()[0])
	if st.Sessions != 1 {
		t.Fatalf("sessions = %v after empty merges", st.Sessions)
	}
	// Merging into a fresh collector also works in the other direction.
	fresh, err := NewCollector(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.Merge(dst); err != nil {
		t.Fatal(err)
	}
	if len(fresh.Keys()) != 1 {
		t.Fatal("merge into empty collector lost the cell")
	}
}

// TestMergeAfterFaults verifies the map-reduce layout survives fault
// injection: partial collectors fed through per-cell fault streams
// merge to exactly the serial fault-injected campaign, even when some
// partials end up with disjoint or empty cell sets.
func TestMergeAfterFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	topo, err := netsim.NewTopology(netsim.TopologyConfig{NumBS: 10, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := netsim.NewSimulator(topo, netsim.SimConfig{Days: 1, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	cfg := faults.Config{
		OutageProb: 0.3, TruncatedDayProb: 0.3, FlowLossProb: 0.1,
		FlowDupProb: 0.05, SignalGapProb: 0.05, MisclassProb: 0.03, Seed: 21,
	}
	collect := func(bs int, inj *faults.Injector, coll *Collector) {
		t.Helper()
		stream := inj.Day(bs, 0)
		if stream.Down() {
			return
		}
		if err := sim.GenerateDay(bs, 0, func(s netsim.Session) {
			stream.Apply(s, func(s netsim.Session) {
				if err := coll.Observe(s); err != nil {
					t.Fatal(err)
				}
			})
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Serial reference.
	injSer, err := faults.New(cfg, len(sim.Services))
	if err != nil {
		t.Fatal(err)
	}
	serial, err := NewCollector(len(sim.Services))
	if err != nil {
		t.Fatal(err)
	}
	for bs := 0; bs < 10; bs++ {
		collect(bs, injSer, serial)
	}
	// Partials: one collector per BS, merged afterwards.
	injPar, err := faults.New(cfg, len(sim.Services))
	if err != nil {
		t.Fatal(err)
	}
	merged, err := NewCollector(len(sim.Services))
	if err != nil {
		t.Fatal(err)
	}
	for bs := 0; bs < 10; bs++ {
		part, err := NewCollector(len(sim.Services))
		if err != nil {
			t.Fatal(err)
		}
		collect(bs, injPar, part)
		if err := merged.Merge(part); err != nil {
			t.Fatal(err)
		}
	}
	if injSer.Stats() != injPar.Stats() {
		t.Fatalf("fault realizations differ: %+v vs %+v", injSer.Stats(), injPar.Stats())
	}
	sk, mk := serial.Keys(), merged.Keys()
	if len(sk) != len(mk) {
		t.Fatalf("cell counts differ: %d vs %d", len(sk), len(mk))
	}
	for _, key := range sk {
		a, _ := serial.Get(key)
		b, ok := merged.Get(key)
		if !ok {
			t.Fatalf("merged missing cell %+v", key)
		}
		if a.Sessions != b.Sessions {
			t.Fatalf("cell %+v sessions %v vs %v", key, a.Sessions, b.Sessions)
		}
	}
}
