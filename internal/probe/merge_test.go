package probe

import (
	"math"
	"testing"

	"mobiletraffic/internal/netsim"
)

func TestMergeEquivalentToSerial(t *testing.T) {
	topo, err := netsim.NewTopology(netsim.TopologyConfig{NumBS: 10, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := netsim.NewSimulator(topo, netsim.SimConfig{Days: 1, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Serial: everything into one collector.
	serial, err := NewCollector(len(sim.Services))
	if err != nil {
		t.Fatal(err)
	}
	for bs := 0; bs < 10; bs++ {
		if err := sim.GenerateDay(bs, 0, func(s netsim.Session) {
			if err := serial.Observe(s); err != nil {
				t.Fatal(err)
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Split: one collector per BS, merged afterwards.
	merged, err := NewCollector(len(sim.Services))
	if err != nil {
		t.Fatal(err)
	}
	for bs := 0; bs < 10; bs++ {
		part, err := NewCollector(len(sim.Services))
		if err != nil {
			t.Fatal(err)
		}
		if err := sim.GenerateDay(bs, 0, func(s netsim.Session) {
			if err := part.Observe(s); err != nil {
				t.Fatal(err)
			}
		}); err != nil {
			t.Fatal(err)
		}
		if err := merged.Merge(part); err != nil {
			t.Fatal(err)
		}
	}
	// Every cell agrees.
	sk := serial.Keys()
	mk := merged.Keys()
	if len(sk) != len(mk) {
		t.Fatalf("cell counts differ: %d vs %d", len(sk), len(mk))
	}
	for _, key := range sk {
		a, _ := serial.Get(key)
		b, ok := merged.Get(key)
		if !ok {
			t.Fatalf("merged missing cell %+v", key)
		}
		if a.Sessions != b.Sessions {
			t.Fatalf("cell %+v sessions %v vs %v", key, a.Sessions, b.Sessions)
		}
		for i := range a.Volume.P {
			if a.Volume.P[i] != b.Volume.P[i] {
				t.Fatalf("cell %+v volume bin %d differs", key, i)
			}
		}
		for i := range a.DurVolSum {
			if math.Abs(a.DurVolSum[i]-b.DurVolSum[i]) > 1e-6 || a.DurCount[i] != b.DurCount[i] {
				t.Fatalf("cell %+v pair bin %d differs", key, i)
			}
		}
	}
	// Shares identical after merge.
	s1, _, err := serial.SessionShare(nil)
	if err != nil {
		t.Fatal(err)
	}
	s2, _, err := merged.SessionShare(nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range s1 {
		if math.Abs(s1[i]-s2[i]) > 1e-12 {
			t.Fatalf("share %d differs: %v vs %v", i, s1[i], s2[i])
		}
	}
}

func TestMergeValidation(t *testing.T) {
	a, _ := NewCollector(3)
	if err := a.Merge(nil); err == nil {
		t.Error("nil merge must error")
	}
	b, _ := NewCollector(4)
	if err := a.Merge(b); err == nil {
		t.Error("service count mismatch must error")
	}
	c, _ := NewCollector(3)
	c.VolumeEdges = c.VolumeEdges[:len(c.VolumeEdges)-1]
	if err := a.Merge(c); err == nil {
		t.Error("grid mismatch must error")
	}
}
