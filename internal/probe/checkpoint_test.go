package probe

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mobiletraffic/internal/netsim"
)

// checkpointCollector builds a small collector with a mix of populated
// and empty cells, including awkward float values, so the round-trip
// tests exercise sparse encoding and bit-exactness together.
func checkpointCollector(t *testing.T) *Collector {
	t.Helper()
	c, err := NewCollectorSized(3, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	sessions := []netsim.Session{
		{Service: 0, BS: 0, Day: 0, Minute: 0, Volume: 1, Duration: 0.5},
		{Service: 0, BS: 0, Day: 0, Minute: 1439, Volume: 1e9, Duration: 3600},
		{Service: 1, BS: 2, Day: 1, Minute: 720, Volume: 123456.789, Duration: 17.25},
		{Service: 2, BS: 4, Day: 0, Minute: 60, Volume: 0.1, Duration: 1e-3},
		{Service: 2, BS: 4, Day: 1, Minute: 61, Volume: 7e7, Duration: 299.999},
	}
	for _, s := range sessions {
		if err := c.Observe(s); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

// sameCollector fails the test unless a and b are bit-identical:
// dimensions, grids, cell sets and every cell payload float.
func sameCollector(t *testing.T, a, b *Collector) {
	t.Helper()
	if a.NumServices != b.NumServices {
		t.Fatalf("service counts differ: %d vs %d", a.NumServices, b.NumServices)
	}
	aBS, aDays := a.Extent()
	bBS, bDays := b.Extent()
	if aBS != bBS || aDays != bDays {
		t.Fatalf("extents differ: (%d,%d) vs (%d,%d)", aBS, aDays, bBS, bDays)
	}
	if !sameEdges(a.VolumeEdges, b.VolumeEdges) || !sameEdges(a.DurationEdges, b.DurationEdges) {
		t.Fatal("grids differ")
	}
	ak, bk := a.Keys(), b.Keys()
	if len(ak) != len(bk) {
		t.Fatalf("cell counts differ: %d vs %d", len(ak), len(bk))
	}
	for _, key := range ak {
		sa, _ := a.Get(key)
		sb, ok := b.Get(key)
		if !ok {
			t.Fatalf("cell %+v missing after round trip", key)
		}
		if math.Float64bits(sa.Sessions) != math.Float64bits(sb.Sessions) {
			t.Fatalf("cell %+v sessions %v vs %v", key, sa.Sessions, sb.Sessions)
		}
		runs := [][2][]float64{
			{sa.MinuteCounts, sb.MinuteCounts},
			{sa.Volume.P, sb.Volume.P},
			{sa.DurVolSum, sb.DurVolSum},
			{sa.DurCount, sb.DurCount},
		}
		for r, pair := range runs {
			if len(pair[0]) != len(pair[1]) {
				t.Fatalf("cell %+v run %d lengths differ", key, r)
			}
			for i := range pair[0] {
				if math.Float64bits(pair[0][i]) != math.Float64bits(pair[1][i]) {
					t.Fatalf("cell %+v run %d bin %d: %v vs %v", key, r, i, pair[0][i], pair[1][i])
				}
			}
		}
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	c := checkpointCollector(t)
	var buf bytes.Buffer
	if err := c.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCheckpoint(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	sameCollector(t, c, got)
	// The encoding is deterministic: re-encoding the decoded collector
	// reproduces the byte stream exactly.
	var buf2 bytes.Buffer
	if err := got.WriteCheckpoint(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("re-encoding a decoded checkpoint changed the bytes")
	}
}

func TestCheckpointEmptyCollector(t *testing.T) {
	c, err := NewCollectorSized(2, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCheckpoint(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	sameCollector(t, c, got)
}

func TestCheckpointFileRoundTrip(t *testing.T) {
	c := checkpointCollector(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "shard-0000.ckpt")
	if err := c.WriteCheckpointFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	sameCollector(t, c, got)
	// The atomic-rename protocol leaves no temp files behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "shard-0000.ckpt" {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("leftover files after checkpoint write: %v", names)
	}
}

// TestCheckpointCorruption feeds the decoder truncations and
// single-bit flips of a valid checkpoint: all must return an error
// (the CRC trailer catches any flip, truncation hits EOF) and none may
// panic. The whole header and trailer are swept exhaustively; the bulky
// float payload is sampled at a prime stride to keep the test fast.
func TestCheckpointCorruption(t *testing.T) {
	c := checkpointCollector(t)
	var buf bytes.Buffer
	if err := c.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	// Every offset in the header and trailer, every 131st in between.
	offsets := func() []int {
		var out []int
		for i := 0; i < len(valid); i++ {
			if i < 64 || i >= len(valid)-8 || i%131 == 0 {
				out = append(out, i)
			}
		}
		return out
	}()

	t.Run("truncated", func(t *testing.T) {
		for _, n := range offsets {
			if _, err := ReadCheckpoint(bytes.NewReader(valid[:n])); err == nil {
				t.Fatalf("truncation to %d bytes decoded successfully", n)
			}
		}
	})
	t.Run("bitflips", func(t *testing.T) {
		mut := make([]byte, len(valid))
		for _, i := range offsets {
			for bit := 0; bit < 8; bit++ {
				copy(mut, valid)
				mut[i] ^= 1 << bit
				if _, err := ReadCheckpoint(bytes.NewReader(mut)); err == nil {
					t.Fatalf("bit flip at byte %d bit %d decoded successfully", i, bit)
				}
			}
		}
	})
	t.Run("wrong-magic", func(t *testing.T) {
		mut := append([]byte("NOPE"), valid[4:]...)
		if _, err := ReadCheckpoint(bytes.NewReader(mut)); err == nil || !strings.Contains(err.Error(), "magic") {
			t.Fatalf("wrong magic: err = %v", err)
		}
	})
	t.Run("wrong-version", func(t *testing.T) {
		mut := append([]byte(nil), valid...)
		mut[4] = 0xFF // version low byte
		if _, err := ReadCheckpoint(bytes.NewReader(mut)); err == nil || !strings.Contains(err.Error(), "version") {
			t.Fatalf("wrong version: err = %v", err)
		}
	})
	t.Run("trailing-bytes", func(t *testing.T) {
		mut := append(append([]byte(nil), valid...), 0x00)
		if _, err := ReadCheckpoint(bytes.NewReader(mut)); err == nil || !strings.Contains(err.Error(), "trailing") {
			t.Fatalf("trailing byte: err = %v", err)
		}
	})
	t.Run("empty", func(t *testing.T) {
		if _, err := ReadCheckpoint(bytes.NewReader(nil)); err == nil {
			t.Fatal("empty input decoded successfully")
		}
	})
}

// TestCheckpointSlabCap verifies the decoder refuses headers declaring
// a slab larger than MaxCheckpointCells instead of allocating it.
func TestCheckpointSlabCap(t *testing.T) {
	c := checkpointCollector(t)
	var buf bytes.Buffer
	if err := c.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	old := MaxCheckpointCells
	defer func() { MaxCheckpointCells = old }()
	MaxCheckpointCells = 4 // below the 3*5*2 slab of the test collector
	if _, err := ReadCheckpoint(bytes.NewReader(buf.Bytes())); err == nil || !strings.Contains(err.Error(), "cap") {
		t.Fatalf("oversized slab: err = %v", err)
	}
}

// FuzzReadCheckpoint asserts the decoder's core contract: arbitrary
// bytes must either decode or error — never panic, never allocate
// unboundedly (the slab cap is lowered so hostile headers are cheap to
// reject). A successful decode must re-encode deterministically.
func FuzzReadCheckpoint(f *testing.F) {
	c, err := NewCollectorSized(2, 3, 1)
	if err != nil {
		f.Fatal(err)
	}
	for _, s := range []netsim.Session{
		{Service: 0, BS: 0, Day: 0, Minute: 5, Volume: 100, Duration: 3},
		{Service: 1, BS: 2, Day: 0, Minute: 900, Volume: 5e6, Duration: 120},
	} {
		if err := c.Observe(s); err != nil {
			f.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := c.WriteCheckpoint(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte(checkpointMagic))
	f.Add([]byte{})

	old := MaxCheckpointCells
	MaxCheckpointCells = 1 << 16
	f.Cleanup(func() { MaxCheckpointCells = old })

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadCheckpoint(bytes.NewReader(data))
		if err != nil {
			return
		}
		var re bytes.Buffer
		if err := got.WriteCheckpoint(&re); err != nil {
			t.Fatalf("re-encoding a decoded checkpoint failed: %v", err)
		}
		if !bytes.Equal(data, re.Bytes()) {
			t.Fatal("accepted checkpoint did not re-encode to the same bytes")
		}
	})
}
