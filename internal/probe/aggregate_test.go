package probe

import (
	"math"
	"testing"

	"mobiletraffic/internal/mathx"
	"mobiletraffic/internal/netsim"
)

func mkSession(svc, bs, day, minute int, volume, duration float64) netsim.Session {
	return netsim.Session{
		Service: svc, BS: bs, Day: day, Minute: minute,
		Start: float64(minute) * 60, Volume: volume, Duration: duration,
	}
}

func TestCollectorObserveBasics(t *testing.T) {
	c, err := NewCollector(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Observe(mkSession(0, 1, 0, 30, 1e6, 10)); err != nil {
		t.Fatal(err)
	}
	if err := c.Observe(mkSession(0, 1, 0, 30, 2e6, 20)); err != nil {
		t.Fatal(err)
	}
	if err := c.Observe(mkSession(1, 1, 0, 31, 5e5, 5)); err != nil {
		t.Fatal(err)
	}
	st, ok := c.Get(StatKey{Service: 0, BS: 1, Day: 0})
	if !ok {
		t.Fatal("missing cell")
	}
	if st.Sessions != 2 || st.MinuteCounts[30] != 2 {
		t.Errorf("cell stats: sessions=%v counts[30]=%v", st.Sessions, st.MinuteCounts[30])
	}
	if got := st.Volume.Total(); got != 2 {
		t.Errorf("volume mass = %v", got)
	}
	if len(c.Keys()) != 2 {
		t.Errorf("keys = %d", len(c.Keys()))
	}
}

func TestCollectorValidation(t *testing.T) {
	if _, err := NewCollector(0); err == nil {
		t.Error("zero services must error")
	}
	c, _ := NewCollector(2)
	if err := c.Observe(mkSession(5, 0, 0, 0, 1, 1)); err == nil {
		t.Error("out-of-range service must error")
	}
	if err := c.Observe(netsim.Session{Service: 0, Minute: -1, Volume: 1, Duration: 1}); err == nil {
		t.Error("negative minute must error")
	}
}

func TestPairValues(t *testing.T) {
	c, _ := NewCollector(1)
	// Two sessions in the same duration bin.
	if err := c.Observe(mkSession(0, 0, 0, 0, 10e6, 100)); err != nil {
		t.Fatal(err)
	}
	if err := c.Observe(mkSession(0, 0, 0, 0, 20e6, 101)); err != nil {
		t.Fatal(err)
	}
	st, _ := c.Get(StatKey{Service: 0, BS: 0, Day: 0})
	vals := st.PairValues()
	bin := c.durBin(100)
	if math.Abs(vals[bin]-15e6) > 1e-6 {
		t.Errorf("pair value = %v, want 15e6", vals[bin])
	}
	// Other bins NaN.
	if !math.IsNaN(vals[0]) {
		t.Errorf("empty bin value = %v, want NaN", vals[0])
	}
}

func TestDurBinBoundaries(t *testing.T) {
	c, _ := NewCollector(1)
	if got := c.durBin(0.5); got != 0 {
		t.Errorf("durBin(0.5) = %d", got)
	}
	if got := c.durBin(1e9); got != len(c.DurationEdges)-2 {
		t.Errorf("durBin(huge) = %d", got)
	}
	// Monotone in duration.
	prev := -1
	for _, d := range mathx.LogSpace(0, 5, 100) {
		b := c.durBin(d)
		if b < prev {
			t.Fatalf("durBin not monotone at %v", d)
		}
		prev = b
	}
}

func TestAggregateVolumeWeighting(t *testing.T) {
	c, _ := NewCollector(1)
	// BS 0: 3 sessions at ~1e6; BS 1: 1 session at ~1e8.
	for i := 0; i < 3; i++ {
		if err := c.Observe(mkSession(0, 0, 0, 10, 1e6, 10)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Observe(mkSession(0, 1, 0, 10, 1e8, 10)); err != nil {
		t.Fatal(err)
	}
	h, total, err := c.AggregateVolume(ForService(0))
	if err != nil {
		t.Fatal(err)
	}
	if total != 4 {
		t.Errorf("total weight = %v", total)
	}
	// Eq. 2: masses weighted by session counts -> 75% near log10=6.
	lowBin := h.BinIndex(6.0)
	if math.Abs(h.P[lowBin]-0.75) > 1e-9 {
		t.Errorf("low-volume mass = %v, want 0.75", h.P[lowBin])
	}
	if _, _, err := c.AggregateVolume(ForService(99)); err == nil {
		t.Error("empty filter must error")
	}
}

func TestAggregatePairsEq1(t *testing.T) {
	c, _ := NewCollector(1)
	// Same duration bin on two BSs with different volumes and counts:
	// Eq. (1) weights by session count.
	if err := c.Observe(mkSession(0, 0, 0, 0, 10, 100)); err != nil {
		t.Fatal(err)
	}
	if err := c.Observe(mkSession(0, 0, 0, 0, 10, 100)); err != nil {
		t.Fatal(err)
	}
	if err := c.Observe(mkSession(0, 1, 0, 0, 40, 100)); err != nil {
		t.Fatal(err)
	}
	vals, counts, err := c.AggregatePairs(ForService(0))
	if err != nil {
		t.Fatal(err)
	}
	bin := c.durBin(100)
	if counts[bin] != 3 {
		t.Errorf("bin count = %v", counts[bin])
	}
	if math.Abs(vals[bin]-20) > 1e-12 {
		t.Errorf("weighted pair value = %v, want 20", vals[bin])
	}
	if _, _, err := c.AggregatePairs(ForService(1)); err == nil {
		t.Error("empty filter must error")
	}
}

func TestMinuteCountSamplesSumsServices(t *testing.T) {
	c, _ := NewCollector(2)
	if err := c.Observe(mkSession(0, 0, 0, 700, 1e6, 10)); err != nil {
		t.Fatal(err)
	}
	if err := c.Observe(mkSession(1, 0, 0, 700, 1e6, 10)); err != nil {
		t.Fatal(err)
	}
	samples := c.MinuteCountSamples(nil, func(m int) bool { return m == 700 })
	if len(samples) != 1 || samples[0] != 2 {
		t.Errorf("samples = %v, want [2]", samples)
	}
	// All minutes of the (bs, day) cell are emitted without a filter.
	all := c.MinuteCountSamples(nil, nil)
	if len(all) != netsim.MinutesPerDay {
		t.Errorf("all-minute samples = %d", len(all))
	}
}

func TestSessionAndTrafficShares(t *testing.T) {
	c, _ := NewCollector(2)
	// Service 0: 3 sessions of 1 MB; service 1: 1 session of 9 MB.
	for i := 0; i < 3; i++ {
		if err := c.Observe(mkSession(0, i, 0, 0, 1e6, 10)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Observe(mkSession(1, 0, 0, 0, 9e6, 10)); err != nil {
		t.Fatal(err)
	}
	share, cv, err := c.SessionShare(nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(share[0]-0.75) > 1e-12 || math.Abs(share[1]-0.25) > 1e-12 {
		t.Errorf("session shares = %v", share)
	}
	if len(cv) != 2 {
		t.Errorf("cv = %v", cv)
	}
	tshare, _, err := c.TrafficShare(nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tshare[0]-0.25) > 1e-12 || math.Abs(tshare[1]-0.75) > 1e-12 {
		t.Errorf("traffic shares = %v", tshare)
	}
	empty, _ := NewCollector(2)
	if _, _, err := empty.SessionShare(nil); err == nil {
		t.Error("empty collector share must error")
	}
	if _, _, err := empty.TrafficShare(nil); err == nil {
		t.Error("empty collector traffic share must error")
	}
}

func TestKeyFilters(t *testing.T) {
	k := StatKey{Service: 2, BS: 7, Day: 5}
	if !ForService(2)(k) || ForService(1)(k) {
		t.Error("ForService")
	}
	if !BSIn([]int{7, 9})(k) || BSIn([]int{1})(k) {
		t.Error("BSIn")
	}
	if !DayIn(5)(k) || DayIn(0)(k) {
		t.Error("DayIn")
	}
	if Weekdays()(k) { // day 5 = Saturday
		t.Error("Weekdays should reject Saturday")
	}
	if !Weekends()(k) {
		t.Error("Weekends should accept Saturday")
	}
	if !And(ForService(2), DayIn(5))(k) || And(ForService(2), DayIn(4))(k) {
		t.Error("And")
	}
}

func TestDurationCenters(t *testing.T) {
	c, _ := NewCollector(1)
	centers := c.DurationCenters()
	if len(centers) != len(c.DurationEdges)-1 {
		t.Fatalf("centers = %d", len(centers))
	}
	if centers[0] < 1 || centers[0] > 2 {
		t.Errorf("first duration center = %v s", centers[0])
	}
	for i := 1; i < len(centers); i++ {
		if centers[i] <= centers[i-1] {
			t.Fatal("duration centers not increasing")
		}
	}
}
