package probe

import (
	"fmt"
	"math"
	"sort"
	"strconv"

	"mobiletraffic/internal/dist"
	"mobiletraffic/internal/mathx"
	"mobiletraffic/internal/netsim"
	"mobiletraffic/internal/obs"
)

// Default measurement grids. Volumes live on a log10-bytes abscissa
// from 100 B to ~30 GB; durations on a log10-seconds abscissa from 1 s
// to ~28 h, matching the "discretized duration" pairs of §3.2.
var (
	// DefaultVolumeEdges spans log10(bytes) in [2, 10.5] with 0.05-decade bins.
	DefaultVolumeEdges = mathx.LinSpace(2, 10.5, 171)
	// DefaultDurationEdges spans log10(seconds) in [0, 5] with 0.1-decade bins.
	DefaultDurationEdges = mathx.LinSpace(0, 5, 51)
)

// StatKey identifies one (service, BS, day) statistics cell.
type StatKey struct {
	Service int
	BS      int
	Day     int
}

// DayStats holds the privacy-preserving aggregate the operator exports
// per (service, BS, day) tuple (§3.2): per-minute session counts
// w^{c,m}, the traffic volume PDF F^{c,t}, and duration-volume pairs
// v^{c,t}(d).
type DayStats struct {
	// MinuteCounts[m] is the number of sessions established in minute m.
	MinuteCounts []float64
	// Sessions is the daily total w^{c,t}.
	Sessions float64
	// Volume is the histogram of per-session log10 traffic volume.
	Volume *dist.Hist
	// DurVolSum[i] and DurCount[i] accumulate volume and session count
	// per duration bin, so DurVolSum[i]/DurCount[i] is v(d_i).
	DurVolSum, DurCount []float64
}

// PairValues returns the mean volume per duration bin (NaN for empty
// bins): the v^{c,t}_s(d) value pairs.
func (d *DayStats) PairValues() []float64 {
	out := make([]float64, len(d.DurVolSum))
	for i := range out {
		if d.DurCount[i] > 0 {
			out[i] = d.DurVolSum[i] / d.DurCount[i]
		} else {
			out[i] = math.NaN()
		}
	}
	return out
}

// Collector accumulates simulated sessions into the per-(service, BS,
// day) statistics of §3.2.
type Collector struct {
	VolumeEdges   []float64
	DurationEdges []float64
	NumServices   int
	stats         map[StatKey]*DayStats
	// obsFlows[svc] counts the sessions folded in per service
	// (probe_flows_tracked_total{service=...}); handles are resolved
	// once at construction so Observe never does a metric lookup, and
	// are nil (free) when instrumentation is disabled.
	obsFlows []*obs.Counter
}

// NewCollector returns a Collector over the default measurement grids.
func NewCollector(numServices int) (*Collector, error) {
	if numServices <= 0 {
		return nil, fmt.Errorf("probe: collector needs >= 1 service, got %d", numServices)
	}
	c := &Collector{
		VolumeEdges:   DefaultVolumeEdges,
		DurationEdges: DefaultDurationEdges,
		NumServices:   numServices,
		stats:         make(map[StatKey]*DayStats),
	}
	if obs.Enabled() {
		c.obsFlows = make([]*obs.Counter, numServices)
		for i := range c.obsFlows {
			c.obsFlows[i] = obs.CounterOf("probe_flows_tracked_total",
				"service", "svc"+strconv.Itoa(i))
		}
	}
	return c, nil
}

func (c *Collector) cell(key StatKey) (*DayStats, error) {
	st, ok := c.stats[key]
	if ok {
		return st, nil
	}
	vol, err := dist.NewHist(c.VolumeEdges)
	if err != nil {
		return nil, err
	}
	st = &DayStats{
		MinuteCounts: make([]float64, netsim.MinutesPerDay),
		Volume:       vol,
		DurVolSum:    make([]float64, len(c.DurationEdges)-1),
		DurCount:     make([]float64, len(c.DurationEdges)-1),
	}
	c.stats[key] = st
	return st, nil
}

// durBin maps a duration in seconds to its log-spaced bin index.
func (c *Collector) durBin(duration float64) int {
	u := math.Log10(math.Max(duration, 1))
	n := len(c.DurationEdges) - 1
	if u <= c.DurationEdges[0] {
		return 0
	}
	if u >= c.DurationEdges[n] {
		return n - 1
	}
	span := c.DurationEdges[n] - c.DurationEdges[0]
	i := int((u - c.DurationEdges[0]) / span * float64(n))
	if i >= n {
		i = n - 1
	}
	return i
}

// Observe folds one session into the statistics.
func (c *Collector) Observe(s netsim.Session) error {
	if s.Service < 0 || s.Service >= c.NumServices {
		return fmt.Errorf("probe: session service %d out of range [0, %d)", s.Service, c.NumServices)
	}
	if s.Minute < 0 || s.Minute >= netsim.MinutesPerDay {
		return fmt.Errorf("probe: session minute %d out of range", s.Minute)
	}
	st, err := c.cell(StatKey{Service: s.Service, BS: s.BS, Day: s.Day})
	if err != nil {
		return err
	}
	st.MinuteCounts[s.Minute]++
	st.Sessions++
	st.Volume.Add(math.Log10(math.Max(s.Volume, 1)), 1)
	bin := c.durBin(s.Duration)
	st.DurVolSum[bin] += s.Volume
	st.DurCount[bin]++
	if c.obsFlows != nil {
		c.obsFlows[s.Service].Inc()
	}
	return nil
}

// TotalSessions returns the number of sessions observed across every
// statistics cell — the campaign's grand total w, used e.g. to gauge
// how much of a workload survived an injected-fault run.
func (c *Collector) TotalSessions() float64 {
	var total float64
	for _, st := range c.stats {
		total += st.Sessions
	}
	return total
}

// Get returns the statistics cell for a key, if present.
func (c *Collector) Get(key StatKey) (*DayStats, bool) {
	st, ok := c.stats[key]
	return st, ok
}

// Keys returns every populated (service, BS, day) key.
func (c *Collector) Keys() []StatKey {
	out := make([]StatKey, 0, len(c.stats))
	for k := range c.stats {
		out = append(out, k)
	}
	return out
}

// sortedKeys returns the populated keys in deterministic (service, BS,
// day) order. Every aggregation iterates in this order so that
// floating-point summation — and therefore every fitted parameter — is
// reproducible run to run regardless of map layout or the parallelism
// of collection.
func (c *Collector) sortedKeys() []StatKey {
	out := c.Keys()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Service != b.Service {
			return a.Service < b.Service
		}
		if a.BS != b.BS {
			return a.BS < b.BS
		}
		return a.Day < b.Day
	})
	return out
}

// KeyFilter selects a subset of statistics cells.
type KeyFilter func(StatKey) bool

// ForService returns a filter keeping one service.
func ForService(svc int) KeyFilter { return func(k StatKey) bool { return k.Service == svc } }

// And combines filters conjunctively.
func And(fs ...KeyFilter) KeyFilter {
	return func(k StatKey) bool {
		for _, f := range fs {
			if !f(k) {
				return false
			}
		}
		return true
	}
}

// BSIn returns a filter keeping BSs from the given index set.
func BSIn(idx []int) KeyFilter {
	set := make(map[int]bool, len(idx))
	for _, i := range idx {
		set[i] = true
	}
	return func(k StatKey) bool { return set[k.BS] }
}

// DayIn returns a filter keeping the given days.
func DayIn(days ...int) KeyFilter {
	set := make(map[int]bool, len(days))
	for _, d := range days {
		set[d] = true
	}
	return func(k StatKey) bool { return set[k.Day] }
}

// Weekdays keeps Monday-Friday cells (day 0 = Monday).
func Weekdays() KeyFilter { return func(k StatKey) bool { return !netsim.IsWeekend(k.Day) } }

// Weekends keeps Saturday/Sunday cells.
func Weekends() KeyFilter { return func(k StatKey) bool { return netsim.IsWeekend(k.Day) } }

// AggregateVolume merges the volume PDFs of every cell passing the
// filter via the session-count-weighted mixture of Eq. (2), returning
// the normalized aggregate F_s(x) and the total session weight.
func (c *Collector) AggregateVolume(filter KeyFilter) (*dist.Hist, float64, error) {
	var hists []*dist.Hist
	var weights []float64
	var total float64
	for _, k := range c.sortedKeys() {
		st := c.stats[k]
		if filter != nil && !filter(k) {
			continue
		}
		if st.Sessions <= 0 {
			continue
		}
		h := st.Volume.Clone()
		if err := h.Normalize(); err != nil {
			continue
		}
		hists = append(hists, h)
		weights = append(weights, st.Sessions)
		total += st.Sessions
	}
	if len(hists) == 0 {
		return nil, 0, fmt.Errorf("probe: no cells match the volume aggregation filter")
	}
	mixed, err := dist.MixHists(hists, weights)
	if err != nil {
		return nil, 0, err
	}
	return mixed, total, nil
}

// AggregatePairs merges duration-volume pairs across cells passing the
// filter via the session-count-weighted average of Eq. (1). It returns
// the mean volume per duration bin (NaN where no sessions fell) and the
// per-bin session counts.
func (c *Collector) AggregatePairs(filter KeyFilter) (values, counts []float64, err error) {
	n := len(c.DurationEdges) - 1
	sum := make([]float64, n)
	cnt := make([]float64, n)
	matched := false
	for _, k := range c.sortedKeys() {
		st := c.stats[k]
		if filter != nil && !filter(k) {
			continue
		}
		matched = true
		for i := 0; i < n; i++ {
			sum[i] += st.DurVolSum[i]
			cnt[i] += st.DurCount[i]
		}
	}
	if !matched {
		return nil, nil, fmt.Errorf("probe: no cells match the pair aggregation filter")
	}
	values = make([]float64, n)
	for i := 0; i < n; i++ {
		if cnt[i] > 0 {
			values[i] = sum[i] / cnt[i]
		} else {
			values[i] = math.NaN()
		}
	}
	return values, cnt, nil
}

// MinuteCountSamples gathers the per-minute arrival counts w^{c,m} of
// every cell passing the filter, summed over services minute by minute
// per (BS, day) — the raw samples behind the Fig. 3 arrival PDFs.
// minuteFilter optionally restricts which minutes contribute (e.g.
// netsim.IsPeakMinute).
func (c *Collector) MinuteCountSamples(filter KeyFilter, minuteFilter func(int) bool) []float64 {
	type bsDay struct{ bs, day int }
	perBSDay := make(map[bsDay][]float64)
	var order []bsDay
	for _, k := range c.sortedKeys() {
		st := c.stats[k]
		if filter != nil && !filter(k) {
			continue
		}
		key := bsDay{k.BS, k.Day}
		acc, ok := perBSDay[key]
		if !ok {
			acc = make([]float64, netsim.MinutesPerDay)
			perBSDay[key] = acc
			order = append(order, key)
		}
		for m, v := range st.MinuteCounts {
			acc[m] += v
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].bs != order[j].bs {
			return order[i].bs < order[j].bs
		}
		return order[i].day < order[j].day
	})
	var out []float64
	for _, key := range order {
		for m, v := range perBSDay[key] {
			if minuteFilter != nil && !minuteFilter(m) {
				continue
			}
			out = append(out, v)
		}
	}
	return out
}

// SessionShare returns, per service, the fraction of all observed
// sessions (the Table 1 "Sessions %" column) across cells passing the
// filter, plus the coefficient of variation of that share across
// (BS, day) cells.
func (c *Collector) SessionShare(filter KeyFilter) (share, cv []float64, err error) {
	type bsDay struct{ bs, day int }
	perCell := make(map[bsDay][]float64)
	var cellOrder []bsDay
	totals := make([]float64, c.NumServices)
	var grand float64
	for _, k := range c.sortedKeys() {
		st := c.stats[k]
		if filter != nil && !filter(k) {
			continue
		}
		cell := bsDay{k.BS, k.Day}
		if _, ok := perCell[cell]; !ok {
			perCell[cell] = make([]float64, c.NumServices)
			cellOrder = append(cellOrder, cell)
		}
		perCell[cell][k.Service] += st.Sessions
		totals[k.Service] += st.Sessions
		grand += st.Sessions
	}
	sort.Slice(cellOrder, func(i, j int) bool {
		if cellOrder[i].bs != cellOrder[j].bs {
			return cellOrder[i].bs < cellOrder[j].bs
		}
		return cellOrder[i].day < cellOrder[j].day
	})
	if grand <= 0 {
		return nil, nil, fmt.Errorf("probe: no sessions match the share filter")
	}
	share = make([]float64, c.NumServices)
	for s := range share {
		share[s] = totals[s] / grand
	}
	// CV of the per-cell share around its mean.
	cv = make([]float64, c.NumServices)
	for s := 0; s < c.NumServices; s++ {
		var vals []float64
		for _, cell := range cellOrder {
			counts := perCell[cell]
			var cellTotal float64
			for _, v := range counts {
				cellTotal += v
			}
			if cellTotal > 0 {
				vals = append(vals, counts[s]/cellTotal)
			}
		}
		if len(vals) > 1 && mathx.Mean(vals) > 0 {
			cv[s] = mathx.Std(vals) / mathx.Mean(vals)
		}
	}
	return share, cv, nil
}

// TrafficShare returns, per service, the fraction of total traffic
// volume (the Table 1 "Traffic %" column) across cells passing the
// filter, plus the per-cell coefficient of variation.
func (c *Collector) TrafficShare(filter KeyFilter) (share, cv []float64, err error) {
	type bsDay struct{ bs, day int }
	perCell := make(map[bsDay][]float64)
	var cellOrder []bsDay
	totals := make([]float64, c.NumServices)
	var grand float64
	for _, k := range c.sortedKeys() {
		st := c.stats[k]
		if filter != nil && !filter(k) {
			continue
		}
		var vol float64
		for i := range st.DurVolSum {
			vol += st.DurVolSum[i]
		}
		cell := bsDay{k.BS, k.Day}
		if _, ok := perCell[cell]; !ok {
			perCell[cell] = make([]float64, c.NumServices)
			cellOrder = append(cellOrder, cell)
		}
		perCell[cell][k.Service] += vol
		totals[k.Service] += vol
		grand += vol
	}
	sort.Slice(cellOrder, func(i, j int) bool {
		if cellOrder[i].bs != cellOrder[j].bs {
			return cellOrder[i].bs < cellOrder[j].bs
		}
		return cellOrder[i].day < cellOrder[j].day
	})
	if grand <= 0 {
		return nil, nil, fmt.Errorf("probe: no traffic matches the share filter")
	}
	share = make([]float64, c.NumServices)
	for s := range share {
		share[s] = totals[s] / grand
	}
	cv = make([]float64, c.NumServices)
	for s := 0; s < c.NumServices; s++ {
		var vals []float64
		for _, cell := range cellOrder {
			vols := perCell[cell]
			var cellTotal float64
			for _, v := range vols {
				cellTotal += v
			}
			if cellTotal > 0 {
				vals = append(vals, vols[s]/cellTotal)
			}
		}
		if len(vals) > 1 && mathx.Mean(vals) > 0 {
			cv[s] = mathx.Std(vals) / mathx.Mean(vals)
		}
	}
	return share, cv, nil
}

// DurationCenters returns the duration-bin centers in seconds.
func (c *Collector) DurationCenters() []float64 {
	n := len(c.DurationEdges) - 1
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = math.Pow(10, (c.DurationEdges[i]+c.DurationEdges[i+1])/2)
	}
	return out
}
