package probe

import (
	"fmt"
	"math"

	"mobiletraffic/internal/dist"
	"mobiletraffic/internal/mathx"
	"mobiletraffic/internal/netsim"
)

// KeyFilter selects a subset of statistics cells.
type KeyFilter func(StatKey) bool

// ForService returns a filter keeping one service.
func ForService(svc int) KeyFilter { return func(k StatKey) bool { return k.Service == svc } }

// And combines filters conjunctively.
func And(fs ...KeyFilter) KeyFilter {
	return func(k StatKey) bool {
		for _, f := range fs {
			if !f(k) {
				return false
			}
		}
		return true
	}
}

// BSIn returns a filter keeping BSs from the given index set.
func BSIn(idx []int) KeyFilter {
	set := make(map[int]bool, len(idx))
	for _, i := range idx {
		set[i] = true
	}
	return func(k StatKey) bool { return set[k.BS] }
}

// DayIn returns a filter keeping the given days.
func DayIn(days ...int) KeyFilter {
	set := make(map[int]bool, len(days))
	for _, d := range days {
		set[d] = true
	}
	return func(k StatKey) bool { return set[k.Day] }
}

// Weekdays keeps Monday-Friday cells (day 0 = Monday).
func Weekdays() KeyFilter { return func(k StatKey) bool { return !netsim.IsWeekend(k.Day) } }

// Weekends keeps Saturday/Sunday cells.
func Weekends() KeyFilter { return func(k StatKey) bool { return netsim.IsWeekend(k.Day) } }

// AggregateVolume merges the volume PDFs of every cell passing the
// filter via the session-count-weighted mixture of Eq. (2), returning
// the normalized aggregate F_s(x) and the total session weight.
//
// The mixture is accumulated directly from the cell histograms in
// slab order — no per-cell clone or normalization pass — with the same
// floating-point operation order as normalizing each PDF and mixing
// them (dist.MixHists), so results are bit-identical to that
// formulation.
func (c *Collector) AggregateVolume(filter KeyFilter) (*dist.Hist, float64, error) {
	// Pass 1: the total mixture weight (Eq. 2 denominator).
	var total float64
	matched := 0
	c.forEachCell(filter, func(_ StatKey, st *DayStats) {
		if st.Sessions <= 0 || st.Volume.Total() <= 0 {
			return
		}
		total += st.Sessions
		matched++
	})
	if matched == 0 {
		return nil, 0, fmt.Errorf("probe: no cells match the volume aggregation filter")
	}
	// Pass 2: accumulate each cell's normalized PDF at weight w/total.
	mixed, err := dist.NewHist(c.VolumeEdges)
	if err != nil {
		return nil, 0, err
	}
	c.forEachCell(filter, func(_ StatKey, st *DayStats) {
		if st.Sessions <= 0 {
			return
		}
		t := st.Volume.Total()
		if t <= 0 {
			return
		}
		w := st.Sessions / total
		for i, p := range st.Volume.P {
			mixed.P[i] += w * (p / t)
		}
	})
	return mixed, total, nil
}

// AggregatePairs merges duration-volume pairs across cells passing the
// filter via the session-count-weighted average of Eq. (1). It returns
// the mean volume per duration bin (NaN where no sessions fell) and the
// per-bin session counts.
func (c *Collector) AggregatePairs(filter KeyFilter) (values, counts []float64, err error) {
	n := len(c.DurationEdges) - 1
	sum := make([]float64, n)
	cnt := make([]float64, n)
	matched := false
	c.forEachCell(filter, func(_ StatKey, st *DayStats) {
		matched = true
		for i := 0; i < n; i++ {
			sum[i] += st.DurVolSum[i]
			cnt[i] += st.DurCount[i]
		}
	})
	if !matched {
		return nil, nil, fmt.Errorf("probe: no cells match the pair aggregation filter")
	}
	values = make([]float64, n)
	for i := 0; i < n; i++ {
		if cnt[i] > 0 {
			values[i] = sum[i] / cnt[i]
		} else {
			values[i] = math.NaN()
		}
	}
	return values, cnt, nil
}

// MinuteCountSamples gathers the per-minute arrival counts w^{c,m} of
// every cell passing the filter, summed over services minute by minute
// per (BS, day) — the raw samples behind the Fig. 3 arrival PDFs.
// minuteFilter optionally restricts which minutes contribute (e.g.
// netsim.IsPeakMinute).
func (c *Collector) MinuteCountSamples(filter KeyFilter, minuteFilter func(int) bool) []float64 {
	out := c.minuteCountGather(filter, []func(int) bool{minuteFilter})
	if out == nil {
		return nil
	}
	return out[0]
}

// MinuteCountSamplePair gathers two minute-filtered sample vectors
// (e.g. peak and off-peak minutes) over the same cell filter in a
// single accumulation pass, instead of re-summing the per-service
// minute counts once per vector. Each returned slice is bit-identical
// to the corresponding MinuteCountSamples call.
func (c *Collector) MinuteCountSamplePair(filter KeyFilter, fa, fb func(int) bool) (a, b []float64) {
	out := c.minuteCountGather(filter, []func(int) bool{fa, fb})
	if out == nil {
		return nil, nil
	}
	return out[0], out[1]
}

// minuteCountGather walks the cells one (BS, day) at a time through a
// single minute accumulator: services sum in ascending catalog order
// (the same per-cell order forEachCell yields, so sums are
// bit-identical to the historical per-cell-accumulator layout) and
// each cell emits — once per minute filter — before the next begins,
// in ascending (BS, day) order. A counting pre-pass sizes each output
// exactly (matching minutes times touched cells), so the gather
// allocates once per filter, with no append growth and no per-cell
// accumulators. A nil filter entry keeps every minute. Returns nil
// when no cell matches.
func (c *Collector) minuteCountGather(filter KeyFilter, minuteFilters []func(int) bool) [][]float64 {
	nm := make([]int, len(minuteFilters))
	for f, mf := range minuteFilters {
		for m := 0; m < netsim.MinutesPerDay; m++ {
			if mf == nil || mf(m) {
				nm[f]++
			}
		}
	}
	stride := c.numBS * c.days
	touches := func(bs, day, base int) bool {
		for svc := 0; svc < c.NumServices; svc++ {
			if c.cells[svc*stride+base] == nil {
				continue
			}
			if filter != nil && !filter(StatKey{Service: svc, BS: bs, Day: day}) {
				continue
			}
			return true
		}
		return false
	}
	touched := 0
	for bs := 0; bs < c.numBS; bs++ {
		for day := 0; day < c.days; day++ {
			if touches(bs, day, bs*c.days+day) {
				touched++
			}
		}
	}
	if touched == 0 {
		return nil
	}
	acc := make([]float64, netsim.MinutesPerDay)
	out := make([][]float64, len(minuteFilters))
	for f := range out {
		out[f] = make([]float64, 0, touched*nm[f])
	}
	for bs := 0; bs < c.numBS; bs++ {
		for day := 0; day < c.days; day++ {
			base := bs*c.days + day
			first := true
			for svc := 0; svc < c.NumServices; svc++ {
				st := c.cells[svc*stride+base]
				if st == nil {
					continue
				}
				if filter != nil && !filter(StatKey{Service: svc, BS: bs, Day: day}) {
					continue
				}
				if first {
					first = false
					for m := range acc {
						acc[m] = 0
					}
				}
				for m, v := range st.MinuteCounts {
					acc[m] += v
				}
			}
			if first {
				continue
			}
			for f, mf := range minuteFilters {
				for m, v := range acc {
					if mf != nil && !mf(m) {
						continue
					}
					out[f] = append(out[f], v)
				}
			}
		}
	}
	return out
}

// SessionShare returns, per service, the fraction of all observed
// sessions (the Table 1 "Sessions %" column) across cells passing the
// filter, plus the coefficient of variation of that share across
// (BS, day) cells.
func (c *Collector) SessionShare(filter KeyFilter) (share, cv []float64, err error) {
	return c.shareOf(filter, "share", func(st *DayStats) float64 { return st.Sessions })
}

// TrafficShare returns, per service, the fraction of total traffic
// volume (the Table 1 "Traffic %" column) across cells passing the
// filter, plus the per-cell coefficient of variation.
func (c *Collector) TrafficShare(filter KeyFilter) (share, cv []float64, err error) {
	return c.shareOf(filter, "traffic share", func(st *DayStats) float64 {
		var vol float64
		for i := range st.DurVolSum {
			vol += st.DurVolSum[i]
		}
		return vol
	})
}

// shareOf computes per-service shares of a per-cell mass (sessions or
// traffic volume) plus the per-(BS, day) coefficient of variation of
// the share.
func (c *Collector) shareOf(filter KeyFilter, what string, mass func(*DayStats) float64) (share, cv []float64, err error) {
	nCells := c.numBS * c.days
	perCell := make([]float64, nCells*c.NumServices)
	touched := make([]bool, nCells)
	totals := make([]float64, c.NumServices)
	var grand float64
	c.forEachCell(filter, func(k StatKey, st *DayStats) {
		m := mass(st)
		ci := k.BS*c.days + k.Day
		touched[ci] = true
		perCell[ci*c.NumServices+k.Service] += m
		totals[k.Service] += m
		grand += m
	})
	if grand <= 0 {
		if what == "traffic share" {
			return nil, nil, fmt.Errorf("probe: no traffic matches the share filter")
		}
		return nil, nil, fmt.Errorf("probe: no sessions match the share filter")
	}
	share = make([]float64, c.NumServices)
	for s := range share {
		share[s] = totals[s] / grand
	}
	// CV of the per-cell share around its mean.
	cv = make([]float64, c.NumServices)
	for s := 0; s < c.NumServices; s++ {
		var vals []float64
		for ci := 0; ci < nCells; ci++ {
			if !touched[ci] {
				continue
			}
			counts := perCell[ci*c.NumServices : (ci+1)*c.NumServices]
			var cellTotal float64
			for _, v := range counts {
				cellTotal += v
			}
			if cellTotal > 0 {
				vals = append(vals, counts[s]/cellTotal)
			}
		}
		if len(vals) > 1 && mathx.Mean(vals) > 0 {
			cv[s] = mathx.Std(vals) / mathx.Mean(vals)
		}
	}
	return share, cv, nil
}

// DurationCenters returns the duration-bin centers in seconds.
func (c *Collector) DurationCenters() []float64 {
	n := len(c.DurationEdges) - 1
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = math.Pow(10, (c.DurationEdges[i]+c.DurationEdges[i+1])/2)
	}
	return out
}
