package cluster

import (
	"math"
	"testing"
)

// scalarDist and scalarMerge cluster plain numbers: distance is the
// absolute difference, merging is the weighted mean.
func scalarDist(a, b float64) (float64, error) { return math.Abs(a - b), nil }
func scalarMerge(a, b, wa, wb float64) (float64, error) {
	return (wa*a + wb*b) / (wa + wb), nil
}

func TestAgglomerateTwoGroups(t *testing.T) {
	// Two tight groups far apart: {0, 0.1, 0.2} and {10, 10.1}.
	items := []float64{0, 0.1, 0.2, 10, 10.1}
	d, err := Agglomerate(items, nil, scalarDist, scalarMerge)
	if err != nil {
		t.Fatal(err)
	}
	if d.Leaves != 5 || len(d.Merges) != 4 {
		t.Fatalf("dendrogram shape: leaves=%d merges=%d", d.Leaves, len(d.Merges))
	}
	labels, err := d.CutK(2)
	if err != nil {
		t.Fatal(err)
	}
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Errorf("first group split: %v", labels)
	}
	if labels[3] != labels[4] {
		t.Errorf("second group split: %v", labels)
	}
	if labels[0] == labels[3] {
		t.Errorf("groups merged at k=2: %v", labels)
	}
	// The final merge bridges the two groups at a large distance.
	last := d.Merges[len(d.Merges)-1]
	if last.Distance < 5 {
		t.Errorf("final merge distance = %v, want ~10", last.Distance)
	}
}

func TestCutKBoundaries(t *testing.T) {
	items := []float64{1, 2, 3}
	d, err := Agglomerate(items, nil, scalarDist, scalarMerge)
	if err != nil {
		t.Fatal(err)
	}
	l1, err := d.CutK(1)
	if err != nil {
		t.Fatal(err)
	}
	if l1[0] != l1[1] || l1[1] != l1[2] {
		t.Errorf("k=1 must group all: %v", l1)
	}
	ln, err := d.CutK(3)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, l := range ln {
		seen[l] = true
	}
	if len(seen) != 3 {
		t.Errorf("k=n must keep all separate: %v", ln)
	}
	if _, err := d.CutK(0); err == nil {
		t.Error("k=0 must error")
	}
	if _, err := d.CutK(4); err == nil {
		t.Error("k>n must error")
	}
}

func TestAgglomerateValidation(t *testing.T) {
	if _, err := Agglomerate(nil, nil, scalarDist, scalarMerge); err == nil {
		t.Error("empty items must error")
	}
	if _, err := Agglomerate([]float64{1}, []float64{1, 2}, scalarDist, scalarMerge); err == nil {
		t.Error("weight mismatch must error")
	}
}

func TestAgglomerateSingleItem(t *testing.T) {
	d, err := Agglomerate([]float64{7}, nil, scalarDist, scalarMerge)
	if err != nil {
		t.Fatal(err)
	}
	if d.Leaves != 1 || len(d.Merges) != 0 {
		t.Errorf("singleton dendrogram: %+v", d)
	}
	labels, err := d.CutK(1)
	if err != nil || len(labels) != 1 {
		t.Errorf("singleton cut: %v, %v", labels, err)
	}
}

func TestWeightedCentroidPullsMerge(t *testing.T) {
	// A heavy item dominates the centroid average.
	items := []float64{0, 1}
	weights := []float64{9, 1}
	d, err := Agglomerate(items, weights, scalarDist, scalarMerge)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Merges) != 1 {
		t.Fatalf("merges = %d", len(d.Merges))
	}
	// The centroid itself is internal; verify indirectly via a 3-item
	// run where the weighted centroid of {0 (w=9), 1 (w=1)} = 0.1 is
	// closer to -0.2 than to 0.5.
	items = []float64{0, 1, 0.45}
	weights = []float64{9, 1, 1}
	d, err = Agglomerate(items, weights, scalarDist, scalarMerge)
	if err != nil {
		t.Fatal(err)
	}
	// First merge is 0.45 with 1 (distance 0.55) vs 0 with 0.45
	// (0.45): so {0, 0.45} merge first -> weighted centroid
	// (9*0+1*0.45)/10 = 0.045, then merges with 1.
	first := d.Merges[0]
	if !(first.A == 0 && first.B == 2 || first.A == 2 && first.B == 0) {
		t.Errorf("first merge = %+v, want items 0 and 2", first)
	}
}

func buildDistMatrix(items []float64) []float64 {
	n := len(items)
	dm := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			dm[i*n+j] = math.Abs(items[i] - items[j])
		}
	}
	return dm
}

func TestSilhouetteSeparatedClusters(t *testing.T) {
	items := []float64{0, 0.1, 0.2, 10, 10.1, 10.2}
	dm := buildDistMatrix(items)
	good := []int{0, 0, 0, 1, 1, 1}
	s, err := Silhouette(dm, good)
	if err != nil {
		t.Fatal(err)
	}
	if s < 0.9 {
		t.Errorf("well-separated silhouette = %v, want > 0.9", s)
	}
	// A bad split scores much lower.
	bad := []int{0, 1, 0, 1, 0, 1}
	sb, err := Silhouette(dm, bad)
	if err != nil {
		t.Fatal(err)
	}
	if sb >= s {
		t.Errorf("bad clustering (%v) should score below good (%v)", sb, s)
	}
}

func TestSilhouetteValidation(t *testing.T) {
	if _, err := Silhouette(nil, nil); err == nil {
		t.Error("empty labels must error")
	}
	if _, err := Silhouette([]float64{0}, []int{0, 1}); err == nil {
		t.Error("matrix size mismatch must error")
	}
	if _, err := Silhouette([]float64{0, 1, 1, 0}, []int{0, 0}); err == nil {
		t.Error("single cluster must error")
	}
}

func TestSilhouetteSingletons(t *testing.T) {
	items := []float64{0, 5, 10}
	dm := buildDistMatrix(items)
	s, err := Silhouette(dm, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if s != 0 {
		t.Errorf("all-singleton silhouette = %v, want 0", s)
	}
}

func TestSilhouetteProfilePeaksAtTrueK(t *testing.T) {
	// Three clear groups: the profile must peak at k=3.
	items := []float64{0, 0.1, 0.2, 5, 5.1, 5.2, 11, 11.1, 11.2}
	d, err := Agglomerate(items, nil, scalarDist, scalarMerge)
	if err != nil {
		t.Fatal(err)
	}
	dm := buildDistMatrix(items)
	prof, err := SilhouetteProfile(d, dm, 6)
	if err != nil {
		t.Fatal(err)
	}
	// prof[k-2] is the score at k clusters.
	bestK := 2
	for k := 2; k <= 6; k++ {
		if prof[k-2] > prof[bestK-2] {
			bestK = k
		}
	}
	if bestK != 3 {
		t.Errorf("silhouette peaks at k=%d (profile %v), want 3", bestK, prof)
	}
	if _, err := SilhouetteProfile(d, dm, 1); err == nil {
		t.Error("maxK < 2 must error")
	}
}
