// Package cluster implements the centroid-linkage agglomerative
// hierarchical clustering and silhouette scoring used by the paper's
// quantitative service comparison (§4.3, Fig. 6): services are grouped
// by the earth-mover distance between their normalized traffic volume
// PDFs, merging the two closest PDFs into their weighted average
// (Eq. 2) and recomputing distances from the merged centroid.
package cluster

import (
	"errors"
	"fmt"
	"math"
)

// DistFunc returns the distance between two centroids.
type DistFunc[T any] func(a, b T) (float64, error)

// MergeFunc combines two centroids with the given weights into a new
// centroid (for PDFs: the weighted mixture average of paper Eq. 2).
type MergeFunc[T any] func(a, b T, wa, wb float64) (T, error)

// Merge records one agglomeration step: nodes A and B (IDs) merged at
// the given distance into a node with ID NewID. Leaf items have IDs
// 0..n-1; internal nodes get IDs n, n+1, ...
type Merge struct {
	A, B     int
	Distance float64
	NewID    int
}

// Dendrogram is the full merge history of an agglomerative clustering
// of n leaves; it contains exactly n-1 merges in non-decreasing
// "discovery" order.
type Dendrogram struct {
	Leaves int
	Merges []Merge
}

// Agglomerate hierarchically clusters items by repeatedly merging the
// closest pair of active centroids. weights may be nil for uniform
// weighting; it influences only how centroids are averaged.
func Agglomerate[T any](items []T, weights []float64, dist DistFunc[T], merge MergeFunc[T]) (*Dendrogram, error) {
	n := len(items)
	if n == 0 {
		return nil, errors.New("cluster: no items")
	}
	if weights != nil && len(weights) != n {
		return nil, fmt.Errorf("cluster: %d weights for %d items", len(weights), n)
	}
	type node struct {
		id       int
		centroid T
		weight   float64
	}
	active := make([]node, 0, n)
	for i, it := range items {
		w := 1.0
		if weights != nil {
			w = weights[i]
		}
		active = append(active, node{id: i, centroid: it, weight: w})
	}
	d := &Dendrogram{Leaves: n}
	nextID := n
	for len(active) > 1 {
		bi, bj, best := -1, -1, math.Inf(1)
		for i := 0; i < len(active); i++ {
			for j := i + 1; j < len(active); j++ {
				dd, err := dist(active[i].centroid, active[j].centroid)
				if err != nil {
					return nil, fmt.Errorf("cluster: distance: %w", err)
				}
				if dd < best {
					best, bi, bj = dd, i, j
				}
			}
		}
		a, b := active[bi], active[bj]
		centroid, err := merge(a.centroid, b.centroid, a.weight, b.weight)
		if err != nil {
			return nil, fmt.Errorf("cluster: merge: %w", err)
		}
		d.Merges = append(d.Merges, Merge{A: a.id, B: b.id, Distance: best, NewID: nextID})
		// Remove bj first (it is the larger index), then bi.
		active = append(active[:bj], active[bj+1:]...)
		active = append(active[:bi], active[bi+1:]...)
		active = append(active, node{id: nextID, centroid: centroid, weight: a.weight + b.weight})
		nextID++
	}
	return d, nil
}

// CutK returns cluster assignments (leaf index -> cluster label in
// 0..k-1) obtained by stopping the merge sequence when k clusters
// remain. k must be in [1, Leaves].
func (d *Dendrogram) CutK(k int) ([]int, error) {
	n := d.Leaves
	if k < 1 || k > n {
		return nil, fmt.Errorf("cluster: cannot cut %d leaves into %d clusters", n, k)
	}
	// Union-find over the first n-k merges.
	parent := make([]int, n+len(d.Merges))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, m := range d.Merges[:n-k] {
		ra, rb := find(m.A), find(m.B)
		parent[ra] = m.NewID
		parent[rb] = m.NewID
	}
	labels := make([]int, n)
	remap := map[int]int{}
	for i := 0; i < n; i++ {
		root := find(i)
		l, ok := remap[root]
		if !ok {
			l = len(remap)
			remap[root] = l
		}
		labels[i] = l
	}
	return labels, nil
}

// Silhouette returns the mean silhouette coefficient of the clustering
// described by labels over the symmetric pairwise distance matrix dm
// (row-major, n×n). Values near 1 indicate compact well-separated
// clusters; values near 0 indicate overlap. Singleton clusters
// contribute a coefficient of 0, following the standard convention.
func Silhouette(dm []float64, labels []int) (float64, error) {
	n := len(labels)
	if n == 0 {
		return 0, errors.New("cluster: empty labels")
	}
	if len(dm) != n*n {
		return 0, fmt.Errorf("cluster: distance matrix size %d does not match %d labels", len(dm), n)
	}
	nClusters := 0
	for _, l := range labels {
		if l+1 > nClusters {
			nClusters = l + 1
		}
	}
	if nClusters < 2 {
		return 0, errors.New("cluster: silhouette requires >= 2 clusters")
	}
	size := make([]int, nClusters)
	for _, l := range labels {
		size[l]++
	}
	var total float64
	for i := 0; i < n; i++ {
		li := labels[i]
		if size[li] == 1 {
			continue // coefficient 0
		}
		sums := make([]float64, nClusters)
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			sums[labels[j]] += dm[i*n+j]
		}
		a := sums[li] / float64(size[li]-1)
		b := math.Inf(1)
		for c := 0; c < nClusters; c++ {
			if c == li || size[c] == 0 {
				continue
			}
			if m := sums[c] / float64(size[c]); m < b {
				b = m
			}
		}
		if math.IsInf(b, 1) {
			continue
		}
		if mx := math.Max(a, b); mx > 0 {
			total += (b - a) / mx
		}
	}
	return total / float64(n), nil
}

// SilhouetteProfile cuts the dendrogram at every k in [2, maxK] and
// returns the silhouette score per k, reproducing the paper's Fig. 6b
// analysis: the score drop after k=3 justifies stopping at three
// service clusters.
func SilhouetteProfile(d *Dendrogram, dm []float64, maxK int) ([]float64, error) {
	if maxK > d.Leaves {
		maxK = d.Leaves
	}
	if maxK < 2 {
		return nil, errors.New("cluster: silhouette profile needs maxK >= 2")
	}
	out := make([]float64, 0, maxK-1)
	for k := 2; k <= maxK; k++ {
		labels, err := d.CutK(k)
		if err != nil {
			return nil, err
		}
		s, err := Silhouette(dm, labels)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}
