package mathx

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a linear system has no unique solution.
var ErrSingular = errors.New("mathx: singular matrix")

// SolveGauss solves the dense linear system A·x = b using Gauss-Jordan
// elimination with partial pivoting. A is given in row-major order and is
// not modified. The dimension is len(b); A must hold len(b)² entries.
func SolveGauss(a []float64, b []float64) ([]float64, error) {
	n := len(b)
	if len(a) != n*n {
		return nil, fmt.Errorf("mathx: matrix size %d does not match vector size %d", len(a), n)
	}
	// Work on copies so callers can reuse their buffers.
	m := make([]float64, len(a))
	copy(m, a)
	x := make([]float64, n)
	copy(x, b)

	for col := 0; col < n; col++ {
		// Partial pivot: find the largest magnitude entry in this column.
		pivot := col
		best := math.Abs(m[col*n+col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(m[r*n+col]); v > best {
				best, pivot = v, r
			}
		}
		if best == 0 {
			return nil, ErrSingular
		}
		if pivot != col {
			for c := 0; c < n; c++ {
				m[col*n+c], m[pivot*n+c] = m[pivot*n+c], m[col*n+c]
			}
			x[col], x[pivot] = x[pivot], x[col]
		}
		inv := 1 / m[col*n+col]
		for c := 0; c < n; c++ {
			m[col*n+c] *= inv
		}
		x[col] *= inv
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := m[r*n+col]
			if f == 0 {
				continue
			}
			for c := 0; c < n; c++ {
				m[r*n+c] -= f * m[col*n+c]
			}
			x[r] -= f * x[col]
		}
	}
	return x, nil
}

// SolveCholesky solves A·x = b for a symmetric positive-definite matrix A
// (row-major). It is faster and more stable than SolveGauss for the
// normal equations arising in least-squares problems.
func SolveCholesky(a []float64, b []float64) ([]float64, error) {
	n := len(b)
	if len(a) != n*n {
		return nil, fmt.Errorf("mathx: matrix size %d does not match vector size %d", len(a), n)
	}
	// Lower-triangular factor L with A = L·Lᵀ.
	l := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a[i*n+j]
			for k := 0; k < j; k++ {
				sum -= l[i*n+k] * l[j*n+k]
			}
			if i == j {
				if sum <= 0 {
					return nil, ErrSingular
				}
				l[i*n+j] = math.Sqrt(sum)
			} else {
				l[i*n+j] = sum / l[j*n+j]
			}
		}
	}
	// Forward substitution: L·y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		sum := b[i]
		for k := 0; k < i; k++ {
			sum -= l[i*n+k] * y[k]
		}
		y[i] = sum / l[i*n+i]
	}
	// Back substitution: Lᵀ·x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := y[i]
		for k := i + 1; k < n; k++ {
			sum -= l[k*n+i] * x[k]
		}
		x[i] = sum / l[i*n+i]
	}
	return x, nil
}

// MatVec computes the product of the m×n row-major matrix a with the
// vector x (length n), returning a vector of length m.
func MatVec(a []float64, x []float64, m, n int) []float64 {
	out := make([]float64, m)
	for i := 0; i < m; i++ {
		var s float64
		row := a[i*n : (i+1)*n]
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// AtA computes JᵀJ for the m×n row-major matrix j, returning the n×n
// row-major result. Used to form normal equations.
func AtA(j []float64, m, n int) []float64 {
	out := make([]float64, n*n)
	for a := 0; a < n; a++ {
		for b := a; b < n; b++ {
			var s float64
			for r := 0; r < m; r++ {
				s += j[r*n+a] * j[r*n+b]
			}
			out[a*n+b] = s
			out[b*n+a] = s
		}
	}
	return out
}

// AtB computes Jᵀr for the m×n row-major matrix j and the vector r of
// length m, returning a vector of length n.
func AtB(j []float64, r []float64, m, n int) []float64 {
	out := make([]float64, n)
	for a := 0; a < n; a++ {
		var s float64
		for row := 0; row < m; row++ {
			s += j[row*n+a] * r[row]
		}
		out[a] = s
	}
	return out
}
