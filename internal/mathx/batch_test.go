package mathx_test

// Contract tests for the batch draw kernels of the parallel generation
// plane: the fill-N samplers and the batched alias pick must (a) consume
// the stream draw-for-draw identically to their scalar forms, (b) stay
// allocation-free on reused buffers, and (c) produce the same marginal
// distributions as scalar draws from an independent stream (the KS/chi2
// statistical-equivalence guard of ISSUE 8). The tests live in an
// external package so they can use internal/dist, which itself imports
// mathx.

import (
	"testing"

	"mobiletraffic/internal/dist"
	"mobiletraffic/internal/mathx"
)

// TestFillKernelsMatchScalar pins the draw-for-draw contract: a batch
// fill must consume exactly the stream a scalar loop would, leaving the
// generator in the same state, for every kernel and odd batch length.
func TestFillKernelsMatchScalar(t *testing.T) {
	kernels := []struct {
		name   string
		batch  func(p *mathx.PCG, dst []float64)
		scalar func(p *mathx.PCG) float64
	}{
		{"uniform", (*mathx.PCG).FillFloat64, (*mathx.PCG).Float64},
		{"normal", (*mathx.PCG).FillNorm, (*mathx.PCG).NormFloat64},
		{"exponential", (*mathx.PCG).FillExp, (*mathx.PCG).ExpFloat64},
	}
	for _, k := range kernels {
		var pa, pb mathx.PCG
		pa.SeedStream(42, 3, 7)
		pb.SeedStream(42, 3, 7)
		for _, n := range []int{0, 1, 3, 17, 257} {
			dst := make([]float64, n)
			k.batch(&pa, dst)
			for i := 0; i < n; i++ {
				want := k.scalar(&pb)
				if dst[i] != want {
					t.Fatalf("%s: batch[%d] = %v, scalar = %v (n=%d)", k.name, i, dst[i], want, n)
				}
			}
		}
		// The generators must agree on the next draw after all batches.
		if a, b := pa.Uint64(), pb.Uint64(); a != b {
			t.Errorf("%s: stream state diverged after batching: %x vs %x", k.name, a, b)
		}
	}
}

// TestPickBatchMatchesScalar checks the batched alias pick maps every
// uniform exactly as the scalar Pick, including the u -> 1 edge.
func TestPickBatchMatchesScalar(t *testing.T) {
	tab, err := mathx.NewAliasTable([]float64{0.5, 0.2, 0.05, 0.25, 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	var rng mathx.PCG
	rng.SeedStream(7, 1, 2)
	us := make([]float64, 4096)
	rng.FillFloat64(us)
	us[0] = 0
	us[1] = 0.999999999999
	us[2] = 1 - 1e-16 // rounds to 1.0 in float64
	out := make([]int32, len(us))
	tab.PickBatch(us, out)
	for i, u := range us {
		if want := tab.Pick(u); int(out[i]) != want {
			t.Fatalf("PickBatch[%d] (u=%v) = %d, scalar Pick = %d", i, u, out[i], want)
		}
	}
	tab.PickBatch(nil, nil) // empty batch is a no-op, not a panic
}

// TestLaneSplitMatchesScalar is the property test of the lane-split
// kernels: across random seeds and batch lengths spanning every code
// path — stride-1 scalar fallback (n < 8), the 4-lane ziggurat chunks
// of FillNorm/FillExp, the 8-state-lane uniform kernel, and their
// scalar tails — every batch fill must equal an element-for-element
// scalar replay and leave the generator in the identical state. The
// run is long enough that the ziggurat rejection paths (wedge and
// tail) fire many times, which the test asserts, so the in-order
// slow-path fallback is exercised and not just the speculative fast
// path.
func TestLaneSplitMatchesScalar(t *testing.T) {
	kernels := []struct {
		name   string
		batch  func(p *mathx.PCG, dst []float64)
		scalar func(p *mathx.PCG) float64
		// tailAt reports a draw that can only come from a ziggurat
		// slow path (rejection beyond the fast-path rectangle edge).
		tailAt func(x float64) bool
	}{
		{"uniform", (*mathx.PCG).FillFloat64, (*mathx.PCG).Float64, nil},
		{"normal", (*mathx.PCG).FillNorm, (*mathx.PCG).NormFloat64,
			func(x float64) bool { return x > 3.442619855899 || x < -3.442619855899 }},
		{"exponential", (*mathx.PCG).FillExp, (*mathx.PCG).ExpFloat64,
			func(x float64) bool { return x > 7.69711747013104972 }},
	}
	// Lengths straddle the lane-split threshold (8), the 4- and 8-lane
	// chunk boundaries, and force every scalar-tail length 1..7.
	lengths := []int{0, 1, 3, 4, 5, 7, 8, 9, 11, 12, 15, 16, 17, 31, 32, 33, 63, 257, 1024, 4097}
	seed := uint64(0xA5A5)
	for _, k := range kernels {
		tails := 0
		for trial := 0; trial < 40; trial++ {
			seed = mathx.SplitMix64(seed)
			for _, n := range lengths {
				var pa, pb mathx.PCG
				pa.SeedStream(seed, uint64(trial), uint64(n))
				pb.SeedStream(seed, uint64(trial), uint64(n))
				dst := make([]float64, n)
				k.batch(&pa, dst)
				for i := 0; i < n; i++ {
					want := k.scalar(&pb)
					if dst[i] != want {
						t.Fatalf("%s seed=%x n=%d: batch[%d] = %v, scalar = %v", k.name, seed, n, i, dst[i], want)
					}
					if k.tailAt != nil && k.tailAt(dst[i]) {
						tails++
					}
				}
				if a, b := pa.Uint64(), pb.Uint64(); a != b {
					t.Fatalf("%s seed=%x n=%d: generator state diverged after batch", k.name, seed, n)
				}
			}
		}
		if k.tailAt != nil && tails == 0 {
			t.Errorf("%s: property run never hit the ziggurat tail — rejection fallback untested", k.name)
		}
	}
}

// TestGenBatchKernelAllocs pins every batch kernel at zero heap
// allocations on reused buffers — the property the worker-pool
// campaign's per-worker scratch relies on.
func TestGenBatchKernelAllocs(t *testing.T) {
	tab, err := mathx.NewAliasTable([]float64{3, 1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	var rng mathx.PCG
	rng.SeedStream(9, 0, 0)
	us := make([]float64, 1024)
	zs := make([]float64, 1024)
	es := make([]float64, 1024)
	picks := make([]int32, 1024)
	allocs := testing.AllocsPerRun(100, func() {
		rng.FillFloat64(us)
		rng.FillNorm(zs)
		rng.FillExp(es)
		tab.PickBatch(us, picks)
	})
	if allocs != 0 {
		t.Errorf("batch kernels allocate %.1f objects per run, want 0", allocs)
	}
}

// TestBatchDrawStatEquivalence is the distributional guard: batched
// draws from one stream and scalar draws from an independent stream
// must agree on the normal and exponential marginals (two-sample KS)
// and on the alias-pick category counts (chi-square homogeneity). Both
// streams are fixed-seed, so the p-values are deterministic.
func TestBatchDrawStatEquivalence(t *testing.T) {
	const n = 60000
	var pb, ps mathx.PCG
	pb.SeedStream(1001, 4, 9)
	ps.SeedStream(2002, 5, 11)

	batchNorm := make([]float64, n)
	pb.FillNorm(batchNorm)
	scalarNorm := make([]float64, n)
	for i := range scalarNorm {
		scalarNorm[i] = ps.NormFloat64()
	}
	if d, p, err := dist.KSTwoSample(batchNorm, scalarNorm); err != nil {
		t.Fatal(err)
	} else if p < 1e-3 {
		t.Errorf("batched vs scalar normal marginals differ: D=%.4f p=%.2e", d, p)
	}

	batchExp := make([]float64, n)
	pb.FillExp(batchExp)
	scalarExp := make([]float64, n)
	for i := range scalarExp {
		scalarExp[i] = ps.ExpFloat64()
	}
	if d, p, err := dist.KSTwoSample(batchExp, scalarExp); err != nil {
		t.Fatal(err)
	} else if p < 1e-3 {
		t.Errorf("batched vs scalar exponential marginals differ: D=%.4f p=%.2e", d, p)
	}

	tab, err := mathx.NewAliasTable([]float64{0.45, 0.3, 0.15, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	us := make([]float64, n)
	pb.FillFloat64(us)
	picks := make([]int32, n)
	tab.PickBatch(us, picks)
	batchCounts := make([]float64, tab.Len())
	for _, c := range picks {
		batchCounts[c]++
	}
	scalarCounts := make([]float64, tab.Len())
	for i := 0; i < n; i++ {
		scalarCounts[tab.Pick(ps.Float64())]++
	}
	if stat, df, p, err := dist.Chi2Homogeneity(batchCounts, scalarCounts); err != nil {
		t.Fatal(err)
	} else if p < 1e-3 {
		t.Errorf("batched vs scalar alias picks differ: chi2=%.1f df=%d p=%.2e", stat, df, p)
	}
}
