package mathx

import "math"

// This file is the random-number substrate of the sampler-v2 synthesis
// engine (see DESIGN.md "Sampler streams and determinism"): a small,
// allocation-free PCG-style generator seeded through the splitmix64
// finalizer, plus ziggurat samplers for the normal and exponential
// variates the session synthesizer draws per session. math/rand's
// lagged-Fibonacci source costs a ~5 KB allocation and ~1800 seeding
// steps per rand.New, which the simulator used to pay once per
// (BS, day) cell; a PCG is 16 bytes of state and two multiplications
// to seed, so a generator can live on the stack of the day loop.

// SplitMix64 advances x by the golden-gamma increment and applies the
// splitmix64 finalizer (Steele, Lea & Flood 2014): a bijective mixer
// whose output stream passes BigCrush. It is the canonical way to
// derive well-dispersed seed material from structured input such as
// (master seed, BS index, day).
func SplitMix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// PCG is a PCG-XSH-RR 64/32 generator (O'Neill 2014): a 64-bit linear
// congruential state whose high bits are folded into a 32-bit output
// through an xorshift and a data-dependent rotation. The zero value is
// a valid (if fixed-stream) generator; call Seed or SeedStream before
// use. PCG is not safe for concurrent use; give each worker its own.
type PCG struct {
	state uint64
	inc   uint64 // stream selector, always odd
}

const pcgMult = 6364136223846793005

// Seed initializes the generator on the stream selected by seq with
// the given state seed, following the reference pcg32_srandom
// initialization.
func (p *PCG) Seed(state, seq uint64) {
	p.state = 0
	p.inc = seq<<1 | 1
	p.Uint32()
	p.state += state
	p.Uint32()
}

// SeedStream seeds the generator for one (a, b) cell of a master
// seed's stream family — e.g. a = BS index, b = day. Both the state
// and the stream selector pass through SplitMix64, so structured
// nearby inputs land on uncorrelated streams.
func (p *PCG) SeedStream(master, a, b uint64) {
	h := SplitMix64(master)
	h = SplitMix64(h ^ (a*0xBF58476D1CE4E5B9 + 1))
	s := SplitMix64(h ^ (b*0x94D049BB133111EB + 1))
	p.Seed(s, SplitMix64(s))
}

// Uint32 returns the next 32 uniformly distributed bits.
func (p *PCG) Uint32() uint32 {
	old := p.state
	p.state = old*pcgMult + p.inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint32(old >> 59)
	return xorshifted>>rot | xorshifted<<((-rot)&31)
}

// Uint64 returns the next 64 uniformly distributed bits.
func (p *PCG) Uint64() uint64 {
	hi := uint64(p.Uint32())
	lo := uint64(p.Uint32())
	return hi<<32 | lo
}

// Float64 returns a uniform variate in [0, 1) with 53 random bits.
func (p *PCG) Float64() float64 {
	return float64(p.Uint64()>>11) * 0x1p-53
}

// Ziggurat tables (Marsaglia & Tsang 2000) for the standard normal and
// exponential distributions, computed once at package init from the
// published rectangle parameters rather than transcribed, so they are
// exact for this float64 layout by construction.
const (
	znR = 3.442619855899       // normal: rightmost layer boundary
	znV = 9.91256303526217e-3  // normal: per-layer area
	zeR = 7.69711747013104972  // exponential: rightmost layer boundary
	zeV = 3.949659822581572e-3 // exponential: per-layer area
)

var (
	znK [128]uint32
	znW [128]float64
	znF [128]float64
	zeK [256]uint32
	zeW [256]float64
	zeF [256]float64
)

func init() {
	// Normal layers over |x|, 31-bit uniforms against signed outputs.
	const m1 = 1 << 31
	dn, tn := znR, znR
	q := znV / math.Exp(-0.5*dn*dn)
	znK[0] = uint32(dn / q * m1)
	znK[1] = 0
	znW[0] = q / m1
	znW[127] = dn / m1
	znF[0] = 1
	znF[127] = math.Exp(-0.5 * dn * dn)
	for i := 126; i >= 1; i-- {
		dn = math.Sqrt(-2 * math.Log(znV/dn+math.Exp(-0.5*dn*dn)))
		znK[i+1] = uint32(dn / tn * m1)
		tn = dn
		znF[i] = math.Exp(-0.5 * dn * dn)
		znW[i] = dn / m1
	}
	// Exponential layers, full 32-bit uniforms.
	const m2 = 1 << 32
	de, te := zeR, zeR
	q = zeV / math.Exp(-de)
	zeK[0] = uint32(de / q * m2)
	zeK[1] = 0
	zeW[0] = q / m2
	zeW[255] = de / m2
	zeF[0] = 1
	zeF[255] = math.Exp(-de)
	for i := 254; i >= 1; i-- {
		de = -math.Log(zeV/de + math.Exp(-de))
		zeK[i+1] = uint32(de / te * m2)
		te = de
		zeF[i] = math.Exp(-de)
		zeW[i] = de / m2
	}
}

// NormFloat64 returns a standard normal variate via the ziggurat
// method: one 32-bit draw and one table compare on ~98.8% of calls.
func (p *PCG) NormFloat64() float64 {
	for {
		j := int32(p.Uint32())
		i := j & 127
		x := float64(j) * znW[i]
		if absInt32(j) < znK[i] {
			return x
		}
		if i == 0 {
			// Tail beyond znR: Marsaglia's exact tail algorithm.
			for {
				x = -math.Log(p.Float64()) / znR
				y := -math.Log(p.Float64())
				if y+y >= x*x {
					break
				}
			}
			if j > 0 {
				return znR + x
			}
			return -znR - x
		}
		if znF[i]+p.Float64()*(znF[i-1]-znF[i]) < math.Exp(-0.5*x*x) {
			return x
		}
	}
}

// Batch draw kernels: fill-N forms of the scalar samplers used by the
// parallel generation plane (see DESIGN.md "Generation engine
// streams"). Each kernel copies the 16-byte generator into a local,
// loops with that state register-resident, and writes it back once —
// amortizing the pointer load/store of the scalar methods over the
// whole batch and keeping the loop bodies straight-line so the
// compiler (or a future assembly kernel) can vectorize them. Every
// kernel consumes the stream draw-for-draw identically to len(dst)
// scalar calls (TestFillKernelsMatchScalar), so batched and scalar
// code paths can share one stream definition.

// FillFloat64 fills dst with uniform [0, 1) variates, identical to
// len(dst) sequential Float64 calls.
func (p *PCG) FillFloat64(dst []float64) {
	local := *p
	for i := range dst {
		dst[i] = local.Float64()
	}
	*p = local
}

// FillNorm fills dst with standard normal variates, identical to
// len(dst) sequential NormFloat64 calls.
func (p *PCG) FillNorm(dst []float64) {
	local := *p
	for i := range dst {
		dst[i] = local.NormFloat64()
	}
	*p = local
}

// FillExp fills dst with Exp(1) variates, identical to len(dst)
// sequential ExpFloat64 calls.
func (p *PCG) FillExp(dst []float64) {
	local := *p
	for i := range dst {
		dst[i] = local.ExpFloat64()
	}
	*p = local
}

// ExpFloat64 returns an Exp(1) variate via the ziggurat method.
func (p *PCG) ExpFloat64() float64 {
	for {
		j := p.Uint32()
		i := j & 255
		x := float64(j) * zeW[i]
		if j < zeK[i] {
			return x
		}
		if i == 0 {
			return zeR - math.Log(p.Float64())
		}
		if zeF[i]+p.Float64()*(zeF[i-1]-zeF[i]) < math.Exp(-x) {
			return x
		}
	}
}

func absInt32(j int32) uint32 {
	if j < 0 {
		return uint32(-int64(j))
	}
	return uint32(j)
}
