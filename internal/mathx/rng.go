package mathx

import "math"

// This file is the random-number substrate of the sampler-v2 synthesis
// engine (see DESIGN.md "Sampler streams and determinism"): a small,
// allocation-free PCG-style generator seeded through the splitmix64
// finalizer, plus ziggurat samplers for the normal and exponential
// variates the session synthesizer draws per session. math/rand's
// lagged-Fibonacci source costs a ~5 KB allocation and ~1800 seeding
// steps per rand.New, which the simulator used to pay once per
// (BS, day) cell; a PCG is 16 bytes of state and two multiplications
// to seed, so a generator can live on the stack of the day loop.

// SplitMix64 advances x by the golden-gamma increment and applies the
// splitmix64 finalizer (Steele, Lea & Flood 2014): a bijective mixer
// whose output stream passes BigCrush. It is the canonical way to
// derive well-dispersed seed material from structured input such as
// (master seed, BS index, day).
func SplitMix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// PCG is a PCG-XSH-RR 64/32 generator (O'Neill 2014): a 64-bit linear
// congruential state whose high bits are folded into a 32-bit output
// through an xorshift and a data-dependent rotation. The zero value is
// a valid (if fixed-stream) generator; call Seed or SeedStream before
// use. PCG is not safe for concurrent use; give each worker its own.
type PCG struct {
	state uint64
	inc   uint64 // stream selector, always odd
}

const pcgMult = 6364136223846793005

// Seed initializes the generator on the stream selected by seq with
// the given state seed, following the reference pcg32_srandom
// initialization.
func (p *PCG) Seed(state, seq uint64) {
	p.state = 0
	p.inc = seq<<1 | 1
	p.Uint32()
	p.state += state
	p.Uint32()
}

// SeedStream seeds the generator for one (a, b) cell of a master
// seed's stream family — e.g. a = BS index, b = day. Both the state
// and the stream selector pass through SplitMix64, so structured
// nearby inputs land on uncorrelated streams.
func (p *PCG) SeedStream(master, a, b uint64) {
	h := SplitMix64(master)
	h = SplitMix64(h ^ (a*0xBF58476D1CE4E5B9 + 1))
	s := SplitMix64(h ^ (b*0x94D049BB133111EB + 1))
	p.Seed(s, SplitMix64(s))
}

// pcgOutput folds a pre-advance PCG state into its 32-bit output
// (XSH-RR): an xorshift of the high bits followed by a data-dependent
// rotation. Factored out of Uint32 so the lane-split kernels can apply
// it to states produced by jump-ahead rather than sequential stepping.
func pcgOutput(old uint64) uint32 {
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint32(old >> 59)
	return xorshifted>>rot | xorshifted<<((-rot)&31)
}

// Uint32 returns the next 32 uniformly distributed bits.
func (p *PCG) Uint32() uint32 {
	old := p.state
	p.state = old*pcgMult + p.inc
	return pcgOutput(old)
}

// lcgJump returns the stride-delta composition (A_k, C_k) of the LCG
// step under stream increment inc: one application of
// state -> A_k·state + C_k equals delta single steps
// state -> A·state + C. A_k = A^k and C_k = (A^{k-1} + ... + A + 1)·C,
// both computed by binary exponentiation on the affine map (Brown 1994
// "Random number generation with arbitrary strides", the same
// composition pcg_advance uses); affine powers of one base map
// commute, so the accumulation order is immaterial. All arithmetic is
// modulo 2^64, which uint64 wraparound provides.
func lcgJump(delta, inc uint64) (aK, cK uint64) {
	aK, cK = 1, 0
	curA, curC := uint64(pcgMult), inc
	for delta > 0 {
		if delta&1 != 0 {
			aK *= curA
			cK = cK*curA + curC
		}
		curC = (curA + 1) * curC
		curA *= curA
		delta >>= 1
	}
	return aK, cK
}

// Advance moves the generator delta steps forward in its Uint32 state
// sequence in O(log delta) time: Advance(k) leaves the generator
// exactly where k discarded Uint32 calls would.
func (p *PCG) Advance(delta uint64) {
	aK, cK := lcgJump(delta, p.inc)
	p.state = p.state*aK + cK
}

// Uint64 returns the next 64 uniformly distributed bits.
func (p *PCG) Uint64() uint64 {
	hi := uint64(p.Uint32())
	lo := uint64(p.Uint32())
	return hi<<32 | lo
}

// Float64 returns a uniform variate in [0, 1) with 53 random bits.
func (p *PCG) Float64() float64 {
	return float64(p.Uint64()>>11) * 0x1p-53
}

// Ziggurat tables (Marsaglia & Tsang 2000) for the standard normal and
// exponential distributions, computed once at package init from the
// published rectangle parameters rather than transcribed, so they are
// exact for this float64 layout by construction.
const (
	znR = 3.442619855899       // normal: rightmost layer boundary
	znV = 9.91256303526217e-3  // normal: per-layer area
	zeR = 7.69711747013104972  // exponential: rightmost layer boundary
	zeV = 3.949659822581572e-3 // exponential: per-layer area
)

var (
	znK [128]uint32
	znW [128]float64
	znF [128]float64
	zeK [256]uint32
	zeW [256]float64
	zeF [256]float64
)

func init() {
	// Normal layers over |x|, 31-bit uniforms against signed outputs.
	const m1 = 1 << 31
	dn, tn := znR, znR
	q := znV / math.Exp(-0.5*dn*dn)
	znK[0] = uint32(dn / q * m1)
	znK[1] = 0
	znW[0] = q / m1
	znW[127] = dn / m1
	znF[0] = 1
	znF[127] = math.Exp(-0.5 * dn * dn)
	for i := 126; i >= 1; i-- {
		dn = math.Sqrt(-2 * math.Log(znV/dn+math.Exp(-0.5*dn*dn)))
		znK[i+1] = uint32(dn / tn * m1)
		tn = dn
		znF[i] = math.Exp(-0.5 * dn * dn)
		znW[i] = dn / m1
	}
	// Exponential layers, full 32-bit uniforms.
	const m2 = 1 << 32
	de, te := zeR, zeR
	q = zeV / math.Exp(-de)
	zeK[0] = uint32(de / q * m2)
	zeK[1] = 0
	zeW[0] = q / m2
	zeW[255] = de / m2
	zeF[0] = 1
	zeF[255] = math.Exp(-de)
	for i := 254; i >= 1; i-- {
		de = -math.Log(zeV/de + math.Exp(-de))
		zeK[i+1] = uint32(de / te * m2)
		te = de
		zeF[i] = math.Exp(-de)
		zeW[i] = de / m2
	}
}

// NormFloat64 returns a standard normal variate via the ziggurat
// method: one 32-bit draw and one table compare on ~98.8% of calls.
func (p *PCG) NormFloat64() float64 {
	for {
		j := int32(p.Uint32())
		i := j & 127
		x := float64(j) * znW[i]
		if absInt32(j) < znK[i] {
			return x
		}
		if i == 0 {
			// Tail beyond znR: Marsaglia's exact tail algorithm.
			for {
				x = -math.Log(p.Float64()) / znR
				y := -math.Log(p.Float64())
				if y+y >= x*x {
					break
				}
			}
			if j > 0 {
				return znR + x
			}
			return -znR - x
		}
		if znF[i]+p.Float64()*(znF[i-1]-znF[i]) < math.Exp(-0.5*x*x) {
			return x
		}
	}
}

// Batch draw kernels: fill-N forms of the scalar samplers used by the
// parallel generation plane (see DESIGN.md "Lane-split kernels and LCG
// jump-ahead"). The LCG core advances by one fixed affine map per
// draw, so "k positions ahead" is itself a single precomputed affine
// map (lcgJump): the kernels exploit this to run interleaved lanes of
// the SAME stream — lane j holds state position j and advances by the
// stride-k map each iteration — which removes the serial state
// dependence from the loop body. The k lane updates are independent
// multiply-adds the CPU pipelines can overlap (and a vectorizing
// compiler can widen); outputs are written in stream order, and the
// ziggurat kernels replay any draw that leaves the fast path through
// the scalar sampler in-order, so every kernel stays draw-for-draw
// identical to len(dst) scalar calls (TestFillKernelsMatchScalar,
// TestLaneSplitMatchesScalar) and batched and scalar code paths share
// one stream definition.

// laneSplitMin is the batch length below which the kernels fall back
// to the plain serial loop: the stride constants cost a handful of
// multiply-adds to set up, which only amortizes over enough elements.
const laneSplitMin = 8

// pcgU53 folds a hi/lo pair of 32-bit outputs into a uniform [0, 1)
// float64 with 53 random bits, exactly as Float64 does.
func pcgU53(hi, lo uint32) float64 {
	return float64((uint64(hi)<<32|uint64(lo))>>11) * 0x1p-53
}

// FillFloat64 fills dst with uniform [0, 1) variates, identical to
// len(dst) sequential Float64 calls. Batches of laneSplitMin or more
// run 8 interleaved state lanes (4 elements per iteration: each
// element consumes a hi and a lo 32-bit draw).
func (p *PCG) FillFloat64(dst []float64) {
	if len(dst) < laneSplitMin {
		local := *p
		for i := range dst {
			dst[i] = local.Float64()
		}
		*p = local
		return
	}
	// Stride constants A_k, C_k for k = 1..8 under this stream's
	// increment; a[8]/c[8] is the per-iteration lane advance.
	inc := p.inc
	var a, c [9]uint64
	a[0], c[0] = 1, 0
	for k := 1; k <= 8; k++ {
		a[k] = a[k-1] * pcgMult
		c[k] = c[k-1]*pcgMult + inc
	}
	s := p.state
	s0 := s
	s1 := a[1]*s + c[1]
	s2 := a[2]*s + c[2]
	s3 := a[3]*s + c[3]
	s4 := a[4]*s + c[4]
	s5 := a[5]*s + c[5]
	s6 := a[6]*s + c[6]
	s7 := a[7]*s + c[7]
	a8, c8 := a[8], c[8]
	i := 0
	for ; i+4 <= len(dst); i += 4 {
		dst[i] = pcgU53(pcgOutput(s0), pcgOutput(s1))
		dst[i+1] = pcgU53(pcgOutput(s2), pcgOutput(s3))
		dst[i+2] = pcgU53(pcgOutput(s4), pcgOutput(s5))
		dst[i+3] = pcgU53(pcgOutput(s6), pcgOutput(s7))
		s0 = a8*s0 + c8
		s1 = a8*s1 + c8
		s2 = a8*s2 + c8
		s3 = a8*s3 + c8
		s4 = a8*s4 + c8
		s5 = a8*s5 + c8
		s6 = a8*s6 + c8
		s7 = a8*s7 + c8
	}
	// s0 advanced 8 states per iteration from position 0, so it is
	// exactly the next unconsumed state for the scalar tail.
	p.state = s0
	for ; i < len(dst); i++ {
		dst[i] = p.Float64()
	}
}

// FillNorm fills dst with standard normal variates, identical to
// len(dst) sequential NormFloat64 calls. Batches run 4 interleaved
// lanes through the ziggurat fast path (one 32-bit draw, one table
// compare per lane); a chunk with any lane outside the fast path keeps
// its fast prefix and replays the first rejecting draw through the
// scalar sampler, so tail and wedge draws consume the stream in order.
func (p *PCG) FillNorm(dst []float64) {
	if len(dst) < laneSplitMin {
		local := *p
		for i := range dst {
			dst[i] = local.NormFloat64()
		}
		*p = local
		return
	}
	inc := p.inc
	a1, c1 := uint64(pcgMult), inc
	a2, c2 := a1*pcgMult, c1*pcgMult+inc
	a3, c3 := a2*pcgMult, c2*pcgMult+inc
	a4, c4 := a3*pcgMult, c3*pcgMult+inc
	s := p.state
	i := 0
	for i+4 <= len(dst) {
		t1 := a1*s + c1
		t2 := a2*s + c2
		t3 := a3*s + c3
		j0 := int32(pcgOutput(s))
		j1 := int32(pcgOutput(t1))
		j2 := int32(pcgOutput(t2))
		j3 := int32(pcgOutput(t3))
		i0, i1, i2, i3 := j0&127, j1&127, j2&127, j3&127
		x0 := float64(j0) * znW[i0]
		x1 := float64(j1) * znW[i1]
		x2 := float64(j2) * znW[i2]
		x3 := float64(j3) * znW[i3]
		if absInt32(j0) < znK[i0] && absInt32(j1) < znK[i1] &&
			absInt32(j2) < znK[i2] && absInt32(j3) < znK[i3] {
			dst[i] = x0
			dst[i+1] = x1
			dst[i+2] = x2
			dst[i+3] = x3
			s = a4*s + c4
			i += 4
			continue
		}
		// Slow path (~5% of chunks): find the first rejecting lane,
		// keep the fast results before it, and re-enter after the
		// scalar draw with whatever state it left behind.
		f := 0
		switch {
		case absInt32(j0) >= znK[i0]:
			p.state = s
		case absInt32(j1) >= znK[i1]:
			dst[i] = x0
			p.state = t1
			f = 1
		case absInt32(j2) >= znK[i2]:
			dst[i], dst[i+1] = x0, x1
			p.state = t2
			f = 2
		default:
			dst[i], dst[i+1], dst[i+2] = x0, x1, x2
			p.state = t3
			f = 3
		}
		dst[i+f] = p.NormFloat64()
		i += f + 1
		s = p.state
	}
	p.state = s
	for ; i < len(dst); i++ {
		dst[i] = p.NormFloat64()
	}
}

// FillExp fills dst with Exp(1) variates, identical to len(dst)
// sequential ExpFloat64 calls. Same 4-lane speculative structure as
// FillNorm over the exponential ziggurat.
func (p *PCG) FillExp(dst []float64) {
	if len(dst) < laneSplitMin {
		local := *p
		for i := range dst {
			dst[i] = local.ExpFloat64()
		}
		*p = local
		return
	}
	inc := p.inc
	a1, c1 := uint64(pcgMult), inc
	a2, c2 := a1*pcgMult, c1*pcgMult+inc
	a3, c3 := a2*pcgMult, c2*pcgMult+inc
	a4, c4 := a3*pcgMult, c3*pcgMult+inc
	s := p.state
	i := 0
	for i+4 <= len(dst) {
		t1 := a1*s + c1
		t2 := a2*s + c2
		t3 := a3*s + c3
		j0 := pcgOutput(s)
		j1 := pcgOutput(t1)
		j2 := pcgOutput(t2)
		j3 := pcgOutput(t3)
		i0, i1, i2, i3 := j0&255, j1&255, j2&255, j3&255
		x0 := float64(j0) * zeW[i0]
		x1 := float64(j1) * zeW[i1]
		x2 := float64(j2) * zeW[i2]
		x3 := float64(j3) * zeW[i3]
		if j0 < zeK[i0] && j1 < zeK[i1] && j2 < zeK[i2] && j3 < zeK[i3] {
			dst[i] = x0
			dst[i+1] = x1
			dst[i+2] = x2
			dst[i+3] = x3
			s = a4*s + c4
			i += 4
			continue
		}
		f := 0
		switch {
		case j0 >= zeK[i0]:
			p.state = s
		case j1 >= zeK[i1]:
			dst[i] = x0
			p.state = t1
			f = 1
		case j2 >= zeK[i2]:
			dst[i], dst[i+1] = x0, x1
			p.state = t2
			f = 2
		default:
			dst[i], dst[i+1], dst[i+2] = x0, x1, x2
			p.state = t3
			f = 3
		}
		dst[i+f] = p.ExpFloat64()
		i += f + 1
		s = p.state
	}
	p.state = s
	for ; i < len(dst); i++ {
		dst[i] = p.ExpFloat64()
	}
}

// ExpFloat64 returns an Exp(1) variate via the ziggurat method.
func (p *PCG) ExpFloat64() float64 {
	for {
		j := p.Uint32()
		i := j & 255
		x := float64(j) * zeW[i]
		if j < zeK[i] {
			return x
		}
		if i == 0 {
			return zeR - math.Log(p.Float64())
		}
		if zeF[i]+p.Float64()*(zeF[i-1]-zeF[i]) < math.Exp(-x) {
			return x
		}
	}
}

func absInt32(j int32) uint32 {
	if j < 0 {
		return uint32(-int64(j))
	}
	return uint32(j)
}
