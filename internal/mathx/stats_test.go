package mathx

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSumMean(t *testing.T) {
	tests := []struct {
		name string
		in   []float64
		sum  float64
		mean float64
	}{
		{"empty", nil, 0, math.NaN()},
		{"single", []float64{4}, 4, 4},
		{"several", []float64{1, 2, 3, 4}, 10, 2.5},
		{"negatives", []float64{-1, 1, -2, 2}, 0, 0},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := Sum(tc.in); got != tc.sum {
				t.Errorf("Sum = %v, want %v", got, tc.sum)
			}
			got := Mean(tc.in)
			if math.IsNaN(tc.mean) {
				if !math.IsNaN(got) {
					t.Errorf("Mean = %v, want NaN", got)
				}
			} else if got != tc.mean {
				t.Errorf("Mean = %v, want %v", got, tc.mean)
			}
		})
	}
}

func TestWeightedMean(t *testing.T) {
	got := WeightedMean([]float64{1, 3}, []float64{1, 3})
	if !AlmostEqual(got, 2.5, 1e-12) {
		t.Errorf("WeightedMean = %v, want 2.5", got)
	}
	if !math.IsNaN(WeightedMean([]float64{1}, []float64{0})) {
		t.Error("WeightedMean with zero weights should be NaN")
	}
	if !math.IsNaN(WeightedMean([]float64{1, 2}, []float64{1})) {
		t.Error("WeightedMean with mismatched lengths should be NaN")
	}
}

func TestVarianceStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := PopVariance(xs); !AlmostEqual(got, 4, 1e-12) {
		t.Errorf("PopVariance = %v, want 4", got)
	}
	if got := Variance(xs); !AlmostEqual(got, 32.0/7.0, 1e-12) {
		t.Errorf("Variance = %v, want %v", got, 32.0/7.0)
	}
	if got := Std(xs); !AlmostEqual(got, math.Sqrt(32.0/7.0), 1e-12) {
		t.Errorf("Std = %v", got)
	}
	if got := Variance([]float64{5}); got != 0 {
		t.Errorf("Variance of singleton = %v, want 0", got)
	}
}

func TestCV(t *testing.T) {
	xs := []float64{10, 10, 10}
	if got := CV(xs); got != 0 {
		t.Errorf("CV of constant = %v, want 0", got)
	}
	if !math.IsNaN(CV([]float64{-1, 1})) {
		t.Error("CV with zero mean should be NaN")
	}
}

func TestSkewness(t *testing.T) {
	sym := []float64{1, 2, 3, 4, 5}
	if got := Skewness(sym); math.Abs(got) > 1e-12 {
		t.Errorf("Skewness of symmetric data = %v, want 0", got)
	}
	right := []float64{1, 1, 1, 1, 10}
	if got := Skewness(right); got <= 0 {
		t.Errorf("Skewness of right-tailed data = %v, want > 0", got)
	}
	if got := Skewness([]float64{1, 2}); got != 0 {
		t.Errorf("Skewness of short input = %v, want 0", got)
	}
}

func TestMinMax(t *testing.T) {
	min, max := MinMax([]float64{3, -1, 7, 0})
	if min != -1 || max != 7 {
		t.Errorf("MinMax = (%v, %v), want (-1, 7)", min, max)
	}
	min, max = MinMax(nil)
	if !math.IsNaN(min) || !math.IsNaN(max) {
		t.Error("MinMax of empty should be NaN, NaN")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2} // unsorted on purpose
	tests := []struct{ q, want float64 }{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75},
	}
	for _, tc := range tests {
		if got := Quantile(xs, tc.q); !AlmostEqual(got, tc.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	// Input must not be modified.
	if xs[0] != 4 {
		t.Error("Quantile modified its input")
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("Quantile of empty should be NaN")
	}
	if !math.IsNaN(Quantile(xs, 1.5)) {
		t.Error("Quantile outside [0,1] should be NaN")
	}
}

func TestPercentiles(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	got := Percentiles(xs, []float64{0, 0.5, 1})
	want := []float64{1, 3, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Percentiles[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestMedianMatchesQuantile(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		if m, q := Median(xs), Quantile(xs, 0.5); m != q {
			t.Fatalf("Median = %v, Quantile(0.5) = %v", m, q)
		}
	}
}

func TestClamp(t *testing.T) {
	if got := Clamp(5, 0, 1); got != 1 {
		t.Errorf("Clamp above = %v", got)
	}
	if got := Clamp(-5, 0, 1); got != 0 {
		t.Errorf("Clamp below = %v", got)
	}
	if got := Clamp(0.5, 0, 1); got != 0.5 {
		t.Errorf("Clamp inside = %v", got)
	}
}

func TestAbsPercentageError(t *testing.T) {
	if got := AbsPercentageError(110, 100); !AlmostEqual(got, 10, 1e-12) {
		t.Errorf("APE = %v, want 10", got)
	}
	if got := AbsPercentageError(0, 0); got != 0 {
		t.Errorf("APE(0,0) = %v, want 0", got)
	}
	if got := AbsPercentageError(1, 0); !math.IsInf(got, 1) {
		t.Errorf("APE(1,0) = %v, want +Inf", got)
	}
}

// Property: quantiles are monotone in q and bounded by min/max.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
		}
		min, max := MinMax(xs)
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0001; q += 0.1 {
			qq := math.Min(q, 1)
			v := Quantile(xs, qq)
			if v < prev-1e-9 || v < min-1e-9 || v > max+1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: variance is translation invariant and scales quadratically.
func TestVarianceScalingProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		shifted := make([]float64, n)
		scaled := make([]float64, n)
		for i, x := range xs {
			shifted[i] = x + 42
			scaled[i] = 3 * x
		}
		v := Variance(xs)
		return AlmostEqual(Variance(shifted), v, 1e-6) &&
			AlmostEqual(Variance(scaled), 9*v, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
